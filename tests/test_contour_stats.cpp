#include <gtest/gtest.h>

#include "core/contour_stats.h"
#include "test_util.h"

namespace litho::core {
namespace {

Tensor square(int64_t n, int64_t r0, int64_t c0, int64_t side) {
  Tensor t({n, n});
  for (int64_t r = r0; r < r0 + side; ++r)
    for (int64_t c = c0; c < c0 + side; ++c) t[r * n + c] = 1.f;
  return t;
}

TEST(BoundaryMap, SquareHasHollowBoundary) {
  Tensor sq = square(16, 4, 4, 6);
  Tensor b = boundary_map(sq);
  // 6x6 square: boundary = 36 - 16 interior = 20 pixels.
  EXPECT_FLOAT_EQ(b.sum(), 20.f);
  EXPECT_FLOAT_EQ(b.at({4, 4}), 1.f);   // corner
  EXPECT_FLOAT_EQ(b.at({6, 6}), 0.f);   // interior
  EXPECT_FLOAT_EQ(b.at({0, 0}), 0.f);   // background
}

TEST(BoundaryMap, ImageEdgePixelsCountAsBoundary) {
  Tensor all = Tensor::ones({4, 4});
  Tensor b = boundary_map(all);
  EXPECT_FLOAT_EQ(b.sum(), 12.f);  // outer ring of a 4x4
}

TEST(EpeStats, IdenticalContoursScoreZero) {
  Tensor sq = square(32, 8, 8, 10);
  const EpeStats s = contour_epe_stats(sq, sq);
  EXPECT_DOUBLE_EQ(s.mean_px, 0.0);
  EXPECT_DOUBLE_EQ(s.max_px, 0.0);
  EXPECT_EQ(s.violations, 0);
  EXPECT_EQ(s.boundary_px, 36);
}

TEST(EpeStats, UniformShiftMeasuredExactly) {
  Tensor a = square(32, 8, 8, 10);
  Tensor b = square(32, 8, 11, 10);  // shifted 3 px in x
  const EpeStats s = contour_epe_stats(b, a, /*violation_threshold_px=*/2.0);
  // Left and right edges displaced by 3; top/bottom edges overlap over most
  // of their length, so mean is between 0 and 3 and max is exactly 3.
  EXPECT_NEAR(s.max_px, 3.0, 1e-9);
  EXPECT_GT(s.mean_px, 0.5);
  EXPECT_LT(s.mean_px, 3.0);
  EXPECT_GT(s.violations, 0);
}

TEST(EpeStats, DilationByOnePixel) {
  Tensor a = square(32, 10, 10, 8);
  Tensor b = square(32, 9, 9, 10);  // uniformly grown by 1 px
  const EpeStats s = contour_epe_stats(b, a, 2.0);
  // Every golden boundary pixel is exactly 1 px from the dilated ring
  // (corners see the ring's edge-adjacent pixel at distance 1, not the
  // diagonal corner at sqrt(2)).
  EXPECT_NEAR(s.max_px, 1.0, 1e-9);
  EXPECT_NEAR(s.mean_px, 1.0, 1e-9);
  EXPECT_EQ(s.violations, 0);
}

TEST(EpeStats, EmptyPredictionGivesDiagonalDistances) {
  Tensor golden = square(16, 4, 4, 4);
  Tensor empty({16, 16});
  const EpeStats s = contour_epe_stats(empty, golden);
  EXPECT_GT(s.mean_px, 10.0);  // everything "missed by the full image"
  EXPECT_GT(s.violations, 0);
}

TEST(EpeStats, EmptyGoldenIsNeutral) {
  Tensor empty({8, 8});
  const EpeStats s = contour_epe_stats(empty, empty);
  EXPECT_EQ(s.boundary_px, 0);
  EXPECT_DOUBLE_EQ(s.mean_px, 0.0);
}

TEST(EpeStats, MismatchThrows) {
  EXPECT_THROW(contour_epe_stats(Tensor({4, 4}), Tensor({5, 5})),
               std::invalid_argument);
}

// Property: EPE stats are zero iff boundaries coincide, across shapes.
class EpeShapes : public ::testing::TestWithParam<int> {};

TEST_P(EpeShapes, SelfComparisonIsAlwaysZero) {
  auto rng = test::rng(static_cast<uint32_t>(GetParam()));
  Tensor img({24, 24});
  // Random blobs.
  for (int k = 0; k < 3; ++k) {
    const int64_t r0 = 2 + static_cast<int64_t>(rng() % 14);
    const int64_t c0 = 2 + static_cast<int64_t>(rng() % 14);
    const int64_t s = 2 + static_cast<int64_t>(rng() % 6);
    for (int64_t r = r0; r < std::min<int64_t>(24, r0 + s); ++r)
      for (int64_t c = c0; c < std::min<int64_t>(24, c0 + s); ++c)
        img[r * 24 + c] = 1.f;
  }
  const EpeStats s = contour_epe_stats(img, img);
  EXPECT_DOUBLE_EQ(s.mean_px, 0.0);
  EXPECT_DOUBLE_EQ(s.max_px, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpeShapes, ::testing::Range(0, 8));

}  // namespace
}  // namespace litho::core
