#include <gtest/gtest.h>

#include "core/doinn.h"
#include "models/damo.h"
#include "models/fno_baseline.h"
#include "models/unet.h"
#include "test_util.h"

namespace litho::models {
namespace {

TEST(UNet, ForwardShapeAndRange) {
  auto rng = test::rng();
  UNet model(UNetConfig{4, 3}, rng);
  ag::Variable x(Tensor::rand({2, 1, 64, 64}, rng), false);
  ag::Variable y = model.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 1, 64, 64}));
  EXPECT_LE(y.value().max(), 1.f);
  EXPECT_GE(y.value().min(), -1.f);
}

TEST(DamoDls, ForwardShape) {
  auto rng = test::rng(1);
  DamoDls model(DamoConfig{4}, rng);
  ag::Variable x(Tensor::rand({1, 1, 64, 64}, rng), false);
  EXPECT_EQ(model.forward(x).shape(), (Shape{1, 1, 64, 64}));
}

TEST(FnoBaseline, ForwardShape) {
  auto rng = test::rng(2);
  FnoConfig cfg;
  cfg.modes = 5;
  cfg.channels = 4;
  cfg.num_units = 2;
  FnoBaseline model(cfg, rng);
  ag::Variable x(Tensor::rand({1, 1, 64, 64}, rng), false);
  EXPECT_EQ(model.forward(x).shape(), (Shape{1, 1, 64, 64}));
  EXPECT_EQ(model.spectral_features(x).shape(), (Shape{1, 4, 8, 8}));
}

TEST(ModelZoo, ParameterOrderingMatchesPaper) {
  // Paper: DAMO-DLS (18M) >> UNet >> DOINN (1.3M). At our scaled widths the
  // ordering must be preserved.
  auto rng = test::rng(3);
  core::DoinnConfig dcfg = core::DoinnConfig::small();
  core::Doinn doinn(dcfg, rng);
  UNet unet(UNetConfig{}, rng);
  DamoDls damo(DamoConfig{}, rng);
  EXPECT_GT(damo.num_parameters(), unet.num_parameters());
  EXPECT_GT(unet.num_parameters(), doinn.num_parameters());
  // DAMO should be roughly an order of magnitude larger than DOINN.
  EXPECT_GT(damo.num_parameters(), 6 * doinn.num_parameters());
}

TEST(ModelZoo, BackwardRunsOnAllBaselines) {
  auto rng = test::rng(4);
  UNet unet(UNetConfig{4, 3}, rng);
  DamoDls damo(DamoConfig{4}, rng);
  Tensor target = Tensor::zeros({1, 1, 64, 64});
  for (nn::ContourModel* m :
       std::initializer_list<nn::ContourModel*>{&unet, &damo}) {
    auto rng2 = test::rng(5);
    ag::Variable x(Tensor::rand({1, 1, 64, 64}, rng2), false);
    ag::Variable loss = ag::mse_loss(m->forward(x), target);
    loss.backward();
    for (const ag::Variable& p : m->parameters()) {
      for (int64_t i = 0; i < p.grad().numel(); ++i) {
        ASSERT_TRUE(std::isfinite(p.grad()[i])) << m->name();
      }
    }
  }
}

TEST(ModelZoo, NamesAreDistinct) {
  auto rng = test::rng(6);
  UNet unet(UNetConfig{4, 3}, rng);
  DamoDls damo(DamoConfig{4}, rng);
  FnoConfig fcfg;
  fcfg.modes = 5;
  fcfg.channels = 4;
  FnoBaseline fno(fcfg, rng);
  EXPECT_EQ(unet.name(), "UNet");
  EXPECT_EQ(damo.name(), "DAMO-DLS");
  EXPECT_EQ(fno.name(), "FNO-baseline");
}

}  // namespace
}  // namespace litho::models
