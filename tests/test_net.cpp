// Tests for the socket front end: wire-format encode/decode (including the
// quantization that keeps socket mode bitwise identical to manifest mode),
// and loopback end-to-end runs against a live Server — single request,
// concurrent clients, BUSY backpressure under a saturated queue, protocol
// errors (garbage and oversize frames), and SHUTDOWN-frame drain.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/doinn.h"
#include "io/io.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "runtime/engine.h"
#include "runtime/scheduler.h"
#include "test_util.h"

namespace litho {
namespace {

core::DoinnConfig tiny_config() {
  core::DoinnConfig cfg = core::DoinnConfig::small();
  cfg.tile = 64;
  cfg.modes = 4;
  cfg.gp_channels = 4;
  return cfg;
}

Tensor random_mask(int64_t side, uint32_t seed) {
  auto rng = test::rng(seed);
  Tensor mask = Tensor::rand({side, side}, rng);
  mask.apply_([](float v) { return v >= 0.6f ? 1.f : 0.f; });
  return mask;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(NetProtocol, HeaderRoundTrip) {
  net::FrameHeader header;
  header.type = net::FrameType::kContour;
  header.request_id = 0x0123456789ABCDEFull;
  header.payload_bytes = 4242;
  std::vector<uint8_t> wire;
  net::encode_header(header, wire);
  ASSERT_EQ(wire.size(), net::kHeaderBytes);
  net::FrameHeader decoded;
  ASSERT_TRUE(net::decode_header(wire.data(), decoded));
  EXPECT_EQ(decoded.version, net::kVersion);
  EXPECT_EQ(decoded.type, net::FrameType::kContour);
  EXPECT_EQ(decoded.request_id, header.request_id);
  EXPECT_EQ(decoded.payload_bytes, header.payload_bytes);
}

TEST(NetProtocol, HeaderRejectsCorruption) {
  net::FrameHeader header;
  header.type = net::FrameType::kPredict;
  header.request_id = 7;
  header.payload_bytes = 16;
  std::vector<uint8_t> wire;
  net::encode_header(header, wire);
  net::FrameHeader decoded;

  auto corrupted = wire;
  corrupted[0] ^= 0xFF;  // magic
  EXPECT_FALSE(net::decode_header(corrupted.data(), decoded));
  corrupted = wire;
  corrupted[4] = net::kVersion + 1;
  EXPECT_FALSE(net::decode_header(corrupted.data(), decoded));
  corrupted = wire;
  corrupted[5] = 0;  // type below kPredict
  EXPECT_FALSE(net::decode_header(corrupted.data(), decoded));
  corrupted = wire;
  corrupted[5] = 99;  // type above kShutdown
  EXPECT_FALSE(net::decode_header(corrupted.data(), decoded));
  corrupted = wire;
  corrupted[6] = 1;  // reserved bytes must be zero
  EXPECT_FALSE(net::decode_header(corrupted.data(), decoded));
  corrupted = wire;
  // payload_bytes beyond the cap
  const uint32_t huge = net::kMaxPayloadBytes + 1;
  for (int i = 0; i < 4; ++i) {
    corrupted[16 + i] = static_cast<uint8_t>((huge >> (8 * i)) & 0xFF);
  }
  EXPECT_FALSE(net::decode_header(corrupted.data(), decoded));
}

TEST(NetProtocol, ImageRoundTripPreservesAllQuantizedLevels) {
  // A 16x16 ramp covering every 8-bit level, built with read_pgm's exact
  // arithmetic (level * (1/255.f), not level/255.f — they differ by 1 ulp
  // for some levels): encode (write_pgm's quantization) then decode
  // (read_pgm's scaling) must reproduce every float bitwise. This is what
  // makes socket-mode tensors identical to manifest-mode tensors.
  Tensor image({16, 16});
  const float scale = 1.f / 255.f;
  for (int64_t i = 0; i < 256; ++i) {
    image[i] = static_cast<float>(i) * scale;
  }
  std::vector<uint8_t> payload;
  net::encode_image(image, payload);
  ASSERT_EQ(payload.size(), 12u + 256u);
  Tensor decoded;
  ASSERT_TRUE(net::decode_image(payload.data(), payload.size(), decoded));
  ASSERT_EQ(decoded.size(0), 16);
  ASSERT_EQ(decoded.size(1), 16);
  EXPECT_EQ(test::max_abs_diff(decoded, image), 0.f);

  // And re-encoding yields the identical bytes (stable fixed point).
  std::vector<uint8_t> payload2;
  net::encode_image(decoded, payload2);
  EXPECT_EQ(payload, payload2);
}

TEST(NetProtocol, ImageDecodeRejectsMalformedPayloads) {
  Tensor decoded;
  std::vector<uint8_t> payload;
  net::encode_image(Tensor({4, 4}, 0.5f), payload);
  EXPECT_TRUE(net::decode_image(payload.data(), payload.size(), decoded));
  // Truncated payload, zero dims, and size mismatches all fail cleanly.
  EXPECT_FALSE(net::decode_image(payload.data(), 11, decoded));
  EXPECT_FALSE(net::decode_image(payload.data(), payload.size() - 1, decoded));
  auto zero_h = payload;
  zero_h[0] = zero_h[1] = zero_h[2] = zero_h[3] = 0;
  EXPECT_FALSE(net::decode_image(zero_h.data(), zero_h.size(), decoded));
  auto zero_maxval = payload;
  zero_maxval[8] = zero_maxval[9] = 0;
  EXPECT_FALSE(
      net::decode_image(zero_maxval.data(), zero_maxval.size(), decoded));
}

TEST(NetProtocol, PredictPayloadVersionsRoundTrip) {
  const Tensor mask = random_mask(16, 12);
  std::string model;
  Tensor decoded;
  net::FrameHeader header;

  // v1: bare image payload, empty model, legacy version byte on the wire.
  const std::vector<uint8_t> v1 = net::make_predict_frame(9, mask);
  ASSERT_TRUE(net::decode_header(v1.data(), header));
  EXPECT_EQ(header.version, net::kVersionLegacy);
  model = "stale";
  ASSERT_TRUE(net::decode_predict_payload(header.version,
                                          v1.data() + net::kHeaderBytes,
                                          header.payload_bytes, model,
                                          decoded));
  EXPECT_TRUE(model.empty());
  EXPECT_EQ(test::max_abs_diff(decoded, mask), 0.f);

  // v2: model-name prefix + the same image payload.
  const std::vector<uint8_t> v2 = net::make_predict_frame(9, mask, "resist");
  ASSERT_TRUE(net::decode_header(v2.data(), header));
  EXPECT_EQ(header.version, net::kVersion);
  ASSERT_TRUE(net::decode_predict_payload(header.version,
                                          v2.data() + net::kHeaderBytes,
                                          header.payload_bytes, model,
                                          decoded));
  EXPECT_EQ(model, "resist");
  EXPECT_EQ(test::max_abs_diff(decoded, mask), 0.f);

  // Oversize model names never make it onto the wire.
  EXPECT_THROW(net::make_predict_frame(
                   1, mask, std::string(net::kMaxModelNameBytes + 1, 'x')),
               std::invalid_argument);
}

TEST(NetProtocol, PredictPayloadRejectsMalformedModelPrefix) {
  const Tensor mask = random_mask(8, 13);
  const std::vector<uint8_t> frame = net::make_predict_frame(1, mask, "ab");
  const uint8_t* payload = frame.data() + net::kHeaderBytes;
  const size_t size = frame.size() - net::kHeaderBytes;
  std::string model;
  Tensor decoded;

  // Unknown payload version.
  EXPECT_FALSE(
      net::decode_predict_payload(3, payload, size, model, decoded));
  // Prefix truncated below its own 4-byte sub-header.
  EXPECT_FALSE(
      net::decode_predict_payload(net::kVersion, payload, 3, model, decoded));
  // model_len pointing past the payload.
  std::vector<uint8_t> bad(payload, payload + size);
  bad[0] = 0xFF;
  bad[1] = 0x00;  // model_len = 255 > remaining bytes
  EXPECT_FALSE(net::decode_predict_payload(net::kVersion, bad.data(),
                                           bad.size(), model, decoded));
  // model_len above the protocol cap.
  bad.assign(payload, payload + size);
  bad[0] = 0xFF;
  bad[1] = 0xFF;
  EXPECT_FALSE(net::decode_predict_payload(net::kVersion, bad.data(),
                                           bad.size(), model, decoded));
  // Nonzero reserved bits in the prefix.
  bad.assign(payload, payload + size);
  bad[2] = 1;
  EXPECT_FALSE(net::decode_predict_payload(net::kVersion, bad.data(),
                                           bad.size(), model, decoded));
}

TEST(NetProtocol, HeaderAcceptsExactlyTheTwoKnownVersions) {
  std::vector<uint8_t> wire;
  net::encode_header(net::FrameHeader{}, wire);
  net::FrameHeader decoded;
  for (int v = 0; v <= 255; ++v) {
    wire[4] = static_cast<uint8_t>(v);
    const bool ok = net::decode_header(wire.data(), decoded);
    if (v == net::kVersion || v == net::kVersionLegacy) {
      EXPECT_TRUE(ok) << "version " << v;
      EXPECT_EQ(decoded.version, v);
    } else {
      EXPECT_FALSE(ok) << "version " << v;
    }
  }
}

TEST(NetProtocol, EveryTruncationOfAPredictFrameIsRejectedCleanly) {
  // Exhaustive short-read sweep over both frame versions: every proper
  // prefix either fails decode_header (when even the header is cut) or
  // fails the payload decoder — never reads past the buffer (the sanitizer
  // CI jobs are the oracle for that) and never "succeeds" on a partial
  // frame.
  const Tensor mask = random_mask(8, 14);
  for (const bool v2 : {false, true}) {
    const std::vector<uint8_t> frame =
        v2 ? net::make_predict_frame(3, mask, "m") : net::make_predict_frame(3, mask);
    for (size_t len = net::kHeaderBytes; len < frame.size(); ++len) {
      net::FrameHeader header;
      ASSERT_TRUE(net::decode_header(frame.data(), header));
      // A framed transport would wait for payload_bytes; feed the decoder
      // the truncated payload directly, as a corrupted peer would.
      std::vector<uint8_t> partial(frame.begin() + net::kHeaderBytes,
                                   frame.begin() + static_cast<ptrdiff_t>(len));
      std::string model;
      Tensor decoded;
      EXPECT_FALSE(net::decode_predict_payload(header.version, partial.data(),
                                               partial.size(), model, decoded))
          << (v2 ? "v2" : "v1") << " prefix of " << len << " bytes";
    }
  }
}

TEST(NetProtocol, SeededCorruptionCorpusNeverBreaksTheDecoder) {
  // Randomized corruption corpus over both frame versions: bit flips,
  // truncations, oversize length fields, version skew, and pure garbage.
  // The decoder must stay memory-safe (ASan/UBSan CI runs this test) and
  // every successful decode must satisfy the payload invariants. The seed
  // is fixed so a failure reproduces exactly.
  std::mt19937 rng(0xD01AB5u);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  const Tensor mask = random_mask(12, 15);

  for (int iter = 0; iter < 4000; ++iter) {
    // Start from a valid frame of either version.
    std::vector<uint8_t> frame;
    if (rng() % 2 == 0) {
      frame = net::make_predict_frame(iter, mask);
    } else {
      const size_t name_len = rng() % 9;
      std::string name(name_len, ' ');
      for (char& c : name) c = static_cast<char>(byte_dist(rng));
      frame = net::make_predict_frame(iter, mask, name);
    }

    switch (rng() % 5) {
      case 0: {  // 1..8 random bit flips
        const int flips = 1 + static_cast<int>(rng() % 8);
        for (int f = 0; f < flips; ++f) {
          frame[rng() % frame.size()] ^= static_cast<uint8_t>(1u << (rng() % 8));
        }
        break;
      }
      case 1: {  // truncation (keep at least the header for the decode path)
        frame.resize(net::kHeaderBytes + rng() % (frame.size() - net::kHeaderBytes + 1));
        break;
      }
      case 2: {  // oversize / mismatched length field
        const uint32_t bogus = net::kMaxPayloadBytes + 1 + rng() % 1000;
        for (int i = 0; i < 4; ++i) {
          frame[16 + static_cast<size_t>(i)] =
              static_cast<uint8_t>((bogus >> (8 * i)) & 0xFF);
        }
        break;
      }
      case 3: {  // version skew
        frame[4] = static_cast<uint8_t>(byte_dist(rng));
        break;
      }
      case 4: {  // replace everything with garbage
        for (uint8_t& b : frame) b = static_cast<uint8_t>(byte_dist(rng));
        break;
      }
    }

    net::FrameHeader header;
    if (!net::decode_header(frame.data(), header)) continue;
    // Header still parsed: run the payload decoder over whatever bytes are
    // actually present (a real transport would cap at payload_bytes).
    const size_t have = std::min<size_t>(frame.size() - net::kHeaderBytes,
                                         header.payload_bytes);
    std::string model = "poison";
    Tensor decoded;
    if (net::decode_predict_payload(header.version,
                                    frame.data() + net::kHeaderBytes, have,
                                    model, decoded)) {
      // Survivors must still satisfy every protocol invariant.
      ASSERT_EQ(decoded.dim(), 2);
      ASSERT_GT(decoded.size(0), 0);
      ASSERT_GT(decoded.size(1), 0);
      ASSERT_LE(model.size(), net::kMaxModelNameBytes);
    }
  }
}

/// Engine + scheduler + server running on a background thread, torn down
/// in reverse order.
class LoopbackServer {
 public:
  explicit LoopbackServer(runtime::SchedulerOptions sched_opts = {},
                          net::ServerOptions server_opts = {})
      : engine_(tiny_config(), /*seed=*/17, runtime::EngineOptions{1}),
        scheduler_(engine_, sched_opts),
        server_(scheduler_, server_opts),
        loop_([this] { server_.run(); }) {}

  ~LoopbackServer() {
    server_.stop();
    join();
    scheduler_.shutdown();
  }

  runtime::InferenceEngine& engine() { return engine_; }
  net::Server& server() { return server_; }
  uint16_t port() const { return server_.port(); }
  void join() {
    if (loop_.joinable()) loop_.join();
  }

 private:
  runtime::InferenceEngine engine_;
  runtime::Scheduler scheduler_;
  net::Server server_;
  std::thread loop_;
};

TEST(NetServer, SingleRequestMatchesManifestModeBitwise) {
  LoopbackServer fixture;
  const Tensor mask = random_mask(64, 5);
  const Tensor expected = fixture.engine().predict(mask);

  net::Client client("127.0.0.1", fixture.port());
  const Tensor contour = client.predict(42, mask);

  // The contour crossed the wire quantized exactly like write_pgm, so
  // writing it must produce the byte-identical PGM manifest mode writes.
  const std::string socket_path = "/tmp/litho_net_socket.pgm";
  const std::string manifest_path = "/tmp/litho_net_manifest.pgm";
  io::write_pgm(socket_path, contour);
  io::write_pgm(manifest_path, expected);
  const std::string socket_bytes = read_file(socket_path);
  EXPECT_FALSE(socket_bytes.empty());
  EXPECT_EQ(socket_bytes, read_file(manifest_path));
  std::remove(socket_path.c_str());
  std::remove(manifest_path.c_str());

  const net::ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.requests_ok, 1);
  EXPECT_EQ(stats.requests_error, 0);
  EXPECT_EQ(stats.protocol_errors, 0);
}

TEST(NetServer, ConcurrentClientsAllGetCorrectContours) {
  LoopbackServer fixture;
  constexpr int kClients = 4;
  constexpr int kPerClient = 3;
  std::vector<Tensor> masks;
  std::vector<Tensor> expected;
  for (int i = 0; i < kClients * kPerClient; ++i) {
    masks.push_back(random_mask(64, 100 + static_cast<uint32_t>(i)));
    expected.push_back(fixture.engine().predict(masks.back()));
  }

  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        net::Client client("127.0.0.1", fixture.port());
        for (int r = 0; r < kPerClient; ++r) {
          const size_t i = static_cast<size_t>(c * kPerClient + r);
          const Tensor got = client.predict(i + 1, masks[i]);
          if (test::max_abs_diff(got, expected[i]) != 0.f) {
            failures[c] = "request " + std::to_string(i) + " mismatched";
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }
  const net::ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.requests_ok, kClients * kPerClient);
  EXPECT_EQ(stats.connections_accepted, kClients);
}

TEST(NetServer, FullQueueYieldsBusyRepliesNotBlockingOrDrops) {
  // A 1-deep queue draining through single predicts cannot absorb a
  // pipelined burst: the overflow must come back as BUSY frames — every
  // request gets exactly one reply, nothing blocks, nothing is dropped.
  runtime::SchedulerOptions sched_opts;
  sched_opts.max_batch = 1;
  sched_opts.queue_cap = 1;
  sched_opts.max_delay_us = 0;
  LoopbackServer fixture(sched_opts);

  const Tensor mask = random_mask(64, 9);
  const Tensor expected = fixture.engine().predict(mask);
  net::Client client("127.0.0.1", fixture.port());

  constexpr int kBurst = 32;
  for (uint64_t i = 1; i <= kBurst; ++i) client.send_predict(i, mask);
  int contours = 0, busy = 0;
  for (int i = 0; i < kBurst; ++i) {
    net::Reply reply = client.read_reply();
    if (reply.type == net::FrameType::kBusy) {
      ++busy;
    } else if (reply.type == net::FrameType::kContour) {
      ++contours;
      EXPECT_EQ(test::max_abs_diff(reply.contour, expected), 0.f);
    } else {
      FAIL() << "unexpected reply type " << static_cast<int>(reply.type);
    }
  }
  EXPECT_EQ(contours + busy, kBurst);
  EXPECT_GT(contours, 0);
  EXPECT_GT(busy, 0) << "a 1-deep queue absorbed a 32-request burst";
  const net::ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.requests_ok, contours);
  EXPECT_EQ(stats.busy_rejected, busy);
  EXPECT_EQ(stats.dropped_replies, 0);
}

TEST(NetServer, GarbageFrameGetsErrorReplyAndClose) {
  LoopbackServer fixture;
  net::Client client("127.0.0.1", fixture.port());
  std::vector<uint8_t> garbage(64, 0xAB);
  client.send_raw(garbage.data(), garbage.size());
  net::Reply reply = client.read_reply();
  EXPECT_EQ(reply.type, net::FrameType::kError);
  EXPECT_FALSE(reply.error.empty());
  // The server closes after a protocol error; the next read sees EOF.
  EXPECT_THROW(client.read_reply(), std::runtime_error);
  EXPECT_EQ(fixture.server().stats().protocol_errors, 1);
}

TEST(NetServer, OversizeFrameGetsErrorReplyAndClose) {
  LoopbackServer fixture;
  net::Client client("127.0.0.1", fixture.port());
  // A syntactically valid header whose payload length exceeds the cap.
  net::FrameHeader header;
  header.type = net::FrameType::kPredict;
  header.request_id = 1;
  header.payload_bytes = net::kMaxPayloadBytes + 1;
  std::vector<uint8_t> wire;
  net::encode_header(header, wire);
  client.send_raw(wire.data(), wire.size());
  net::Reply reply = client.read_reply();
  EXPECT_EQ(reply.type, net::FrameType::kError);
  EXPECT_THROW(client.read_reply(), std::runtime_error);
  EXPECT_EQ(fixture.server().stats().protocol_errors, 1);
}

TEST(NetServer, MalformedImagePayloadGetsErrorReplyAndClose) {
  LoopbackServer fixture;
  net::Client client("127.0.0.1", fixture.port());
  // Valid header, but the payload is too short to be an image.
  net::FrameHeader header;
  header.type = net::FrameType::kPredict;
  header.request_id = 3;
  header.payload_bytes = 4;
  std::vector<uint8_t> wire;
  net::encode_header(header, wire);
  wire.insert(wire.end(), {1, 2, 3, 4});
  client.send_raw(wire.data(), wire.size());
  net::Reply reply = client.read_reply();
  EXPECT_EQ(reply.type, net::FrameType::kError);
  EXPECT_EQ(reply.request_id, 3u);
  EXPECT_THROW(client.read_reply(), std::runtime_error);
}

TEST(NetServer, IdleConnectionReapedWhileActiveOneSurvives) {
  net::ServerOptions server_opts;
  server_opts.idle_timeout_ms = 200;
  LoopbackServer fixture({}, server_opts);
  const Tensor mask = random_mask(64, 31);
  const Tensor expected = fixture.engine().predict(mask);

  net::Client idle("127.0.0.1", fixture.port());
  net::Client active("127.0.0.1", fixture.port());
  // Drive traffic on `active` well past the timeout; `idle` sends nothing.
  // Each round trip restamps the active connection's activity clock.
  bool reaped = false;
  for (int i = 0; i < 60 && !reaped; ++i) {
    const Tensor got = active.predict(static_cast<uint64_t>(i) + 1, mask);
    ASSERT_EQ(test::max_abs_diff(got, expected), 0.f);
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    reaped = fixture.server().stats().idle_reaped > 0;
  }
  EXPECT_TRUE(reaped) << "idle connection never reaped";
  EXPECT_EQ(fixture.server().stats().idle_reaped, 1);
  // The reaped socket was closed server-side: the next read hits EOF.
  EXPECT_THROW(idle.read_reply(), std::runtime_error);
  // The trafficking connection is untouched and still serves.
  const Tensor got = active.predict(999, mask);
  EXPECT_EQ(test::max_abs_diff(got, expected), 0.f);
}

TEST(NetServer, ShutdownFrameDrainsInFlightRequestsThenStops) {
  LoopbackServer fixture;
  const Tensor mask = random_mask(64, 21);
  const Tensor expected = fixture.engine().predict(mask);
  net::Client client("127.0.0.1", fixture.port());
  // Predict pipelined ahead of the shutdown: the reply must still arrive.
  client.send_predict(77, mask);
  client.send_shutdown();
  net::Reply reply = client.read_reply();
  ASSERT_EQ(reply.type, net::FrameType::kContour);
  EXPECT_EQ(reply.request_id, 77u);
  EXPECT_EQ(test::max_abs_diff(reply.contour, expected), 0.f);
  fixture.join();  // run() must return on its own
  EXPECT_TRUE(fixture.server().shutdown_requested());
}

}  // namespace
}  // namespace litho
