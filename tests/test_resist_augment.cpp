// Tests for the variable-threshold resist model, dihedral augmentation and
// the SGD optimizer.
#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/augment.h"
#include "core/trainer.h"
#include "litho/resist.h"
#include "nn/layers.h"
#include "litho/simulator.h"
#include "nn/optim.h"
#include "test_util.h"

namespace litho::optics {
namespace {

TEST(Vtr, ReducesToConstantThreshold) {
  VtrModel ctr;  // a1 = a2 = 0, a0 = 0.225
  Tensor aerial({2, 2}, {0.1f, 0.3f, 0.225f, 0.9f});
  Tensor z = ctr.apply(aerial);
  EXPECT_FLOAT_EQ(z[0], 0.f);
  EXPECT_FLOAT_EQ(z[1], 1.f);
  EXPECT_FLOAT_EQ(z[2], 1.f);
  EXPECT_FLOAT_EQ(z[3], 1.f);
}

TEST(Vtr, GradientOfConstantImageIsZero) {
  Tensor flat = Tensor::full({8, 8}, 0.4f);
  EXPECT_FLOAT_EQ(intensity_gradient(flat).abs_max(), 0.f);
}

TEST(Vtr, GradientOfRampIsUniform) {
  Tensor ramp({4, 4});
  for (int64_t r = 0; r < 4; ++r)
    for (int64_t c = 0; c < 4; ++c) ramp[r * 4 + c] = static_cast<float>(c);
  Tensor g = intensity_gradient(ramp);
  // Interior columns see the full central difference of 1.
  EXPECT_FLOAT_EQ(g.at({1, 1}), 1.f);
  EXPECT_FLOAT_EQ(g.at({2, 2}), 1.f);
}

TEST(Vtr, LocalMaxDilatesPeaks) {
  Tensor img({5, 5});
  img.at({2, 2}) = 1.f;
  Tensor m = local_max(img, 1);
  EXPECT_FLOAT_EQ(m.at({1, 1}), 1.f);
  EXPECT_FLOAT_EQ(m.at({2, 3}), 1.f);
  EXPECT_FLOAT_EQ(m.at({0, 0}), 0.f);
}

TEST(Vtr, CalibrationRecoversSyntheticThreshold) {
  // Golden contours produced by a known CTR at 0.30; calibration starting
  // at 0.225 must move a0 toward 0.30.
  auto rng = test::rng(1);
  std::vector<Tensor> aerials, goldens;
  for (int s = 0; s < 4; ++s) {
    Tensor a = Tensor::rand({24, 24}, rng);
    // Smooth it slightly so contours are not salt-and-pepper.
    Tensor sm({24, 24});
    for (int64_t r = 0; r < 24; ++r) {
      for (int64_t c = 0; c < 24; ++c) {
        float acc = 0;
        int cnt = 0;
        for (int64_t dr = -1; dr <= 1; ++dr) {
          for (int64_t dc = -1; dc <= 1; ++dc) {
            const int64_t rr = r + dr, cc = c + dc;
            if (rr >= 0 && rr < 24 && cc >= 0 && cc < 24) {
              acc += a[rr * 24 + cc];
              ++cnt;
            }
          }
        }
        sm[r * 24 + c] = acc / static_cast<float>(cnt);
      }
    }
    VtrModel truth;
    truth.a0 = 0.30;
    aerials.push_back(sm);
    goldens.push_back(truth.apply(sm));
  }
  const VtrModel fit = calibrate_vtr(aerials, goldens, 11, 3);
  EXPECT_NEAR(fit.a0 + fit.a1 * 0.6 + fit.a2 * 0.05, 0.30, 0.05)
      << "a0=" << fit.a0 << " a1=" << fit.a1 << " a2=" << fit.a2;
  // Calibrated model must reproduce the golden contours nearly perfectly.
  double iou_sum = 0;
  for (size_t i = 0; i < aerials.size(); ++i) {
    Tensor pred = fit.apply(aerials[i]);
    int64_t inter = 0, uni = 0;
    for (int64_t p = 0; p < pred.numel(); ++p) {
      if (pred[p] >= 0.5f && goldens[i][p] >= 0.5f) ++inter;
      if (pred[p] >= 0.5f || goldens[i][p] >= 0.5f) ++uni;
    }
    iou_sum += static_cast<double>(inter) / static_cast<double>(uni);
  }
  EXPECT_GT(iou_sum / 4.0, 0.9);
}

TEST(Vtr, SlopeTermShiftsThresholdAtEdges) {
  // A step edge: positive a2 raises the threshold where |grad| is large,
  // shrinking the printed region relative to CTR.
  Tensor aerial({8, 8});
  for (int64_t r = 0; r < 8; ++r)
    for (int64_t c = 4; c < 8; ++c) aerial[r * 8 + c] = 0.4f;
  VtrModel ctr;      // threshold 0.225
  VtrModel vtr = ctr;
  vtr.a2 = 1.5;      // gradient at the step is 0.2 -> +0.3 threshold there
  const float ctr_area = ctr.apply(aerial).sum();
  const float vtr_area = vtr.apply(aerial).sum();
  EXPECT_LT(vtr_area, ctr_area);
  // Interior of the bright region (zero gradient) still prints.
  EXPECT_FLOAT_EQ(vtr.apply(aerial).at({4, 6}), 1.f);
}

TEST(Vtr, LocalMaxTermLowersEffectiveThresholdUniformly) {
  Tensor aerial = Tensor::full({6, 6}, 0.2f);  // below CTR threshold
  VtrModel m;
  m.a1 = -0.2;  // T = 0.225 - 0.2*0.2 = 0.185 < 0.2 -> everything prints
  EXPECT_FLOAT_EQ(m.apply(aerial).sum(), 36.f);
}

TEST(Vtr, CalibrationRejectsBadInput) {
  EXPECT_THROW(calibrate_vtr({}, {}), std::invalid_argument);
  EXPECT_THROW(calibrate_vtr({Tensor({2, 2})}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace litho::optics

namespace litho::core {
namespace {

TEST(Dihedral, IdentityAndInvolutions) {
  auto rng = test::rng(2);
  Tensor img = Tensor::rand({6, 6}, rng);
  EXPECT_EQ(test::max_abs_diff(dihedral(img, 0), img), 0.f);
  for (int k = 0; k < 8; ++k) {
    Tensor round = dihedral(dihedral(img, k), inverse_dihedral(k));
    EXPECT_EQ(test::max_abs_diff(round, img), 0.f) << "k=" << k;
  }
}

TEST(Dihedral, TransformsAreDistinct) {
  // An asymmetric image must map to 8 distinct results.
  Tensor img({4, 4});
  img.at({0, 1}) = 1.f;
  img.at({1, 0}) = 2.f;
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      EXPECT_GT(test::max_abs_diff(dihedral(img, a), dihedral(img, b)), 0.f)
          << a << " vs " << b;
    }
  }
}

TEST(Dihedral, Rotation90MovesCornerCorrectly) {
  Tensor img({3, 3});
  img.at({0, 0}) = 1.f;
  Tensor rot = dihedral(img, 1);
  // One 90-degree rotation moves the top-left corner to another corner.
  float corner_sum = rot.at({0, 2}) + rot.at({2, 0}) + rot.at({2, 2});
  EXPECT_FLOAT_EQ(corner_sum, 1.f);
  EXPECT_FLOAT_EQ(rot.at({1, 1}), 0.f);
}

TEST(Dihedral, RejectsBadInput) {
  EXPECT_THROW(dihedral(Tensor({2, 3}), 0), std::invalid_argument);
  EXPECT_THROW(dihedral(Tensor({2, 2}), 8), std::invalid_argument);
}

TEST(Augment, ExpandsDatasetConsistently) {
  ContourDataset ds;
  auto rng = test::rng(3);
  ds.masks.push_back(Tensor::rand({4, 4}, rng));
  ds.resists.push_back(Tensor::rand({4, 4}, rng));
  const ContourDataset aug = augment_dataset(ds);
  EXPECT_EQ(aug.size(), 8);
  // Transform k applied identically to mask and resist.
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(test::max_abs_diff(aug.masks[static_cast<size_t>(k)],
                                 dihedral(ds.masks[0], k)),
              0.f);
    EXPECT_EQ(test::max_abs_diff(aug.resists[static_cast<size_t>(k)],
                                 dihedral(ds.resists[0], k)),
              0.f);
  }
}

TEST(Augment, TrainerOptionMultipliesSteps) {
  // With augment=true an epoch sees 8x the batches; verify via the epoch
  // callback observing the batch count indirectly through the loss count
  // being unchanged (one callback per epoch) but the training set larger.
  ContourDataset ds;
  auto rng = test::rng(4);
  for (int i = 0; i < 2; ++i) {
    ds.masks.push_back(Tensor::rand({32, 32}, rng));
    Tensor z({32, 32});
    for (int64_t p = 200; p < 260; ++p) z[p] = 1.f;
    ds.resists.push_back(z);
  }
  class Counter : public nn::ContourModel {
   public:
    explicit Counter(std::mt19937& rng) : conv_(1, 1, 3, 1, 1, rng) {
      register_module("conv", &conv_);
    }
    ag::Variable forward(const ag::Variable& x) override {
      ++calls;
      return ag::tanh(conv_.forward(x));
    }
    std::string name() const override { return "counter"; }
    int calls = 0;

   private:
    nn::Conv2d conv_;
  };
  auto rng2 = test::rng(5);
  Counter plain(rng2), augmented(rng2);
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 1;
  train_model(plain, ds, cfg);
  cfg.augment = true;
  train_model(augmented, ds, cfg);
  EXPECT_EQ(plain.calls, 2);
  EXPECT_EQ(augmented.calls, 16);
}

}  // namespace
}  // namespace litho::core

namespace litho::nn {
namespace {

TEST(Sgd, ConvergesOnQuadratic) {
  ag::Variable w(Tensor::zeros({3}), true);
  Sgd opt({w}, 0.05f, 0.9f);
  Tensor target = Tensor::full({3}, -2.f);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    ag::Variable loss = ag::mse_loss(w, target);
    loss.backward();
    opt.step();
  }
  EXPECT_LT(test::max_abs_diff(w.value(), target), 1e-2f);
}

TEST(Sgd, WeightDecayShrinks) {
  ag::Variable w(Tensor::full({1}, 4.f), true);
  Sgd opt({w}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();
    ag::Variable loss = ag::scale(ag::sum(w), 0.f);
    loss.backward();
    opt.step();
  }
  EXPECT_LT(std::abs(w.value()[0]), 0.1f);
}

}  // namespace
}  // namespace litho::nn
