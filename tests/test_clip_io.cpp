#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "io/io.h"
#include "layout/clip_io.h"
#include "test_util.h"

namespace litho::layout {
namespace {

TEST(ClipIo, RoundTrip) {
  Clip clip;
  clip.extent_nm = 2048;
  clip.shapes = {{0, 0, 100, 100}, {500, 700, 900, 780}};
  const std::string path = "/tmp/litho_test.lclip";
  write_clip(path, clip);
  const Clip loaded = read_clip(path);
  EXPECT_EQ(loaded.extent_nm, 2048);
  ASSERT_EQ(loaded.shapes.size(), 2u);
  EXPECT_EQ(loaded.shapes[1].x0, 500);
  EXPECT_EQ(loaded.shapes[1].y1, 780);
  std::filesystem::remove(path);
}

TEST(ClipIo, RejectsBadMagic) {
  const std::string path = "/tmp/litho_bad.lclip";
  std::ofstream(path) << "GDSII 7\n";
  EXPECT_THROW(read_clip(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(ClipIo, RejectsEmptyRectAndMissingExtent) {
  const std::string path = "/tmp/litho_bad2.lclip";
  std::ofstream(path) << "LCLIP 1\nextent 100\nrect 5 5 5 10\n";
  EXPECT_THROW(read_clip(path), std::runtime_error);
  std::ofstream(path) << "LCLIP 1\nrect 0 0 10 10\n";
  EXPECT_THROW(read_clip(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(ClipIo, RasterizesAfterRoundTrip) {
  Clip clip;
  clip.extent_nm = 128;
  clip.shapes = {{32, 32, 96, 96}};
  const std::string path = "/tmp/litho_rt.lclip";
  write_clip(path, clip);
  Tensor a = rasterize(clip, 16.0);
  Tensor b = rasterize(read_clip(path), 16.0);
  EXPECT_EQ(litho::test::max_abs_diff(a, b), 0.f);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace litho::layout

namespace litho::io {
namespace {

TEST(PgmRead, RoundTripsThroughWrite) {
  auto rng = litho::test::rng();
  Tensor img = Tensor::rand({13, 17}, rng);
  const std::string path = "/tmp/litho_rt.pgm";
  write_pgm(path, img);
  Tensor back = read_pgm(path);
  EXPECT_EQ(back.shape(), img.shape());
  // 8-bit quantization: half-LSB tolerance.
  EXPECT_LT(litho::test::max_abs_diff(back, img), 1.f / 255.f);
  std::filesystem::remove(path);
}

TEST(PgmRead, HandlesCommentsInHeader) {
  const std::string path = "/tmp/litho_comment.pgm";
  std::ofstream os(path, std::ios::binary);
  os << "P5\n# a comment line\n2 1\n255\n";
  const unsigned char px[2] = {0, 255};
  os.write(reinterpret_cast<const char*>(px), 2);
  os.close();
  Tensor t = read_pgm(path);
  EXPECT_EQ(t.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(t[0], 0.f);
  EXPECT_FLOAT_EQ(t[1], 1.f);
  std::filesystem::remove(path);
}

TEST(PgmRead, RejectsNonPgmAndTruncated) {
  const std::string path = "/tmp/litho_notpgm.pgm";
  std::ofstream(path) << "P6\n1 1\n255\nxxx";
  EXPECT_THROW(read_pgm(path), std::runtime_error);
  std::ofstream(path, std::ios::binary) << "P5\n4 4\n255\nab";
  EXPECT_THROW(read_pgm(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace litho::io
