// End-to-end integration tests: dataset generation -> training -> evaluation.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/dataset.h"
#include "core/trainer.h"
#include "models/unet.h"
#include "test_util.h"

namespace litho::core {
namespace {

const optics::LithoSimulator& shared_sim() {
  static optics::LithoSimulator* sim = [] {
    optics::OpticalConfig cfg;
    cfg.pixel_nm = 16.0;
    cfg.kernel_grid = 32;
    cfg.kernel_count = 10;
    return new optics::LithoSimulator(cfg, optics::compute_socs_kernels(cfg));
  }();
  return *sim;
}

DatasetSpec tiny_spec() {
  DatasetSpec spec;
  spec.kind = DatasetKind::kViaDense;
  spec.count = 6;
  spec.tile_px = 64;
  spec.seed = 3;
  spec.opc_iterations = 2;  // sub-nominal contacts need OPC bias to print
  return spec;
}

TEST(Dataset, GeneratesConsistentPairs) {
  const auto ds = build_dataset(shared_sim(), tiny_spec());
  ASSERT_EQ(ds.size(), 6);
  for (int64_t i = 0; i < ds.size(); ++i) {
    const Tensor& m = ds.masks[static_cast<size_t>(i)];
    const Tensor& z = ds.resists[static_cast<size_t>(i)];
    EXPECT_EQ(m.shape(), (Shape{64, 64}));
    EXPECT_EQ(z.shape(), (Shape{64, 64}));
    EXPECT_GE(m.min(), 0.f);
    EXPECT_LE(m.max(), 1.f);
    // Resist is binary.
    for (int64_t p = 0; p < z.numel(); ++p) {
      EXPECT_TRUE(z[p] == 0.f || z[p] == 1.f);
    }
  }
  // Dense via clips must actually print something on most samples.
  int printed = 0;
  for (const Tensor& z : ds.resists) {
    if (z.sum() > 0) ++printed;
  }
  EXPECT_GE(printed, 4);
}

TEST(Dataset, DeterministicForSeed) {
  const auto a = build_dataset(shared_sim(), tiny_spec());
  const auto b = build_dataset(shared_sim(), tiny_spec());
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(test::max_abs_diff(a.masks[static_cast<size_t>(i)],
                                 b.masks[static_cast<size_t>(i)]),
              0.f);
  }
}

TEST(Dataset, CacheRoundTrip) {
  DatasetSpec spec = tiny_spec();
  spec.cache_file = "/tmp/litho_test_dataset.bin";
  std::filesystem::remove(spec.cache_file);
  const auto fresh = build_dataset(shared_sim(), spec);
  EXPECT_TRUE(std::filesystem::exists(spec.cache_file));
  const auto cached = build_dataset(shared_sim(), spec);
  ASSERT_EQ(fresh.size(), cached.size());
  for (int64_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(test::max_abs_diff(fresh.resists[static_cast<size_t>(i)],
                                 cached.resists[static_cast<size_t>(i)]),
              0.f);
  }
  std::filesystem::remove(spec.cache_file);
}

TEST(Dataset, OpcMasksDifferFromRawMasks) {
  DatasetSpec raw = tiny_spec();
  raw.opc_iterations = 0;
  DatasetSpec corrected = tiny_spec();
  const auto a = build_dataset(shared_sim(), raw);
  const auto b = build_dataset(shared_sim(), corrected);
  EXPECT_GT(test::max_abs_diff(a.masks[0], b.masks[0]), 0.01f)
      << "OPC did not move any edges";
}

TEST(Dataset, GenerateMaskLargeTile) {
  Tensor mask = generate_mask(shared_sim(), DatasetKind::kViaSparse,
                              /*tile_px=*/128, /*seed=*/5,
                              /*opc_iterations=*/0);
  EXPECT_EQ(mask.shape(), (Shape{128, 128}));
  EXPECT_GT(mask.sum(), 0.f);
}

TEST(Trainer, TargetsAreSignEncoded) {
  Tensor z({2}, {0.f, 1.f});
  Tensor t = to_target(z);
  EXPECT_FLOAT_EQ(t[0], -1.f);
  EXPECT_FLOAT_EQ(t[1], 1.f);
}

TEST(Trainer, UNetLearnsTinyDataset) {
  const auto ds = build_dataset(shared_sim(), tiny_spec());
  auto rng = test::rng(11);
  models::UNet model(models::UNetConfig{4, 3}, rng);
  TrainConfig cfg;
  cfg.epochs = 24;
  cfg.batch_size = 2;
  cfg.lr = 5e-3f;
  cfg.lr_step = 8;
  std::vector<double> losses;
  cfg.on_epoch = [&](int64_t, double loss) { losses.push_back(loss); };
  train_model(model, ds, cfg);
  ASSERT_EQ(losses.size(), 24u);
  EXPECT_LT(losses.back(), losses.front())
      << "training loss failed to decrease";
  // After training on the (tiny) set, metrics on it should beat chance.
  const auto m = evaluate_model(model, ds);
  EXPECT_GT(m.miou, 0.6);
  EXPECT_GT(m.mpa, 0.6);
}

TEST(Trainer, EmptyDatasetThrows) {
  auto rng = test::rng(12);
  models::UNet model(models::UNetConfig{4, 3}, rng);
  EXPECT_THROW(train_model(model, ContourDataset{}, TrainConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace litho::core
