// Tests for the dynamic-batching request scheduler: result correctness and
// ordering, bitwise determinism under randomized submit timing, bounded-queue
// backpressure, large-tile routing, and drain-then-stop shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/doinn.h"
#include "runtime/engine.h"
#include "runtime/scheduler.h"
#include "test_util.h"

namespace litho {
namespace {

/// Small DOINN configuration that keeps scheduler tests fast: 64 px tiles.
core::DoinnConfig tiny_config() {
  core::DoinnConfig cfg = core::DoinnConfig::small();
  cfg.tile = 64;
  cfg.modes = 4;
  cfg.gp_channels = 4;
  return cfg;
}

Tensor random_mask(int64_t side, uint32_t seed) {
  auto rng = test::rng(seed);
  Tensor mask = Tensor::rand({side, side}, rng);
  mask.apply_([](float v) { return v >= 0.6f ? 1.f : 0.f; });
  return mask;
}

TEST(Scheduler, RejectsInvalidOptions) {
  core::DoinnConfig cfg = tiny_config();
  runtime::InferenceEngine engine(cfg, 1, runtime::EngineOptions{1});
  runtime::SchedulerOptions bad;
  bad.max_batch = 0;
  EXPECT_THROW(runtime::Scheduler(engine, bad), std::invalid_argument);
  bad = {};
  bad.max_delay_us = -1;
  EXPECT_THROW(runtime::Scheduler(engine, bad), std::invalid_argument);
  bad = {};
  bad.queue_cap = bad.max_batch - 1;
  EXPECT_THROW(runtime::Scheduler(engine, bad), std::invalid_argument);
}

TEST(Scheduler, ResultsMatchUnbatchedPredictInSubmissionOrder) {
  core::DoinnConfig cfg = tiny_config();
  runtime::InferenceEngine engine(cfg, /*seed=*/21,
                                  runtime::EngineOptions{/*num_threads=*/2});
  runtime::Scheduler scheduler(engine);

  std::vector<Tensor> masks;
  for (uint32_t s = 0; s < 6; ++s) masks.push_back(random_mask(cfg.tile, s));
  std::vector<std::future<Tensor>> futures;
  for (const Tensor& m : masks) futures.push_back(scheduler.submit(m));
  for (size_t i = 0; i < masks.size(); ++i) {
    const Tensor got = futures[i].get();
    const Tensor expected = engine.predict(masks[i]);
    EXPECT_EQ(test::max_abs_diff(got, expected), 0.f) << "request " << i;
  }
  const runtime::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 6);
  EXPECT_EQ(stats.completed, 6);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_GT(stats.batches, 0);
  EXPECT_EQ(stats.batched_requests, 6);
  EXPECT_GT(stats.latency_ms_p99, 0.0);
}

TEST(Scheduler, HugeMaxDelayIsClampedNotOverflowed) {
  // A "wait forever" delay must clamp (to 60 s), not overflow the
  // steady_clock deadline into the past — which would silently flush every
  // batch at size ~1. With the clamp, four submits under max_batch=4 are
  // held and dispatched as one batch.
  core::DoinnConfig cfg = tiny_config();
  runtime::InferenceEngine engine(cfg, 1, runtime::EngineOptions{1});
  runtime::SchedulerOptions opts;
  opts.max_batch = 4;
  opts.max_delay_us = int64_t{1} << 60;
  runtime::Scheduler scheduler(engine, opts);
  std::vector<std::future<Tensor>> futures;
  for (uint32_t s = 0; s < 4; ++s) {
    futures.push_back(scheduler.submit(random_mask(cfg.tile, s)));
  }
  for (auto& f : futures) (void)f.get();
  const runtime::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 4);
  EXPECT_EQ(stats.batches, 1) << "deadline overflow split the batch";
}

TEST(Scheduler, SubmitRejectsNon2DMasks) {
  core::DoinnConfig cfg = tiny_config();
  runtime::InferenceEngine engine(cfg, 1, runtime::EngineOptions{1});
  runtime::Scheduler scheduler(engine);
  EXPECT_THROW(scheduler.submit(Tensor({2, 3, 4})), std::invalid_argument);
}

// The determinism contract: for a fixed engine, every coalescing pattern —
// whatever batches happen to form under random client timing, batch knobs
// and thread counts — yields bitwise the per-request predict result.
TEST(Scheduler, BitwiseDeterministicUnderRandomSubmitTiming) {
  core::DoinnConfig cfg = tiny_config();
  runtime::InferenceEngine engine(cfg, /*seed=*/77,
                                  runtime::EngineOptions{/*num_threads=*/2});

  constexpr size_t kRequests = 12;
  std::vector<Tensor> masks;
  std::vector<Tensor> expected;
  for (uint32_t s = 0; s < kRequests; ++s) {
    masks.push_back(random_mask(cfg.tile, 100 + s));
    expected.push_back(engine.predict(masks.back()));
  }

  std::mt19937 timing_rng(13);
  for (int trial = 0; trial < 3; ++trial) {
    runtime::SchedulerOptions opts;
    opts.max_batch = 1 + static_cast<int>(timing_rng() % 8);
    opts.max_delay_us = static_cast<int64_t>(timing_rng() % 3000);
    opts.queue_cap = opts.max_batch + static_cast<int>(timing_rng() % 16);
    runtime::Scheduler scheduler(engine, opts);

    std::vector<Tensor> got(kRequests);
    std::vector<std::thread> clients;
    std::vector<unsigned> delays;
    for (size_t i = 0; i < kRequests; ++i) {
      delays.push_back(timing_rng() % 2000);
    }
    for (int c = 0; c < 4; ++c) {
      clients.emplace_back([&, c] {
        for (size_t i = static_cast<size_t>(c); i < kRequests; i += 4) {
          std::this_thread::sleep_for(std::chrono::microseconds(delays[i]));
          got[i] = scheduler.submit(masks[i]).get();
        }
      });
    }
    for (auto& t : clients) t.join();
    for (size_t i = 0; i < kRequests; ++i) {
      EXPECT_EQ(test::max_abs_diff(got[i], expected[i]), 0.f)
          << "trial " << trial << " request " << i << " (max_batch "
          << opts.max_batch << ", max_delay_us " << opts.max_delay_us << ")";
    }
  }
}

TEST(Scheduler, MixedShapesCoalesceOnlyWithinShape) {
  // 96 px tile so a second, smaller shape exists that satisfies the model's
  // input constraints (extent divisible by 32, pooled spectrum >= modes).
  core::DoinnConfig cfg = tiny_config();
  cfg.tile = 96;
  runtime::InferenceEngine engine(cfg, /*seed=*/5,
                                  runtime::EngineOptions{1});
  runtime::SchedulerOptions opts;
  opts.max_batch = 8;
  opts.max_delay_us = 50000;  // force flushes to come from shape breaks
  runtime::Scheduler scheduler(engine, opts);

  // Alternate two shapes; predict_batch requires equal shapes, so the
  // dispatcher must break batches at every boundary.
  std::vector<Tensor> masks;
  for (uint32_t s = 0; s < 8; ++s) {
    masks.push_back(random_mask(s % 2 == 0 ? cfg.tile : 64, s));
  }
  std::vector<std::future<Tensor>> futures;
  for (const Tensor& m : masks) futures.push_back(scheduler.submit(m));
  for (size_t i = 0; i < masks.size(); ++i) {
    const Tensor got = futures[i].get();
    const Tensor expected = engine.predict(masks[i]);
    EXPECT_EQ(test::max_abs_diff(got, expected), 0.f) << "request " << i;
  }
}

TEST(Scheduler, RoutesOversizedMasksToLargeTilePath) {
  core::DoinnConfig cfg = tiny_config();
  runtime::InferenceEngine engine(cfg, /*seed=*/33,
                                  runtime::EngineOptions{2});
  runtime::Scheduler scheduler(engine);

  const Tensor small = random_mask(cfg.tile, 1);
  const Tensor big = random_mask(2 * cfg.tile, 2);
  auto f_small = scheduler.submit(small);
  auto f_big = scheduler.submit(big);
  EXPECT_EQ(test::max_abs_diff(f_small.get(), engine.predict(small)), 0.f);
  EXPECT_EQ(test::max_abs_diff(f_big.get(), engine.predict_large(big)), 0.f);
  const runtime::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.large, 1);
  EXPECT_EQ(stats.completed, 2);
}

TEST(Scheduler, BackpressureBoundsTheQueue) {
  core::DoinnConfig cfg = tiny_config();
  runtime::InferenceEngine engine(cfg, /*seed=*/9, runtime::EngineOptions{1});
  runtime::SchedulerOptions opts;
  opts.max_batch = 2;
  opts.queue_cap = 3;
  opts.max_delay_us = 0;
  runtime::Scheduler scheduler(engine, opts);

  constexpr size_t kRequests = 16;
  std::vector<std::future<Tensor>> futures;
  const Tensor mask = random_mask(cfg.tile, 3);
  for (size_t i = 0; i < kRequests; ++i) {
    futures.push_back(scheduler.submit(mask));  // blocks while queue is full
  }
  for (auto& f : futures) (void)f.get();
  const runtime::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, static_cast<int64_t>(kRequests));
  EXPECT_EQ(stats.completed, static_cast<int64_t>(kRequests));
  // The bounded queue never held more than queue_cap requests even though
  // the producer ran far ahead of the dispatcher.
  EXPECT_LE(stats.max_queue_depth, static_cast<int64_t>(opts.queue_cap));
  EXPECT_GT(stats.max_queue_depth, 0);
}

TEST(Scheduler, ShutdownDrainsPendingWork) {
  core::DoinnConfig cfg = tiny_config();
  runtime::InferenceEngine engine(cfg, /*seed=*/11, runtime::EngineOptions{1});
  auto scheduler = std::make_unique<runtime::Scheduler>(engine);

  std::vector<Tensor> masks;
  std::vector<std::future<Tensor>> futures;
  for (uint32_t s = 0; s < 5; ++s) {
    masks.push_back(random_mask(cfg.tile, 40 + s));
    futures.push_back(scheduler->submit(masks.back()));
  }
  scheduler->shutdown();  // must resolve every pending future first
  for (size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "request " << i << " left unresolved by shutdown";
    EXPECT_EQ(test::max_abs_diff(futures[i].get(), engine.predict(masks[i])),
              0.f);
  }
  EXPECT_THROW(scheduler->submit(masks[0]), std::runtime_error);
  scheduler->shutdown();  // idempotent
  scheduler.reset();      // destructor after explicit shutdown is fine
}

TEST(Scheduler, ShutdownUnblocksBackpressuredSubmitters) {
  core::DoinnConfig cfg = tiny_config();
  runtime::InferenceEngine engine(cfg, /*seed=*/2, runtime::EngineOptions{1});
  runtime::SchedulerOptions opts;
  opts.max_batch = 1;
  opts.queue_cap = 1;
  runtime::Scheduler scheduler(engine, opts);

  const Tensor mask = random_mask(cfg.tile, 8);
  std::atomic<int> accepted{0}, rejected{0};
  std::thread producer([&] {
    for (int i = 0; i < 50; ++i) {
      try {
        (void)scheduler.submit(mask);
        accepted.fetch_add(1);
      } catch (const std::runtime_error&) {
        rejected.fetch_add(1);
        return;  // shutdown reached while (possibly) blocked in submit
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  scheduler.shutdown();
  producer.join();
  // Either the producer finished all 50 before shutdown or it was cut off
  // with the documented exception — never a hang or a crash.
  EXPECT_TRUE(rejected.load() == 1 || accepted.load() == 50);
}

TEST(Scheduler, TrySubmitMatchesSubmitBitwise) {
  core::DoinnConfig cfg = tiny_config();
  runtime::InferenceEngine engine(cfg, /*seed=*/55, runtime::EngineOptions{1});
  runtime::Scheduler scheduler(engine);

  std::vector<Tensor> masks;
  std::vector<std::future<Tensor>> futures;
  for (uint32_t s = 0; s < 4; ++s) {
    masks.push_back(random_mask(cfg.tile, 200 + s));
    auto f = scheduler.try_submit(masks.back());
    ASSERT_TRUE(f.has_value()) << "uncontended try_submit rejected request "
                               << s;
    futures.push_back(std::move(*f));
  }
  for (size_t i = 0; i < masks.size(); ++i) {
    EXPECT_EQ(test::max_abs_diff(futures[i].get(), engine.predict(masks[i])),
              0.f)
        << "request " << i;
  }
  const runtime::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 4);
  EXPECT_EQ(stats.rejected, 0);
}

TEST(Scheduler, TrySubmitRejectsWhenQueueFullInsteadOfBlocking) {
  core::DoinnConfig cfg = tiny_config();
  runtime::InferenceEngine engine(cfg, /*seed=*/55, runtime::EngineOptions{1});
  runtime::SchedulerOptions opts;
  opts.max_batch = 1;
  opts.queue_cap = 1;
  opts.max_delay_us = 0;
  runtime::Scheduler scheduler(engine, opts);

  // Submissions outrun a 1-deep queue draining through single predicts:
  // some must come back rejected, and every try_submit must return
  // immediately (the whole point of the non-blocking path) rather than
  // stalling like submit() does.
  const Tensor mask = random_mask(cfg.tile, 4);
  std::vector<std::future<Tensor>> accepted;
  int64_t rejected = 0;
  for (int i = 0; i < 32; ++i) {
    auto f = scheduler.try_submit(mask);
    if (f.has_value()) {
      accepted.push_back(std::move(*f));
    } else {
      ++rejected;
    }
  }
  for (auto& f : accepted) (void)f.get();
  EXPECT_GT(rejected, 0) << "32 instant submits never found the queue full";
  EXPECT_GT(static_cast<int64_t>(accepted.size()), 0);
  const runtime::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.submitted, static_cast<int64_t>(accepted.size()));
  EXPECT_EQ(stats.completed, static_cast<int64_t>(accepted.size()));
}

TEST(Scheduler, TrySubmitAfterShutdownRejectsInsteadOfThrowing) {
  core::DoinnConfig cfg = tiny_config();
  runtime::InferenceEngine engine(cfg, /*seed=*/6, runtime::EngineOptions{1});
  runtime::Scheduler scheduler(engine);
  scheduler.shutdown();
  EXPECT_FALSE(scheduler.try_submit(random_mask(cfg.tile, 1)).has_value());
  // Malformed input is still a caller bug, not backpressure.
  EXPECT_THROW(scheduler.try_submit(Tensor({2, 3, 4})), std::invalid_argument);
}

TEST(Scheduler, AdaptiveDelayKeepsResultsBitwiseIdentical) {
  core::DoinnConfig cfg = tiny_config();
  runtime::InferenceEngine engine(cfg, /*seed=*/81,
                                  runtime::EngineOptions{/*num_threads=*/2});

  constexpr size_t kRequests = 10;
  std::vector<Tensor> masks;
  std::vector<Tensor> expected;
  for (uint32_t s = 0; s < kRequests; ++s) {
    masks.push_back(random_mask(cfg.tile, 300 + s));
    expected.push_back(engine.predict(masks.back()));
  }

  // Whatever batch shapes the adaptive flush policy produces under random
  // arrival timing, results must stay bitwise equal to per-request predict
  // — the policy only moves the flush point, never the math.
  std::mt19937 timing_rng(29);
  for (int trial = 0; trial < 3; ++trial) {
    runtime::SchedulerOptions opts;
    opts.max_batch = 4;
    opts.max_delay_us = 2000;
    opts.adaptive_delay = true;
    runtime::Scheduler scheduler(engine, opts);
    std::vector<unsigned> delays;
    for (size_t i = 0; i < kRequests; ++i) {
      delays.push_back(timing_rng() % 1500);
    }
    std::vector<std::future<Tensor>> futures;
    for (size_t i = 0; i < kRequests; ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(delays[i]));
      futures.push_back(scheduler.submit(masks[i]));
    }
    for (size_t i = 0; i < kRequests; ++i) {
      EXPECT_EQ(test::max_abs_diff(futures[i].get(), expected[i]), 0.f)
          << "trial " << trial << " request " << i;
    }
    const runtime::SchedulerStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, static_cast<int64_t>(kRequests));
    // The effective delay is observable and never exceeds the ceiling.
    EXPECT_GE(stats.effective_delay_us, 0);
    EXPECT_LE(stats.effective_delay_us, opts.max_delay_us);
  }
}

}  // namespace
}  // namespace litho
