#include <gtest/gtest.h>

#include "core/ilt.h"
#include "test_util.h"

namespace litho::core {
namespace {

DoinnConfig tiny_config() {
  DoinnConfig cfg;
  cfg.tile = 64;
  cfg.modes = 5;
  cfg.gp_channels = 4;
  cfg.lp1 = 2;
  cfg.lp2 = 4;
  cfg.refine1 = 8;
  cfg.refine2 = 4;
  return cfg;
}

TEST(Ilt, ObjectiveDecreasesThroughFrozenModel) {
  auto rng = test::rng(1);
  Doinn model(tiny_config(), rng);
  auto rng2 = test::rng(2);
  Tensor target({64, 64});
  for (int64_t r = 28; r < 36; ++r)
    for (int64_t c = 28; c < 36; ++c) target[r * 64 + c] = 1.f;
  Tensor init = Tensor::rand({64, 64}, rng2, 0.2f, 0.8f);

  IltConfig cfg;
  cfg.iterations = 10;
  const IltResult result = optimize_mask(model, target, init, cfg);
  ASSERT_EQ(result.loss.size(), 10u);
  EXPECT_LT(result.loss.back(), result.loss.front())
      << "mask gradients did not reduce the objective";
  EXPECT_EQ(result.mask.shape(), (Shape{64, 64}));
  EXPECT_GE(result.mask.min(), 0.f);
  EXPECT_LE(result.mask.max(), 1.f);
  for (int64_t i = 0; i < result.binary_mask.numel(); ++i) {
    ASSERT_TRUE(result.binary_mask[i] == 0.f || result.binary_mask[i] == 1.f);
  }
}

TEST(Ilt, ModelWeightsAreNotModified) {
  auto rng = test::rng(3);
  Doinn model(tiny_config(), rng);
  const auto before = model.state_dict();
  Tensor target = Tensor::zeros({64, 64});
  Tensor init = Tensor::full({64, 64}, 0.5f);
  IltConfig cfg;
  cfg.iterations = 3;
  (void)optimize_mask(model, target, init, cfg);
  const auto after = model.state_dict();
  for (const auto& [k, v] : before) {
    // Running BN statistics may not change either: eval mode.
    EXPECT_EQ(test::max_abs_diff(v, after.at(k)), 0.f) << k;
  }
}

TEST(Ilt, ShapeMismatchThrows) {
  auto rng = test::rng(4);
  Doinn model(tiny_config(), rng);
  EXPECT_THROW(optimize_mask(model, Tensor({64, 64}), Tensor({32, 32}),
                             IltConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace litho::core
