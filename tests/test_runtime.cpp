// Tests for the parallel inference runtime: thread pool and parallel_for
// semantics, the thread-local no-grad mode, and serial-vs-parallel parity of
// the InferenceEngine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "autograd/grad_mode.h"
#include "autograd/ops.h"
#include "core/doinn.h"
#include "core/large_tile.h"
#include "core/trainer.h"
#include "fft/fft.h"
#include "runtime/engine.h"
#include "runtime/thread_pool.h"
#include "runtime/workspace.h"
#include "test_util.h"

namespace litho {
namespace {

/// Small DOINN configuration that keeps runtime tests fast: 64 px tiles,
/// 8 px GP grid.
core::DoinnConfig tiny_config() {
  core::DoinnConfig cfg = core::DoinnConfig::small();
  cfg.tile = 64;
  cfg.modes = 4;
  cfg.gp_channels = 4;
  return cfg;
}

Tensor random_mask(int64_t side, uint32_t seed) {
  auto rng = test::rng(seed);
  Tensor mask = Tensor::rand({side, side}, rng);
  mask.apply_([](float v) { return v >= 0.6f ? 1.f : 0.f; });
  return mask;
}

// -- ThreadPool ---------------------------------------------------------------

TEST(ThreadPool, SubmitRunsAllTasks) {
  runtime::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  runtime::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  int count = 0;  // no atomics needed: everything is inline
  pool.submit([&count] { ++count; });
  pool.parallel_for(10, [&count](int64_t b, int64_t e) {
    count += static_cast<int>(e - b);
  });
  pool.wait_idle();
  EXPECT_EQ(count, 11);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    runtime::ThreadPool pool(threads);
    for (int64_t n : {1, 2, 7, 64, 1000}) {
      std::vector<int> hits(static_cast<size_t>(n), 0);
      pool.parallel_for(n, [&hits](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
      });
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[static_cast<size_t>(i)], 1)
            << "threads=" << threads << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, ParallelForRespectsGrain) {
  runtime::ThreadPool pool(4);
  // grain >= n forces a single inline chunk.
  int chunks = 0;
  pool.parallel_for(
      100, [&chunks](int64_t, int64_t) { ++chunks; }, /*grain=*/100);
  EXPECT_EQ(chunks, 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  runtime::ThreadPool pool(2);
  pool.parallel_for(0, [](int64_t, int64_t) { FAIL() << "body invoked"; });
}

TEST(ThreadPool, ParallelForPropagatesExceptionAndStaysUsable) {
  runtime::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](int64_t b, int64_t) {
                          if (b == 0) throw std::runtime_error("chunk failed");
                        }),
      std::runtime_error);
  // Exception thrown by a worker chunk (not the submitting thread's own).
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](int64_t b, int64_t) {
                          if (b != 0) throw std::runtime_error("chunk failed");
                        }),
      std::runtime_error);
  // The pool survives and keeps working.
  std::atomic<int64_t> sum{0};
  pool.parallel_for(100, [&sum](int64_t b, int64_t e) {
    int64_t local = 0;
    for (int64_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  runtime::ThreadPool pool(4);
  std::atomic<int> nested_calls{0};
  std::atomic<int> single_chunk_calls{0};
  std::atomic<int> entered{0};
  pool.parallel_for(4, [&pool, &nested_calls, &single_chunk_calls,
                        &entered](int64_t, int64_t) {
    // Hold each chunk until a second thread joins: the submitting thread
    // claims chunks alongside the workers and on a loaded single-core host
    // could otherwise drain all four alone, leaving nothing to observe.
    entered.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (entered.load() < 2 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    if (!runtime::ThreadPool::in_worker_thread()) return;
    // A nested loop issued from a worker must collapse to one inline chunk
    // instead of re-entering the queue (deadlock safety).
    nested_calls.fetch_add(1);
    int chunks = 0;  // inline => no races on this local
    pool.parallel_for(100, [&chunks](int64_t, int64_t) { ++chunks; });
    if (chunks == 1) single_chunk_calls.fetch_add(1);
  });
  EXPECT_GT(nested_calls.load(), 0);
  EXPECT_EQ(single_chunk_calls.load(), nested_calls.load());
}

TEST(ThreadPool, DefaultNumThreadsHonorsEnvVar) {
  ASSERT_EQ(setenv("DOINN_NUM_THREADS", "3", 1), 0);
  EXPECT_EQ(runtime::ThreadPool::default_num_threads(), 3);
  ASSERT_EQ(setenv("DOINN_NUM_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(runtime::ThreadPool::default_num_threads(), 1);
  ASSERT_EQ(unsetenv("DOINN_NUM_THREADS"), 0);
  EXPECT_GE(runtime::ThreadPool::default_num_threads(), 1);
}

// -- Grad mode ----------------------------------------------------------------

TEST(GradMode, NoGradGuardDisablesAndRestores) {
  EXPECT_TRUE(ag::GradMode::is_enabled());
  {
    ag::NoGradGuard guard;
    EXPECT_FALSE(ag::GradMode::is_enabled());
    {
      ag::NoGradGuard nested;
      EXPECT_FALSE(ag::GradMode::is_enabled());
    }
    EXPECT_FALSE(ag::GradMode::is_enabled());
  }
  EXPECT_TRUE(ag::GradMode::is_enabled());
}

TEST(GradMode, NoGradOpsBuildNoGraph) {
  auto rng = test::rng();
  ag::Variable w(Tensor::rand({2, 2}, rng), /*requires_grad=*/true);
  ag::Variable x(Tensor::rand({2, 2}, rng), false);
  {
    ag::NoGradGuard guard;
    ag::Variable y = ag::mul(ag::add(x, w), w);
    EXPECT_FALSE(y.requires_grad());
    EXPECT_TRUE(y.state()->parents.empty());
    EXPECT_FALSE(static_cast<bool>(y.state()->backward_fn));
  }
  // Outside the guard the same expression records the tape again.
  ag::Variable y = ag::mul(ag::add(x, w), w);
  EXPECT_TRUE(y.requires_grad());
  EXPECT_FALSE(y.state()->parents.empty());
}

TEST(GradMode, InferenceAllocatesNoTapeNodes) {
  core::DoinnConfig cfg = tiny_config();
  auto rng = test::rng(7);
  core::Doinn model(cfg, rng);
  model.set_training(false);
  Tensor mask = random_mask(cfg.tile, 11);
  Tensor x = mask.clone().reshape({1, 1, cfg.tile, cfg.tile});

  // Grad-enabled forward: the tape grows (weights require grad).
  const int64_t before_grad = ag::detail::tape_nodes_created();
  (void)model.forward(ag::Variable(x.clone(), false));
  EXPECT_GT(ag::detail::tape_nodes_created(), before_grad);

  // No-grad forward: not a single tape node.
  ag::NoGradGuard guard;
  const int64_t before = ag::detail::tape_nodes_created();
  ag::Variable out = model.forward(ag::Variable(x.clone(), false));
  EXPECT_EQ(ag::detail::tape_nodes_created(), before);
  EXPECT_TRUE(out.state()->parents.empty());
}

TEST(GradMode, TrainingStillWorksAfterNoGradInference) {
  // A no-grad pass must not poison subsequent gradient computations.
  auto rng = test::rng();
  ag::Variable w(Tensor::rand({3}, rng), true);
  {
    ag::NoGradGuard guard;
    (void)ag::sum(ag::mul(w, w));
  }
  ag::Variable loss = ag::sum(ag::mul(w, w));
  loss.backward();
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(w.grad()[i], 2.f * w.value()[i], 1e-5f);
  }
}

// -- InferenceEngine ----------------------------------------------------------

TEST(InferenceEngine, PredictBatchMatchesSerialPredictContour) {
  core::DoinnConfig cfg = tiny_config();
  runtime::InferenceEngine engine(cfg, /*seed=*/21,
                                  runtime::EngineOptions{/*num_threads=*/2});
  auto rng = test::rng(21);
  core::Doinn reference(cfg, rng);  // same seed => identical weights

  std::vector<Tensor> masks;
  for (uint32_t s = 0; s < 4; ++s) masks.push_back(random_mask(cfg.tile, s));
  const std::vector<Tensor> batched = engine.predict_batch(masks);
  ASSERT_EQ(batched.size(), masks.size());
  for (size_t i = 0; i < masks.size(); ++i) {
    const Tensor serial = core::predict_contour(reference, masks[i]);
    EXPECT_EQ(test::max_abs_diff(batched[i], serial), 0.f) << "mask " << i;
  }
}

TEST(InferenceEngine, PredictLargeMatchesSerialAcrossThreadCounts) {
  core::DoinnConfig cfg = tiny_config();
  const Tensor mask = random_mask(2 * cfg.tile, 5);

  auto rng = test::rng(33);
  core::Doinn reference(cfg, rng);
  core::LargeTilePredictor serial(reference);
  Tensor expected = serial.predict(mask);
  expected.apply_([](float v) { return v >= 0.f ? 1.f : 0.f; });

  for (int threads : {1, 2, 4}) {
    runtime::InferenceEngine engine(cfg, /*seed=*/33,
                                    runtime::EngineOptions{threads});
    const Tensor parallel = engine.predict_large(mask);
    EXPECT_EQ(test::max_abs_diff(parallel, expected), 0.f)
        << "threads=" << threads;
  }
}

TEST(InferenceEngine, PredictDispatchesOnMaskSize) {
  core::DoinnConfig cfg = tiny_config();
  runtime::InferenceEngine engine(cfg, 3, runtime::EngineOptions{2});
  const Tensor small = engine.predict(random_mask(cfg.tile, 1));
  EXPECT_EQ(small.size(0), cfg.tile);
  const Tensor large = engine.predict(random_mask(2 * cfg.tile, 2));
  EXPECT_EQ(large.size(0), 2 * cfg.tile);
}

TEST(InferenceEngine, CheckpointRoundTrip) {
  core::DoinnConfig cfg = tiny_config();
  auto rng = test::rng(55);
  core::Doinn model(cfg, rng);
  const std::string path = "test_runtime_ckpt.bin";
  core::save_doinn(path, model);

  runtime::InferenceEngine engine(path, runtime::EngineOptions{2});
  EXPECT_EQ(engine.config().tile, cfg.tile);
  EXPECT_EQ(engine.config().modes, cfg.modes);

  const Tensor mask = random_mask(cfg.tile, 9);
  const Tensor expected = core::predict_contour(model, mask);
  const Tensor got = engine.predict(mask);
  EXPECT_EQ(test::max_abs_diff(got, expected), 0.f);
  std::remove(path.c_str());
}

// -- Workspace pool -----------------------------------------------------------

TEST(WorkspacePool, LeasesRecycleBuffers) {
  runtime::WorkspacePool& pool = runtime::WorkspacePool::instance();
  {
    runtime::Workspace warm(256);  // seed the free list
    warm.data()[0] = {1.0, 2.0};
  }
  const auto before = pool.stats();
  {
    runtime::Workspace ws(200);  // rounds up to 256, must reuse
    ASSERT_GE(ws.size(), 200u);
    ws.data()[199] = {3.0, 4.0};
  }
  const auto after = pool.stats();
  EXPECT_EQ(after.acquires, before.acquires + 1);
  EXPECT_GT(after.reuses, before.reuses);
}

TEST(WorkspacePool, OversizedReleasesAreDroppedNotPinned) {
  runtime::WorkspacePool& pool = runtime::WorkspacePool::instance();
  pool.clear();
  // A buffer past the pool's byte budget must be dropped on release, so the
  // next acquire of that size allocates fresh instead of reusing.
  const size_t huge = (80u << 20) / sizeof(std::complex<double>);
  { runtime::Workspace ws(huge); }
  const auto before = pool.stats();
  { runtime::Workspace ws(huge); }
  const auto after = pool.stats();
  EXPECT_EQ(after.acquires, before.acquires + 1);
  EXPECT_EQ(after.reuses, before.reuses);
  pool.clear();
}

// -- Cross-thread-count determinism -------------------------------------------
// The FFT kernels and the engine must produce bitwise-equal outputs whether
// DOINN_NUM_THREADS resolves to 1 or 8. The global pool latches the env var
// at first use, so the tests pin explicit pools of each size instead —
// ScopedPool routes the free parallel_for exactly the way the env var would.

TEST(Determinism, FftKernelsBitwiseEqualAcrossThreadCounts) {
  auto rng = test::rng(91);
  // Batched and single-slice planes, radix-2 and Bluestein extents, odd H.
  const std::vector<Shape> shapes = {{4, 32, 32}, {1, 64, 64}, {3, 33, 20},
                                     {1, 31, 48}};
  for (const Shape& s : shapes) {
    const int64_t w = s[s.size() - 1];
    Tensor x = Tensor::randn(s, rng);
    fft::CTensor xc(Tensor::randn(s, rng), Tensor::randn(s, rng));
    fft::CTensor spec_ref, fft_ref;
    Tensor back_ref;
    {
      runtime::ThreadPool serial(1);
      runtime::ScopedPool sp(&serial);
      spec_ref = fft::rfft2(x);
      back_ref = fft::irfft2(spec_ref, w);
      fft_ref = fft::fft2(xc, false);
    }
    runtime::ThreadPool wide(8);
    runtime::ScopedPool sp(&wide);
    const fft::CTensor spec = fft::rfft2(x);
    EXPECT_EQ(test::max_abs_diff(spec.re, spec_ref.re), 0.f);
    EXPECT_EQ(test::max_abs_diff(spec.im, spec_ref.im), 0.f);
    EXPECT_EQ(test::max_abs_diff(fft::irfft2(spec, w), back_ref), 0.f);
    const fft::CTensor full = fft::fft2(xc, false);
    EXPECT_EQ(test::max_abs_diff(full.re, fft_ref.re), 0.f);
    EXPECT_EQ(test::max_abs_diff(full.im, fft_ref.im), 0.f);
  }
}

TEST(Determinism, PredictBatchBitwiseEqualAcrossThreadCounts) {
  core::DoinnConfig cfg = tiny_config();
  std::vector<Tensor> masks;
  for (uint32_t s = 100; s < 106; ++s) {
    masks.push_back(random_mask(cfg.tile, s));
  }
  runtime::InferenceEngine serial(cfg, /*seed=*/77,
                                  runtime::EngineOptions{/*num_threads=*/1});
  runtime::InferenceEngine wide(cfg, /*seed=*/77,
                                runtime::EngineOptions{/*num_threads=*/8});
  const std::vector<Tensor> a = serial.predict_batch(masks);
  const std::vector<Tensor> b = wide.predict_batch(masks);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(test::max_abs_diff(a[i], b[i]), 0.f) << "mask " << i;
  }
}

}  // namespace
}  // namespace litho
