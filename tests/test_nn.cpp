#include <gtest/gtest.h>

#include <filesystem>

#include "io/io.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "test_util.h"

namespace litho::nn {
namespace {

// Tiny regression model used by optimizer / serialization tests.
class TinyNet : public Module {
 public:
  explicit TinyNet(std::mt19937& rng)
      : conv1_(1, 4, 3, 1, 1, rng), bn_(4), conv2_(4, 1, 3, 1, 1, rng) {
    register_module("conv1", &conv1_);
    register_module("bn", &bn_);
    register_module("conv2", &conv2_);
  }

  ag::Variable forward(const ag::Variable& x) {
    return conv2_.forward(ag::leaky_relu(bn_.forward(conv1_.forward(x)), 0.1f));
  }

 private:
  Conv2d conv1_;
  BatchNorm2d bn_;
  Conv2d conv2_;
};

TEST(Module, ParameterCollection) {
  auto g = test::rng();
  TinyNet net(g);
  // conv1: 4*1*3*3 + 4; bn: 4 + 4; conv2: 1*4*3*3 + 1.
  EXPECT_EQ(net.num_parameters(), 36 + 4 + 8 + 36 + 1);
  EXPECT_EQ(net.parameters().size(), 6u);  // weight+bias per conv, gamma+beta
}

TEST(Module, StateDictRoundTrip) {
  auto g = test::rng(1);
  TinyNet a(g), b(g);
  // a and b differ after independent init; sync b from a.
  auto dict = a.state_dict();
  EXPECT_TRUE(dict.count("conv1.weight"));
  EXPECT_TRUE(dict.count("bn.running_mean"));
  b.load_state_dict(dict);
  auto db = b.state_dict();
  for (const auto& [k, v] : dict) {
    EXPECT_EQ(test::max_abs_diff(v, db.at(k)), 0.f) << k;
  }
}

TEST(Module, LoadRejectsMissingKey) {
  auto g = test::rng(2);
  TinyNet net(g);
  std::map<std::string, Tensor> empty;
  EXPECT_THROW(net.load_state_dict(empty), std::runtime_error);
}

TEST(Module, StateDictSerializesThroughFile) {
  auto g = test::rng(3);
  TinyNet a(g), b(g);
  const std::string path = "/tmp/litho_test_net.bin";
  io::save_tensors(path, a.state_dict());
  b.load_state_dict(io::load_tensors(path));
  auto da = a.state_dict(), db = b.state_dict();
  for (const auto& [k, v] : da) {
    EXPECT_EQ(test::max_abs_diff(v, db.at(k)), 0.f) << k;
  }
  std::filesystem::remove(path);
}

TEST(Module, TrainEvalPropagates) {
  auto g = test::rng(4);
  TinyNet net(g);
  EXPECT_TRUE(net.training());
  net.set_training(false);
  EXPECT_FALSE(net.training());
}

TEST(Conv2dLayer, OutputShape) {
  auto g = test::rng(5);
  Conv2d conv(3, 8, 4, 2, 1, g);
  ag::Variable x(Tensor::randn({2, 3, 16, 16}, g), false);
  EXPECT_EQ(conv.forward(x).shape(), (Shape{2, 8, 8, 8}));
}

TEST(ConvTranspose2dLayer, UpsamplesByStride) {
  auto g = test::rng(6);
  ConvTranspose2d up(8, 4, 4, 2, 1, g);
  ag::Variable x(Tensor::randn({1, 8, 8, 8}, g), false);
  EXPECT_EQ(up.forward(x).shape(), (Shape{1, 4, 16, 16}));
}

TEST(VggBlockLayer, PreservesSpatialSize) {
  auto g = test::rng(7);
  VggBlock block(4, 8, g);
  ag::Variable x(Tensor::randn({2, 4, 10, 10}, g), false);
  EXPECT_EQ(block.forward(x).shape(), (Shape{2, 8, 10, 10}));
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 elementwise.
  ag::Variable w(Tensor::zeros({4}), true);
  Adam opt({w}, 0.1f);
  Tensor target = Tensor::full({4}, 3.f);
  for (int i = 0; i < 300; ++i) {
    opt.zero_grad();
    ag::Variable loss = ag::mse_loss(w, target);
    loss.backward();
    opt.step();
  }
  EXPECT_LT(test::max_abs_diff(w.value(), target), 1e-2f);
}

TEST(Adam, WeightDecayShrinksParameters) {
  ag::Variable w(Tensor::full({1}, 5.f), true);
  Adam opt({w}, 0.05f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/1.f);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    // Zero data gradient: only decay drives the update.
    ag::Variable loss = ag::scale(ag::sum(w), 0.f);
    loss.backward();
    opt.step();
  }
  EXPECT_LT(std::abs(w.value()[0]), 0.5f);
}

TEST(StepLR, HalvesEveryTwoEpochs) {
  ag::Variable w(Tensor::zeros({1}), true);
  Adam opt({w}, 0.002f);
  StepLR sched(opt, 2, 0.5f);
  sched.step();
  EXPECT_FLOAT_EQ(opt.lr(), 0.002f);
  sched.step();
  EXPECT_FLOAT_EQ(opt.lr(), 0.001f);
  sched.step();
  sched.step();
  EXPECT_FLOAT_EQ(opt.lr(), 0.0005f);
}

TEST(Training, TinyNetFitsConstantMapping) {
  // Smoke test of the full train loop: learn y = 0.5 everywhere.
  auto g = test::rng(8);
  TinyNet net(g);
  Adam opt(net.parameters(), 0.01f);
  Tensor x = Tensor::rand({2, 1, 8, 8}, g);
  Tensor y = Tensor::full({2, 1, 8, 8}, 0.5f);
  float first = 0.f, last = 0.f;
  for (int i = 0; i < 60; ++i) {
    opt.zero_grad();
    ag::Variable pred = net.forward(ag::Variable(x, false));
    ag::Variable loss = ag::mse_loss(pred, y);
    if (i == 0) first = loss.value()[0];
    last = loss.value()[0];
    loss.backward();
    opt.step();
  }
  EXPECT_LT(last, first * 0.2f) << "training loss did not decrease";
}

}  // namespace
}  // namespace litho::nn
