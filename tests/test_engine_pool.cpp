// Tests for the multi-model engine pool: registry parsing (including every
// malformed-line class), model routing, unknown-model handling on both the
// API and the wire, bitwise identity of replica serving vs a single
// engine under randomized concurrent submits, and the N-replicas-1x-weights
// sharing guarantee (PackedWeight byte accounting + shared_ptr identity).
#include <gtest/gtest.h>

#include <cstdio>
#include <future>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/doinn.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "runtime/engine.h"
#include "runtime/engine_pool.h"
#include "tensor/prepack.h"
#include "test_util.h"

namespace litho {
namespace {

core::DoinnConfig tiny_config() {
  core::DoinnConfig cfg = core::DoinnConfig::small();
  cfg.tile = 64;
  cfg.modes = 4;
  cfg.gp_channels = 4;
  return cfg;
}

Tensor random_mask(int64_t side, uint32_t seed) {
  auto rng = test::rng(seed);
  Tensor mask = Tensor::rand({side, side}, rng);
  mask.apply_([](float v) { return v >= 0.6f ? 1.f : 0.f; });
  return mask;
}

/// Writes a tiny fresh-weight checkpoint and returns its path (cwd, cleaned
/// up by remove_checkpoint).
std::string write_checkpoint(uint32_t seed, const std::string& name) {
  core::DoinnConfig cfg = tiny_config();
  auto rng = test::rng(seed);
  core::Doinn model(cfg, rng);
  const std::string path = "test_engine_pool_" + name + ".bin";
  core::save_doinn(path, model);
  return path;
}

void remove_checkpoint(const std::string& path) { std::remove(path.c_str()); }

/// Pool options every test shares: single-threaded replicas and no
/// autotuning (bitwise-neutral, keeps N engine builds fast).
runtime::EnginePoolOptions fast_pool_options() {
  runtime::EnginePoolOptions opts;
  opts.engine.num_threads = 1;
  opts.engine.autotune = false;
  return opts;
}

// -- registry parsing ---------------------------------------------------------

TEST(ModelRegistry, ParsesFieldsDefaultsAndComments) {
  const auto specs = runtime::parse_model_registry_text(
      "# comment line\n"
      "\n"
      "alpha alpha.bin\n"
      "beta beta.bin int8\n"
      "gamma gamma.bin bf16 3   # trailing comment\n");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "alpha");
  EXPECT_EQ(specs[0].checkpoint, "alpha.bin");
  EXPECT_EQ(specs[0].precision, Precision::kFp32);
  EXPECT_EQ(specs[0].replicas, 1);
  EXPECT_EQ(specs[1].precision, Precision::kInt8);
  EXPECT_EQ(specs[1].replicas, 1);
  EXPECT_EQ(specs[2].name, "gamma");
  EXPECT_EQ(specs[2].precision, Precision::kBf16);
  EXPECT_EQ(specs[2].replicas, 3);
}

TEST(ModelRegistry, RejectsMalformedLines) {
  // Missing checkpoint path.
  EXPECT_THROW(runtime::parse_model_registry_text("loner\n"),
               std::invalid_argument);
  // Duplicate model names.
  EXPECT_THROW(
      runtime::parse_model_registry_text("a a.bin\nb b.bin\na again.bin\n"),
      std::invalid_argument);
  // Bad precision word.
  EXPECT_THROW(runtime::parse_model_registry_text("a a.bin fp64\n"),
               std::invalid_argument);
  // Bad replica counts: zero, negative, non-numeric, trailing junk digits.
  EXPECT_THROW(runtime::parse_model_registry_text("a a.bin fp32 0\n"),
               std::invalid_argument);
  EXPECT_THROW(runtime::parse_model_registry_text("a a.bin fp32 -2\n"),
               std::invalid_argument);
  EXPECT_THROW(runtime::parse_model_registry_text("a a.bin fp32 two\n"),
               std::invalid_argument);
  EXPECT_THROW(runtime::parse_model_registry_text("a a.bin fp32 2x\n"),
               std::invalid_argument);
  // Trailing fifth field.
  EXPECT_THROW(runtime::parse_model_registry_text("a a.bin fp32 2 extra\n"),
               std::invalid_argument);
}

TEST(ModelRegistry, MissingFileThrows) {
  EXPECT_THROW(
      runtime::parse_model_registry("/tmp/litho_no_such_registry.txt"),
      std::runtime_error);
}

TEST(EnginePool, BadCheckpointPathThrows) {
  std::vector<runtime::ModelSpec> specs(1);
  specs[0].name = "ghost";
  specs[0].checkpoint = "/tmp/litho_no_such_checkpoint.bin";
  EXPECT_THROW(runtime::EnginePool(specs, fast_pool_options()),
               std::runtime_error);
}

TEST(EnginePool, RejectsBadSpecsAndDefaults) {
  EXPECT_THROW(runtime::EnginePool({}, fast_pool_options()),
               std::invalid_argument);

  const std::string ckpt = write_checkpoint(11, "specs");
  std::vector<runtime::ModelSpec> dup(2);
  dup[0].name = dup[1].name = "same";
  dup[0].checkpoint = dup[1].checkpoint = ckpt;
  EXPECT_THROW(runtime::EnginePool(dup, fast_pool_options()),
               std::invalid_argument);

  std::vector<runtime::ModelSpec> specs(1);
  specs[0].name = "only";
  specs[0].checkpoint = ckpt;
  runtime::EnginePoolOptions opts = fast_pool_options();
  opts.default_model = "absent";
  EXPECT_THROW(runtime::EnginePool(specs, opts), std::invalid_argument);
  remove_checkpoint(ckpt);
}

// -- routing ------------------------------------------------------------------

TEST(EnginePool, RoutesRequestsToTheNamedModel) {
  const std::string ckpt_a = write_checkpoint(21, "route_a");
  const std::string ckpt_b = write_checkpoint(22, "route_b");
  std::vector<runtime::ModelSpec> specs(2);
  specs[0].name = "a";
  specs[0].checkpoint = ckpt_a;
  specs[1].name = "b";
  specs[1].checkpoint = ckpt_b;
  runtime::EnginePool pool(specs, fast_pool_options());
  EXPECT_EQ(pool.default_model(), "a");
  EXPECT_TRUE(pool.has_model("b"));
  EXPECT_FALSE(pool.has_model("c"));

  // Per-model references from independent single engines over the same
  // checkpoints: routing must reproduce them bitwise, and the two models
  // must actually differ (different seeds) so a misroute would be caught.
  runtime::EngineOptions eng_opts = fast_pool_options().engine;
  runtime::InferenceEngine ref_a(ckpt_a, eng_opts);
  runtime::InferenceEngine ref_b(ckpt_b, eng_opts);
  const Tensor mask = random_mask(64, 3);
  const Tensor want_a = ref_a.predict(mask);
  const Tensor want_b = ref_b.predict(mask);
  ASSERT_NE(test::max_abs_diff(want_a, want_b), 0.f)
      << "models must differ for routing to be observable";

  EXPECT_EQ(test::max_abs_diff(pool.submit("a", mask, 1).get(), want_a), 0.f);
  EXPECT_EQ(test::max_abs_diff(pool.submit("b", mask, 2).get(), want_b), 0.f);
  // Empty model name = the default model.
  EXPECT_EQ(test::max_abs_diff(pool.submit("", mask, 3).get(), want_a), 0.f);

  EXPECT_THROW(pool.submit("zeta", mask, 4), std::invalid_argument);
  EXPECT_THROW(pool.try_submit("zeta", mask, 5), std::invalid_argument);

  // Per-model pool counters saw the traffic.
  EXPECT_EQ(pool.metrics().counter("pool.a.requests").value(), 2);
  EXPECT_EQ(pool.metrics().counter("pool.b.requests").value(), 1);
  const auto stats = pool.model_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "a");
  EXPECT_EQ(stats[0].completed, 2);
  EXPECT_EQ(stats[1].completed, 1);

  pool.shutdown();
  remove_checkpoint(ckpt_a);
  remove_checkpoint(ckpt_b);
}

// -- replica identity ---------------------------------------------------------

TEST(EnginePool, ReplicaServingIsBitwiseIdenticalUnderConcurrentLoad) {
  const std::string ckpt = write_checkpoint(31, "replica");
  std::vector<runtime::ModelSpec> specs(1);
  specs[0].name = "m";
  specs[0].checkpoint = ckpt;
  specs[0].replicas = 3;
  runtime::EnginePool pool(specs, fast_pool_options());
  ASSERT_EQ(pool.replica_count("m"), 3);

  runtime::InferenceEngine reference(ckpt, fast_pool_options().engine);

  // Randomized concurrent submits: several client threads race masks into
  // the pool with jittered timing, so batches form across replicas in a
  // schedule this test cannot predict. Every contour must still match the
  // single-engine reference bitwise.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::vector<Tensor>> got(kThreads);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&pool, &got, t] {
      std::mt19937 delay_rng(1000u + static_cast<uint32_t>(t));
      std::uniform_int_distribution<int> jitter_us(0, 400);
      std::vector<std::future<Tensor>> futures;
      futures.reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(jitter_us(delay_rng)));
        const uint32_t seed =
            static_cast<uint32_t>(t * kPerThread + i + 100);
        futures.push_back(pool.submit(
            "m", random_mask(64, seed),
            static_cast<uint64_t>(t * kPerThread + i + 1)));
      }
      for (auto& f : futures) got[static_cast<size_t>(t)].push_back(f.get());
    });
  }
  for (std::thread& c : clients) c.join();

  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const uint32_t seed = static_cast<uint32_t>(t * kPerThread + i + 100);
      const Tensor want = reference.predict(random_mask(64, seed));
      EXPECT_EQ(test::max_abs_diff(got[static_cast<size_t>(t)]
                                       [static_cast<size_t>(i)],
                                   want),
                0.f)
          << "thread " << t << " request " << i;
    }
  }
  pool.shutdown();
  remove_checkpoint(ckpt);
}

// -- weight sharing -----------------------------------------------------------

TEST(EnginePool, ReplicasShareOnePrepackedWeightSet) {
  const std::string ckpt = write_checkpoint(41, "share");

  // Packed-weight bytes added by a single-replica pool of this model...
  const int64_t before_single = PackedWeight::total_allocated_bytes();
  std::vector<runtime::ModelSpec> specs(1);
  specs[0].name = "m";
  specs[0].checkpoint = ckpt;
  specs[0].replicas = 1;
  {
    runtime::EnginePool single(specs, fast_pool_options());
    (void)single;
  }
  const int64_t single_bytes =
      PackedWeight::total_allocated_bytes() - before_single;
  ASSERT_GT(single_bytes, 0) << "loading a model must pack weights";

  // ...must equal the bytes added by a 4-replica pool: replicas 1..3 share
  // the primary's model object and never rebuild the panels. (The counter
  // is monotone, so this measures allocation work, not live bytes —
  // exactly the per-replica cost being asserted away.)
  const int64_t before_pool = PackedWeight::total_allocated_bytes();
  specs[0].replicas = 4;
  runtime::EnginePool pool(specs, fast_pool_options());
  const int64_t pool_bytes =
      PackedWeight::total_allocated_bytes() - before_pool;
  EXPECT_EQ(pool_bytes, single_bytes)
      << "N replicas must pack weights exactly once (got " << pool_bytes
      << " bytes for 4 replicas vs " << single_bytes << " for 1)";

  // The sharing is literal: every replica engine holds the same Doinn.
  const auto& model0 = pool.engine("m", 0).shared_model();
  for (int r = 1; r < 4; ++r) {
    EXPECT_EQ(pool.engine("m", r).shared_model().get(), model0.get());
  }
  EXPECT_GE(model0.use_count(), 4);

  pool.shutdown();
  remove_checkpoint(ckpt);
}

// -- wire-level routing -------------------------------------------------------

/// Pool + server + loop thread, the multi-model twin of test_net's
/// LoopbackServer.
class PoolLoopbackServer {
 public:
  explicit PoolLoopbackServer(const std::vector<runtime::ModelSpec>& specs)
      : pool_(specs, fast_pool_options()),
        server_(pool_, net::ServerOptions{}),
        loop_([this] { server_.run(); }) {}

  ~PoolLoopbackServer() {
    server_.stop();
    if (loop_.joinable()) loop_.join();
    pool_.shutdown();
  }

  runtime::EnginePool& pool() { return pool_; }
  net::Server& server() { return server_; }
  uint16_t port() const { return server_.port(); }

 private:
  runtime::EnginePool pool_;
  net::Server server_;
  std::thread loop_;
};

TEST(EnginePool, ServerRoutesByModelFieldAndLegacyFramesHitTheDefault) {
  // Seeds shared with RoutesRequestsToTheNamedModel: that test proves the
  // pair is distinguishable through binarization.
  const std::string ckpt_a = write_checkpoint(21, "wire_a");
  const std::string ckpt_b = write_checkpoint(22, "wire_b");
  std::vector<runtime::ModelSpec> specs(2);
  specs[0].name = "a";
  specs[0].checkpoint = ckpt_a;
  specs[1].name = "b";
  specs[1].checkpoint = ckpt_b;
  PoolLoopbackServer fixture(specs);

  // Binarized contours of two untrained models can coincide for a given
  // mask, so search a few masks for one the models disagree on — without
  // that, a misroute would be invisible.
  Tensor mask, want_a, want_b;
  bool distinguishable = false;
  for (uint32_t seed = 1; seed <= 32 && !distinguishable; ++seed) {
    mask = random_mask(64, seed);
    want_a = fixture.pool().submit("a", mask, 900 + seed).get();
    want_b = fixture.pool().submit("b", mask, 950 + seed).get();
    distinguishable = test::max_abs_diff(want_a, want_b) != 0.f;
  }
  ASSERT_TRUE(distinguishable)
      << "no mask distinguishes the two models; pick new seeds";

  net::Client client("127.0.0.1", fixture.port());
  // v2 frames with explicit models route to each model.
  EXPECT_EQ(test::max_abs_diff(client.predict(1, mask, "a"), want_a), 0.f);
  EXPECT_EQ(test::max_abs_diff(client.predict(2, mask, "b"), want_b), 0.f);
  // v2 with an empty name and a legacy v1 frame both hit the default.
  EXPECT_EQ(test::max_abs_diff(client.predict(3, mask, ""), want_a), 0.f);
  EXPECT_EQ(test::max_abs_diff(client.predict(4, mask), want_a), 0.f);

  // Unknown model: a request-level ERROR frame naming the model, and the
  // connection stays open for the next (valid) request.
  client.send_predict(5, mask, "nope");
  const net::Reply reply = client.read_reply();
  EXPECT_EQ(reply.type, net::FrameType::kError);
  EXPECT_EQ(reply.request_id, 5u);
  EXPECT_NE(reply.error.find("unknown model"), std::string::npos);
  EXPECT_NE(reply.error.find("nope"), std::string::npos);
  EXPECT_EQ(test::max_abs_diff(client.predict(6, mask, "b"), want_b), 0.f);

  const net::ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.requests_ok, 5);
  EXPECT_EQ(stats.requests_error, 1);
  EXPECT_EQ(stats.protocol_errors, 0);

  remove_checkpoint(ckpt_a);
  remove_checkpoint(ckpt_b);
}

}  // namespace
}  // namespace litho
