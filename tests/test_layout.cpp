#include <gtest/gtest.h>

#include "layout/layout.h"
#include "test_util.h"

namespace litho::layout {
namespace {

TEST(Rect, BasicsAndSpacing) {
  Rect a{0, 0, 10, 10};
  EXPECT_EQ(a.width(), 10);
  EXPECT_EQ(a.area(), 100);
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE((Rect{5, 5, 5, 9}).empty());

  Rect right{20, 0, 30, 10};
  EXPECT_EQ(a.spacing_to(right), 10);
  Rect above{0, 14, 10, 20};
  EXPECT_EQ(a.spacing_to(above), 4);
  Rect diag{13, 14, 20, 20};  // dx=3, dy=4 -> 5
  EXPECT_EQ(a.spacing_to(diag), 5);
  Rect overlapping{5, 5, 15, 15};
  EXPECT_TRUE(a.intersects(overlapping));
  EXPECT_EQ(a.spacing_to(overlapping), 0);
}

TEST(Drc, DetectsViolations) {
  DesignRules rules{64, 64};
  Clip clip;
  clip.extent_nm = 1024;
  clip.shapes = {{0, 0, 100, 100}, {200, 0, 300, 100}};
  EXPECT_TRUE(drc_clean(clip, rules));
  // Too-close pair.
  clip.shapes = {{0, 0, 100, 100}, {130, 0, 230, 100}};
  EXPECT_FALSE(drc_clean(clip, rules));
  // Sub-minimum width.
  clip.shapes = {{0, 0, 32, 100}};
  EXPECT_FALSE(drc_clean(clip, rules));
  // Out of clip bounds.
  clip.shapes = {{1000, 0, 1100, 100}};
  EXPECT_FALSE(drc_clean(clip, rules));
  // Overlapping shapes merge (allowed).
  clip.shapes = {{0, 0, 100, 100}, {50, 50, 150, 150}};
  EXPECT_TRUE(drc_clean(clip, rules));
}

TEST(Rasterize, PixelAlignedRectExact) {
  Clip clip;
  clip.extent_nm = 64;
  clip.shapes = {{16, 16, 48, 32}};
  Tensor g = rasterize(clip, 16.0);
  EXPECT_EQ(g.shape(), (Shape{4, 4}));
  EXPECT_FLOAT_EQ(g.at({1, 1}), 1.f);
  EXPECT_FLOAT_EQ(g.at({1, 2}), 1.f);
  EXPECT_FLOAT_EQ(g.at({0, 1}), 0.f);
  EXPECT_FLOAT_EQ(g.at({2, 1}), 0.f);
}

TEST(Rasterize, FractionalCoverageAntialiased) {
  Clip clip;
  clip.extent_nm = 32;
  clip.shapes = {{0, 0, 8, 16}};  // half a pixel wide, full pixel tall
  Tensor g = rasterize(clip, 16.0);
  EXPECT_FLOAT_EQ(g.at({0, 0}), 0.5f);
  EXPECT_FLOAT_EQ(g.at({0, 1}), 0.f);
}

TEST(Rasterize, AreaConservedForDisjointShapes) {
  Clip clip;
  clip.extent_nm = 512;
  clip.shapes = {{10, 20, 110, 90}, {200, 300, 380, 420}};
  Tensor g = rasterize(clip, 16.0);
  double total_nm2 = 0;
  for (const Rect& r : clip.shapes) total_nm2 += static_cast<double>(r.area());
  EXPECT_NEAR(g.sum() * 16.0 * 16.0, total_nm2, 1.0);
}

TEST(Rasterize, OverlapSaturatesAtOne) {
  Clip clip;
  clip.extent_nm = 64;
  clip.shapes = {{0, 0, 64, 64}, {0, 0, 64, 64}};
  Tensor g = rasterize(clip, 16.0);
  EXPECT_FLOAT_EQ(g.max(), 1.f);
}

TEST(Rasterize, RejectsNonMultipleExtent) {
  Clip clip;
  clip.extent_nm = 100;
  EXPECT_THROW(rasterize(clip, 16.0), std::invalid_argument);
}

TEST(ViaGenerator, RejectsUnsatisfiableRules) {
  ViaLayerGenerator::Params p;
  p.pitch_nm = 100;  // 100 - 72 - 32 < 64
  EXPECT_THROW(ViaLayerGenerator(p, DesignRules{64, 64}),
               std::invalid_argument);
}

// Property: generated clips are always DRC-clean, non-trivial, in-bounds.
class GeneratorSeeds : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorSeeds, ViaClipsAreDrcClean) {
  DesignRules rules{64, 64};
  ViaLayerGenerator gen(ViaLayerGenerator::Params{}, rules);
  auto rng = test::rng(static_cast<uint32_t>(GetParam()));
  Clip clip = gen.generate(rng);
  EXPECT_TRUE(drc_clean(clip, rules)) << "seed " << GetParam();
  EXPECT_GT(clip.shapes.size(), 3u);
  for (const Rect& r : clip.shapes) {
    EXPECT_EQ(r.width(), 72);
    EXPECT_EQ(r.height(), 72);
  }
}

TEST_P(GeneratorSeeds, MetalClipsAreDrcClean) {
  DesignRules rules{64, 64};
  MetalLayerGenerator gen(MetalLayerGenerator::Params{}, rules);
  auto rng = test::rng(static_cast<uint32_t>(GetParam()) + 1000);
  Clip clip = gen.generate(rng);
  EXPECT_TRUE(drc_clean(clip, rules)) << "seed " << GetParam();
  EXPECT_GT(clip.shapes.size(), 2u);
  for (const Rect& r : clip.shapes) {
    EXPECT_GE(r.width(), 80) << "segment shorter than wire width";
    EXPECT_GE(r.height(), 80);
  }
}

TEST_P(GeneratorSeeds, DensityWithinPlausibleBand) {
  DesignRules rules{64, 64};
  ViaLayerGenerator vgen(ViaLayerGenerator::Params{}, rules);
  MetalLayerGenerator mgen(MetalLayerGenerator::Params{}, rules);
  auto rng = test::rng(static_cast<uint32_t>(GetParam()) + 7);
  EXPECT_LT(density(vgen.generate(rng)), 0.35);
  const double md = density(mgen.generate(rng));
  EXPECT_GT(md, 0.01);
  EXPECT_LT(md, 0.6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeeds, ::testing::Range(0, 12));

TEST(ViaGenerator, DeterministicForSeed) {
  DesignRules rules{64, 64};
  ViaLayerGenerator gen(ViaLayerGenerator::Params{}, rules);
  auto r1 = test::rng(9), r2 = test::rng(9);
  Clip a = gen.generate(r1), b = gen.generate(r2);
  ASSERT_EQ(a.shapes.size(), b.shapes.size());
  for (size_t i = 0; i < a.shapes.size(); ++i) {
    EXPECT_EQ(a.shapes[i].x0, b.shapes[i].x0);
    EXPECT_EQ(a.shapes[i].y0, b.shapes[i].y0);
  }
}

}  // namespace
}  // namespace litho::layout
