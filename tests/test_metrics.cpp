#include <gtest/gtest.h>

#include "core/metrics.h"
#include "test_util.h"

namespace litho::core {
namespace {

TEST(Metrics, PerfectPredictionScoresOne) {
  Tensor g({4, 4});
  g[0] = g[5] = g[10] = 1.f;
  const auto m = evaluate_contours(g, g);
  EXPECT_DOUBLE_EQ(m.miou, 1.0);
  EXPECT_DOUBLE_EQ(m.mpa, 1.0);
}

TEST(Metrics, KnownPartialOverlap) {
  // G: 4 fg pixels; P: 4 fg pixels, 2 overlap; total 16 pixels.
  Tensor g({4, 4}), p({4, 4});
  g[0] = g[1] = g[2] = g[3] = 1.f;
  p[2] = p[3] = p[4] = p[5] = 1.f;
  const auto m = evaluate_contours(p, g);
  // fg: inter 2, union 6 -> 1/3. bg: inter 10, union 14 -> 5/7.
  EXPECT_NEAR(m.miou, 0.5 * (2.0 / 6.0 + 10.0 / 14.0), 1e-12);
  // fg PA: 2/4. bg PA: 10/12.
  EXPECT_NEAR(m.mpa, 0.5 * (2.0 / 4.0 + 10.0 / 12.0), 1e-12);
}

TEST(Metrics, AllBackgroundHandledByConvention) {
  Tensor z({3, 3});
  const auto m = evaluate_contours(z, z);
  EXPECT_DOUBLE_EQ(m.miou, 1.0);  // empty fg class scores 1 by convention
  EXPECT_DOUBLE_EQ(m.mpa, 1.0);
}

TEST(Metrics, CompleteMissScoresLow) {
  Tensor g({2, 2}), p({2, 2});
  g[0] = 1.f;
  p[3] = 1.f;
  const auto m = evaluate_contours(p, g);
  EXPECT_LT(m.miou, 0.5);
}

TEST(Metrics, ShapeMismatchThrows) {
  EXPECT_THROW(evaluate_contours(Tensor({2, 2}), Tensor({2, 3})),
               std::invalid_argument);
}

TEST(Metrics, AverageOfSamples) {
  SegmentationMetrics a{1.0, 1.0}, b{0.5, 0.8};
  const auto m = average({a, b});
  EXPECT_DOUBLE_EQ(m.miou, 0.75);
  EXPECT_DOUBLE_EQ(m.mpa, 0.9);
  const auto empty = average({});
  EXPECT_DOUBLE_EQ(empty.miou, 0.0);
}

TEST(Metrics, ThresholdAtHalf) {
  Tensor g({1, 2}, {0.6f, 0.4f});  // fg, bg
  Tensor p({1, 2}, {0.501f, 0.499f});
  const auto m = evaluate_contours(p, g);
  EXPECT_DOUBLE_EQ(m.miou, 1.0);
}

}  // namespace
}  // namespace litho::core
