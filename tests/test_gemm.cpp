// Tests for the packed tiled GEMM engine and the implicit-im2col
// convolution path: golden parity against naive references over
// randomized shapes (including sub-tile, prime and k=0 extents), epilogue
// semantics, the spectral mixing kernel, float workspace pooling, and
// cross-thread-count bitwise determinism of conv2d forward/backward.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <tuple>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "runtime/thread_pool.h"
#include "runtime/workspace.h"
#include "tensor/gemm.h"
#include "tensor/gemm_kernels.h"
#include "tensor/tensor.h"
#include "test_util.h"

namespace litho {
namespace {

// Naive k-ordered references. The engine promises the same per-element
// accumulation order, so parity should be exact at default build flags —
// but the tolerance below allows for multiply-add fusion differences under
// -DDOINN_NATIVE_ARCH=ON (-march=native enables FMA contraction, which may
// apply differently to this loop and the engine's kernels).
void ref_gemm(GemmLayout layout, const float* a, const float* b, float* c,
              int64_t m, int64_t k, int64_t n, bool accumulate = false,
              bool subtract = false, const float* bias = nullptr) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = accumulate ? c[i * n + j] : 0.f;
      for (int64_t kk = 0; kk < k; ++kk) {
        float av, bv;
        switch (layout) {
          case GemmLayout::kNN:
            av = a[i * k + kk];
            bv = b[kk * n + j];
            break;
          case GemmLayout::kTN:
            av = a[kk * m + i];
            bv = b[kk * n + j];
            break;
          default:  // kNT
            av = a[i * k + kk];
            bv = b[j * k + kk];
            break;
        }
        if (subtract) {
          acc -= av * bv;
        } else {
          acc += av * bv;
        }
      }
      c[i * n + j] = acc + (bias ? bias[i] : 0.f);
    }
  }
}

float tol_for(int64_t k) {
  // Zero at default flags; the scale term keeps the native-arch CI job
  // (FMA contraction) honest without hiding real bugs.
  return 1e-5f * static_cast<float>(std::max<int64_t>(k, 1));
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, AllLayoutsMatchNaive) {
  const auto [m, k, n] = GetParam();
  auto g = test::rng(static_cast<uint32_t>(m * 7919 + k * 131 + n));
  for (GemmLayout layout :
       {GemmLayout::kNN, GemmLayout::kTN, GemmLayout::kNT}) {
    Shape ashape = layout == GemmLayout::kTN ? Shape{k, m} : Shape{m, k};
    Shape bshape = layout == GemmLayout::kNT ? Shape{n, k} : Shape{k, n};
    Tensor a = Tensor::randn(ashape, g);
    Tensor b = Tensor::randn(bshape, g);
    Tensor c({m, n}), ref({m, n});
    packed_gemm(layout, a.data(), b.data(), c.data(), m, k, n);
    ref_gemm(layout, a.data(), b.data(), ref.data(), m, k, n);
    EXPECT_LE(test::max_abs_diff(c, ref), tol_for(k))
        << "layout " << static_cast<int>(layout) << " shape " << m << "x" << k
        << "x" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GemmShapes,
    ::testing::Values(
        // Smaller than one 4x8 micro-tile in every dimension.
        std::tuple{1, 1, 1}, std::tuple{3, 2, 5}, std::tuple{2, 7, 3},
        // Primes around the tile/block boundaries.
        std::tuple{7, 13, 17}, std::tuple{11, 37, 29}, std::tuple{13, 97, 31},
        // Exact tile multiples and the parallel block boundary.
        std::tuple{8, 64, 256}, std::tuple{16, 32, 257}, std::tuple{4, 8, 512},
        // k = 0: beta-0 semantics must still zero C.
        std::tuple{5, 0, 9}, std::tuple{1, 0, 1},
        // Deep K exercising multiple kGemmKC steps and the fused-pack path.
        std::tuple{9, 1031, 61}, std::tuple{32, 600, 300}));

TEST(Gemm, KZeroOverwritesDirtyOutput) {
  Tensor c = Tensor::full({3, 4}, 7.f);
  Tensor a({3, 0}), b({0, 4});
  gemm(a.data(), b.data(), c.data(), 3, 0, 4);
  for (int64_t i = 0; i < c.numel(); ++i) EXPECT_EQ(c[i], 0.f);
}

TEST(Gemm, EpilogueAccumulateSubtractBias) {
  auto g = test::rng(11);
  const int64_t m = 6, k = 23, n = 19;
  Tensor a = Tensor::randn({m, k}, g), b = Tensor::randn({k, n}, g);
  Tensor bias = Tensor::randn({m}, g);

  Tensor c = Tensor::ones({m, n});
  Tensor ref = Tensor::ones({m, n});
  GemmEpilogue acc;
  acc.accumulate = true;
  packed_gemm(GemmLayout::kNN, a.data(), b.data(), c.data(), m, k, n, acc);
  ref_gemm(GemmLayout::kNN, a.data(), b.data(), ref.data(), m, k, n, true);
  EXPECT_LE(test::max_abs_diff(c, ref), tol_for(k));

  GemmEpilogue sub;
  sub.accumulate = true;
  sub.subtract = true;
  packed_gemm(GemmLayout::kNN, a.data(), b.data(), c.data(), m, k, n, sub);
  ref_gemm(GemmLayout::kNN, a.data(), b.data(), ref.data(), m, k, n, true,
           true);
  EXPECT_LE(test::max_abs_diff(c, ref), tol_for(k));

  GemmEpilogue be;
  be.bias = bias.data();
  packed_gemm(GemmLayout::kNN, a.data(), b.data(), c.data(), m, k, n, be);
  ref_gemm(GemmLayout::kNN, a.data(), b.data(), ref.data(), m, k, n, false,
           false, bias.data());
  EXPECT_LE(test::max_abs_diff(c, ref), tol_for(k));
}

TEST(Gemm, PrepackedColBlockApiMatchesFullGemm) {
  auto g = test::rng(5);
  const int64_t m = 12, k = 70, n = 333;
  Tensor a = Tensor::randn({m, k}, g), b = Tensor::randn({k, n}, g);
  Tensor full({m, n}), blocked({m, n});
  packed_gemm(GemmLayout::kNN, a.data(), b.data(), full.data(), m, k, n);

  const PackedA pa(GemmLayout::kNN, a.data(), m, k);
  const StridedBPacker bp(b.data(), n, false);
  for (int64_t blk = 0; blk < gemm_col_blocks(n); ++blk) {
    gemm_col_block(pa, bp, n, blk, blocked.data());
  }
  EXPECT_EQ(test::max_abs_diff(full, blocked), 0.f);

  // On-the-fly A packing must agree bitwise with the pre-packed path.
  Tensor onfly({m, n});
  for (int64_t blk = 0; blk < gemm_col_blocks(n); ++blk) {
    gemm_col_block(GemmLayout::kNN, a.data(), m, k, bp, n, blk, onfly.data());
  }
  EXPECT_EQ(test::max_abs_diff(full, onfly), 0.f);
}

TEST(Gemm, BitwiseDeterministicAcrossThreadCounts) {
  auto g = test::rng(17);
  const int64_t m = 21, k = 130, n = 1030;
  Tensor a = Tensor::randn({m, k}, g), b = Tensor::randn({k, n}, g);
  Tensor c1({m, n}), c8({m, n});
  {
    runtime::ThreadPool serial(1);
    runtime::ScopedPool sp(&serial);
    packed_gemm(GemmLayout::kNN, a.data(), b.data(), c1.data(), m, k, n);
  }
  {
    runtime::ThreadPool wide(8);
    runtime::ScopedPool sp(&wide);
    packed_gemm(GemmLayout::kNN, a.data(), b.data(), c8.data(), m, k, n);
  }
  EXPECT_EQ(test::max_abs_diff(c1, c8), 0.f);
}

TEST(Gemm, LegacyEntryPointsStillAgree) {
  auto g = test::rng(23);
  const int64_t m = 10, k = 40, n = 55;
  Tensor a = Tensor::randn({m, k}, g), b = Tensor::randn({k, n}, g);
  Tensor ref({m, n});
  gemm(a.data(), b.data(), ref.data(), m, k, n);

  Tensor at = a.transpose2d(), c1({m, n});
  gemm_at_b(at.data(), b.data(), c1.data(), m, k, n);
  EXPECT_LE(test::max_abs_diff(ref, c1), tol_for(k));

  Tensor bt = b.transpose2d(), c2({m, n});
  gemm_a_bt(a.data(), bt.data(), c2.data(), m, k, n);
  EXPECT_LE(test::max_abs_diff(ref, c2), tol_for(k));
}

// The runtime dispatcher picks the AVX2 kernel table on AVX2 hosts, which
// would otherwise leave the portable baseline table untested on every CI
// runner. Feed both tables identical hand-packed panels and require exact
// agreement with each other and a k-ordered reference — this is also the
// direct statement of the "AVX2 without FMA rounds like scalar" claim the
// dispatcher's bitwise contract rests on.
TEST(Gemm, BaselineAndDispatchedKernelTablesAgreeBitwise) {
  auto g = test::rng(67);
  const int64_t klen = 37;
  Tensor a = Tensor::randn({klen, kGemmMR}, g);   // packed A panel, k-major
  Tensor b = Tensor::randn({klen, kGemmNR}, g);   // packed B micro-panel
  Tensor bias = Tensor::randn({kGemmMR}, g);

  Tensor ref({kGemmMR, kGemmNR});
  for (int64_t r = 0; r < kGemmMR; ++r) {
    for (int64_t j = 0; j < kGemmNR; ++j) {
      float acc = 0.f;
      for (int64_t kk = 0; kk < klen; ++kk) {
        acc += a[kk * kGemmMR + r] * b[kk * kGemmNR + j];
      }
      ref[r * kGemmNR + j] = acc + bias[r];
    }
  }

  // In the portable build neither table may fuse multiply-adds, so they
  // must agree exactly. Under -march=native (DOINN_NATIVE_ARCH) the
  // baseline TU's generic body may legally FMA-contract while the
  // intrinsic table never does, so allow rounding-scale slack there.
#if defined(__FMA__)
  const float ktol = tol_for(klen);
#else
  const float ktol = 0.f;
#endif
  const detail::MicroKernelTable& base = detail::baseline_kernels();
  const detail::MicroKernelTable& disp = detail::micro_kernels();
  Tensor c_base({kGemmMR, kGemmNR}), c_disp({kGemmMR, kGemmNR});
  base.add(klen, a.data(), b.data(), kGemmNR, c_base.data(), kGemmNR,
           /*init=*/true, bias.data());
  disp.add(klen, a.data(), b.data(), kGemmNR, c_disp.data(), kGemmNR,
           /*init=*/true, bias.data());
  EXPECT_LE(test::max_abs_diff(c_base, c_disp), ktol);
  EXPECT_LE(test::max_abs_diff(c_base, ref), tol_for(klen));

  // Edge variant: a ragged 3 x 5 sub-tile must agree the same way.
  Tensor e_base = Tensor::full({kGemmMR, kGemmNR}, -1.f);
  Tensor e_disp = Tensor::full({kGemmMR, kGemmNR}, -1.f);
  base.add_edge(klen, a.data(), b.data(), kGemmNR, e_base.data(), kGemmNR, 3,
                5, /*init=*/true, nullptr);
  disp.add_edge(klen, a.data(), b.data(), kGemmNR, e_disp.data(), kGemmNR, 3,
                5, /*init=*/true, nullptr);
  EXPECT_LE(test::max_abs_diff(e_base, e_disp), ktol);

  // Subtract variant.
  Tensor s_base = Tensor::ones({kGemmMR, kGemmNR});
  Tensor s_disp = Tensor::ones({kGemmMR, kGemmNR});
  base.sub(klen, a.data(), b.data(), kGemmNR, s_base.data(), kGemmNR,
           /*init=*/false, nullptr);
  disp.sub(klen, a.data(), b.data(), kGemmNR, s_disp.data(), kGemmNR,
           /*init=*/false, nullptr);
  EXPECT_LE(test::max_abs_diff(s_base, s_disp), ktol);
}

// -- Convolution through the implicit-im2col path -----------------------------

Tensor naive_conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
                    int64_t stride, int64_t padding) {
  const int64_t n = x.size(0), cin = x.size(1), h = x.size(2), ww = x.size(3);
  const int64_t cout = w.size(0), kh = w.size(2);
  const int64_t oh = ag::conv_out_size(h, kh, stride, padding);
  const int64_t ow = ag::conv_out_size(ww, kh, stride, padding);
  Tensor out({n, cout, oh, ow});
  for (int64_t s = 0; s < n; ++s) {
    for (int64_t co = 0; co < cout; ++co) {
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          double acc = bias.numel() ? bias[co] : 0.0;
          for (int64_t ci = 0; ci < cin; ++ci) {
            for (int64_t ky = 0; ky < kh; ++ky) {
              for (int64_t kx = 0; kx < kh; ++kx) {
                const int64_t iy = oy * stride + ky - padding;
                const int64_t ix = ox * stride + kx - padding;
                if (iy < 0 || iy >= h || ix < 0 || ix >= ww) continue;
                acc += static_cast<double>(
                           x[((s * cin + ci) * h + iy) * ww + ix]) *
                       w[((co * cin + ci) * kh + ky) * kh + kx];
              }
            }
          }
          out[((s * cout + co) * oh + oy) * ow + ox] =
              static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

TEST(ConvGemm, ForwardMatchesNaiveConvolution) {
  auto g = test::rng(31);
  struct Case {
    int64_t n, cin, cout, hw, k, stride, pad;
  };
  const std::vector<Case> cases = {
      {2, 3, 5, 12, 3, 1, 1},   // 3x3 same-size
      {1, 4, 6, 13, 4, 2, 1},   // strided downsample, odd extent
      {3, 2, 4, 9, 1, 1, 0},    // 1x1 fast path
      {1, 1, 2, 7, 3, 1, 0},    // no padding
      {2, 5, 3, 8, 3, 1, 2},    // padding wider than usual
  };
  for (const Case& c : cases) {
    Tensor x = Tensor::randn({c.n, c.cin, c.hw, c.hw}, g);
    Tensor w = Tensor::randn({c.cout, c.cin, c.k, c.k}, g, 0.f, 0.5f);
    Tensor bias = Tensor::randn({c.cout}, g);
    const ag::Variable xv(x), wv(w), bv(bias);
    const Tensor out = ag::conv2d(xv, wv, bv, c.stride, c.pad).value();
    const Tensor ref = naive_conv2d(x, w, bias, c.stride, c.pad);
    EXPECT_LE(test::max_abs_diff(out, ref),
              tol_for(c.cin * c.k * c.k) * 4.f)
        << "case hw=" << c.hw << " k=" << c.k << " stride=" << c.stride;
  }
}

TEST(ConvGemm, ForwardBackwardBitwiseDeterministicAcrossThreadCounts) {
  auto g = test::rng(41);
  Tensor x = Tensor::randn({3, 6, 20, 20}, g);
  Tensor w = Tensor::randn({8, 6, 3, 3}, g, 0.f, 0.3f);
  Tensor bias = Tensor::randn({8}, g);

  auto run = [&](int threads, Tensor* gx, Tensor* gw, Tensor* gb) {
    runtime::ThreadPool pool(threads);
    runtime::ScopedPool sp(&pool);
    ag::Variable xv(x.clone(), /*requires_grad=*/true);
    ag::Variable wv(w.clone(), /*requires_grad=*/true);
    ag::Variable bv(bias.clone(), /*requires_grad=*/true);
    ag::Variable out = ag::conv2d(xv, wv, bv, 1, 1);
    ag::Variable loss = ag::sum(out);
    loss.backward();
    *gx = xv.grad().clone();
    *gw = wv.grad().clone();
    *gb = bv.grad().clone();
    return out.value().clone();
  };

  Tensor gx1, gw1, gb1, gx8, gw8, gb8;
  const Tensor o1 = run(1, &gx1, &gw1, &gb1);
  const Tensor o8 = run(8, &gx8, &gw8, &gb8);
  EXPECT_EQ(test::max_abs_diff(o1, o8), 0.f);
  EXPECT_EQ(test::max_abs_diff(gx1, gx8), 0.f);
  EXPECT_EQ(test::max_abs_diff(gw1, gw8), 0.f);
  EXPECT_EQ(test::max_abs_diff(gb1, gb8), 0.f);
}

TEST(ConvGemm, ConvTransposeDeterministicAcrossThreadCounts) {
  auto g = test::rng(43);
  Tensor x = Tensor::randn({2, 5, 9, 9}, g);
  Tensor w = Tensor::randn({5, 4, 4, 4}, g, 0.f, 0.3f);
  Tensor bias = Tensor::randn({4}, g);

  auto run = [&](int threads, Tensor* gx, Tensor* gw) {
    runtime::ThreadPool pool(threads);
    runtime::ScopedPool sp(&pool);
    ag::Variable xv(x.clone(), true), wv(w.clone(), true), bv(bias.clone());
    ag::Variable out = ag::conv_transpose2d(xv, wv, bv, 2, 1);
    ag::sum(out).backward();
    *gx = xv.grad().clone();
    *gw = wv.grad().clone();
    return out.value().clone();
  };
  Tensor gx1, gw1, gx8, gw8;
  const Tensor o1 = run(1, &gx1, &gw1);
  const Tensor o8 = run(8, &gx8, &gw8);
  EXPECT_EQ(test::max_abs_diff(o1, o8), 0.f);
  EXPECT_EQ(test::max_abs_diff(gx1, gx8), 0.f);
  EXPECT_EQ(test::max_abs_diff(gw1, gw8), 0.f);
}

// -- Spectral mixing kernel ---------------------------------------------------

TEST(CmodeMix, MatchesNaivePerModeContraction) {
  auto g = test::rng(53);
  const int64_t b = 2, ci = 5, co = 3, xy = 77;  // odd sizes off the i-block
  Tensor vr = Tensor::randn({b * ci * xy}, g), vi = Tensor::randn({b * ci * xy}, g);
  Tensor wr = Tensor::randn({ci * co * xy}, g), wi = Tensor::randn({ci * co * xy}, g);
  Tensor zr({b * co * xy}), zi({b * co * xy});
  cmode_mix(b, ci, co, xy, vr.data(), vi.data(), wr.data(), wi.data(),
            zr.data(), zi.data());
  for (int64_t bb = 0; bb < b; ++bb) {
    for (int64_t o = 0; o < co; ++o) {
      for (int64_t p = 0; p < xy; ++p) {
        double ar = 0.0, ai = 0.0;
        for (int64_t i = 0; i < ci; ++i) {
          const double xr = vr[(bb * ci + i) * xy + p];
          const double xi = vi[(bb * ci + i) * xy + p];
          const double yr = wr[(i * co + o) * xy + p];
          const double yi = wi[(i * co + o) * xy + p];
          ar += xr * yr - xi * yi;
          ai += xr * yi + xi * yr;
        }
        EXPECT_NEAR(zr[(bb * co + o) * xy + p], ar, 1e-4);
        EXPECT_NEAR(zi[(bb * co + o) * xy + p], ai, 1e-4);
      }
    }
  }
}

TEST(CmodeMix, BitwiseDeterministicAcrossThreadCounts) {
  auto g = test::rng(59);
  const int64_t b = 3, ci = 9, co = 4, xy = 128;
  Tensor vr = Tensor::randn({b * ci * xy}, g), vi = Tensor::randn({b * ci * xy}, g);
  Tensor wr = Tensor::randn({ci * co * xy}, g), wi = Tensor::randn({ci * co * xy}, g);
  Tensor zr1({b * co * xy}), zi1({b * co * xy});
  Tensor zr8({b * co * xy}), zi8({b * co * xy});
  {
    runtime::ThreadPool serial(1);
    runtime::ScopedPool sp(&serial);
    cmode_mix(b, ci, co, xy, vr.data(), vi.data(), wr.data(), wi.data(),
              zr1.data(), zi1.data());
  }
  {
    runtime::ThreadPool wide(8);
    runtime::ScopedPool sp(&wide);
    cmode_mix(b, ci, co, xy, vr.data(), vi.data(), wr.data(), wi.data(),
              zr8.data(), zi8.data());
  }
  EXPECT_EQ(test::max_abs_diff(zr1, zr8), 0.f);
  EXPECT_EQ(test::max_abs_diff(zi1, zi8), 0.f);
}

// -- Float workspace pool -----------------------------------------------------

TEST(FloatWorkspacePool, ReusesReleasedBuffers) {
  runtime::FloatWorkspacePool& pool = runtime::FloatWorkspacePool::instance();
  pool.clear();
  { runtime::FloatWorkspace ws(1000); }
  const auto before = pool.stats();
  { runtime::FloatWorkspace ws(900); }  // same power-of-two class
  const auto after = pool.stats();
  EXPECT_EQ(after.acquires, before.acquires + 1);
  EXPECT_EQ(after.reuses, before.reuses + 1);
  pool.clear();
}

TEST(FloatWorkspacePool, IndependentFromComplexPool) {
  runtime::FloatWorkspacePool::instance().clear();
  runtime::WorkspacePool::instance().clear();
  const auto c0 = runtime::WorkspacePool::instance().stats();
  { runtime::FloatWorkspace ws(64); }
  const auto c1 = runtime::WorkspacePool::instance().stats();
  EXPECT_EQ(c0.acquires, c1.acquires);  // float leases don't touch it
}

}  // namespace
}  // namespace litho
