#include <gtest/gtest.h>

#include "core/doinn.h"
#include "core/large_tile.h"
#include "test_util.h"

namespace litho::core {
namespace {

DoinnConfig tiny_config() {
  DoinnConfig cfg;
  cfg.tile = 64;
  cfg.modes = 5;  // gp grid 8, half spectrum width 5
  cfg.gp_channels = 4;
  cfg.lp1 = 2;
  cfg.lp2 = 4;
  cfg.refine1 = 8;
  cfg.refine2 = 4;
  return cfg;
}

TEST(DoinnConfig, ValidationCatchesBadShapes) {
  DoinnConfig cfg = tiny_config();
  cfg.modes = 9;  // exceeds half-spectrum width 5
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = tiny_config();
  cfg.tile = 100;  // not divisible by 32
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = tiny_config();
  cfg.pool = 4;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(DoinnConfig, PaperScaleMatchesPublishedModelSize) {
  // The paper reports DOINN at 1.3M parameters (20x smaller than
  // DAMO-DLS's 18M). Verify our paper-dimension build reproduces that.
  auto rng = test::rng();
  Doinn model(DoinnConfig::paper(), rng);
  const int64_t params = model.num_parameters();
  EXPECT_GT(params, 1'200'000) << params;
  EXPECT_LT(params, 1'450'000) << params;
}

TEST(Doinn, ForwardShapeAndRange) {
  auto rng = test::rng(1);
  Doinn model(tiny_config(), rng);
  ag::Variable x(Tensor::rand({2, 1, 64, 64}, rng), false);
  ag::Variable y = model.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 1, 64, 64}));
  EXPECT_LE(y.value().max(), 1.f);
  EXPECT_GE(y.value().min(), -1.f);
}

TEST(Doinn, RejectsBadInput) {
  auto rng = test::rng(2);
  Doinn model(tiny_config(), rng);
  EXPECT_THROW(model.forward(ag::Variable(Tensor::zeros({1, 2, 64, 64}), false)),
               std::invalid_argument);
  EXPECT_THROW(model.forward(ag::Variable(Tensor::zeros({1, 1, 48, 48}), false)),
               std::invalid_argument);
}

TEST(Doinn, GpFeaturesShape) {
  auto rng = test::rng(3);
  DoinnConfig cfg = tiny_config();
  Doinn model(cfg, rng);
  ag::Variable x(Tensor::rand({1, 1, 64, 64}, rng), false);
  ag::Variable gp = model.gp_features(x);
  EXPECT_EQ(gp.shape(), (Shape{1, cfg.gp_channels, 8, 8}));
  ag::Variable lp = model.lp_features(x);
  EXPECT_EQ(lp.shape(), (Shape{1, cfg.lp3(), 8, 8}));
}

TEST(Doinn, AblationVariantsConstructAndRun) {
  auto rng = test::rng(4);
  for (const auto& [ir, lp, bypass] :
       std::vector<std::tuple<bool, bool, bool>>{{false, false, false},
                                                 {true, false, false},
                                                 {true, true, false},
                                                 {true, true, true}}) {
    DoinnConfig cfg = tiny_config();
    cfg.use_ir = ir;
    cfg.use_lp = lp;
    cfg.use_bypass = bypass;
    Doinn model(cfg, rng);
    ag::Variable x(Tensor::rand({1, 1, 64, 64}, rng), false);
    EXPECT_EQ(model.forward(x).shape(), (Shape{1, 1, 64, 64}))
        << "ir=" << ir << " lp=" << lp << " bypass=" << bypass;
  }
}

TEST(Doinn, AblationAddsParameters) {
  auto rng = test::rng(5);
  DoinnConfig base = tiny_config();
  base.use_ir = base.use_lp = base.use_bypass = false;
  DoinnConfig full = tiny_config();
  Doinn m_base(base, rng), m_full(full, rng);
  EXPECT_GT(m_full.num_parameters(), m_base.num_parameters());
}

TEST(Doinn, BackwardProducesFiniteParamGrads) {
  auto rng = test::rng(6);
  Doinn model(tiny_config(), rng);
  ag::Variable x(Tensor::rand({1, 1, 64, 64}, rng), false);
  Tensor target = Tensor::full({1, 1, 64, 64}, -1.f);
  ag::Variable loss = ag::mse_loss(model.forward(x), target);
  loss.backward();
  int64_t nonzero = 0;
  for (const ag::Variable& p : model.parameters()) {
    const Tensor& g = p.grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(g[i]));
      if (g[i] != 0.f) ++nonzero;
    }
  }
  EXPECT_GT(nonzero, 100) << "gradients did not flow to parameters";
}

TEST(Doinn, StateDictRoundTripPreservesOutput) {
  auto rng = test::rng(7);
  Doinn a(tiny_config(), rng), b(tiny_config(), rng);
  auto rng2 = test::rng(8);
  Tensor x = Tensor::rand({1, 1, 64, 64}, rng2);
  b.load_state_dict(a.state_dict());
  a.set_training(false);
  b.set_training(false);
  ag::Variable ya = a.forward(ag::Variable(x, false));
  ag::Variable yb = b.forward(ag::Variable(x, false));
  EXPECT_EQ(test::max_abs_diff(ya.value(), yb.value()), 0.f);
}

// Property sweep: DOINN constructs and preserves shape across a grid of
// scaled configurations (tile, modes, channels).
class DoinnConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DoinnConfigSweep, ForwardPreservesShape) {
  const auto [tile, modes, channels] = GetParam();
  DoinnConfig cfg;
  cfg.tile = tile;
  cfg.modes = modes;
  cfg.gp_channels = channels;
  cfg.lp1 = 2;
  cfg.lp2 = 4;
  cfg.refine1 = 8;
  cfg.refine2 = 4;
  auto rng = test::rng(static_cast<uint32_t>(tile + modes + channels));
  Doinn model(cfg, rng);
  ag::Variable x(Tensor::rand({1, 1, tile, tile}, rng), false);
  EXPECT_EQ(model.forward(x).shape(), (Shape{1, 1, tile, tile}));
}

INSTANTIATE_TEST_SUITE_P(Grid, DoinnConfigSweep,
                         ::testing::Values(std::tuple{32, 3, 2},
                                           std::tuple{64, 5, 4},
                                           std::tuple{64, 3, 8},
                                           std::tuple{96, 7, 4},
                                           std::tuple{128, 7, 8}));

TEST(Doinn, AnySizeInputWithFixedWeights) {
  // The paper's "ANY-sized tiles" property: the same weights run on inputs
  // of different (divisible-by-32) sizes, because every path is
  // convolutional or spectral with size-relative truncation.
  auto rng = test::rng(77);
  Doinn model(tiny_config(), rng);  // trained-at-64 weights
  for (int64_t n : {64, 96, 128}) {
    auto rng2 = test::rng(static_cast<uint32_t>(n));
    ag::Variable x(Tensor::rand({1, 1, n, n}, rng2), false);
    EXPECT_EQ(model.forward(x).shape(), (Shape{1, 1, n, n})) << n;
  }
}

// -- Large-tile scheme --------------------------------------------------------

TEST(LargeTile, StitchedGpEqualsPlainGpForTrainingSize) {
  auto rng = test::rng(9);
  Doinn model(tiny_config(), rng);
  LargeTilePredictor lt(model);
  auto rng2 = test::rng(10);
  Tensor mask = Tensor::rand({64, 64}, rng2);
  ag::Variable stitched = lt.stitched_gp(mask);
  ag::Variable plain = model.gp_features(
      ag::Variable(mask.clone().reshape({1, 1, 64, 64}), false));
  EXPECT_LT(test::max_abs_diff(stitched.value(), plain.value()), 1e-6f);
}

TEST(LargeTile, PredictMatchesPlainForTrainingSize) {
  auto rng = test::rng(11);
  Doinn model(tiny_config(), rng);
  LargeTilePredictor lt(model);
  auto rng2 = test::rng(12);
  Tensor mask = Tensor::rand({64, 64}, rng2);
  Tensor a = lt.predict(mask);
  Tensor b = lt.predict_plain(mask);
  EXPECT_LT(test::max_abs_diff(a, b), 1e-5f);
}

TEST(LargeTile, DoubleSizePredictionShapes) {
  auto rng = test::rng(13);
  Doinn model(tiny_config(), rng);
  LargeTilePredictor lt(model);
  auto rng2 = test::rng(14);
  Tensor mask = Tensor::rand({128, 128}, rng2);
  Tensor out = lt.predict(mask);
  EXPECT_EQ(out.shape(), (Shape{128, 128}));
  Tensor plain = lt.predict_plain(mask);
  EXPECT_EQ(plain.shape(), (Shape{128, 128}));
}

TEST(LargeTile, RejectsNonMultipleOfHalfTile) {
  auto rng = test::rng(15);
  Doinn model(tiny_config(), rng);
  LargeTilePredictor lt(model);
  EXPECT_THROW(lt.predict(Tensor::zeros({80, 64})), std::invalid_argument);
  EXPECT_THROW(lt.predict(Tensor::zeros({32, 32})), std::invalid_argument);
  // 96 = 3 * tile/2 is fine (three half-overlapped clip rows).
  EXPECT_EQ(lt.predict(Tensor::zeros({96, 64})).shape(), (Shape{96, 64}));
}

TEST(LargeTile, StitchingCoversEveryFeaturePixelExactlyOnce) {
  // Feed a constant mask: every stitched feature pixel must equal the value
  // the plain GP produces for a constant input (translation invariance of
  // the pipeline up to boundary effects is exact for constants).
  auto rng = test::rng(16);
  Doinn model(tiny_config(), rng);
  LargeTilePredictor lt(model);
  Tensor mask = Tensor::full({128, 128}, 0.7f);
  ag::Variable stitched = lt.stitched_gp(mask);
  ag::Variable plain_small = model.gp_features(
      ag::Variable(Tensor::full({1, 1, 64, 64}, 0.7f), false));
  // All stitched values must appear in the plain feature map's value range.
  EXPECT_LE(stitched.value().max(), plain_small.value().max() + 1e-4f);
  EXPECT_GE(stitched.value().min(), plain_small.value().min() - 1e-4f);
}

}  // namespace
}  // namespace litho::core
