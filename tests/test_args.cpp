// Tests for the shared --flag argv parser, focused on the scheduler options
// consumed by doinn_serve (--max-batch, --max-delay-us, --queue-cap):
// value/boolean forms, strict numeric parsing, and invalid-value rejection.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "../apps/args.h"

namespace litho {
namespace {

/// Builds an Args from a brace list, mimicking main()'s argv (slot 0 is the
/// program name; parsing starts at 1, as doinn_serve does).
apps::Args parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "doinn_serve");
  return apps::Args(static_cast<int>(argv.size()),
                    const_cast<char**>(argv.data()), /*start=*/1);
}

TEST(Args, ParsesSchedulerFlags) {
  const apps::Args args = parse(
      {"--max-batch", "16", "--max-delay-us", "2500", "--queue-cap", "128"});
  EXPECT_EQ(args.get_int("max-batch", 8), 16);
  EXPECT_EQ(args.get_int("max-delay-us", 2000), 2500);
  EXPECT_EQ(args.get_int("queue-cap", 64), 128);
}

TEST(Args, AbsentFlagsFallBack) {
  const apps::Args args = parse({"--weights", "w.bin"});
  EXPECT_EQ(args.get_int("max-batch", 8), 8);
  EXPECT_EQ(args.get_int("max-delay-us", 2000), 2000);
  EXPECT_EQ(args.get_positive_int("queue-cap", 64), 64);
  EXPECT_FALSE(args.has("max-batch"));
}

TEST(Args, BooleanAndTrailingFlagForms) {
  const apps::Args args = parse({"--once", "--max-batch", "4", "--help"});
  EXPECT_TRUE(args.get_bool("once"));
  EXPECT_TRUE(args.get_bool("help"));  // trailing flag is not dropped
  EXPECT_EQ(args.get_int("max-batch", 8), 4);
  EXPECT_FALSE(args.get_bool("quick"));
}

TEST(Args, NegativeValuesParse) {
  // '-'-prefixed values are values, not flags (e.g. `--defocus -25`); range
  // checks are the caller's job.
  const apps::Args args = parse({"--max-delay-us", "-5"});
  EXPECT_EQ(args.get_int("max-delay-us", 2000), -5);
}

TEST(Args, RejectsNonNumericValues) {
  const apps::Args args = parse({"--max-batch", "abc"});
  EXPECT_THROW(args.get_int("max-batch", 8), std::runtime_error);
  try {
    (void)args.get_int("max-batch", 8);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("max-batch"), std::string::npos)
        << "error must name the offending flag: " << e.what();
  }
}

TEST(Args, RejectsTrailingGarbage) {
  // Pre-hardening, std::stoll would silently truncate "12x" to 12.
  const apps::Args args = parse({"--queue-cap", "12x"});
  EXPECT_THROW(args.get_int("queue-cap", 64), std::runtime_error);
}

TEST(Args, RejectsOutOfRangeValues) {
  const apps::Args args =
      parse({"--max-delay-us", "99999999999999999999999999"});
  EXPECT_THROW(args.get_int("max-delay-us", 2000), std::runtime_error);
}

TEST(Args, RejectsBooleanFormWhereValueExpected) {
  // `--max-batch --once`: max-batch stores "1" (boolean form), which parses
  // as 1 — a surprising but valid integer. A *trailing* `--max-batch` does
  // the same. Document the contract: boolean form yields 1.
  const apps::Args args = parse({"--max-batch", "--once"});
  EXPECT_EQ(args.get_int("max-batch", 8), 1);
}

TEST(Args, PositiveIntRejectsZeroAndNegative) {
  EXPECT_THROW(parse({"--max-batch", "0"}).get_positive_int("max-batch", 8),
               std::runtime_error);
  EXPECT_THROW(parse({"--queue-cap", "-3"}).get_positive_int("queue-cap", 64),
               std::runtime_error);
  EXPECT_EQ(parse({"--max-batch", "2"}).get_positive_int("max-batch", 8), 2);
}

TEST(Args, RejectsNonFlagTokens) {
  EXPECT_THROW(parse({"stray-token"}), std::runtime_error);
  EXPECT_THROW(parse({"--"}), std::runtime_error);  // empty flag name
}

TEST(Args, StrictDoubleParsing) {
  EXPECT_DOUBLE_EQ(parse({"--defocus", "-25.5"}).get_double("defocus", 0.0),
                   -25.5);
  EXPECT_THROW(parse({"--defocus", "1.5q"}).get_double("defocus", 0.0),
               std::runtime_error);
}

}  // namespace
}  // namespace litho
