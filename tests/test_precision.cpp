// Tests for load-time weight prepacking and the reduced-precision inference
// path (tensor/prepack.h): fp32 prepacked panels must be bitwise identical
// to the per-call packing path, every precision mode must keep the engine's
// cross-thread-count bitwise-determinism contract, the int8/bf16 micro
// kernels must agree across dispatch tables (baseline vs AVX2), and int8
// inference on a trained checkpoint must stay within a contour-accuracy
// bound of fp32.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/doinn.h"
#include "core/metrics.h"
#include "core/trainer.h"
#include "runtime/engine.h"
#include "tensor/gemm.h"
#include "tensor/gemm_kernels.h"
#include "tensor/prepack.h"
#include "test_util.h"

namespace litho {
namespace {

core::DoinnConfig tiny_config() {
  core::DoinnConfig cfg = core::DoinnConfig::small();
  cfg.tile = 64;
  cfg.modes = 4;
  cfg.gp_channels = 4;
  return cfg;
}

Tensor random_mask(int64_t side, uint32_t seed) {
  auto rng = test::rng(seed);
  Tensor mask = Tensor::rand({side, side}, rng);
  mask.apply_([](float v) { return v >= 0.6f ? 1.f : 0.f; });
  return mask;
}

// -- Precision flag and bf16 conversion ---------------------------------------

TEST(Precision, FlagRoundTripsAndRejectsUnknown) {
  EXPECT_EQ(parse_precision("fp32"), Precision::kFp32);
  EXPECT_EQ(parse_precision("int8"), Precision::kInt8);
  EXPECT_EQ(parse_precision("bf16"), Precision::kBf16);
  EXPECT_STREQ(precision_name(Precision::kFp32), "fp32");
  EXPECT_STREQ(precision_name(Precision::kInt8), "int8");
  EXPECT_STREQ(precision_name(Precision::kBf16), "bf16");
  EXPECT_THROW(parse_precision("fp16"), std::invalid_argument);
}

TEST(Precision, Bf16ConversionRoundsToNearestEven) {
  // Exactly representable values survive a round trip.
  // (0x1.fep127 is the bf16 max normal — 8 mantissa bits, all ones.)
  for (float v : {0.f, -0.f, 1.f, -2.5f, 0.15625f, 0x1.fep127f}) {
    EXPECT_EQ(bf16_to_fp32(fp32_to_bf16(v)), v) << v;
  }
  // 1 + 2^-8 sits exactly between bf16 neighbours 1.0 and 1 + 2^-7: RNE
  // picks the even mantissa (1.0). Anything above the midpoint rounds up.
  EXPECT_EQ(bf16_to_fp32(fp32_to_bf16(1.f + 0x1.0p-8f)), 1.f);
  EXPECT_EQ(bf16_to_fp32(fp32_to_bf16(1.f + 0x1.1p-8f)), 1.f + 0x1.0p-7f);
  // The next representable (1 + 2^-7) + midpoint rounds to even = up.
  EXPECT_EQ(bf16_to_fp32(fp32_to_bf16(1.f + 0x1.8p-7f)), 1.f + 0x1.0p-6f);
  // Infinity is preserved; NaN stays NaN (quietened, not flushed to inf).
  EXPECT_EQ(bf16_to_fp32(fp32_to_bf16(INFINITY)), INFINITY);
  EXPECT_TRUE(std::isnan(bf16_to_fp32(fp32_to_bf16(NAN))));
}

// -- PackedWeight layouts -----------------------------------------------------

TEST(PackedWeight, Fp32PanelsBitwiseMatchPackedA) {
  auto rng = test::rng(3);
  const int64_t m = 13, k = 37;  // ragged m-tile, K not a multiple of 2
  Tensor a = Tensor::randn({m, k}, rng);
  for (GemmLayout layout : {GemmLayout::kNN, GemmLayout::kTN}) {
    // kTN consumes a as aᵀ: logical extents swap.
    const int64_t lm = layout == GemmLayout::kNN ? m : k;
    const int64_t lk = layout == GemmLayout::kNN ? k : m;
    PackedA per_call(layout, a.data(), lm, lk);
    PackedWeight load_time(layout, a.data(), lm, lk, Precision::kFp32);
    const int64_t tiles = (lm + kGemmMR - 1) / kGemmMR;
    EXPECT_EQ(std::memcmp(per_call.view().buf, load_time.fp32_view().buf,
                          sizeof(float) * tiles * kGemmMR * lk),
              0);
  }
}

TEST(PackedWeight, Int8RowScalesAndPanelsMatchReference) {
  auto rng = test::rng(7);
  const int64_t m = 6, k = 9;  // ragged tile, K % 4 == 1 (zero-padded quad)
  Tensor a = Tensor::randn({m, k}, rng);
  PackedWeight pw(GemmLayout::kNN, a.data(), m, k, Precision::kInt8);
  ASSERT_EQ(pw.k_quads(), 3);
  for (int64_t i = 0; i < m; ++i) {
    float mx = 0.f;
    for (int64_t kk = 0; kk < k; ++kk) {
      mx = std::max(mx, std::abs(a[i * k + kk]));
    }
    EXPECT_EQ(pw.row_scales()[i], mx / 127.f) << "row " << i;
    const float inv = mx > 0.f ? 127.f / mx : 0.f;
    const int8_t* panel = pw.i8_panel(i / kGemmMR);
    const int64_t r = i % kGemmMR;
    int32_t sum = 0;
    for (int64_t kk = 0; kk < k; ++kk) {
      const auto q = static_cast<int8_t>(std::lrintf(a[i * k + kk] * inv));
      EXPECT_EQ(panel[(kk / 4) * kGemmMR * 4 + r * 4 + (kk % 4)], q)
          << "row " << i << " k " << kk;
      sum += q;
    }
    // The recorded row sum (which cancels the +128 activation shift) must
    // total exactly the quantized bytes.
    EXPECT_EQ(pw.row_sums()[i], sum) << "row " << i;
    // K % 4 == 1: the last three slots of the final quad are zero padding.
    for (int64_t pad = k % 4; pad < 4; ++pad) {
      EXPECT_EQ(panel[(k / 4) * kGemmMR * 4 + r * 4 + pad], 0);
    }
  }
}

// -- Kernel dispatch parity (baseline vs AVX2 tables) -------------------------

TEST(QuantKernels, DispatchedI8KernelsBitwiseMatchBaseline) {
  auto rng = test::rng(11);
  const int64_t klen = 21;  // K % 4 == 1: exercises the padded final quad
  const int64_t kquads = (klen + 3) / 4;
  Tensor af = Tensor::randn({kGemmMR, klen}, rng);
  Tensor bf = Tensor::randn({klen, kGemmNR}, rng);
  PackedWeight pw(GemmLayout::kNN, af.data(), kGemmMR, klen, Precision::kInt8);

  const detail::QuantKernelTable& base = detail::baseline_quant_kernels();
  const detail::QuantKernelTable& disp = detail::quant_kernels();

  const float inv_b = 127.f / max_abs(bf.data(), bf.numel());
  std::vector<uint8_t> qb_base(kquads * 32, 0), qb_disp(kquads * 32, 0);
  base.i8_quant(bf.data(), klen, inv_b, qb_base.data());
  disp.i8_quant(bf.data(), klen, inv_b, qb_disp.data());
  EXPECT_EQ(std::memcmp(qb_base.data(), qb_disp.data(), qb_base.size()), 0);
  // Padded k slots hold the zero-point, never raw zero.
  EXPECT_EQ(qb_base[(klen / 4) * 32 + 0 * 4 + klen % 4], 128);

  // The kernels accumulate exact int32 partial sums on top of whatever the
  // caller parked — seed a nonzero park to exercise that contract.
  std::vector<int32_t> acc_seed(kGemmMR * kGemmNR);
  for (size_t i = 0; i < acc_seed.size(); ++i) {
    acc_seed[i] = static_cast<int32_t>(i) * 11 - 40;
  }
  std::vector<int32_t> acc_base = acc_seed, acc_disp = acc_seed;
  base.i8(kquads, pw.i8_panel(0), qb_base.data(), acc_base.data(), kGemmNR);
  disp.i8(kquads, pw.i8_panel(0), qb_base.data(), acc_disp.data(), kGemmNR);
  EXPECT_EQ(std::memcmp(acc_base.data(), acc_disp.data(),
                        sizeof(int32_t) * acc_base.size()),
            0);
  EXPECT_NE(std::memcmp(acc_base.data(), acc_seed.data(),
                        sizeof(int32_t) * acc_base.size()),
            0);  // the kernel actually accumulated something

  // Paired kernel == two single-tile calls, bit for bit (second B panel
  // packed back to back at bp + kquads*32; here both tiles reuse qb_base).
  std::vector<uint8_t> qb2(2 * kquads * 32);
  std::copy(qb_base.begin(), qb_base.end(), qb2.begin());
  std::copy(qb_base.begin(), qb_base.end(), qb2.begin() + kquads * 32);
  std::vector<int32_t> acc_pair(kGemmMR * 2 * kGemmNR, 5);
  std::vector<int32_t> acc_two = acc_pair;
  disp.i8x2(kquads, pw.i8_panel(0), qb2.data(), acc_pair.data());
  base.i8(kquads, pw.i8_panel(0), qb2.data(), acc_two.data(), 2 * kGemmNR);
  base.i8(kquads, pw.i8_panel(0), qb2.data() + kquads * 32,
          acc_two.data() + kGemmNR, 2 * kGemmNR);
  EXPECT_EQ(std::memcmp(acc_pair.data(), acc_two.data(),
                        sizeof(int32_t) * acc_pair.size()),
            0);
}

TEST(QuantKernels, DispatchedBf16KernelsBitwiseMatchBaseline) {
  auto rng = test::rng(13);
  const int64_t klen = 19;
  Tensor af = Tensor::randn({kGemmMR, klen}, rng);
  Tensor bf = Tensor::randn({klen, kGemmNR}, rng);
  PackedWeight pw(GemmLayout::kNN, af.data(), kGemmMR, klen, Precision::kBf16);
  std::vector<uint16_t> bpan(klen * kGemmNR);
  for (int64_t i = 0; i < klen * kGemmNR; ++i) {
    bpan[i] = fp32_to_bf16(bf.data()[i]);
  }

  const detail::QuantKernelTable& base = detail::baseline_quant_kernels();
  const detail::QuantKernelTable& disp = detail::quant_kernels();
  std::vector<float> bias = {0.25f, -1.f, 0.5f, 0.f};
  std::vector<float> c_base(kGemmMR * kGemmNR, 0.f), c_disp = c_base;
  base.bf16(klen, pw.bf16_panel(0, 0), bpan.data(), c_base.data(), kGemmNR,
            /*init=*/true, bias.data());
  disp.bf16(klen, pw.bf16_panel(0, 0), bpan.data(), c_disp.data(), kGemmNR,
            /*init=*/true, bias.data());
  EXPECT_EQ(std::memcmp(c_base.data(), c_disp.data(),
                        sizeof(float) * c_base.size()),
            0);

  std::fill(c_base.begin(), c_base.end(), 2.f);  // parked partials, init=false
  std::fill(c_disp.begin(), c_disp.end(), 2.f);
  base.bf16_edge(klen, pw.bf16_panel(0, 0), bpan.data(), c_base.data(),
                 kGemmNR, /*mr=*/3, /*nr=*/6, /*init=*/false, nullptr);
  disp.bf16_edge(klen, pw.bf16_panel(0, 0), bpan.data(), c_disp.data(),
                 kGemmNR, /*mr=*/3, /*nr=*/6, /*init=*/false, nullptr);
  EXPECT_EQ(std::memcmp(c_base.data(), c_disp.data(),
                        sizeof(float) * c_base.size()),
            0);
}

// -- Column-block GEMM entry points -------------------------------------------

TEST(QuantGemm, Int8ColBlockMatchesScalarReference) {
  auto rng = test::rng(17);
  const int64_t m = 11, k = 21, n = 13;  // ragged everywhere, odd K
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor bias = Tensor::randn({m}, rng);
  PackedWeight pw(GemmLayout::kNN, a.data(), m, k, Precision::kInt8);
  StridedBPacker bp(b.data(), n, /*transposed=*/false);

  const float bmax = max_abs(b.data(), k * n);
  const float inv_b = 127.f / bmax;
  std::vector<float> combined(m);
  for (int64_t i = 0; i < m; ++i) {
    combined[i] = pw.row_scales()[i] * (bmax / 127.f);
  }
  Tensor c({m, n});
  ASSERT_EQ(gemm_col_blocks(n), 1);
  gemm_col_block_i8(pw, bp, inv_b, combined.data(), n, /*block=*/0, c.data(),
                    bias.data());

  // Scalar reference over independently re-quantized operands. Integer
  // accumulation is exact, so only the final fp32 dequant (one multiply,
  // one add) can differ — allow a couple of ulps for FMA contraction.
  for (int64_t i = 0; i < m; ++i) {
    float mx = 0.f;
    for (int64_t kk = 0; kk < k; ++kk) {
      mx = std::max(mx, std::abs(a[i * k + kk]));
    }
    const float mx_inv = mx > 0.f ? 127.f / mx : 0.f;
    for (int64_t j = 0; j < n; ++j) {
      int64_t acc = 0;
      for (int64_t kk = 0; kk < k; ++kk) {
        const long qa = std::lrintf(a[i * k + kk] * mx_inv);
        const long qb = std::lrintf(b[kk * n + j] * inv_b);
        acc += qa * qb;
      }
      const float want = static_cast<float>(acc) * combined[i] + bias[i];
      EXPECT_NEAR(c[i * n + j], want,
                  1e-5f * std::max(1.f, std::abs(want)))
          << "element (" << i << ", " << j << ")";
    }
  }

  // And the whole block is bitwise repeatable.
  Tensor c2({m, n});
  gemm_col_block_i8(pw, bp, inv_b, combined.data(), n, 0, c2.data(),
                    bias.data());
  EXPECT_EQ(test::max_abs_diff(c, c2), 0.f);
}

TEST(QuantGemm, Int8TracksFp32WithinQuantizationError) {
  auto rng = test::rng(19);
  const int64_t m = 16, k = 600, n = 32;  // K spans two kGemmKC chunks
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  PackedWeight pw(GemmLayout::kNN, a.data(), m, k, Precision::kInt8);
  StridedBPacker bp(b.data(), n, false);

  Tensor ref({m, n});
  PackedA pa(GemmLayout::kNN, a.data(), m, k);
  gemm_col_block(pa, bp, n, 0, ref.data());

  const float bmax = max_abs(b.data(), k * n);
  std::vector<float> combined(m);
  for (int64_t i = 0; i < m; ++i) {
    combined[i] = pw.row_scales()[i] * (bmax / 127.f);
  }
  Tensor c({m, n});
  gemm_col_block_i8(pw, bp, 127.f / bmax, combined.data(), n, 0, c.data(),
                    nullptr);
  // Rounding error per product is <= scale/2 each side; the k-sum stays
  // well under 2% of the output magnitude for randn operands at this K.
  const float mag = std::max(1.f, max_abs(ref.data(), ref.numel()));
  EXPECT_LT(test::max_abs_diff(c, ref), 0.02f * mag);
}

TEST(QuantGemm, Bf16ColBlockMatchesWidenedFp32Bitwise) {
  auto rng = test::rng(23);
  const int64_t m = 11, k = 600, n = 13;  // ragged tiles, two K chunks
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor bias = Tensor::randn({m}, rng);
  PackedWeight pw(GemmLayout::kNN, a.data(), m, k, Precision::kBf16);
  StridedBPacker bp(b.data(), n, false);
  GemmEpilogue ep;
  ep.bias = bias.data();
  Tensor c({m, n});
  gemm_col_block_bf16(pw, bp, n, 0, c.data(), ep);

  // The bf16 kernels reuse the fp32 engine's blocking and accumulation
  // order, so the result must be bitwise identical to the fp32 path run on
  // operands pre-rounded to bf16 storage.
  Tensor aw({m, k}), bw({k, n});
  for (int64_t i = 0; i < a.numel(); ++i) {
    aw.data()[i] = bf16_to_fp32(fp32_to_bf16(a[i]));
  }
  for (int64_t i = 0; i < b.numel(); ++i) {
    bw.data()[i] = bf16_to_fp32(fp32_to_bf16(b[i]));
  }
  Tensor ref({m, n});
  PackedA pa(GemmLayout::kNN, aw.data(), m, k);
  StridedBPacker bpw(bw.data(), n, false);
  gemm_col_block(pa, bpw, n, 0, ref.data(), ep);
  EXPECT_EQ(test::max_abs_diff(c, ref), 0.f);
}

// -- Engine-level parity and determinism --------------------------------------

TEST(Prepack, Fp32ForwardBitwiseMatchesPerCallPath) {
  core::DoinnConfig cfg = tiny_config();
  auto rng = test::rng(29);
  core::Doinn model(cfg, rng);
  model.set_training(false);
  const Tensor mask = random_mask(cfg.tile, 31);
  const Tensor per_call = core::predict_contour(model, mask);
  model.prepack_forward(Precision::kFp32);
  const Tensor prepacked = core::predict_contour(model, mask);
  EXPECT_EQ(test::max_abs_diff(per_call, prepacked), 0.f);
}

TEST(Prepack, EveryPrecisionBitwiseEqualAcrossThreadCountsAndBatchSplit) {
  core::DoinnConfig cfg = tiny_config();
  std::vector<Tensor> masks;
  for (uint32_t s = 40; s < 43; ++s) masks.push_back(random_mask(cfg.tile, s));
  for (Precision p :
       {Precision::kFp32, Precision::kInt8, Precision::kBf16}) {
    runtime::EngineOptions serial_opts;
    serial_opts.num_threads = 1;
    serial_opts.precision = p;
    runtime::EngineOptions wide_opts;
    wide_opts.num_threads = 4;
    wide_opts.precision = p;
    runtime::InferenceEngine serial(cfg, /*seed=*/77, serial_opts);
    runtime::InferenceEngine wide(cfg, /*seed=*/77, wide_opts);
    const std::vector<Tensor> a = serial.predict_batch(masks);
    const std::vector<Tensor> b = wide.predict_batch(masks);
    ASSERT_EQ(a.size(), masks.size());
    for (size_t i = 0; i < masks.size(); ++i) {
      EXPECT_EQ(test::max_abs_diff(a[i], b[i]), 0.f)
          << precision_name(p) << " mask " << i;
      // Batch composition must not matter either: int8 activation scales
      // are per-sample, so a solo predict sees the same quantization.
      EXPECT_EQ(test::max_abs_diff(wide.predict(masks[i]), b[i]), 0.f)
          << precision_name(p) << " solo mask " << i;
    }
  }
}

// -- Contour accuracy of reduced precision on a trained checkpoint ------------

TEST(Prepack, ReducedPrecisionContourAccuracyOnTrainedCheckpoint) {
  core::DoinnConfig cfg = tiny_config();
  // Synthetic mask-to-mask dataset: enough structure for the loss to leave
  // the all-background solution, cheap enough to train in-process.
  core::ContourDataset data;
  for (uint32_t s = 0; s < 6; ++s) {
    Tensor mask = random_mask(cfg.tile, 300 + s);
    data.masks.push_back(mask);
    data.resists.push_back(mask.clone());
  }
  auto rng = test::rng(55);
  core::Doinn model(cfg, rng);
  core::TrainConfig tcfg;
  tcfg.epochs = 8;
  tcfg.batch_size = 2;
  tcfg.lr = 5e-3f;
  tcfg.lr_step = 4;
  core::train_model(model, data, tcfg);

  const std::string path = "test_precision_ckpt.bin";
  core::save_doinn(path, model);
  runtime::EngineOptions fp32_opts, int8_opts, bf16_opts;
  fp32_opts.num_threads = 2;
  int8_opts = bf16_opts = fp32_opts;
  int8_opts.precision = Precision::kInt8;
  bf16_opts.precision = Precision::kBf16;
  runtime::InferenceEngine fp32(path, fp32_opts);
  runtime::InferenceEngine int8(path, int8_opts);
  runtime::InferenceEngine bf16(path, bf16_opts);
  std::remove(path.c_str());

  std::vector<core::SegmentationMetrics> int8_m, bf16_m;
  for (const Tensor& mask : data.masks) {
    const Tensor ref = fp32.predict(mask);
    ASSERT_GT(ref.sum(), 0.f);  // trained model prints something
    int8_m.push_back(core::evaluate_contours(int8.predict(mask), ref));
    bf16_m.push_back(core::evaluate_contours(bf16.predict(mask), ref));
  }
  // Reduced precision may only move contour pixels near the print
  // threshold: the binarized outputs must stay nearly coincident with the
  // fp32 engine's.
  EXPECT_GT(core::average(int8_m).miou, 0.85);
  EXPECT_GT(core::average(bf16_m).miou, 0.95);
}

}  // namespace
}  // namespace litho
