// Shared test helpers: numeric gradient checking and tensor comparisons.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <random>

#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace litho::test {

/// Maximum absolute elementwise difference.
inline float max_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.same_shape(b));
  float m = 0.f;
  for (int64_t i = 0; i < a.numel(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

/// Checks analytic gradients of `fn` (mapping leaf inputs to a scalar
/// Variable) against central finite differences over every element of every
/// leaf. Uses a relative/absolute mixed tolerance suited to float32.
///
/// `fn` must rebuild the graph from the leaves on every call (values are
/// perturbed in place between calls).
inline void gradcheck(const std::function<ag::Variable()>& fn,
                      std::vector<ag::Variable> leaves, float eps = 1e-2f,
                      float tol = 2e-2f) {
  // Analytic pass.
  for (ag::Variable& l : leaves) l.zero_grad();
  ag::Variable out = fn();
  ASSERT_EQ(out.value().numel(), 1) << "gradcheck expects a scalar output";
  out.backward();
  std::vector<Tensor> analytic;
  analytic.reserve(leaves.size());
  for (ag::Variable& l : leaves) analytic.push_back(l.grad().clone());

  // Numeric pass.
  for (size_t li = 0; li < leaves.size(); ++li) {
    Tensor& v = leaves[li].mutable_value();
    for (int64_t i = 0; i < v.numel(); ++i) {
      const float orig = v[i];
      v[i] = orig + eps;
      const float f_plus = fn().value()[0];
      v[i] = orig - eps;
      const float f_minus = fn().value()[0];
      v[i] = orig;
      const float numeric = (f_plus - f_minus) / (2.f * eps);
      const float a = analytic[li][i];
      const float denom = std::max({1.f, std::abs(a), std::abs(numeric)});
      EXPECT_NEAR(a / denom, numeric / denom, tol)
          << "leaf " << li << " element " << i << " analytic=" << a
          << " numeric=" << numeric;
    }
  }
}

inline std::mt19937 rng(uint32_t seed = 42) { return std::mt19937(seed); }

}  // namespace litho::test
