// Tests for the static inference graph executor (runtime/graph_exec.h) and
// its engine integration: executor replays must be bitwise identical to the
// op walk for every precision, thread count and batch composition; arena
// planning must be aliasing-safe under any allocation order; plans must be
// cached per shape; and steady-state replays must not touch the heap (this
// binary links the counting operator new from bench/alloc_count_new.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "autograd/grad_mode.h"
#include "core/doinn.h"
#include "runtime/alloc_hooks.h"
#include "runtime/engine.h"
#include "runtime/graph_exec.h"
#include "runtime/metrics_registry.h"
#include "tensor/prepack.h"
#include "test_util.h"

namespace litho {
namespace {

core::DoinnConfig tiny_config() {
  core::DoinnConfig cfg = core::DoinnConfig::small();
  cfg.tile = 64;
  cfg.modes = 4;
  cfg.gp_channels = 4;
  return cfg;
}

Tensor random_mask(int64_t side, uint32_t seed) {
  auto rng = test::rng(seed);
  Tensor mask = Tensor::rand({side, side}, rng);
  mask.apply_([](float v) { return v >= 0.6f ? 1.f : 0.f; });
  return mask;
}

::testing::AssertionResult bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.numel() != b.numel()) {
    return ::testing::AssertionFailure()
           << "numel " << a.numel() << " vs " << b.numel();
  }
  if (std::memcmp(a.data(), b.data(),
                  sizeof(float) * static_cast<size_t>(a.numel())) != 0) {
    for (int64_t i = 0; i < a.numel(); ++i) {
      if (std::memcmp(a.data() + i, b.data() + i, sizeof(float)) != 0) {
        return ::testing::AssertionFailure()
               << "first mismatch at flat index " << i << ": " << a.data()[i]
               << " vs " << b.data()[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

runtime::EngineOptions engine_opts(Precision prec, int threads,
                                   bool use_exec) {
  runtime::EngineOptions opts;
  opts.precision = prec;
  opts.num_threads = threads;
  opts.use_graph_executor = use_exec;
  return opts;
}

// -- Engine parity ------------------------------------------------------------

// The tentpole contract: for every precision mode, the compiled executor
// path produces bitwise identical contours to the op walk, across thread
// counts and across batch compositions. Engines share one process, so the
// autotune / int8-decision caches apply identically to all of them.
TEST(GraphExec, BitwiseParityAcrossPrecisionsThreadsAndBatches) {
  const core::DoinnConfig cfg = tiny_config();
  const std::vector<Tensor> masks = {random_mask(64, 1), random_mask(64, 2),
                                     random_mask(64, 3)};
  for (Precision prec :
       {Precision::kFp32, Precision::kInt8, Precision::kBf16}) {
    runtime::InferenceEngine walk(cfg, 7, engine_opts(prec, 1, false));
    runtime::InferenceEngine serial(cfg, 7, engine_opts(prec, 1, true));
    runtime::InferenceEngine wide(cfg, 7, engine_opts(prec, 4, true));
    EXPECT_EQ(serial.plan_fallbacks(), 0) << precision_name(prec);
    EXPECT_EQ(wide.plan_fallbacks(), 0) << precision_name(prec);

    const std::vector<Tensor> ref = walk.predict_batch(masks);
    const std::vector<Tensor> got1 = serial.predict_batch(masks);
    const std::vector<Tensor> got4 = wide.predict_batch(masks);
    ASSERT_EQ(ref.size(), got1.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_TRUE(bitwise_equal(ref[i], got1[i]))
          << precision_name(prec) << " serial sample " << i;
      EXPECT_TRUE(bitwise_equal(ref[i], got4[i]))
          << precision_name(prec) << " wide sample " << i;
    }

    // Batch composition invariance: a sample's contour must not depend on
    // which batch it arrived in (the executor builds one plan per batch
    // size, so this crosses plans).
    for (size_t i = 0; i < masks.size(); ++i) {
      const Tensor solo = serial.predict_batch({masks[i]}).front();
      EXPECT_TRUE(bitwise_equal(ref[i], solo))
          << precision_name(prec) << " solo sample " << i;
    }
  }
}

TEST(GraphExec, PredictLargeMatchesOpWalkAcrossThreadCounts) {
  const core::DoinnConfig cfg = tiny_config();
  const Tensor mask = random_mask(96, 11);  // 2x2 half-overlap clip grid
  runtime::InferenceEngine walk(cfg, 9, engine_opts(Precision::kFp32, 1,
                                                    false));
  runtime::InferenceEngine serial(cfg, 9,
                                  engine_opts(Precision::kFp32, 1, true));
  runtime::InferenceEngine wide(cfg, 9,
                                engine_opts(Precision::kFp32, 4, true));
  const Tensor ref = walk.predict(mask);
  EXPECT_TRUE(bitwise_equal(ref, serial.predict(mask)));
  EXPECT_TRUE(bitwise_equal(ref, wide.predict(mask)));
  // The clip fan-out must have compiled (and kept) a GP plan.
  EXPECT_EQ(serial.plan_fallbacks(), 0);
  EXPECT_GE(serial.plan_count(), 2);  // tile plan + gp plan
}

TEST(GraphExec, PlanCacheBuildsOncePerShapeAndReuses) {
  const core::DoinnConfig cfg = tiny_config();
  runtime::InferenceEngine engine(cfg, 5,
                                  engine_opts(Precision::kFp32, 1, true));
  const int64_t at_load = engine.plan_count();
  EXPECT_GE(at_load, 1);  // the serving-tile plan is built eagerly

  const Tensor tile_mask = random_mask(64, 21);
  engine.predict_batch({tile_mask});
  EXPECT_EQ(engine.plan_count(), at_load);  // reused the eager plan

  engine.predict_batch({tile_mask, tile_mask});
  const int64_t after_pair = engine.plan_count();
  EXPECT_EQ(after_pair, at_load + 1);  // new batch size => one new plan

  engine.predict_batch({tile_mask, tile_mask});
  EXPECT_EQ(engine.plan_count(), after_pair);  // second hit reuses it

  engine.predict_batch({tile_mask, tile_mask, tile_mask});
  EXPECT_EQ(engine.plan_count(), after_pair + 1);  // new shape => new plan
  EXPECT_EQ(engine.plan_fallbacks(), 0);
}

// -- Arena planning -----------------------------------------------------------

// Aliasing safety: whatever order the planner assigns offsets in, live
// ranges must never overlap. Seeded shuffles exercise arbitrary orders; the
// replay output must be bitwise identical to the op walk for each.
TEST(GraphExec, ArenaPlanIsAliasingSafeUnderRandomizedOrders) {
  const core::DoinnConfig cfg = tiny_config();
  auto rng = test::rng(31);
  core::Doinn model(cfg, rng);
  model.set_training(false);
  model.prepack_forward(Precision::kFp32);
  runtime::ThreadPool pool(2);
  runtime::ScopedPool scope(&pool);
  auto fwd = [&model](const ag::Variable& v) { return model.forward(v); };

  Tensor probe = Tensor::rand({1, 1, 64, 64}, rng);
  Tensor ref;
  {
    ag::NoGradGuard no_grad;
    ref = fwd(ag::Variable(probe.clone(), false)).value();
  }

  int64_t unshuffled_arena = 0;
  for (uint64_t seed : {uint64_t{0}, uint64_t{1}, uint64_t{7},
                        uint64_t{0xdeadbeef}}) {
    runtime::ExecutorOptions eo;
    eo.autotune = false;
    eo.arena_seed = seed;
    runtime::GraphExecutor exec(runtime::capture_graph(probe, fwd), eo);
    if (seed == 0) unshuffled_arena = exec.arena_bytes();
    EXPECT_GT(exec.arena_bytes(), 0);
    EXPECT_GT(exec.fused_nodes(), 0);  // DOINN has conv+BN/LeakyReLU chains

    auto ctx = exec.acquire();
    std::copy(probe.data(), probe.data() + probe.numel(), ctx->input(0));
    exec.run(*ctx);
    ASSERT_EQ(ctx->output_numel(0), ref.numel());
    EXPECT_EQ(std::memcmp(ctx->output(0), ref.data(),
                          sizeof(float) * static_cast<size_t>(ref.numel())),
              0)
        << "arena seed " << seed;
    exec.release(std::move(ctx));
  }
  // Size-descending best-fit should never lose to a random order.
  EXPECT_GT(unshuffled_arena, 0);
}

// The arena must be meaningfully smaller than the sum of all intermediate
// buffers — that is the point of liveness-based reuse.
TEST(GraphExec, ArenaReusesDisjointLifetimes) {
  const core::DoinnConfig cfg = tiny_config();
  auto rng = test::rng(33);
  core::Doinn model(cfg, rng);
  model.set_training(false);
  model.prepack_forward(Precision::kFp32);
  runtime::ThreadPool pool(1);
  runtime::ScopedPool scope(&pool);

  Tensor probe = Tensor::rand({1, 1, 64, 64}, rng);
  auto graph = runtime::capture_graph(
      probe, [&model](const ag::Variable& v) { return model.forward(v); });
  int64_t total_bytes = 0;
  for (const ag::CaptureSlot& slot : graph->slots) {
    if (slot.constant.numel() > 0) continue;
    total_bytes += slot.numel * static_cast<int64_t>(sizeof(float));
  }
  runtime::ExecutorOptions eo;
  eo.autotune = false;
  runtime::GraphExecutor exec(std::move(graph), eo);
  EXPECT_LT(exec.arena_bytes(), total_bytes / 2)
      << "arena " << exec.arena_bytes() << " of " << total_bytes
      << " total intermediate bytes";
}

// -- Zero-allocation steady state ---------------------------------------------

// This binary links the counting operator new, so heap_alloc_count()
// observes every allocation. After warmup, the replay window of
// predict_batch (copy-in + executor run) must allocate nothing; the engine
// exports the same observable as the engine.heap_allocs_per_batch gauge.
TEST(GraphExec, SteadyStateReplayAllocatesNothing) {
  ASSERT_GT(runtime::heap_alloc_count(), 0)
      << "counting operator new not linked";
  const core::DoinnConfig cfg = tiny_config();
  runtime::InferenceEngine engine(cfg, 17,
                                  engine_opts(Precision::kFp32, 2, true));
  ASSERT_EQ(engine.plan_fallbacks(), 0);
  const std::vector<Tensor> masks = {random_mask(64, 41), random_mask(64, 42)};
  for (int warm = 0; warm < 3; ++warm) engine.predict_batch(masks);

  auto& gauge =
      runtime::MetricsRegistry::global().gauge("engine.heap_allocs_per_batch");
  // Assert the minimum across several replays, not every replay: worker
  // threads may lazily grow thread-local state (libc TLS, pool wakeup
  // paths) on an early post-warmup batch under machine load, which is not
  // an executor leak. A genuine per-replay allocation shows up in every
  // iteration and keeps the minimum above zero.
  int64_t min_allocs = std::numeric_limits<int64_t>::max();
  for (int i = 0; i < 5; ++i) {
    engine.predict_batch(masks);
    min_allocs = std::min(min_allocs, gauge.value());
  }
  EXPECT_EQ(min_allocs, 0) << "every steady-state replay allocated";
  EXPECT_GT(runtime::MetricsRegistry::global()
                .gauge("engine.arena_bytes")
                .value(),
            0);
}

}  // namespace
}  // namespace litho
