#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/ops_weighted.h"
#include "autograd/spectral.h"
#include "test_util.h"

namespace litho::ag {
namespace {

using test::gradcheck;

TEST(Variable, LeafBackwardAccumulates) {
  Variable x(Tensor({1}, {3.f}), true);
  Variable y = mul(x, x);  // y = x^2, dy/dx = 2x = 6
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.f);
  // Second backward accumulates.
  Variable y2 = mul(x, x);
  y2.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.f);
  x.zero_grad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.f);
}

TEST(Variable, DiamondGraphGradient) {
  // z = (x+x) * x = 2x^2; dz/dx = 4x.
  Variable x(Tensor({1}, {2.5f}), true);
  Variable z = mul(add(x, x), x);
  z.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 10.f);
}

TEST(Variable, NonScalarBackwardThrowsWithoutSeed) {
  Variable x(Tensor({2}, {1.f, 2.f}), true);
  EXPECT_THROW(x.backward(), std::logic_error);
}

TEST(Variable, NoGradThroughConstantLeaf) {
  Variable x(Tensor({1}, {2.f}), false);
  Variable w(Tensor({1}, {3.f}), true);
  Variable y = mul(x, w);
  y.backward();
  EXPECT_FLOAT_EQ(w.grad()[0], 2.f);
  EXPECT_FALSE(x.requires_grad());
}

TEST(Gradcheck, ElementwiseOps) {
  auto g = test::rng();
  Variable a(Tensor::randn({2, 3}, g), true);
  Variable b(Tensor::randn({2, 3}, g), true);
  gradcheck([&] { return sum(mul(add(a, b), sub(a, b))); }, {a, b});
}

TEST(Gradcheck, ScaleAndMean) {
  auto g = test::rng(2);
  Variable a(Tensor::randn({3, 2}, g), true);
  gradcheck([&] { return mean(scale(a, 2.5f)); }, {a});
}

TEST(Gradcheck, Activations) {
  auto g = test::rng(3);
  // Keep values away from the ReLU kink to make finite differences valid.
  Tensor init = Tensor::randn({2, 5}, g);
  for (int64_t i = 0; i < init.numel(); ++i) {
    if (std::abs(init[i]) < 0.1f) init[i] = 0.3f;
  }
  Variable x(init, true);
  gradcheck([&] { return sum(relu(x)); }, {x});
  gradcheck([&] { return sum(leaky_relu(x, 0.2f)); }, {x});
  gradcheck([&] { return sum(tanh(x)); }, {x});
  gradcheck([&] { return sum(sigmoid(x)); }, {x});
}

TEST(Gradcheck, ConcatAndNarrowChannels) {
  auto g = test::rng(4);
  Variable a(Tensor::randn({1, 2, 2, 2}, g), true);
  Variable b(Tensor::randn({1, 3, 2, 2}, g), true);
  gradcheck([&] {
    Variable c = concat_channels({a, b});
    return sum(mul(c, c));
  }, {a, b});
  gradcheck([&] {
    Variable n = narrow_channels(b, 1, 2);
    return sum(mul(n, n));
  }, {b});
}

TEST(Gradcheck, MseLoss) {
  auto g = test::rng(5);
  Variable p(Tensor::randn({2, 4}, g), true);
  Tensor t = Tensor::randn({2, 4}, g);
  gradcheck([&] { return mse_loss(p, t); }, {p});
}

TEST(Gradcheck, WeightedMseLoss) {
  auto g = test::rng(55);
  Variable p(Tensor::randn({2, 4}, g), true);
  Tensor t = Tensor::randn({2, 4}, g);
  Tensor w = Tensor::rand({2, 4}, g, 0.5f, 4.f);
  gradcheck([&] { return weighted_mse_loss(p, t, w); }, {p});
}

TEST(WeightedMse, ReducesToMseForUnitWeights) {
  auto g = test::rng(56);
  Variable p(Tensor::randn({3, 3}, g), false);
  Tensor t = Tensor::randn({3, 3}, g);
  Variable a = mse_loss(p, t);
  Variable b = weighted_mse_loss(p, t, Tensor::ones({3, 3}));
  EXPECT_NEAR(a.value()[0], b.value()[0], 1e-6f);
}

// Property sweep: conv2d forward/backward consistent across kernel, stride,
// padding combinations (adjoint identity <conv(x),y> == <x, conv_grad(y)>).
class ConvGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConvGeometry, GradcheckHolds) {
  const auto [k, s, p] = GetParam();
  auto g = test::rng(100 + k * 9 + s * 3 + p);
  Variable x(Tensor::randn({1, 2, 8, 8}, g), true);
  Variable w(Tensor::randn({2, 2, k, k}, g, 0.f, 0.4f), true);
  test::gradcheck(
      [&, s = s, p = p] {
        return mean(conv2d(x, w, Variable(), s, p));
      },
      {x, w});
}

INSTANTIATE_TEST_SUITE_P(Grid, ConvGeometry,
                         ::testing::Values(std::tuple{1, 1, 0},
                                           std::tuple{3, 1, 1},
                                           std::tuple{3, 2, 1},
                                           std::tuple{4, 2, 1},
                                           std::tuple{5, 1, 2},
                                           std::tuple{4, 4, 0}));

TEST(Conv2d, KnownResult) {
  // 1x1x3x3 input, 1x1x2x2 kernel of ones, stride 1, no padding:
  // each output = sum of 2x2 window.
  Variable x(Tensor({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9}), false);
  Variable w(Tensor({1, 1, 2, 2}, {1, 1, 1, 1}), false);
  Variable out = conv2d(x, w, Variable(), 1, 0);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.value()[0], 12.f);
  EXPECT_FLOAT_EQ(out.value()[1], 16.f);
  EXPECT_FLOAT_EQ(out.value()[2], 24.f);
  EXPECT_FLOAT_EQ(out.value()[3], 28.f);
}

TEST(Conv2d, PaddingAndStride) {
  Variable x(Tensor::ones({1, 1, 4, 4}), false);
  Variable w(Tensor::ones({1, 1, 3, 3}), false);
  Variable out = conv2d(x, w, Variable(), 2, 1);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  // Top-left window covers 2x2 of ones (padded corners).
  EXPECT_FLOAT_EQ(out.value()[0], 4.f);
}

TEST(Conv2d, BiasApplied) {
  Variable x(Tensor::zeros({1, 2, 2, 2}), false);
  Variable w(Tensor::zeros({3, 2, 1, 1}), false);
  Variable b(Tensor({3}, {1.f, 2.f, 3.f}), false);
  Variable out = conv2d(x, w, b, 1, 0);
  EXPECT_FLOAT_EQ(out.value().at({0, 0, 0, 0}), 1.f);
  EXPECT_FLOAT_EQ(out.value().at({0, 2, 1, 1}), 3.f);
}

TEST(Gradcheck, Conv2d) {
  auto g = test::rng(6);
  Variable x(Tensor::randn({2, 2, 5, 5}, g), true);
  Variable w(Tensor::randn({3, 2, 3, 3}, g, 0.f, 0.5f), true);
  Variable b(Tensor::randn({3}, g), true);
  gradcheck([&] { return mean(conv2d(x, w, b, 1, 1)); }, {x, w, b});
  gradcheck([&] { return mean(conv2d(x, w, b, 2, 1)); }, {x, w, b});
}

TEST(ConvTranspose2d, ShapeAndAdjointOfConv) {
  // conv_transpose with the same weight is the adjoint of conv:
  // <conv(x), y> == <x, convT(y)>.
  auto g = test::rng(7);
  const int64_t s = 2, p = 1, k = 4;
  Tensor wt = Tensor::randn({2, 3, k, k}, g);  // [Cin=2, Cout=3] transposed view
  Variable x(Tensor::randn({1, 3, 8, 8}, g), false);  // conv input: 3 channels
  // conv weight [Cout=2? ...] -- use wt as convT weight [Cin=2,Cout=3]:
  // convT maps 2->3 channels; its adjoint conv maps 3->2 with weight
  // [2,3,k,k] viewed as conv weight [Cout=2,Cin=3].
  Variable xt(Tensor::randn({1, 2, 4, 4}, g), false);
  Variable w(wt, false);
  Variable y = conv_transpose2d(xt, w, Variable(), s, p);
  EXPECT_EQ(y.shape(), (Shape{1, 3, 8, 8}));

  Variable z = conv2d(x, w, Variable(), s, p);  // weight [2,3,k,k] as conv
  EXPECT_EQ(z.shape(), (Shape{1, 2, 4, 4}));

  double lhs = 0, rhs = 0;
  for (int64_t i = 0; i < z.value().numel(); ++i) {
    lhs += static_cast<double>(z.value()[i]) * xt.value()[i];
  }
  for (int64_t i = 0; i < y.value().numel(); ++i) {
    rhs += static_cast<double>(y.value()[i]) * x.value()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)));
}

TEST(Gradcheck, ConvTranspose2d) {
  auto g = test::rng(8);
  Variable x(Tensor::randn({1, 2, 3, 3}, g), true);
  Variable w(Tensor::randn({2, 3, 4, 4}, g, 0.f, 0.4f), true);
  Variable b(Tensor::randn({3}, g), true);
  gradcheck([&] { return mean(conv_transpose2d(x, w, b, 2, 1)); }, {x, w, b});
}

TEST(AvgPool2d, ForwardAndGradcheck) {
  Variable x(Tensor({1, 1, 2, 2}, {1, 2, 3, 4}), false);
  Variable y = avg_pool2d(x, 2);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y.value()[0], 2.5f);

  auto g = test::rng(9);
  Variable z(Tensor::randn({2, 2, 4, 4}, g), true);
  gradcheck([&] { return mean(mul(avg_pool2d(z, 2), avg_pool2d(z, 2))); }, {z});
}

TEST(AvgPool2d, RejectsNonDivisibleExtent) {
  Variable x(Tensor::zeros({1, 1, 5, 4}), false);
  EXPECT_THROW(avg_pool2d(x, 2), std::invalid_argument);
}

TEST(BatchNorm2d, NormalizesBatchStatistics) {
  auto g = test::rng(10);
  Variable x(Tensor::randn({4, 2, 8, 8}, g, 3.f, 2.f), false);
  Variable gamma(Tensor::ones({2}), false);
  Variable beta(Tensor::zeros({2}), false);
  Tensor rm = Tensor::zeros({2}), rv = Tensor::ones({2});
  Variable y = batch_norm2d(x, gamma, beta, rm, rv, true, 0.1f, 1e-5f);
  // Per-channel mean ~0, var ~1.
  const int64_t plane = 64, n = 4;
  for (int64_t c = 0; c < 2; ++c) {
    double mean = 0, var = 0;
    for (int64_t b = 0; b < n; ++b) {
      const float* p = y.value().data() + (b * 2 + c) * plane;
      for (int64_t i = 0; i < plane; ++i) mean += p[i];
    }
    mean /= n * plane;
    for (int64_t b = 0; b < n; ++b) {
      const float* p = y.value().data() + (b * 2 + c) * plane;
      for (int64_t i = 0; i < plane; ++i) var += (p[i] - mean) * (p[i] - mean);
    }
    var /= n * plane;
    EXPECT_NEAR(mean, 0.0, 1e-3);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
  // Running stats moved toward batch stats.
  EXPECT_NEAR(rm[0], 0.1f * 3.f, 0.15f);
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  Variable x(Tensor::full({1, 1, 2, 2}, 10.f), false);
  Variable gamma(Tensor::ones({1}), false);
  Variable beta(Tensor::zeros({1}), false);
  Tensor rm = Tensor::full({1}, 10.f), rv = Tensor::ones({1});
  Variable y = batch_norm2d(x, gamma, beta, rm, rv, false, 0.1f, 1e-5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(y.value()[i], 0.f, 1e-4f);
}

TEST(Gradcheck, BatchNormTraining) {
  auto g = test::rng(11);
  Variable x(Tensor::randn({2, 2, 3, 3}, g), true);
  Variable gamma(Tensor::rand({2}, g, 0.5f, 1.5f), true);
  Variable beta(Tensor::randn({2}, g), true);
  gradcheck(
      [&] {
        Tensor rm = Tensor::zeros({2}), rv = Tensor::ones({2});
        Variable y = batch_norm2d(x, gamma, beta, rm, rv, true, 0.1f, 1e-5f);
        return mean(mul(y, y));
      },
      {x, gamma, beta}, 1e-2f, 4e-2f);
}

TEST(Gradcheck, BatchNormEval) {
  auto g = test::rng(12);
  Variable x(Tensor::randn({2, 2, 3, 3}, g), true);
  Variable gamma(Tensor::rand({2}, g, 0.5f, 1.5f), true);
  Variable beta(Tensor::randn({2}, g), true);
  Tensor rm = Tensor::randn({2}, g);
  Tensor rv = Tensor::rand({2}, g, 0.5f, 2.f);
  gradcheck(
      [&] {
        Tensor rm2 = rm.clone(), rv2 = rv.clone();
        Variable y = batch_norm2d(x, gamma, beta, rm2, rv2, false, 0.1f, 1e-5f);
        return mean(mul(y, y));
      },
      {x, gamma, beta});
}

// -- Spectral ops -------------------------------------------------------------

TEST(Spectral, RfftIrfftRoundTripVariable) {
  auto g = test::rng(13);
  Variable x(Tensor::randn({1, 1, 8, 8}, g), false);
  CVariable spec = rfft2v(x);
  Variable back = irfft2v(spec, 8);
  EXPECT_LT(test::max_abs_diff(back.value(), x.value()), 1e-4f);
}

TEST(Gradcheck, RfftIrfftChain) {
  auto g = test::rng(14);
  Variable x(Tensor::randn({1, 1, 4, 4}, g), true);
  gradcheck(
      [&] {
        CVariable spec = rfft2v(x);
        Variable y = irfft2v(spec, 4);
        return mean(mul(y, y));
      },
      {x});
}

TEST(Gradcheck, TruncatePadChain) {
  auto g = test::rng(15);
  Variable x(Tensor::randn({1, 1, 6, 6}, g), true);
  gradcheck(
      [&] {
        CVariable spec = rfft2v(x);  // [1,1,6,4]
        CVariable t = ctruncate(spec, 2, 2);
        CVariable p = cpad(t, 6, 4);
        Variable y = irfft2v(p, 6);
        return mean(mul(y, y));
      },
      {x});
}

TEST(Spectral, TruncatePadKeepsLowFrequencies) {
  auto g = test::rng(16);
  Variable x(Tensor::randn({1, 1, 8, 8}, g), false);
  CVariable spec = rfft2v(x);
  CVariable round = cpad(ctruncate(spec, 8, 5), 8, 5);
  // Full-size truncation is the identity.
  EXPECT_LT(test::max_abs_diff(round.re.value(), spec.re.value()), 1e-6f);
  EXPECT_LT(test::max_abs_diff(round.im.value(), spec.im.value()), 1e-6f);
}

TEST(Gradcheck, CliftAndModeMatmul) {
  auto g = test::rng(17);
  Variable vre(Tensor::randn({2, 2, 3, 3}, g), true);
  Variable vim(Tensor::randn({2, 2, 3, 3}, g), true);
  Variable wre(Tensor::randn({2, 3}, g), true);
  Variable wim(Tensor::randn({2, 3}, g), true);
  gradcheck(
      [&] {
        CVariable out = clift({vre, vim}, {wre, wim});
        return mean(add(mul(out.re, out.re), mul(out.im, out.im)));
      },
      {vre, vim, wre, wim});

  Variable mre(Tensor::randn({2, 3, 3, 3}, g), true);
  Variable mim(Tensor::randn({2, 3, 3, 3}, g), true);
  gradcheck(
      [&] {
        CVariable out = cmode_matmul({vre, vim}, {mre, mim});
        return mean(add(mul(out.re, out.re), mul(out.im, out.im)));
      },
      {vre, vim, mre, mim});
}

TEST(Spectral, CliftKnownValue) {
  // v = 1+i (single element), w = 2-i -> out = (1+i)(2-i) = 3+i.
  Variable vre(Tensor::ones({1, 1, 1, 1}), false);
  Variable vim(Tensor::ones({1, 1, 1, 1}), false);
  Variable wre(Tensor({1, 1}, {2.f}), false);
  Variable wim(Tensor({1, 1}, {-1.f}), false);
  CVariable out = clift({vre, vim}, {wre, wim});
  EXPECT_FLOAT_EQ(out.re.value()[0], 3.f);
  EXPECT_FLOAT_EQ(out.im.value()[0], 1.f);
}

}  // namespace
}  // namespace litho::ag
