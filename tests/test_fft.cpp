#include <gtest/gtest.h>

#include <complex>

#include "fft/fft.h"
#include "test_util.h"

namespace litho::fft {
namespace {

// Real inner product over complex tensors: <a,b> = sum re*re + im*im.
double cdot(const CTensor& a, const CTensor& b) {
  double acc = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    acc += static_cast<double>(a.re[i]) * b.re[i] +
           static_cast<double>(a.im[i]) * b.im[i];
  }
  return acc;
}

double rdot(const Tensor& a, const Tensor& b) {
  double acc = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return acc;
}

TEST(Fft1d, MatchesNaiveDftPow2) {
  const size_t n = 8;
  std::vector<std::complex<double>> x(n);
  auto g = test::rng();
  std::uniform_real_distribution<double> d(-1, 1);
  for (auto& v : x) v = {d(g), d(g)};
  auto y = x;
  fft1d_unnormalized(y, false);
  for (size_t k = 0; k < n; ++k) {
    std::complex<double> acc = 0;
    for (size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * M_PI * static_cast<double>(k * j) / n;
      acc += x[j] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    EXPECT_NEAR(std::abs(y[k] - acc), 0.0, 1e-9);
  }
}

TEST(Fft1d, MatchesNaiveDftBluestein) {
  const size_t n = 12;  // not a power of two -> Bluestein path
  std::vector<std::complex<double>> x(n);
  auto g = test::rng(1);
  std::uniform_real_distribution<double> d(-1, 1);
  for (auto& v : x) v = {d(g), d(g)};
  auto y = x;
  fft1d_unnormalized(y, false);
  for (size_t k = 0; k < n; ++k) {
    std::complex<double> acc = 0;
    for (size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * M_PI * static_cast<double>(k * j) / n;
      acc += x[j] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    EXPECT_NEAR(std::abs(y[k] - acc), 0.0, 1e-8);
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FftRoundTrip, Fft2InverseRecoversInput) {
  const auto [h, w] = GetParam();
  auto g = test::rng(h * 31 + w);
  CTensor x(Tensor::randn({2, h, w}, g), Tensor::randn({2, h, w}, g));
  CTensor y = fft2(x, false);
  CTensor back = fft2(y, true);
  EXPECT_LT(test::max_abs_diff(back.re, x.re), 1e-4f);
  EXPECT_LT(test::max_abs_diff(back.im, x.im), 1e-4f);
}

TEST_P(FftRoundTrip, RfftIrfftRecoversRealInput) {
  const auto [h, w] = GetParam();
  auto g = test::rng(h * 17 + w);
  Tensor x = Tensor::randn({3, h, w}, g);
  CTensor spec = rfft2(x);
  EXPECT_EQ(spec.shape(), (Shape{3, h, w / 2 + 1}));
  Tensor back = irfft2(spec, w);
  EXPECT_LT(test::max_abs_diff(back, x), 1e-4f);
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  const auto [h, w] = GetParam();
  auto g = test::rng(h + w * 7);
  CTensor x(Tensor::randn({1, h, w}, g), Tensor::randn({1, h, w}, g));
  CTensor y = fft2(x, false);
  // sum |X|^2 = N * sum |x|^2 for an unnormalized forward transform.
  const double ex = cdot(x, x);
  const double ey = cdot(y, y);
  EXPECT_NEAR(ey / (h * w), ex, 1e-3 * std::abs(ex) + 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(std::pair{4, 4}, std::pair{8, 8},
                                           std::pair{16, 8}, std::pair{8, 16},
                                           std::pair{6, 10},  // Bluestein
                                           std::pair{12, 12},
                                           std::pair{32, 32},
                                           std::pair{5, 7}));

TEST(Fft2, ImpulseGivesFlatSpectrum) {
  Tensor x({1, 8, 8});
  x[0] = 1.f;  // delta at origin
  CTensor spec = rfft2(x);
  for (int64_t i = 0; i < spec.numel(); ++i) {
    EXPECT_NEAR(spec.re[i], 1.f, 1e-5f);
    EXPECT_NEAR(spec.im[i], 0.f, 1e-5f);
  }
}

TEST(Fft2, DcComponentIsSum) {
  auto g = test::rng(5);
  Tensor x = Tensor::rand({1, 16, 16}, g);
  CTensor spec = rfft2(x);
  EXPECT_NEAR(spec.re[0], x.sum(), 1e-3f);
  EXPECT_NEAR(spec.im[0], 0.f, 1e-4f);
}

// The adjoint identities are what the autograd spectral ops rely on:
//   <rfft2(x), g> == <x, rfft2_adjoint(g)>
//   <irfft2(X), y> == <X, irfft2_adjoint(y)>
class FftAdjoint : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FftAdjoint, RfftAdjointIdentity) {
  const auto [h, w] = GetParam();
  auto g = test::rng(h * 3 + w);
  Tensor x = Tensor::randn({2, h, w}, g);
  CTensor cot(Tensor::randn({2, h, w / 2 + 1}, g),
              Tensor::randn({2, h, w / 2 + 1}, g));
  const double lhs = cdot(rfft2(x), cot);
  const double rhs = rdot(x, rfft2_adjoint(cot, w));
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)));
}

TEST_P(FftAdjoint, IrfftAdjointIdentity) {
  const auto [h, w] = GetParam();
  auto g = test::rng(h * 13 + w);
  CTensor spec(Tensor::randn({2, h, w / 2 + 1}, g),
               Tensor::randn({2, h, w / 2 + 1}, g));
  Tensor cot = Tensor::randn({2, h, w}, g);
  const double lhs = rdot(irfft2(spec, w), cot);
  const double rhs = cdot(spec, irfft2_adjoint(cot));
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftAdjoint,
                         ::testing::Values(std::pair{4, 4}, std::pair{8, 8},
                                           std::pair{8, 6}, std::pair{6, 8},
                                           std::pair{16, 16},
                                           std::pair{5, 9}));

TEST(ComplexOps, MulAndConjMul) {
  CTensor a(Tensor({1}, {1.f}), Tensor({1}, {2.f}));   // 1+2i
  CTensor b(Tensor({1}, {3.f}), Tensor({1}, {-1.f}));  // 3-i
  CTensor ab = cmul(a, b);  // (1+2i)(3-i) = 5+5i
  EXPECT_FLOAT_EQ(ab.re[0], 5.f);
  EXPECT_FLOAT_EQ(ab.im[0], 5.f);
  CTensor abc = cmul_conj(a, b);  // (1+2i)(3+i) = 1+7i
  EXPECT_FLOAT_EQ(abc.re[0], 1.f);
  EXPECT_FLOAT_EQ(abc.im[0], 7.f);
  EXPECT_FLOAT_EQ(cabs2(a)[0], 5.f);
}

TEST(CTensor, ShapeMismatchThrows) {
  EXPECT_THROW(CTensor(Tensor({2}), Tensor({3})), std::invalid_argument);
}

}  // namespace
}  // namespace litho::fft
