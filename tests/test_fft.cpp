#include <gtest/gtest.h>

#include <complex>
#include <thread>
#include <vector>

#include "fft/fft.h"
#include "fft/plan.h"
#include "test_util.h"

namespace litho::fft {
namespace {

// Real inner product over complex tensors: <a,b> = sum re*re + im*im.
double cdot(const CTensor& a, const CTensor& b) {
  double acc = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    acc += static_cast<double>(a.re[i]) * b.re[i] +
           static_cast<double>(a.im[i]) * b.im[i];
  }
  return acc;
}

double rdot(const Tensor& a, const Tensor& b) {
  double acc = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return acc;
}

// Textbook O(n^2) DFT, same conventions as fft1d_unnormalized (forward
// exp(-2*pi*i*kj/n), inverse conjugated, neither normalized).
std::vector<std::complex<double>> naive_dft(
    const std::vector<std::complex<double>>& x, bool inverse) {
  const size_t n = x.size();
  std::vector<std::complex<double>> out(n);
  for (size_t k = 0; k < n; ++k) {
    std::complex<double> acc = 0;
    for (size_t j = 0; j < n; ++j) {
      const double ang = (inverse ? 2.0 : -2.0) * M_PI *
                         static_cast<double>(k * j) / static_cast<double>(n);
      acc += x[j] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

TEST(Fft1d, MatchesNaiveDftPow2) {
  const size_t n = 8;
  std::vector<std::complex<double>> x(n);
  auto g = test::rng();
  std::uniform_real_distribution<double> d(-1, 1);
  for (auto& v : x) v = {d(g), d(g)};
  auto y = x;
  fft1d_unnormalized(y, false);
  for (size_t k = 0; k < n; ++k) {
    std::complex<double> acc = 0;
    for (size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * M_PI * static_cast<double>(k * j) / n;
      acc += x[j] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    EXPECT_NEAR(std::abs(y[k] - acc), 0.0, 1e-9);
  }
}

TEST(Fft1d, MatchesNaiveDftBluestein) {
  const size_t n = 12;  // not a power of two -> Bluestein path
  std::vector<std::complex<double>> x(n);
  auto g = test::rng(1);
  std::uniform_real_distribution<double> d(-1, 1);
  for (auto& v : x) v = {d(g), d(g)};
  auto y = x;
  fft1d_unnormalized(y, false);
  for (size_t k = 0; k < n; ++k) {
    std::complex<double> acc = 0;
    for (size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * M_PI * static_cast<double>(k * j) / n;
      acc += x[j] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    EXPECT_NEAR(std::abs(y[k] - acc), 0.0, 1e-8);
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FftRoundTrip, Fft2InverseRecoversInput) {
  const auto [h, w] = GetParam();
  auto g = test::rng(h * 31 + w);
  CTensor x(Tensor::randn({2, h, w}, g), Tensor::randn({2, h, w}, g));
  CTensor y = fft2(x, false);
  CTensor back = fft2(y, true);
  EXPECT_LT(test::max_abs_diff(back.re, x.re), 1e-4f);
  EXPECT_LT(test::max_abs_diff(back.im, x.im), 1e-4f);
}

TEST_P(FftRoundTrip, RfftIrfftRecoversRealInput) {
  const auto [h, w] = GetParam();
  auto g = test::rng(h * 17 + w);
  Tensor x = Tensor::randn({3, h, w}, g);
  CTensor spec = rfft2(x);
  EXPECT_EQ(spec.shape(), (Shape{3, h, w / 2 + 1}));
  Tensor back = irfft2(spec, w);
  EXPECT_LT(test::max_abs_diff(back, x), 1e-4f);
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  const auto [h, w] = GetParam();
  auto g = test::rng(h + w * 7);
  CTensor x(Tensor::randn({1, h, w}, g), Tensor::randn({1, h, w}, g));
  CTensor y = fft2(x, false);
  // sum |X|^2 = N * sum |x|^2 for an unnormalized forward transform.
  const double ex = cdot(x, x);
  const double ey = cdot(y, y);
  EXPECT_NEAR(ey / (h * w), ex, 1e-3 * std::abs(ex) + 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(std::pair{4, 4}, std::pair{8, 8},
                                           std::pair{16, 8}, std::pair{8, 16},
                                           std::pair{6, 10},  // Bluestein
                                           std::pair{12, 12},
                                           std::pair{32, 32},
                                           std::pair{5, 7}));

TEST(Fft2, ImpulseGivesFlatSpectrum) {
  Tensor x({1, 8, 8});
  x[0] = 1.f;  // delta at origin
  CTensor spec = rfft2(x);
  for (int64_t i = 0; i < spec.numel(); ++i) {
    EXPECT_NEAR(spec.re[i], 1.f, 1e-5f);
    EXPECT_NEAR(spec.im[i], 0.f, 1e-5f);
  }
}

TEST(Fft2, DcComponentIsSum) {
  auto g = test::rng(5);
  Tensor x = Tensor::rand({1, 16, 16}, g);
  CTensor spec = rfft2(x);
  EXPECT_NEAR(spec.re[0], x.sum(), 1e-3f);
  EXPECT_NEAR(spec.im[0], 0.f, 1e-4f);
}

// The adjoint identities are what the autograd spectral ops rely on:
//   <rfft2(x), g> == <x, rfft2_adjoint(g)>
//   <irfft2(X), y> == <X, irfft2_adjoint(y)>
class FftAdjoint : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FftAdjoint, RfftAdjointIdentity) {
  const auto [h, w] = GetParam();
  auto g = test::rng(h * 3 + w);
  Tensor x = Tensor::randn({2, h, w}, g);
  CTensor cot(Tensor::randn({2, h, w / 2 + 1}, g),
              Tensor::randn({2, h, w / 2 + 1}, g));
  const double lhs = cdot(rfft2(x), cot);
  const double rhs = rdot(x, rfft2_adjoint(cot, w));
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)));
}

TEST_P(FftAdjoint, IrfftAdjointIdentity) {
  const auto [h, w] = GetParam();
  auto g = test::rng(h * 13 + w);
  CTensor spec(Tensor::randn({2, h, w / 2 + 1}, g),
               Tensor::randn({2, h, w / 2 + 1}, g));
  Tensor cot = Tensor::randn({2, h, w}, g);
  const double lhs = rdot(irfft2(spec, w), cot);
  const double rhs = cdot(spec, irfft2_adjoint(cot));
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftAdjoint,
                         ::testing::Values(std::pair{4, 4}, std::pair{8, 8},
                                           std::pair{8, 6}, std::pair{6, 8},
                                           std::pair{16, 16},
                                           std::pair{5, 9}));

TEST(ComplexOps, MulAndConjMul) {
  CTensor a(Tensor({1}, {1.f}), Tensor({1}, {2.f}));   // 1+2i
  CTensor b(Tensor({1}, {3.f}), Tensor({1}, {-1.f}));  // 3-i
  CTensor ab = cmul(a, b);  // (1+2i)(3-i) = 5+5i
  EXPECT_FLOAT_EQ(ab.re[0], 5.f);
  EXPECT_FLOAT_EQ(ab.im[0], 5.f);
  CTensor abc = cmul_conj(a, b);  // (1+2i)(3+i) = 1+7i
  EXPECT_FLOAT_EQ(abc.re[0], 1.f);
  EXPECT_FLOAT_EQ(abc.im[0], 7.f);
  EXPECT_FLOAT_EQ(cabs2(a)[0], 5.f);
}

TEST(CTensor, ShapeMismatchThrows) {
  EXPECT_THROW(CTensor(Tensor({2}), Tensor({3})), std::invalid_argument);
}

// -- Golden parity: plan-cache kernels vs the naive DFT -----------------------
// Every length 1..32 in both directions, so the radix-2 branch (1, 2, 4, 8,
// 16, 32) and the Bluestein branch (everything else, including the primes)
// are each pinned against the textbook transform.

TEST(FftGolden, MatchesNaiveDftForEveryLength1To32) {
  for (size_t n = 1; n <= 32; ++n) {
    auto g = test::rng(static_cast<uint32_t>(1000 + n));
    std::uniform_real_distribution<double> d(-1, 1);
    std::vector<std::complex<double>> x(n);
    for (auto& v : x) v = {d(g), d(g)};
    for (const bool inverse : {false, true}) {
      auto y = x;
      fft1d_unnormalized(y, inverse);
      const auto ref = naive_dft(x, inverse);
      for (size_t k = 0; k < n; ++k) {
        EXPECT_NEAR(std::abs(y[k] - ref[k]), 0.0, 1e-7)
            << "n=" << n << " inverse=" << inverse << " k=" << k;
      }
    }
  }
}

TEST(FftGolden, RepeatedCallsBitwiseStable) {
  // The cached plan must give the exact same bits on every call.
  const size_t n = 24;  // Bluestein
  auto g = test::rng(77);
  std::uniform_real_distribution<double> d(-1, 1);
  std::vector<std::complex<double>> x(n);
  for (auto& v : x) v = {d(g), d(g)};
  auto a = x, b = x;
  fft1d_unnormalized(a, false);
  fft1d_unnormalized(b, false);
  for (size_t k = 0; k < n; ++k) {
    EXPECT_EQ(a[k].real(), b[k].real()) << k;
    EXPECT_EQ(a[k].imag(), b[k].imag()) << k;
  }
}

// -- Property-based spectral suite --------------------------------------------
// Randomized shapes drawn from power-of-two, odd, and prime (Bluestein)
// extents; each property must hold on every draw.

struct ShapeCase {
  int64_t batch, h, w;
};

std::vector<ShapeCase> random_shapes() {
  // Deterministic draw so failures reproduce. Mixes radix-2 extents with odd
  // widths and primes to exercise packed-pair edge cases (odd H rides the
  // single-row path, even/odd W flips the Nyquist handling).
  const std::vector<int64_t> extents = {1, 2,  3,  4,  5,  7,  8, 9,
                                        11, 12, 13, 16, 17, 23, 29, 31};
  auto g = test::rng(2024);
  std::uniform_int_distribution<size_t> pick(0, extents.size() - 1);
  std::uniform_int_distribution<int64_t> batch(1, 3);
  std::vector<ShapeCase> cases;
  for (int i = 0; i < 24; ++i) {
    cases.push_back({batch(g), extents[pick(g)], extents[pick(g)]});
  }
  cases.push_back({1, 64, 64});  // one bigger radix-2 plane
  cases.push_back({2, 6, 31});   // even H, prime W
  cases.push_back({2, 31, 6});   // prime H, even W
  return cases;
}

class FftProperty : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(FftProperty, RoundTripRecoversInput) {
  const auto [b, h, w] = GetParam();
  auto g = test::rng(static_cast<uint32_t>(b * 1009 + h * 31 + w));
  Tensor x = Tensor::randn({b, h, w}, g);
  CTensor spec = rfft2(x);
  ASSERT_EQ(spec.shape(), (Shape{b, h, w / 2 + 1}));
  Tensor back = irfft2(spec, w);
  EXPECT_LT(test::max_abs_diff(back, x), 1e-4f);
}

TEST_P(FftProperty, RealParsevalWithHalfSpectrumWeights) {
  // sum x^2 = (1/N) * sum_c weight_c * |X[., c]|^2 with weight 2 on the
  // interior columns (each stands in for its conjugate mirror) and 1 on the
  // self-conjugate columns c = 0 and, for even W, c = W/2. Pins both the
  // transform energy and the half-spectrum layout.
  const auto [b, h, w] = GetParam();
  auto g = test::rng(static_cast<uint32_t>(b * 997 + h * 13 + w));
  Tensor x = Tensor::randn({b, h, w}, g);
  CTensor spec = rfft2(x);
  const int64_t wh = w / 2 + 1;
  const int64_t interior_end = (w + 1) / 2;
  double spectral = 0;
  for (int64_t i = 0; i < spec.numel(); ++i) {
    const int64_t c = i % wh;
    const double weight = (c >= 1 && c < interior_end) ? 2.0 : 1.0;
    spectral += weight * (static_cast<double>(spec.re[i]) * spec.re[i] +
                          static_cast<double>(spec.im[i]) * spec.im[i]);
  }
  const double direct = rdot(x, x);
  EXPECT_NEAR(spectral / static_cast<double>(h * w), direct,
              1e-3 * std::abs(direct) + 1e-4);
}

TEST_P(FftProperty, RfftIsLinear) {
  const auto [b, h, w] = GetParam();
  auto g = test::rng(static_cast<uint32_t>(b * 701 + h * 7 + w));
  Tensor x = Tensor::randn({b, h, w}, g);
  Tensor y = Tensor::randn({b, h, w}, g);
  const float alpha = 0.75f, beta = -1.25f;
  Tensor mix = x.clone();
  mix.mul_(alpha);
  Tensor ys = y.clone();
  ys.mul_(beta);
  mix.add_(ys);
  CTensor lhs = rfft2(mix);
  CTensor fx = rfft2(x), fy = rfft2(y);
  for (int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs.re[i], alpha * fx.re[i] + beta * fy.re[i],
                1e-3f * (std::abs(lhs.re[i]) + 1.f))
        << i;
    EXPECT_NEAR(lhs.im[i], alpha * fx.im[i] + beta * fy.im[i],
                1e-3f * (std::abs(lhs.im[i]) + 1.f))
        << i;
  }
}

TEST_P(FftProperty, RfftMatchesFullComplexFft) {
  // The two-for-one packed path must agree with the plain complex transform
  // of the real embedding on the surviving half spectrum.
  const auto [b, h, w] = GetParam();
  auto g = test::rng(static_cast<uint32_t>(b * 499 + h * 3 + w));
  Tensor x = Tensor::randn({b, h, w}, g);
  CTensor half = rfft2(x);
  CTensor full = fft2(CTensor(x.clone(), Tensor(x.shape())), false);
  const int64_t wh = w / 2 + 1;
  for (int64_t bb = 0; bb < b; ++bb) {
    for (int64_t r = 0; r < h; ++r) {
      for (int64_t c = 0; c < wh; ++c) {
        const int64_t hi = (bb * h + r) * wh + c;
        const int64_t fi = (bb * h + r) * w + c;
        EXPECT_NEAR(half.re[hi], full.re[fi], 1e-3f) << r << "," << c;
        EXPECT_NEAR(half.im[hi], full.im[fi], 1e-3f) << r << "," << c;
      }
    }
  }
}

TEST_P(FftProperty, RfftAdjointIdentity) {
  const auto [b, h, w] = GetParam();
  auto g = test::rng(static_cast<uint32_t>(b * 211 + h * 3 + w));
  Tensor x = Tensor::randn({b, h, w}, g);
  CTensor cot(Tensor::randn({b, h, w / 2 + 1}, g),
              Tensor::randn({b, h, w / 2 + 1}, g));
  const double lhs = cdot(rfft2(x), cot);
  const double rhs = rdot(x, rfft2_adjoint(cot, w));
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)));
}

TEST_P(FftProperty, IrfftAdjointIdentity) {
  const auto [b, h, w] = GetParam();
  auto g = test::rng(static_cast<uint32_t>(b * 307 + h * 11 + w));
  CTensor spec(Tensor::randn({b, h, w / 2 + 1}, g),
               Tensor::randn({b, h, w / 2 + 1}, g));
  Tensor cot = Tensor::randn({b, h, w}, g);
  const double lhs = rdot(irfft2(spec, w), cot);
  const double rhs = cdot(spec, irfft2_adjoint(cot));
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, FftProperty,
                         ::testing::ValuesIn(random_shapes()));

// -- Plan cache ---------------------------------------------------------------

TEST(FftPlanCache, CachesAndReusesPlans) {
  const size_t before = plan_cache_size();
  std::vector<std::complex<double>> x(37, {1.0, 0.0});  // fresh prime length
  fft1d_unnormalized(x, false);
  const size_t after_first = plan_cache_size();
  EXPECT_GT(after_first, before);  // 37 and its Bluestein pad length
  fft1d_unnormalized(x, true);
  EXPECT_EQ(plan_cache_size(), after_first);  // reused, not rebuilt
}

TEST(FftPlanCache, ConcurrentFirstUseIsSafeAndConsistent) {
  // Many threads race to build the plan for a length nobody has used yet;
  // all must come back with identical spectra (under ASan this also checks
  // the registry's publication).
  const size_t n = 41;
  auto g = test::rng(41);
  std::uniform_real_distribution<double> d(-1, 1);
  std::vector<std::complex<double>> x(n);
  for (auto& v : x) v = {d(g), d(g)};

  constexpr int kThreads = 8;
  std::vector<std::vector<std::complex<double>>> results(
      kThreads, std::vector<std::complex<double>>(n));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto y = x;
      fft1d_unnormalized(y, false);
      results[static_cast<size_t>(t)] = std::move(y);
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    for (size_t k = 0; k < n; ++k) {
      EXPECT_EQ(results[static_cast<size_t>(t)][k].real(),
                results[0][k].real())
          << "t=" << t << " k=" << k;
      EXPECT_EQ(results[static_cast<size_t>(t)][k].imag(),
                results[0][k].imag())
          << "t=" << t << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace litho::fft
