// Tests for CD metrology, mask rule checking and hotspot detection.
#include <gtest/gtest.h>

#include "core/hotspot.h"
#include "litho/cd.h"
#include "opc/mrc.h"
#include "test_util.h"

namespace litho::optics {
namespace {

TEST(Cd, MeasuresSyntheticTrapezoidWidth) {
  // A flat-top profile from 0 to 1 with linear flanks: threshold 0.5 cuts
  // exactly at the flank midpoints.
  Tensor aerial({1, 16});
  const float profile[16] = {0, 0, 0, 0.25f, 0.75f, 1, 1, 1,
                             1, 1, 1, 0.75f, 0.25f, 0, 0, 0};
  for (int i = 0; i < 16; ++i) aerial[i] = profile[i];
  const double cd =
      measure_cd_nm(aerial, 0.5, CutLine{true, 0}, 8, /*pixel_nm=*/10.0);
  // Crossings at x = 3.5 and x = 11.5 -> 8 px -> 80 nm.
  EXPECT_NEAR(cd, 80.0, 1e-6);
}

TEST(Cd, ZeroWhenNothingPrints) {
  Tensor aerial = Tensor::full({1, 8}, 0.1f);
  EXPECT_DOUBLE_EQ(
      measure_cd_nm(aerial, 0.5, CutLine{true, 0}, 4, 10.0), 0.0);
}

TEST(Cd, FindsNearestRunWhenCenterIsDark) {
  Tensor aerial({1, 12});
  for (int i = 8; i < 11; ++i) aerial[i] = 1.f;
  const double cd = measure_cd_nm(aerial, 0.5, CutLine{true, 0}, 2, 1.0);
  EXPECT_GT(cd, 2.0);
  EXPECT_LT(cd, 5.0);
}

TEST(Cd, VerticalCutMeasuresSameSquare) {
  Tensor aerial({16, 16});
  for (int64_t r = 5; r < 11; ++r)
    for (int64_t c = 5; c < 11; ++c) aerial[r * 16 + c] = 1.f;
  const double h =
      measure_cd_nm(aerial, 0.5, CutLine{true, 8}, 8, 1.0);
  const double v =
      measure_cd_nm(aerial, 0.5, CutLine{false, 8}, 8, 1.0);
  EXPECT_NEAR(h, v, 1e-9);
}

TEST(Cd, CutOutOfRangeThrows) {
  Tensor aerial({4, 4});
  EXPECT_THROW(measure_cd_nm(aerial, 0.5, CutLine{true, 9}, 0, 1.0),
               std::invalid_argument);
}

TEST(Cd, DepthOfFocusFromCurve) {
  std::vector<BossungPoint> curve = {
      {-80, 60}, {-40, 95}, {0, 100}, {40, 96}, {80, 55}};
  // 10% tolerance band keeps [-40, 40].
  EXPECT_DOUBLE_EQ(depth_of_focus_nm(curve, 0.1), 80.0);
  // Degenerate: no nominal point.
  EXPECT_DOUBLE_EQ(depth_of_focus_nm({{-40, 90}, {40, 91}}, 0.1), 0.0);
}

}  // namespace
}  // namespace litho::optics

namespace litho::opc {
namespace {

TEST(Mrc, CleanMaskHasNoViolations) {
  Tensor mask({16, 16});
  for (int64_t r = 4; r < 12; ++r)
    for (int64_t c = 4; c < 12; ++c) mask[r * 16 + c] = 1.f;
  const auto v = check_mask_rules(mask, 16.0, MrcRules{48, 48});
  EXPECT_TRUE(v.empty());
}

TEST(Mrc, FlagsNarrowFeature) {
  Tensor mask({8, 8});
  for (int64_t r = 2; r < 6; ++r) mask[r * 8 + 4] = 1.f;  // 1 px = 16 nm wide
  const auto v = check_mask_rules(mask, 16.0, MrcRules{48, 48});
  ASSERT_FALSE(v.empty());
  bool found_feature = false;
  for (const MrcViolation& x : v) {
    if (x.kind == MrcViolation::Kind::kFeature) found_feature = true;
  }
  EXPECT_TRUE(found_feature);
}

TEST(Mrc, FlagsNarrowGap) {
  Tensor mask({8, 8});
  // Two 3-px features separated by a 1-px (16 nm) gap along each row.
  for (int64_t r = 0; r < 8; ++r) {
    for (int64_t c = 0; c < 3; ++c) mask[r * 8 + c] = 1.f;
    for (int64_t c = 4; c < 7; ++c) mask[r * 8 + c] = 1.f;
  }
  const auto v = check_mask_rules(mask, 16.0, MrcRules{40, 40});
  bool found_gap = false;
  for (const MrcViolation& x : v) {
    if (x.kind == MrcViolation::Kind::kGap && x.horizontal) found_gap = true;
  }
  EXPECT_TRUE(found_gap);
}

TEST(Mrc, BorderGapsNotReported) {
  Tensor mask({8, 8});
  // Feature at the right edge: the 1-px gap at the left border must not be
  // counted (mask continues outside the tile), nor trailing background.
  for (int64_t r = 0; r < 8; ++r)
    for (int64_t c = 4; c < 8; ++c) mask[r * 8 + c] = 1.f;
  const auto v = check_mask_rules(mask, 16.0, MrcRules{48, 48});
  for (const MrcViolation& x : v) {
    EXPECT_NE(x.kind, MrcViolation::Kind::kGap);
  }
}

}  // namespace
}  // namespace litho::opc

namespace litho::core {
namespace {

TEST(Hotspot, FlagsMissingPattern) {
  Tensor design({24, 24});
  for (int64_t r = 2; r < 8; ++r)
    for (int64_t c = 2; c < 8; ++c) design[r * 24 + c] = 1.f;    // prints
  for (int64_t r = 14; r < 20; ++r)
    for (int64_t c = 14; c < 20; ++c) design[r * 24 + c] = 1.f;  // missing
  Tensor printed({24, 24});
  for (int64_t r = 2; r < 8; ++r)
    for (int64_t c = 2; c < 8; ++c) printed[r * 24 + c] = 1.f;

  HotspotParams params;
  const auto spots = find_hotspots(design, printed, params);
  ASSERT_EQ(spots.size(), 1u);
  EXPECT_EQ(spots[0].row_px, 12);
  EXPECT_EQ(spots[0].col_px, 12);
  EXPECT_DOUBLE_EQ(spots[0].printed_ratio, 0.0);
}

TEST(Hotspot, PerfectPrintIsQuiet) {
  Tensor design({24, 24});
  for (int64_t r = 4; r < 10; ++r)
    for (int64_t c = 4; c < 10; ++c) design[r * 24 + c] = 1.f;
  const auto spots = find_hotspots(design, design, HotspotParams{});
  EXPECT_TRUE(spots.empty());
}

TEST(Hotspot, SortedBySeverity) {
  Tensor design({24, 24});
  for (int64_t r = 0; r < 12; ++r)
    for (int64_t c = 0; c < 12; ++c) design[r * 24 + c] = 1.f;
  for (int64_t r = 12; r < 24; ++r)
    for (int64_t c = 12; c < 24; ++c) design[r * 24 + c] = 1.f;
  Tensor printed({24, 24});
  // First block prints at ~40%, second at 0%.
  for (int64_t r = 0; r < 12; ++r)
    for (int64_t c = 0; c < 5; ++c) printed[r * 24 + c] = 1.f;
  const auto spots = find_hotspots(design, printed, HotspotParams{});
  ASSERT_GE(spots.size(), 2u);
  EXPECT_DOUBLE_EQ(spots[0].printed_ratio, 0.0);  // worst first
}

TEST(Hotspot, MismatchThrows) {
  EXPECT_THROW(find_hotspots(Tensor({4, 4}), Tensor({5, 5}), HotspotParams{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace litho::core
