// Large-tile scheme parity: on an exactly-tile-sized
// mask the stitching scheme must degenerate to the plain pipeline
// bit-for-bit, and the parallel clip fan-out must be deterministic across
// thread counts.
#include <gtest/gtest.h>

#include "core/doinn.h"
#include "core/large_tile.h"
#include "runtime/thread_pool.h"
#include "test_util.h"

namespace litho {
namespace {

core::DoinnConfig tiny_config() {
  core::DoinnConfig cfg = core::DoinnConfig::small();
  cfg.tile = 64;
  cfg.modes = 4;
  cfg.gp_channels = 4;
  return cfg;
}

Tensor random_mask(int64_t side, uint32_t seed) {
  auto rng = test::rng(seed);
  Tensor mask = Tensor::rand({side, side}, rng);
  mask.apply_([](float v) { return v >= 0.6f ? 1.f : 0.f; });
  return mask;
}

TEST(LargeTile, TileSizedMaskMatchesPlainBitForBit) {
  core::DoinnConfig cfg = tiny_config();
  auto rng = test::rng(3);
  core::Doinn model(cfg, rng);
  core::LargeTilePredictor predictor(model);

  const Tensor mask = random_mask(cfg.tile, 17);
  // With mask == tile there is exactly one clip owning its full margin, so
  // the stitched GP grid equals the plain GP features and the two pipelines
  // must agree exactly.
  const Tensor stitched = predictor.predict(mask);
  const Tensor plain = predictor.predict_plain(mask);
  EXPECT_EQ(test::max_abs_diff(stitched, plain), 0.f);
}

TEST(LargeTile, StitchedGpParallelMatchesSerial) {
  core::DoinnConfig cfg = tiny_config();
  auto rng = test::rng(23);
  core::Doinn model(cfg, rng);
  model.set_training(false);
  core::LargeTilePredictor predictor(model);

  // 2.5x tile in one axis, 2x in the other: 4 x 3 half-overlap clips.
  auto mask_rng = test::rng(29);
  Tensor mask = Tensor::rand({5 * cfg.tile / 2, 2 * cfg.tile}, mask_rng);
  const Tensor serial = predictor.stitched_gp(mask).value();
  for (int threads : {1, 2, 4}) {
    runtime::ThreadPool pool(threads);
    const Tensor parallel = predictor.stitched_gp(mask, &pool).value();
    EXPECT_EQ(test::max_abs_diff(parallel, serial), 0.f)
        << "threads=" << threads;
  }
}

TEST(LargeTile, PredictParallelMatchesSerialAcrossThreadCounts) {
  core::DoinnConfig cfg = tiny_config();
  auto rng = test::rng(41);
  core::Doinn model(cfg, rng);
  core::LargeTilePredictor predictor(model);

  const Tensor mask = random_mask(2 * cfg.tile, 43);
  const Tensor serial = predictor.predict(mask);
  for (int threads : {2, 4}) {
    runtime::ThreadPool pool(threads);
    const Tensor parallel = predictor.predict(mask, &pool);
    EXPECT_EQ(test::max_abs_diff(parallel, serial), 0.f)
        << "threads=" << threads;
  }
}

TEST(LargeTile, RejectsMasksBelowTileOrOffGrid) {
  core::DoinnConfig cfg = tiny_config();
  auto rng = test::rng(2);
  core::Doinn model(cfg, rng);
  core::LargeTilePredictor predictor(model);
  EXPECT_THROW(predictor.predict(Tensor::zeros({cfg.tile / 2, cfg.tile / 2})),
               std::invalid_argument);
  EXPECT_THROW(
      predictor.predict(Tensor::zeros({cfg.tile + 1, cfg.tile + 1})),
      std::invalid_argument);
}

}  // namespace
}  // namespace litho
