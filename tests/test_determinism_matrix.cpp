// Bitwise-determinism matrix: one fixed workload pushed through every
// combination of {fp32, int8, bf16} x {1, 4 threads} x {graph executor
// on/off} x {adaptive batching delay on/off}. Within a precision, every
// configuration must produce bitwise-identical contours — thread count,
// executor compilation, and batching policy are latency knobs only (the
// repo-wide determinism contract). Precisions legitimately differ from
// each other, so each precision group has its own reference.
#include <gtest/gtest.h>

#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "core/doinn.h"
#include "runtime/engine.h"
#include "runtime/scheduler.h"
#include "tensor/prepack.h"
#include "test_util.h"

namespace litho {
namespace {

core::DoinnConfig tiny_config() {
  core::DoinnConfig cfg = core::DoinnConfig::small();
  cfg.tile = 64;
  cfg.modes = 4;
  cfg.gp_channels = 4;
  return cfg;
}

Tensor random_mask(int64_t side, uint32_t seed) {
  auto rng = test::rng(seed);
  Tensor mask = Tensor::rand({side, side}, rng);
  mask.apply_([](float v) { return v >= 0.6f ? 1.f : 0.f; });
  return mask;
}

struct MatrixPoint {
  Precision precision;
  int num_threads;
  bool graph_executor;
  bool adaptive_delay;
};

std::string point_name(const MatrixPoint& p) {
  std::string s = precision_name(p.precision);
  s += p.num_threads == 1 ? "/t1" : "/t4";
  s += p.graph_executor ? "/graph" : "/opwalk";
  s += p.adaptive_delay ? "/adaptive" : "/fixed";
  return s;
}

/// Runs the fixed workload through an engine+scheduler built for one matrix
/// point and returns the contours in request order.
std::vector<Tensor> run_point(const std::string& checkpoint,
                              const MatrixPoint& p,
                              const std::vector<Tensor>& workload) {
  runtime::EngineOptions eng;
  eng.num_threads = p.num_threads;
  eng.precision = p.precision;
  eng.use_graph_executor = p.graph_executor;
  eng.autotune = false;  // bitwise-neutral; keeps 24 engine builds fast
  runtime::InferenceEngine engine(checkpoint, eng);

  runtime::SchedulerOptions sched;
  sched.max_batch = 4;
  sched.adaptive_delay = p.adaptive_delay;
  runtime::Scheduler scheduler(engine, sched);

  std::vector<std::future<Tensor>> futures;
  futures.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    futures.push_back(scheduler.submit(workload[i], i + 1));
  }
  std::vector<Tensor> contours;
  contours.reserve(workload.size());
  for (auto& f : futures) contours.push_back(f.get());
  scheduler.shutdown();
  return contours;
}

TEST(DeterminismMatrix, EveryConfigurationIsBitwiseIdenticalPerPrecision) {
  const std::string checkpoint = "test_determinism_matrix.bin";
  {
    auto rng = test::rng(77);
    core::Doinn model(tiny_config(), rng);
    core::save_doinn(checkpoint, model);
  }

  // Mixed-shape workload so batches of different compositions form: the
  // scheduler only batches same-shape requests, and adaptive delay changes
  // how partial batches flush — none of which may change a single bit.
  std::vector<Tensor> workload;
  for (uint32_t seed = 1; seed <= 4; ++seed) {
    workload.push_back(random_mask(64, seed));
  }
  workload.push_back(random_mask(96, 5));
  workload.push_back(random_mask(96, 6));

  const Precision precisions[] = {Precision::kFp32, Precision::kInt8,
                                  Precision::kBf16};
  for (const Precision precision : precisions) {
    std::vector<Tensor> reference;
    std::string reference_name;
    for (const int threads : {1, 4}) {
      for (const bool graph : {false, true}) {
        for (const bool adaptive : {false, true}) {
          const MatrixPoint p{precision, threads, graph, adaptive};
          const std::vector<Tensor> got = run_point(checkpoint, p, workload);
          ASSERT_EQ(got.size(), workload.size()) << point_name(p);
          if (reference.empty()) {
            reference = got;
            reference_name = point_name(p);
            continue;
          }
          for (size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(test::max_abs_diff(got[i], reference[i]), 0.f)
                << point_name(p) << " request " << i << " differs from "
                << reference_name;
          }
        }
      }
    }
  }

  std::remove(checkpoint.c_str());
}

}  // namespace
}  // namespace litho
