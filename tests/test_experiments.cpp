// Cheap tests of the experiment harness (no training; dataset/model
// factories, cache keys, benchmark metadata).
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/experiments.h"
#include "test_util.h"

namespace litho::core {
namespace {

TEST(Benchmarks, IdsAreDistinctAndStable) {
  EXPECT_EQ(ispd2019(Resolution::kLow).id(), "ispd_2019_l");
  EXPECT_EQ(ispd2019(Resolution::kHigh).id(), "ispd_2019_h");
  EXPECT_EQ(iccad2013(Resolution::kLow).id(), "iccad_2013_l");
  EXPECT_EQ(n14().id(), "n14_l");
  EXPECT_EQ(n14().display(), "N14");
  EXPECT_EQ(iccad2013(Resolution::kHigh).display(), "ICCAD-2013 (H)");
}

TEST(Benchmarks, ResolutionControlsRaster) {
  const Benchmark low = ispd2019(Resolution::kLow);
  const Benchmark high = ispd2019(Resolution::kHigh);
  // Same physical tile, different raster.
  EXPECT_DOUBLE_EQ(low.tile_px() * low.pixel_nm(),
                   high.tile_px() * high.pixel_nm());
  EXPECT_EQ(low.tile_px(), 128);
  EXPECT_EQ(high.tile_px(), 256);
}

TEST(Benchmarks, DamoSupportsOnlyLowRes) {
  EXPECT_TRUE(damo_supports(ispd2019(Resolution::kLow)));
  EXPECT_FALSE(damo_supports(ispd2019(Resolution::kHigh)));
  EXPECT_TRUE(damo_supports(n14()));
}

TEST(Factories, AllModelNamesConstruct) {
  for (const std::string& name :
       {"DOINN", "UNet", "DAMO-DLS", "FNO-baseline"}) {
    auto m = make_model(name, 1);
    ASSERT_NE(m, nullptr);
    EXPECT_GT(m->num_parameters(), 0) << name;
  }
  EXPECT_THROW(make_model("nonsense", 1), std::invalid_argument);
}

TEST(Factories, AblationVariantsDifferInSize) {
  auto full = make_doinn(true, true, true, 1);
  auto bare = make_doinn(false, false, false, 1);
  EXPECT_GT(full->num_parameters(), bare->num_parameters());
}

TEST(Factories, SeedReproducesInit) {
  auto a = make_model("DOINN", 5);
  auto b = make_model("DOINN", 5);
  const auto da = a->state_dict(), db = b->state_dict();
  for (const auto& [k, v] : da) {
    EXPECT_EQ(test::max_abs_diff(v, db.at(k)), 0.f) << k;
  }
}

TEST(Cache, DirRespectsEnvOverride) {
  setenv("LITHO_CACHE_DIR", "/tmp/litho_test_cache", 1);
  EXPECT_EQ(cache_dir(), "/tmp/litho_test_cache");
  unsetenv("LITHO_CACHE_DIR");
}

TEST(TrainDefaults, MatchPaperTable8Family) {
  const TrainConfig cfg = default_train_config();
  EXPECT_FLOAT_EQ(cfg.lr, 2e-3f);          // paper: 0.002
  EXPECT_EQ(cfg.lr_step, 2);               // paper: every 2 epochs
  EXPECT_FLOAT_EQ(cfg.lr_gamma, 0.5f);     // paper: x0.5
  EXPECT_FLOAT_EQ(cfg.weight_decay, 1e-4f);// paper: 0.0001
}

}  // namespace
}  // namespace litho::core
