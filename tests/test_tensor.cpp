#include <gtest/gtest.h>

#include <numeric>

#include "tensor/tensor.h"
#include "test_util.h"

namespace litho {
namespace {

TEST(Tensor, ShapeAndNumel) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(), 3);
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(shape_to_string(t.shape()), "[2, 3, 4]");
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({3, 3});
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.f);
}

TEST(Tensor, FromValuesAndAt) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at({0, 0}), 1.f);
  EXPECT_EQ(t.at({1, 2}), 6.f);
  t.at({1, 0}) = 9.f;
  EXPECT_EQ(t[3], 9.f);
}

TEST(Tensor, AtThrowsOutOfRange) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at({2, 0}), std::out_of_range);
  EXPECT_THROW((void)t.at({0, 0, 0}), std::invalid_argument);
}

TEST(Tensor, ValueCountMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.f, 2.f, 3.f}), std::invalid_argument);
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshape({3, 2});
  r[0] = 42.f;
  EXPECT_EQ(t[0], 42.f);
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t({2}, {1, 2});
  Tensor c = t.clone();
  c[0] = 7.f;
  EXPECT_EQ(t[0], 1.f);
}

TEST(Tensor, Transpose2d) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor tt = t.transpose2d();
  EXPECT_EQ(tt.size(0), 3);
  EXPECT_EQ(tt.at({0, 1}), 4.f);
  EXPECT_EQ(tt.at({2, 0}), 3.f);
}

TEST(Tensor, ConcatMiddleDim) {
  Tensor a({2, 1, 2}, {1, 2, 3, 4});
  Tensor b({2, 2, 2}, {5, 6, 7, 8, 9, 10, 11, 12});
  Tensor c = Tensor::concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 3, 2}));
  EXPECT_EQ(c.at({0, 0, 0}), 1.f);
  EXPECT_EQ(c.at({0, 1, 0}), 5.f);
  EXPECT_EQ(c.at({1, 0, 1}), 4.f);
  EXPECT_EQ(c.at({1, 2, 1}), 12.f);
}

TEST(Tensor, NarrowIsInverseOfConcat) {
  auto g = test::rng();
  Tensor a = Tensor::randn({2, 3, 4}, g);
  Tensor b = Tensor::randn({2, 2, 4}, g);
  Tensor c = Tensor::concat({a, b}, 1);
  EXPECT_EQ(test::max_abs_diff(c.narrow(1, 0, 3), a), 0.f);
  EXPECT_EQ(test::max_abs_diff(c.narrow(1, 3, 2), b), 0.f);
}

TEST(Tensor, NarrowBoundsChecked) {
  Tensor t({2, 4});
  EXPECT_THROW(t.narrow(1, 3, 2), std::out_of_range);
  EXPECT_THROW(t.narrow(2, 0, 1), std::out_of_range);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {4, 5, 6});
  EXPECT_EQ(a.add(b).at({1}), 7.f);
  EXPECT_EQ(a.sub(b).at({0}), -3.f);
  EXPECT_EQ(a.mul(b).at({2}), 18.f);
  EXPECT_EQ(a.mul(2.f).at({2}), 6.f);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(t.sum(), -2.f);
  EXPECT_FLOAT_EQ(t.mean(), -0.5f);
  EXPECT_FLOAT_EQ(t.max(), 3.f);
  EXPECT_FLOAT_EQ(t.min(), -4.f);
  EXPECT_FLOAT_EQ(t.abs_max(), 4.f);
}

TEST(Tensor, RandnStatistics) {
  auto g = test::rng();
  Tensor t = Tensor::randn({10000}, g, 1.f, 2.f);
  EXPECT_NEAR(t.mean(), 1.f, 0.1f);
  double var = 0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    var += (t[i] - t.mean()) * (t[i] - t.mean());
  }
  var /= t.numel();
  EXPECT_NEAR(std::sqrt(var), 2.f, 0.1f);
}

TEST(Gemm, MatchesNaive) {
  auto g = test::rng();
  const int64_t m = 7, k = 13, n = 9;
  Tensor a = Tensor::randn({m, k}, g);
  Tensor b = Tensor::randn({k, n}, g);
  Tensor c({m, n});
  gemm(a.data(), b.data(), c.data(), m, k, n);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0;
      for (int64_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n + j];
      EXPECT_NEAR(c[i * n + j], acc, 1e-4f);
    }
  }
}

TEST(Gemm, TransposedVariantsConsistent) {
  auto g = test::rng(7);
  const int64_t m = 5, k = 6, n = 4;
  Tensor a = Tensor::randn({m, k}, g);
  Tensor b = Tensor::randn({k, n}, g);
  Tensor ref({m, n});
  gemm(a.data(), b.data(), ref.data(), m, k, n);

  // gemm_at_b: pass a stored as (k x m) = a^T.
  Tensor at = a.transpose2d();
  Tensor c1({m, n});
  gemm_at_b(at.data(), b.data(), c1.data(), m, k, n);
  EXPECT_LT(test::max_abs_diff(ref, c1), 1e-4f);

  // gemm_a_bt: pass b stored as (n x k) = b^T.
  Tensor bt = b.transpose2d();
  Tensor c2({m, n});
  gemm_a_bt(a.data(), bt.data(), c2.data(), m, k, n);
  EXPECT_LT(test::max_abs_diff(ref, c2), 1e-4f);
}

TEST(Gemm, AccumulateAddsOntoC) {
  auto g = test::rng(3);
  const int64_t m = 3, k = 4, n = 2;
  Tensor a = Tensor::randn({m, k}, g);
  Tensor b = Tensor::randn({k, n}, g);
  Tensor c = Tensor::ones({m, n});
  Tensor ref({m, n});
  gemm(a.data(), b.data(), ref.data(), m, k, n);
  gemm_accumulate(a.data(), b.data(), c.data(), m, k, n);
  for (int64_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i] + 1.f, 1e-4f);
}

// Property sweep: gemm correct across a grid of sizes including
// non-multiples of the blocking factor.
class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  auto g = test::rng(m * 100 + k * 10 + n);
  Tensor a = Tensor::randn({m, k}, g);
  Tensor b = Tensor::randn({k, n}, g);
  Tensor c({m, n});
  gemm(a.data(), b.data(), c.data(), m, k, n);
  float worst = 0.f;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0;
      for (int64_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n + j];
      worst = std::max(worst, std::abs(acc - c[i * n + j]));
    }
  }
  EXPECT_LT(worst, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GemmSizes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 65, 1},
                      std::tuple{64, 64, 64}, std::tuple{65, 63, 67},
                      std::tuple{2, 128, 3}, std::tuple{100, 1, 100}));

}  // namespace
}  // namespace litho
