#include <gtest/gtest.h>

#include <filesystem>

#include "io/io.h"
#include "litho/simulator.h"
#include "test_util.h"

namespace litho::optics {
namespace {

/// Small, fast config used throughout these tests.
OpticalConfig test_config() {
  OpticalConfig cfg;
  cfg.pixel_nm = 16.0;
  cfg.kernel_grid = 32;
  cfg.kernel_count = 10;
  return cfg;
}

TEST(Pupil, CutoffBehaviour) {
  OpticalConfig cfg = test_config();
  const double fc = cfg.cutoff_freq();
  EXPECT_EQ(pupil_value(cfg, 0, 0), std::complex<double>(1, 0));
  EXPECT_EQ(pupil_value(cfg, fc * 0.99, 0), std::complex<double>(1, 0));
  EXPECT_EQ(pupil_value(cfg, fc * 1.01, 0), std::complex<double>(0, 0));
  EXPECT_EQ(pupil_value(cfg, fc, fc), std::complex<double>(0, 0));
}

TEST(Pupil, DefocusAddsPhaseInsideSupportOnly) {
  OpticalConfig cfg = test_config();
  cfg.defocus_nm = 50.0;
  const auto v = pupil_value(cfg, cfg.cutoff_freq() * 0.5, 0);
  EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
  EXPECT_NE(v.imag(), 0.0);
  EXPECT_EQ(pupil_value(cfg, cfg.cutoff_freq() * 1.1, 0),
            std::complex<double>(0, 0));
}

TEST(Source, AnnularExcludesInnerDisc) {
  OpticalConfig cfg = test_config();
  cfg.source = SourceShape::kAnnular;
  const auto annular = source_points(cfg, 64);
  cfg.source = SourceShape::kCircular;
  const auto circular = source_points(cfg, 64);
  EXPECT_GT(circular.size(), annular.size());
  // No annular point may lie strictly inside sigma_in * pupil radius.
  const double r_in = cfg.sigma_in * cfg.pupil_radius_px(64);
  for (const SourcePoint& s : annular) {
    EXPECT_GE(s.kx * s.kx + s.ky * s.ky, r_in * r_in - 1e-9);
  }
}

TEST(Source, DegenerateConfigFallsBackToOnAxisPoint) {
  OpticalConfig cfg = test_config();
  cfg.sigma_out = 1e-9;  // coherent limit
  const auto pts = source_points(cfg, 64);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].kx, 0.0);
}

TEST(Socs, EigenvaluesPositiveAndDescending) {
  const auto kernels = compute_socs_kernels(test_config());
  ASSERT_EQ(kernels.size(), 10u);
  for (size_t i = 0; i < kernels.size(); ++i) {
    EXPECT_GT(kernels[i].alpha, 0.0) << i;
    if (i > 0) {
      EXPECT_LE(kernels[i].alpha, kernels[i - 1].alpha * 1.001) << i;
    }
  }
  // The leading kernel dominates for partially coherent imaging.
  EXPECT_GT(kernels[0].alpha, kernels.back().alpha * 2);
}

TEST(Socs, KernelEnergyConcentratedAtWindowCenter) {
  const auto kernels = compute_socs_kernels(test_config());
  const auto& k = kernels[0];
  const int64_t d = k.spatial.re.size(0);
  double total = 0, central = 0;
  for (int64_t r = 0; r < d; ++r) {
    for (int64_t c = 0; c < d; ++c) {
      const double e = static_cast<double>(k.spatial.re[r * d + c]) *
                           k.spatial.re[r * d + c] +
                       static_cast<double>(k.spatial.im[r * d + c]) *
                           k.spatial.im[r * d + c];
      total += e;
      if (std::abs(r - d / 2) <= d / 4 && std::abs(c - d / 2) <= d / 4) {
        central += e;
      }
    }
  }
  EXPECT_GT(central / total, 0.8) << "kernel energy not centered";
}

TEST(Socs, SaveLoadRoundTrip) {
  const auto kernels = compute_socs_kernels(test_config());
  const std::string path = "/tmp/litho_test_kernels.bin";
  save_kernels(path, kernels);
  const auto loaded = load_kernels(path);
  ASSERT_EQ(loaded.size(), kernels.size());
  for (size_t i = 0; i < kernels.size(); ++i) {
    EXPECT_FLOAT_EQ(static_cast<float>(loaded[i].alpha),
                    static_cast<float>(kernels[i].alpha));
    EXPECT_EQ(test::max_abs_diff(loaded[i].spatial.re, kernels[i].spatial.re),
              0.f);
  }
  std::filesystem::remove(path);
}

TEST(Socs, SpectrumEmbeddingPreservesKernel) {
  const auto kernels = compute_socs_kernels(test_config());
  // Embedding onto the native grid and inverting must recover the
  // (fft-shifted) spatial kernel.
  const auto& k = kernels[0];
  const int64_t d = k.spatial.re.size(0);
  fft::CTensor spec = kernel_spectrum(k, d, d);
  fft::CTensor back = fft::fft2(spec, true);
  // back is the origin-centered version; compare against unshifted window.
  for (int64_t r = 0; r < d; ++r) {
    for (int64_t c = 0; c < d; ++c) {
      const int64_t sr = (r + d / 2) % d, sc = (c + d / 2) % d;
      EXPECT_NEAR(back.re[r * d + c], k.spatial.re[sr * d + sc], 1e-4f);
    }
  }
}

TEST(Socs, RejectsGridSmallerThanKernelWindow) {
  const auto kernels = compute_socs_kernels(test_config());
  EXPECT_THROW(kernel_spectrum(kernels[0], 16, 16), std::invalid_argument);
}

TEST(Socs, MatchesAbbeReferenceImaging) {
  // The core physics check: truncated SOCS must approximate the exact Abbe
  // source-point image. Relative L2 error below a few percent with 10
  // kernels on a small grid.
  OpticalConfig cfg = test_config();
  LithoSimulator sim(cfg, compute_socs_kernels(cfg));

  Tensor mask({32, 32});
  // A few features: square contact + bar.
  for (int64_t r = 8; r < 13; ++r)
    for (int64_t c = 8; c < 13; ++c) mask[r * 32 + c] = 1.f;
  for (int64_t r = 20; r < 23; ++r)
    for (int64_t c = 6; c < 26; ++c) mask[r * 32 + c] = 1.f;

  Tensor socs = sim.aerial(mask);
  Tensor abbe = abbe_intensity(cfg, mask);
  // Normalize Abbe by the same open-frame convention.
  Tensor open = Tensor::ones({32, 32});
  const float abbe_open = abbe_intensity(cfg, open).mean();
  abbe.mul_(1.f / abbe_open);

  double num = 0, den = 0;
  for (int64_t i = 0; i < socs.numel(); ++i) {
    num += (socs[i] - abbe[i]) * (socs[i] - abbe[i]);
    den += abbe[i] * abbe[i];
  }
  EXPECT_LT(std::sqrt(num / den), 0.05)
      << "SOCS does not reproduce Abbe imaging";
}

TEST(Simulator, OpenFrameNormalization) {
  OpticalConfig cfg = test_config();
  LithoSimulator sim(cfg, compute_socs_kernels(cfg));
  Tensor aerial = sim.aerial(Tensor::ones({64, 64}));
  EXPECT_NEAR(aerial.mean(), 1.f, 1e-3f);
}

TEST(Simulator, DarkFieldIsDark) {
  OpticalConfig cfg = test_config();
  LithoSimulator sim(cfg, compute_socs_kernels(cfg));
  Tensor aerial = sim.aerial(Tensor::zeros({64, 64}));
  EXPECT_LT(aerial.abs_max(), 1e-5f);
}

TEST(Simulator, ResistThresholdBinarizes) {
  OpticalConfig cfg = test_config();
  LithoSimulator sim(cfg, compute_socs_kernels(cfg));
  Tensor a({2, 2}, {0.1f, 0.3f, 0.225f, 0.9f});
  Tensor z = sim.resist(a);
  EXPECT_FLOAT_EQ(z[0], 0.f);
  EXPECT_FLOAT_EQ(z[1], 1.f);
  EXPECT_FLOAT_EQ(z[2], 1.f);  // >= threshold prints
  EXPECT_FLOAT_EQ(z[3], 1.f);
}

TEST(Simulator, LargeContactPrints) {
  OpticalConfig cfg = test_config();
  LithoSimulator sim(cfg, compute_socs_kernels(cfg));
  Tensor mask({64, 64});
  // 8x8 px = 128 nm contact: comfortably above resolution.
  for (int64_t r = 28; r < 36; ++r)
    for (int64_t c = 28; c < 36; ++c) mask[r * 64 + c] = 1.f;
  Tensor z = sim.simulate(mask);
  EXPECT_GT(z.sum(), 10.f) << "feature failed to print";
  EXPECT_FLOAT_EQ(z.at({32, 32}), 1.f);
  EXPECT_FLOAT_EQ(z.at({4, 4}), 0.f);
}

TEST(Simulator, PrintAreaMonotoneInFeatureSize) {
  OpticalConfig cfg = test_config();
  LithoSimulator sim(cfg, compute_socs_kernels(cfg));
  float prev = 0.f;
  for (int64_t half : {2, 3, 4, 6}) {
    Tensor mask({64, 64});
    for (int64_t r = 32 - half; r < 32 + half; ++r)
      for (int64_t c = 32 - half; c < 32 + half; ++c) mask[r * 64 + c] = 1.f;
    const float area = sim.simulate(mask).sum();
    EXPECT_GE(area, prev) << "half=" << half;
    prev = area;
  }
  EXPECT_GT(prev, 0.f);
}

TEST(Simulator, ThresholdSetterChangesPrintArea) {
  OpticalConfig cfg = test_config();
  LithoSimulator sim(cfg, compute_socs_kernels(cfg));
  Tensor mask({64, 64});
  for (int64_t r = 26; r < 38; ++r)
    for (int64_t c = 26; c < 38; ++c) mask[r * 64 + c] = 1.f;
  const float at_default = sim.simulate(mask).sum();
  sim.set_threshold(0.1);
  const float at_low = sim.simulate(mask).sum();
  EXPECT_GT(at_low, at_default) << "lower threshold must print more";
  EXPECT_DOUBLE_EQ(sim.threshold(), 0.1);
}

TEST(Simulator, KernelCacheRoundTrip) {
  OpticalConfig cfg = test_config();
  const std::string path = "/tmp/litho_test_kcache.bin";
  std::filesystem::remove(path);
  LithoSimulator a = LithoSimulator::with_cache(cfg, path);
  EXPECT_TRUE(litho::io::file_exists(path));
  LithoSimulator b = LithoSimulator::with_cache(cfg, path);  // loads
  Tensor mask = Tensor::zeros({32, 32});
  for (int64_t r = 12; r < 20; ++r)
    for (int64_t c = 12; c < 20; ++c) mask[r * 32 + c] = 1.f;
  EXPECT_EQ(test::max_abs_diff(a.aerial(mask), b.aerial(mask)), 0.f);
  std::filesystem::remove(path);
}

TEST(Simulator, AerialIsShiftEquivariant) {
  // FFT-based imaging is exactly equivariant under circular shifts: a
  // shifted mask must produce the identically shifted intensity.
  OpticalConfig cfg = test_config();
  LithoSimulator sim(cfg, compute_socs_kernels(cfg));
  auto g = test::rng(21);
  Tensor mask({64, 64});
  for (int64_t r = 20; r < 28; ++r)
    for (int64_t c = 12; c < 20; ++c) mask[r * 64 + c] = 1.f;
  Tensor a = sim.aerial(mask);

  const int64_t dy = 17, dx = 9;
  Tensor shifted({64, 64});
  for (int64_t r = 0; r < 64; ++r) {
    for (int64_t c = 0; c < 64; ++c) {
      shifted[((r + dy) % 64) * 64 + (c + dx) % 64] = mask[r * 64 + c];
    }
  }
  Tensor b = sim.aerial(shifted);
  float worst = 0.f;
  for (int64_t r = 0; r < 64; ++r) {
    for (int64_t c = 0; c < 64; ++c) {
      worst = std::max(worst,
                       std::abs(b[((r + dy) % 64) * 64 + (c + dx) % 64] -
                                a[r * 64 + c]));
    }
  }
  EXPECT_LT(worst, 1e-4f);
}

TEST(Simulator, DefocusSignSymmetryForRealMasks) {
  // With a real mask and a symmetric source, +z and -z defocus produce the
  // same intensity (the pupil phases are conjugate).
  OpticalConfig plus = test_config();
  plus.defocus_nm = 60.0;
  OpticalConfig minus = test_config();
  minus.defocus_nm = -60.0;
  Tensor mask({32, 32});
  for (int64_t r = 10; r < 20; ++r)
    for (int64_t c = 14; c < 18; ++c) mask[r * 32 + c] = 1.f;
  Tensor ip = abbe_intensity(plus, mask);
  Tensor im = abbe_intensity(minus, mask);
  EXPECT_LT(test::max_abs_diff(ip, im), 1e-4f);
}

TEST(Simulator, DefocusDegradesContrast) {
  // Peak intensity of a small feature drops away from focus.
  OpticalConfig nominal = test_config();
  OpticalConfig defocused = test_config();
  defocused.defocus_nm = 120.0;
  Tensor mask({64, 64});
  for (int64_t r = 28; r < 36; ++r)
    for (int64_t c = 28; c < 36; ++c) mask[r * 64 + c] = 1.f;
  LithoSimulator s0(nominal, compute_socs_kernels(nominal));
  LithoSimulator s1(defocused, compute_socs_kernels(defocused));
  EXPECT_GT(s0.aerial(mask).max(), s1.aerial(mask).max());
}

TEST(Simulator, OpticalDiameterIsPositiveAndSubMicron) {
  OpticalConfig cfg = test_config();
  EXPECT_GT(cfg.optical_diameter_nm(), 100.0);
  EXPECT_LT(cfg.optical_diameter_nm(), 1200.0);
  LithoSimulator sim(cfg, compute_socs_kernels(cfg));
  EXPECT_GT(sim.optical_diameter_px(), 0);
}

}  // namespace
}  // namespace litho::optics
