// Tests for the observability layer: the per-thread trace recorder (ring
// wrap, concurrent recording, Chrome Trace Event JSON shape, span nesting,
// the determinism contract) and the metrics registry (counter/gauge
// semantics, histogram percentiles against a sorted-vector oracle).
//
// The trace recorder is process-global state, so every test that records
// starts from trace::reset() and leaves tracing disabled on exit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/doinn.h"
#include "runtime/engine.h"
#include "runtime/metrics_registry.h"
#include "runtime/trace.h"
#include "test_util.h"

namespace litho {
namespace {

namespace trace = runtime::trace;

/// Minimal JSON well-formedness checker (objects, arrays, strings with
/// escapes, numbers, literals). Returns false on any syntax error — enough
/// to catch an emitter that forgets a comma, quote, or brace.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;  // {
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool array() {
    ++pos_;  // [
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        ++pos_;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const size_t len = std::string(lit).size();
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

size_t count_occurrences(const std::string& haystack,
                         const std::string& needle) {
  size_t n = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// RAII guard: every recording test starts clean and cannot leak an
/// enabled recorder (or a shrunken ring) into the next test.
struct TraceSandbox {
  explicit TraceSandbox(size_t ring_capacity = 0) {
    trace::set_enabled(false);
    trace::reset(ring_capacity);
  }
  ~TraceSandbox() {
    trace::set_enabled(false);
    trace::reset(1 << 14);  // restore the default ring capacity
  }
};

#if DOINN_TRACING_ENABLED

TEST(Trace, DisabledRecorderEmitsNothing) {
  TraceSandbox sandbox;
  { DOINN_TRACE_SCOPE("t.noop", "test"); }
  trace::emit_instant("t.instant", "test");
  trace::emit_async("t.async", "test", 1, 0, 10);
  for (const trace::ThreadEvents& te : trace::snapshot()) {
    EXPECT_TRUE(te.events.empty());
  }
  const std::string json = trace::dump_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 0u);
}

TEST(Trace, RecordsSpansInstantsAndAsync) {
  TraceSandbox sandbox;
  trace::set_enabled(true);
  {
    DOINN_TRACE_SCOPE("t.outer", "test", "k", 7);
    DOINN_TRACE_SCOPE("t.inner", "test");
    trace::emit_instant("t.mark", "test", {{"v", 3}}, "note", "hello");
  }
  trace::emit_async("t.wait", "test", /*id=*/42, /*ts_ns=*/100,
                    /*dur_ns=*/200, {{"req", 42}});
  trace::set_enabled(false);

  std::vector<trace::Event> all;
  for (const trace::ThreadEvents& te : trace::snapshot()) {
    all.insert(all.end(), te.events.begin(), te.events.end());
  }
  ASSERT_EQ(all.size(), 4u);

  const std::string json = trace::dump_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // One complete span per scope, a b/e pair for the async event, one
  // instant with the scope "t" marker.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"b\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"e\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"i\""), 1u);
  EXPECT_NE(json.find("\"t.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":7"), std::string::npos);
  EXPECT_NE(json.find("\"note\":\"hello\""), std::string::npos);
}

TEST(Trace, ScopedSpansNestByTimestamp) {
  TraceSandbox sandbox;
  trace::set_enabled(true);
  {
    DOINN_TRACE_SCOPE("t.a", "test");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      DOINN_TRACE_SCOPE("t.b", "test");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  trace::set_enabled(false);

  const std::vector<trace::ThreadEvents> threads = trace::snapshot();
  const trace::Event* outer = nullptr;
  const trace::Event* inner = nullptr;
  for (const trace::ThreadEvents& te : threads) {
    for (const trace::Event& ev : te.events) {
      if (std::string(ev.name) == "t.a") outer = &ev;
      if (std::string(ev.name) == "t.b") inner = &ev;
    }
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Inner begins after outer and ends before it: [a.ts, a.ts+a.dur] must
  // contain [b.ts, b.ts+b.dur].
  EXPECT_GE(inner->ts_ns, outer->ts_ns);
  EXPECT_LE(inner->ts_ns + inner->dur_ns, outer->ts_ns + outer->dur_ns);
}

TEST(Trace, ConcurrentThreadsRecordWithoutLoss) {
  TraceSandbox sandbox;
  trace::set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;  // well under the default ring
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      trace::set_thread_name("trace-test-worker");
      for (int i = 0; i < kSpansPerThread; ++i) {
        DOINN_TRACE_SCOPE("t.work", "test", "i", i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  trace::set_enabled(false);

  size_t total = 0;
  size_t named_rings = 0;
  for (const trace::ThreadEvents& te : trace::snapshot()) {
    EXPECT_EQ(te.dropped, 0u);
    if (te.thread_name == "trace-test-worker") ++named_rings;
    for (const trace::Event& ev : te.events) {
      if (std::string(ev.name) == "t.work") ++total;
    }
    // Per-ring timestamps come back sorted.
    for (size_t i = 1; i < te.events.size(); ++i) {
      EXPECT_LE(te.events[i - 1].ts_ns, te.events[i].ts_ns);
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(named_rings, static_cast<size_t>(kThreads));
  EXPECT_TRUE(JsonChecker(trace::dump_json()).valid());
}

TEST(Trace, RingWrapKeepsNewestEventsAndCountsDrops) {
  TraceSandbox sandbox(/*ring_capacity=*/64);
  trace::set_enabled(true);
  constexpr int kEvents = 200;
  for (int i = 0; i < kEvents; ++i) {
    trace::emit_instant("t.seq", "test", {{"i", i}});
  }
  trace::set_enabled(false);

  const trace::ThreadEvents* mine = nullptr;
  for (const trace::ThreadEvents& te : trace::snapshot()) {
    for (const trace::Event& ev : te.events) {
      if (std::string(ev.name) == "t.seq") {
        mine = &te;
        break;
      }
    }
    if (mine != nullptr) break;
  }
  ASSERT_NE(mine, nullptr);
  EXPECT_LE(mine->events.size(), 64u);
  EXPECT_FALSE(mine->events.empty());
  EXPECT_EQ(mine->events.size() + mine->dropped,
            static_cast<size_t>(kEvents));
  // The retained suffix is the newest events, still in order.
  const int64_t newest = mine->events.back().aval[0];
  EXPECT_EQ(newest, kEvents - 1);
  for (size_t i = 1; i < mine->events.size(); ++i) {
    EXPECT_EQ(mine->events[i].aval[0], mine->events[i - 1].aval[0] + 1);
  }
  EXPECT_TRUE(JsonChecker(trace::dump_json()).valid());
}

TEST(Trace, PredictBatchBitwiseIdenticalWithTracingEnabled) {
  core::DoinnConfig cfg = core::DoinnConfig::small();
  cfg.tile = 64;
  cfg.modes = 4;
  cfg.gp_channels = 4;
  runtime::InferenceEngine engine(cfg, /*seed=*/5, runtime::EngineOptions{2});
  std::vector<Tensor> masks;
  for (uint32_t s = 0; s < 3; ++s) {
    auto rng = test::rng(s);
    Tensor mask = Tensor::rand({cfg.tile, cfg.tile}, rng);
    mask.apply_([](float v) { return v >= 0.6f ? 1.f : 0.f; });
    masks.push_back(std::move(mask));
  }

  TraceSandbox sandbox;
  const std::vector<Tensor> untraced = engine.predict_batch(masks);
  trace::set_enabled(true);
  const std::vector<Tensor> traced = engine.predict_batch(masks);
  trace::set_enabled(false);

  ASSERT_EQ(untraced.size(), traced.size());
  for (size_t i = 0; i < untraced.size(); ++i) {
    EXPECT_EQ(test::max_abs_diff(untraced[i], traced[i]), 0.f)
        << "mask " << i << " differs with tracing enabled";
  }
  // The traced run actually recorded the engine spans.
  size_t forwards = 0;
  for (const trace::ThreadEvents& te : trace::snapshot()) {
    for (const trace::Event& ev : te.events) {
      if (std::string(ev.name) == "engine.forward") ++forwards;
    }
  }
  EXPECT_EQ(forwards, 1u);
}

#endif  // DOINN_TRACING_ENABLED

TEST(Trace, DumpJsonIsWellFormedEvenWhenCompiledOut) {
  // Valid in both configure modes: DOINN_TRACING=OFF builds still produce
  // a loadable empty trace document.
  const std::string json = trace::dump_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(Metrics, CounterAndGaugeBasics) {
  runtime::MetricsRegistry reg;
  runtime::Counter& c = reg.counter("t.count");
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5);
  EXPECT_EQ(&reg.counter("t.count"), &c);  // same name, same object

  runtime::Gauge& g = reg.gauge("t.depth");
  g.update_max(3);
  g.update_max(9);
  g.update_max(6);  // lower: no effect
  EXPECT_EQ(g.value(), 9);
  g.set(2);
  EXPECT_EQ(g.value(), 2);

  reg.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, ConcurrentCounterAddsAreLossless) {
  runtime::MetricsRegistry reg;
  runtime::Counter& c = reg.counter("t.concurrent");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<int64_t>(kThreads) * kAdds);
}

TEST(Metrics, HistogramMatchesSortedVectorOracleBelowReservoirCap) {
  runtime::MetricsRegistry reg;
  runtime::Histogram& h = reg.histogram("t.lat", /*reservoir_capacity=*/4096);
  // Below the reservoir cap nothing is sampled away, so percentiles are
  // exact nearest-rank over the full data.
  std::vector<double> values;
  auto rng = test::rng(77);
  for (int i = 0; i < 1000; ++i) {
    values.push_back(static_cast<double>(rng() % 100000) / 100.0);
    h.record(values.back());
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  auto oracle = [&sorted](double q) {
    const auto rank = static_cast<size_t>(std::max<long long>(
        0, static_cast<long long>(
               std::ceil(q * static_cast<double>(sorted.size()))) -
               1));
    return sorted[std::min(rank, sorted.size() - 1)];
  };

  const runtime::Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000);
  EXPECT_EQ(snap.min, sorted.front());
  EXPECT_EQ(snap.max, sorted.back());
  EXPECT_EQ(snap.p50, oracle(0.50));
  EXPECT_EQ(snap.p90, oracle(0.90));
  EXPECT_EQ(snap.p99, oracle(0.99));
  double sum = 0.0;
  for (double v : values) sum += v;
  EXPECT_NEAR(snap.mean, sum / 1000.0, 1e-9);
}

TEST(Metrics, DumpJsonIsWellFormed) {
  runtime::MetricsRegistry reg;
  reg.counter("t.a").add(3);
  reg.gauge("t.b").set(-4);
  reg.histogram("t.c\"quoted\\name").record(1.5);  // name needs escaping
  const std::string json = reg.dump_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"t.a\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"t.b\": -4"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

}  // namespace
}  // namespace litho
