#include <gtest/gtest.h>

#include "opc/opc.h"
#include "test_util.h"

namespace litho::opc {
namespace {

using layout::Clip;
using layout::Rect;

optics::LithoSimulator make_sim() {
  optics::OpticalConfig cfg;
  cfg.pixel_nm = 16.0;
  cfg.kernel_grid = 32;
  cfg.kernel_count = 10;
  static std::vector<optics::SocsKernel> kernels =
      optics::compute_socs_kernels(cfg);  // shared across tests (expensive)
  return optics::LithoSimulator(cfg, kernels);
}

Clip square_clip(int64_t extent, int64_t size) {
  Clip clip;
  clip.extent_nm = extent;
  const int64_t c = extent / 2;
  clip.shapes.push_back({c - size / 2, c - size / 2, c + size / 2, c + size / 2});
  return clip;
}

TEST(Fragmentation, CoversEveryEdge) {
  auto sim = make_sim();
  OpcEngine opc(sim, OpcParams{});
  Clip clip = square_clip(1024, 256);
  auto frags = opc.fragment(clip);
  // 256 nm edges at 128 nm fragments -> 2 per edge, 4 edges.
  EXPECT_EQ(frags.size(), 8u);
  int64_t left_len = 0;
  for (const Fragment& f : frags) {
    EXPECT_LT(f.span0, f.span1);
    if (f.edge == Fragment::Edge::kLeft) left_len += f.span1 - f.span0;
  }
  EXPECT_EQ(left_len, 256);
}

TEST(Fragmentation, SmallShapeGetsOneFragmentPerEdge) {
  auto sim = make_sim();
  OpcEngine opc(sim, OpcParams{});
  Clip clip = square_clip(1024, 72);
  EXPECT_EQ(opc.fragment(clip).size(), 4u);
}

TEST(OffsetRasterization, PositiveOffsetGrowsArea) {
  auto sim = make_sim();
  OpcEngine opc(sim, OpcParams{});
  Clip clip = square_clip(1024, 256);
  auto frags = opc.fragment(clip);
  const float base = opc.rasterize_with_offsets(clip, frags).sum();
  for (Fragment& f : frags) f.offset_nm = 16.0;
  const float grown = opc.rasterize_with_offsets(clip, frags).sum();
  for (Fragment& f : frags) f.offset_nm = -16.0;
  const float shrunk = opc.rasterize_with_offsets(clip, frags).sum();
  EXPECT_GT(grown, base);
  EXPECT_LT(shrunk, base);
  // Uniform 16 nm growth of a 256 nm square: area (288^2-256^2)nm^2.
  const float expected_delta = (288.f * 288.f - 256.f * 256.f) / (16.f * 16.f);
  EXPECT_NEAR(grown - base, expected_delta, expected_delta * 0.1f);
}

TEST(OffsetRasterization, ZeroOffsetsMatchPlainRasterization) {
  auto sim = make_sim();
  OpcEngine opc(sim, OpcParams{});
  Clip clip = square_clip(1024, 200);
  auto frags = opc.fragment(clip);
  Tensor a = opc.rasterize_with_offsets(clip, frags);
  Tensor b = layout::rasterize(clip, sim.config().pixel_nm);
  EXPECT_EQ(litho::test::max_abs_diff(a, b), 0.f);
}

TEST(Epe, MeasuredSignMatchesPrintBias) {
  auto sim = make_sim();
  OpcEngine opc(sim, OpcParams{});
  // A large square under-prints at corners / edges with threshold resist:
  // un-OPC'ed EPE should be clearly nonzero somewhere.
  Clip clip = square_clip(1024, 200);
  auto frags = opc.fragment(clip);
  Tensor aerial = sim.aerial(layout::rasterize(clip, sim.config().pixel_nm));
  opc.measure_epe(clip, aerial, frags);
  double max_abs = 0;
  for (const Fragment& f : frags) max_abs = std::max(max_abs, std::abs(f.last_epe_nm));
  EXPECT_GT(max_abs, 1.0) << "expected measurable EPE before correction";
}

TEST(Opc, ConvergesOnIsolatedSquare) {
  auto sim = make_sim();
  OpcParams params;
  params.gain = 0.5;
  OpcEngine opc(sim, params);
  Clip clip = square_clip(1024, 200);
  const auto iters = opc.run(clip, 8);
  ASSERT_EQ(iters.size(), 9u);
  EXPECT_LT(iters.back().mean_abs_epe, iters.front().mean_abs_epe * 0.7)
      << "OPC failed to reduce EPE";
  for (const auto& it : iters) {
    EXPECT_GE(it.mask.min(), 0.f);
    EXPECT_LE(it.mask.max(), 1.f);
  }
}

TEST(Opc, ImprovesMultiFeatureClip) {
  auto sim = make_sim();
  OpcEngine opc(sim, OpcParams{});
  Clip clip;
  clip.extent_nm = 1024;
  clip.shapes = {{128, 128, 328, 208},    // horizontal bar
                 {512, 400, 584, 472},    // contact
                 {200, 600, 800, 680}};   // long wire
  const auto iters = opc.run(clip, 8);
  EXPECT_LT(iters.back().mean_abs_epe, iters.front().mean_abs_epe);
}

TEST(Sraf, InsertedBarsRespectClearanceAndBounds) {
  Clip clip = square_clip(2048, 200);
  Clip with = insert_srafs(clip, /*sraf_nm=*/40, /*distance_nm=*/120,
                           /*min_clearance_nm=*/80);
  EXPECT_GT(with.shapes.size(), clip.shapes.size());
  for (size_t i = clip.shapes.size(); i < with.shapes.size(); ++i) {
    const Rect& s = with.shapes[i];
    EXPECT_GE(s.x0, 0);
    EXPECT_GE(s.y0, 0);
    EXPECT_LE(s.x1, clip.extent_nm);
    EXPECT_LE(s.y1, clip.extent_nm);
    // Clearance to the original shape.
    EXPECT_GE(s.spacing_to(clip.shapes[0]), 80);
  }
}

TEST(Sraf, AssistBarsDoNotPrint) {
  auto sim = make_sim();
  Clip clip = square_clip(1024, 200);
  Clip with = insert_srafs(clip, 32, 128, 80);
  ASSERT_GT(with.shapes.size(), 1u);
  Tensor resist = sim.simulate(layout::rasterize(with, sim.config().pixel_nm));
  // Sample the center of the first SRAF: it must not print.
  const Rect& s = with.shapes[1];
  const int64_t r = (s.y0 + s.y1) / 2 / 16;
  const int64_t c = (s.x0 + s.x1) / 2 / 16;
  EXPECT_FLOAT_EQ(resist.at({r, c}), 0.f);
}

TEST(Sraf, SkipsWhenBlockedByNeighbors) {
  Clip clip;
  clip.extent_nm = 1024;
  // Two shapes 200 nm apart: no SRAF fits between them with 80 clearance.
  clip.shapes = {{200, 400, 400, 600}, {600, 400, 800, 600}};
  Clip with = insert_srafs(clip, 40, 80, 80);
  for (size_t i = 2; i < with.shapes.size(); ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_GE(with.shapes[i].spacing_to(clip.shapes[j]), 80);
    }
  }
}

}  // namespace
}  // namespace litho::opc
