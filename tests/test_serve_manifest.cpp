// Tests for doinn_serve's manifest tailing (apps/manifest_tail.h):
// incremental consumption, unterminated-line handling, --once EOF
// semantics, CRLF stripping, and the truncation/rotation regression — a
// manifest that shrinks below the consumed offset used to leave the
// server idle forever (the stale offset seeked past EOF, so every poll
// read nothing); it must instead reset and reprocess from the start.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "../apps/manifest_tail.h"

namespace litho {
namespace {

class ManifestTailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/litho_manifest_tail_test.txt";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write_file(const std::string& content) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << content;
  }
  void append_file(const std::string& content) {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << content;
  }

  std::string path_;
};

TEST_F(ManifestTailTest, ConsumesAppendedLinesIncrementally) {
  std::streamoff offset = 0;
  write_file("a.pgm a.out\nb.pgm b.out\n");
  apps::ManifestTail tail = apps::read_manifest_tail(path_, offset);
  EXPECT_FALSE(tail.restarted);
  ASSERT_EQ(tail.lines.size(), 2u);
  EXPECT_EQ(tail.lines[0], "a.pgm a.out");
  EXPECT_EQ(tail.lines[1], "b.pgm b.out");

  // Nothing new: the offset prevents re-reading.
  tail = apps::read_manifest_tail(path_, offset);
  EXPECT_TRUE(tail.lines.empty());

  append_file("c.pgm c.out\n");
  tail = apps::read_manifest_tail(path_, offset);
  ASSERT_EQ(tail.lines.size(), 1u);
  EXPECT_EQ(tail.lines[0], "c.pgm c.out");
}

TEST_F(ManifestTailTest, UnterminatedLineWaitsForNextPoll) {
  std::streamoff offset = 0;
  write_file("a.pgm a.out\nb.pgm b.o");  // producer mid-append
  apps::ManifestTail tail = apps::read_manifest_tail(path_, offset);
  ASSERT_EQ(tail.lines.size(), 1u);
  EXPECT_EQ(tail.lines[0], "a.pgm a.out");

  append_file("ut\n");  // line completed
  tail = apps::read_manifest_tail(path_, offset);
  ASSERT_EQ(tail.lines.size(), 1u);
  EXPECT_EQ(tail.lines[0], "b.pgm b.out");
}

TEST_F(ManifestTailTest, EofEndsLastLineInOnceMode) {
  std::streamoff offset = 0;
  write_file("a.pgm a.out\nb.pgm b.out");  // no trailing newline
  apps::ManifestTail tail =
      apps::read_manifest_tail(path_, offset, /*eof_ends_last_line=*/true);
  ASSERT_EQ(tail.lines.size(), 2u);
  EXPECT_EQ(tail.lines[1], "b.pgm b.out");
}

TEST_F(ManifestTailTest, StripsCarriageReturns) {
  std::streamoff offset = 0;
  write_file("a.pgm a.out\r\nb.pgm b.out\r\n");
  apps::ManifestTail tail = apps::read_manifest_tail(path_, offset);
  ASSERT_EQ(tail.lines.size(), 2u);
  EXPECT_EQ(tail.lines[0], "a.pgm a.out");
  EXPECT_EQ(tail.lines[1], "b.pgm b.out");
}

TEST_F(ManifestTailTest, MissingFileYieldsEmptyTail) {
  std::streamoff offset = 0;
  apps::ManifestTail tail =
      apps::read_manifest_tail("/tmp/litho_no_such_manifest.txt", offset);
  EXPECT_TRUE(tail.lines.empty());
  EXPECT_FALSE(tail.restarted);
  EXPECT_EQ(offset, 0);
}

TEST_F(ManifestTailTest, TruncationBelowOffsetRestartsInsteadOfStalling) {
  // Regression: consume a manifest, then have the producer truncate or
  // rotate it to something smaller. The stale offset now points past EOF;
  // without shrink detection every subsequent poll read an empty tail and
  // the server idled forever while new requests accumulated.
  std::streamoff offset = 0;
  write_file("a.pgm a.out\nb.pgm b.out\nc.pgm c.out\n");
  apps::ManifestTail tail = apps::read_manifest_tail(path_, offset);
  ASSERT_EQ(tail.lines.size(), 3u);
  const std::streamoff consumed = offset;
  ASSERT_GT(consumed, 0);

  write_file("x.pgm x.out\n");  // rotated: shorter than the consumed offset
  tail = apps::read_manifest_tail(path_, offset);
  EXPECT_TRUE(tail.restarted);
  ASSERT_EQ(tail.lines.size(), 1u) << "shrunk manifest was never re-read";
  EXPECT_EQ(tail.lines[0], "x.pgm x.out");
  EXPECT_LT(offset, consumed);

  // And tailing continues normally from the new file.
  append_file("y.pgm y.out\n");
  tail = apps::read_manifest_tail(path_, offset);
  EXPECT_FALSE(tail.restarted);
  ASSERT_EQ(tail.lines.size(), 1u);
  EXPECT_EQ(tail.lines[0], "y.pgm y.out");
}

TEST_F(ManifestTailTest, RepeatedTruncationKeepsRecovering) {
  std::streamoff offset = 0;
  for (int round = 0; round < 3; ++round) {
    write_file("only.pgm only.out\n");
    apps::ManifestTail tail = apps::read_manifest_tail(path_, offset);
    ASSERT_EQ(tail.lines.size(), 1u) << "round " << round;
    EXPECT_EQ(tail.lines[0], "only.pgm only.out");
    // Grow the file so the next truncation is a real shrink.
    append_file("extra.pgm extra.out\n");
    tail = apps::read_manifest_tail(path_, offset);
    ASSERT_EQ(tail.lines.size(), 1u);
  }
}

}  // namespace
}  // namespace litho
