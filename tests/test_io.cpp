#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "io/io.h"
#include "test_util.h"

namespace litho::io {
namespace {

TEST(Pgm, WritesValidHeaderAndPixels) {
  Tensor img({2, 3}, {0.f, 0.5f, 1.f, 1.f, 0.25f, 0.75f});
  const std::string path = "/tmp/litho_test.pgm";
  write_pgm(path, img);
  std::ifstream is(path, std::ios::binary);
  std::string magic;
  int w, h, maxv;
  is >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 3);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxv, 255);
  is.get();  // single whitespace after header
  unsigned char px[6];
  is.read(reinterpret_cast<char*>(px), 6);
  EXPECT_EQ(px[0], 0);
  EXPECT_EQ(px[1], 128);
  EXPECT_EQ(px[2], 255);
  std::filesystem::remove(path);
}

TEST(Pgm, AutoRangeWhenLoEqualsHi) {
  Tensor img({1, 2}, {-3.f, 5.f});
  const std::string path = "/tmp/litho_test_auto.pgm";
  write_pgm(path, img, 0.f, 0.f);  // auto range
  std::ifstream is(path, std::ios::binary);
  std::string line;
  std::getline(is, line);
  std::getline(is, line);
  std::getline(is, line);
  unsigned char px[2];
  is.read(reinterpret_cast<char*>(px), 2);
  EXPECT_EQ(px[0], 0);
  EXPECT_EQ(px[1], 255);
  std::filesystem::remove(path);
}

TEST(Pgm, RejectsNon2D) {
  EXPECT_THROW(write_pgm("/tmp/x.pgm", Tensor({2, 2, 2})),
               std::invalid_argument);
}

TEST(Ppm, WritesColorPlanes) {
  Tensor r = Tensor::ones({2, 2});
  Tensor g = Tensor::zeros({2, 2});
  Tensor b = Tensor::zeros({2, 2});
  const std::string path = "/tmp/litho_test.ppm";
  write_ppm(path, r, g, b);
  std::ifstream is(path, std::ios::binary);
  std::string magic;
  is >> magic;
  EXPECT_EQ(magic, "P6");
  std::filesystem::remove(path);
}

TEST(TensorContainer, RoundTripsMultipleTensors) {
  auto rng = test::rng();
  std::map<std::string, Tensor> dict;
  dict.emplace("a", Tensor::randn({3, 4}, rng));
  dict.emplace("b.nested.name", Tensor::randn({2, 2, 2}, rng));
  dict.emplace("scalarish", Tensor({1}, {42.f}));
  const std::string path = "/tmp/litho_test_container.bin";
  save_tensors(path, dict);
  const auto loaded = load_tensors(path);
  ASSERT_EQ(loaded.size(), 3u);
  for (const auto& [k, v] : dict) {
    ASSERT_TRUE(loaded.count(k)) << k;
    EXPECT_EQ(loaded.at(k).shape(), v.shape());
    EXPECT_EQ(test::max_abs_diff(loaded.at(k), v), 0.f);
  }
  std::filesystem::remove(path);
}

TEST(TensorContainer, RejectsBadMagic) {
  const std::string path = "/tmp/litho_bad_magic.bin";
  std::ofstream(path, std::ios::binary) << "NOPE-this-is-not-a-container";
  EXPECT_THROW(load_tensors(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TensorContainer, RejectsTruncatedFile) {
  const std::string path = "/tmp/litho_truncated.bin";
  {
    std::map<std::string, Tensor> dict;
    dict.emplace("t", Tensor::ones({64}));
    save_tensors(path, dict);
  }
  // Truncate the payload.
  std::filesystem::resize_file(path, 40);
  EXPECT_THROW(load_tensors(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TensorContainer, MissingFileThrows) {
  EXPECT_THROW(load_tensors("/tmp/litho_does_not_exist.bin"),
               std::runtime_error);
}

TEST(Fs, FileExistsAndEnsureDir) {
  EXPECT_FALSE(file_exists("/tmp/litho_no_such_file"));
  ensure_dir("/tmp/litho_test_dir/nested");
  EXPECT_TRUE(std::filesystem::is_directory("/tmp/litho_test_dir/nested"));
  std::filesystem::remove_all("/tmp/litho_test_dir");
}

}  // namespace
}  // namespace litho::io
