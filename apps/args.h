// Minimal --flag argv parser shared by the app front ends. A flag may carry
// a value (`--tile 128`) or stand alone as a boolean (`--once`, stored as
// "1"); a standalone flag is recognized when the next token is another flag
// or the arguments end, so a trailing `--flag` is never dropped. Values may
// legitimately start with '-' (e.g. `--defocus -25`) as long as they are
// not themselves "--"-prefixed.
#pragma once

#include <cstring>
#include <map>
#include <stdexcept>
#include <string>

namespace litho::apps {

class Args {
 public:
  /// Parses argv[start..argc); @p start skips the program name and any
  /// subcommand tokens (doinn_cli passes 2, doinn_serve 1).
  Args(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        throw std::runtime_error(std::string("expected --flag, got ") +
                                 argv[i]);
      }
      const std::string key = argv[i] + 2;
      if (key.empty()) throw std::runtime_error("empty flag name");
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[i + 1];
        ++i;
      } else {
        values_[key] = "1";  // boolean form
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  /// Required flag: throws when absent.
  std::string get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      throw std::runtime_error("missing required flag --" + key);
    }
    return it->second;
  }

  /// Optional flag: returns @p fallback when absent (an empty fallback is a
  /// legitimate value, not a "required" marker).
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it != values_.end() ? it->second : fallback;
  }

  /// Integer flag with strict parsing: the whole value must be a decimal
  /// integer ("12x", "abc", "" and out-of-range values all throw
  /// std::runtime_error naming the flag), so a typo'd `--max-batch 8q`
  /// fails loudly instead of silently truncating.
  int64_t get_int(const std::string& key, int64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    size_t consumed = 0;
    int64_t parsed = 0;
    try {
      parsed = std::stoll(it->second, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed == 0 || consumed != it->second.size()) {
      throw std::runtime_error("flag --" + key + " expects an integer, got '" +
                               it->second + "'");
    }
    return parsed;
  }

  /// get_int plus a positivity check — for counts and capacities where 0 or
  /// a negative value can only be a mistake.
  int64_t get_positive_int(const std::string& key, int64_t fallback) const {
    const int64_t v = get_int(key, fallback);
    if (v <= 0) {
      throw std::runtime_error("flag --" + key + " expects a positive value, got " +
                               std::to_string(v));
    }
    return v;
  }

  /// Floating-point flag with the same strict full-value parsing as
  /// get_int.
  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    size_t consumed = 0;
    double parsed = 0.0;
    try {
      parsed = std::stod(it->second, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed == 0 || consumed != it->second.size()) {
      throw std::runtime_error("flag --" + key + " expects a number, got '" +
                               it->second + "'");
    }
    return parsed;
  }

  bool get_bool(const std::string& key) const {
    const auto it = values_.find(key);
    return it != values_.end() && it->second != "0" && it->second != "false";
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace litho::apps
