// doinn_serve — long-lived serving front end for the DOINN inference
// runtime, built on the dynamic-batching request scheduler.
//
//   doinn_serve --weights weights.bin --manifest requests.txt
//               [--results results.txt] [--threads N] [--poll-ms 50]
//               [--max-batch 8] [--max-delay-us 2000] [--queue-cap 64]
//               [--once] [--trace-out trace.json] [--metrics-out metrics.json]
//
// The server watches a request manifest: a text file with one request per
// line, `<mask_path> <out_path>` (masks are 8-bit PGM, outputs are written
// as binarized contour PGMs). Lines are consumed in order; new lines
// appended while the server runs are picked up on the next poll, so a
// producer can stream work in. Only newline-terminated lines are consumed
// (a line still being appended waits for the next poll).
//
// Concurrency model: the main thread reads masks and submits them to a
// runtime::Scheduler, whose dispatcher coalesces queued tile-sized masks
// into single predict_batch calls (flushing on --max-batch or the
// --max-delay-us deadline) and routes oversized masks to the parallel
// large-tile path. Results are bitwise identical to per-request predict
// regardless of how requests were coalesced. A writer thread consumes
// completed futures in submission order and appends to the results file.
//
// Backpressure: the scheduler's queue is bounded at --queue-cap requests;
// when a burst fills it, submission (and therefore manifest consumption)
// blocks until the dispatcher drains, so memory stays bounded no matter how
// fast the producer appends.
//
// Control:
//   - a line consisting of `__shutdown__` drains in-flight work and stops;
//   - `--once` processes the manifest's current contents and exits
//     (batch mode, no watching).
//
// Each completed request appends `<mask> <out> <status> <latency_ms>` to
// the results file (latency covers read + queueing + inference + write).
// On shutdown the server prints request count, error count, p50/p99
// latency, throughput, and the scheduler's batching stats.
//
// Observability (docs/ARCHITECTURE.md "Observability"):
//   - `--trace-out trace.json` enables per-request tracing and writes a
//     Chrome Trace Event Format file on shutdown (view in chrome://tracing
//     or Perfetto; validate/summarize with scripts/trace_summary.py). Each
//     manifest line gets a request id carried through serve.ingest ->
//     sched.queue_wait -> sched.dispatch -> serve.write.
//   - `--metrics-out metrics.json` writes the global metrics registry
//     (serve.* + scheduler.* namespaces) on shutdown.
//   - SIGUSR1 dumps both files mid-run without stopping the server
//     (best-effort snapshots; the shutdown dump is exact).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <fstream>
#include <future>
#include <csignal>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "args.h"
#include "io/io.h"
#include "runtime/engine.h"
#include "runtime/metrics_registry.h"
#include "runtime/scheduler.h"
#include "runtime/trace.h"

using namespace litho;

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// A submitted request waiting for its contour: the future resolved by the
/// scheduler plus everything the writer needs to finish the request.
struct PendingRequest {
  std::future<Tensor> contour;
  std::string mask_path;
  std::string out_path;
  Clock::time_point t0;
  uint64_t id = 0;  // manifest-order request id, carried through the trace
};

/// Bounded FIFO hand-off from the submitting main thread to the writer
/// thread. Completed futures are consumed in submission order, which
/// matches the scheduler's dispatch order closely enough that the writer
/// rarely blocks. push() blocking on a full queue extends the scheduler's
/// backpressure through the egress stage: resolved contours can't pile up
/// faster than the writer persists them, so server memory stays bounded
/// even when the output filesystem is the bottleneck.
class CompletionQueue {
 public:
  explicit CompletionQueue(size_t cap) : cap_(cap) {}
  void push(PendingRequest req) {
    std::unique_lock<std::mutex> lock(mutex_);
    space_cv_.wait(lock, [this] { return items_.size() < cap_; });
    items_.push_back(std::move(req));
    cv_.notify_one();
  }
  /// Signals that no further push() will happen; pop() returns false once
  /// the queue is empty.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    cv_.notify_all();
  }
  bool pop(PendingRequest& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    space_cv_.notify_one();
    return true;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable space_cv_;
  std::deque<PendingRequest> items_;
  const size_t cap_;
  bool closed_ = false;
};

/// Serving-layer metrics, resolved once from the global registry (the
/// scheduler records its scheduler.* metrics into the same registry, so
/// --metrics-out dumps both in one document). The bounded-reservoir latency
/// histogram keeps O(1) stats memory in a long-lived server.
struct ServeStats {
  std::mutex results_mutex;  // serializes results-file appends
  runtime::Counter& ok = runtime::MetricsRegistry::global().counter(
      "serve.requests_ok");
  runtime::Counter& errors = runtime::MetricsRegistry::global().counter(
      "serve.requests_error");
  runtime::Histogram& latency_ms = runtime::MetricsRegistry::global()
      .histogram("serve.latency_ms");
};

void record_error(ServeStats& stats, const std::string& results_path,
                  const std::string& mask_path, const std::string& out_path,
                  const std::string& error, double ms) {
  stats.errors.add();
  stats.latency_ms.record(ms);
  std::lock_guard<std::mutex> lock(stats.results_mutex);
  std::fprintf(stderr, "request %s failed: %s\n", mask_path.c_str(),
               error.c_str());
  std::ofstream results(results_path, std::ios::app);
  results << mask_path << ' ' << out_path << " error " << ms << '\n';
}

/// Writer loop: finishes requests in submission order — waits for the
/// contour, writes the output PGM, appends the results line, records the
/// end-to-end latency.
void writer_loop(CompletionQueue& completions, const std::string& results_path,
                 ServeStats& stats) {
  runtime::trace::set_thread_name("serve-writer");
  PendingRequest req;
  while (completions.pop(req)) {
    bool ok = true;
    std::string error;
    {
      DOINN_TRACE_SCOPE("serve.write", "serve", "req",
                        static_cast<int64_t>(req.id));
      try {
        const Tensor contour = req.contour.get();
        io::write_pgm(req.out_path, contour);
      } catch (const std::exception& e) {
        ok = false;
        error = e.what();
      }
    }
    const double ms = ms_between(req.t0, Clock::now());
    if (!ok) {
      record_error(stats, results_path, req.mask_path, req.out_path, error, ms);
      continue;
    }
    stats.ok.add();
    stats.latency_ms.record(ms);
    std::lock_guard<std::mutex> lock(stats.results_mutex);
    std::ofstream results(results_path, std::ios::app);
    results << req.mask_path << ' ' << req.out_path << " ok " << ms << '\n';
  }
}

// SIGUSR1 => dump trace + metrics on the next poll iteration. The handler
// only flips an atomic flag; file I/O happens on the main thread.
std::atomic<bool> g_dump_requested{false};

#ifdef SIGUSR1
extern "C" void on_sigusr1(int) {
  g_dump_requested.store(true, std::memory_order_relaxed);
}
#endif

/// Writes trace and/or metrics dumps for whichever outputs were requested.
void dump_observability(const std::string& trace_out,
                        const std::string& metrics_out) {
  if (!trace_out.empty() && runtime::trace::write_json(trace_out)) {
    std::fprintf(stderr, "doinn_serve: wrote trace to %s\n",
                 trace_out.c_str());
  }
  if (!metrics_out.empty() &&
      runtime::MetricsRegistry::global().write_json(metrics_out)) {
    std::fprintf(stderr, "doinn_serve: wrote metrics to %s\n",
                 metrics_out.c_str());
  }
}

void usage() {
  std::printf(
      "usage: doinn_serve --weights weights.bin --manifest requests.txt\n"
      "                   [--results out.txt] [--threads N] [--poll-ms 50]\n"
      "                   [--max-batch 8] [--max-delay-us 2000]\n"
      "                   [--queue-cap 64] [--once]\n"
      "                   [--trace-out trace.json] [--metrics-out m.json]\n"
      "manifest lines: <mask.pgm> <contour_out.pgm>; `__shutdown__` stops\n"
      "the server. --max-batch/--max-delay-us tune request coalescing;\n"
      "--queue-cap bounds the request queue (submission blocks when full).\n"
      "--trace-out enables tracing and writes Chrome Trace Event JSON on\n"
      "shutdown; --metrics-out writes a metrics snapshot; SIGUSR1 dumps\n"
      "both mid-run. See the header of apps/doinn_serve.cpp for details.\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const apps::Args args(argc, argv, /*start=*/1);
    if (args.get_bool("help") || !args.has("weights") ||
        !args.has("manifest")) {
      usage();
      return args.get_bool("help") ? 0 : 2;
    }
    const std::string manifest_path = args.get("manifest");
    const std::string results_path =
        args.get("results", manifest_path + ".results");
    const bool once = args.get_bool("once");
    const long poll_ms = std::max<long>(1, args.get_int("poll-ms", 50));
    const std::string trace_out = args.get("trace-out", "");
    const std::string metrics_out = args.get("metrics-out", "");
    if (!trace_out.empty()) {
      runtime::trace::set_enabled(true);
#if !DOINN_TRACING_ENABLED
      std::fprintf(stderr,
                   "warning: --trace-out given but tracing was compiled out "
                   "(DOINN_TRACING=OFF); the trace will be empty\n");
#endif
    }
    runtime::trace::set_thread_name("serve-main");
#ifdef SIGUSR1
    std::signal(SIGUSR1, on_sigusr1);
#endif

    runtime::SchedulerOptions sched_opts;
    sched_opts.max_batch = static_cast<int>(args.get_positive_int("max-batch", 8));
    sched_opts.max_delay_us = args.get_int("max-delay-us", 2000);
    sched_opts.queue_cap = static_cast<int>(args.get_positive_int(
        "queue-cap", std::max(64, 8 * sched_opts.max_batch)));
    if (sched_opts.max_delay_us < 0) {
      std::fprintf(stderr, "error: --max-delay-us must be >= 0\n");
      return 2;
    }
    if (sched_opts.queue_cap < sched_opts.max_batch) {
      std::fprintf(stderr, "error: --queue-cap must be >= --max-batch\n");
      return 2;
    }

    runtime::EngineOptions opts;
    opts.num_threads = static_cast<int>(args.get_int("threads", 0));
    runtime::InferenceEngine engine(args.get("weights"), opts);
    sched_opts.metrics = &runtime::MetricsRegistry::global();
    runtime::Scheduler scheduler(engine, sched_opts);
    std::printf(
        "doinn_serve: %d threads, %lld px tile model, batch<=%d within "
        "%lld us, queue cap %d, watching %s\n",
        engine.pool().size(), static_cast<long long>(engine.config().tile),
        sched_opts.max_batch, static_cast<long long>(sched_opts.max_delay_us),
        sched_opts.queue_cap, manifest_path.c_str());
    std::fflush(stdout);

    ServeStats stats;
    CompletionQueue completions(static_cast<size_t>(sched_opts.queue_cap));
    std::thread writer(
        [&completions, &results_path, &stats] {
          writer_loop(completions, results_path, stats);
        });

    std::streamoff consumed_bytes = 0;  // offset just past the last
                                        // newline-terminated line consumed
    size_t consumed_lines = 0;
    uint64_t next_request_id = 0;  // manifest order; high bit stays clear,
                                   // disjoint from scheduler-internal ids
    bool shutdown = false;
    const auto t_start = Clock::now();
    // From here until writer.join() an escaping exception must still drain
    // the scheduler and join the writer — destroying a joinable std::thread
    // calls std::terminate, turning a reportable error into an abort.
    try {
    while (!shutdown) {
      // Checked first so an idle server (no fresh manifest lines) still
      // honors a SIGUSR1 dump on its next poll.
      if (g_dump_requested.exchange(false, std::memory_order_relaxed)) {
        dump_observability(trace_out, metrics_out);
      }
      std::vector<std::pair<std::string, std::string>> fresh;
      {
        // Resume from the stored offset (no quadratic re-scan) and only
        // consume newline-terminated lines: a line the producer is still
        // appending is left for the next poll instead of being read
        // truncated and then skipped forever.
        std::ifstream manifest(manifest_path, std::ios::binary);
        manifest.seekg(consumed_bytes);
        std::string tail((std::istreambuf_iterator<char>(manifest)),
                         std::istreambuf_iterator<char>());
        // In --once mode there is no next poll, so EOF terminates the final
        // line even without a newline.
        if (once && !tail.empty() && tail.back() != '\n') tail += '\n';
        const size_t complete = tail.rfind('\n');
        if (complete == std::string::npos) {
          if (once) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
          continue;
        }
        consumed_bytes += static_cast<std::streamoff>(complete + 1);
        std::istringstream lines(tail.substr(0, complete + 1));
        std::string line;
        while (std::getline(lines, line)) {
          ++consumed_lines;
          if (!line.empty() && line.back() == '\r') line.pop_back();
          if (line.empty() || line[0] == '#') continue;
          if (line == "__shutdown__") {
            shutdown = true;
            break;
          }
          std::istringstream fields(line);
          std::string mask_path, out_path;
          if (!(fields >> mask_path >> out_path)) {
            std::fprintf(stderr, "skipping malformed manifest line %zu: %s\n",
                         consumed_lines, line.c_str());
            continue;
          }
          fresh.emplace_back(std::move(mask_path), std::move(out_path));
        }
      }
      for (auto& req : fresh) {
        const auto t0 = Clock::now();
        const uint64_t rid = ++next_request_id;
        try {
          // submit() blocks while the scheduler queue is full, which
          // propagates backpressure all the way to manifest consumption.
          // The ingest span therefore covers read + any backpressure stall.
          DOINN_TRACE_SCOPE("serve.ingest", "serve", "req",
                            static_cast<int64_t>(rid));
          PendingRequest pending;
          pending.contour = scheduler.submit(io::read_pgm(req.first), rid);
          pending.mask_path = req.first;
          pending.out_path = req.second;
          pending.t0 = t0;
          pending.id = rid;
          completions.push(std::move(pending));
        } catch (const std::exception& e) {
          record_error(stats, results_path, req.first, req.second, e.what(),
                       ms_between(t0, Clock::now()));
        }
      }
      if (shutdown || once) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
    } catch (...) {
      scheduler.shutdown();
      completions.close();
      writer.join();
      throw;
    }
    scheduler.shutdown();  // drain: every pending future resolves
    completions.close();
    writer.join();
    const double total_s = ms_between(t_start, Clock::now()) / 1e3;
    // Quiescent now (dispatcher joined, writer joined): this dump is exact.
    dump_observability(trace_out, metrics_out);

    const runtime::SchedulerStats sched = scheduler.stats();
    const int64_t n = stats.ok.value();
    const int64_t errors = stats.errors.value();
    std::printf("served %lld requests (%lld errors) in %.2f s\n",
                static_cast<long long>(n), static_cast<long long>(errors),
                total_s);
    if (n > 0) {
      const runtime::Histogram::Snapshot lat = stats.latency_ms.snapshot();
      std::printf("latency p50 %.1f ms, p99 %.1f ms; throughput %.2f req/s\n",
                  lat.p50, lat.p99,
                  static_cast<double>(n) / std::max(total_s, 1e-9));
    }
    if (sched.batches + sched.large > 0) {
      std::printf(
          "scheduler: %lld batches (%.2f avg size), %lld large-tile "
          "dispatches, max queue depth %lld\n",
          static_cast<long long>(sched.batches),
          sched.batches > 0 ? static_cast<double>(sched.batched_requests) /
                                  static_cast<double>(sched.batches)
                            : 0.0,
          static_cast<long long>(sched.large),
          static_cast<long long>(sched.max_queue_depth));
    }
    return errors == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
