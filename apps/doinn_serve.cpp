// doinn_serve — long-lived serving front end for the DOINN inference
// runtime, built on the dynamic-batching request scheduler.
//
//   doinn_serve --weights weights.bin --manifest requests.txt
//               [--results results.txt] [--threads N] [--precision fp32]
//               [--poll-ms 50] [--max-batch 8] [--max-delay-us 2000]
//               [--queue-cap 64] [--adaptive-delay] [--once]
//               [--trace-out trace.json] [--metrics-out metrics.json]
//   doinn_serve --weights weights.bin --listen <port> [--idle-timeout-s 60]
//               [same tuning flags]
//   doinn_serve --models registry.txt [--default-model NAME]
//               (--manifest ... | --listen <port>) [same tuning flags]
//
// --models serves several models from one process through a
// runtime::EnginePool: the registry file maps model names to checkpoints
// (`<name> <checkpoint> [fp32|int8|bf16] [replicas]` per line; see
// src/runtime/engine_pool.h). Replicas of a model share one set of
// prepacked weights, so extra replicas cost arenas, not weight memory.
// Socket clients route with the protocol-v2 model field; manifest lines
// route with a `model:<name>` first field. Requests naming no model go to
// --default-model (default: the registry's first entry). --replicas N
// serves N replicas of a single --weights model without a registry file.
//
// --precision selects the inference storage precision (fp32 default; int8
// and bf16 trade accuracy for speed — docs/ARCHITECTURE.md "Precision
// modes"). Weights are prepacked into the GEMM panel layout at load for
// every mode.
//
// Two front ends share the scheduler-backed serving core:
//
//   manifest mode (--manifest) watches a request manifest: a text file
//   with one request per line, `<mask_path> <out_path>` (masks are 8-bit
//   PGM, outputs are written as binarized contour PGMs). Lines are
//   consumed in order; new lines appended while the server runs are
//   picked up on the next poll, so a producer can stream work in. Only
//   newline-terminated lines are consumed (a line still being appended
//   waits for the next poll), and a truncated/rotated manifest is
//   detected and reprocessed from the start (apps/manifest_tail.h).
//
//   socket mode (--listen <port>, 0 for an ephemeral port printed on
//   startup) runs the epoll TCP front end of src/net/server.h: clients
//   send framed mask images and receive framed contours (see
//   src/net/protocol.h; apps/doinn_client.cpp is a ready-made client).
//   Backpressure is reject-based — a full scheduler queue yields an
//   immediate BUSY reply instead of blocking the event loop. SIGINT/
//   SIGTERM (or a client SHUTDOWN frame) drain and stop.
//
// Concurrency model: the main thread reads masks and submits them to a
// runtime::Scheduler, whose dispatcher coalesces queued tile-sized masks
// into single predict_batch calls (flushing on --max-batch or the
// --max-delay-us deadline) and routes oversized masks to the parallel
// large-tile path. Results are bitwise identical to per-request predict
// regardless of how requests were coalesced. A writer thread consumes
// completed futures in submission order and appends to the results file.
//
// Backpressure: the scheduler's queue is bounded at --queue-cap requests;
// when a burst fills it, submission (and therefore manifest consumption)
// blocks until the dispatcher drains, so memory stays bounded no matter how
// fast the producer appends.
//
// Control:
//   - a line consisting of `__shutdown__` drains in-flight work and stops;
//   - `--once` processes the manifest's current contents and exits
//     (batch mode, no watching).
//
// Each completed request appends `<mask> <out> <status> <latency_ms>` to
// the results file (latency covers read + queueing + inference + write).
// On shutdown the server prints request count, error count, p50/p99
// latency, throughput, and the scheduler's batching stats.
//
// Observability (docs/ARCHITECTURE.md "Observability"):
//   - `--trace-out trace.json` enables per-request tracing and writes a
//     Chrome Trace Event Format file on shutdown (view in chrome://tracing
//     or Perfetto; validate/summarize with scripts/trace_summary.py). Each
//     manifest line gets a request id carried through serve.ingest ->
//     sched.queue_wait -> sched.dispatch -> serve.write.
//   - `--metrics-out metrics.json` writes the global metrics registry
//     (serve.* + scheduler.* namespaces) on shutdown.
//   - SIGUSR1 dumps both files mid-run without stopping the server
//     (best-effort snapshots; the shutdown dump is exact).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <fstream>
#include <future>
#include <csignal>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "args.h"
#include "io/io.h"
#include "manifest_tail.h"
#include "net/server.h"
#include "runtime/engine.h"
#include "runtime/engine_pool.h"
#include "runtime/metrics_registry.h"
#include "runtime/scheduler.h"
#include "runtime/trace.h"

using namespace litho;

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// A submitted request waiting for its contour: the future resolved by the
/// scheduler plus everything the writer needs to finish the request.
struct PendingRequest {
  std::future<Tensor> contour;
  std::string mask_path;
  std::string out_path;
  Clock::time_point t0;
  uint64_t id = 0;  // manifest-order request id, carried through the trace
};

/// Bounded FIFO hand-off from the submitting main thread to the writer
/// thread. Completed futures are consumed in submission order, which
/// matches the scheduler's dispatch order closely enough that the writer
/// rarely blocks. push() blocking on a full queue extends the scheduler's
/// backpressure through the egress stage: resolved contours can't pile up
/// faster than the writer persists them, so server memory stays bounded
/// even when the output filesystem is the bottleneck.
class CompletionQueue {
 public:
  explicit CompletionQueue(size_t cap) : cap_(cap) {}
  void push(PendingRequest req) {
    std::unique_lock<std::mutex> lock(mutex_);
    space_cv_.wait(lock, [this] { return items_.size() < cap_; });
    items_.push_back(std::move(req));
    cv_.notify_one();
  }
  /// Signals that no further push() will happen; pop() returns false once
  /// the queue is empty.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    cv_.notify_all();
  }
  bool pop(PendingRequest& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    space_cv_.notify_one();
    return true;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable space_cv_;
  std::deque<PendingRequest> items_;
  const size_t cap_;
  bool closed_ = false;
};

/// Serving-layer metrics, resolved once from the global registry (the
/// scheduler records its scheduler.* metrics into the same registry, so
/// --metrics-out dumps both in one document). The bounded-reservoir latency
/// histogram keeps O(1) stats memory in a long-lived server.
struct ServeStats {
  std::mutex results_mutex;  // serializes results-file appends
  runtime::Counter& ok = runtime::MetricsRegistry::global().counter(
      "serve.requests_ok");
  runtime::Counter& errors = runtime::MetricsRegistry::global().counter(
      "serve.requests_error");
  runtime::Histogram& latency_ms = runtime::MetricsRegistry::global()
      .histogram("serve.latency_ms");
  // Failed requests get their own histogram: errors resolve on a different
  // timescale than successes (an unreadable mask fails in microseconds, a
  // failed inference after the full queue wait), and mixing them into
  // serve.latency_ms skewed the p50/p99 the SLO gate watches.
  runtime::Histogram& error_latency_ms = runtime::MetricsRegistry::global()
      .histogram("serve.error_latency_ms");
};

void record_error(ServeStats& stats, const std::string& results_path,
                  const std::string& mask_path, const std::string& out_path,
                  const std::string& error, double ms) {
  stats.errors.add();
  stats.error_latency_ms.record(ms);
  std::lock_guard<std::mutex> lock(stats.results_mutex);
  std::fprintf(stderr, "request %s failed: %s\n", mask_path.c_str(),
               error.c_str());
  std::ofstream results(results_path, std::ios::app);
  results << mask_path << ' ' << out_path << " error " << ms << '\n';
}

/// Writer loop: finishes requests in submission order — waits for the
/// contour, writes the output PGM, appends the results line, records the
/// end-to-end latency.
void writer_loop(CompletionQueue& completions, const std::string& results_path,
                 ServeStats& stats) {
  runtime::trace::set_thread_name("serve-writer");
  PendingRequest req;
  while (completions.pop(req)) {
    bool ok = true;
    std::string error;
    // Waiting for the contour and persisting it are separate spans: the
    // wait measures scheduler lag, the write measures output I/O. Folding
    // both into serve.write made every batch's non-first request look like
    // a slow filesystem.
    Tensor contour;
    {
      DOINN_TRACE_SCOPE("serve.wait", "serve", "req",
                        static_cast<int64_t>(req.id));
      try {
        contour = req.contour.get();
      } catch (const std::exception& e) {
        ok = false;
        error = e.what();
      }
    }
    if (ok) {
      DOINN_TRACE_SCOPE("serve.write", "serve", "req",
                        static_cast<int64_t>(req.id));
      try {
        io::write_pgm(req.out_path, contour);
      } catch (const std::exception& e) {
        ok = false;
        error = e.what();
      }
    }
    const double ms = ms_between(req.t0, Clock::now());
    if (!ok) {
      record_error(stats, results_path, req.mask_path, req.out_path, error, ms);
      continue;
    }
    stats.ok.add();
    stats.latency_ms.record(ms);
    std::lock_guard<std::mutex> lock(stats.results_mutex);
    std::ofstream results(results_path, std::ios::app);
    results << req.mask_path << ' ' << req.out_path << " ok " << ms << '\n';
  }
}

// SIGUSR1 => dump trace + metrics on the next poll iteration. The handler
// only flips an atomic flag; file I/O happens on the main thread.
std::atomic<bool> g_dump_requested{false};

#ifdef SIGUSR1
extern "C" void on_sigusr1(int) {
  g_dump_requested.store(true, std::memory_order_relaxed);
}
#endif

// SIGINT/SIGTERM in --listen mode => stop and drain the socket server.
// Set before the handlers are installed; Server::stop() is
// async-signal-safe.
net::Server* g_server = nullptr;

extern "C" void on_terminate(int) {
  if (g_server != nullptr) g_server->stop();
}

/// Writes trace and/or metrics dumps for whichever outputs were requested.
void dump_observability(const std::string& trace_out,
                        const std::string& metrics_out) {
  if (!trace_out.empty() && runtime::trace::write_json(trace_out)) {
    std::fprintf(stderr, "doinn_serve: wrote trace to %s\n",
                 trace_out.c_str());
  }
  if (!metrics_out.empty() &&
      runtime::MetricsRegistry::global().write_json(metrics_out)) {
    std::fprintf(stderr, "doinn_serve: wrote metrics to %s\n",
                 metrics_out.c_str());
  }
}

void usage() {
  std::printf(
      "usage: doinn_serve --weights weights.bin --manifest requests.txt\n"
      "                   [--results out.txt] [--threads N]\n"
      "                   [--precision fp32|int8|bf16] [--poll-ms 50]\n"
      "                   [--no-graph-exec] [--no-autotune]\n"
      "                   [--int8-policy auto|always]\n"
      "                   [--max-batch 8] [--max-delay-us 2000]\n"
      "                   [--queue-cap 64] [--adaptive-delay] [--once]\n"
      "                   [--trace-out trace.json] [--metrics-out m.json]\n"
      "       doinn_serve --weights weights.bin --listen <port>\n"
      "                   [--idle-timeout-s 60]\n"
      "                   [same tuning/observability flags]\n"
      "       doinn_serve --models registry.txt [--default-model NAME]\n"
      "                   (--manifest ... | --listen <port>)\n"
      "                   [same tuning/observability flags]\n"
      "--models serves several models (and replicas) from one registry file\n"
      "(<name> <checkpoint> [fp32|int8|bf16] [replicas] per line); replicas\n"
      "of a model share one set of prepacked weights. --replicas N serves N\n"
      "replicas of a single --weights model. Manifest lines may start with\n"
      "`model:<name>` to route to a named model; socket clients use the\n"
      "protocol-v2 model field (doinn_client --model).\n"
      "manifest lines: <mask.pgm> <contour_out.pgm>; `__shutdown__` stops\n"
      "the server. --listen serves the framed TCP protocol instead (port 0\n"
      "binds an ephemeral port, printed on startup; drive it with\n"
      "doinn_client; SIGINT/SIGTERM drain and stop).\n"
      "--max-batch/--max-delay-us tune request coalescing; --adaptive-delay\n"
      "derives the flush delay from the observed arrival rate; --queue-cap\n"
      "bounds the request queue (manifest submission blocks when full;\n"
      "socket clients get a BUSY reply). --precision selects the inference\n"
      "storage precision (fp32 is bitwise-exact; int8/bf16 are faster,\n"
      "reduced-accuracy). --no-graph-exec disables the compiled static-graph\n"
      "executor (per-shape capture + arena-planned buffers); --no-autotune\n"
      "skips load-time kernel autotuning; --int8-policy auto keeps conv\n"
      "shapes where int8 doesn't pay in fp32, always packs every conv int8.\n"
      "--idle-timeout-s closes listen-mode connections\n"
      "with no activity for that long (0 disables).\n"
      "--trace-out enables tracing and\n"
      "writes Chrome Trace Event JSON on shutdown; --metrics-out writes a\n"
      "metrics snapshot; SIGUSR1 dumps both mid-run. See the header of\n"
      "apps/doinn_serve.cpp for details.\n");
}

/// Prints the per-model request/batch summary of a pool-backed server.
void print_pool_summary(const runtime::EnginePool& pool) {
  for (const runtime::ModelStats& m : pool.model_stats()) {
    std::printf(
        "model %s: %d replica%s, %lld requests (%lld errors, %lld "
        "rejected), %lld dispatches\n",
        m.name.c_str(), m.replicas, m.replicas == 1 ? "" : "s",
        static_cast<long long>(m.submitted),
        static_cast<long long>(m.failed), static_cast<long long>(m.rejected),
        static_cast<long long>(m.batches));
  }
}

/// Runs the epoll TCP front end until SIGINT/SIGTERM or a client SHUTDOWN
/// frame, then drains and prints a summary. Returns the process exit code.
/// Exactly one of @p scheduler / @p pool is non-null (single-model vs
/// multi-model serving).
int run_listen_mode(runtime::Scheduler* scheduler, runtime::EnginePool* pool,
                    uint16_t port, long idle_timeout_s, long poll_ms,
                    const std::string& trace_out,
                    const std::string& metrics_out) {
  net::ServerOptions server_opts;
  server_opts.port = port;
  server_opts.idle_timeout_ms =
      idle_timeout_s > 0 ? static_cast<int>(idle_timeout_s * 1000) : 0;
  auto server_ptr =
      pool != nullptr
          ? std::make_unique<net::Server>(*pool, server_opts,
                                          &runtime::MetricsRegistry::global())
          : std::make_unique<net::Server>(*scheduler, server_opts,
                                          &runtime::MetricsRegistry::global());
  net::Server& server = *server_ptr;
  g_server = &server;
  std::signal(SIGINT, on_terminate);
  std::signal(SIGTERM, on_terminate);
  server.set_poll_handler(static_cast<int>(poll_ms), [&] {
    if (g_dump_requested.exchange(false, std::memory_order_relaxed)) {
      dump_observability(trace_out, metrics_out);
    }
  });
  // The net-smoke script and the tests parse this line for the bound port.
  std::printf("doinn_serve: listening on port %u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  const auto t_start = Clock::now();
  server.run();
  // server.run() drained its own pending futures.
  if (pool != nullptr) {
    pool->shutdown();
  } else {
    scheduler->shutdown();
  }
  const double total_s = ms_between(t_start, Clock::now()) / 1e3;
  dump_observability(trace_out, metrics_out);

  const net::ServerStats stats = server.stats();
  std::printf(
      "served %lld requests (%lld errors, %lld busy-rejected, %lld "
      "protocol errors) over %lld connections in %.2f s\n",
      static_cast<long long>(stats.requests_ok),
      static_cast<long long>(stats.requests_error),
      static_cast<long long>(stats.busy_rejected),
      static_cast<long long>(stats.protocol_errors),
      static_cast<long long>(stats.connections_accepted), total_s);
  if (stats.requests_ok > 0) {
    const runtime::Histogram::Snapshot lat =
        runtime::MetricsRegistry::global()
            .histogram("serve.latency_ms")
            .snapshot();
    std::printf("latency p50 %.1f ms, p99 %.1f ms; throughput %.2f req/s\n",
                lat.p50, lat.p99,
                static_cast<double>(stats.requests_ok) /
                    std::max(total_s, 1e-9));
  }
  if (pool != nullptr) {
    print_pool_summary(*pool);
  } else {
    const runtime::SchedulerStats sched = scheduler->stats();
    if (sched.batches + sched.large > 0) {
      std::printf(
          "scheduler: %lld batches (%.2f avg size), %lld large-tile "
          "dispatches, %lld rejected, max queue depth %lld\n",
          static_cast<long long>(sched.batches),
          sched.batches > 0 ? static_cast<double>(sched.batched_requests) /
                                  static_cast<double>(sched.batches)
                            : 0.0,
          static_cast<long long>(sched.large),
          static_cast<long long>(sched.rejected),
          static_cast<long long>(sched.max_queue_depth));
    }
  }
  return stats.requests_error == 0 && stats.protocol_errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const apps::Args args(argc, argv, /*start=*/1);
    const bool listen_mode = args.has("listen");
    if (args.get_bool("help") ||
        (!args.has("weights") && !args.has("models")) ||
        (!args.has("manifest") && !listen_mode)) {
      usage();
      return args.get_bool("help") ? 0 : 2;
    }
    if (listen_mode && args.has("manifest")) {
      std::fprintf(stderr,
                   "error: --listen and --manifest are mutually exclusive\n");
      return 2;
    }
    if (args.has("weights") && args.has("models")) {
      std::fprintf(stderr,
                   "error: --weights and --models are mutually exclusive\n");
      return 2;
    }
    const std::string manifest_path = args.get("manifest", "");
    const std::string results_path =
        args.get("results", manifest_path + ".results");
    const bool once = args.get_bool("once");
    const long poll_ms = std::max<long>(1, args.get_int("poll-ms", 50));
    const std::string trace_out = args.get("trace-out", "");
    const std::string metrics_out = args.get("metrics-out", "");
    if (!trace_out.empty()) {
      runtime::trace::set_enabled(true);
#if !DOINN_TRACING_ENABLED
      std::fprintf(stderr,
                   "warning: --trace-out given but tracing was compiled out "
                   "(DOINN_TRACING=OFF); the trace will be empty\n");
#endif
    }
    runtime::trace::set_thread_name("serve-main");
#ifdef SIGUSR1
    std::signal(SIGUSR1, on_sigusr1);
#endif

    runtime::SchedulerOptions sched_opts;
    sched_opts.max_batch = static_cast<int>(args.get_positive_int("max-batch", 8));
    sched_opts.max_delay_us = args.get_int("max-delay-us", 2000);
    sched_opts.adaptive_delay = args.get_bool("adaptive-delay");
    sched_opts.queue_cap = static_cast<int>(args.get_positive_int(
        "queue-cap", std::max(64, 8 * sched_opts.max_batch)));
    if (sched_opts.max_delay_us < 0) {
      std::fprintf(stderr, "error: --max-delay-us must be >= 0\n");
      return 2;
    }
    if (sched_opts.queue_cap < sched_opts.max_batch) {
      std::fprintf(stderr, "error: --queue-cap must be >= --max-batch\n");
      return 2;
    }

    runtime::EngineOptions opts;
    opts.num_threads = static_cast<int>(args.get_int("threads", 0));
    opts.use_graph_executor = !args.get_bool("no-graph-exec");
    opts.autotune = !args.get_bool("no-autotune");
    try {
      opts.precision = parse_precision(args.get("precision", "fp32"));
      const std::string int8_policy = args.get("int8-policy", "auto");
      if (int8_policy == "always") {
        opts.int8_policy = runtime::EngineOptions::Int8Policy::kAlways;
      } else if (int8_policy != "auto") {
        throw std::invalid_argument("--int8-policy expects auto or always");
      }
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    sched_opts.metrics = &runtime::MetricsRegistry::global();
    const long replicas = args.get_positive_int("replicas", 1);

    // Single-model single-replica --weights keeps the original
    // engine+scheduler serving core (and its scheduler.* metric names);
    // --models or --replicas > 1 serve through an EnginePool.
    std::unique_ptr<runtime::InferenceEngine> engine;
    std::unique_ptr<runtime::Scheduler> scheduler;
    std::unique_ptr<runtime::EnginePool> pool;
    if (args.has("models") || replicas > 1) {
      std::vector<runtime::ModelSpec> specs;
      if (args.has("models")) {
        specs = runtime::parse_model_registry(args.get("models"));
        if (specs.empty()) {
          std::fprintf(stderr, "error: model registry %s lists no models\n",
                       args.get("models").c_str());
          return 2;
        }
      } else {
        runtime::ModelSpec spec;
        spec.name = "default";
        spec.checkpoint = args.get("weights");
        spec.precision = opts.precision;
        spec.replicas = static_cast<int>(replicas);
        specs.push_back(std::move(spec));
      }
      runtime::EnginePoolOptions pool_opts;
      pool_opts.engine = opts;
      pool_opts.scheduler = sched_opts;
      pool_opts.default_model = args.get("default-model", "");
      pool_opts.metrics = &runtime::MetricsRegistry::global();
      pool = std::make_unique<runtime::EnginePool>(specs, pool_opts);
      std::string models_desc;
      for (const runtime::ModelSpec& spec : specs) {
        if (!models_desc.empty()) models_desc += ", ";
        models_desc += spec.name + " (" + precision_name(spec.precision) +
                       " x" + std::to_string(spec.replicas) + ")";
      }
      std::printf(
          "doinn_serve: %zu model%s [%s], default %s, batch<=%d within "
          "%lld us%s, queue cap %d per replica, %s %s\n",
          specs.size(), specs.size() == 1 ? "" : "s", models_desc.c_str(),
          pool->default_model().c_str(), sched_opts.max_batch,
          static_cast<long long>(sched_opts.max_delay_us),
          sched_opts.adaptive_delay ? " (adaptive)" : "",
          sched_opts.queue_cap,
          listen_mode ? "serving TCP on port" : "watching",
          listen_mode ? args.get("listen").c_str() : manifest_path.c_str());
    } else {
      engine =
          std::make_unique<runtime::InferenceEngine>(args.get("weights"), opts);
      scheduler = std::make_unique<runtime::Scheduler>(*engine, sched_opts);
      std::printf(
          "doinn_serve: %d threads, %lld px tile model, %s inference, "
          "batch<=%d within %lld us%s, queue cap %d, %s %s\n",
          engine->pool().size(), static_cast<long long>(engine->config().tile),
          precision_name(engine->precision()), sched_opts.max_batch,
          static_cast<long long>(sched_opts.max_delay_us),
          sched_opts.adaptive_delay ? " (adaptive)" : "", sched_opts.queue_cap,
          listen_mode ? "serving TCP on port" : "watching",
          listen_mode ? args.get("listen").c_str() : manifest_path.c_str());
    }
    std::fflush(stdout);

    if (listen_mode) {
      const long port = args.get_int("listen", 0);
      if (port < 0 || port > 65535) {
        std::fprintf(stderr, "error: --listen port must be in [0, 65535]\n");
        return 2;
      }
      const long idle_timeout_s = args.get_int("idle-timeout-s", 60);
      return run_listen_mode(scheduler.get(), pool.get(),
                             static_cast<uint16_t>(port), idle_timeout_s,
                             poll_ms, trace_out, metrics_out);
    }

    ServeStats stats;
    CompletionQueue completions(static_cast<size_t>(sched_opts.queue_cap));
    std::thread writer(
        [&completions, &results_path, &stats] {
          writer_loop(completions, results_path, stats);
        });

    std::streamoff consumed_bytes = 0;  // offset just past the last
                                        // newline-terminated line consumed
    size_t consumed_lines = 0;
    uint64_t next_request_id = 0;  // manifest order; high bit stays clear,
                                   // disjoint from scheduler-internal ids
    bool shutdown = false;
    const auto t_start = Clock::now();
    // From here until writer.join() an escaping exception must still drain
    // the scheduler and join the writer — destroying a joinable std::thread
    // calls std::terminate, turning a reportable error into an abort.
    try {
    while (!shutdown) {
      // Checked first so an idle server (no fresh manifest lines) still
      // honors a SIGUSR1 dump on its next poll.
      if (g_dump_requested.exchange(false, std::memory_order_relaxed)) {
        dump_observability(trace_out, metrics_out);
      }
      struct FreshRequest {
        std::string model;  // "" = default model
        std::string mask_path;
        std::string out_path;
      };
      std::vector<FreshRequest> fresh;
      {
        // In --once mode there is no next poll, so EOF terminates the final
        // line even without a newline.
        apps::ManifestTail tail = apps::read_manifest_tail(
            manifest_path, consumed_bytes, /*eof_ends_last_line=*/once);
        if (tail.restarted) {
          std::fprintf(stderr,
                       "doinn_serve: manifest %s shrank (truncated or "
                       "rotated); reprocessing from the start\n",
                       manifest_path.c_str());
          consumed_lines = 0;
        }
        if (tail.lines.empty()) {
          if (once) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
          continue;
        }
        for (std::string& line : tail.lines) {
          ++consumed_lines;
          if (line.empty() || line[0] == '#') continue;
          if (line == "__shutdown__") {
            shutdown = true;
            break;
          }
          std::istringstream fields(line);
          FreshRequest req;
          std::string first;
          fields >> first;
          // An optional `model:<name>` first field routes to a named model
          // of a --models registry; without it the default model serves.
          if (first.rfind("model:", 0) == 0) {
            req.model = first.substr(6);
            if (req.model.empty() ||
                !(fields >> req.mask_path >> req.out_path)) {
              std::fprintf(stderr,
                           "skipping malformed manifest line %zu: %s\n",
                           consumed_lines, line.c_str());
              continue;
            }
          } else {
            req.mask_path = std::move(first);
            if (req.mask_path.empty() || !(fields >> req.out_path)) {
              std::fprintf(stderr,
                           "skipping malformed manifest line %zu: %s\n",
                           consumed_lines, line.c_str());
              continue;
            }
          }
          fresh.push_back(std::move(req));
        }
      }
      for (auto& req : fresh) {
        const auto t0 = Clock::now();
        const uint64_t rid = ++next_request_id;
        try {
          // submit() blocks while the scheduler queue is full, which
          // propagates backpressure all the way to manifest consumption.
          // The ingest span therefore covers read + any backpressure stall.
          DOINN_TRACE_SCOPE("serve.ingest", "serve", "req",
                            static_cast<int64_t>(rid));
          PendingRequest pending;
          if (pool != nullptr) {
            // Unknown model names throw here and land in the results file
            // as request errors, like an unreadable mask.
            pending.contour =
                pool->submit(req.model, io::read_pgm(req.mask_path), rid);
          } else if (!req.model.empty()) {
            throw std::invalid_argument(
                "manifest names model \"" + req.model +
                "\" but the server runs a single --weights model");
          } else {
            pending.contour = scheduler->submit(io::read_pgm(req.mask_path),
                                                rid);
          }
          pending.mask_path = req.mask_path;
          pending.out_path = req.out_path;
          pending.t0 = t0;
          pending.id = rid;
          completions.push(std::move(pending));
        } catch (const std::exception& e) {
          record_error(stats, results_path, req.mask_path, req.out_path,
                       e.what(), ms_between(t0, Clock::now()));
        }
      }
      if (shutdown || once) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
    } catch (...) {
      if (pool != nullptr) {
        pool->shutdown();
      } else {
        scheduler->shutdown();
      }
      completions.close();
      writer.join();
      throw;
    }
    // Drain: every pending future resolves.
    if (pool != nullptr) {
      pool->shutdown();
    } else {
      scheduler->shutdown();
    }
    completions.close();
    writer.join();
    const double total_s = ms_between(t_start, Clock::now()) / 1e3;
    // Quiescent now (dispatcher joined, writer joined): this dump is exact.
    dump_observability(trace_out, metrics_out);

    const int64_t n = stats.ok.value();
    const int64_t errors = stats.errors.value();
    std::printf("served %lld requests (%lld errors) in %.2f s\n",
                static_cast<long long>(n), static_cast<long long>(errors),
                total_s);
    if (n > 0) {
      const runtime::Histogram::Snapshot lat = stats.latency_ms.snapshot();
      std::printf("latency p50 %.1f ms, p99 %.1f ms; throughput %.2f req/s\n",
                  lat.p50, lat.p99,
                  static_cast<double>(n) / std::max(total_s, 1e-9));
    }
    if (pool != nullptr) {
      print_pool_summary(*pool);
    } else {
      const runtime::SchedulerStats sched = scheduler->stats();
      if (sched.batches + sched.large > 0) {
        std::printf(
            "scheduler: %lld batches (%.2f avg size), %lld large-tile "
            "dispatches, max queue depth %lld\n",
            static_cast<long long>(sched.batches),
            sched.batches > 0 ? static_cast<double>(sched.batched_requests) /
                                    static_cast<double>(sched.batches)
                              : 0.0,
            static_cast<long long>(sched.large),
            static_cast<long long>(sched.max_queue_depth));
      }
    }
    return errors == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
