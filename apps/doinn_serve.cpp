// doinn_serve — long-lived serving front end for the DOINN inference
// runtime (ISSUE 1 tentpole, piece 4).
//
//   doinn_serve --weights weights.bin --manifest requests.txt
//               [--results results.txt] [--threads N] [--poll-ms 50] [--once]
//
// The server watches a request manifest: a text file with one request per
// line, `<mask_path> <out_path>` (masks are 8-bit PGM, outputs are written
// as binarized contour PGMs). Lines are consumed in order; new lines
// appended while the server runs are picked up on the next poll, so a
// producer can stream work in. Only newline-terminated lines are consumed
// (a line still being appended waits for the next poll).
//
// Concurrency model: each request runs on its own dispatcher thread
// (throttled to the pool size), NOT on a pool worker — dispatcher threads
// block freely while the engine's pool executes the request's parallel
// kernels, so up to N requests overlap AND a lone large-tile request still
// saturates the pool through the clip fan-out.
//
// Control:
//   - a line consisting of `__shutdown__` drains in-flight work and stops;
//   - `--once` processes the manifest's current contents and exits
//     (batch mode, no watching).
//
// Each completed request appends `<mask> <out> <status> <latency_ms>` to
// the results file (default: manifest path + ".results"). On shutdown the
// server prints request count, error count, p50/p99 latency and throughput.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "args.h"
#include "io/io.h"
#include "runtime/engine.h"

using namespace litho;

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Nearest-rank percentile of an unsorted latency sample; q in [0, 1].
double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t rank = static_cast<size_t>(
      std::max<long long>(0, static_cast<long long>(
                                 std::ceil(q * static_cast<double>(v.size()))) -
                                 1));
  return v[std::min(rank, v.size() - 1)];
}

struct ServeStats {
  std::mutex mutex;
  std::vector<double> latencies_ms;
  int64_t errors = 0;
};

/// Caps concurrent request threads and lets the main loop drain them.
class RequestGate {
 public:
  explicit RequestGate(int limit) : limit_(limit) {}
  void acquire() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return active_ < limit_; });
    ++active_;
  }
  void release() {
    // Notify under the lock: after unlock the (detached) caller touches the
    // gate no further, so main can destroy it as soon as wait_all returns.
    std::lock_guard<std::mutex> lock(mutex_);
    --active_;
    cv_.notify_all();
  }
  void wait_all() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return active_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int active_ = 0;
  int limit_;
};

void process_request(runtime::InferenceEngine& engine, const std::string& mask_path,
                     const std::string& out_path, const std::string& results_path,
                     ServeStats& stats) {
  const auto t0 = Clock::now();
  bool ok = true;
  std::string error;
  try {
    const Tensor mask = io::read_pgm(mask_path);
    const Tensor contour = engine.predict(mask);
    io::write_pgm(out_path, contour);
  } catch (const std::exception& e) {
    ok = false;
    error = e.what();
  }
  const double ms = ms_between(t0, Clock::now());
  std::lock_guard<std::mutex> lock(stats.mutex);
  if (ok) {
    stats.latencies_ms.push_back(ms);
  } else {
    ++stats.errors;
    std::fprintf(stderr, "request %s failed: %s\n", mask_path.c_str(),
                 error.c_str());
  }
  std::ofstream results(results_path, std::ios::app);
  results << mask_path << ' ' << out_path << ' ' << (ok ? "ok" : "error")
          << ' ' << ms << '\n';
}

void usage() {
  std::printf(
      "usage: doinn_serve --weights weights.bin --manifest requests.txt\n"
      "                   [--results out.txt] [--threads N] [--poll-ms 50]\n"
      "                   [--once]\n"
      "manifest lines: <mask.pgm> <contour_out.pgm>; `__shutdown__` stops\n"
      "the server. See the header of apps/doinn_serve.cpp for details.\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const apps::Args args(argc, argv, /*start=*/1);
    if (args.get_bool("help") || !args.has("weights") ||
        !args.has("manifest")) {
      usage();
      return args.get_bool("help") ? 0 : 2;
    }
    const std::string manifest_path = args.get("manifest");
    const std::string results_path =
        args.get("results", manifest_path + ".results");
    const bool once = args.get_bool("once");
    const long poll_ms = std::max<long>(1, args.get_int("poll-ms", 50));

    runtime::EngineOptions opts;
    opts.num_threads = static_cast<int>(args.get_int("threads", 0));
    runtime::InferenceEngine engine(args.get("weights"), opts);
    std::printf("doinn_serve: %d threads, %lld px tile model, watching %s\n",
                engine.pool().size(),
                static_cast<long long>(engine.config().tile),
                manifest_path.c_str());
    std::fflush(stdout);

    ServeStats stats;
    RequestGate gate(engine.pool().size());
    std::streamoff consumed_bytes = 0;  // offset just past the last
                                        // newline-terminated line consumed
    size_t consumed_lines = 0;
    bool shutdown = false;
    const auto t_start = Clock::now();
    while (!shutdown) {
      std::vector<std::pair<std::string, std::string>> fresh;
      {
        // Resume from the stored offset (no quadratic re-scan) and only
        // consume newline-terminated lines: a line the producer is still
        // appending is left for the next poll instead of being read
        // truncated and then skipped forever.
        std::ifstream manifest(manifest_path, std::ios::binary);
        manifest.seekg(consumed_bytes);
        std::string tail((std::istreambuf_iterator<char>(manifest)),
                         std::istreambuf_iterator<char>());
        // In --once mode there is no next poll, so EOF terminates the final
        // line even without a newline.
        if (once && !tail.empty() && tail.back() != '\n') tail += '\n';
        const size_t complete = tail.rfind('\n');
        if (complete == std::string::npos) {
          if (once) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
          continue;
        }
        consumed_bytes += static_cast<std::streamoff>(complete + 1);
        std::istringstream lines(tail.substr(0, complete + 1));
        std::string line;
        while (std::getline(lines, line)) {
          ++consumed_lines;
          if (!line.empty() && line.back() == '\r') line.pop_back();
          if (line.empty() || line[0] == '#') continue;
          if (line == "__shutdown__") {
            shutdown = true;
            break;
          }
          std::istringstream fields(line);
          std::string mask_path, out_path;
          if (!(fields >> mask_path >> out_path)) {
            std::fprintf(stderr, "skipping malformed manifest line %zu: %s\n",
                         consumed_lines, line.c_str());
            continue;
          }
          fresh.emplace_back(std::move(mask_path), std::move(out_path));
        }
      }
      for (auto& req : fresh) {
        gate.acquire();  // backpressure: at most pool-size requests in flight
        std::thread([&engine, &results_path, &stats, &gate,
                     mask_path = req.first, out_path = req.second] {
          process_request(engine, mask_path, out_path, results_path, stats);
          gate.release();
        }).detach();
      }
      if (shutdown || once) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
    gate.wait_all();
    const double total_s = ms_between(t_start, Clock::now()) / 1e3;

    std::lock_guard<std::mutex> lock(stats.mutex);
    const size_t n = stats.latencies_ms.size();
    std::printf("served %zu requests (%lld errors) in %.2f s\n", n,
                static_cast<long long>(stats.errors), total_s);
    if (n > 0) {
      std::printf("latency p50 %.1f ms, p99 %.1f ms; throughput %.2f req/s\n",
                  percentile(stats.latencies_ms, 0.50),
                  percentile(stats.latencies_ms, 0.99),
                  static_cast<double>(n) / std::max(total_s, 1e-9));
    }
    return stats.errors == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
