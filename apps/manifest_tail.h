// Incremental manifest tailing for doinn_serve's watch loop, extracted so
// tests/test_serve_manifest.cpp can exercise it directly (the same pattern
// as apps/args.h).
//
// The manifest is an append-mostly text file consumed in one direction: a
// byte offset tracks how far the server has read, each poll resumes there
// (no quadratic re-scan), and only newline-terminated lines are consumed —
// a line the producer is still appending waits for the next poll instead
// of being read truncated and then skipped forever.
//
// Rotation/truncation: when the file is now *smaller* than the stored
// offset, the producer truncated or rotated it. Seeking to the stale
// offset would land past EOF and every subsequent poll would read nothing
// — the server idles forever while new lines accumulate below the offset.
// read_manifest_tail() detects the shrink, resets the offset to zero, and
// reports it so the caller can log that the file restarted.
#pragma once

#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace litho::apps {

/// One poll's worth of freshly consumed manifest lines.
struct ManifestTail {
  /// Complete lines in file order, newline (and a trailing CR) stripped.
  std::vector<std::string> lines;
  /// The file shrank below the consumed offset (truncation/rotation); the
  /// offset was reset and `lines` holds the file's content from the start.
  bool restarted = false;
};

/// Reads the newline-terminated lines past @p consumed_bytes and advances
/// the offset past them. @p eof_ends_last_line treats EOF as terminating
/// an unterminated final line (--once mode, where no next poll exists).
/// A missing/unreadable file yields an empty tail.
inline ManifestTail read_manifest_tail(const std::string& path,
                                       std::streamoff& consumed_bytes,
                                       bool eof_ends_last_line = false) {
  ManifestTail result;
  std::ifstream manifest(path, std::ios::binary);
  if (!manifest) return result;
  manifest.seekg(0, std::ios::end);
  const std::streamoff size = manifest.tellg();
  if (size >= 0 && size < consumed_bytes) {
    consumed_bytes = 0;
    result.restarted = true;
  }
  manifest.seekg(consumed_bytes);
  std::string tail((std::istreambuf_iterator<char>(manifest)),
                   std::istreambuf_iterator<char>());
  if (eof_ends_last_line && !tail.empty() && tail.back() != '\n') {
    tail += '\n';
  }
  const size_t complete = tail.rfind('\n');
  if (complete == std::string::npos) return result;
  consumed_bytes += static_cast<std::streamoff>(complete + 1);
  size_t start = 0;
  while (start <= complete) {
    const size_t nl = tail.find('\n', start);
    std::string line = tail.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    result.lines.push_back(std::move(line));
    start = nl + 1;
  }
  return result;
}

}  // namespace litho::apps
