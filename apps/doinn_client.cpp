// doinn_client — command-line client and load generator for doinn_serve's
// socket mode (--listen), speaking the framed protocol of
// src/net/protocol.h.
//
//   doinn_client --connect <host:port> --mask mask.pgm --out contour.pgm
//               [--model NAME]
//   doinn_client --connect <host:port> --manifest requests.txt
//               [--model NAME] [--concurrency 4] [--repeat 1]
//               [--busy-retry-ms 5] [--busy-retry-max-ms 250]
//   doinn_client --connect <host:port> --shutdown
//
// --model routes requests to a named model of a multi-model server
// (doinn_serve --models) via the protocol-v2 model field; manifest lines
// may override it per request with a `model:<name>` first field. Without
// either, requests go out as version-1 frames and the server's default
// model serves them.
//
// Single-request mode sends one mask and writes the contour PGM — the
// output is byte-identical to what manifest mode would have written for
// the same mask, because the wire format quantizes exactly like
// io::write_pgm and the server decodes exactly like io::read_pgm.
//
// Manifest mode reads the same `<mask.pgm> <out.pgm>` lines doinn_serve's
// --manifest mode consumes and replays them closed-loop over
// --concurrency connections (each worker thread owns one connection and
// keeps exactly one request in flight). A BUSY reply — the server's
// reject-based backpressure — is retried with capped exponential backoff
// plus jitter: the first retry waits --busy-retry-ms, each further BUSY on
// the same request doubles the wait up to --busy-retry-max-ms, and every
// wait is drawn uniformly from the upper half of the window so workers
// that were rejected together don't re-arrive together. The backoff resets
// per request, so a recovered server is probed at the base cadence again.
// --repeat N cycles the request list N times. On completion it prints
// request counts, BUSY retries, throughput, and latency percentiles.
//
// --shutdown sends a SHUTDOWN frame: the server drains in-flight work and
// exits.
//
// Exit status: 0 only when every request succeeded — any failed request,
// dead worker, or request that never completed (a worker died after
// claiming it) makes the exit code 1.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "args.h"
#include "io/io.h"
#include "net/client.h"

using namespace litho;

namespace {

using Clock = std::chrono::steady_clock;

struct Endpoint {
  std::string host;
  uint16_t port = 0;
};

Endpoint parse_endpoint(const std::string& spec) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    throw std::runtime_error("--connect expects <host:port>, got '" + spec +
                             "'");
  }
  const long port = std::stol(spec.substr(colon + 1));
  if (port <= 0 || port > 65535) {
    throw std::runtime_error("--connect port out of range in '" + spec + "'");
  }
  return {spec.substr(0, colon), static_cast<uint16_t>(port)};
}

struct Request {
  std::string model;  // "" = the --model default / server default
  std::string mask_path;
  std::string out_path;
};

std::vector<Request> load_manifest(const std::string& path) {
  std::ifstream manifest(path);
  if (!manifest) {
    throw std::runtime_error("cannot open manifest " + path);
  }
  std::vector<Request> requests;
  std::string line;
  size_t lineno = 0;
  while (std::getline(manifest, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#' || line == "__shutdown__") continue;
    std::istringstream fields(line);
    Request req;
    std::string first;
    fields >> first;
    // Same `model:<name>` routing prefix doinn_serve's manifest mode
    // understands.
    if (first.rfind("model:", 0) == 0) {
      req.model = first.substr(6);
      if (req.model.empty() || !(fields >> req.mask_path >> req.out_path)) {
        std::fprintf(stderr, "skipping malformed manifest line %zu: %s\n",
                     lineno, line.c_str());
        continue;
      }
    } else {
      req.mask_path = std::move(first);
      if (req.mask_path.empty() || !(fields >> req.out_path)) {
        std::fprintf(stderr, "skipping malformed manifest line %zu: %s\n",
                     lineno, line.c_str());
        continue;
      }
    }
    requests.push_back(std::move(req));
  }
  return requests;
}

/// Closed-loop worker: one connection, one request in flight, BUSY retried
/// with capped exponential backoff + jitter (reset per request). Workers
/// pull the next request index from a shared atomic so the load is
/// balanced regardless of per-mask cost.
struct WorkerResult {
  int64_t ok = 0;
  int64_t errors = 0;
  int64_t busy_retries = 0;
  std::vector<double> latencies_ms;
};

WorkerResult run_worker(const Endpoint& endpoint,
                        const std::vector<Request>& requests,
                        const std::string& default_model,
                        std::atomic<size_t>& next, size_t total,
                        long busy_retry_ms, long busy_retry_max_ms,
                        uint32_t seed) {
  WorkerResult result;
  std::mt19937 rng(seed);  // per-worker jitter stream
  net::Client client(endpoint.host, endpoint.port);
  for (;;) {
    const size_t i = next.fetch_add(1, std::memory_order_relaxed);
    if (i >= total) break;
    const Request& req = requests[i % requests.size()];
    const std::string& model =
        req.model.empty() ? default_model : req.model;
    try {
      const Tensor mask = io::read_pgm(req.mask_path);
      const auto t0 = Clock::now();
      long delay_ms = busy_retry_ms;  // backoff window, reset per request
      for (;;) {
        // A named model needs the version-2 frame; without one the legacy
        // version-1 frame keeps old servers usable.
        if (model.empty()) {
          client.send_predict(i + 1, mask);
        } else {
          client.send_predict(i + 1, mask, model);
        }
        net::Reply reply = client.read_reply();
        if (reply.type == net::FrameType::kBusy) {
          ++result.busy_retries;
          if (delay_ms > 0) {
            // Sleep in the upper half of the window so concurrent workers
            // spread out, then double the window up to the cap.
            const long lo = std::max<long>(1, delay_ms / 2);
            std::uniform_int_distribution<long> jitter(lo, delay_ms);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(jitter(rng)));
            delay_ms = std::min(busy_retry_max_ms, delay_ms * 2);
          }
          continue;
        }
        if (reply.type == net::FrameType::kError) {
          throw std::runtime_error(reply.error);
        }
        if (reply.type != net::FrameType::kContour ||
            reply.request_id != i + 1) {
          throw std::runtime_error("unexpected reply frame");
        }
        io::write_pgm(req.out_path, reply.contour);
        break;
      }
      result.latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count());
      ++result.ok;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "request %s failed: %s\n", req.mask_path.c_str(),
                   e.what());
      ++result.errors;
    }
  }
  return result;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

void usage() {
  std::printf(
      "usage: doinn_client --connect <host:port> --mask m.pgm --out c.pgm\n"
      "                    [--model NAME]\n"
      "       doinn_client --connect <host:port> --manifest requests.txt\n"
      "                    [--model NAME] [--concurrency 4] [--repeat 1]\n"
      "                    [--busy-retry-ms 5] [--busy-retry-max-ms 250]\n"
      "       doinn_client --connect <host:port> --shutdown\n"
      "Drives doinn_serve --listen over the framed TCP protocol. Manifest\n"
      "mode replays <mask.pgm> <out.pgm> lines closed-loop over\n"
      "--concurrency connections, retrying BUSY replies with jittered\n"
      "exponential backoff from --busy-retry-ms up to --busy-retry-max-ms\n"
      "(0 disables the wait); --shutdown asks the server to drain and\n"
      "exit. --model routes to a named model of a multi-model server\n"
      "(doinn_serve --models); manifest lines may override it per request\n"
      "with a `model:<name>` first field. Exit status is nonzero when any\n"
      "request failed or never completed.\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const apps::Args args(argc, argv, /*start=*/1);
    if (args.get_bool("help") || !args.has("connect")) {
      usage();
      return args.get_bool("help") ? 0 : 2;
    }
    const Endpoint endpoint = parse_endpoint(args.get("connect"));

    if (args.get_bool("shutdown")) {
      net::Client client(endpoint.host, endpoint.port);
      client.send_shutdown();
      std::printf("doinn_client: shutdown sent to %s:%u\n",
                  endpoint.host.c_str(),
                  static_cast<unsigned>(endpoint.port));
      return 0;
    }

    if (args.has("mask")) {
      if (!args.has("out")) {
        std::fprintf(stderr, "error: --mask requires --out\n");
        return 2;
      }
      net::Client client(endpoint.host, endpoint.port);
      const Tensor mask = io::read_pgm(args.get("mask"));
      const std::string model = args.get("model", "");
      const auto t0 = Clock::now();
      const Tensor contour =
          model.empty() ? client.predict(1, mask)
                        : client.predict(1, mask, model);
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
      io::write_pgm(args.get("out"), contour);
      std::printf("doinn_client: %s -> %s in %.1f ms\n",
                  args.get("mask").c_str(), args.get("out").c_str(), ms);
      return 0;
    }

    if (!args.has("manifest")) {
      usage();
      return 2;
    }
    const std::vector<Request> requests = load_manifest(args.get("manifest"));
    if (requests.empty()) {
      std::fprintf(stderr, "error: manifest has no requests\n");
      return 1;
    }
    const size_t concurrency =
        static_cast<size_t>(args.get_positive_int("concurrency", 4));
    const size_t repeat =
        static_cast<size_t>(args.get_positive_int("repeat", 1));
    const long busy_retry_ms =
        std::max<long>(0, args.get_int("busy-retry-ms", 5));
    const long busy_retry_max_ms = std::max(
        busy_retry_ms, std::max<long>(0, args.get_int("busy-retry-max-ms",
                                                      250)));
    const size_t total = requests.size() * repeat;
    const std::string default_model = args.get("model", "");

    std::atomic<size_t> next{0};
    std::vector<WorkerResult> results(concurrency);
    const auto t_start = Clock::now();
    {
      std::vector<std::thread> workers;
      workers.reserve(concurrency);
      for (size_t w = 0; w < concurrency; ++w) {
        workers.emplace_back([&, w] {
          try {
            results[w] = run_worker(endpoint, requests, default_model, next,
                                    total, busy_retry_ms, busy_retry_max_ms,
                                    static_cast<uint32_t>(w) * 2654435761u +
                                        1u);
          } catch (const std::exception& e) {
            std::fprintf(stderr, "worker %zu died: %s\n", w, e.what());
            results[w].errors += 1;
          }
        });
      }
      for (std::thread& t : workers) t.join();
    }
    const double total_s =
        std::chrono::duration<double>(Clock::now() - t_start).count();

    int64_t ok = 0, errors = 0, busy_retries = 0;
    std::vector<double> latencies;
    for (WorkerResult& r : results) {
      ok += r.ok;
      errors += r.errors;
      busy_retries += r.busy_retries;
      latencies.insert(latencies.end(), r.latencies_ms.begin(),
                       r.latencies_ms.end());
    }
    std::sort(latencies.begin(), latencies.end());
    std::printf(
        "doinn_client: %lld ok, %lld errors, %lld busy retries over %zu "
        "connections in %.2f s\n",
        static_cast<long long>(ok), static_cast<long long>(errors),
        static_cast<long long>(busy_retries), concurrency, total_s);
    if (!latencies.empty()) {
      std::printf(
          "latency p50 %.1f ms, p99 %.1f ms; throughput %.2f req/s\n",
          percentile(latencies, 0.50), percentile(latencies, 0.99),
          static_cast<double>(ok) / std::max(total_s, 1e-9));
    }
    // Any unrecovered failure is a nonzero exit: explicit errors, but also
    // requests that never completed because a worker died after claiming
    // them from the shared index (ok + errors < total).
    if (errors == 0 && ok < static_cast<int64_t>(total)) {
      std::fprintf(stderr,
                   "error: %lld of %zu requests never completed\n",
                   static_cast<long long>(static_cast<int64_t>(total) - ok),
                   total);
      return 1;
    }
    return errors == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
