// doinn_cli — command-line front end for the DOINN lithography stack.
//
//   doinn_cli generate  --kind via|dense|metal --tile 128 --seed 1
//                       [--opc 4] --out mask.pgm [--clip-out clip.lclip]
//   doinn_cli simulate  --mask mask.pgm [--pixel 16] [--defocus 0]
//                       --out-prefix out/sim        (writes aerial + contour)
//   doinn_cli opc       --clip clip.lclip [--pixel 16] [--iterations 12]
//                       --out mask.pgm
//   doinn_cli train     --kind via|dense|metal [--count 32] [--tile 128]
//                       [--epochs 8] --out weights.bin
//   doinn_cli predict   --weights weights.bin --mask mask.pgm --out contour.pgm
//   doinn_cli mrc       --mask mask.pgm [--pixel 16] [--min-feature 48]
//                       [--min-gap 48]   (mask rule check; exit 1 on violations)
//
// Masks are 8-bit PGM images; clips use the LCLIP text format
// (src/layout/clip_io.h). Model checkpoints embed the DoinnConfig so
// `predict` needs no extra flags.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/dataset.h"
#include "core/doinn.h"
#include "core/large_tile.h"
#include "core/trainer.h"
#include "io/io.h"
#include "layout/clip_io.h"
#include "opc/mrc.h"
#include "opc/opc.h"

using namespace litho;

namespace {

/// Minimal --flag value parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        throw std::runtime_error(std::string("expected --flag, got ") + argv[i]);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
  }
  std::string get(const std::string& key, const std::string& fallback = "") const {
    const auto it = values_.find(key);
    if (it != values_.end()) return it->second;
    if (fallback.empty()) {
      throw std::runtime_error("missing required flag --" + key);
    }
    return fallback;
  }
  int64_t get_int(const std::string& key, int64_t fallback) const {
    const auto it = values_.find(key);
    return it != values_.end() ? std::stoll(it->second) : fallback;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it != values_.end() ? std::stod(it->second) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
};

core::DatasetKind parse_kind(const std::string& kind) {
  if (kind == "via") return core::DatasetKind::kViaSparse;
  if (kind == "dense") return core::DatasetKind::kViaDense;
  if (kind == "metal") return core::DatasetKind::kMetal;
  throw std::runtime_error("unknown kind: " + kind + " (via|dense|metal)");
}

optics::LithoSimulator make_sim(double pixel_nm, double defocus_nm = 0.0) {
  optics::OpticalConfig cfg;
  cfg.pixel_nm = pixel_nm;
  cfg.defocus_nm = defocus_nm;
  cfg.kernel_grid = std::max<int64_t>(
      48, static_cast<int64_t>(cfg.optical_diameter_nm() / pixel_nm) + 8);
  cfg.kernel_count = 12;
  return optics::LithoSimulator(cfg, optics::compute_socs_kernels(cfg));
}

/// Serializes the DoinnConfig alongside the weights so `predict` is
/// self-contained.
Tensor encode_config(const core::DoinnConfig& cfg) {
  return Tensor({10}, {static_cast<float>(cfg.tile),
                       static_cast<float>(cfg.modes),
                       static_cast<float>(cfg.gp_channels),
                       static_cast<float>(cfg.lp1),
                       static_cast<float>(cfg.lp2),
                       static_cast<float>(cfg.refine1),
                       static_cast<float>(cfg.refine2),
                       cfg.use_ir ? 1.f : 0.f, cfg.use_lp ? 1.f : 0.f,
                       cfg.use_bypass ? 1.f : 0.f});
}

core::DoinnConfig decode_config(const Tensor& t) {
  core::DoinnConfig cfg;
  cfg.tile = static_cast<int64_t>(t[0]);
  cfg.modes = static_cast<int64_t>(t[1]);
  cfg.gp_channels = static_cast<int64_t>(t[2]);
  cfg.lp1 = static_cast<int64_t>(t[3]);
  cfg.lp2 = static_cast<int64_t>(t[4]);
  cfg.refine1 = static_cast<int64_t>(t[5]);
  cfg.refine2 = static_cast<int64_t>(t[6]);
  cfg.use_ir = t[7] != 0.f;
  cfg.use_lp = t[8] != 0.f;
  cfg.use_bypass = t[9] != 0.f;
  return cfg;
}

int cmd_generate(const Args& args) {
  const auto kind = parse_kind(args.get("kind"));
  const int64_t tile = args.get_int("tile", 128);
  const auto sim = make_sim(args.get_double("pixel", 16.0));
  Tensor mask = core::generate_mask(
      sim, kind, tile, static_cast<uint32_t>(args.get_int("seed", 1)),
      args.get_int("opc", 4));
  io::write_pgm(args.get("out"), mask);
  std::printf("wrote %s (%lld x %lld px, density %.1f%%)\n",
              args.get("out").c_str(), static_cast<long long>(tile),
              static_cast<long long>(tile), 100.f * mask.mean());
  return 0;
}

int cmd_simulate(const Args& args) {
  const double pixel = args.get_double("pixel", 16.0);
  const auto sim = make_sim(pixel, args.get_double("defocus", 0.0));
  Tensor mask;
  if (args.get("mask", "-") != "-") {
    mask = io::read_pgm(args.get("mask"));
  } else {
    const layout::Clip clip = layout::read_clip(args.get("clip"));
    mask = layout::rasterize(clip, pixel);
  }
  const Tensor aerial = sim.aerial(mask);
  const Tensor contour = sim.resist(aerial);
  const std::string prefix = args.get("out-prefix");
  io::write_pgm(prefix + "_aerial.pgm", aerial, 0.f, 0.f);
  io::write_pgm(prefix + "_contour.pgm", contour);
  std::printf("wrote %s_aerial.pgm and %s_contour.pgm (printed %.0f px)\n",
              prefix.c_str(), prefix.c_str(), contour.sum());
  return 0;
}

int cmd_opc(const Args& args) {
  const double pixel = args.get_double("pixel", 16.0);
  const auto sim = make_sim(pixel);
  const layout::Clip clip = layout::read_clip(args.get("clip"));
  opc::OpcEngine engine(sim, opc::OpcParams{});
  const auto iters = engine.run(clip, args.get_int("iterations", 12));
  std::printf("EPE: %.2f nm -> %.2f nm over %zu iterations\n",
              iters.front().mean_abs_epe, iters.back().mean_abs_epe,
              iters.size() - 1);
  io::write_pgm(args.get("out"), iters.back().mask);
  std::printf("wrote %s\n", args.get("out").c_str());
  return 0;
}

int cmd_train(const Args& args) {
  const double pixel = args.get_double("pixel", 16.0);
  const auto sim = make_sim(pixel);
  core::DatasetSpec spec;
  spec.kind = parse_kind(args.get("kind"));
  spec.count = args.get_int("count", 32);
  spec.tile_px = args.get_int("tile", 128);
  spec.seed = static_cast<uint32_t>(args.get_int("seed", 1));
  spec.opc_iterations = args.get_int("opc", 4);
  std::printf("generating %lld training clips...\n",
              static_cast<long long>(spec.count));
  const core::ContourDataset data = core::build_dataset(sim, spec);

  core::DoinnConfig cfg = core::DoinnConfig::small();
  cfg.tile = spec.tile_px;
  // Small tiles have fewer retainable modes; clamp to the half-spectrum.
  cfg.modes = std::min({cfg.modes, cfg.gp_grid(), cfg.gp_spec_w()});
  std::mt19937 rng(static_cast<uint32_t>(args.get_int("init-seed", 42)));
  core::Doinn model(cfg, rng);
  std::printf("DOINN: %lld parameters\n",
              static_cast<long long>(model.num_parameters()));

  core::TrainConfig tcfg;
  tcfg.epochs = args.get_int("epochs", 8);
  tcfg.batch_size = args.get_int("batch", 2);
  tcfg.on_epoch = [](int64_t e, double loss) {
    std::printf("  epoch %lld  loss %.4f\n", static_cast<long long>(e), loss);
    std::fflush(stdout);
  };
  core::train_model(model, data, tcfg);

  auto dict = model.state_dict();
  dict.emplace("__doinn_config__", encode_config(cfg));
  io::save_tensors(args.get("out"), dict);
  std::printf("wrote %s\n", args.get("out").c_str());
  return 0;
}

int cmd_predict(const Args& args) {
  auto dict = io::load_tensors(args.get("weights"));
  const auto cfg_it = dict.find("__doinn_config__");
  if (cfg_it == dict.end()) {
    throw std::runtime_error("weights file lacks __doinn_config__ metadata");
  }
  const core::DoinnConfig cfg = decode_config(cfg_it->second);
  std::mt19937 rng(0);
  core::Doinn model(cfg, rng);
  dict.erase("__doinn_config__");
  model.load_state_dict(dict);

  Tensor mask = io::read_pgm(args.get("mask"));
  Tensor contour;
  if (mask.size(0) > cfg.tile || mask.size(1) > cfg.tile) {
    core::LargeTilePredictor lt(model);
    contour = lt.predict(mask);
    contour.apply_([](float v) { return v >= 0.f ? 1.f : 0.f; });
    std::printf("used the large-tile scheme (%lld px tile model)\n",
                static_cast<long long>(cfg.tile));
  } else {
    contour = core::predict_contour(model, mask);
  }
  io::write_pgm(args.get("out"), contour);
  std::printf("wrote %s (printed %.0f px)\n", args.get("out").c_str(),
              contour.sum());
  return 0;
}

int cmd_mrc(const Args& args) {
  const Tensor mask = io::read_pgm(args.get("mask"));
  opc::MrcRules rules;
  rules.min_feature_nm = args.get_double("min-feature", 48.0);
  rules.min_gap_nm = args.get_double("min-gap", 48.0);
  const auto violations =
      opc::check_mask_rules(mask, args.get_double("pixel", 16.0), rules);
  if (violations.empty()) {
    std::printf("MRC clean (min feature %.0f nm, min gap %.0f nm)\n",
                rules.min_feature_nm, rules.min_gap_nm);
    return 0;
  }
  std::printf("%zu MRC violations:\n", violations.size());
  const size_t show = std::min<size_t>(violations.size(), 20);
  for (size_t i = 0; i < show; ++i) {
    const opc::MrcViolation& v = violations[i];
    std::printf("  %s %s at (%lld, %lld): %.0f nm\n",
                v.kind == opc::MrcViolation::Kind::kFeature ? "feature" : "gap",
                v.horizontal ? "run-x" : "run-y",
                static_cast<long long>(v.row_px),
                static_cast<long long>(v.col_px), v.extent_nm);
  }
  if (violations.size() > show) {
    std::printf("  ... and %zu more\n", violations.size() - show);
  }
  return 1;
}

void usage() {
  std::printf(
      "usage: doinn_cli <generate|simulate|opc|train|predict|mrc> [--flags]\n"
      "see the header comment of apps/doinn_cli.cpp for details\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  try {
    const std::string cmd = argv[1];
    const Args args(argc, argv);
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "opc") return cmd_opc(args);
    if (cmd == "train") return cmd_train(args);
    if (cmd == "predict") return cmd_predict(args);
    if (cmd == "mrc") return cmd_mrc(args);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
