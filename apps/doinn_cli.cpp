// doinn_cli — command-line front end for the DOINN lithography stack.
//
//   doinn_cli generate  --kind via|dense|metal --tile 128 --seed 1
//                       [--opc 4] --out mask.pgm [--clip-out clip.lclip]
//   doinn_cli simulate  --mask mask.pgm [--pixel 16] [--defocus 0]
//                       --out-prefix out/sim        (writes aerial + contour)
//   doinn_cli opc       --clip clip.lclip [--pixel 16] [--iterations 12]
//                       --out mask.pgm
//   doinn_cli train     --kind via|dense|metal [--count 32] [--tile 128]
//                       [--epochs 8] --out weights.bin
//   doinn_cli predict   --weights weights.bin --mask mask.pgm --out contour.pgm
//                       [--threads N]   (N=0: DOINN_NUM_THREADS / hardware)
//                       [--precision fp32|int8|bf16]   (inference storage)
//                       [--no-graph-exec] [--no-autotune]
//                       [--int8-policy auto|always]
//                       (--no-graph-exec disables the compiled static-graph
//                       executor; --int8-policy auto keeps conv shapes where
//                       int8 doesn't pay in fp32, always packs all int8)
//   doinn_cli mrc       --mask mask.pgm [--pixel 16] [--min-feature 48]
//                       [--min-gap 48]   (mask rule check; exit 1 on violations)
//
// Masks are 8-bit PGM images; clips use the LCLIP text format
// (src/layout/clip_io.h). Model checkpoints embed the DoinnConfig so
// `predict` needs no extra flags. For a long-lived serving process over the
// same checkpoints see apps/doinn_serve.cpp.
#include <cstdio>
#include <string>

#include "args.h"
#include "core/dataset.h"
#include "core/doinn.h"
#include "core/trainer.h"
#include "io/io.h"
#include "layout/clip_io.h"
#include "opc/mrc.h"
#include "opc/opc.h"
#include "runtime/engine.h"

using namespace litho;

namespace {

using apps::Args;

core::DatasetKind parse_kind(const std::string& kind) {
  if (kind == "via") return core::DatasetKind::kViaSparse;
  if (kind == "dense") return core::DatasetKind::kViaDense;
  if (kind == "metal") return core::DatasetKind::kMetal;
  throw std::runtime_error("unknown kind: " + kind + " (via|dense|metal)");
}

optics::LithoSimulator make_sim(double pixel_nm, double defocus_nm = 0.0) {
  optics::OpticalConfig cfg;
  cfg.pixel_nm = pixel_nm;
  cfg.defocus_nm = defocus_nm;
  cfg.kernel_grid = std::max<int64_t>(
      48, static_cast<int64_t>(cfg.optical_diameter_nm() / pixel_nm) + 8);
  cfg.kernel_count = 12;
  return optics::LithoSimulator(cfg, optics::compute_socs_kernels(cfg));
}

int cmd_generate(const Args& args) {
  const auto kind = parse_kind(args.get("kind"));
  const int64_t tile = args.get_int("tile", 128);
  const auto sim = make_sim(args.get_double("pixel", 16.0));
  Tensor mask = core::generate_mask(
      sim, kind, tile, static_cast<uint32_t>(args.get_int("seed", 1)),
      args.get_int("opc", 4));
  io::write_pgm(args.get("out"), mask);
  std::printf("wrote %s (%lld x %lld px, density %.1f%%)\n",
              args.get("out").c_str(), static_cast<long long>(tile),
              static_cast<long long>(tile), 100.f * mask.mean());
  return 0;
}

int cmd_simulate(const Args& args) {
  const double pixel = args.get_double("pixel", 16.0);
  const auto sim = make_sim(pixel, args.get_double("defocus", 0.0));
  Tensor mask;
  if (args.get("mask", "-") != "-") {
    mask = io::read_pgm(args.get("mask"));
  } else {
    const layout::Clip clip = layout::read_clip(args.get("clip"));
    mask = layout::rasterize(clip, pixel);
  }
  const Tensor aerial = sim.aerial(mask);
  const Tensor contour = sim.resist(aerial);
  const std::string prefix = args.get("out-prefix");
  io::write_pgm(prefix + "_aerial.pgm", aerial, 0.f, 0.f);
  io::write_pgm(prefix + "_contour.pgm", contour);
  std::printf("wrote %s_aerial.pgm and %s_contour.pgm (printed %.0f px)\n",
              prefix.c_str(), prefix.c_str(), contour.sum());
  return 0;
}

int cmd_opc(const Args& args) {
  const double pixel = args.get_double("pixel", 16.0);
  const auto sim = make_sim(pixel);
  const layout::Clip clip = layout::read_clip(args.get("clip"));
  opc::OpcEngine engine(sim, opc::OpcParams{});
  const auto iters = engine.run(clip, args.get_int("iterations", 12));
  std::printf("EPE: %.2f nm -> %.2f nm over %zu iterations\n",
              iters.front().mean_abs_epe, iters.back().mean_abs_epe,
              iters.size() - 1);
  io::write_pgm(args.get("out"), iters.back().mask);
  std::printf("wrote %s\n", args.get("out").c_str());
  return 0;
}

int cmd_train(const Args& args) {
  const double pixel = args.get_double("pixel", 16.0);
  const auto sim = make_sim(pixel);
  core::DatasetSpec spec;
  spec.kind = parse_kind(args.get("kind"));
  spec.count = args.get_int("count", 32);
  spec.tile_px = args.get_int("tile", 128);
  spec.seed = static_cast<uint32_t>(args.get_int("seed", 1));
  spec.opc_iterations = args.get_int("opc", 4);
  std::printf("generating %lld training clips...\n",
              static_cast<long long>(spec.count));
  const core::ContourDataset data = core::build_dataset(sim, spec);

  core::DoinnConfig cfg = core::DoinnConfig::small();
  cfg.tile = spec.tile_px;
  // Small tiles have fewer retainable modes; clamp to the half-spectrum.
  cfg.modes = std::min({cfg.modes, cfg.gp_grid(), cfg.gp_spec_w()});
  std::mt19937 rng(static_cast<uint32_t>(args.get_int("init-seed", 42)));
  core::Doinn model(cfg, rng);
  std::printf("DOINN: %lld parameters\n",
              static_cast<long long>(model.num_parameters()));

  core::TrainConfig tcfg;
  tcfg.epochs = args.get_int("epochs", 8);
  tcfg.batch_size = args.get_int("batch", 2);
  tcfg.on_epoch = [](int64_t e, double loss) {
    std::printf("  epoch %lld  loss %.4f\n", static_cast<long long>(e), loss);
    std::fflush(stdout);
  };
  core::train_model(model, data, tcfg);

  core::save_doinn(args.get("out"), model);
  std::printf("wrote %s\n", args.get("out").c_str());
  return 0;
}

int cmd_predict(const Args& args) {
  runtime::EngineOptions opts;
  opts.num_threads = static_cast<int>(args.get_int("threads", 0));
  opts.precision = parse_precision(args.get("precision", "fp32"));
  opts.use_graph_executor = !args.get_bool("no-graph-exec");
  opts.autotune = !args.get_bool("no-autotune");
  const std::string int8_policy = args.get("int8-policy", "auto");
  if (int8_policy == "always") {
    opts.int8_policy = runtime::EngineOptions::Int8Policy::kAlways;
  } else if (int8_policy != "auto") {
    throw std::runtime_error("--int8-policy expects auto or always");
  }
  runtime::InferenceEngine engine(args.get("weights"), opts);

  Tensor mask = io::read_pgm(args.get("mask"));
  if (mask.size(0) > engine.config().tile ||
      mask.size(1) > engine.config().tile) {
    std::printf("using the large-tile scheme (%lld px tile model, %d threads)\n",
                static_cast<long long>(engine.config().tile),
                engine.pool().size());
  }
  const Tensor contour = engine.predict(mask);
  io::write_pgm(args.get("out"), contour);
  std::printf("wrote %s (printed %.0f px)\n", args.get("out").c_str(),
              contour.sum());
  return 0;
}

int cmd_mrc(const Args& args) {
  const Tensor mask = io::read_pgm(args.get("mask"));
  opc::MrcRules rules;
  rules.min_feature_nm = args.get_double("min-feature", 48.0);
  rules.min_gap_nm = args.get_double("min-gap", 48.0);
  const auto violations =
      opc::check_mask_rules(mask, args.get_double("pixel", 16.0), rules);
  if (violations.empty()) {
    std::printf("MRC clean (min feature %.0f nm, min gap %.0f nm)\n",
                rules.min_feature_nm, rules.min_gap_nm);
    return 0;
  }
  std::printf("%zu MRC violations:\n", violations.size());
  const size_t show = std::min<size_t>(violations.size(), 20);
  for (size_t i = 0; i < show; ++i) {
    const opc::MrcViolation& v = violations[i];
    std::printf("  %s %s at (%lld, %lld): %.0f nm\n",
                v.kind == opc::MrcViolation::Kind::kFeature ? "feature" : "gap",
                v.horizontal ? "run-x" : "run-y",
                static_cast<long long>(v.row_px),
                static_cast<long long>(v.col_px), v.extent_nm);
  }
  if (violations.size() > show) {
    std::printf("  ... and %zu more\n", violations.size() - show);
  }
  return 1;
}

void usage() {
  std::printf(
      "usage: doinn_cli <generate|simulate|opc|train|predict|mrc> [--flags]\n"
      "see the header comment of apps/doinn_cli.cpp for details\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  try {
    const std::string cmd = argv[1];
    const Args args(argc, argv, /*start=*/2);
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "opc") return cmd_opc(args);
    if (cmd == "train") return cmd_train(args);
    if (cmd == "predict") return cmd_predict(args);
    if (cmd == "mrc") return cmd_mrc(args);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
