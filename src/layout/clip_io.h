// Plain-text clip interchange format, so users can feed their own layouts
// (e.g. exported from a GDS flow) into the simulator and models.
//
// Format ("LCLIP v1"):
//   LCLIP 1
//   extent <extent_nm>
//   rect <x0> <y0> <x1> <y1>       # one line per shape, nm coordinates
#pragma once

#include <string>

#include "layout/layout.h"

namespace litho::layout {

/// Writes a clip to the LCLIP text format.
void write_clip(const std::string& path, const Clip& clip);

/// Reads an LCLIP file; throws std::runtime_error on malformed input.
Clip read_clip(const std::string& path);

}  // namespace litho::layout
