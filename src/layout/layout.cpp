#include "layout/layout.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace litho::layout {

int64_t Rect::spacing_to(const Rect& o) const {
  const int64_t dx = std::max<int64_t>({0, o.x0 - x1, x0 - o.x1});
  const int64_t dy = std::max<int64_t>({0, o.y0 - y1, y0 - o.y1});
  if (dx == 0) return dy;
  if (dy == 0) return dx;
  // Diagonal neighbors: Euclidean corner-to-corner distance (floored).
  return static_cast<int64_t>(
      std::floor(std::sqrt(static_cast<double>(dx * dx + dy * dy))));
}

bool drc_clean(const Clip& clip, const DesignRules& rules) {
  for (const Rect& r : clip.shapes) {
    if (r.empty()) return false;
    if (r.x0 < 0 || r.y0 < 0 || r.x1 > clip.extent_nm || r.y1 > clip.extent_nm) {
      return false;
    }
    if (r.width() < rules.min_width_nm || r.height() < rules.min_width_nm) {
      return false;
    }
  }
  for (size_t i = 0; i < clip.shapes.size(); ++i) {
    for (size_t j = i + 1; j < clip.shapes.size(); ++j) {
      const Rect& a = clip.shapes[i];
      const Rect& b = clip.shapes[j];
      if (a.intersects(b)) continue;  // same-layer shapes merge
      const int64_t s = a.spacing_to(b);
      if (s > 0 && s < rules.min_space_nm) return false;
    }
  }
  return true;
}

Tensor rasterize(const Clip& clip, double pixel_nm) {
  const auto n = static_cast<int64_t>(
      std::llround(static_cast<double>(clip.extent_nm) / pixel_nm));
  if (n <= 0 || std::abs(n * pixel_nm - static_cast<double>(clip.extent_nm)) >
                    1e-6) {
    throw std::invalid_argument("clip extent must be a multiple of pixel size");
  }
  Tensor grid({n, n});
  const double inv_area = 1.0 / (pixel_nm * pixel_nm);
  for (const Rect& r : clip.shapes) {
    const int64_t c0 = std::max<int64_t>(
        0, static_cast<int64_t>(std::floor(r.x0 / pixel_nm)));
    const int64_t c1 = std::min<int64_t>(
        n - 1, static_cast<int64_t>(std::ceil(r.x1 / pixel_nm)) - 1);
    const int64_t r0 = std::max<int64_t>(
        0, static_cast<int64_t>(std::floor(r.y0 / pixel_nm)));
    const int64_t r1 = std::min<int64_t>(
        n - 1, static_cast<int64_t>(std::ceil(r.y1 / pixel_nm)) - 1);
    for (int64_t row = r0; row <= r1; ++row) {
      const double oy = std::min<double>(static_cast<double>(r.y1),
                                         (row + 1) * pixel_nm) -
                        std::max<double>(static_cast<double>(r.y0),
                                         row * pixel_nm);
      if (oy <= 0) continue;
      for (int64_t col = c0; col <= c1; ++col) {
        const double ox = std::min<double>(static_cast<double>(r.x1),
                                           (col + 1) * pixel_nm) -
                          std::max<double>(static_cast<double>(r.x0),
                                           col * pixel_nm);
        if (ox <= 0) continue;
        grid[row * n + col] += static_cast<float>(ox * oy * inv_area);
      }
    }
  }
  grid.apply_([](float v) { return std::min(v, 1.f); });
  return grid;
}

double density(const Clip& clip) {
  double area = 0;
  for (const Rect& r : clip.shapes) area += static_cast<double>(r.area());
  const double clip_area =
      static_cast<double>(clip.extent_nm) * static_cast<double>(clip.extent_nm);
  return area / clip_area;
}

ViaLayerGenerator::ViaLayerGenerator(Params params, DesignRules rules)
    : params_(params), rules_(rules) {
  const int64_t worst_gap =
      params_.pitch_nm - params_.via_nm - 2 * params_.jitter_nm;
  if (worst_gap < rules_.min_space_nm) {
    throw std::invalid_argument(
        "via generator params violate min spacing in the worst case");
  }
  if (params_.via_nm < rules_.min_width_nm) {
    throw std::invalid_argument("via size below min width");
  }
}

Clip ViaLayerGenerator::generate(std::mt19937& rng) const {
  Clip clip;
  clip.extent_nm = params_.clip_nm;
  const int64_t pitch = params_.pitch_nm;
  const int64_t margin = pitch / 2;
  const int64_t sites = (params_.clip_nm - 2 * margin) / pitch + 1;
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::uniform_int_distribution<int64_t> jitter(-params_.jitter_nm,
                                                params_.jitter_nm);

  // Dense array regions (site-index rectangles) get probability 1.
  std::vector<Rect> arrays;
  const int64_t n_arrays =
      u01(rng) < params_.array_probability * 4 ? 1 + (rng() % 2) : 0;
  for (int64_t a = 0; a < n_arrays; ++a) {
    std::uniform_int_distribution<int64_t> pos(0, std::max<int64_t>(0, sites - 3));
    std::uniform_int_distribution<int64_t> len(2, std::max<int64_t>(2, sites / 3));
    const int64_t sx = pos(rng), sy = pos(rng);
    arrays.push_back({sx, sy, std::min(sites, sx + len(rng)),
                      std::min(sites, sy + len(rng))});
  }

  for (int64_t sy = 0; sy < sites; ++sy) {
    for (int64_t sx = 0; sx < sites; ++sx) {
      bool in_array = false;
      for (const Rect& a : arrays) {
        if (sx >= a.x0 && sx < a.x1 && sy >= a.y0 && sy < a.y1) {
          in_array = true;
          break;
        }
      }
      if (!in_array && u01(rng) >= params_.site_probability) continue;
      const int64_t cx = margin + sx * pitch + (in_array ? 0 : jitter(rng));
      const int64_t cy = margin + sy * pitch + (in_array ? 0 : jitter(rng));
      const int64_t half = params_.via_nm / 2;
      Rect v{cx - half, cy - half, cx - half + params_.via_nm,
             cy - half + params_.via_nm};
      if (v.x0 < 0 || v.y0 < 0 || v.x1 > clip.extent_nm ||
          v.y1 > clip.extent_nm) {
        continue;
      }
      clip.shapes.push_back(v);
    }
  }
  return clip;
}

MetalLayerGenerator::MetalLayerGenerator(Params params, DesignRules rules)
    : params_(params), rules_(rules) {
  if (params_.track_pitch_nm - params_.wire_nm < rules_.min_space_nm) {
    throw std::invalid_argument("metal track pitch violates min spacing");
  }
  if (params_.wire_nm < rules_.min_width_nm) {
    throw std::invalid_argument("wire width below min width");
  }
}

Clip MetalLayerGenerator::generate(std::mt19937& rng) const {
  Clip clip;
  clip.extent_nm = params_.clip_nm;
  const int64_t pitch = params_.track_pitch_nm;
  const int64_t tracks = params_.clip_nm / pitch;
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::uniform_int_distribution<int64_t> gap_extra(0, 3 * rules_.min_space_nm);
  std::uniform_int_distribution<int64_t> seg_extra(0, params_.clip_nm / 2);

  for (int64_t t = 0; t < tracks; ++t) {
    const bool wide = u01(rng) < params_.wide_probability;
    const int64_t w = wide ? 2 * params_.wire_nm : params_.wire_nm;
    const int64_t y0 = t * pitch + (pitch - params_.wire_nm) / 2;
    if (y0 + w > clip.extent_nm) continue;
    if (u01(rng) >= params_.segment_probability) continue;

    int64_t x = 0;
    while (x < clip.extent_nm) {
      const int64_t gap = rules_.min_space_nm + gap_extra(rng);
      const int64_t len = params_.min_segment_nm + seg_extra(rng);
      const int64_t x0 = x + gap;
      const int64_t x1 = std::min(x0 + len, clip.extent_nm);
      if (x1 - x0 >= params_.min_segment_nm) {
        clip.shapes.push_back({x0, y0, x1, y0 + w});
      }
      x = x1 + rules_.min_space_nm;
      // Sparse tracks: sometimes stop after one segment.
      if (u01(rng) < 0.4) break;
    }
    if (wide) ++t;  // a wide wire consumes the next track's space
  }
  return clip;
}

}  // namespace litho::layout
