#include "layout/clip_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace litho::layout {

void write_clip(const std::string& path, const Clip& clip) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  os << "LCLIP 1\n";
  os << "extent " << clip.extent_nm << "\n";
  for (const Rect& r : clip.shapes) {
    os << "rect " << r.x0 << " " << r.y0 << " " << r.x1 << " " << r.y1 << "\n";
  }
  if (!os) throw std::runtime_error("write to " + path + " failed");
}

Clip read_clip(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path + " for reading");
  std::string magic;
  int version = 0;
  is >> magic >> version;
  if (magic != "LCLIP" || version != 1) {
    throw std::runtime_error(path + ": not an LCLIP v1 file");
  }
  Clip clip;
  std::string token;
  while (is >> token) {
    if (token == "extent") {
      if (!(is >> clip.extent_nm)) {
        throw std::runtime_error(path + ": malformed extent");
      }
    } else if (token == "rect") {
      Rect r;
      if (!(is >> r.x0 >> r.y0 >> r.x1 >> r.y1)) {
        throw std::runtime_error(path + ": malformed rect");
      }
      if (r.empty()) throw std::runtime_error(path + ": empty rect");
      clip.shapes.push_back(r);
    } else if (!token.empty() && token[0] == '#') {
      std::string comment;
      std::getline(is, comment);
    } else {
      throw std::runtime_error(path + ": unknown token '" + token + "'");
    }
  }
  if (clip.extent_nm <= 0) {
    throw std::runtime_error(path + ": missing or non-positive extent");
  }
  return clip;
}

}  // namespace litho::layout
