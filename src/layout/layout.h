// Layout substrate: Manhattan geometry, design-rule-driven clip generators
// and an area-coverage rasterizer.
//
// These generators are the stand-ins for the paper's benchmark layouts:
// the paper itself synthesizes its ISPD-2019 training set
// with "an open source layout generator following the same design rules" —
// we do the same, with via-layer (ISPD-2019 / N14) and metal-layer
// (ICCAD-2013) flavors.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "tensor/tensor.h"

namespace litho::layout {

/// Axis-aligned rectangle in nm, half-open [x0, x1) x [y0, y1).
struct Rect {
  int64_t x0 = 0;
  int64_t y0 = 0;
  int64_t x1 = 0;
  int64_t y1 = 0;

  int64_t width() const { return x1 - x0; }
  int64_t height() const { return y1 - y0; }
  int64_t area() const { return width() * height(); }
  bool empty() const { return x1 <= x0 || y1 <= y0; }

  bool intersects(const Rect& o) const {
    return x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
  }
  /// Euclidean-free Manhattan gap: 0 if the rects touch or overlap.
  int64_t spacing_to(const Rect& o) const;
};

/// A layout tile: square region of side `extent_nm` holding mask shapes.
struct Clip {
  int64_t extent_nm = 0;
  std::vector<Rect> shapes;
};

/// Minimal design-rule set shared by the generators.
struct DesignRules {
  int64_t min_width_nm = 64;
  int64_t min_space_nm = 64;
};

/// True if all shapes lie inside the clip and every disjoint pair respects
/// min_space (touching/overlapping shapes merge on a single layer and are
/// allowed).
bool drc_clean(const Clip& clip, const DesignRules& rules);

/// Rasterizes a clip to an (extent/pixel) square tensor with exact
/// area-coverage antialiasing; overlapping shapes saturate at 1.
Tensor rasterize(const Clip& clip, double pixel_nm);

/// Fraction of clip area covered by shapes (ignoring overlap).
double density(const Clip& clip);

/// Via-layer generator: square contacts placed on a regular pitch grid with
/// per-site probability plus occasional dense arrays. Mimics the ISPD-2019
/// and N14 via layers of Table 1.
class ViaLayerGenerator {
 public:
  struct Params {
    int64_t clip_nm = 2048;      ///< tile side (4 um^2 -> 2048 with 2 um)
    int64_t via_nm = 72;         ///< via side
    int64_t pitch_nm = 256;      ///< placement grid pitch
    double site_probability = 0.25;
    double array_probability = 0.08;  ///< chance a region becomes a full array
    int64_t jitter_nm = 16;      ///< random off-grid jitter (kept DRC-clean)
  };

  ViaLayerGenerator(Params params, DesignRules rules);

  Clip generate(std::mt19937& rng) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
  DesignRules rules_;
};

/// Metal-layer generator: track-based random wire segments with occasional
/// wide wires, mimicking the ICCAD-2013 M1 tiles of Table 1.
class MetalLayerGenerator {
 public:
  struct Params {
    int64_t clip_nm = 2048;
    int64_t track_pitch_nm = 160;  ///< wire width + space
    int64_t wire_nm = 80;          ///< default wire width
    double wide_probability = 0.15;   ///< track uses a 2x-wide wire
    double segment_probability = 0.7; ///< track carries at least one segment
    int64_t min_segment_nm = 240;
  };

  MetalLayerGenerator(Params params, DesignRules rules);

  Clip generate(std::mt19937& rng) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
  DesignRules rules_;
};

}  // namespace litho::layout
