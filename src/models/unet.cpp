#include "models/unet.h"

namespace litho::models {

UNet::UNet(UNetConfig cfg, std::mt19937& rng)
    : cfg_(cfg),
      enc1_(1, cfg.base_channels, rng),
      enc2_(cfg.base_channels * 2, cfg.base_channels * 2, rng),
      enc3_(cfg.base_channels * 4, cfg.base_channels * 4, rng),
      down1_(cfg.base_channels, cfg.base_channels * 2, 4, 2, 1, rng),
      down2_(cfg.base_channels * 2, cfg.base_channels * 4, 4, 2, 1, rng),
      down3_(cfg.base_channels * 4, cfg.base_channels * 8, 4, 2, 1, rng),
      bottleneck_(cfg.base_channels * 8, cfg.base_channels * 8, rng),
      up3_(cfg.base_channels * 8, cfg.base_channels * 4, 4, 2, 1, rng),
      up2_(cfg.base_channels * 4, cfg.base_channels * 2, 4, 2, 1, rng),
      up1_(cfg.base_channels * 2, cfg.base_channels, 4, 2, 1, rng),
      dec3_(cfg.base_channels * 8, cfg.base_channels * 4, rng),
      dec2_(cfg.base_channels * 4, cfg.base_channels * 2, rng),
      dec1_(cfg.base_channels * 2, cfg.base_channels, rng),
      out_(cfg.base_channels, 1, 3, 1, 1, rng) {
  register_module("enc1", &enc1_);
  register_module("enc2", &enc2_);
  register_module("enc3", &enc3_);
  register_module("down1", &down1_);
  register_module("down2", &down2_);
  register_module("down3", &down3_);
  register_module("bottleneck", &bottleneck_);
  register_module("up3", &up3_);
  register_module("up2", &up2_);
  register_module("up1", &up1_);
  register_module("dec3", &dec3_);
  register_module("dec2", &dec2_);
  register_module("dec1", &dec1_);
  register_module("out", &out_);
}

ag::Variable UNet::forward(const ag::Variable& x) {
  ag::Variable e1 = enc1_.forward(x);                       // C, H
  ag::Variable e2 = enc2_.forward(down1_.forward(e1));      // 2C, H/2
  ag::Variable e3 = enc3_.forward(down2_.forward(e2));      // 4C, H/4
  ag::Variable b = bottleneck_.forward(down3_.forward(e3)); // 8C, H/8
  ag::Variable d3 = dec3_.forward(
      ag::concat_channels({up3_.forward(b), e3}));          // 4C, H/4
  ag::Variable d2 = dec2_.forward(
      ag::concat_channels({up2_.forward(d3), e2}));         // 2C, H/2
  ag::Variable d1 = dec1_.forward(
      ag::concat_channels({up1_.forward(d2), e1}));         // C, H
  return ag::tanh(out_.forward(d1));
}

}  // namespace litho::models
