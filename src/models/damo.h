// DAMO-DLS baseline [Chen et al., ICCAD'20, ref. 10 of the paper]: the deep
// lithography simulator the paper compares against. DAMO's generator is a
// nested UNet (UNet++-style): every decoder node X(i,j) receives dense skip
// connections from all same-level predecessors plus an upsampled deeper
// node. This reproduction keeps that topology at reduced width; it is
// deliberately the largest and slowest of the three models, matching the
// paper's model-size comparison (DAMO-DLS 18M vs DOINN 1.3M parameters).
#pragma once

#include <array>

#include "nn/contour_model.h"
#include "nn/layers.h"

namespace litho::models {

struct DamoConfig {
  int64_t base_channels = 12;  ///< width of the top level
};

class DamoDls : public nn::ContourModel {
 public:
  DamoDls(DamoConfig cfg, std::mt19937& rng);

  ag::Variable forward(const ag::Variable& x) override;
  std::string name() const override { return "DAMO-DLS"; }

 private:
  DamoConfig cfg_;
  // Backbone column X(i,0), i = 0..3.
  nn::VggBlock x00_, x10_, x20_, x30_;
  nn::Conv2d down0_, down1_, down2_;
  // Nested decoder nodes X(i,j), j >= 1.
  nn::ConvTranspose2d u01_, u11_, u21_, u02_, u12_, u03_;
  nn::VggBlock x01_, x11_, x21_, x02_, x12_, x03_;
  nn::Conv2d out_;
};

}  // namespace litho::models
