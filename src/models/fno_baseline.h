// Baseline FNO (paper Figure 3(a)): stacked Fourier Units, each performing
// per-channel FFT -> truncated complex mode-mixing -> inverse FFT plus a
// 1x1-conv bypass (eq. (10)). Used by the Fourier-Unit ablation bench to
// demonstrate the computational saving of DOINN's reduced single-unit
// design (eq. (11)), and as an additional accuracy baseline.
//
// The spectral stack operates on the /8-pooled grid (like DOINN's GP path)
// and is upsampled back by the same transposed-conv chain, so the
// comparison isolates the Fourier-Unit cost.
#pragma once

#include "autograd/spectral.h"
#include "nn/contour_model.h"
#include "nn/layers.h"

namespace litho::models {

struct FnoConfig {
  int64_t pool = 8;
  int64_t modes = 7;
  int64_t channels = 8;
  int64_t num_units = 4;  ///< stacked Fourier Units (paper baseline: T units)
};

class FnoBaseline : public nn::ContourModel {
 public:
  FnoBaseline(FnoConfig cfg, std::mt19937& rng);

  ag::Variable forward(const ag::Variable& x) override;
  std::string name() const override { return "FNO-baseline"; }

  /// Spectral stack only (pooled resolution); exposed for the cost
  /// ablation bench.
  ag::Variable spectral_features(const ag::Variable& x);

 private:
  FnoConfig cfg_;
  nn::Conv2d lift_;  ///< P: 1x1 channel lift on the spatial grid
  struct Unit {
    ag::Variable wre, wim;  ///< [C, C, modes, modes]
    nn::Conv2d* bypass;     ///< L: 1x1 conv (owned by FnoBaseline)
  };
  std::vector<Unit> units_;
  std::vector<std::unique_ptr<nn::Conv2d>> bypass_store_;
  nn::ConvTranspose2d up1_, up2_, up3_;
  nn::Conv2d out_;
};

}  // namespace litho::models
