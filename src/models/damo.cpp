#include "models/damo.h"

namespace litho::models {

DamoDls::DamoDls(DamoConfig cfg, std::mt19937& rng)
    : cfg_(cfg),
      x00_(1, cfg.base_channels, rng),
      x10_(cfg.base_channels * 2, cfg.base_channels * 2, rng),
      x20_(cfg.base_channels * 4, cfg.base_channels * 4, rng),
      x30_(cfg.base_channels * 8, cfg.base_channels * 8, rng),
      down0_(cfg.base_channels, cfg.base_channels * 2, 4, 2, 1, rng),
      down1_(cfg.base_channels * 2, cfg.base_channels * 4, 4, 2, 1, rng),
      down2_(cfg.base_channels * 4, cfg.base_channels * 8, 4, 2, 1, rng),
      u01_(cfg.base_channels * 2, cfg.base_channels, 4, 2, 1, rng),
      u11_(cfg.base_channels * 4, cfg.base_channels * 2, 4, 2, 1, rng),
      u21_(cfg.base_channels * 8, cfg.base_channels * 4, 4, 2, 1, rng),
      u02_(cfg.base_channels * 2, cfg.base_channels, 4, 2, 1, rng),
      u12_(cfg.base_channels * 4, cfg.base_channels * 2, 4, 2, 1, rng),
      u03_(cfg.base_channels * 2, cfg.base_channels, 4, 2, 1, rng),
      x01_(cfg.base_channels * 2, cfg.base_channels, rng),
      x11_(cfg.base_channels * 4, cfg.base_channels * 2, rng),
      x21_(cfg.base_channels * 8, cfg.base_channels * 4, rng),
      x02_(cfg.base_channels * 3, cfg.base_channels, rng),
      x12_(cfg.base_channels * 6, cfg.base_channels * 2, rng),
      x03_(cfg.base_channels * 4, cfg.base_channels, rng),
      out_(cfg.base_channels, 1, 3, 1, 1, rng) {
  register_module("x00", &x00_);
  register_module("x10", &x10_);
  register_module("x20", &x20_);
  register_module("x30", &x30_);
  register_module("down0", &down0_);
  register_module("down1", &down1_);
  register_module("down2", &down2_);
  register_module("u01", &u01_);
  register_module("u11", &u11_);
  register_module("u21", &u21_);
  register_module("u02", &u02_);
  register_module("u12", &u12_);
  register_module("u03", &u03_);
  register_module("x01", &x01_);
  register_module("x11", &x11_);
  register_module("x21", &x21_);
  register_module("x02", &x02_);
  register_module("x12", &x12_);
  register_module("x03", &x03_);
  register_module("out", &out_);
}

ag::Variable DamoDls::forward(const ag::Variable& x) {
  // Backbone column.
  ag::Variable x00 = x00_.forward(x);
  ag::Variable x10 = x10_.forward(down0_.forward(x00));
  ag::Variable x20 = x20_.forward(down1_.forward(x10));
  ag::Variable x30 = x30_.forward(down2_.forward(x20));
  // First nested column.
  ag::Variable x01 =
      x01_.forward(ag::concat_channels({x00, u01_.forward(x10)}));
  ag::Variable x11 =
      x11_.forward(ag::concat_channels({x10, u11_.forward(x20)}));
  ag::Variable x21 =
      x21_.forward(ag::concat_channels({x20, u21_.forward(x30)}));
  // Second nested column.
  ag::Variable x02 =
      x02_.forward(ag::concat_channels({x00, x01, u02_.forward(x11)}));
  ag::Variable x12 =
      x12_.forward(ag::concat_channels({x10, x11, u12_.forward(x21)}));
  // Output column.
  ag::Variable x03 =
      x03_.forward(ag::concat_channels({x00, x01, x02, u03_.forward(x12)}));
  return ag::tanh(out_.forward(x03));
}

}  // namespace litho::models
