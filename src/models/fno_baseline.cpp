#include "models/fno_baseline.h"

namespace litho::models {
namespace {

Tensor fno_init(Shape shape, int64_t cin, int64_t cout, std::mt19937& rng) {
  const float scale = 1.f / static_cast<float>(cin * cout);
  return Tensor::rand(std::move(shape), rng, -scale, scale);
}

}  // namespace

FnoBaseline::FnoBaseline(FnoConfig cfg, std::mt19937& rng)
    : cfg_(cfg),
      lift_(1, cfg.channels, 1, 1, 0, rng),
      up1_(cfg.channels, cfg.channels, 4, 2, 1, rng),
      up2_(cfg.channels, cfg.channels / 2, 4, 2, 1, rng),
      up3_(cfg.channels / 2, cfg.channels / 2, 4, 2, 1, rng),
      out_(cfg.channels / 2, 1, 3, 1, 1, rng) {
  register_module("lift", &lift_);
  for (int64_t u = 0; u < cfg_.num_units; ++u) {
    Unit unit;
    unit.wre = register_parameter(
        "unit" + std::to_string(u) + ".wre",
        fno_init({cfg_.channels, cfg_.channels, cfg_.modes, cfg_.modes},
                 cfg_.channels, cfg_.channels, rng));
    unit.wim = register_parameter(
        "unit" + std::to_string(u) + ".wim",
        fno_init({cfg_.channels, cfg_.channels, cfg_.modes, cfg_.modes},
                 cfg_.channels, cfg_.channels, rng));
    bypass_store_.push_back(std::make_unique<nn::Conv2d>(
        cfg_.channels, cfg_.channels, 1, 1, 0, rng));
    unit.bypass = bypass_store_.back().get();
    register_module("unit" + std::to_string(u) + ".bypass", unit.bypass);
    units_.push_back(std::move(unit));
  }
  register_module("up1", &up1_);
  register_module("up2", &up2_);
  register_module("up3", &up3_);
  register_module("out", &out_);
}

ag::Variable FnoBaseline::spectral_features(const ag::Variable& x) {
  ag::Variable pooled = ag::avg_pool2d(x, cfg_.pool);
  const int64_t gh = pooled.shape()[2], gw = pooled.shape()[3];
  // P: lift on the spatial grid, then T stacked Fourier Units, each with
  // its own per-channel forward and inverse FFT (the cost eq. (11) removes).
  ag::Variable v = lift_.forward(pooled);
  for (const Unit& unit : units_) {
    ag::CVariable spec = ag::rfft2v(v);
    ag::CVariable trunc = ag::ctruncate(spec, cfg_.modes, cfg_.modes);
    ag::CVariable mixed = ag::cmode_matmul(trunc, {unit.wre, unit.wim});
    ag::CVariable padded = ag::cpad(mixed, gh, gw / 2 + 1);
    ag::Variable spectral = ag::irfft2v(padded, gw);
    v = ag::leaky_relu(ag::add(spectral, unit.bypass->forward(v)), 0.1f);
  }
  return v;
}

ag::Variable FnoBaseline::forward(const ag::Variable& x) {
  ag::Variable v = spectral_features(x);
  v = ag::leaky_relu(up1_.forward(v), 0.1f);
  v = ag::leaky_relu(up2_.forward(v), 0.1f);
  v = ag::leaky_relu(up3_.forward(v), 0.1f);
  return ag::tanh(out_.forward(v));
}

}  // namespace litho::models
