// UNet baseline [Ronneberger et al., ref. 28 of the paper]: the standard
// encoder/decoder with skip connections used as the "popular ML model"
// comparison in Table 2, Figure 6 and Figure 8.
#pragma once

#include "nn/contour_model.h"
#include "nn/layers.h"

namespace litho::models {

struct UNetConfig {
  int64_t base_channels = 8;  ///< channel width of the first level
  int64_t levels = 3;         ///< number of down/up levels (fixed 3 here)
};

class UNet : public nn::ContourModel {
 public:
  UNet(UNetConfig cfg, std::mt19937& rng);

  ag::Variable forward(const ag::Variable& x) override;
  std::string name() const override { return "UNet"; }

 private:
  UNetConfig cfg_;
  nn::VggBlock enc1_, enc2_, enc3_;
  nn::Conv2d down1_, down2_, down3_;
  nn::VggBlock bottleneck_;
  nn::ConvTranspose2d up3_, up2_, up1_;
  nn::VggBlock dec3_, dec2_, dec1_;
  nn::Conv2d out_;
};

}  // namespace litho::models
