// Shared nearest-rank percentile helper for latency summaries (scheduler
// stats, the serving front end, benches).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

namespace litho::runtime {

/// Nearest-rank percentile of an unsorted sample; q in [0, 1]. Takes the
/// sample by value (sorts a copy). Returns 0 for an empty sample.
inline double nearest_rank_percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<size_t>(
      std::max<long long>(0, static_cast<long long>(std::ceil(
                                 q * static_cast<double>(v.size()))) -
                                 1));
  return v[std::min(rank, v.size() - 1)];
}

}  // namespace litho::runtime
