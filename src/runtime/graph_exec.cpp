#include "runtime/graph_exec.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <mutex>
#include <random>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "autograd/grad_mode.h"
#include "runtime/trace.h"
#include "tensor/gemm.h"
#include "tensor/prepack.h"

namespace litho::runtime {

namespace {

// Arena offsets are 64-byte aligned (16 floats) so replayed kernels see the
// same alignment class as freshly allocated tensors.
constexpr int64_t kAlignFloats = 16;

int64_t align_floats(int64_t n) {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

double best_of(int reps, const std::function<void()>& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

}  // namespace

std::shared_ptr<ag::CapturedGraph> capture_graph(
    const Tensor& example_input,
    const std::function<ag::Variable(const ag::Variable&)>& forward) {
  DOINN_TRACE_SCOPE("exec.capture", "exec", "input_numel",
                    example_input.numel());
  ag::NoGradGuard no_grad;
  ag::GraphRecorder rec;
  ag::Variable in(example_input.clone(), false);
  rec.add_input(in);
  ag::Variable out = forward(in);
  rec.mark_output(out);
  return rec.finish();
}

// -- ExecContext --------------------------------------------------------------

ExecContext::ExecContext(const GraphExecutor& exec) : exec_(&exec) {
  const ag::CapturedGraph& g = *exec.graph_;
  arena_.resize(static_cast<size_t>(exec.arena_floats_));
  float* arena = arena_.data();

  auto read_ptr = [&](int slot) -> const float* {
    const ag::CaptureSlot& s = g.slots[slot];
    if (s.constant.numel() > 0) return exec.graph_->slots[slot].constant.data();
    return arena + exec.slot_offset_[slot];
  };

  ins_.reserve(static_cast<size_t>(exec.ins_total_));
  outs_.reserve(static_cast<size_t>(exec.outs_total_));
  for (int node_idx : exec.schedule_) {
    const ag::CaptureNode& node = g.nodes[node_idx];
    for (int s : node.ins) ins_.push_back(read_ptr(s));
    for (int s : node.outs) outs_.push_back(arena + exec.slot_offset_[s]);
  }
  inputs_.reserve(g.inputs.size());
  for (int s : g.inputs) inputs_.push_back(arena + exec.slot_offset_[s]);
  outputs_.reserve(g.outputs.size());
  for (int s : g.outputs) outputs_.push_back(read_ptr(s));
}

float* ExecContext::input(int i) { return inputs_[static_cast<size_t>(i)]; }

const float* ExecContext::output(int i) const {
  return outputs_[static_cast<size_t>(i)];
}

int64_t ExecContext::output_numel(int i) const {
  const ag::CapturedGraph& g = *exec_->graph_;
  return g.slots[g.outputs[static_cast<size_t>(i)]].numel;
}

// -- GraphExecutor ------------------------------------------------------------

GraphExecutor::GraphExecutor(std::shared_ptr<ag::CapturedGraph> graph,
                             ExecutorOptions opts)
    : graph_(std::move(graph)), opts_(opts) {
  if (graph_ == nullptr || graph_->nodes.empty()) {
    throw std::invalid_argument("GraphExecutor: empty capture");
  }
  {
    DOINN_TRACE_SCOPE("exec.plan", "exec", "nodes",
                      static_cast<int64_t>(graph_->nodes.size()));
    if (opts_.fuse) fuse_epilogues();

    schedule_.clear();
    in_off_.clear();
    out_off_.clear();
    ins_total_ = outs_total_ = 0;
    for (int i = 0; i < static_cast<int>(graph_->nodes.size()); ++i) {
      const ag::CaptureNode& node = graph_->nodes[static_cast<size_t>(i)];
      if (node.dead) continue;
      schedule_.push_back(i);
      in_off_.push_back(static_cast<int>(ins_total_));
      out_off_.push_back(static_cast<int>(outs_total_));
      ins_total_ += static_cast<int64_t>(node.ins.size());
      outs_total_ += static_cast<int64_t>(node.outs.size());
    }
    live_nodes_ = static_cast<int64_t>(schedule_.size());

    plan_arena(opts_.arena_seed);
  }
  if (opts_.autotune) autotune(opts_.autotune_budget_ms);
}

GraphExecutor::~GraphExecutor() = default;

std::unique_ptr<ExecContext> GraphExecutor::acquire() {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!pool_.empty()) {
      std::unique_ptr<ExecContext> ctx = std::move(pool_.back());
      pool_.pop_back();
      return ctx;
    }
  }
  return std::unique_ptr<ExecContext>(new ExecContext(*this));
}

void GraphExecutor::release(std::unique_ptr<ExecContext> ctx) {
  if (ctx == nullptr) return;
  std::lock_guard<std::mutex> lock(pool_mutex_);
  pool_.push_back(std::move(ctx));
}

void GraphExecutor::run(ExecContext& ctx) const {
  DOINN_TRACE_SCOPE("exec.replay", "exec", "nodes", live_nodes_);
  for (size_t i = 0; i < schedule_.size(); ++i) {
    const ag::CaptureNode& node =
        graph_->nodes[static_cast<size_t>(schedule_[i])];
    ag::ReplayIO io;
    io.ins = ctx.ins_.data() + in_off_[i];
    io.outs = ctx.outs_.data() + out_off_[i];
    node.run(io);
  }
}

// Folds single-consumer elementwise chains behind a non-transposed conv into
// the conv's GEMM epilogue. Each folded stage is the standalone op's exact
// per-element expression applied after the full K loop, so the fold changes
// which loop walks the output but not a single bit of it.
void GraphExecutor::fuse_epilogues() {
  ag::CapturedGraph& g = *graph_;
  auto is_graph_output = [&](int slot) {
    return std::find(g.outputs.begin(), g.outputs.end(), slot) !=
           g.outputs.end();
  };

  for (int ci = 0; ci < static_cast<int>(g.nodes.size()); ++ci) {
    ag::CaptureNode& conv = g.nodes[static_cast<size_t>(ci)];
    if (conv.dead || !conv.conv.valid || conv.conv.transposed ||
        conv.tuning == nullptr || conv.outs.size() != 1) {
      continue;
    }
    for (;;) {
      const int slot = conv.outs[0];
      // The chain value must die into exactly one elementwise consumer; a
      // second reader (or the graph output) still needs the pre-activation
      // value, which no longer exists once the stage folds into the GEMM.
      if (is_graph_output(slot)) break;
      int consumer = -1;
      bool multi = false;
      for (int ni = 0; ni < static_cast<int>(g.nodes.size()); ++ni) {
        const ag::CaptureNode& n = g.nodes[static_cast<size_t>(ni)];
        if (n.dead) continue;
        for (int s : n.ins) {
          if (s != slot) continue;
          if (consumer != -1 && consumer != ni) multi = true;
          consumer = ni;
        }
      }
      if (consumer < 0 || multi) break;
      ag::CaptureNode& next = g.nodes[static_cast<size_t>(consumer)];
      if (next.ewise.kind == ag::EwiseInfo::Kind::kNone ||
          next.ins.size() != 1 || next.outs.size() != 1 ||
          g.slots[static_cast<size_t>(next.outs[0])].numel !=
              g.slots[static_cast<size_t>(slot)].numel) {
        break;
      }

      EpiloguePostStage stage;
      switch (next.ewise.kind) {
        case ag::EwiseInfo::Kind::kLeaky:
          stage.kind = EpiloguePostStage::Kind::kLeaky;
          stage.slope = next.ewise.slope;
          break;
        case ag::EwiseInfo::Kind::kTanh:
          stage.kind = EpiloguePostStage::Kind::kTanh;
          break;
        case ag::EwiseInfo::Kind::kBnEval: {
          // Per-row affine: row index inside one sample's GEMM block is the
          // output channel, so the channel count must match the GEMM M.
          if (next.ewise.channels != conv.conv.m) break;
          stage.kind = EpiloguePostStage::Kind::kBnAffine;
          auto& keep = conv.tuning->keepalive;
          keep.push_back(next.ewise.mu);
          keep.push_back(next.ewise.inv_std);
          keep.push_back(next.ewise.gamma);
          keep.push_back(next.ewise.beta);
          stage.mu = keep[keep.size() - 4].data();
          stage.inv_std = keep[keep.size() - 3].data();
          stage.gamma = keep[keep.size() - 2].data();
          stage.beta = keep[keep.size() - 1].data();
          break;
        }
        case ag::EwiseInfo::Kind::kNone:
          break;
      }
      if (next.ewise.kind == ag::EwiseInfo::Kind::kBnEval &&
          next.ewise.channels != conv.conv.m) {
        break;  // the switch above bailed before filling the stage
      }

      conv.tuning->post.push_back(stage);
      next.dead = true;
      ++fused_nodes_;
      // The conv now writes the chain's output slot directly; its original
      // output slot is orphaned and the planner will skip it.
      conv.outs[0] = next.outs[0];
      g.slots[static_cast<size_t>(next.outs[0])].producer = ci;
    }
  }
}

// Liveness analysis + greedy best-fit offset assignment. A slot is live from
// the node that writes it (inputs: before node 0) through its last reader
// (graph outputs: past the end); two slots may share arena bytes iff their
// intervals are disjoint. Allocation order is by size descending — or
// seed-shuffled, since correctness must not depend on the order.
void GraphExecutor::plan_arena(uint64_t seed) {
  const ag::CapturedGraph& g = *graph_;
  const int nslots = static_cast<int>(g.slots.size());
  const int kEnd = static_cast<int>(g.nodes.size()) + 1;

  std::vector<int> start(static_cast<size_t>(nslots), -2);  // -2 = unused
  std::vector<int> last(static_cast<size_t>(nslots), -2);
  for (size_t si = 0; si < schedule_.size(); ++si) {
    const int ni = schedule_[si];
    const ag::CaptureNode& node = g.nodes[static_cast<size_t>(ni)];
    for (int s : node.outs) {
      start[static_cast<size_t>(s)] = ni;
      last[static_cast<size_t>(s)] = std::max(last[static_cast<size_t>(s)], ni);
    }
    for (int s : node.ins) {
      if (g.slots[static_cast<size_t>(s)].constant.numel() > 0) continue;
      last[static_cast<size_t>(s)] = std::max(last[static_cast<size_t>(s)], ni);
    }
  }
  for (int s : g.inputs) {
    start[static_cast<size_t>(s)] = -1;
    last[static_cast<size_t>(s)] =
        std::max(last[static_cast<size_t>(s)], -1);
  }
  for (int s : g.outputs) {
    if (g.slots[static_cast<size_t>(s)].constant.numel() > 0) continue;
    last[static_cast<size_t>(s)] = kEnd;
  }

  std::vector<int> order;
  for (int s = 0; s < nslots; ++s) {
    if (g.slots[static_cast<size_t>(s)].constant.numel() > 0) continue;
    if (start[static_cast<size_t>(s)] == -2) continue;  // orphaned by fusion
    order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int64_t na = g.slots[static_cast<size_t>(a)].numel;
    const int64_t nb = g.slots[static_cast<size_t>(b)].numel;
    return na != nb ? na > nb : a < b;
  });
  if (seed != 0) {
    std::mt19937_64 rng(seed);
    std::shuffle(order.begin(), order.end(), rng);
  }

  struct Placed {
    int64_t off, size;
    int start, last;
  };
  std::vector<Placed> placed;
  slot_offset_.assign(static_cast<size_t>(nslots), -1);
  arena_floats_ = 0;

  for (int s : order) {
    const int64_t size =
        align_floats(std::max<int64_t>(g.slots[static_cast<size_t>(s)].numel,
                                       1));
    const int s0 = start[static_cast<size_t>(s)];
    const int s1 = std::max(last[static_cast<size_t>(s)], s0);

    std::vector<std::pair<int64_t, int64_t>> busy;  // (off, size)
    for (const Placed& p : placed) {
      if (p.last < s0 || s1 < p.start) continue;  // disjoint lifetimes
      busy.emplace_back(p.off, p.size);
    }
    std::sort(busy.begin(), busy.end());

    // Best fit: smallest gap between obstacles that holds the slot; the
    // open-ended tail is the fallback.
    int64_t cursor = 0;
    int64_t best_off = -1, best_gap = std::numeric_limits<int64_t>::max();
    for (const auto& [off, bsize] : busy) {
      if (off > cursor) {
        const int64_t gap = off - cursor;
        if (gap >= size && gap < best_gap) {
          best_gap = gap;
          best_off = cursor;
        }
      }
      cursor = std::max(cursor, off + bsize);
    }
    if (best_off < 0) best_off = cursor;

    slot_offset_[static_cast<size_t>(s)] = best_off;
    placed.push_back(Placed{best_off, size, s0, s1});
    arena_floats_ = std::max(arena_floats_, best_off + size);
  }
}

// -- Autotuning ---------------------------------------------------------------

namespace {

struct TuneChoice {
  int64_t nc = 0;
  BFeed bfeed = BFeed::kAuto;
};

// Process-wide per-shape tuning decisions, keyed WITHOUT the thread count:
// every knob is bitwise-neutral, so sharing one decision across engines with
// different pool widths costs nothing and keeps every engine in a process on
// the identical plan.
using TuneKey = std::tuple<bool, int, int64_t, int64_t, int64_t, int64_t>;

std::mutex tune_mutex;
std::map<TuneKey, TuneChoice>& tune_cache() {
  static std::map<TuneKey, TuneChoice> cache;
  return cache;
}

const char* bfeed_name(BFeed f) {
  switch (f) {
    case BFeed::kStream:
      return "stream";
    case BFeed::kPack:
      return "pack";
    case BFeed::kAuto:
      break;
  }
  return "auto";
}

}  // namespace

void GraphExecutor::autotune(int64_t budget_ms) {
  DOINN_TRACE_SCOPE("exec.autotune", "exec");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);

  std::unique_ptr<ExecContext> ctx = acquire();
  // Benign fill: tuning replays run over whatever is in the arena, and
  // uninitialized memory could hold denormals that skew kernel timings.
  std::fill(ctx->arena_.begin(), ctx->arena_.end(), 0.25f);

  for (size_t si = 0; si < schedule_.size(); ++si) {
    ag::CaptureNode& node =
        graph_->nodes[static_cast<size_t>(schedule_[si])];
    if (!node.conv.valid || node.tuning == nullptr) continue;

    const TuneKey key{node.conv.transposed, static_cast<int>(node.conv.prec),
                      node.conv.m, node.conv.k, node.conv.l, node.conv.batch};
    {
      std::lock_guard<std::mutex> lock(tune_mutex);
      auto it = tune_cache().find(key);
      if (it != tune_cache().end()) {
        node.tuning->nc = it->second.nc;
        node.tuning->bfeed = it->second.bfeed;
        continue;
      }
    }

    ag::ReplayIO io;
    io.ins = ctx->ins_.data() + in_off_[si];
    io.outs = ctx->outs_.data() + out_off_[si];
    auto time_with = [&](const TuneChoice& c) {
      node.tuning->nc = c.nc;
      node.tuning->bfeed = c.bfeed;
      node.run(io);  // warm caches / pooled scratch
      return best_of(2, [&] { node.run(io); });
    };

    const TuneChoice fallback{};  // nc 0, kAuto: the untuned default
    TuneChoice best = fallback;
    const double base = time_with(fallback);
    double best_time = base;
    for (int64_t nc : {int64_t{0}, int64_t{128}, int64_t{512}}) {
      for (BFeed bf : {BFeed::kAuto, BFeed::kStream, BFeed::kPack}) {
        if (nc == 0 && bf == BFeed::kAuto) continue;  // already timed
        if (std::chrono::steady_clock::now() >= deadline) break;
        const TuneChoice cand{nc, bf};
        const double t = time_with(cand);
        if (t < best_time) {
          best_time = t;
          best = cand;
        }
      }
    }
    // Hysteresis: keep the default unless the winner is a clear (>3%) win —
    // sub-noise deltas should not flap plans between loads.
    if (best_time > base * 0.97) best = fallback;
    node.tuning->nc = best.nc;
    node.tuning->bfeed = best.bfeed;
    {
      std::lock_guard<std::mutex> lock(tune_mutex);
      tune_cache().emplace(key, best);
    }
    trace::emit_instant("exec.autotune.choice", "exec",
                        {{"m", node.conv.m},
                         {"l", node.conv.l},
                         {"nc", best.nc}},
                        "bfeed", bfeed_name(best.bfeed));
    if (std::chrono::steady_clock::now() >= deadline) break;
  }

  release(std::move(ctx));
}

// -- Per-shape precision decision ---------------------------------------------

namespace {
std::mutex prec_mutex;
std::map<std::tuple<bool, int64_t, int64_t, int64_t>, Precision>&
prec_cache() {
  static std::map<std::tuple<bool, int64_t, int64_t, int64_t>, Precision>
      cache;
  return cache;
}
}  // namespace

Precision tuned_conv_precision(bool transposed, int64_t m, int64_t k,
                               int64_t l) {
  const auto key = std::make_tuple(transposed, m, k, l);
  {
    std::lock_guard<std::mutex> lock(prec_mutex);
    auto it = prec_cache().find(key);
    if (it != prec_cache().end()) return it->second;
  }

  // Synthetic GEMM of the node's exact shape; the packs are built outside
  // the timed region (prepacking is load-time work either way).
  std::vector<float> w(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * l));
  std::vector<float> c(static_cast<size_t>(m * l));
  uint32_t lcg = 0x5eed1234u;
  auto next = [&lcg] {
    lcg = lcg * 1664525u + 1013904223u;
    return (static_cast<float>((lcg >> 9) & 0x3ff) - 512.f) / 256.f;
  };
  for (float& v : w) v = next();
  for (float& v : b) v = next();

  const PackedWeight wp32(GemmLayout::kNN, w.data(), m, k, Precision::kFp32);
  const PackedWeight wp8(GemmLayout::kNN, w.data(), m, k, Precision::kInt8);
  const StridedBPacker bp(b.data(), l, false);
  const int64_t blocks = gemm_col_blocks(l);

  const double t32 = best_of(3, [&] {
    for (int64_t blk = 0; blk < blocks; ++blk) {
      gemm_col_block(wp32.fp32_view(), bp, l, blk, c.data());
    }
  });

  const float bmax = max_abs(b.data(), k * l);
  const float inv_b = bmax > 0.f ? 127.f / bmax : 0.f;
  std::vector<float> combined(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    combined[static_cast<size_t>(i)] = wp8.row_scales()[i] * (bmax / 127.f);
  }
  const double t8 = best_of(3, [&] {
    for (int64_t blk = 0; blk < blocks; ++blk) {
      gemm_col_block_i8(wp8, bp, inv_b, combined.data(), l, blk, c.data(),
                        nullptr);
    }
  });

  // Int8 must earn its quantization error: require a clear (>5%) speed win
  // for this shape, otherwise the conv stays fp32.
  const Precision pick =
      t8 < t32 * 0.95 ? Precision::kInt8 : Precision::kFp32;
  std::lock_guard<std::mutex> lock(prec_mutex);
  return prec_cache().emplace(key, pick).first->second;  // first decision wins
}

}  // namespace litho::runtime
