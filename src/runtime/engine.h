// Inference engine: loads a DOINN checkpoint
// once, owns the thread pool, and serves batched and large-tile predictions
// on the no-grad fast path. This is the long-lived object behind
// apps/doinn_serve.cpp and the serve-throughput benchmark.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/doinn.h"
#include "core/large_tile.h"
#include "runtime/thread_pool.h"
#include "tensor/prepack.h"

namespace litho::runtime {

struct EngineOptions {
  /// Parallelism degree; <= 0 means ThreadPool::default_num_threads()
  /// (DOINN_NUM_THREADS env var, else hardware concurrency).
  int num_threads = 0;
  /// Inference storage precision (tensor/prepack.h). kFp32 keeps the engine
  /// bitwise identical to the per-call-packing path; kInt8/kBf16 trade
  /// accuracy for speed with their own per-mode determinism guarantees.
  litho::Precision precision = litho::Precision::kFp32;
};

/// Thread-safe, inference-only front end over a Doinn model. The model is
/// switched to eval mode at construction and never trained through the
/// engine, so concurrent predictions share it without locks.
class InferenceEngine {
 public:
  /// Loads a checkpoint written by core::save_doinn / `doinn_cli train`.
  explicit InferenceEngine(const std::string& checkpoint_path,
                           EngineOptions opts = {});

  /// Fresh (untrained) model — used by tests and benchmarks where weight
  /// values don't matter, only the compute.
  InferenceEngine(core::DoinnConfig cfg, uint32_t seed,
                  EngineOptions opts = {});

  /// Configuration embedded in the loaded checkpoint (tile size, modes,
  /// channel widths); requests are routed on config().tile.
  const core::DoinnConfig& config() const { return model_->config(); }
  /// The engine-owned pool every prediction's parallel kernels run on.
  ThreadPool& pool() { return *pool_; }
  /// The inference storage precision this engine was built with.
  litho::Precision precision() const { return precision_; }

  /// Binarized contours for training-tile-sized masks (each [tile, tile]).
  /// The masks are stacked into one [N,1,H,W] batch and pushed through a
  /// single no-grad forward pass, so the batched conv / FFT kernels
  /// parallelize across samples. Per-sample results are bitwise identical
  /// to core::predict_contour.
  std::vector<Tensor> predict_batch(const std::vector<Tensor>& masks);

  /// Binarized contour for a mask larger than the training tile: the
  /// half-overlap clip GP passes of the Section 3.2 scheme fan out across
  /// the pool, then the stitched LP + IR pass runs on the full tile.
  /// Bitwise identical to the serial LargeTilePredictor::predict for any
  /// thread count.
  Tensor predict_large(const Tensor& mask);

  /// Dispatches on mask size: plain batched path for masks up to the
  /// training tile, large-tile scheme above it.
  Tensor predict(const Tensor& mask);

 private:
  std::unique_ptr<core::Doinn> model_;
  std::unique_ptr<core::LargeTilePredictor> large_;
  std::unique_ptr<ThreadPool> pool_;
  litho::Precision precision_ = litho::Precision::kFp32;
};

}  // namespace litho::runtime
