// Inference engine: loads a DOINN checkpoint
// once, owns the thread pool, and serves batched and large-tile predictions
// on the no-grad fast path. This is the long-lived object behind
// apps/doinn_serve.cpp and the serve-throughput benchmark.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "core/doinn.h"
#include "core/large_tile.h"
#include "runtime/graph_exec.h"
#include "runtime/thread_pool.h"
#include "tensor/prepack.h"

namespace litho::runtime {

struct EngineOptions {
  /// Parallelism degree; <= 0 means ThreadPool::default_num_threads()
  /// (DOINN_NUM_THREADS env var, else hardware concurrency).
  int num_threads = 0;
  /// Inference storage precision (tensor/prepack.h). kFp32 keeps the engine
  /// bitwise identical to the per-call-packing path; kInt8/kBf16 trade
  /// accuracy for speed with their own per-mode determinism guarantees.
  litho::Precision precision = litho::Precision::kFp32;
  /// Compile forwards into the static graph executor (per-shape capture,
  /// arena-planned buffers, fused GEMM epilogues); every plan is validated
  /// bitwise against the op walk once at build and the engine falls back to
  /// the op walk per shape if validation fails. false = always op-walk.
  bool use_graph_executor = true;
  /// Benchmark per-shape kernel knobs (GEMM column-block width, packed-B
  /// feed) when building plans; knobs are bitwise-neutral, so this trades
  /// load time for steady-state speed only.
  bool autotune = true;
  /// How kInt8 engines pack conv weights. kAuto (with autotune on) times
  /// fp32 vs int8 per conv GEMM shape and keeps the shapes where
  /// quantization doesn't pay in fp32; kAlways packs every conv int8
  /// (manual override, the pre-executor behavior).
  enum class Int8Policy { kAuto, kAlways };
  Int8Policy int8_policy = Int8Policy::kAuto;
};

/// Thread-safe, inference-only front end over a Doinn model. The model is
/// switched to eval mode at construction and never trained through the
/// engine, so concurrent predictions share it without locks.
class InferenceEngine {
 public:
  /// Loads a checkpoint written by core::save_doinn / `doinn_cli train`.
  explicit InferenceEngine(const std::string& checkpoint_path,
                           EngineOptions opts = {});

  /// Fresh (untrained) model — used by tests and benchmarks where weight
  /// values don't matter, only the compute.
  InferenceEngine(core::DoinnConfig cfg, uint32_t seed,
                  EngineOptions opts = {});

  /// Replica constructor: an engine over a model another engine already
  /// owns. @p model must be in eval mode with weights prepacked at
  /// opts.precision (the primary replica's checkpoint constructor does
  /// both, including the int8 per-shape repack); this constructor never
  /// touches the model, so every replica reads the same immutable weight
  /// tensors and PackedWeight panels — N replicas cost ~1x weight memory.
  /// Each replica still owns its thread pool, plan cache, and arenas;
  /// concurrent predictions across replicas are safe because the shared
  /// state is read-only after construction (runtime::EnginePool drives one
  /// dispatcher thread per replica on top of this).
  InferenceEngine(std::shared_ptr<core::Doinn> model, EngineOptions opts = {});

  /// The model this engine runs, shareable with replica engines.
  const std::shared_ptr<core::Doinn>& shared_model() const { return model_; }

  /// Configuration embedded in the loaded checkpoint (tile size, modes,
  /// channel widths); requests are routed on config().tile.
  const core::DoinnConfig& config() const { return model_->config(); }
  /// The engine-owned pool every prediction's parallel kernels run on.
  ThreadPool& pool() { return *pool_; }
  /// The inference storage precision this engine was built with.
  litho::Precision precision() const { return precision_; }

  /// Binarized contours for training-tile-sized masks (each [tile, tile]).
  /// The masks are stacked into one [N,1,H,W] batch and pushed through a
  /// single no-grad forward pass, so the batched conv / FFT kernels
  /// parallelize across samples. Per-sample results are bitwise identical
  /// to core::predict_contour.
  std::vector<Tensor> predict_batch(const std::vector<Tensor>& masks);

  /// Binarized contour for a mask larger than the training tile: the
  /// half-overlap clip GP passes of the Section 3.2 scheme fan out across
  /// the pool, then the stitched LP + IR pass runs on the full tile.
  /// Bitwise identical to the serial LargeTilePredictor::predict for any
  /// thread count.
  Tensor predict_large(const Tensor& mask);

  /// Dispatches on mask size: plain batched path for masks up to the
  /// training tile, large-tile scheme above it.
  Tensor predict(const Tensor& mask);

  /// Plans built so far (one per distinct forward kind x input shape).
  int64_t plan_count() const;
  /// Shapes where executor validation failed and the op walk serves instead.
  int64_t plan_fallbacks() const;

 private:
  // One compiled plan per (forward kind, input shape). exec == nullptr means
  // the shape runs the op walk (executor disabled, or validation failed).
  struct Plan {
    std::unique_ptr<GraphExecutor> exec;
  };
  enum PlanKind : int { kForwardPlan = 0, kGpPlan = 1 };
  using PlanKey = std::tuple<int, int64_t, int64_t, int64_t>;

  void init_graph_executor(bool owns_model_prepack);
  Plan& plan_for(PlanKind kind, int64_t n, int64_t h, int64_t w);

  std::shared_ptr<core::Doinn> model_;
  std::unique_ptr<core::LargeTilePredictor> large_;
  std::unique_ptr<ThreadPool> pool_;
  litho::Precision precision_ = litho::Precision::kFp32;
  EngineOptions opts_;
  mutable std::mutex plan_mutex_;
  std::map<PlanKey, std::unique_ptr<Plan>> plans_;
  int64_t arena_bytes_total_ = 0;
  int64_t plan_fallbacks_ = 0;
};

}  // namespace litho::runtime
