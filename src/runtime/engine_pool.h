// Multi-model, multi-replica serving pool with shared prepacked weights.
//
// One doinn_serve process can now host several models (a manifest-driven
// registry maps model names to checkpoints) and several replicas of each.
// Replicas exist for head-of-line isolation: a replica busy with a
// large-tile request doesn't stall the other replicas' queues. They are
// cheap because every replica of a model shares ONE core::Doinn — the
// primary replica loads the checkpoint, switches it to eval, and prepacks
// the weights; the others are built from InferenceEngine's shared-model
// constructor and never touch the model. N replicas therefore cost ~1x
// weight memory (asserted in tests/test_engine_pool.cpp via
// PackedWeight::total_allocated_bytes) plus per-replica arenas.
//
// Routing: requests carry a model name (empty = the pool's default model);
// within a model the pool picks the replica with the smallest queue depth,
// breaking ties round-robin. Composition never affects bits — every
// replica runs the same immutable weights through the same deterministic
// kernels — so routing is purely a latency policy.
//
// Observability: each replica's scheduler registers its metrics under
// "pool.<model>.r<k>." in the shared registry, the pool adds
// "pool.<model>.requests" / "pool.<model>.rejected" totals, and replica
// dispatch trace spans carry the model name.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/engine.h"
#include "runtime/metrics_registry.h"
#include "runtime/scheduler.h"
#include "tensor/tensor.h"

namespace litho::runtime {

/// One line of a model registry: which checkpoint to serve under which
/// name, at what precision, with how many replicas.
struct ModelSpec {
  std::string name;
  std::string checkpoint;
  litho::Precision precision = litho::Precision::kFp32;
  int replicas = 1;
};

/// Parses a model-registry file. Format, one model per line:
///
///   <name> <checkpoint-path> [precision] [replicas]
///
/// where precision is fp32|int8|bf16 (default fp32) and replicas >= 1
/// (default 1). Blank lines and lines starting with '#' are skipped.
/// Model names must be non-empty, unique, and free of whitespace (they
/// travel in protocol frames and metric names). Throws
/// std::invalid_argument on any malformed line (duplicate name, bad
/// precision, replicas < 1, trailing junk) and std::runtime_error when the
/// file can't be opened. Checkpoint paths are validated later, when
/// EnginePool loads them.
std::vector<ModelSpec> parse_model_registry(const std::string& path);

/// parse_model_registry on in-memory text (tests, error-path coverage).
std::vector<ModelSpec> parse_model_registry_text(const std::string& text);

/// Per-model aggregate of the replica schedulers' counters.
struct ModelStats {
  std::string name;
  int replicas = 0;
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t rejected = 0;
  int64_t batches = 0;
};

/// Pool-wide tuning: the per-replica engine/scheduler knobs plus routing
/// defaults. engine.precision is overridden per model from its ModelSpec;
/// scheduler.metrics/metric_prefix/trace_model are overridden per replica.
struct EnginePoolOptions {
  EngineOptions engine;
  SchedulerOptions scheduler;
  /// Model served when a request names none (v1 protocol frames, manifest
  /// lines without a model: prefix). Empty = the registry's first model.
  std::string default_model;
  /// Registry for the pool.* metrics and every replica scheduler. nullptr
  /// = a pool-private registry.
  MetricsRegistry* metrics = nullptr;
};

/// Owns per-model replica sets of Scheduler + InferenceEngine and routes
/// named requests to the least-loaded replica. Thread-safe after
/// construction: the model table is immutable and replica scheduling is
/// internally synchronized.
class EnginePool {
 public:
  /// Loads every spec's checkpoint (primary replica) and builds the
  /// remaining replicas from the primary's shared model. Throws
  /// std::invalid_argument for an empty spec list, a duplicate model name,
  /// replicas < 1, or a default_model that names no spec; checkpoint load
  /// failures propagate from core::load_doinn.
  EnginePool(const std::vector<ModelSpec>& specs, EnginePoolOptions opts = {});
  ~EnginePool();

  EnginePool(const EnginePool&) = delete;
  EnginePool& operator=(const EnginePool&) = delete;

  /// Blocking submit to @p model ("" = default). Backpressure blocks on
  /// the chosen replica's queue. Throws std::invalid_argument for unknown
  /// model names.
  std::future<Tensor> submit(const std::string& model, Tensor mask,
                             uint64_t request_id);

  /// Non-blocking submit (the socket front end): std::nullopt when the
  /// chosen replica's queue is full — the caller maps that to BUSY.
  /// Throws std::invalid_argument for unknown model names.
  std::optional<std::future<Tensor>> try_submit(const std::string& model,
                                                Tensor mask,
                                                uint64_t request_id);

  bool has_model(const std::string& name) const;
  const std::string& default_model() const { return default_model_; }
  /// Registry order (routing-independent, stable for reporting).
  std::vector<std::string> model_names() const;
  /// Checkpoint config of @p model ("" = default); requests above
  /// config().tile take the large-tile path on whichever replica wins.
  const core::DoinnConfig& config(const std::string& model) const;
  /// The engine serving replica @p replica of @p model (tests use this to
  /// assert weight sharing via shared_model()).
  const InferenceEngine& engine(const std::string& model, int replica) const;
  int replica_count(const std::string& model) const;

  /// Per-model totals summed over replicas, in registry order.
  std::vector<ModelStats> model_stats() const;
  /// Registry holding pool.* and every replica's metrics.
  MetricsRegistry& metrics() const { return *metrics_; }

  /// Drains every replica scheduler (idempotent; also run by the dtor).
  void shutdown();

 private:
  struct Replica {
    std::unique_ptr<InferenceEngine> engine;
    std::unique_ptr<Scheduler> scheduler;
  };
  struct Model {
    std::string name;
    std::vector<Replica> replicas;
    std::atomic<uint64_t> rr{0};  // round-robin tie-break cursor
    Counter* requests = nullptr;  // pool.<name>.requests
    Counter* rejected = nullptr;  // pool.<name>.rejected
  };

  Model& resolve(const std::string& model);
  const Model& resolve(const std::string& model) const;
  Scheduler& pick_replica(Model& m);

  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  std::vector<std::unique_ptr<Model>> models_;      // registry order
  std::map<std::string, Model*> by_name_;
  std::string default_model_;
};

}  // namespace litho::runtime
