// Dynamic-batching request scheduler for the serving runtime.
//
// The batched conv / FFT / GEMM kernels only pay off when they are fed
// batches, but a serving front end receives requests one at a time. The
// Scheduler sits between the two: clients hand it single masks and get a
// std::future back; a dispatcher thread coalesces queued training-tile-sized
// masks into InferenceEngine::predict_batch calls, flushing a batch as soon
// as it is full (`max_batch`) or the oldest queued request has waited
// `max_delay_us`. Oversized masks are routed to predict_large individually.
//
// Determinism: per-sample predict_batch results are bitwise identical to the
// unbatched path (see InferenceEngine), so every coalescing pattern — any
// batch composition, any flush timing, any client thread count — yields
// bitwise identical per-request results.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "runtime/engine.h"
#include "tensor/tensor.h"

namespace litho::runtime {

/// Scheduler tuning knobs. Defaults suit an interactive server: small
/// batches, low added latency, enough queue for one burst.
struct SchedulerOptions {
  /// Flush a batch once this many same-shape requests are pending.
  /// Must be >= 1.
  int max_batch = 8;
  /// Flush deadline: a batch is dispatched at the latest this many
  /// microseconds after its oldest request was queued, even if not full.
  /// 0 means "never wait": every flush happens as soon as the dispatcher
  /// sees work. Must be >= 0; values above 60 s are clamped to 60 s (which
  /// already means "hold until full"), keeping the deadline arithmetic far
  /// from steady_clock overflow.
  int64_t max_delay_us = 2000;
  /// Bounded-queue capacity. submit() blocks (backpressure) while this many
  /// requests are queued and not yet handed to the engine. Must be
  /// >= max_batch so a full batch can ever form.
  int queue_cap = 64;
};

/// Counters and latency summary exposed by Scheduler::stats(). All values
/// are a consistent snapshot taken under the scheduler lock.
struct SchedulerStats {
  int64_t submitted = 0;        ///< requests accepted by submit()
  int64_t completed = 0;        ///< futures fulfilled with a contour
  int64_t failed = 0;           ///< futures fulfilled with an exception
  int64_t batches = 0;          ///< predict_batch dispatches
  int64_t batched_requests = 0; ///< requests served through predict_batch
  int64_t large = 0;            ///< predict_large dispatches (one request each)
  int64_t max_queue_depth = 0;  ///< high-water mark of the bounded queue
  int64_t queue_depth = 0;      ///< requests queued right now
  /// Per-request wall time from submit() to promise fulfillment, including
  /// queueing delay. Nearest-rank percentiles over a bounded reservoir
  /// sample of all completed requests; 0 when nothing completed.
  double latency_ms_p50 = 0.0;
  double latency_ms_p99 = 0.0;
  double latency_ms_mean = 0.0;
};

/// Asynchronous dynamic-batching front end over an InferenceEngine.
///
/// Thread-safe: any number of client threads may call submit()
/// concurrently. A single dispatcher thread owns all engine calls; the
/// engine's own pool parallelizes each call internally, so the scheduler
/// adds exactly one thread.
///
/// Lifecycle: the dispatcher starts in the constructor and is stopped by
/// shutdown() (also called by the destructor), which drains every queued
/// request before the thread exits — pending futures always resolve.
class Scheduler {
 public:
  /// @param engine Engine the dispatcher calls into. Must outlive the
  ///   scheduler. Masks with height or width above engine.config().tile are
  ///   routed to predict_large, everything else to predict_batch.
  /// @param opts Batching knobs; throws std::invalid_argument when
  ///   max_batch < 1, max_delay_us < 0, or queue_cap < max_batch.
  explicit Scheduler(InferenceEngine& engine, SchedulerOptions opts = {});

  /// Drains and stops the dispatcher (equivalent to shutdown()).
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Queues a 2-D mask for prediction and returns a future for its
  /// binarized contour. Blocks while the queue holds queue_cap requests
  /// (backpressure). Throws std::invalid_argument for non-2-D masks and
  /// std::runtime_error after shutdown() has begun. The future carries any
  /// exception the engine threw for this request's dispatch.
  ///
  /// Tensor storage is shared, not copied: the caller must not mutate the
  /// mask's elements until the future resolves.
  std::future<Tensor> submit(Tensor mask);

  /// Stops accepting new requests, waits until every queued request has
  /// been dispatched and its promise fulfilled, then joins the dispatcher.
  /// Idempotent and safe to call concurrently with submit() (late
  /// submitters get std::runtime_error).
  void shutdown();

  /// Consistent snapshot of the counters and the latency distribution.
  SchedulerStats stats() const;

  const SchedulerOptions& options() const { return opts_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    Tensor mask;
    std::promise<Tensor> promise;
    Clock::time_point enqueued;
  };

  /// Front-of-queue dispatch plan, computed under the lock.
  struct FrontRun {
    int count = 0;      // requests to pop (>= 1 when queue non-empty)
    bool large = false; // route to predict_large (count == 1)
    bool closed = false;// run cannot grow: blocked by a different shape
  };

  FrontRun front_run_locked() const;
  void dispatch_loop();
  void fulfill(std::vector<Request>& batch, bool large);
  void record_latency_locked(const Request& req, int64_t* counter);

  InferenceEngine& engine_;
  const SchedulerOptions opts_;
  const int64_t tile_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;     // dispatcher waits for work / drain
  std::condition_variable space_cv_;    // submitters wait for queue space
  std::condition_variable shutdown_cv_; // late shutdown() callers wait here
  std::deque<Request> queue_;
  bool draining_ = false;
  bool join_claimed_ = false;     // a shutdown() caller owns the join
  bool dispatcher_exited_ = false;

  // Counters + a bounded reservoir sample of completed-request latencies,
  // guarded by mutex_.
  static constexpr size_t kLatencyReservoir = 4096;
  int64_t submitted_ = 0;
  int64_t completed_ = 0;
  int64_t failed_ = 0;
  int64_t batches_ = 0;
  int64_t batched_requests_ = 0;
  int64_t large_ = 0;
  int64_t max_queue_depth_ = 0;
  std::vector<double> latencies_ms_;
  std::mt19937_64 reservoir_rng_{0x5eedfULL};  // stats sampling only — never
                                               // touches prediction results

  std::thread dispatcher_;
};

}  // namespace litho::runtime
