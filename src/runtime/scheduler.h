// Dynamic-batching request scheduler for the serving runtime.
//
// The batched conv / FFT / GEMM kernels only pay off when they are fed
// batches, but a serving front end receives requests one at a time. The
// Scheduler sits between the two: clients hand it single masks and get a
// std::future back; a dispatcher thread coalesces queued training-tile-sized
// masks into InferenceEngine::predict_batch calls, flushing a batch as soon
// as it is full (`max_batch`) or the oldest queued request has waited
// `max_delay_us`. Oversized masks are routed to predict_large individually.
//
// Determinism: per-sample predict_batch results are bitwise identical to the
// unbatched path (see InferenceEngine), so every coalescing pattern — any
// batch composition, any flush timing, any client thread count — yields
// bitwise identical per-request results.
//
// Observability: all counters and the latency distribution live in a
// MetricsRegistry (scheduler.* names; private to this scheduler unless
// SchedulerOptions.metrics points at a shared registry), and when runtime
// tracing is on (src/runtime/trace.h) the dispatcher records per-request
// queue-wait spans (async, correlated by request id), per-batch dispatch
// spans carrying batch id / size / flush reason, and enqueue instants.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "runtime/engine.h"
#include "runtime/metrics_registry.h"
#include "tensor/tensor.h"

namespace litho::runtime {

/// Scheduler tuning knobs. Defaults suit an interactive server: small
/// batches, low added latency, enough queue for one burst.
struct SchedulerOptions {
  /// Flush a batch once this many same-shape requests are pending.
  /// Must be >= 1.
  int max_batch = 8;
  /// Flush deadline: a batch is dispatched at the latest this many
  /// microseconds after its oldest request was queued, even if not full.
  /// 0 means "never wait": every flush happens as soon as the dispatcher
  /// sees work. Must be >= 0; values above 60 s are clamped to 60 s (which
  /// already means "hold until full"), keeping the deadline arithmetic far
  /// from steady_clock overflow.
  int64_t max_delay_us = 2000;
  /// Bounded-queue capacity. submit() blocks (backpressure) while this many
  /// requests are queued and not yet handed to the engine; try_submit()
  /// rejects instead. Must be >= max_batch so a full batch can ever form.
  int queue_cap = 64;
  /// Adaptive batching: when true, the dispatcher derives the effective
  /// hold deadline from the observed inter-arrival rate instead of always
  /// waiting the full max_delay_us. The effective delay is
  ///   min(max_delay_us, (max_batch - 1) * ewma_interarrival)
  /// — the time the rest of the batch plausibly needs to arrive. Under
  /// backlog (fast arrivals) that collapses toward zero so partial batches
  /// flush immediately; when arrivals are sparse it holds the full
  /// max_delay_us ceiling hoping to coalesce. Batch composition never
  /// affects results (the bitwise-determinism contract), so the policy
  /// only trades latency against batch occupancy.
  bool adaptive_delay = false;
  /// Registry the scheduler.* metrics are registered in. nullptr (the
  /// default) gives the scheduler a private registry, so concurrently
  /// live schedulers never mix counts; doinn_serve passes
  /// &MetricsRegistry::global() so one dump covers the whole process.
  MetricsRegistry* metrics = nullptr;
  /// Name prefix for this scheduler's metrics. The default keeps the
  /// historical "scheduler." names; the engine pool gives each replica
  /// scheduler its own "pool.<model>.r<k>." prefix so several schedulers
  /// can share one registry without their counters colliding.
  std::string metric_prefix = "scheduler.";
  /// Model name attached to this scheduler's trace spans (sched.dispatch
  /// "model" arg) so multi-model traces correlate batches to models.
  /// Empty = omit the arg (single-model servers, tests).
  std::string trace_model;
};

/// Counters and latency summary exposed by Scheduler::stats(), snapshotted
/// from the scheduler's metrics registry.
struct SchedulerStats {
  int64_t submitted = 0;        ///< requests accepted by submit()
  int64_t completed = 0;        ///< futures fulfilled with a contour
  int64_t failed = 0;           ///< futures fulfilled with an exception
  int64_t batches = 0;          ///< predict_batch dispatches
  int64_t batched_requests = 0; ///< requests served through predict_batch
  int64_t large = 0;            ///< predict_large dispatches (one request each)
  int64_t rejected = 0;         ///< try_submit() refusals (queue full / draining)
  int64_t max_queue_depth = 0;  ///< high-water mark of the bounded queue
  int64_t queue_depth = 0;      ///< requests queued right now
  int64_t effective_delay_us = 0;  ///< hold deadline applied to the last batch
  /// Per-request wall time from submit() to promise fulfillment, including
  /// queueing delay. Percentiles are nearest-rank over the histogram's
  /// bounded reservoir; mean is exact over all completed requests. 0 when
  /// nothing completed.
  double latency_ms_p50 = 0.0;
  double latency_ms_p99 = 0.0;
  double latency_ms_mean = 0.0;
};

/// Asynchronous dynamic-batching front end over an InferenceEngine.
///
/// Thread-safe: any number of client threads may call submit()
/// concurrently. A single dispatcher thread owns all engine calls; the
/// engine's own pool parallelizes each call internally, so the scheduler
/// adds exactly one thread.
///
/// Lifecycle: the dispatcher starts in the constructor and is stopped by
/// shutdown() (also called by the destructor), which drains every queued
/// request before the thread exits — pending futures always resolve.
class Scheduler {
 public:
  /// @param engine Engine the dispatcher calls into. Must outlive the
  ///   scheduler. Masks with height or width above engine.config().tile are
  ///   routed to predict_large, everything else to predict_batch.
  /// @param opts Batching knobs; throws std::invalid_argument when
  ///   max_batch < 1, max_delay_us < 0, or queue_cap < max_batch.
  explicit Scheduler(InferenceEngine& engine, SchedulerOptions opts = {});

  /// Drains and stops the dispatcher (equivalent to shutdown()).
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Queues a 2-D mask for prediction and returns a future for its
  /// binarized contour. Blocks while the queue holds queue_cap requests
  /// (backpressure). Throws std::invalid_argument for non-2-D masks and
  /// std::runtime_error after shutdown() has begun. The future carries any
  /// exception the engine threw for this request's dispatch.
  ///
  /// Tensor storage is shared, not copied: the caller must not mutate the
  /// mask's elements until the future resolves.
  ///
  /// The two-argument form threads an externally assigned correlation id
  /// (doinn_serve's per-request id) through the trace spans; the
  /// single-argument form assigns ids from an internal counter.
  std::future<Tensor> submit(Tensor mask);
  std::future<Tensor> submit(Tensor mask, uint64_t request_id);

  /// Non-blocking submit for event-loop callers (the socket front end):
  /// returns std::nullopt — immediately, never waiting — when the queue
  /// already holds queue_cap requests or shutdown() has begun, so a full
  /// queue maps to an instant BUSY reject instead of a stalled event loop.
  /// On success the returned future behaves exactly like submit()'s, and
  /// the accepted request is bitwise identical to the blocking path.
  /// Still throws std::invalid_argument for non-2-D masks (malformed
  /// input is a caller bug, not backpressure).
  std::optional<std::future<Tensor>> try_submit(Tensor mask);
  std::optional<std::future<Tensor>> try_submit(Tensor mask,
                                                uint64_t request_id);

  /// Stops accepting new requests, waits until every queued request has
  /// been dispatched and its promise fulfilled, then joins the dispatcher.
  /// Idempotent and safe to call concurrently with submit() (late
  /// submitters get std::runtime_error).
  void shutdown();

  /// Snapshot of the counters and the latency distribution.
  SchedulerStats stats() const;

  /// Requests queued right now (cheap: one lock, no metric snapshots).
  /// The engine pool polls this per submit for least-queue-depth routing.
  int64_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int64_t>(queue_.size());
  }

  /// Registry holding the scheduler.* metrics (the options-provided one,
  /// else the scheduler's private registry).
  MetricsRegistry& metrics() const { return *metrics_; }

  const SchedulerOptions& options() const { return opts_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    Tensor mask;
    std::promise<Tensor> promise;
    Clock::time_point enqueued;
    uint64_t id = 0;  // trace correlation id
  };

  /// Front-of-queue dispatch plan, computed under the lock.
  struct FrontRun {
    int count = 0;      // requests to pop (>= 1 when queue non-empty)
    bool large = false; // route to predict_large (count == 1)
    bool closed = false;// run cannot grow: blocked by a different shape
  };

  FrontRun front_run_locked() const;
  std::future<Tensor> enqueue_locked(Tensor mask, uint64_t request_id);
  int64_t effective_delay_us_locked() const;
  void dispatch_loop();
  void fulfill(std::vector<Request>& batch, bool large);
  void record_outcome(const Request& req, Counter& counter);

  InferenceEngine& engine_;
  const SchedulerOptions opts_;
  const int64_t tile_;

  // Metrics live in *metrics_ (owned unless SchedulerOptions.metrics was
  // set); the references below are resolved once at construction.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  Counter& m_submitted_;
  Counter& m_completed_;
  Counter& m_failed_;
  Counter& m_batches_;
  Counter& m_batched_requests_;
  Counter& m_large_;
  Counter& m_rejected_;
  Gauge& m_max_queue_depth_;
  Gauge& m_effective_delay_us_;
  Histogram& m_latency_ms_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;     // dispatcher waits for work / drain
  std::condition_variable space_cv_;    // submitters wait for queue space
  std::condition_variable shutdown_cv_; // late shutdown() callers wait here
  std::deque<Request> queue_;
  // Inter-arrival EWMA feeding the adaptive-delay policy (guarded by
  // mutex_; ewma < 0 means "no arrivals observed yet").
  double ewma_gap_us_ = -1.0;
  Clock::time_point last_arrival_{};
  bool draining_ = false;
  bool join_claimed_ = false;     // a shutdown() caller owns the join
  bool dispatcher_exited_ = false;
  std::atomic<uint64_t> next_request_id_{0};  // ids for the 1-arg submit()
  uint64_t batch_seq_ = 0;  // trace batch correlation ids (dispatcher only)

  std::thread dispatcher_;
};

}  // namespace litho::runtime
