#include "runtime/engine.h"

#include <stdexcept>

#include "autograd/grad_mode.h"
#include "runtime/trace.h"

namespace litho::runtime {

namespace {

std::unique_ptr<ThreadPool> make_pool(const EngineOptions& opts) {
  return std::make_unique<ThreadPool>(
      opts.num_threads > 0 ? opts.num_threads
                           : ThreadPool::default_num_threads());
}

Tensor binarize(Tensor t) {
  t.apply_([](float v) { return v >= 0.f ? 1.f : 0.f; });
  return t;
}

}  // namespace

InferenceEngine::InferenceEngine(const std::string& checkpoint_path,
                                 EngineOptions opts)
    : model_(core::load_doinn(checkpoint_path)),
      large_(std::make_unique<core::LargeTilePredictor>(*model_)),
      pool_(make_pool(opts)),
      precision_(opts.precision) {
  model_->set_training(false);
  // One walk over the model at load: every conv weight is packed into the
  // GEMM panel layout (at the requested precision) so the serving hot path
  // never rebuilds panels per call.
  model_->prepack_forward(precision_);
}

InferenceEngine::InferenceEngine(core::DoinnConfig cfg, uint32_t seed,
                                 EngineOptions opts)
    : pool_(make_pool(opts)), precision_(opts.precision) {
  std::mt19937 rng(seed);
  model_ = std::make_unique<core::Doinn>(cfg, rng);
  large_ = std::make_unique<core::LargeTilePredictor>(*model_);
  model_->set_training(false);
  model_->prepack_forward(precision_);
}

std::vector<Tensor> InferenceEngine::predict_batch(
    const std::vector<Tensor>& masks) {
  if (masks.empty()) return {};
  const int64_t h = masks.front().size(0), w = masks.front().size(1);
  const int64_t n = static_cast<int64_t>(masks.size());
  DOINN_TRACE_SCOPE("engine.predict_batch", "engine", "batch_size", n, "h", h,
                    "w", w);
  Tensor x({n, 1, h, w});
  for (int64_t i = 0; i < n; ++i) {
    const Tensor& m = masks[static_cast<size_t>(i)];
    if (m.dim() != 2 || m.size(0) != h || m.size(1) != w) {
      throw std::invalid_argument(
          "predict_batch requires equally-shaped 2-D masks");
    }
    std::copy(m.data(), m.data() + h * w, x.data() + i * h * w);
  }

  ag::NoGradGuard no_grad;
  ScopedPool scope(pool_.get());
  ag::Variable out = [&] {
    DOINN_TRACE_SCOPE("engine.forward", "engine", "batch_size", n);
    return model_->forward(ag::Variable(std::move(x), false));
  }();
  std::vector<Tensor> contours;
  contours.reserve(masks.size());
  for (int64_t i = 0; i < n; ++i) {
    Tensor c({h, w});
    std::copy(out.value().data() + i * h * w,
              out.value().data() + (i + 1) * h * w, c.data());
    contours.push_back(binarize(std::move(c)));
  }
  return contours;
}

Tensor InferenceEngine::predict_large(const Tensor& mask) {
  DOINN_TRACE_SCOPE("engine.predict_large", "engine", "h", mask.size(0), "w",
                    mask.size(1));
  ag::NoGradGuard no_grad;
  ScopedPool scope(pool_.get());
  return binarize(large_->predict(mask, pool_.get()));
}

Tensor InferenceEngine::predict(const Tensor& mask) {
  if (mask.dim() != 2) {
    throw std::invalid_argument("predict expects a 2-D mask");
  }
  if (mask.size(0) > config().tile || mask.size(1) > config().tile) {
    return predict_large(mask);
  }
  return predict_batch({mask}).front();
}

}  // namespace litho::runtime
