#include "runtime/engine.h"

#include <cstring>
#include <stdexcept>
#include <tuple>

#include "autograd/grad_mode.h"
#include "runtime/alloc_hooks.h"
#include "runtime/metrics_registry.h"
#include "runtime/trace.h"

namespace litho::runtime {

namespace {

std::unique_ptr<ThreadPool> make_pool(const EngineOptions& opts) {
  return std::make_unique<ThreadPool>(
      opts.num_threads > 0 ? opts.num_threads
                           : ThreadPool::default_num_threads());
}

Tensor binarize(Tensor t) {
  t.apply_([](float v) { return v >= 0.f ? 1.f : 0.f; });
  return t;
}

// Deterministic probe values for plan validation: the same bits every build,
// so op-walk-vs-executor comparisons never depend on when a plan is built.
void fill_probe(Tensor& t) {
  uint32_t lcg = 0x00d011a5u;
  for (int64_t i = 0; i < t.numel(); ++i) {
    lcg = lcg * 1664525u + 1013904223u;
    t.data()[i] = static_cast<float>(lcg >> 8) / 16777216.f;  // [0, 1)
  }
}

}  // namespace

InferenceEngine::InferenceEngine(const std::string& checkpoint_path,
                                 EngineOptions opts)
    : model_(core::load_doinn(checkpoint_path)),
      large_(std::make_unique<core::LargeTilePredictor>(*model_)),
      pool_(make_pool(opts)),
      precision_(opts.precision),
      opts_(opts) {
  model_->set_training(false);
  // One walk over the model at load: every conv weight is packed into the
  // GEMM panel layout (at the requested precision) so the serving hot path
  // never rebuilds panels per call.
  model_->prepack_forward(precision_);
  init_graph_executor(/*owns_model_prepack=*/true);
}

InferenceEngine::InferenceEngine(core::DoinnConfig cfg, uint32_t seed,
                                 EngineOptions opts)
    : pool_(make_pool(opts)), precision_(opts.precision), opts_(opts) {
  std::mt19937 rng(seed);
  model_ = std::make_shared<core::Doinn>(cfg, rng);
  large_ = std::make_unique<core::LargeTilePredictor>(*model_);
  model_->set_training(false);
  model_->prepack_forward(precision_);
  init_graph_executor(/*owns_model_prepack=*/true);
}

InferenceEngine::InferenceEngine(std::shared_ptr<core::Doinn> model,
                                 EngineOptions opts)
    : model_(std::move(model)),
      large_(std::make_unique<core::LargeTilePredictor>(*model_)),
      pool_(make_pool(opts)),
      precision_(opts.precision),
      opts_(opts) {
  // Replica path: the primary engine already switched the shared model to
  // eval and prepacked its weights at this precision — re-packing here
  // would both waste the load time and break the N-replicas-1x-weights
  // contract, so this constructor only builds per-replica state (pool,
  // plan cache, arenas).
  init_graph_executor(/*owns_model_prepack=*/false);
}

void InferenceEngine::init_graph_executor(bool owns_model_prepack) {
  if (!opts_.use_graph_executor) return;
  const int64_t tile = config().tile;

  if (owns_model_prepack && precision_ == litho::Precision::kInt8 &&
      opts_.int8_policy == EngineOptions::Int8Policy::kAuto &&
      opts_.autotune) {
    // Capture once over the all-int8 packs to enumerate the conv GEMM shapes
    // this model actually runs, benchmark fp32 vs int8 per shape, and repack
    // the losers in fp32 before any plan is built. The per-shape decision is
    // process-cached without a thread-count component, so every engine in a
    // process lands on the identical mixed-precision model.
    Tensor example({1, 1, tile, tile});
    std::shared_ptr<ag::CapturedGraph> g;
    {
      ScopedPool scope(pool_.get());
      g = capture_graph(
          example, [this](const ag::Variable& v) { return model_->forward(v); });
    }
    std::map<std::tuple<bool, int64_t, int64_t>, litho::Precision> decided;
    for (const ag::CaptureNode& node : g->nodes) {
      if (!node.conv.valid) continue;
      const litho::Precision p = tuned_conv_precision(
          node.conv.transposed, node.conv.m, node.conv.k, node.conv.l);
      const auto key =
          std::make_tuple(node.conv.transposed, node.conv.m, node.conv.k);
      auto it = decided.find(key);
      if (it == decided.end()) {
        decided.emplace(key, p);
      } else if (p == litho::Precision::kFp32) {
        // A layer packs once but may serve several column extents; keep it
        // fp32 unless int8 pays everywhere it appears.
        it->second = litho::Precision::kFp32;
      }
    }
    model_->prepack_forward_choose(
        [&decided](bool transposed, int64_t m, int64_t k) {
          const auto it = decided.find(std::make_tuple(transposed, m, k));
          return it != decided.end() ? it->second : litho::Precision::kInt8;
        });
  }

  // The serving shape is known now; build its plan at load instead of on the
  // first request.
  plan_for(kForwardPlan, 1, tile, tile);

  // Route the large-tile clip fan-out through the per-shape plan cache: each
  // worker replays the compiled GP plan for its clips instead of re-walking
  // the op graph clip by clip. The clip buffer is reused by the caller, so
  // the replay copies it into the context's arena up front.
  large_->set_gp_clip_fn([this](const Tensor& clip) -> Tensor {
    Plan& p = plan_for(kGpPlan, 1, config().tile, config().tile);
    if (p.exec == nullptr) {
      return model_->gp_features(ag::Variable(clip.clone(), false)).value();
    }
    std::unique_ptr<ExecContext> ctx = p.exec->acquire();
    std::copy(clip.data(), clip.data() + clip.numel(), ctx->input(0));
    p.exec->run(*ctx);
    Tensor out(p.exec->graph().slots[p.exec->graph().outputs[0]].shape);
    std::copy(ctx->output(0), ctx->output(0) + ctx->output_numel(0),
              out.data());
    p.exec->release(std::move(ctx));
    return out;
  });
}

InferenceEngine::Plan& InferenceEngine::plan_for(PlanKind kind, int64_t n,
                                                 int64_t h, int64_t w) {
  const PlanKey key{kind, n, h, w};
  std::lock_guard<std::mutex> lock(plan_mutex_);
  auto it = plans_.find(key);
  if (it != plans_.end()) return *it->second;

  auto plan = std::make_unique<Plan>();
  if (opts_.use_graph_executor) {
    auto fwd = [this, kind](const ag::Variable& v) {
      return kind == kGpPlan ? model_->gp_features(v) : model_->forward(v);
    };
    Tensor probe({n, 1, h, w});
    fill_probe(probe);
    try {
      ScopedPool scope(pool_.get());
      ExecutorOptions eo;
      eo.autotune = opts_.autotune;
      auto exec =
          std::make_unique<GraphExecutor>(capture_graph(probe, fwd), eo);

      // Validate the plan bitwise against the op walk before trusting it: a
      // forward containing an op the recorder doesn't know would have been
      // frozen as a stale constant, and must fall back to the op walk.
      Tensor ref;
      {
        ag::NoGradGuard no_grad;
        ref = fwd(ag::Variable(probe.clone(), false)).value();
      }
      std::unique_ptr<ExecContext> ctx = exec->acquire();
      std::copy(probe.data(), probe.data() + probe.numel(), ctx->input(0));
      exec->run(*ctx);
      const bool ok =
          ctx->output_numel(0) == ref.numel() &&
          std::memcmp(ctx->output(0), ref.data(),
                      sizeof(float) * static_cast<size_t>(ref.numel())) == 0;
      exec->release(std::move(ctx));
      if (ok) {
        arena_bytes_total_ += exec->arena_bytes();
        MetricsRegistry::global()
            .gauge("engine.arena_bytes")
            .set(arena_bytes_total_);
        plan->exec = std::move(exec);
      }
    } catch (const std::exception&) {
      plan->exec.reset();
    }
    if (plan->exec == nullptr) {
      ++plan_fallbacks_;
      MetricsRegistry::global().counter("engine.plan_fallbacks").add(1);
    }
  }
  return *plans_.emplace(key, std::move(plan)).first->second;
}

int64_t InferenceEngine::plan_count() const {
  std::lock_guard<std::mutex> lock(plan_mutex_);
  return static_cast<int64_t>(plans_.size());
}

int64_t InferenceEngine::plan_fallbacks() const {
  std::lock_guard<std::mutex> lock(plan_mutex_);
  return plan_fallbacks_;
}

std::vector<Tensor> InferenceEngine::predict_batch(
    const std::vector<Tensor>& masks) {
  if (masks.empty()) return {};
  const int64_t h = masks.front().size(0), w = masks.front().size(1);
  const int64_t n = static_cast<int64_t>(masks.size());
  DOINN_TRACE_SCOPE("engine.predict_batch", "engine", "batch_size", n, "h", h,
                    "w", w);
  for (const Tensor& m : masks) {
    if (m.dim() != 2 || m.size(0) != h || m.size(1) != w) {
      throw std::invalid_argument(
          "predict_batch requires equally-shaped 2-D masks");
    }
  }

  if (opts_.use_graph_executor) {
    Plan& p = plan_for(kForwardPlan, n, h, w);
    if (p.exec != nullptr) {
      std::unique_ptr<ExecContext> ctx = p.exec->acquire();
      for (int64_t i = 0; i < n; ++i) {
        const Tensor& m = masks[static_cast<size_t>(i)];
        std::copy(m.data(), m.data() + h * w, ctx->input(0) + i * h * w);
      }
      {
        DOINN_TRACE_SCOPE("engine.forward", "engine", "batch_size", n);
        ScopedPool scope(pool_.get());
        // Steady-state replays must not touch the heap; the gauge is the
        // observable for that contract (nonzero only in binaries that link
        // the counting operator new — bench_graph_exec, test_graph_exec).
        static Gauge& allocs_gauge =
            MetricsRegistry::global().gauge("engine.heap_allocs_per_batch");
        const int64_t allocs_before = heap_alloc_count();
        p.exec->run(*ctx);
        allocs_gauge.set(heap_alloc_count() - allocs_before);
      }
      std::vector<Tensor> contours;
      contours.reserve(masks.size());
      const float* out = ctx->output(0);
      for (int64_t i = 0; i < n; ++i) {
        Tensor c({h, w});
        std::copy(out + i * h * w, out + (i + 1) * h * w, c.data());
        contours.push_back(binarize(std::move(c)));
      }
      p.exec->release(std::move(ctx));
      return contours;
    }
  }

  Tensor x({n, 1, h, w});
  for (int64_t i = 0; i < n; ++i) {
    const Tensor& m = masks[static_cast<size_t>(i)];
    std::copy(m.data(), m.data() + h * w, x.data() + i * h * w);
  }

  ag::NoGradGuard no_grad;
  ScopedPool scope(pool_.get());
  ag::Variable out = [&] {
    DOINN_TRACE_SCOPE("engine.forward", "engine", "batch_size", n);
    return model_->forward(ag::Variable(std::move(x), false));
  }();
  std::vector<Tensor> contours;
  contours.reserve(masks.size());
  for (int64_t i = 0; i < n; ++i) {
    Tensor c({h, w});
    std::copy(out.value().data() + i * h * w,
              out.value().data() + (i + 1) * h * w, c.data());
    contours.push_back(binarize(std::move(c)));
  }
  return contours;
}

Tensor InferenceEngine::predict_large(const Tensor& mask) {
  DOINN_TRACE_SCOPE("engine.predict_large", "engine", "h", mask.size(0), "w",
                    mask.size(1));
  if (opts_.use_graph_executor) {
    // Build (and validate) the GP clip plan on this thread before the clip
    // fan-out so workers replay a ready plan instead of racing to build it.
    plan_for(kGpPlan, 1, config().tile, config().tile);
  }
  ag::NoGradGuard no_grad;
  ScopedPool scope(pool_.get());
  return binarize(large_->predict(mask, pool_.get()));
}

Tensor InferenceEngine::predict(const Tensor& mask) {
  if (mask.dim() != 2) {
    throw std::invalid_argument("predict expects a 2-D mask");
  }
  if (mask.size(0) > config().tile || mask.size(1) > config().tile) {
    return predict_large(mask);
  }
  return predict_batch({mask}).front();
}

}  // namespace litho::runtime
