// Low-overhead per-request trace recorder for the serving stack.
//
// Every instrumented thread owns a private lock-free ring buffer of
// fixed-size events (complete spans, async spans, instants). Recording an
// event is a couple of steady-clock reads plus a handful of stores into the
// thread's own ring — no locks, no allocation after the ring exists — so
// spans can sit on the scheduler dispatch path and the FFT/GEMM kernel
// entries without perturbing the measurement. The serializer merges all
// rings into Chrome Trace Event Format JSON (the `{"traceEvents": [...]}`
// form) loadable in chrome://tracing or https://ui.perfetto.dev, and
// `scripts/trace_summary.py` validates + summarizes the same files.
//
// Overhead contract:
//  - Configure-time off (-DDOINN_TRACING=OFF => DOINN_TRACING_ENABLED=0):
//    every DOINN_TRACE_SCOPE and emit call compiles to nothing.
//  - Runtime off (the default): each instrumentation site costs one store
//    and one predicted branch on a relaxed atomic load. No ring is ever
//    allocated until a thread records its first event while enabled.
//  - Runtime on: an event is two clock reads plus ~100 bytes written to a
//    per-thread ring (oldest events are overwritten on wrap).
//  - Tracing only observes timestamps; it never reorders work or touches
//    tensor data, so traced and untraced runs are bitwise identical (the
//    repo-wide determinism contract; see docs/ARCHITECTURE.md).
//
// String lifetime: event names, categories, arg keys and string arg values
// are stored as raw pointers and must be string literals (or otherwise
// outlive the recorder).
//
// Dump consistency: snapshot()/dump_json() may run while other threads
// record. Events landing during the dump can be dropped, and on a ring
// that is actively wrapping the oldest retained events may tear; dump at
// quiescence (shutdown, drained scheduler) for exact traces. Dumps taken
// mid-load (SIGUSR1) are best-effort.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

// Set by CMake (option DOINN_TRACING); default on for plain compiles.
#ifndef DOINN_TRACING_ENABLED
#define DOINN_TRACING_ENABLED 1
#endif

namespace litho::runtime::trace {

enum class Kind : uint8_t {
  kSpan,     // complete span: ph "X" (ts + dur)
  kAsync,    // async span: ph "b"/"e" pair correlated by `id` (cross-thread
             // per-request intervals that may overlap on one tid)
  kInstant,  // ph "i"
};

/// One recorded event, exactly as stored in a ring slot. POD on purpose:
/// ring writes are plain struct assignments.
struct Event {
  const char* name;
  const char* cat;
  int64_t ts_ns;   // steady-clock ns since the process trace epoch
  int64_t dur_ns;  // span length; 0 for instants
  uint64_t id;     // async correlation id (kAsync only)
  Kind kind;
  const char* akey[3];  // integer args (nullptr key = unused slot)
  int64_t aval[3];
  const char* skey;  // optional string-valued arg (e.g. flush reason)
  const char* sval;
};

/// Integer arg for the emit_* helpers.
struct ArgI {
  const char* key;
  int64_t value;
};

/// Snapshot of one thread's ring: events in timestamp order plus how many
/// older events the ring overwrote.
struct ThreadEvents {
  int tid = 0;
  std::string thread_name;  // empty when never named
  uint64_t dropped = 0;
  std::vector<Event> events;
};

#if DOINN_TRACING_ENABLED

/// True when runtime tracing is on (relaxed atomic load).
bool enabled();
/// Turns runtime recording on/off. Off is the default at process start.
void set_enabled(bool on);

/// Clears every ring (drops all recorded events and thread names are kept).
/// With @p ring_capacity > 0 also re-sizes all rings and makes that the
/// capacity for rings created later. Call at quiescence: no other thread
/// may be recording. Default capacity is 1<<14 events per thread, or the
/// DOINN_TRACE_BUFFER env var (events per thread, clamped to [64, 1<<22]).
void reset(size_t ring_capacity = 0);

/// Nanoseconds since the process trace epoch (first recorder use).
int64_t now_ns();
/// Converts a steady_clock time point to trace-epoch nanoseconds, so spans
/// timed with steady_clock elsewhere (scheduler queue waits) can be emitted
/// retroactively.
int64_t to_trace_ns(std::chrono::steady_clock::time_point tp);

/// Names this thread's ring ("dispatcher", "writer", ...) for the trace
/// viewer's thread labels. Cheap; safe to call before any event.
void set_thread_name(const char* name);

/// Records a complete span with explicit timing (for retroactive spans).
/// No-op while disabled. At most 3 integer args plus one string arg.
void emit_span(const char* name, const char* cat, int64_t ts_ns,
               int64_t dur_ns, std::initializer_list<ArgI> args = {},
               const char* skey = nullptr, const char* sval = nullptr);
/// Records an async span (ph "b"/"e" correlated by @p id across threads).
void emit_async(const char* name, const char* cat, uint64_t id,
                int64_t ts_ns, int64_t dur_ns,
                std::initializer_list<ArgI> args = {});
/// Records an instant event at now_ns().
void emit_instant(const char* name, const char* cat,
                  std::initializer_list<ArgI> args = {},
                  const char* skey = nullptr, const char* sval = nullptr);

/// Copies every ring's retained events (per-thread, timestamp-sorted).
std::vector<ThreadEvents> snapshot();
/// Serializes all rings as a Chrome Trace Event Format JSON document.
std::string dump_json();
/// dump_json() to a file; returns false (and reports to stderr) on I/O
/// failure.
bool write_json(const std::string& path);

/// RAII complete-span: records one kSpan event covering its lifetime.
/// Constructing while disabled costs one branch; the span then stays inert
/// even if tracing is enabled before the destructor runs.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat) {
    ev_.name = nullptr;
    if (enabled()) open(name, cat);
  }
  ScopedSpan(const char* name, const char* cat, const char* k0, int64_t v0) {
    ev_.name = nullptr;
    if (enabled()) {
      open(name, cat);
      ev_.akey[0] = k0;
      ev_.aval[0] = v0;
    }
  }
  ScopedSpan(const char* name, const char* cat, const char* k0, int64_t v0,
             const char* k1, int64_t v1) {
    ev_.name = nullptr;
    if (enabled()) {
      open(name, cat);
      ev_.akey[0] = k0;
      ev_.aval[0] = v0;
      ev_.akey[1] = k1;
      ev_.aval[1] = v1;
    }
  }
  ScopedSpan(const char* name, const char* cat, const char* k0, int64_t v0,
             const char* k1, int64_t v1, const char* k2, int64_t v2) {
    ev_.name = nullptr;
    if (enabled()) {
      open(name, cat);
      ev_.akey[0] = k0;
      ev_.aval[0] = v0;
      ev_.akey[1] = k1;
      ev_.aval[1] = v1;
      ev_.akey[2] = k2;
      ev_.aval[2] = v2;
    }
  }
  ~ScopedSpan() {
    if (ev_.name != nullptr) close();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches/overwrites an integer arg on the pending span (first free of
  /// the 3 slots). No-op when the span is inert.
  void arg(const char* key, int64_t value) {
    if (ev_.name == nullptr) return;
    for (auto& k : ev_.akey) {
      if (k == nullptr || k == key) {
        const auto slot = &k - ev_.akey;
        k = key;
        ev_.aval[slot] = value;
        return;
      }
    }
  }
  /// Attaches the span's string arg (e.g. a flush reason).
  void sarg(const char* key, const char* value) {
    if (ev_.name == nullptr) return;
    ev_.skey = key;
    ev_.sval = value;
  }

 private:
  void open(const char* name, const char* cat);
  void close();

  Event ev_;  // ev_.name == nullptr => inert (disabled at construction)
};

#else  // !DOINN_TRACING_ENABLED — every call site compiles to nothing.

inline constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
inline void reset(size_t = 0) {}
inline int64_t now_ns() { return 0; }
inline int64_t to_trace_ns(std::chrono::steady_clock::time_point) {
  return 0;
}
inline void set_thread_name(const char*) {}
inline void emit_span(const char*, const char*, int64_t, int64_t,
                      std::initializer_list<ArgI> = {},
                      const char* = nullptr, const char* = nullptr) {}
inline void emit_async(const char*, const char*, uint64_t, int64_t, int64_t,
                       std::initializer_list<ArgI> = {}) {}
inline void emit_instant(const char*, const char*,
                         std::initializer_list<ArgI> = {},
                         const char* = nullptr, const char* = nullptr) {}
inline std::vector<ThreadEvents> snapshot() { return {}; }
std::string dump_json();  // valid empty trace document (trace.cpp)
bool write_json(const std::string& path);

class ScopedSpan {
 public:
  ScopedSpan(const char*, const char*) {}
  ScopedSpan(const char*, const char*, const char*, int64_t) {}
  ScopedSpan(const char*, const char*, const char*, int64_t, const char*,
             int64_t) {}
  ScopedSpan(const char*, const char*, const char*, int64_t, const char*,
             int64_t, const char*, int64_t) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  void arg(const char*, int64_t) {}
  void sarg(const char*, const char*) {}
};

#endif  // DOINN_TRACING_ENABLED

#define DOINN_TRACE_CONCAT_IMPL(a, b) a##b
#define DOINN_TRACE_CONCAT(a, b) DOINN_TRACE_CONCAT_IMPL(a, b)
/// Scoped span covering the rest of the enclosing block:
///   DOINN_TRACE_SCOPE("engine.predict_batch", "engine", "batch_size", n);
/// Args: name, category, then up to 3 (const char* key, int64_t value)
/// pairs. One branch when tracing is off at runtime; nothing at all when
/// compiled out.
#define DOINN_TRACE_SCOPE(...)                       \
  ::litho::runtime::trace::ScopedSpan DOINN_TRACE_CONCAT( \
      doinn_trace_scope_, __LINE__)(__VA_ARGS__)

}  // namespace litho::runtime::trace
