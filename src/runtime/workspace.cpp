#include "runtime/workspace.h"

#include <algorithm>
#include <mutex>

namespace litho::runtime {
namespace {

// Bounded free list: enough for every worker of a wide pool to hold a lease
// plus a few spares, and a byte budget so plane-sized scratch from a huge
// tile doesn't stay pinned after the burst that needed it.
constexpr size_t kMaxPooled = 64;
constexpr size_t kMaxPooledBytes = 64u << 20;  // 64 MiB across the free list

}  // namespace

template <typename T>
struct BasicWorkspacePool<T>::Impl {
  mutable std::mutex mu;
  std::vector<std::vector<T>> free_list;
  size_t free_bytes = 0;  // sum of free_list capacities, in bytes
  Stats stats;
};

template <typename T>
typename BasicWorkspacePool<T>::Impl& BasicWorkspacePool<T>::impl() const {
  // Leaked on purpose: leases held by pool workers may release during
  // static destruction.
  static Impl* i = new Impl;
  return *i;
}

template <typename T>
BasicWorkspacePool<T>& BasicWorkspacePool<T>::instance() {
  static BasicWorkspacePool pool;
  return pool;
}

template <typename T>
std::vector<T> BasicWorkspacePool<T>::acquire(size_t min_size) {
  const size_t want = next_pow2(std::max<size_t>(min_size, 1));
  Impl& im = impl();
  std::vector<T> buf;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    ++im.stats.acquires;
    // Smallest pooled buffer that already fits, so big buffers stay
    // available for big requests.
    size_t best = im.free_list.size();
    for (size_t i = 0; i < im.free_list.size(); ++i) {
      const size_t cap = im.free_list[i].capacity();
      if (cap >= want &&
          (best == im.free_list.size() ||
           cap < im.free_list[best].capacity())) {
        best = i;
      }
    }
    if (best != im.free_list.size()) {
      ++im.stats.reuses;
      buf = std::move(im.free_list[best]);
      im.free_bytes -= buf.capacity() * sizeof(T);
      im.free_list[best] = std::move(im.free_list.back());
      im.free_list.pop_back();
    }
  }
  // Grow-only resize outside the lock: buffers keep their high-watermark
  // size across leases, so the value-initializing fill is paid at most once
  // per size class per buffer, never on steady-state reuse. Lease contents
  // stay unspecified either way.
  if (buf.size() < want) buf.resize(want);
  return buf;
}

template <typename T>
void BasicWorkspacePool<T>::release(std::vector<T> buf) {
  const size_t bytes = buf.capacity() * sizeof(T);
  if (bytes == 0) return;
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  if (im.free_list.size() < kMaxPooled &&
      im.free_bytes + bytes <= kMaxPooledBytes) {
    im.free_bytes += bytes;
    im.free_list.push_back(std::move(buf));
  }
}

template <typename T>
typename BasicWorkspacePool<T>::Stats BasicWorkspacePool<T>::stats() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.stats;
}

template <typename T>
void BasicWorkspacePool<T>::clear() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.free_list.clear();
  im.free_bytes = 0;
}

template class BasicWorkspacePool<std::complex<double>>;
template class BasicWorkspacePool<float>;
template class BasicWorkspacePool<int8_t>;

}  // namespace litho::runtime
