#include "runtime/workspace.h"

#include <algorithm>
#include <mutex>

namespace litho::runtime {
namespace {

// Bounded free list: enough for every worker of a wide pool to hold a lease
// plus a few spares, and a byte budget so plane-sized scratch from a huge
// tile doesn't stay pinned after the burst that needed it.
constexpr size_t kMaxPooled = 64;
constexpr size_t kMaxPooledBytes = 64u << 20;  // 64 MiB across the free list

}  // namespace

struct WorkspacePool::Impl {
  mutable std::mutex mu;
  std::vector<std::vector<std::complex<double>>> free_list;
  size_t free_bytes = 0;  // sum of free_list capacities, in bytes
  Stats stats;
};

WorkspacePool::Impl& WorkspacePool::impl() const {
  // Leaked on purpose: leases held by pool workers may release during
  // static destruction.
  static Impl* i = new Impl;
  return *i;
}

WorkspacePool& WorkspacePool::instance() {
  static WorkspacePool pool;
  return pool;
}

std::vector<std::complex<double>> WorkspacePool::acquire(size_t min_size) {
  const size_t want = next_pow2(std::max<size_t>(min_size, 1));
  Impl& im = impl();
  std::vector<std::complex<double>> buf;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    ++im.stats.acquires;
    // Smallest pooled buffer that already fits, so big buffers stay
    // available for big requests.
    size_t best = im.free_list.size();
    for (size_t i = 0; i < im.free_list.size(); ++i) {
      const size_t cap = im.free_list[i].capacity();
      if (cap >= want &&
          (best == im.free_list.size() ||
           cap < im.free_list[best].capacity())) {
        best = i;
      }
    }
    if (best != im.free_list.size()) {
      ++im.stats.reuses;
      buf = std::move(im.free_list[best]);
      im.free_bytes -= buf.capacity() * sizeof(std::complex<double>);
      im.free_list[best] = std::move(im.free_list.back());
      im.free_list.pop_back();
    }
  }
  // Grow-only resize outside the lock: buffers keep their high-watermark
  // size across leases, so the value-initializing fill is paid at most once
  // per size class per buffer, never on steady-state reuse. Lease contents
  // stay unspecified either way.
  if (buf.size() < want) buf.resize(want);
  return buf;
}

void WorkspacePool::release(std::vector<std::complex<double>> buf) {
  const size_t bytes = buf.capacity() * sizeof(std::complex<double>);
  if (bytes == 0) return;
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  if (im.free_list.size() < kMaxPooled &&
      im.free_bytes + bytes <= kMaxPooledBytes) {
    im.free_bytes += bytes;
    im.free_list.push_back(std::move(buf));
  }
}

WorkspacePool::Stats WorkspacePool::stats() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.stats;
}

void WorkspacePool::clear() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.free_list.clear();
  im.free_bytes = 0;
}

Workspace::Workspace(size_t n)
    : buf_(WorkspacePool::instance().acquire(n)), n_(n) {}

Workspace::~Workspace() {
  WorkspacePool::instance().release(std::move(buf_));
}

}  // namespace litho::runtime
