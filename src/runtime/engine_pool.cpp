#include "runtime/engine_pool.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace litho::runtime {

namespace {

[[noreturn]] void registry_error(int line_no, const std::string& line,
                                 const std::string& what) {
  throw std::invalid_argument("model registry line " +
                              std::to_string(line_no) + " (\"" + line +
                              "\"): " + what);
}

std::vector<ModelSpec> parse_registry_stream(std::istream& in) {
  std::vector<ModelSpec> specs;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments, then whitespace-split the remainder.
    const size_t hash = line.find('#');
    std::istringstream fields(hash == std::string::npos
                                  ? line
                                  : line.substr(0, hash));
    ModelSpec spec;
    if (!(fields >> spec.name)) continue;  // blank / comment-only line
    if (!(fields >> spec.checkpoint)) {
      registry_error(line_no, line, "missing checkpoint path");
    }
    std::string precision_word;
    if (fields >> precision_word) {
      try {
        spec.precision = parse_precision(precision_word);
      } catch (const std::invalid_argument&) {
        registry_error(line_no, line,
                       "bad precision \"" + precision_word +
                           "\" (want fp32|int8|bf16)");
      }
      std::string replicas_word;
      if (fields >> replicas_word) {
        try {
          size_t used = 0;
          spec.replicas = std::stoi(replicas_word, &used);
          if (used != replicas_word.size()) throw std::invalid_argument("");
        } catch (const std::exception&) {
          registry_error(line_no, line,
                         "bad replica count \"" + replicas_word + "\"");
        }
        if (spec.replicas < 1) {
          registry_error(line_no, line, "replica count must be >= 1");
        }
        std::string extra;
        if (fields >> extra) {
          registry_error(line_no, line,
                         "trailing field \"" + extra + "\"");
        }
      }
    }
    for (const ModelSpec& prev : specs) {
      if (prev.name == spec.name) {
        registry_error(line_no, line,
                       "duplicate model name \"" + spec.name + "\"");
      }
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace

std::vector<ModelSpec> parse_model_registry(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open model registry: " + path);
  }
  return parse_registry_stream(in);
}

std::vector<ModelSpec> parse_model_registry_text(const std::string& text) {
  std::istringstream in(text);
  return parse_registry_stream(in);
}

EnginePool::EnginePool(const std::vector<ModelSpec>& specs,
                       EnginePoolOptions opts)
    : owned_metrics_(opts.metrics != nullptr ? nullptr : new MetricsRegistry),
      metrics_(opts.metrics != nullptr ? opts.metrics
                                       : owned_metrics_.get()) {
  if (specs.empty()) {
    throw std::invalid_argument("EnginePool: empty model list");
  }
  for (const ModelSpec& spec : specs) {
    if (spec.name.empty()) {
      throw std::invalid_argument("EnginePool: empty model name");
    }
    if (by_name_.count(spec.name) != 0) {
      throw std::invalid_argument("EnginePool: duplicate model name \"" +
                                  spec.name + "\"");
    }
    if (spec.replicas < 1) {
      throw std::invalid_argument("EnginePool: model \"" + spec.name +
                                  "\" needs >= 1 replicas");
    }
    auto model = std::make_unique<Model>();
    model->name = spec.name;
    model->requests = &metrics_->counter("pool." + spec.name + ".requests");
    model->rejected = &metrics_->counter("pool." + spec.name + ".rejected");

    EngineOptions eng_opts = opts.engine;
    eng_opts.precision = spec.precision;
    for (int r = 0; r < spec.replicas; ++r) {
      Replica replica;
      if (r == 0) {
        // Primary replica: loads the checkpoint, flips the model to eval,
        // and prepacks the weights (including the int8 per-shape repack).
        replica.engine =
            std::make_unique<InferenceEngine>(spec.checkpoint, eng_opts);
      } else {
        // Secondary replicas share the primary's model object: same weight
        // tensors, same PackedWeight panels, zero additional weight bytes.
        replica.engine = std::make_unique<InferenceEngine>(
            model->replicas.front().engine->shared_model(), eng_opts);
      }
      SchedulerOptions sched_opts = opts.scheduler;
      sched_opts.metrics = metrics_;
      sched_opts.metric_prefix =
          "pool." + spec.name + ".r" + std::to_string(r) + ".";
      sched_opts.trace_model = spec.name;
      replica.scheduler =
          std::make_unique<Scheduler>(*replica.engine, sched_opts);
      model->replicas.push_back(std::move(replica));
    }
    by_name_.emplace(spec.name, model.get());
    models_.push_back(std::move(model));
  }

  default_model_ = opts.default_model.empty() ? specs.front().name
                                              : opts.default_model;
  if (by_name_.count(default_model_) == 0) {
    throw std::invalid_argument("EnginePool: default model \"" +
                                default_model_ + "\" is not in the registry");
  }
}

EnginePool::~EnginePool() { shutdown(); }

EnginePool::Model& EnginePool::resolve(const std::string& model) {
  const auto it = by_name_.find(model.empty() ? default_model_ : model);
  if (it == by_name_.end()) {
    throw std::invalid_argument("EnginePool: unknown model \"" + model +
                                "\"");
  }
  return *it->second;
}

const EnginePool::Model& EnginePool::resolve(const std::string& model) const {
  return const_cast<EnginePool*>(this)->resolve(model);
}

Scheduler& EnginePool::pick_replica(Model& m) {
  // Least queue depth; round-robin among the minima so single-depth ties
  // (the common idle case) still spread across replicas. The snapshot is
  // advisory — depths move under us — but any replica is correct
  // (determinism is routing-independent), so staleness only costs balance.
  const size_t n = m.replicas.size();
  const uint64_t start = m.rr.fetch_add(1, std::memory_order_relaxed);
  size_t best = 0;
  int64_t best_depth = std::numeric_limits<int64_t>::max();
  for (size_t i = 0; i < n; ++i) {
    const size_t idx = (start + i) % n;
    const int64_t depth = m.replicas[idx].scheduler->queue_depth();
    if (depth < best_depth) {
      best = idx;
      best_depth = depth;
    }
  }
  return *m.replicas[best].scheduler;
}

std::future<Tensor> EnginePool::submit(const std::string& model, Tensor mask,
                                       uint64_t request_id) {
  Model& m = resolve(model);
  m.requests->add();
  return pick_replica(m).submit(std::move(mask), request_id);
}

std::optional<std::future<Tensor>> EnginePool::try_submit(
    const std::string& model, Tensor mask, uint64_t request_id) {
  Model& m = resolve(model);
  m.requests->add();
  auto future = pick_replica(m).try_submit(std::move(mask), request_id);
  if (!future.has_value()) m.rejected->add();
  return future;
}

bool EnginePool::has_model(const std::string& name) const {
  return by_name_.count(name.empty() ? default_model_ : name) != 0;
}

std::vector<std::string> EnginePool::model_names() const {
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& m : models_) names.push_back(m->name);
  return names;
}

const core::DoinnConfig& EnginePool::config(const std::string& model) const {
  return resolve(model).replicas.front().engine->config();
}

const InferenceEngine& EnginePool::engine(const std::string& model,
                                          int replica) const {
  const Model& m = resolve(model);
  if (replica < 0 || static_cast<size_t>(replica) >= m.replicas.size()) {
    throw std::out_of_range("EnginePool: replica index out of range");
  }
  return *m.replicas[static_cast<size_t>(replica)].engine;
}

int EnginePool::replica_count(const std::string& model) const {
  return static_cast<int>(resolve(model).replicas.size());
}

std::vector<ModelStats> EnginePool::model_stats() const {
  std::vector<ModelStats> out;
  out.reserve(models_.size());
  for (const auto& m : models_) {
    ModelStats s;
    s.name = m->name;
    s.replicas = static_cast<int>(m->replicas.size());
    for (const Replica& r : m->replicas) {
      const SchedulerStats rs = r.scheduler->stats();
      s.submitted += rs.submitted;
      s.completed += rs.completed;
      s.failed += rs.failed;
      s.rejected += rs.rejected;
      s.batches += rs.batches + rs.large;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void EnginePool::shutdown() {
  for (const auto& m : models_) {
    for (const Replica& r : m->replicas) r.scheduler->shutdown();
  }
}

}  // namespace litho::runtime
