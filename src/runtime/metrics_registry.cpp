#include "runtime/metrics_registry.h"

#include <cstdio>
#include <fstream>

#include "runtime/percentile.h"

namespace litho::runtime {

void Histogram::record(double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
  // Bounded reservoir (Vitter's algorithm R): after the reservoir fills,
  // each new value replaces a uniformly random slot with probability
  // capacity / count.
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(v);
  } else {
    const auto slot =
        static_cast<size_t>(rng_() % static_cast<uint64_t>(count_));
    if (slot < capacity_) reservoir_[slot] = v;
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  std::vector<double> sample;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.count = count_;
    s.sum = sum_;
    s.min = min_;
    s.max = max_;
    sample = reservoir_;
  }
  if (s.count > 0) s.mean = s.sum / static_cast<double>(s.count);
  if (!sample.empty()) {
    std::sort(sample.begin(), sample.end());
    auto rank = [&sample](double q) {
      const auto r = static_cast<size_t>(
          std::max<long long>(0, static_cast<long long>(std::ceil(
                                     q * static_cast<double>(sample.size()))) -
                                     1));
      return sample[std::min(r, sample.size() - 1)];
    };
    s.p50 = rank(0.50);
    s.p90 = rank(0.90);
    s.p99 = rank(0.99);
  }
  return s;
}

double Histogram::percentile(double q) const {
  std::vector<double> sample;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sample = reservoir_;
  }
  return nearest_rank_percentile(std::move(sample), q);
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  reservoir_.clear();
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  rng_.seed(0x5eedfULL);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry;  // leaked: metrics may
                                                      // be read at exit
  return *reg;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      size_t reservoir_capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(reservoir_capacity);
  return *slot;
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

std::string MetricsRegistry::dump_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(c->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(g->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"count\": " + std::to_string(s.count);
    out += ", \"sum\": ";
    append_number(out, s.sum);
    out += ", \"mean\": ";
    append_number(out, s.mean);
    out += ", \"min\": ";
    append_number(out, s.min);
    out += ", \"max\": ";
    append_number(out, s.max);
    out += ", \"p50\": ";
    append_number(out, s.p50);
    out += ", \"p90\": ";
    append_number(out, s.p90);
    out += ", \"p99\": ";
    append_number(out, s.p99);
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "metrics: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const std::string json = dump_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "metrics: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace litho::runtime
