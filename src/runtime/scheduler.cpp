#include "runtime/scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "runtime/percentile.h"

namespace litho::runtime {

namespace {

/// Clamps the batch-hold deadline to 60 s: semantically "hold until full",
/// and small enough that enqueued + microseconds(delay) can never overflow
/// steady_clock's int64 nanosecond range.
SchedulerOptions clamp_options(SchedulerOptions opts) {
  constexpr int64_t kMaxDelayUs = 60'000'000;
  if (opts.max_delay_us > kMaxDelayUs) opts.max_delay_us = kMaxDelayUs;
  return opts;
}

}  // namespace

Scheduler::Scheduler(InferenceEngine& engine, SchedulerOptions opts)
    : engine_(engine), opts_(clamp_options(opts)), tile_(engine.config().tile) {
  if (opts_.max_batch < 1) {
    throw std::invalid_argument("Scheduler: max_batch must be >= 1");
  }
  if (opts_.max_delay_us < 0) {
    throw std::invalid_argument("Scheduler: max_delay_us must be >= 0");
  }
  if (opts_.queue_cap < opts_.max_batch) {
    throw std::invalid_argument(
        "Scheduler: queue_cap must be >= max_batch (a full batch could "
        "never form)");
  }
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

Scheduler::~Scheduler() { shutdown(); }

std::future<Tensor> Scheduler::submit(Tensor mask) {
  if (mask.dim() != 2) {
    throw std::invalid_argument("Scheduler::submit expects a 2-D mask");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  space_cv_.wait(lock, [this] {
    return draining_ ||
           queue_.size() < static_cast<size_t>(opts_.queue_cap);
  });
  if (draining_) {
    throw std::runtime_error("Scheduler::submit after shutdown");
  }
  Request req;
  req.mask = std::move(mask);
  req.enqueued = Clock::now();
  std::future<Tensor> future = req.promise.get_future();
  queue_.push_back(std::move(req));
  ++submitted_;
  max_queue_depth_ =
      std::max(max_queue_depth_, static_cast<int64_t>(queue_.size()));
  work_cv_.notify_one();
  return future;
}

void Scheduler::shutdown() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  work_cv_.notify_all();
  space_cv_.notify_all();
  // Exactly one caller performs the join; every other concurrent caller
  // (including the destructor) blocks until the dispatcher has actually
  // exited, so no shutdown() ever returns while dispatch_loop may still
  // touch this object.
  if (!join_claimed_) {
    join_claimed_ = true;
    lock.unlock();
    dispatcher_.join();
    lock.lock();
    dispatcher_exited_ = true;
    shutdown_cv_.notify_all();
  } else {
    shutdown_cv_.wait(lock, [this] { return dispatcher_exited_; });
  }
}

Scheduler::FrontRun Scheduler::front_run_locked() const {
  FrontRun run;
  if (queue_.empty()) return run;
  const Tensor& front = queue_.front().mask;
  if (front.size(0) > tile_ || front.size(1) > tile_) {
    run.count = 1;
    run.large = true;
    run.closed = true;  // dispatches alone; nothing to wait for
    return run;
  }
  const int64_t h = front.size(0), w = front.size(1);
  for (const Request& r : queue_) {
    if (run.count >= opts_.max_batch) break;
    const bool oversized = r.mask.size(0) > tile_ || r.mask.size(1) > tile_;
    if (oversized || r.mask.size(0) != h || r.mask.size(1) != w) {
      // FIFO order is preserved, so a shape break means this batch can
      // never grow further — flush it without waiting out the deadline.
      run.closed = true;
      break;
    }
    ++run.count;
  }
  return run;
}

void Scheduler::record_latency_locked(const Request& req, int64_t* counter) {
  ++*counter;
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - req.enqueued)
          .count();
  // Bounded reservoir sample (Vitter's algorithm R) so a long-lived server
  // keeps O(1) memory and stats() stays cheap: after the reservoir fills,
  // each new latency replaces a uniformly random slot with probability
  // capacity / seen.
  const int64_t seen = completed_ + failed_;
  if (latencies_ms_.size() < kLatencyReservoir) {
    latencies_ms_.push_back(ms);
  } else {
    const auto slot = static_cast<size_t>(
        reservoir_rng_() % static_cast<uint64_t>(seen));
    if (slot < kLatencyReservoir) latencies_ms_[slot] = ms;
  }
}

void Scheduler::fulfill(std::vector<Request>& batch, bool large) {
  std::vector<Tensor> results;
  std::exception_ptr error;
  try {
    if (large) {
      results.push_back(engine_.predict_large(batch.front().mask));
    } else {
      std::vector<Tensor> masks;
      masks.reserve(batch.size());
      for (Request& r : batch) masks.push_back(std::move(r.mask));
      results = engine_.predict_batch(masks);
    }
  } catch (...) {
    error = std::current_exception();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (error) {
      batch[i].promise.set_exception(error);
      record_latency_locked(batch[i], &failed_);
    } else {
      batch[i].promise.set_value(std::move(results[i]));
      record_latency_locked(batch[i], &completed_);
    }
  }
  if (large) {
    ++large_;
  } else {
    ++batches_;
    batched_requests_ += static_cast<int64_t>(batch.size());
  }
}

void Scheduler::dispatch_loop() {
  for (;;) {
    std::vector<Request> batch;
    bool large = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return !queue_.empty() || draining_; });
      if (queue_.empty()) return;  // draining and nothing left
      // Hold the batch open until it fills, closes, or the oldest request
      // hits its deadline. While draining, flush immediately.
      const auto deadline =
          queue_.front().enqueued + std::chrono::microseconds(opts_.max_delay_us);
      work_cv_.wait_until(lock, deadline, [this] {
        if (draining_) return true;
        const FrontRun run = front_run_locked();
        return run.closed || run.count >= opts_.max_batch;
      });
      const FrontRun run = front_run_locked();
      large = run.large;
      batch.reserve(static_cast<size_t>(run.count));
      for (int i = 0; i < run.count; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      // Queue space freed before the engine runs, so producers refill the
      // next batch while this one computes.
      space_cv_.notify_all();
    }
    fulfill(batch, large);
  }
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.batches = batches_;
    s.batched_requests = batched_requests_;
    s.large = large_;
    s.max_queue_depth = max_queue_depth_;
    s.queue_depth = static_cast<int64_t>(queue_.size());
    latencies = latencies_ms_;
  }
  if (!latencies.empty()) {
    double sum = 0.0;
    for (double v : latencies) sum += v;
    s.latency_ms_mean = sum / static_cast<double>(latencies.size());
    s.latency_ms_p50 = nearest_rank_percentile(latencies, 0.50);
    s.latency_ms_p99 = nearest_rank_percentile(std::move(latencies), 0.99);
  }
  return s;
}

}  // namespace litho::runtime
