#include "runtime/scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "runtime/trace.h"

namespace litho::runtime {

namespace {

/// Clamps the batch-hold deadline to 60 s: semantically "hold until full",
/// and small enough that enqueued + microseconds(delay) can never overflow
/// steady_clock's int64 nanosecond range.
SchedulerOptions clamp_options(SchedulerOptions opts) {
  constexpr int64_t kMaxDelayUs = 60'000'000;
  if (opts.max_delay_us > kMaxDelayUs) opts.max_delay_us = kMaxDelayUs;
  return opts;
}

}  // namespace

Scheduler::Scheduler(InferenceEngine& engine, SchedulerOptions opts)
    : engine_(engine),
      opts_(clamp_options(opts)),
      tile_(engine.config().tile),
      owned_metrics_(opts.metrics != nullptr ? nullptr
                                             : new MetricsRegistry),
      metrics_(opts.metrics != nullptr ? opts.metrics : owned_metrics_.get()),
      m_submitted_(metrics_->counter(opts_.metric_prefix +
                                     "requests_submitted")),
      m_completed_(metrics_->counter(opts_.metric_prefix +
                                     "requests_completed")),
      m_failed_(metrics_->counter(opts_.metric_prefix + "requests_failed")),
      m_batches_(metrics_->counter(opts_.metric_prefix +
                                   "batches_dispatched")),
      m_batched_requests_(metrics_->counter(opts_.metric_prefix +
                                            "batched_requests")),
      m_large_(metrics_->counter(opts_.metric_prefix + "large_dispatches")),
      m_rejected_(metrics_->counter(opts_.metric_prefix +
                                    "requests_rejected")),
      m_max_queue_depth_(metrics_->gauge(opts_.metric_prefix +
                                         "queue_depth_max")),
      m_effective_delay_us_(metrics_->gauge(opts_.metric_prefix +
                                            "effective_delay_us")),
      m_latency_ms_(metrics_->histogram(opts_.metric_prefix +
                                        "request_latency_ms")) {
  if (opts_.max_batch < 1) {
    throw std::invalid_argument("Scheduler: max_batch must be >= 1");
  }
  if (opts_.max_delay_us < 0) {
    throw std::invalid_argument("Scheduler: max_delay_us must be >= 0");
  }
  if (opts_.queue_cap < opts_.max_batch) {
    throw std::invalid_argument(
        "Scheduler: queue_cap must be >= max_batch (a full batch could "
        "never form)");
  }
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

Scheduler::~Scheduler() { shutdown(); }

std::future<Tensor> Scheduler::submit(Tensor mask) {
  // Internal ids share the u64 space with doinn_serve's small external
  // ids; the high bit keeps traces mixing both unambiguous.
  return submit(std::move(mask),
                (uint64_t{1} << 63) |
                    (next_request_id_.fetch_add(1, std::memory_order_relaxed) +
                     1));
}

std::future<Tensor> Scheduler::submit(Tensor mask, uint64_t request_id) {
  if (mask.dim() != 2) {
    throw std::invalid_argument("Scheduler::submit expects a 2-D mask");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  space_cv_.wait(lock, [this] {
    return draining_ ||
           queue_.size() < static_cast<size_t>(opts_.queue_cap);
  });
  if (draining_) {
    throw std::runtime_error("Scheduler::submit after shutdown");
  }
  return enqueue_locked(std::move(mask), request_id);
}

std::optional<std::future<Tensor>> Scheduler::try_submit(Tensor mask) {
  return try_submit(std::move(mask),
                    (uint64_t{1} << 63) |
                        (next_request_id_.fetch_add(
                             1, std::memory_order_relaxed) +
                         1));
}

std::optional<std::future<Tensor>> Scheduler::try_submit(Tensor mask,
                                                         uint64_t request_id) {
  if (mask.dim() != 2) {
    throw std::invalid_argument("Scheduler::try_submit expects a 2-D mask");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (draining_ || queue_.size() >= static_cast<size_t>(opts_.queue_cap)) {
    m_rejected_.add();
    if (trace::enabled()) {
      trace::emit_instant(
          "sched.reject", "sched",
          {{"req", static_cast<int64_t>(request_id)},
           {"queue_depth", static_cast<int64_t>(queue_.size())}},
          "reason", draining_ ? "draining" : "queue_full");
    }
    return std::nullopt;
  }
  return enqueue_locked(std::move(mask), request_id);
}

/// Shared tail of submit()/try_submit(): requires mutex_ held and space in
/// the queue. Updates the inter-arrival EWMA the adaptive-delay policy
/// reads, queues the request, and wakes the dispatcher.
std::future<Tensor> Scheduler::enqueue_locked(Tensor mask,
                                              uint64_t request_id) {
  Request req;
  req.mask = std::move(mask);
  req.enqueued = Clock::now();
  req.id = request_id;
  if (last_arrival_ != Clock::time_point{}) {
    // Gaps are clamped to the 60 s delay ceiling: one overnight pause must
    // not poison the average for hours of subsequent traffic.
    const double gap_us = std::min(
        std::chrono::duration<double, std::micro>(req.enqueued -
                                                  last_arrival_)
            .count(),
        60e6);
    constexpr double kAlpha = 0.2;  // ~5-request memory
    ewma_gap_us_ =
        ewma_gap_us_ < 0 ? gap_us
                         : (1.0 - kAlpha) * ewma_gap_us_ + kAlpha * gap_us;
  }
  last_arrival_ = req.enqueued;
  std::future<Tensor> future = req.promise.get_future();
  queue_.push_back(std::move(req));
  m_submitted_.add();
  m_max_queue_depth_.update_max(static_cast<int64_t>(queue_.size()));
  if (trace::enabled()) {
    trace::emit_instant(
        "sched.enqueue", "sched",
        {{"req", static_cast<int64_t>(request_id)},
         {"queue_depth", static_cast<int64_t>(queue_.size())}});
  }
  work_cv_.notify_one();
  return future;
}

int64_t Scheduler::effective_delay_us_locked() const {
  if (!opts_.adaptive_delay || ewma_gap_us_ < 0) return opts_.max_delay_us;
  // Hold only as long as the rest of the batch plausibly needs to arrive
  // at the observed rate; the configured max_delay_us stays the ceiling.
  const double fill_us =
      ewma_gap_us_ * static_cast<double>(opts_.max_batch - 1);
  return std::min<int64_t>(opts_.max_delay_us,
                           static_cast<int64_t>(fill_us));
}

void Scheduler::shutdown() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  work_cv_.notify_all();
  space_cv_.notify_all();
  // Exactly one caller performs the join; every other concurrent caller
  // (including the destructor) blocks until the dispatcher has actually
  // exited, so no shutdown() ever returns while dispatch_loop may still
  // touch this object.
  if (!join_claimed_) {
    join_claimed_ = true;
    lock.unlock();
    dispatcher_.join();
    lock.lock();
    dispatcher_exited_ = true;
    shutdown_cv_.notify_all();
  } else {
    shutdown_cv_.wait(lock, [this] { return dispatcher_exited_; });
  }
}

Scheduler::FrontRun Scheduler::front_run_locked() const {
  FrontRun run;
  if (queue_.empty()) return run;
  const Tensor& front = queue_.front().mask;
  if (front.size(0) > tile_ || front.size(1) > tile_) {
    run.count = 1;
    run.large = true;
    run.closed = true;  // dispatches alone; nothing to wait for
    return run;
  }
  const int64_t h = front.size(0), w = front.size(1);
  for (const Request& r : queue_) {
    if (run.count >= opts_.max_batch) break;
    const bool oversized = r.mask.size(0) > tile_ || r.mask.size(1) > tile_;
    if (oversized || r.mask.size(0) != h || r.mask.size(1) != w) {
      // FIFO order is preserved, so a shape break means this batch can
      // never grow further — flush it without waiting out the deadline.
      run.closed = true;
      break;
    }
    ++run.count;
  }
  return run;
}

void Scheduler::record_outcome(const Request& req, Counter& counter) {
  counter.add();
  m_latency_ms_.record(
      std::chrono::duration<double, std::milli>(Clock::now() - req.enqueued)
          .count());
}

void Scheduler::fulfill(std::vector<Request>& batch, bool large) {
  std::vector<Tensor> results;
  std::exception_ptr error;
  try {
    if (large) {
      results.push_back(engine_.predict_large(batch.front().mask));
    } else {
      std::vector<Tensor> masks;
      masks.reserve(batch.size());
      for (Request& r : batch) masks.push_back(std::move(r.mask));
      results = engine_.predict_batch(masks);
    }
  } catch (...) {
    error = std::current_exception();
  }
  // All metrics land before any promise resolves: a caller that wakes on
  // future.get() and immediately reads stats() must already see this batch
  // (the counters are lock-free, so resolution order is the only fence).
  for (const Request& r : batch) {
    record_outcome(r, error ? m_failed_ : m_completed_);
  }
  if (large) {
    m_large_.add();
  } else {
    m_batches_.add();
    m_batched_requests_.add(static_cast<int64_t>(batch.size()));
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    if (error) {
      batch[i].promise.set_exception(error);
    } else {
      batch[i].promise.set_value(std::move(results[i]));
    }
  }
}

void Scheduler::dispatch_loop() {
  trace::set_thread_name("sched-dispatcher");
  for (;;) {
    std::vector<Request> batch;
    bool large = false;
    const char* flush_reason = "deadline";
    uint64_t batch_id = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return !queue_.empty() || draining_; });
      if (queue_.empty()) return;  // draining and nothing left
      // Hold the batch open until it fills, closes, or the oldest request
      // hits its deadline. While draining, flush immediately. The delay is
      // the configured max_delay_us, or — with adaptive_delay — the EWMA
      // estimate of how long the rest of the batch needs to arrive,
      // sampled once when the batch head is first observed.
      const int64_t delay_us = effective_delay_us_locked();
      m_effective_delay_us_.set(delay_us);
      const auto deadline =
          queue_.front().enqueued + std::chrono::microseconds(delay_us);
      work_cv_.wait_until(lock, deadline, [this] {
        if (draining_) return true;
        const FrontRun run = front_run_locked();
        return run.closed || run.count >= opts_.max_batch;
      });
      const FrontRun run = front_run_locked();
      large = run.large;
      if (run.large) {
        flush_reason = "large";
      } else if (run.count >= opts_.max_batch) {
        flush_reason = "full";
      } else if (run.closed) {
        flush_reason = "shape_break";
      } else if (draining_) {
        flush_reason = "drain";
      }
      batch_id = ++batch_seq_;
      batch.reserve(static_cast<size_t>(run.count));
      for (int i = 0; i < run.count; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      // Queue space freed before the engine runs, so producers refill the
      // next batch while this one computes.
      space_cv_.notify_all();
    }
    if (trace::enabled()) {
      // Per-request queue-wait intervals overlap within a batch, so they go
      // out as async spans correlated by request id rather than nested
      // stack spans on the dispatcher tid.
      const int64_t popped_ns = trace::now_ns();
      for (const Request& r : batch) {
        const int64_t enq_ns = trace::to_trace_ns(r.enqueued);
        trace::emit_async("sched.queue_wait", "sched", r.id, enq_ns,
                          popped_ns - enq_ns,
                          {{"req", static_cast<int64_t>(r.id)},
                           {"batch", static_cast<int64_t>(batch_id)}});
      }
    }
    {
      trace::ScopedSpan span("sched.dispatch", "sched", "batch",
                             static_cast<int64_t>(batch_id), "batch_size",
                             static_cast<int64_t>(batch.size()));
      span.sarg("flush", flush_reason);
      if (!opts_.trace_model.empty()) {
        span.sarg("model", opts_.trace_model.c_str());
      }
      fulfill(batch, large);
    }
  }
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  s.submitted = m_submitted_.value();
  s.completed = m_completed_.value();
  s.failed = m_failed_.value();
  s.batches = m_batches_.value();
  s.batched_requests = m_batched_requests_.value();
  s.large = m_large_.value();
  s.rejected = m_rejected_.value();
  s.max_queue_depth = m_max_queue_depth_.value();
  s.effective_delay_us = m_effective_delay_us_.value();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.queue_depth = static_cast<int64_t>(queue_.size());
  }
  const Histogram::Snapshot lat = m_latency_ms_.snapshot();
  s.latency_ms_p50 = lat.p50;
  s.latency_ms_p99 = lat.p99;
  s.latency_ms_mean = lat.mean;
  return s;
}

}  // namespace litho::runtime
