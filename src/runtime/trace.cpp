#include "runtime/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>

namespace litho::runtime::trace {

#if DOINN_TRACING_ENABLED

namespace {

constexpr size_t kDefaultRingCapacity = size_t{1} << 14;
constexpr size_t kMinRingCapacity = 64;
constexpr size_t kMaxRingCapacity = size_t{1} << 22;

std::atomic<bool> g_enabled{false};

/// Single-producer ring: the owning thread writes slots and publishes via
/// `head` (release); snapshot readers load `head` (acquire) and copy the
/// retained tail. A reader racing an actively wrapping writer can tear the
/// oldest slots — see the header's dump-consistency note.
struct Ring {
  explicit Ring(size_t capacity) : slots(capacity) {}

  std::vector<Event> slots;
  std::atomic<uint64_t> head{0};  // total events ever written
  int tid = 0;
  std::string thread_name;  // guarded by the registry mutex
};

/// All rings ever registered. Rings are never destroyed before reset():
/// events from exited threads must survive until the dump.
struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<Ring>> rings;
  size_t capacity = 0;  // resolved on first registration

  size_t resolve_capacity() {
    if (capacity != 0) return capacity;
    capacity = kDefaultRingCapacity;
    if (const char* env = std::getenv("DOINN_TRACE_BUFFER")) {
      char* end = nullptr;
      const long long v = std::strtoll(env, &end, 10);
      if (end != env && *end == '\0' && v > 0) {
        capacity = std::min(kMaxRingCapacity,
                            std::max(kMinRingCapacity,
                                     static_cast<size_t>(v)));
      } else {
        std::fprintf(stderr,
                     "warning: ignoring invalid DOINN_TRACE_BUFFER=\"%s\"\n",
                     env);
      }
    }
    return capacity;
  }
};

Registry& registry() {
  static Registry* reg = new Registry;  // leaked: threads may record at exit
  return *reg;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

thread_local Ring* t_ring = nullptr;

Ring& local_ring() {
  if (t_ring == nullptr) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto ring = std::make_unique<Ring>(reg.resolve_capacity());
    ring->tid = static_cast<int>(reg.rings.size());
    t_ring = ring.get();
    reg.rings.push_back(std::move(ring));
  }
  return *t_ring;
}

void write_event(const Event& ev) {
  Ring& ring = local_ring();
  const uint64_t head = ring.head.load(std::memory_order_relaxed);
  ring.slots[head % ring.slots.size()] = ev;
  ring.head.store(head + 1, std::memory_order_release);
}

void fill_args(Event& ev, std::initializer_list<ArgI> args) {
  size_t i = 0;
  for (const ArgI& a : args) {
    if (i >= 3) break;
    ev.akey[i] = a.key;
    ev.aval[i] = a.value;
    ++i;
  }
  for (; i < 3; ++i) {
    ev.akey[i] = nullptr;
    ev.aval[i] = 0;
  }
}

/// Appends a JSON string value. Names and keys are library-chosen literals,
/// but escape the JSON-significant characters anyway so a stray name can
/// never produce an unparseable file.
void append_json_string(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_args(std::string& out, const Event& ev) {
  bool any = false;
  for (size_t i = 0; i < 3; ++i) {
    if (ev.akey[i] == nullptr) continue;
    out += any ? "," : ",\"args\":{";
    any = true;
    append_json_string(out, ev.akey[i]);
    out += ':';
    out += std::to_string(ev.aval[i]);
  }
  if (ev.skey != nullptr && ev.sval != nullptr) {
    out += any ? "," : ",\"args\":{";
    any = true;
    append_json_string(out, ev.skey);
    out += ':';
    append_json_string(out, ev.sval);
  }
  if (any) out += '}';
}

void append_ts(std::string& out, const char* key, int64_t ns) {
  char buf[48];
  // Trace Event ts/dur are microseconds; %.3f keeps full ns resolution.
  std::snprintf(buf, sizeof(buf), ",\"%s\":%.3f", key,
                static_cast<double>(ns) / 1e3);
  out += buf;
}

void append_event_json(std::string& out, const Event& ev, int tid) {
  auto header = [&](const char* ph) {
    out += "{\"name\":";
    append_json_string(out, ev.name);
    out += ",\"cat\":";
    append_json_string(out, ev.cat != nullptr ? ev.cat : "doinn");
    out += ",\"ph\":\"";
    out += ph;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
  };
  switch (ev.kind) {
    case Kind::kSpan:
      header("X");
      append_ts(out, "ts", ev.ts_ns);
      append_ts(out, "dur", ev.dur_ns);
      append_args(out, ev);
      out += "},\n";
      break;
    case Kind::kAsync:
      // Async begin/end pair correlated by cat+id; intervals may overlap
      // freely on one tid (per-request spans recorded by the dispatcher).
      header("b");
      out += ",\"id\":" + std::to_string(ev.id);
      append_ts(out, "ts", ev.ts_ns);
      append_args(out, ev);
      out += "},\n";
      header("e");
      out += ",\"id\":" + std::to_string(ev.id);
      append_ts(out, "ts", ev.ts_ns + ev.dur_ns);
      out += "},\n";
      break;
    case Kind::kInstant:
      header("i");
      out += ",\"s\":\"t\"";
      append_ts(out, "ts", ev.ts_ns);
      append_args(out, ev);
      out += "},\n";
      break;
  }
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  trace_epoch();  // pin the epoch no later than the first enable
  g_enabled.store(on, std::memory_order_relaxed);
}

void reset(size_t ring_capacity) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (ring_capacity > 0) {
    reg.capacity = std::min(kMaxRingCapacity,
                            std::max(kMinRingCapacity, ring_capacity));
  }
  for (auto& ring : reg.rings) {
    if (ring_capacity > 0 && ring->slots.size() != reg.capacity) {
      std::vector<Event>(reg.capacity).swap(ring->slots);
    }
    ring->head.store(0, std::memory_order_release);
  }
}

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

int64_t to_trace_ns(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(tp -
                                                              trace_epoch())
      .count();
}

void set_thread_name(const char* name) {
  Ring& ring = local_ring();
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  ring.thread_name = name;
}

void emit_span(const char* name, const char* cat, int64_t ts_ns,
               int64_t dur_ns, std::initializer_list<ArgI> args,
               const char* skey, const char* sval) {
  if (!enabled()) return;
  Event ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.id = 0;
  ev.kind = Kind::kSpan;
  fill_args(ev, args);
  ev.skey = skey;
  ev.sval = sval;
  write_event(ev);
}

void emit_async(const char* name, const char* cat, uint64_t id,
                int64_t ts_ns, int64_t dur_ns,
                std::initializer_list<ArgI> args) {
  if (!enabled()) return;
  Event ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.id = id;
  ev.kind = Kind::kAsync;
  fill_args(ev, args);
  ev.skey = nullptr;
  ev.sval = nullptr;
  write_event(ev);
}

void emit_instant(const char* name, const char* cat,
                  std::initializer_list<ArgI> args, const char* skey,
                  const char* sval) {
  if (!enabled()) return;
  Event ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_ns = now_ns();
  ev.dur_ns = 0;
  ev.id = 0;
  ev.kind = Kind::kInstant;
  fill_args(ev, args);
  ev.skey = skey;
  ev.sval = sval;
  write_event(ev);
}

void ScopedSpan::open(const char* name, const char* cat) {
  ev_.name = name;
  ev_.cat = cat;
  ev_.ts_ns = now_ns();
  ev_.dur_ns = 0;
  ev_.id = 0;
  ev_.kind = Kind::kSpan;
  ev_.akey[0] = ev_.akey[1] = ev_.akey[2] = nullptr;
  ev_.aval[0] = ev_.aval[1] = ev_.aval[2] = 0;
  ev_.skey = nullptr;
  ev_.sval = nullptr;
}

void ScopedSpan::close() {
  ev_.dur_ns = now_ns() - ev_.ts_ns;
  write_event(ev_);
}

std::vector<ThreadEvents> snapshot() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<ThreadEvents> out;
  out.reserve(reg.rings.size());
  for (const auto& ring : reg.rings) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    if (head == 0 && ring->thread_name.empty()) continue;
    ThreadEvents te;
    te.tid = ring->tid;
    te.thread_name = ring->thread_name;
    const size_t cap = ring->slots.size();
    uint64_t begin = 0;
    if (head > cap) {
      // Wrapped: the oldest `head - cap` events are gone. Skip an extra
      // margin so a writer racing this copy lands in slots we ignore.
      const uint64_t margin = cap / 8;
      begin = head - cap + margin;
      te.dropped = begin;
    }
    te.events.reserve(static_cast<size_t>(head - begin));
    for (uint64_t i = begin; i < head; ++i) {
      te.events.push_back(ring->slots[i % cap]);
    }
    // Ring order is event-completion order; spans nest parent-after-child.
    // Timestamp order (ties: longest span first, i.e. parents before
    // children) is what both the serializer and the validator want.
    std::stable_sort(te.events.begin(), te.events.end(),
                     [](const Event& a, const Event& b) {
                       if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                       return a.dur_ns > b.dur_ns;
                     });
    out.push_back(std::move(te));
  }
  return out;
}

std::string dump_json() {
  const std::vector<ThreadEvents> threads = snapshot();
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"doinn\"}},\n";
  for (const ThreadEvents& te : threads) {
    if (!te.thread_name.empty()) {
      out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
             std::to_string(te.tid) + ",\"args\":{\"name\":";
      append_json_string(out, te.thread_name.c_str());
      out += "}},\n";
    }
    for (const Event& ev : te.events) {
      if (ev.name == nullptr) continue;  // torn slot from a racing writer
      append_event_json(out, ev, te.tid);
    }
  }
  // Drop the trailing ",\n" so the array is valid JSON.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "]}\n";
  return out;
}

#else  // !DOINN_TRACING_ENABLED

std::string dump_json() {
  // Valid, loadable, empty trace so --trace-out keeps working in builds
  // with the recorder compiled out.
  return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n";
}

#endif  // DOINN_TRACING_ENABLED

bool write_json(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "trace: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string json = dump_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "trace: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace litho::runtime::trace
