// Unified metrics layer for the serving stack: named counters, gauges, and
// reservoir-sampled histograms behind one registry with a JSON snapshot.
//
// Usage pattern: look a metric up once (registration takes the registry
// mutex) and keep the returned reference — references stay valid for the
// registry's lifetime. Updates are then lock-free for counters/gauges
// (relaxed atomics) and a short mutex for histograms, so metrics can sit on
// the per-request serving path.
//
// The scheduler, the serving front end, and the benches all record into
// this layer (scheduler.* / serve.* namespaces); `doinn_serve
// --metrics-out metrics.json` dumps the global registry on shutdown and on
// SIGUSR1. Histograms reuse the bounded-reservoir + nearest-rank-percentile
// approach of src/runtime/percentile.h, so a long-lived server keeps O(1)
// memory per metric.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <vector>

namespace litho::runtime {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value, with a max-tracking helper for
/// high-water marks.
class Gauge {
 public:
  void set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to @p v if larger (queue high-water marks).
  void update_max(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Distribution summary: exact count/sum/min/max plus nearest-rank
/// percentiles over a bounded reservoir sample (Vitter's algorithm R, fixed
/// seed — sampling never influences computation results).
class Histogram {
 public:
  explicit Histogram(size_t reservoir_capacity = 4096)
      : capacity_(reservoir_capacity == 0 ? 1 : reservoir_capacity) {}

  void record(double v);

  struct Snapshot {
    int64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  Snapshot snapshot() const;
  /// Nearest-rank percentile (q in [0,1]) over the current reservoir.
  double percentile(double q) const;
  void reset();

 private:
  mutable std::mutex mutex_;
  const size_t capacity_;
  std::vector<double> reservoir_;
  std::mt19937_64 rng_{0x5eedfULL};
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metric registry. Thread-safe; returned references remain valid and
/// writable for the registry's lifetime (reset() clears values but keeps
/// every registered metric object alive).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry used by doinn_serve and the benches.
  static MetricsRegistry& global();

  /// Finds or creates the named metric. Names are dot-paths by convention
  /// ("scheduler.requests_submitted"). A histogram's reservoir capacity is
  /// fixed by its first registration.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       size_t reservoir_capacity = 4096);

  /// JSON snapshot: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, min, max, p50, p90, p99}}}.
  std::string dump_json() const;
  /// dump_json() to a file; false (and stderr report) on I/O failure.
  bool write_json(const std::string& path) const;

  /// Zeroes every registered metric (tests, bench phases). References
  /// handed out earlier stay valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  // node-based maps: values never move, so references are stable.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace litho::runtime
