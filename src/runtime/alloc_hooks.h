// Heap-allocation counting hook for the graph executor's zero-allocation
// contract.
//
// The library side is just a relaxed atomic counter. The global operator
// new/delete replacements that feed it live in bench/alloc_count_new.cpp and
// are linked ONLY into the targets that assert the property
// (bench_graph_exec, test_graph_exec) — everything else pays nothing, and
// heap_alloc_count() simply stays at zero there. Callers measure windows as
// counter deltas:
//
//   const int64_t before = heap_alloc_count();
//   engine.predict_batch(masks);               // steady state, warmed up
//   assert(heap_alloc_count() - before == 0);
#pragma once

#include <cstdint>

namespace litho::runtime {

/// Bumps the process allocation counter (called by the counting operator-new
/// TU on every allocation; relaxed, a few ns).
void note_heap_alloc();

/// Allocations observed since process start — zero unless the counting
/// operator-new TU is linked into this binary.
int64_t heap_alloc_count();

}  // namespace litho::runtime
