// Static-graph inference executor: replays a captured DOINN forward
// (autograd/capture.h) as a flat list of kernel closures over one
// arena-planned buffer, with optional epilogue fusion and load-time
// per-shape autotuning.
//
// Pipeline per (input shape, precision):
//   capture  — record the op walk once into a CapturedGraph (the engine
//              drives this; see capture_graph below).
//   fuse     — fold single-consumer elementwise chains (BN-eval affine,
//              LeakyReLU, Tanh) that follow a non-transposed conv into the
//              packed-GEMM epilogue (EpiloguePostStage). The fused stages
//              run per column block after the full K loop, elementwise on
//              finished accumulator values, so fusion is bitwise-neutral.
//   plan     — liveness analysis over slots, then greedy best-fit offset
//              assignment into a single arena so disjoint-lifetime
//              intermediates share memory.
//   autotune — time bitwise-neutral kernel knobs (GEMM column-block width,
//              packed-B feed strategy) per conv node against real arena
//              buffers and bake the winners into the node's NodeTuning.
//   replay   — run(ctx): iterate live nodes calling their closures against
//              prebuilt pointer tables. Steady-state replays perform zero
//              heap allocations (contexts and kernel scratch are pooled).
//
// Determinism: every replay closure runs the same compute core as the op
// walk, and every tuning knob is bitwise-neutral, so executor output is
// bit-identical to the op-walk path for any DOINN_NUM_THREADS and batch
// composition. The engine still validates each plan once on random data and
// falls back to the op walk if an uninstrumented op slipped into a forward
// (its output would have been frozen as a stale constant).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "autograd/capture.h"

namespace litho::runtime {

/// Records @p forward once over @p example_input and returns the captured
/// graph. Runs under NoGradGuard with a thread-local GraphRecorder
/// installed; the single graph input is the example tensor's slot, the
/// single graph output is the forward result's slot.
std::shared_ptr<ag::CapturedGraph> capture_graph(
    const Tensor& example_input,
    const std::function<ag::Variable(const ag::Variable&)>& forward);

struct ExecutorOptions {
  /// Fold elementwise epilogue chains into conv GEMMs.
  bool fuse = true;
  /// Benchmark per-shape kernel knobs at build time (otherwise defaults).
  bool autotune = false;
  /// Wall-clock budget for the autotune pass, per executor build.
  int64_t autotune_budget_ms = 250;
  /// Non-zero: shuffle the arena planner's allocation order with this seed
  /// (aliasing-safety tests — any order must produce a correct plan).
  uint64_t arena_seed = 0;
};

class GraphExecutor;

/// One in-flight replay's buffers: the arena plus per-node pointer tables
/// resolved against it at construction. Acquire from the executor, fill
/// input(), run, read output(), release — contexts recycle through a free
/// list, so steady-state replays allocate nothing.
class ExecContext {
 public:
  /// Writable buffer of graph input @p i (arena-backed, sized to the slot).
  float* input(int i);
  /// Result buffer of graph output @p i after run().
  const float* output(int i) const;
  /// Element count of graph output @p i.
  int64_t output_numel(int i) const;

 private:
  friend class GraphExecutor;
  explicit ExecContext(const GraphExecutor& exec);

  std::vector<float> arena_;
  // Flat pointer tables; node i's operands are the slices
  // ins_[in_off_[i] .. ) and outs_[out_off_[i] .. ).
  std::vector<const float*> ins_;
  std::vector<float*> outs_;
  std::vector<float*> inputs_;
  std::vector<const float*> outputs_;
  const GraphExecutor* exec_ = nullptr;
};

/// Compiled form of one captured graph. Thread-safe: any number of contexts
/// may replay concurrently (nodes only touch their context's arena plus
/// immutable packs/constants).
class GraphExecutor {
 public:
  explicit GraphExecutor(std::shared_ptr<ag::CapturedGraph> graph,
                         ExecutorOptions opts = {});
  ~GraphExecutor();
  GraphExecutor(const GraphExecutor&) = delete;
  GraphExecutor& operator=(const GraphExecutor&) = delete;

  /// Borrows a pooled context (allocates only when the pool is empty).
  std::unique_ptr<ExecContext> acquire();
  /// Returns a context to the pool.
  void release(std::unique_ptr<ExecContext> ctx);

  /// Replays the graph over the context's buffers.
  void run(ExecContext& ctx) const;

  /// Planned arena size in bytes.
  int64_t arena_bytes() const { return arena_floats_ * int64_t{4}; }
  /// Nodes surviving fusion (dead nodes excluded).
  int64_t live_nodes() const { return live_nodes_; }
  /// Elementwise nodes folded into conv epilogues by the fusion pass.
  int64_t fused_nodes() const { return fused_nodes_; }
  const ag::CapturedGraph& graph() const { return *graph_; }

 private:
  friend class ExecContext;

  void fuse_epilogues();
  void plan_arena(uint64_t seed);
  void autotune(int64_t budget_ms);

  std::shared_ptr<ag::CapturedGraph> graph_;
  ExecutorOptions opts_;
  // Execution schedule: indices of live nodes, in capture order.
  std::vector<int> schedule_;
  // Per scheduled node: offsets of its operand slices in a context's flat
  // ins_/outs_ pointer tables (identical across contexts).
  std::vector<int> in_off_, out_off_;
  int64_t ins_total_ = 0, outs_total_ = 0;
  // Per-slot arena offset in floats; -1 = constant (points into its frozen
  // tensor) or unused.
  std::vector<int64_t> slot_offset_;
  int64_t arena_floats_ = 0;
  int64_t live_nodes_ = 0;
  int64_t fused_nodes_ = 0;

  std::mutex pool_mutex_;
  std::vector<std::unique_ptr<ExecContext>> pool_;
};

/// Process-wide per-shape precision decision for prepacked conv GEMMs
/// (ROADMAP prepacking follow-up): times an fp32 vs an int8 synthetic GEMM
/// of the given shape and returns the faster precision. Decisions are
/// cached by (transposed, m, k, l) with no thread-count component, so every
/// engine in a process — whatever its pool width — chooses identically and
/// cross-thread-count bitwise determinism is preserved.
litho::Precision tuned_conv_precision(bool transposed, int64_t m, int64_t k,
                                      int64_t l);

}  // namespace litho::runtime
