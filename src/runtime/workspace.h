// Pooled scratch buffers for parallel kernels: complex<double> buffers for
// the FFT kernels, float buffers for the packed GEMM / convolution engine.
//
// The FFT kernels need per-worker complex scratch (line buffers, Bluestein
// convolution pads, per-plane staging); the packed GEMM engine needs float
// scratch (A/B panel packing, conv gradient columns). Before this pool each
// parallel_for chunk heap-allocated fresh vectors per batch element; a
// serving process doing thousands of predictions per second spent
// measurable time in the allocator and fragmented it. The pool keeps a
// small mutex-guarded free list of previously used buffers, rounded up to
// power-of-two capacities so nearby request sizes hit the same buffer
// class. The list is bounded in both count and total bytes, so plane-sized
// scratch from a huge tile is dropped instead of staying pinned after the
// burst that needed it.
//
// Usage is RAII: a Workspace lease acquires on construction and returns the
// buffer on destruction. Contents are UNSPECIFIED on acquisition — leases
// recycle dirty buffers; callers must fully overwrite (or explicitly zero)
// what they read.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace litho::runtime {

/// Smallest power of two >= n (>= 1). Shared by the workspace pool's buffer
/// size classes and the FFT plan cache's Bluestein pad length.
inline size_t next_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Process-wide recycling pool of T buffers. One independent pool (free
/// list, byte budget, stats) exists per element type.
template <typename T>
class BasicWorkspacePool {
 public:
  /// Global instance used by the BasicWorkspace lease below.
  static BasicWorkspacePool& instance();

  /// A buffer with size() >= min_size (capacity rounded up to a power of
  /// two). Reuses a pooled buffer when one is large enough, else allocates.
  std::vector<T> acquire(size_t min_size);

  /// Returns a buffer to the free list (dropped if the list is full, by
  /// count or total bytes).
  void release(std::vector<T> buf);

  struct Stats {
    size_t acquires = 0;  // total acquire() calls
    size_t reuses = 0;    // acquires served from the free list
  };
  Stats stats() const;

  /// Drops every pooled buffer (tests / memory-pressure hook).
  void clear();

 private:
  struct Impl;
  Impl& impl() const;
};

extern template class BasicWorkspacePool<std::complex<double>>;
extern template class BasicWorkspacePool<float>;
extern template class BasicWorkspacePool<int8_t>;

/// Complex scratch pool used by the FFT kernels.
using WorkspacePool = BasicWorkspacePool<std::complex<double>>;
/// Float scratch pool used by the GEMM engine and the conv kernels.
using FloatWorkspacePool = BasicWorkspacePool<float>;
/// Byte scratch pool used by the reduced-precision inference path (int8 /
/// bf16 panel staging — bf16 leases bytes and views them as uint16).
using Int8WorkspacePool = BasicWorkspacePool<int8_t>;

/// RAII lease of pooled scratch. Not thread-safe itself (one lease per
/// worker chunk); the underlying pool is.
template <typename T>
class BasicWorkspace {
 public:
  explicit BasicWorkspace(size_t n)
      : buf_(BasicWorkspacePool<T>::instance().acquire(n)), n_(n) {}
  ~BasicWorkspace() {
    BasicWorkspacePool<T>::instance().release(std::move(buf_));
  }
  BasicWorkspace(const BasicWorkspace&) = delete;
  BasicWorkspace& operator=(const BasicWorkspace&) = delete;

  /// The leased buffer; contents are unspecified on acquisition.
  T* data() { return buf_.data(); }
  /// The size requested at construction (the buffer may be larger).
  size_t size() const { return n_; }

 private:
  std::vector<T> buf_;
  size_t n_;
};

using Workspace = BasicWorkspace<std::complex<double>>;
using FloatWorkspace = BasicWorkspace<float>;
using Int8Workspace = BasicWorkspace<int8_t>;

}  // namespace litho::runtime
