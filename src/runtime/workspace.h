// Pooled scratch buffers for parallel kernels (ISSUE 2 tentpole, piece 2).
//
// The FFT kernels need per-worker complex scratch (line buffers, Bluestein
// convolution pads, per-plane staging). Before this pool each parallel_for
// chunk heap-allocated fresh vectors per batch element; a serving process
// doing thousands of predictions per second spent measurable time in the
// allocator and fragmented it. The pool keeps a small mutex-guarded free
// list of previously used buffers, rounded up to power-of-two capacities so
// nearby request sizes hit the same buffer class. The list is bounded in
// both count and total bytes, so plane-sized scratch from a huge tile is
// dropped instead of staying pinned after the burst that needed it.
//
// Usage is RAII: a Workspace lease acquires on construction and returns the
// buffer on destruction. Contents are UNSPECIFIED on acquisition — leases
// recycle dirty buffers; callers must fully overwrite (or explicitly zero)
// what they read.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace litho::runtime {

/// Smallest power of two >= n (>= 1). Shared by the workspace pool's buffer
/// size classes and the FFT plan cache's Bluestein pad length.
inline size_t next_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Process-wide recycling pool of std::complex<double> buffers.
class WorkspacePool {
 public:
  /// Global instance used by the Workspace lease below.
  static WorkspacePool& instance();

  /// A buffer with size() >= min_size (capacity rounded up to a power of
  /// two). Reuses a pooled buffer when one is large enough, else allocates.
  std::vector<std::complex<double>> acquire(size_t min_size);

  /// Returns a buffer to the free list (dropped if the list is full, by
  /// count or total bytes).
  void release(std::vector<std::complex<double>> buf);

  struct Stats {
    size_t acquires = 0;  // total acquire() calls
    size_t reuses = 0;    // acquires served from the free list
  };
  Stats stats() const;

  /// Drops every pooled buffer (tests / memory-pressure hook).
  void clear();

 private:
  struct Impl;
  Impl& impl() const;
};

/// RAII lease of pooled scratch. Not thread-safe itself (one lease per
/// worker chunk); the underlying pool is.
class Workspace {
 public:
  explicit Workspace(size_t n);
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  std::complex<double>* data() { return buf_.data(); }
  size_t size() const { return n_; }

 private:
  std::vector<std::complex<double>> buf_;
  size_t n_;
};

}  // namespace litho::runtime
