// Inference runtime thread pool.
//
// A fixed-size pool of workers draining a single locked task queue, plus a
// chunked static-partition parallel_for built on top of it. Design points:
//
//  - Sizing: DOINN_NUM_THREADS env var wins, else
//    std::thread::hardware_concurrency(). A size of 1 means "no workers":
//    everything runs inline on the submitting thread.
//  - parallel_for(n, body) splits [0, n) into at most size() contiguous
//    chunks and calls body(begin, end) once per chunk, so the body can keep
//    per-chunk scratch buffers (im2col columns, FFT line buffers) alive
//    across iterations. Chunk boundaries depend only on (n, size(), grain),
//    never on scheduling, and chunks write disjoint ranges — results are
//    bitwise deterministic for any thread count.
//  - Nesting: a parallel_for issued from inside one of the SAME pool's
//    workers runs inline (single chunk) instead of re-entering the queue,
//    so data-level parallelism composes without deadlock. Workers also
//    propagate their pool as the current_pool() override, so nested kernel
//    loops target the pool executing them rather than the global pool.
//  - Exceptions: the first exception thrown by any chunk is captured and
//    rethrown on the submitting thread after all chunks finish; the pool
//    stays usable.
//  - Grad mode: the submitting thread's ag::GradMode flag is propagated
//    into every chunk (PyTorch's ThreadLocalState idiom), so NoGradGuard
//    held around a parallel region applies to the workers too.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace litho::runtime {

/// Non-owning type-erased reference to a parallel_for body (a lightweight
/// function_ref). parallel_for is synchronous — the referenced callable
/// always outlives the call — so no heap-allocating std::function is ever
/// materialized on the dispatch path; the graph executor's zero-allocation
/// replay contract depends on this.
class ParallelBody {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, ParallelBody> &&
                std::is_invocable_v<const F&, int64_t, int64_t>>>
  ParallelBody(const F& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* o, int64_t b, int64_t e) {
          (*static_cast<const F*>(o))(b, e);
        }) {}

  void operator()(int64_t begin, int64_t end) const { call_(obj_, begin, end); }

 private:
  void* obj_;
  void (*call_)(void*, int64_t, int64_t);
};

class ThreadPool {
 public:
  /// Creates @p num_threads - 1 workers (the submitting thread acts as the
  /// remaining lane). num_threads <= 0 means default_num_threads().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallelism degree (worker count + 1 for the submitting thread).
  int size() const { return size_; }

  /// Enqueues @p task for asynchronous execution. Exceptions escaping the
  /// task are swallowed after being reported to stderr; use parallel_for
  /// when propagation matters.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

  /// Chunked static-partition loop over [0, n): body(begin, end) is invoked
  /// for at most min(size(), n / grain) contiguous chunks, each of at least
  /// @p grain iterations. Runs inline when that bound is one chunk,
  /// size() == 1, or this thread is already executing this pool's work (a
  /// worker task or a parallel_for chunk). Chunk *boundaries* depend only on
  /// (n, size(), grain); which thread executes which chunk is dynamic (a
  /// stack-allocated job broadcast — no per-chunk heap traffic), which is
  /// invisible to results because chunks write disjoint ranges.
  void parallel_for(int64_t n, ParallelBody body, int64_t grain = 1);

  /// Pool size implied by the environment: DOINN_NUM_THREADS if set to a
  /// positive integer, else std::thread::hardware_concurrency().
  static int default_num_threads();

  /// True when called from inside a ThreadPool worker thread.
  static bool in_worker_thread();

 private:
  struct ParallelJob;

  void worker_loop();
  /// Claims and runs chunks of @p job until none remain.
  void run_job_chunks(ParallelJob& job);
  /// First job with unclaimed chunks, or nullptr. Caller holds mutex_.
  ParallelJob* runnable_job_locked();

  int size_;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::condition_variable job_done_;
  ParallelJob* jobs_ = nullptr;  // live parallel_for broadcasts (stack-owned)
  int64_t in_flight_ = 0;  // queued + running tasks
  bool stopping_ = false;
};

/// Process-wide pool used by the parallel kernels (FFT batches, conv im2col,
/// SOCS accumulation). Created on first use with default_num_threads().
ThreadPool& global_pool();

/// Pool the free parallel_for below dispatches to: the innermost ScopedPool
/// override on this thread, else the global pool.
ThreadPool& current_pool();

/// Thread-local RAII override of current_pool(), used by InferenceEngine to
/// route the parallel kernels through its own pool for the duration of a
/// prediction. Nests; passing nullptr is a no-op (keeps the previous pool).
class ScopedPool {
 public:
  /// Makes @p pool the current_pool() for this thread until destruction.
  explicit ScopedPool(ThreadPool* pool);
  /// Restores the previously current pool.
  ~ScopedPool();
  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;

 private:
  ThreadPool* prev_;
};

/// parallel_for on current_pool().
void parallel_for(int64_t n, ParallelBody body, int64_t grain = 1);

}  // namespace litho::runtime
