#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "autograd/grad_mode.h"
#include "runtime/trace.h"

namespace litho::runtime {

namespace {

thread_local bool this_thread_is_worker = false;
/// Pool owning the worker this thread belongs to (nullptr off-pool). A
/// parallel_for on the SAME pool from one of its workers runs inline
/// (deadlock safety); a different pool's loop may still fan out.
thread_local ThreadPool* worker_owner = nullptr;
thread_local ThreadPool* current_pool_override = nullptr;
/// Pool whose parallel_for chunk this thread is currently executing (set on
/// the submitting thread for chunk 0 too, not just workers). A nested loop
/// on the same pool runs inline rather than queueing behind busy workers.
thread_local ThreadPool* active_chunk_pool = nullptr;

/// Scoped thread-local state applied around every chunk: nested kernel
/// loops target the pool executing them (instead of lazily instantiating
/// the global pool) and recognize it as already-parallel.
struct ChunkScope {
  explicit ChunkScope(ThreadPool* pool)
      : prev_override(current_pool_override), prev_active(active_chunk_pool) {
    current_pool_override = pool;
    active_chunk_pool = pool;
  }
  ~ChunkScope() {
    current_pool_override = prev_override;
    active_chunk_pool = prev_active;
  }
  ThreadPool* prev_override;
  ThreadPool* prev_active;
};

}  // namespace

// One in-flight parallel_for broadcast. Lives on the submitting thread's
// stack for the duration of the (synchronous) call; workers reach it through
// the pool's jobs_ list and claim chunks via the atomic cursor, so the
// dispatch allocates nothing. `finished`, `refs` and `error` are guarded by
// the pool mutex; the submitter may not return (and destroy the job) until
// finished == nchunks and refs == 0.
struct ThreadPool::ParallelJob {
  ParallelBody body;
  int64_t base = 0, extra = 0;  // even split: first `extra` chunks +1 long
  int64_t nchunks = 0;
  bool grad_mode = false;
  std::atomic<int64_t> next{0};  // chunk claim cursor
  int64_t finished = 0;          // chunks completed
  int refs = 0;                  // workers currently inside run_job_chunks
  std::exception_ptr error;
  ParallelJob* next_job = nullptr;

  explicit ParallelJob(ParallelBody b) : body(b) {}
};

ThreadPool::ThreadPool(int num_threads) {
  size_ = num_threads > 0 ? num_threads : default_num_threads();
  workers_.reserve(static_cast<size_t>(size_ - 1));
  for (int i = 0; i < size_ - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool::ParallelJob* ThreadPool::runnable_job_locked() {
  for (ParallelJob* j = jobs_; j != nullptr; j = j->next_job) {
    if (j->next.load(std::memory_order_relaxed) < j->nchunks) return j;
  }
  return nullptr;
}

void ThreadPool::run_job_chunks(ParallelJob& job) {
  for (;;) {
    const int64_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.nchunks) return;
    const int64_t begin = c * job.base + std::min(c, job.extra);
    const int64_t end = (c + 1) * job.base + std::min(c + 1, job.extra);
    const bool prev = ag::GradMode::is_enabled();
    ag::GradMode::set_enabled(job.grad_mode);
    try {
      ChunkScope chunk_scope(this);
      job.body(begin, end);
    } catch (...) {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!job.error) job.error = std::current_exception();
    }
    ag::GradMode::set_enabled(prev);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (++job.finished == job.nchunks) job_done_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  this_thread_is_worker = true;
  worker_owner = this;
  trace::set_thread_name("pool-worker");
  for (;;) {
    std::function<void()> task;
    ParallelJob* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] {
        return stopping_ || !tasks_.empty() || runnable_job_locked() != nullptr;
      });
      job = runnable_job_locked();
      if (job != nullptr) {
        ++job->refs;
      } else if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop();
      } else {
        return;  // stopping and drained
      }
    }
    if (job != nullptr) {
      run_job_chunks(*job);
      std::unique_lock<std::mutex> lock(mutex_);
      if (--job->refs == 0 && job->finished == job->nchunks) {
        job_done_.notify_all();
      }
      continue;
    }
    try {
      ChunkScope chunk_scope(this);  // nested kernel loops target this pool
      task();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ThreadPool: uncaught task exception: %s\n",
                   e.what());
    } catch (...) {
      std::fprintf(stderr, "ThreadPool: uncaught task exception\n");
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (size_ <= 1) {
    // No workers: run inline so submit() still makes progress.
    try {
      task();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ThreadPool: uncaught task exception: %s\n",
                   e.what());
    } catch (...) {
      std::fprintf(stderr, "ThreadPool: uncaught task exception\n");
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++in_flight_;
    tasks_.push(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(int64_t n, ParallelBody body, int64_t grain) {
  if (n <= 0) return;
  grain = std::max<int64_t>(1, grain);
  // Floor division keeps every chunk at >= grain iterations (the documented
  // contract); ranges below 2*grain run as a single inline chunk.
  const int64_t max_chunks =
      std::max<int64_t>(1, std::min<int64_t>(size_, n / grain));
  if (max_chunks <= 1 || worker_owner == this || active_chunk_pool == this) {
    body(0, n);
    return;
  }

  // Even split with the first (n % chunks) chunks one element longer — the
  // exact boundaries the task-per-chunk dispatch used, so results (which
  // depend only on boundaries, chunks write disjoint ranges) are unchanged.
  ParallelJob job(body);
  job.base = n / max_chunks;
  job.extra = n % max_chunks;
  job.nchunks = max_chunks;
  job.grad_mode = ag::GradMode::is_enabled();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    job.next_job = jobs_;
    jobs_ = &job;
  }
  task_ready_.notify_all();

  // The submitting thread claims chunks alongside the workers.
  run_job_chunks(job);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    job_done_.wait(lock, [&job] {
      return job.finished == job.nchunks && job.refs == 0;
    });
    ParallelJob** p = &jobs_;
    while (*p != &job) p = &(*p)->next_job;
    *p = job.next_job;
  }
  if (job.error) std::rethrow_exception(job.error);
}

int ThreadPool::default_num_threads() {
  if (const char* env = std::getenv("DOINN_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<int>(std::min<long>(v, 256));
    }
    std::fprintf(stderr,
                 "warning: ignoring invalid DOINN_NUM_THREADS=\"%s\"\n", env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

bool ThreadPool::in_worker_thread() { return this_thread_is_worker; }

ThreadPool& global_pool() {
  static ThreadPool pool(ThreadPool::default_num_threads());
  return pool;
}

ThreadPool& current_pool() {
  return current_pool_override != nullptr ? *current_pool_override
                                          : global_pool();
}

ScopedPool::ScopedPool(ThreadPool* pool) : prev_(current_pool_override) {
  if (pool != nullptr) current_pool_override = pool;
}

ScopedPool::~ScopedPool() { current_pool_override = prev_; }

void parallel_for(int64_t n, ParallelBody body, int64_t grain) {
  if (n <= 0) return;
  if (n < 2 * std::max<int64_t>(1, grain)) {
    // Ranges below two grains can never split (floor-division chunking), so
    // they run inline without resolving a pool — a small kernel never
    // instantiates the global pool as a side effect.
    body(0, n);
    return;
  }
  current_pool().parallel_for(n, body, grain);
}

}  // namespace litho::runtime
