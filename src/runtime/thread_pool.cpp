#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "autograd/grad_mode.h"
#include "runtime/trace.h"

namespace litho::runtime {

namespace {

thread_local bool this_thread_is_worker = false;
/// Pool owning the worker this thread belongs to (nullptr off-pool). A
/// parallel_for on the SAME pool from one of its workers runs inline
/// (deadlock safety); a different pool's loop may still fan out.
thread_local ThreadPool* worker_owner = nullptr;
thread_local ThreadPool* current_pool_override = nullptr;
/// Pool whose parallel_for chunk this thread is currently executing (set on
/// the submitting thread for chunk 0 too, not just workers). A nested loop
/// on the same pool runs inline rather than queueing behind busy workers.
thread_local ThreadPool* active_chunk_pool = nullptr;

/// Scoped thread-local state applied around every chunk: nested kernel
/// loops target the pool executing them (instead of lazily instantiating
/// the global pool) and recognize it as already-parallel.
struct ChunkScope {
  explicit ChunkScope(ThreadPool* pool)
      : prev_override(current_pool_override), prev_active(active_chunk_pool) {
    current_pool_override = pool;
    active_chunk_pool = pool;
  }
  ~ChunkScope() {
    current_pool_override = prev_override;
    active_chunk_pool = prev_active;
  }
  ThreadPool* prev_override;
  ThreadPool* prev_active;
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  size_ = num_threads > 0 ? num_threads : default_num_threads();
  workers_.reserve(static_cast<size_t>(size_ - 1));
  for (int i = 0; i < size_ - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  this_thread_is_worker = true;
  worker_owner = this;
  trace::set_thread_name("pool-worker");
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      ChunkScope chunk_scope(this);  // nested kernel loops target this pool
      task();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ThreadPool: uncaught task exception: %s\n",
                   e.what());
    } catch (...) {
      std::fprintf(stderr, "ThreadPool: uncaught task exception\n");
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (size_ <= 1) {
    // No workers: run inline so submit() still makes progress.
    try {
      task();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ThreadPool: uncaught task exception: %s\n",
                   e.what());
    } catch (...) {
      std::fprintf(stderr, "ThreadPool: uncaught task exception\n");
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++in_flight_;
    tasks_.push(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(
    int64_t n, const std::function<void(int64_t, int64_t)>& body,
    int64_t grain) {
  if (n <= 0) return;
  grain = std::max<int64_t>(1, grain);
  // Floor division keeps every chunk at >= grain iterations (the documented
  // contract); ranges below 2*grain run as a single inline chunk.
  const int64_t max_chunks =
      std::max<int64_t>(1, std::min<int64_t>(size_, n / grain));
  if (max_chunks <= 1 || worker_owner == this || active_chunk_pool == this) {
    body(0, n);
    return;
  }

  struct Shared {
    std::mutex mutex;
    std::condition_variable done;
    int64_t remaining;
    std::exception_ptr error;
  } shared;
  shared.remaining = max_chunks - 1;
  const bool grad_mode = ag::GradMode::is_enabled();

  // Even split with the first (n % chunks) chunks one element longer.
  const int64_t base = n / max_chunks;
  const int64_t extra = n % max_chunks;
  auto chunk_begin = [base, extra](int64_t c) {
    return c * base + std::min(c, extra);
  };

  for (int64_t c = 1; c < max_chunks; ++c) {
    const int64_t begin = chunk_begin(c), end = chunk_begin(c + 1);
    std::function<void()> task = [this, &shared, &body, begin, end, grad_mode] {
      const bool prev = ag::GradMode::is_enabled();
      ag::GradMode::set_enabled(grad_mode);
      try {
        ChunkScope chunk_scope(this);
        body(begin, end);
      } catch (...) {
        std::unique_lock<std::mutex> lock(shared.mutex);
        if (!shared.error) shared.error = std::current_exception();
      }
      ag::GradMode::set_enabled(prev);
      std::unique_lock<std::mutex> lock(shared.mutex);
      if (--shared.remaining == 0) shared.done.notify_all();
    };
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++in_flight_;
      tasks_.push(std::move(task));
    }
    task_ready_.notify_one();
  }

  // The submitting thread takes chunk 0 instead of blocking.
  std::exception_ptr local_error;
  try {
    ChunkScope chunk_scope(this);
    body(0, chunk_begin(1));
  } catch (...) {
    local_error = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(shared.mutex);
    shared.done.wait(lock, [&shared] { return shared.remaining == 0; });
  }
  if (local_error) std::rethrow_exception(local_error);
  if (shared.error) std::rethrow_exception(shared.error);
}

int ThreadPool::default_num_threads() {
  if (const char* env = std::getenv("DOINN_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<int>(std::min<long>(v, 256));
    }
    std::fprintf(stderr,
                 "warning: ignoring invalid DOINN_NUM_THREADS=\"%s\"\n", env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

bool ThreadPool::in_worker_thread() { return this_thread_is_worker; }

ThreadPool& global_pool() {
  static ThreadPool pool(ThreadPool::default_num_threads());
  return pool;
}

ThreadPool& current_pool() {
  return current_pool_override != nullptr ? *current_pool_override
                                          : global_pool();
}

ScopedPool::ScopedPool(ThreadPool* pool) : prev_(current_pool_override) {
  if (pool != nullptr) current_pool_override = pool;
}

ScopedPool::~ScopedPool() { current_pool_override = prev_; }

void parallel_for(int64_t n, const std::function<void(int64_t, int64_t)>& body,
                  int64_t grain) {
  if (n <= 0) return;
  if (n < 2 * std::max<int64_t>(1, grain)) {
    // Ranges below two grains can never split (floor-division chunking), so
    // they run inline without resolving a pool — a small kernel never
    // instantiates the global pool as a side effect.
    body(0, n);
    return;
  }
  current_pool().parallel_for(n, body, grain);
}

}  // namespace litho::runtime
