#include "runtime/alloc_hooks.h"

#include <atomic>

namespace litho::runtime {

namespace {
std::atomic<int64_t> g_heap_allocs{0};
}  // namespace

void note_heap_alloc() {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
}

int64_t heap_alloc_count() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

}  // namespace litho::runtime
