#include "io/io.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace litho::io {
namespace {

uint8_t to_byte(float v, float lo, float hi) {
  const float t = (v - lo) / (hi - lo);
  const float c = std::clamp(t, 0.f, 1.f);
  return static_cast<uint8_t>(c * 255.f + 0.5f);
}

template <typename T>
void write_raw(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_raw(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("tensor container: truncated file");
  return v;
}

}  // namespace

void write_pgm(const std::string& path, const Tensor& image, float lo,
               float hi) {
  if (image.dim() != 2) {
    throw std::invalid_argument("write_pgm requires a 2-D tensor, got " +
                                shape_to_string(image.shape()));
  }
  if (lo == hi) {
    lo = image.min();
    hi = image.max();
    if (lo == hi) hi = lo + 1.f;
  }
  const int64_t h = image.size(0), w = image.size(1);
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  os << "P5\n" << w << " " << h << "\n255\n";
  std::vector<uint8_t> row(static_cast<size_t>(w));
  for (int64_t r = 0; r < h; ++r) {
    for (int64_t c = 0; c < w; ++c) {
      row[static_cast<size_t>(c)] = to_byte(image[r * w + c], lo, hi);
    }
    os.write(reinterpret_cast<const char*>(row.data()), w);
  }
}

Tensor read_pgm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path + " for reading");
  std::string magic;
  is >> magic;
  if (magic != "P5") throw std::runtime_error(path + ": not a binary PGM");
  // Skip whitespace and '#' comment lines between header tokens.
  auto next_int = [&is, &path]() {
    int c = is.peek();
    while (c == ' ' || c == '\n' || c == '\r' || c == '\t' || c == '#') {
      if (c == '#') {
        std::string comment;
        std::getline(is, comment);
      } else {
        is.get();
      }
      c = is.peek();
    }
    int64_t v = 0;
    if (!(is >> v)) throw std::runtime_error(path + ": truncated PGM header");
    return v;
  };
  const int64_t w = next_int();
  const int64_t h = next_int();
  const int64_t maxv = next_int();
  if (w <= 0 || h <= 0 || maxv <= 0 || maxv > 255) {
    throw std::runtime_error(path + ": unsupported PGM geometry");
  }
  is.get();  // single whitespace byte after maxval
  std::vector<uint8_t> raw(static_cast<size_t>(w * h));
  is.read(reinterpret_cast<char*>(raw.data()),
          static_cast<std::streamsize>(raw.size()));
  if (!is) throw std::runtime_error(path + ": truncated PGM payload");
  Tensor out({h, w});
  const float scale = 1.f / static_cast<float>(maxv);
  for (int64_t i = 0; i < out.numel(); ++i) {
    out[i] = static_cast<float>(raw[static_cast<size_t>(i)]) * scale;
  }
  return out;
}

void write_ppm(const std::string& path, const Tensor& r, const Tensor& g,
               const Tensor& b) {
  if (r.dim() != 2 || !r.same_shape(g) || !r.same_shape(b)) {
    throw std::invalid_argument("write_ppm requires three equal 2-D tensors");
  }
  const int64_t h = r.size(0), w = r.size(1);
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  os << "P6\n" << w << " " << h << "\n255\n";
  std::vector<uint8_t> row(static_cast<size_t>(3 * w));
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      row[static_cast<size_t>(3 * x + 0)] = to_byte(r[y * w + x], 0.f, 1.f);
      row[static_cast<size_t>(3 * x + 1)] = to_byte(g[y * w + x], 0.f, 1.f);
      row[static_cast<size_t>(3 * x + 2)] = to_byte(b[y * w + x], 0.f, 1.f);
    }
    os.write(reinterpret_cast<const char*>(row.data()), 3 * w);
  }
}

void save_tensors(const std::string& path,
                  const std::map<std::string, Tensor>& tensors) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  os.write("LTSR", 4);
  write_raw<uint32_t>(os, 1u);
  write_raw<uint32_t>(os, static_cast<uint32_t>(tensors.size()));
  for (const auto& [name, t] : tensors) {
    write_raw<uint32_t>(os, static_cast<uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_raw<uint32_t>(os, static_cast<uint32_t>(t.dim()));
    for (int64_t d = 0; d < t.dim(); ++d) write_raw<int64_t>(os, t.size(d));
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("write to " + path + " failed");
}

std::map<std::string, Tensor> load_tensors(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path + " for reading");
  char magic[4];
  is.read(magic, 4);
  if (!is || std::string(magic, 4) != "LTSR") {
    throw std::runtime_error(path + ": bad magic");
  }
  const auto version = read_raw<uint32_t>(is);
  if (version != 1u) throw std::runtime_error(path + ": unsupported version");
  const auto count = read_raw<uint32_t>(is);
  std::map<std::string, Tensor> out;
  for (uint32_t i = 0; i < count; ++i) {
    const auto name_len = read_raw<uint32_t>(is);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    const auto rank = read_raw<uint32_t>(is);
    Shape shape(rank);
    for (uint32_t d = 0; d < rank; ++d) shape[d] = read_raw<int64_t>(is);
    Tensor t(shape);
    is.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    if (!is) throw std::runtime_error(path + ": truncated tensor data");
    out.emplace(std::move(name), std::move(t));
  }
  return out;
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

void ensure_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw std::runtime_error("cannot create directory " + dir);
}

}  // namespace litho::io
