// Serialization and image export.
//
//  - write_pgm / write_ppm: portable graymap/pixmap dumps used to regenerate
//    the paper's figure panels (masks, contours, feature maps).
//  - save_tensors / load_tensors: simple binary container for named tensors,
//    used for model checkpoints and the experiment cache.
#pragma once

#include <map>
#include <string>

#include "tensor/tensor.h"

namespace litho::io {

/// Writes a 2-D tensor as an 8-bit PGM image. Values are linearly mapped
/// from [lo, hi] to [0, 255] (clamped). If lo == hi the tensor min/max are
/// used instead.
void write_pgm(const std::string& path, const Tensor& image, float lo = 0.f,
               float hi = 1.f);

/// Reads an 8-bit binary (P5) PGM image into a 2-D tensor scaled to [0, 1].
/// Throws std::runtime_error on malformed input.
Tensor read_pgm(const std::string& path);

/// Writes three equally-shaped 2-D tensors as the R/G/B planes of a PPM
/// image; each plane is mapped from [0, 1] to [0, 255] (clamped).
void write_ppm(const std::string& path, const Tensor& r, const Tensor& g,
               const Tensor& b);

/// Saves named tensors to a single binary file. Format:
///   magic "LTSR" | u32 version | u32 count |
///   per tensor: u32 name_len | name | u32 rank | i64 extents... | f32 data...
void save_tensors(const std::string& path,
                  const std::map<std::string, Tensor>& tensors);

/// Loads a container written by save_tensors. Throws std::runtime_error on
/// malformed input.
std::map<std::string, Tensor> load_tensors(const std::string& path);

/// True if @p path exists and is a regular file.
bool file_exists(const std::string& path);

/// Creates @p dir (and parents) if missing.
void ensure_dir(const std::string& dir);

}  // namespace litho::io
