#include "autograd/ops_weighted.h"

#include <stdexcept>

namespace litho::ag {

Variable weighted_mse_loss(const Variable& pred, const Tensor& target,
                           const Tensor& weights) {
  if (!pred.value().same_shape(target) || !pred.value().same_shape(weights)) {
    throw std::invalid_argument("weighted_mse_loss shape mismatch");
  }
  const int64_t n = pred.value().numel();
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = pred.value()[i] - target[i];
    acc += weights[i] * d * d;
  }
  Tensor out({1}, static_cast<float>(acc / static_cast<double>(n)));
  return Variable::make_node(
      std::move(out), {pred}, [pred, target, weights, n](const Tensor& g) {
        Tensor gx(pred.value().shape());
        const float c = 2.f * g[0] / static_cast<float>(n);
        for (int64_t i = 0; i < n; ++i) {
          gx[i] = c * weights[i] * (pred.value()[i] - target[i]);
        }
        pred.state()->accumulate(gx);
      });
}

}  // namespace litho::ag
