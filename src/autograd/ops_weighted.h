// Weighted MSE loss (see core::TrainConfig::fg_weight).
#pragma once

#include "autograd/variable.h"

namespace litho::ag {

/// Mean of weights[i] * (pred[i] - target[i])^2. Weights are constants.
Variable weighted_mse_loss(const Variable& pred, const Tensor& target,
                           const Tensor& weights);

}  // namespace litho::ag
