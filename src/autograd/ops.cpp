#include "autograd/ops.h"

#include <cmath>
#include <stdexcept>

#include "runtime/thread_pool.h"

namespace litho::ag {
namespace {

void check_same_shape(const Variable& a, const Variable& b, const char* op) {
  if (!a.value().same_shape(b.value())) {
    throw std::invalid_argument(std::string(op) + " shape mismatch: " +
                                shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
  }
}

struct ConvDims {
  int64_t n, cin, h, w;       // input
  int64_t cout, kh, kw;       // kernel
  int64_t oh, ow;             // output
};

ConvDims conv_dims(const Variable& x, const Variable& w, int64_t stride,
                   int64_t padding, bool transposed) {
  if (x.value().dim() != 4 || w.value().dim() != 4) {
    throw std::invalid_argument("conv expects 4-D activation and weight");
  }
  ConvDims d{};
  d.n = x.value().size(0);
  d.cin = x.value().size(1);
  d.h = x.value().size(2);
  d.w = x.value().size(3);
  if (!transposed) {
    d.cout = w.value().size(0);
    if (w.value().size(1) != d.cin) {
      throw std::invalid_argument("conv2d weight Cin mismatch");
    }
    d.kh = w.value().size(2);
    d.kw = w.value().size(3);
    d.oh = conv_out_size(d.h, d.kh, stride, padding);
    d.ow = conv_out_size(d.w, d.kw, stride, padding);
  } else {
    if (w.value().size(0) != d.cin) {
      throw std::invalid_argument("conv_transpose2d weight Cin mismatch");
    }
    d.cout = w.value().size(1);
    d.kh = w.value().size(2);
    d.kw = w.value().size(3);
    d.oh = (d.h - 1) * stride - 2 * padding + d.kh;
    d.ow = (d.w - 1) * stride - 2 * padding + d.kw;
  }
  if (d.oh <= 0 || d.ow <= 0) {
    throw std::invalid_argument("conv output size is non-positive");
  }
  return d;
}

}  // namespace

int64_t conv_out_size(int64_t in, int64_t k, int64_t stride, int64_t padding) {
  return (in + 2 * padding - k) / stride + 1;
}

Variable add(const Variable& a, const Variable& b) {
  check_same_shape(a, b, "add");
  Tensor out = a.value().add(b.value());
  return Variable::make_node(std::move(out), {a, b}, [a, b](const Tensor& g) {
    a.state()->accumulate(g);
    b.state()->accumulate(g);
  });
}

Variable sub(const Variable& a, const Variable& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a.value().sub(b.value());
  return Variable::make_node(std::move(out), {a, b}, [a, b](const Tensor& g) {
    a.state()->accumulate(g);
    Tensor neg = g.mul(-1.f);
    b.state()->accumulate(neg);
  });
}

Variable mul(const Variable& a, const Variable& b) {
  check_same_shape(a, b, "mul");
  Tensor out = a.value().mul(b.value());
  return Variable::make_node(std::move(out), {a, b}, [a, b](const Tensor& g) {
    if (a.requires_grad()) a.state()->accumulate(g.mul(b.value()));
    if (b.requires_grad()) b.state()->accumulate(g.mul(a.value()));
  });
}

Variable scale(const Variable& a, float s) {
  Tensor out = a.value().mul(s);
  return Variable::make_node(std::move(out), {a}, [a, s](const Tensor& g) {
    a.state()->accumulate(g.mul(s));
  });
}

Variable relu(const Variable& x) { return leaky_relu(x, 0.f); }

Variable leaky_relu(const Variable& x, float negative_slope) {
  Tensor out = x.value().clone();
  for (int64_t i = 0; i < out.numel(); ++i) {
    if (out[i] < 0.f) out[i] *= negative_slope;
  }
  return Variable::make_node(
      std::move(out), {x}, [x, negative_slope](const Tensor& g) {
        Tensor gx = g.clone();
        const Tensor& v = x.value();
        for (int64_t i = 0; i < gx.numel(); ++i) {
          if (v[i] < 0.f) gx[i] *= negative_slope;
        }
        x.state()->accumulate(gx);
      });
}

Variable tanh(const Variable& x) {
  Tensor out = x.value().map([](float v) { return std::tanh(v); });
  // Capture the forward output for the backward pass: d tanh = 1 - tanh^2.
  Tensor saved = out;
  return Variable::make_node(std::move(out), {x}, [x, saved](const Tensor& g) {
    Tensor gx = g.clone();
    for (int64_t i = 0; i < gx.numel(); ++i) gx[i] *= 1.f - saved[i] * saved[i];
    x.state()->accumulate(gx);
  });
}

Variable sigmoid(const Variable& x) {
  Tensor out = x.value().map([](float v) { return 1.f / (1.f + std::exp(-v)); });
  Tensor saved = out;
  return Variable::make_node(std::move(out), {x}, [x, saved](const Tensor& g) {
    Tensor gx = g.clone();
    for (int64_t i = 0; i < gx.numel(); ++i) gx[i] *= saved[i] * (1.f - saved[i]);
    x.state()->accumulate(gx);
  });
}

Variable concat_channels(const std::vector<Variable>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat of zero variables");
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  Tensor out = Tensor::concat(values, 1);
  std::vector<Variable> parents(parts.begin(), parts.end());
  return Variable::make_node(std::move(out), parents,
                             [parts](const Tensor& g) {
                               int64_t start = 0;
                               for (const Variable& p : parts) {
                                 const int64_t len = p.value().size(1);
                                 if (p.requires_grad()) {
                                   p.state()->accumulate(
                                       g.narrow(1, start, len));
                                 }
                                 start += len;
                               }
                             });
}

Variable narrow_channels(const Variable& x, int64_t start, int64_t len) {
  Tensor out = x.value().narrow(1, start, len);
  return Variable::make_node(
      std::move(out), {x}, [x, start, len](const Tensor& g) {
        Tensor gx = Tensor::zeros(x.value().shape());
        const int64_t n = gx.size(0), c = gx.size(1);
        const int64_t plane = gx.numel() / (n * c);
        for (int64_t b = 0; b < n; ++b) {
          for (int64_t ch = 0; ch < len; ++ch) {
            const float* src = g.data() + (b * len + ch) * plane;
            float* dst = gx.data() + (b * c + start + ch) * plane;
            for (int64_t i = 0; i < plane; ++i) dst[i] = src[i];
          }
        }
        x.state()->accumulate(gx);
      });
}

Variable sum(const Variable& x) {
  Tensor out({1}, x.value().sum());
  return Variable::make_node(std::move(out), {x}, [x](const Tensor& g) {
    x.state()->accumulate(Tensor::full(x.value().shape(), g[0]));
  });
}

Variable mean(const Variable& x) {
  const float inv_n = 1.f / static_cast<float>(x.value().numel());
  Tensor out({1}, x.value().mean());
  return Variable::make_node(std::move(out), {x}, [x, inv_n](const Tensor& g) {
    x.state()->accumulate(Tensor::full(x.value().shape(), g[0] * inv_n));
  });
}

Variable mse_loss(const Variable& pred, const Tensor& target) {
  if (!pred.value().same_shape(target)) {
    throw std::invalid_argument("mse_loss shape mismatch");
  }
  const int64_t n = pred.value().numel();
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = pred.value()[i] - target[i];
    acc += d * d;
  }
  Tensor out({1}, static_cast<float>(acc / static_cast<double>(n)));
  return Variable::make_node(
      std::move(out), {pred}, [pred, target, n](const Tensor& g) {
        Tensor gx(pred.value().shape());
        const float c = 2.f * g[0] / static_cast<float>(n);
        for (int64_t i = 0; i < n; ++i) {
          gx[i] = c * (pred.value()[i] - target[i]);
        }
        pred.state()->accumulate(gx);
      });
}

void im2col(const float* x, int64_t c, int64_t h, int64_t w, int64_t k,
            int64_t stride, int64_t padding, float* col) {
  const int64_t oh = conv_out_size(h, k, stride, padding);
  const int64_t ow = conv_out_size(w, k, stride, padding);
  const int64_t l = oh * ow;
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t ki = 0; ki < k; ++ki) {
      for (int64_t kj = 0; kj < k; ++kj) {
        float* dst = col + ((ch * k + ki) * k + kj) * l;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * stride + ki - padding;
          if (iy < 0 || iy >= h) {
            for (int64_t ox = 0; ox < ow; ++ox) dst[oy * ow + ox] = 0.f;
            continue;
          }
          const float* src_row = x + (ch * h + iy) * w;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * stride + kj - padding;
            dst[oy * ow + ox] = (ix >= 0 && ix < w) ? src_row[ix] : 0.f;
          }
        }
      }
    }
  }
}

void col2im(const float* col, int64_t c, int64_t h, int64_t w, int64_t k,
            int64_t stride, int64_t padding, float* x) {
  const int64_t oh = conv_out_size(h, k, stride, padding);
  const int64_t ow = conv_out_size(w, k, stride, padding);
  const int64_t l = oh * ow;
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t ki = 0; ki < k; ++ki) {
      for (int64_t kj = 0; kj < k; ++kj) {
        const float* src = col + ((ch * k + ki) * k + kj) * l;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * stride + ki - padding;
          if (iy < 0 || iy >= h) continue;
          float* dst_row = x + (ch * h + iy) * w;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * stride + kj - padding;
            if (ix >= 0 && ix < w) dst_row[ix] += src[oy * ow + ox];
          }
        }
      }
    }
  }
}

Variable conv2d(const Variable& x, const Variable& w, const Variable& b,
                int64_t stride, int64_t padding) {
  const ConvDims d = conv_dims(x, w, stride, padding, /*transposed=*/false);
  const bool has_bias = b.defined();
  if (has_bias && (b.value().dim() != 1 || b.value().size(0) != d.cout)) {
    throw std::invalid_argument("conv2d bias shape mismatch");
  }
  const int64_t ckk = d.cin * d.kh * d.kw;
  const int64_t l = d.oh * d.ow;
  Tensor out({d.n, d.cout, d.oh, d.ow});
  // Samples are independent and write disjoint output planes; each chunk
  // reuses one im2col column buffer across its samples.
  runtime::parallel_for(d.n, [&](int64_t n0, int64_t n1) {
    std::vector<float> col(static_cast<size_t>(ckk * l));
    for (int64_t n = n0; n < n1; ++n) {
      im2col(x.value().data() + n * d.cin * d.h * d.w, d.cin, d.h, d.w, d.kh,
             stride, padding, col.data());
      gemm(w.value().data(), col.data(), out.data() + n * d.cout * l, d.cout,
           ckk, l);
      if (has_bias) {
        for (int64_t c = 0; c < d.cout; ++c) {
          float* p = out.data() + (n * d.cout + c) * l;
          const float bias = b.value()[c];
          for (int64_t i = 0; i < l; ++i) p[i] += bias;
        }
      }
    }
  });

  std::vector<Variable> parents = {x, w};
  if (has_bias) parents.push_back(b);
  return Variable::make_node(
      std::move(out), std::move(parents),
      [x, w, b, has_bias, d, stride, padding, ckk, l](const Tensor& g) {
        Tensor gx, gw;
        const bool need_x = x.requires_grad();
        const bool need_w = w.requires_grad();
        if (need_x) gx = Tensor::zeros(x.value().shape());
        if (need_w) gw = Tensor::zeros(w.value().shape());
        std::vector<float> col(static_cast<size_t>(ckk * l));
        std::vector<float> gcol(static_cast<size_t>(ckk * l));
        for (int64_t n = 0; n < d.n; ++n) {
          const float* gout = g.data() + n * d.cout * l;
          if (need_w) {
            im2col(x.value().data() + n * d.cin * d.h * d.w, d.cin, d.h, d.w,
                   d.kh, stride, padding, col.data());
            // gw (Cout x CKK) += gout (Cout x L) * col^T (L x CKK).
            gemm_a_bt(gout, col.data(), gcol.data(), d.cout, l, ckk);
            float* gwp = gw.data();
            for (int64_t i = 0; i < d.cout * ckk; ++i) gwp[i] += gcol[i];
          }
          if (need_x) {
            // gcol (CKK x L) = w^T (CKK x Cout) * gout (Cout x L).
            gemm_at_b(w.value().data(), gout, gcol.data(), ckk, d.cout, l);
            col2im(gcol.data(), d.cin, d.h, d.w, d.kh, stride, padding,
                   gx.data() + n * d.cin * d.h * d.w);
          }
        }
        if (need_x) x.state()->accumulate(gx);
        if (need_w) w.state()->accumulate(gw);
        if (has_bias && b.requires_grad()) {
          Tensor gb = Tensor::zeros({d.cout});
          for (int64_t n = 0; n < d.n; ++n) {
            for (int64_t c = 0; c < d.cout; ++c) {
              const float* p = g.data() + (n * d.cout + c) * l;
              double acc = 0.0;
              for (int64_t i = 0; i < l; ++i) acc += p[i];
              gb[c] += static_cast<float>(acc);
            }
          }
          b.state()->accumulate(gb);
        }
      });
}

Variable conv_transpose2d(const Variable& x, const Variable& w,
                          const Variable& b, int64_t stride, int64_t padding) {
  const ConvDims d = conv_dims(x, w, stride, padding, /*transposed=*/true);
  const bool has_bias = b.defined();
  if (has_bias && (b.value().dim() != 1 || b.value().size(0) != d.cout)) {
    throw std::invalid_argument("conv_transpose2d bias shape mismatch");
  }
  // Forward of conv-transpose == input-gradient of a conv whose input is the
  // output here: columns = W^T(CoutKK x Cin) * x_flat(Cin x hw), scattered by
  // col2im into the (oh, ow) output plane.
  const int64_t ckk = d.cout * d.kh * d.kw;
  const int64_t l = d.h * d.w;  // input spatial size acts as column count
  Tensor out({d.n, d.cout, d.oh, d.ow});
  runtime::parallel_for(d.n, [&](int64_t n0, int64_t n1) {
    std::vector<float> col(static_cast<size_t>(ckk * l));
    const int64_t plane = d.oh * d.ow;
    for (int64_t n = n0; n < n1; ++n) {
      // w viewed as (Cin x CoutKK); x sample viewed as (Cin x hw).
      gemm_at_b(w.value().data(), x.value().data() + n * d.cin * l, col.data(),
                ckk, d.cin, l);
      col2im(col.data(), d.cout, d.oh, d.ow, d.kh, stride, padding,
             out.data() + n * d.cout * d.oh * d.ow);
      if (has_bias) {
        for (int64_t c = 0; c < d.cout; ++c) {
          float* p = out.data() + (n * d.cout + c) * plane;
          const float bias = b.value()[c];
          for (int64_t i = 0; i < plane; ++i) p[i] += bias;
        }
      }
    }
  });

  std::vector<Variable> parents = {x, w};
  if (has_bias) parents.push_back(b);
  return Variable::make_node(
      std::move(out), std::move(parents),
      [x, w, b, has_bias, d, stride, padding, ckk, l](const Tensor& g) {
        const bool need_x = x.requires_grad();
        const bool need_w = w.requires_grad();
        Tensor gx, gw;
        if (need_x) gx = Tensor::zeros(x.value().shape());
        if (need_w) gw = Tensor::zeros(w.value().shape());
        std::vector<float> gcol(static_cast<size_t>(ckk * l));
        std::vector<float> tmp(static_cast<size_t>(
            std::max(d.cin * ckk, d.cin * l)));
        for (int64_t n = 0; n < d.n; ++n) {
          // Backward mirrors conv2d forward: gcol = im2col(gout).
          im2col(g.data() + n * d.cout * d.oh * d.ow, d.cout, d.oh, d.ow, d.kh,
                 stride, padding, gcol.data());
          if (need_x) {
            // gx (Cin x hw) = w(Cin x CoutKK) * gcol(CoutKK x hw).
            gemm(w.value().data(), gcol.data(), tmp.data(), d.cin, ckk, l);
            float* gxp = gx.data() + n * d.cin * l;
            for (int64_t i = 0; i < d.cin * l; ++i) gxp[i] += tmp[i];
          }
          if (need_w) {
            // gw (Cin x CoutKK) += x_flat(Cin x hw) * gcol^T(hw x CoutKK).
            gemm_a_bt(x.value().data() + n * d.cin * l, gcol.data(), tmp.data(),
                      d.cin, l, ckk);
            float* gwp = gw.data();
            for (int64_t i = 0; i < d.cin * ckk; ++i) gwp[i] += tmp[i];
          }
        }
        if (need_x) x.state()->accumulate(gx);
        if (need_w) w.state()->accumulate(gw);
        if (has_bias && b.requires_grad()) {
          Tensor gb = Tensor::zeros({d.cout});
          const int64_t plane = d.oh * d.ow;
          for (int64_t n = 0; n < d.n; ++n) {
            for (int64_t c = 0; c < d.cout; ++c) {
              const float* p = g.data() + (n * d.cout + c) * plane;
              double acc = 0.0;
              for (int64_t i = 0; i < plane; ++i) acc += p[i];
              gb[c] += static_cast<float>(acc);
            }
          }
          b.state()->accumulate(gb);
        }
      });
}

Variable avg_pool2d(const Variable& x, int64_t k) {
  if (x.value().dim() != 4) throw std::invalid_argument("avg_pool2d 4-D only");
  const int64_t n = x.value().size(0), c = x.value().size(1);
  const int64_t h = x.value().size(2), w = x.value().size(3);
  if (h % k != 0 || w % k != 0) {
    throw std::invalid_argument("avg_pool2d requires extents divisible by k");
  }
  const int64_t oh = h / k, ow = w / k;
  Tensor out({n, c, oh, ow});
  const float inv = 1.f / static_cast<float>(k * k);
  for (int64_t nc = 0; nc < n * c; ++nc) {
    const float* src = x.value().data() + nc * h * w;
    float* dst = out.data() + nc * oh * ow;
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        float acc = 0.f;
        for (int64_t ky = 0; ky < k; ++ky) {
          const float* row = src + (oy * k + ky) * w + ox * k;
          for (int64_t kx = 0; kx < k; ++kx) acc += row[kx];
        }
        dst[oy * ow + ox] = acc * inv;
      }
    }
  }
  return Variable::make_node(
      std::move(out), {x}, [x, n, c, h, w, k, oh, ow, inv](const Tensor& g) {
        Tensor gx({n, c, h, w});
        for (int64_t nc = 0; nc < n * c; ++nc) {
          const float* src = g.data() + nc * oh * ow;
          float* dst = gx.data() + nc * h * w;
          for (int64_t oy = 0; oy < oh; ++oy) {
            for (int64_t ox = 0; ox < ow; ++ox) {
              const float v = src[oy * ow + ox] * inv;
              for (int64_t ky = 0; ky < k; ++ky) {
                float* row = dst + (oy * k + ky) * w + ox * k;
                for (int64_t kx = 0; kx < k; ++kx) row[kx] += v;
              }
            }
          }
        }
        x.state()->accumulate(gx);
      });
}

Variable batch_norm2d(const Variable& x, const Variable& gamma,
                      const Variable& beta, Tensor& running_mean,
                      Tensor& running_var, bool training, float momentum,
                      float eps) {
  if (x.value().dim() != 4) throw std::invalid_argument("batch_norm2d 4-D only");
  const int64_t n = x.value().size(0), c = x.value().size(1);
  const int64_t plane = x.value().size(2) * x.value().size(3);
  const int64_t m = n * plane;  // elements per channel

  Tensor mean_t({c}), var_t({c});
  if (training) {
    for (int64_t ch = 0; ch < c; ++ch) {
      double s = 0.0, s2 = 0.0;
      for (int64_t b = 0; b < n; ++b) {
        const float* p = x.value().data() + (b * c + ch) * plane;
        for (int64_t i = 0; i < plane; ++i) {
          s += p[i];
          s2 += static_cast<double>(p[i]) * p[i];
        }
      }
      const double mu = s / m;
      mean_t[ch] = static_cast<float>(mu);
      var_t[ch] = static_cast<float>(s2 / m - mu * mu);
    }
    for (int64_t ch = 0; ch < c; ++ch) {
      running_mean[ch] =
          (1.f - momentum) * running_mean[ch] + momentum * mean_t[ch];
      running_var[ch] =
          (1.f - momentum) * running_var[ch] + momentum * var_t[ch];
    }
  } else {
    mean_t = running_mean.clone();
    var_t = running_var.clone();
  }

  Tensor inv_std({c});
  for (int64_t ch = 0; ch < c; ++ch) {
    inv_std[ch] = 1.f / std::sqrt(var_t[ch] + eps);
  }
  Tensor xhat(x.value().shape());
  Tensor out(x.value().shape());
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* p = x.value().data() + (b * c + ch) * plane;
      float* xh = xhat.data() + (b * c + ch) * plane;
      float* o = out.data() + (b * c + ch) * plane;
      const float mu = mean_t[ch], is = inv_std[ch];
      const float ga = gamma.value()[ch], be = beta.value()[ch];
      for (int64_t i = 0; i < plane; ++i) {
        xh[i] = (p[i] - mu) * is;
        o[i] = ga * xh[i] + be;
      }
    }
  }

  return Variable::make_node(
      std::move(out), {x, gamma, beta},
      [x, gamma, beta, xhat, inv_std, training, n, c, plane,
       m](const Tensor& g) {
        // Per-channel reductions of the cotangent.
        Tensor sum_g({c}), sum_gx({c});
        for (int64_t ch = 0; ch < c; ++ch) {
          double sg = 0.0, sgx = 0.0;
          for (int64_t b = 0; b < n; ++b) {
            const float* gp = g.data() + (b * c + ch) * plane;
            const float* xh = xhat.data() + (b * c + ch) * plane;
            for (int64_t i = 0; i < plane; ++i) {
              sg += gp[i];
              sgx += static_cast<double>(gp[i]) * xh[i];
            }
          }
          sum_g[ch] = static_cast<float>(sg);
          sum_gx[ch] = static_cast<float>(sgx);
        }
        if (gamma.requires_grad()) gamma.state()->accumulate(sum_gx);
        if (beta.requires_grad()) beta.state()->accumulate(sum_g);
        if (x.requires_grad()) {
          Tensor gx(x.value().shape());
          const float inv_m = 1.f / static_cast<float>(m);
          for (int64_t b = 0; b < n; ++b) {
            for (int64_t ch = 0; ch < c; ++ch) {
              const float* gp = g.data() + (b * c + ch) * plane;
              const float* xh = xhat.data() + (b * c + ch) * plane;
              float* gxp = gx.data() + (b * c + ch) * plane;
              const float k = gamma.value()[ch] * inv_std[ch];
              if (training) {
                const float mg = sum_g[ch] * inv_m;
                const float mgx = sum_gx[ch] * inv_m;
                for (int64_t i = 0; i < plane; ++i) {
                  gxp[i] = k * (gp[i] - mg - xh[i] * mgx);
                }
              } else {
                for (int64_t i = 0; i < plane; ++i) gxp[i] = k * gp[i];
              }
            }
          }
          x.state()->accumulate(gx);
        }
      });
}

}  // namespace litho::ag
