#include "autograd/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/thread_pool.h"
#include "runtime/workspace.h"
#include "tensor/gemm.h"
#include "tensor/prepack.h"

namespace litho::ag {
namespace {

void check_same_shape(const Variable& a, const Variable& b, const char* op) {
  if (!a.value().same_shape(b.value())) {
    throw std::invalid_argument(std::string(op) + " shape mismatch: " +
                                shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
  }
}

struct ConvDims {
  int64_t n, cin, h, w;       // input
  int64_t cout, kh, kw;       // kernel
  int64_t oh, ow;             // output
};

// -- Implicit im2col packers --------------------------------------------------
// The packed GEMM engine pulls B micro-panels through these instead of a
// materialized column matrix: each pack() gathers the requested window of
// the logical im2col matrix straight from the (virtually padded) input
// plane. Gathered values are exact copies, so conv results stay bitwise
// identical to the explicit im2col + GEMM formulation.

/// Logical B = im2col(x): row k = (channel, ki, kj), column j = (oy, ox).
class Im2colPacker final : public BPanelPacker {
 public:
  Im2colPacker(const float* x, int64_t h, int64_t w, int64_t k,
               int64_t stride, int64_t padding, int64_t ow)
      : x_(x), h_(h), w_(w), k_(k), stride_(stride), padding_(padding),
        ow_(ow) {}

  void pack(int64_t k0, int64_t k1, int64_t j0, int64_t j1,
            float* dst) const override {
    const int64_t klen = k1 - k0;
    const int64_t panels = (j1 - j0 + kGemmNR - 1) / kGemmNR;
    for (int64_t t = 0; t < panels; ++t) {
      float* p = dst + t * klen * kGemmNR;
      const int64_t c0 = j0 + t * kGemmNR;
      const int64_t nr = std::min(kGemmNR, j1 - c0);
      // Decode this panel's output pixels once.
      int64_t oy[kGemmNR], ox[kGemmNR];
      int64_t y = c0 / ow_, xo = c0 % ow_;
      for (int64_t j = 0; j < nr; ++j) {
        oy[j] = y;
        ox[j] = xo;
        if (++xo == ow_) {
          xo = 0;
          ++y;
        }
      }
      // Panels whose pixels sit on one output row map to a contiguous run
      // of the input when stride is 1 — the common interior case collapses
      // to a straight vector copy.
      const bool one_row = oy[0] == oy[nr - 1];
      for (int64_t kk = k0; kk < k1; ++kk) {
        const int64_t kj = kk % k_;
        const int64_t ki = (kk / k_) % k_;
        const float* plane = x_ + (kk / (k_ * k_)) * h_ * w_;
        float* d = p + (kk - k0) * kGemmNR;
        if (one_row && stride_ == 1) {
          const int64_t iy = oy[0] + ki - padding_;
          const int64_t ix0 = ox[0] + kj - padding_;
          if (iy >= 0 && iy < h_ && ix0 >= 0 && ix0 + nr <= w_) {
            const float* src = plane + iy * w_ + ix0;
            for (int64_t j = 0; j < nr; ++j) d[j] = src[j];
            for (int64_t j = nr; j < kGemmNR; ++j) d[j] = 0.f;
            continue;
          }
        }
        for (int64_t j = 0; j < nr; ++j) {
          const int64_t iy = oy[j] * stride_ + ki - padding_;
          const int64_t ix = ox[j] * stride_ + kj - padding_;
          d[j] = (iy >= 0 && iy < h_ && ix >= 0 && ix < w_)
                     ? plane[iy * w_ + ix]
                     : 0.f;
        }
        for (int64_t j = nr; j < kGemmNR; ++j) d[j] = 0.f;
      }
    }
  }

 private:
  const float* x_;
  int64_t h_, w_, k_, stride_, padding_, ow_;
};

/// Logical B = im2col(x)ᵀ: row k = (oy, ox), column j = (channel, ki, kj).
/// Backs the ABᵀ-shaped weight-gradient GEMM without materializing columns.
class Im2colTPacker final : public BPanelPacker {
 public:
  Im2colTPacker(const float* x, int64_t h, int64_t w, int64_t k,
                int64_t stride, int64_t padding, int64_t ow)
      : x_(x), h_(h), w_(w), k_(k), stride_(stride), padding_(padding),
        ow_(ow) {}

  void pack(int64_t k0, int64_t k1, int64_t j0, int64_t j1,
            float* dst) const override {
    const int64_t klen = k1 - k0;
    const int64_t panels = (j1 - j0 + kGemmNR - 1) / kGemmNR;
    for (int64_t t = 0; t < panels; ++t) {
      float* p = dst + t * klen * kGemmNR;
      const int64_t c0 = j0 + t * kGemmNR;
      const int64_t nr = std::min(kGemmNR, j1 - c0);
      // Decode this panel's (channel, ki, kj) columns once.
      int64_t ch[kGemmNR], ki[kGemmNR], kj[kGemmNR];
      for (int64_t j = 0; j < nr; ++j) {
        const int64_t idx = c0 + j;
        kj[j] = idx % k_;
        ki[j] = (idx / k_) % k_;
        ch[j] = idx / (k_ * k_);
      }
      int64_t y = k0 / ow_, xo = k0 % ow_;
      for (int64_t kk = k0; kk < k1; ++kk) {
        float* d = p + (kk - k0) * kGemmNR;
        for (int64_t j = 0; j < nr; ++j) {
          const int64_t iy = y * stride_ + ki[j] - padding_;
          const int64_t ix = xo * stride_ + kj[j] - padding_;
          d[j] = (iy >= 0 && iy < h_ && ix >= 0 && ix < w_)
                     ? x_[(ch[j] * h_ + iy) * w_ + ix]
                     : 0.f;
        }
        for (int64_t j = nr; j < kGemmNR; ++j) d[j] = 0.f;
        if (++xo == ow_) {
          xo = 0;
          ++y;
        }
      }
    }
  }

 private:
  const float* x_;
  int64_t h_, w_, k_, stride_, padding_, ow_;
};

ConvDims conv_dims(const Variable& x, const Variable& w, int64_t stride,
                   int64_t padding, bool transposed) {
  if (x.value().dim() != 4 || w.value().dim() != 4) {
    throw std::invalid_argument("conv expects 4-D activation and weight");
  }
  ConvDims d{};
  d.n = x.value().size(0);
  d.cin = x.value().size(1);
  d.h = x.value().size(2);
  d.w = x.value().size(3);
  if (!transposed) {
    d.cout = w.value().size(0);
    if (w.value().size(1) != d.cin) {
      throw std::invalid_argument("conv2d weight Cin mismatch");
    }
    d.kh = w.value().size(2);
    d.kw = w.value().size(3);
    d.oh = conv_out_size(d.h, d.kh, stride, padding);
    d.ow = conv_out_size(d.w, d.kw, stride, padding);
  } else {
    if (w.value().size(0) != d.cin) {
      throw std::invalid_argument("conv_transpose2d weight Cin mismatch");
    }
    d.cout = w.value().size(1);
    d.kh = w.value().size(2);
    d.kw = w.value().size(3);
    d.oh = (d.h - 1) * stride - 2 * padding + d.kh;
    d.ow = (d.w - 1) * stride - 2 * padding + d.kw;
  }
  if (d.oh <= 0 || d.ow <= 0) {
    throw std::invalid_argument("conv output size is non-positive");
  }
  return d;
}

}  // namespace

int64_t conv_out_size(int64_t in, int64_t k, int64_t stride, int64_t padding) {
  return (in + 2 * padding - k) / stride + 1;
}

Variable add(const Variable& a, const Variable& b) {
  check_same_shape(a, b, "add");
  Tensor out = a.value().add(b.value());
  return Variable::make_node(std::move(out), {a, b}, [a, b](const Tensor& g) {
    a.state()->accumulate(g);
    b.state()->accumulate(g);
  });
}

Variable sub(const Variable& a, const Variable& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a.value().sub(b.value());
  return Variable::make_node(std::move(out), {a, b}, [a, b](const Tensor& g) {
    a.state()->accumulate(g);
    Tensor neg = g.mul(-1.f);
    b.state()->accumulate(neg);
  });
}

Variable mul(const Variable& a, const Variable& b) {
  check_same_shape(a, b, "mul");
  Tensor out = a.value().mul(b.value());
  return Variable::make_node(std::move(out), {a, b}, [a, b](const Tensor& g) {
    if (a.requires_grad()) a.state()->accumulate(g.mul(b.value()));
    if (b.requires_grad()) b.state()->accumulate(g.mul(a.value()));
  });
}

Variable scale(const Variable& a, float s) {
  Tensor out = a.value().mul(s);
  return Variable::make_node(std::move(out), {a}, [a, s](const Tensor& g) {
    a.state()->accumulate(g.mul(s));
  });
}

Variable relu(const Variable& x) { return leaky_relu(x, 0.f); }

Variable leaky_relu(const Variable& x, float negative_slope) {
  Tensor out = x.value().clone();
  for (int64_t i = 0; i < out.numel(); ++i) {
    if (out[i] < 0.f) out[i] *= negative_slope;
  }
  return Variable::make_node(
      std::move(out), {x}, [x, negative_slope](const Tensor& g) {
        Tensor gx = g.clone();
        const Tensor& v = x.value();
        for (int64_t i = 0; i < gx.numel(); ++i) {
          if (v[i] < 0.f) gx[i] *= negative_slope;
        }
        x.state()->accumulate(gx);
      });
}

Variable tanh(const Variable& x) {
  Tensor out = x.value().map([](float v) { return std::tanh(v); });
  // Capture the forward output for the backward pass: d tanh = 1 - tanh^2.
  Tensor saved = out;
  return Variable::make_node(std::move(out), {x}, [x, saved](const Tensor& g) {
    Tensor gx = g.clone();
    for (int64_t i = 0; i < gx.numel(); ++i) gx[i] *= 1.f - saved[i] * saved[i];
    x.state()->accumulate(gx);
  });
}

Variable sigmoid(const Variable& x) {
  Tensor out = x.value().map([](float v) { return 1.f / (1.f + std::exp(-v)); });
  Tensor saved = out;
  return Variable::make_node(std::move(out), {x}, [x, saved](const Tensor& g) {
    Tensor gx = g.clone();
    for (int64_t i = 0; i < gx.numel(); ++i) gx[i] *= saved[i] * (1.f - saved[i]);
    x.state()->accumulate(gx);
  });
}

Variable concat_channels(const std::vector<Variable>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat of zero variables");
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  Tensor out = Tensor::concat(values, 1);
  std::vector<Variable> parents(parts.begin(), parts.end());
  return Variable::make_node(std::move(out), parents,
                             [parts](const Tensor& g) {
                               int64_t start = 0;
                               for (const Variable& p : parts) {
                                 const int64_t len = p.value().size(1);
                                 if (p.requires_grad()) {
                                   p.state()->accumulate(
                                       g.narrow(1, start, len));
                                 }
                                 start += len;
                               }
                             });
}

Variable narrow_channels(const Variable& x, int64_t start, int64_t len) {
  Tensor out = x.value().narrow(1, start, len);
  return Variable::make_node(
      std::move(out), {x}, [x, start, len](const Tensor& g) {
        Tensor gx = Tensor::zeros(x.value().shape());
        const int64_t n = gx.size(0), c = gx.size(1);
        const int64_t plane = gx.numel() / (n * c);
        for (int64_t b = 0; b < n; ++b) {
          for (int64_t ch = 0; ch < len; ++ch) {
            const float* src = g.data() + (b * len + ch) * plane;
            float* dst = gx.data() + (b * c + start + ch) * plane;
            for (int64_t i = 0; i < plane; ++i) dst[i] = src[i];
          }
        }
        x.state()->accumulate(gx);
      });
}

Variable sum(const Variable& x) {
  Tensor out({1}, x.value().sum());
  return Variable::make_node(std::move(out), {x}, [x](const Tensor& g) {
    x.state()->accumulate(Tensor::full(x.value().shape(), g[0]));
  });
}

Variable mean(const Variable& x) {
  const float inv_n = 1.f / static_cast<float>(x.value().numel());
  Tensor out({1}, x.value().mean());
  return Variable::make_node(std::move(out), {x}, [x, inv_n](const Tensor& g) {
    x.state()->accumulate(Tensor::full(x.value().shape(), g[0] * inv_n));
  });
}

Variable mse_loss(const Variable& pred, const Tensor& target) {
  if (!pred.value().same_shape(target)) {
    throw std::invalid_argument("mse_loss shape mismatch");
  }
  const int64_t n = pred.value().numel();
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = pred.value()[i] - target[i];
    acc += d * d;
  }
  Tensor out({1}, static_cast<float>(acc / static_cast<double>(n)));
  return Variable::make_node(
      std::move(out), {pred}, [pred, target, n](const Tensor& g) {
        Tensor gx(pred.value().shape());
        const float c = 2.f * g[0] / static_cast<float>(n);
        for (int64_t i = 0; i < n; ++i) {
          gx[i] = c * (pred.value()[i] - target[i]);
        }
        pred.state()->accumulate(gx);
      });
}

void im2col(const float* x, int64_t c, int64_t h, int64_t w, int64_t k,
            int64_t stride, int64_t padding, float* col) {
  const int64_t oh = conv_out_size(h, k, stride, padding);
  const int64_t ow = conv_out_size(w, k, stride, padding);
  const int64_t l = oh * ow;
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t ki = 0; ki < k; ++ki) {
      for (int64_t kj = 0; kj < k; ++kj) {
        float* dst = col + ((ch * k + ki) * k + kj) * l;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * stride + ki - padding;
          if (iy < 0 || iy >= h) {
            for (int64_t ox = 0; ox < ow; ++ox) dst[oy * ow + ox] = 0.f;
            continue;
          }
          const float* src_row = x + (ch * h + iy) * w;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * stride + kj - padding;
            dst[oy * ow + ox] = (ix >= 0 && ix < w) ? src_row[ix] : 0.f;
          }
        }
      }
    }
  }
}

void col2im(const float* col, int64_t c, int64_t h, int64_t w, int64_t k,
            int64_t stride, int64_t padding, float* x) {
  const int64_t oh = conv_out_size(h, k, stride, padding);
  const int64_t ow = conv_out_size(w, k, stride, padding);
  const int64_t l = oh * ow;
  // Rows of `col` belonging to channel ch scatter only into channel ch of
  // x, so channels partition into disjoint write sets: parallel and bitwise
  // deterministic (the per-channel scatter order is unchanged).
  runtime::parallel_for(c, [&](int64_t c0, int64_t c1) {
    for (int64_t ch = c0; ch < c1; ++ch) {
      for (int64_t ki = 0; ki < k; ++ki) {
        for (int64_t kj = 0; kj < k; ++kj) {
          const float* src = col + ((ch * k + ki) * k + kj) * l;
          for (int64_t oy = 0; oy < oh; ++oy) {
            const int64_t iy = oy * stride + ki - padding;
            if (iy < 0 || iy >= h) continue;
            float* dst_row = x + (ch * h + iy) * w;
            for (int64_t ox = 0; ox < ow; ++ox) {
              const int64_t ix = ox * stride + kj - padding;
              if (ix >= 0 && ix < w) dst_row[ix] += src[oy * ow + ox];
            }
          }
        }
      }
    }
  });
}

Variable conv2d(const Variable& x, const Variable& w, const Variable& b,
                int64_t stride, int64_t padding) {
  const ConvDims d = conv_dims(x, w, stride, padding, /*transposed=*/false);
  const bool has_bias = b.defined();
  if (has_bias && (b.value().dim() != 1 || b.value().size(0) != d.cout)) {
    throw std::invalid_argument("conv2d bias shape mismatch");
  }
  const int64_t ckk = d.cin * d.kh * d.kw;
  const int64_t l = d.oh * d.ow;
  Tensor out({d.n, d.cout, d.oh, d.ow});
  {
    // Implicit im2col: the weights (Cout x CKK) are packed once and shared
    // by every task; B panels are gathered straight from the padded input,
    // so the full CKK x L column matrix never exists. Tasks are (sample,
    // column block) pairs — disjoint output tiles, deterministic for any
    // thread count. Bias is fused into the micro-kernel epilogue.
    const PackedA wp(GemmLayout::kNN, w.value().data(), d.cout, ckk);
    const int64_t blocks = gemm_col_blocks(l);
    const bool pointwise =
        d.kh == 1 && d.kw == 1 && stride == 1 && padding == 0;
    GemmEpilogue ep;
    ep.bias = has_bias ? b.value().data() : nullptr;
    runtime::parallel_for(d.n * blocks, [&](int64_t t0, int64_t t1) {
      for (int64_t t = t0; t < t1; ++t) {
        const int64_t s = t / blocks;
        const int64_t blk = t % blocks;
        const float* xs = x.value().data() + s * d.cin * d.h * d.w;
        float* cs = out.data() + s * d.cout * l;
        if (pointwise) {
          // 1x1 stride-1 fast path: B is the sample itself (Cin x HW).
          const StridedBPacker bp(xs, l, /*transposed=*/false);
          gemm_col_block(wp, bp, l, blk, cs, ep);
        } else {
          const Im2colPacker bp(xs, d.h, d.w, d.kh, stride, padding, d.ow);
          gemm_col_block(wp, bp, l, blk, cs, ep);
        }
      }
    });
  }

  std::vector<Variable> parents = {x, w};
  if (has_bias) parents.push_back(b);
  return Variable::make_node(
      std::move(out), std::move(parents),
      [x, w, b, has_bias, d, stride, padding, ckk, l](const Tensor& g) {
        const bool need_x = x.requires_grad();
        const bool need_w = w.requires_grad();
        if (need_w) {
          // gw (Cout x CKK) = sum_s gout_s (Cout x L) · im2col(x_s)ᵀ — the
          // ABᵀ shape, with Bᵀ panels gathered straight from x. Parallel
          // over gw column blocks: each task owns a disjoint gw slice and
          // walks samples serially, so the accumulation order never
          // depends on the schedule. (Unlike the forward pass, this order
          // — one running sum across samples and K steps — differs from
          // the seed's per-sample-temporary formulation, so weight
          // gradients are deterministic but not bit-for-bit the seed's.)
          Tensor gw = Tensor::zeros(w.value().shape());
          const int64_t blocks = gemm_col_blocks(ckk);
          GemmEpilogue acc;
          acc.accumulate = true;
          runtime::parallel_for(blocks, [&](int64_t b0, int64_t b1) {
            for (int64_t blk = b0; blk < b1; ++blk) {
              for (int64_t s = 0; s < d.n; ++s) {
                const Im2colTPacker bp(x.value().data() + s * d.cin * d.h * d.w,
                                       d.h, d.w, d.kh, stride, padding, d.ow);
                gemm_col_block(GemmLayout::kNN, g.data() + s * d.cout * l,
                               d.cout, l, bp, ckk, blk, gw.data(), acc);
              }
            }
          });
          w.state()->accumulate(gw);
        }
        if (need_x) {
          // gcol (CKK x L) = wᵀ · gout_s (TN through the packed engine,
          // into one pooled scratch buffer), then col2im scatters into gx.
          Tensor gx = Tensor::zeros(x.value().shape());
          const PackedA wt(GemmLayout::kTN, w.value().data(), ckk, d.cout);
          const int64_t blocks = gemm_col_blocks(l);
          runtime::FloatWorkspace gcol(static_cast<size_t>(ckk * l));
          for (int64_t s = 0; s < d.n; ++s) {
            const StridedBPacker bp(g.data() + s * d.cout * l, l, false);
            runtime::parallel_for(blocks, [&](int64_t b0, int64_t b1) {
              for (int64_t blk = b0; blk < b1; ++blk) {
                gemm_col_block(wt, bp, l, blk, gcol.data(), GemmEpilogue{});
              }
            });
            col2im(gcol.data(), d.cin, d.h, d.w, d.kh, stride, padding,
                   gx.data() + s * d.cin * d.h * d.w);
          }
          x.state()->accumulate(gx);
        }
        if (has_bias && b.requires_grad()) {
          Tensor gb = Tensor::zeros({d.cout});
          for (int64_t n = 0; n < d.n; ++n) {
            for (int64_t c = 0; c < d.cout; ++c) {
              const float* p = g.data() + (n * d.cout + c) * l;
              double acc = 0.0;
              for (int64_t i = 0; i < l; ++i) acc += p[i];
              gb[c] += static_cast<float>(acc);
            }
          }
          b.state()->accumulate(gb);
        }
      });
}

Variable conv2d_prepacked(const Variable& x, const Variable& w,
                          const PackedWeight& wp, const Variable& b,
                          int64_t stride, int64_t padding) {
  const ConvDims d = conv_dims(x, w, stride, padding, /*transposed=*/false);
  const bool has_bias = b.defined();
  if (has_bias && (b.value().dim() != 1 || b.value().size(0) != d.cout)) {
    throw std::invalid_argument("conv2d bias shape mismatch");
  }
  const int64_t ckk = d.cin * d.kh * d.kw;
  if (wp.m() != d.cout || wp.k() != ckk) {
    throw std::invalid_argument("conv2d prepacked weight shape mismatch");
  }
  const int64_t l = d.oh * d.ow;
  Tensor out({d.n, d.cout, d.oh, d.ow});
  const int64_t blocks = gemm_col_blocks(l);
  const bool pointwise = d.kh == 1 && d.kw == 1 && stride == 1 && padding == 0;
  const float* bias = has_bias ? b.value().data() : nullptr;

  // Per-sample activation scale for int8: max|x_s| over the whole sample
  // bounds every im2col entry (padding gathers zeros), and max is
  // order-independent, so the scale — and everything derived from it — does
  // not depend on the schedule.
  std::vector<float> inv_bscale, combined;
  if (wp.precision() == Precision::kInt8) {
    inv_bscale.resize(static_cast<size_t>(d.n));
    combined.resize(static_cast<size_t>(d.n * d.cout));
    const float* rs = wp.row_scales();
    const int64_t plane = d.cin * d.h * d.w;
    for (int64_t s = 0; s < d.n; ++s) {
      const float amax = max_abs(x.value().data() + s * plane, plane);
      inv_bscale[static_cast<size_t>(s)] = amax > 0.f ? 127.f / amax : 0.f;
      const float bs = amax / 127.f;
      for (int64_t i = 0; i < d.cout; ++i) {
        combined[static_cast<size_t>(s * d.cout + i)] = rs[i] * bs;
      }
    }
  }

  GemmEpilogue ep;
  ep.bias = bias;
  runtime::parallel_for(d.n * blocks, [&](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      const int64_t s = t / blocks;
      const int64_t blk = t % blocks;
      const float* xs = x.value().data() + s * d.cin * d.h * d.w;
      float* cs = out.data() + s * d.cout * l;
      const Im2colPacker im(xs, d.h, d.w, d.kh, stride, padding, d.ow);
      const StridedBPacker direct(xs, l, /*transposed=*/false);
      const BPanelPacker& bp =
          pointwise ? static_cast<const BPanelPacker&>(direct)
                    : static_cast<const BPanelPacker&>(im);
      switch (wp.precision()) {
        case Precision::kFp32:
          gemm_col_block(wp.fp32_view(), bp, l, blk, cs, ep);
          break;
        case Precision::kInt8:
          gemm_col_block_i8(wp, bp, inv_bscale[static_cast<size_t>(s)],
                            combined.data() + s * d.cout, l, blk, cs, bias);
          break;
        case Precision::kBf16:
          gemm_col_block_bf16(wp, bp, l, blk, cs, ep);
          break;
      }
    }
  });
  return Variable(std::move(out));
}

Variable conv_transpose2d_prepacked(const Variable& x, const Variable& w,
                                    const PackedWeight& wp, const Variable& b,
                                    int64_t stride, int64_t padding) {
  const ConvDims d = conv_dims(x, w, stride, padding, /*transposed=*/true);
  const bool has_bias = b.defined();
  if (has_bias && (b.value().dim() != 1 || b.value().size(0) != d.cout)) {
    throw std::invalid_argument("conv_transpose2d bias shape mismatch");
  }
  const int64_t ckk = d.cout * d.kh * d.kw;
  if (wp.m() != ckk || wp.k() != d.cin) {
    throw std::invalid_argument(
        "conv_transpose2d prepacked weight shape mismatch");
  }
  const int64_t l = d.h * d.w;
  const int64_t plane = d.oh * d.ow;
  Tensor out({d.n, d.cout, d.oh, d.ow});
  const int64_t blocks = gemm_col_blocks(l);
  runtime::FloatWorkspace col(static_cast<size_t>(ckk * l));
  std::vector<float> combined;
  if (wp.precision() == Precision::kInt8) {
    combined.resize(static_cast<size_t>(ckk));
  }
  for (int64_t s = 0; s < d.n; ++s) {
    const float* xs = x.value().data() + s * d.cin * l;
    const StridedBPacker bp(xs, l, /*transposed=*/false);
    float inv_bscale = 0.f;
    if (wp.precision() == Precision::kInt8) {
      const float amax = max_abs(xs, d.cin * l);
      inv_bscale = amax > 0.f ? 127.f / amax : 0.f;
      const float bs = amax / 127.f;
      const float* rs = wp.row_scales();
      for (int64_t i = 0; i < ckk; ++i) {
        combined[static_cast<size_t>(i)] = rs[i] * bs;
      }
    }
    runtime::parallel_for(blocks, [&](int64_t b0, int64_t b1) {
      for (int64_t blk = b0; blk < b1; ++blk) {
        switch (wp.precision()) {
          case Precision::kFp32:
            gemm_col_block(wp.fp32_view(), bp, l, blk, col.data(),
                           GemmEpilogue{});
            break;
          case Precision::kInt8:
            // Bias is applied after col2im (it belongs to the scattered
            // output plane, not the column matrix).
            gemm_col_block_i8(wp, bp, inv_bscale, combined.data(), l, blk,
                              col.data(), /*bias=*/nullptr);
            break;
          case Precision::kBf16:
            gemm_col_block_bf16(wp, bp, l, blk, col.data(), GemmEpilogue{});
            break;
        }
      }
    });
    col2im(col.data(), d.cout, d.oh, d.ow, d.kh, stride, padding,
           out.data() + s * d.cout * plane);
    if (has_bias) {
      for (int64_t c = 0; c < d.cout; ++c) {
        float* p = out.data() + (s * d.cout + c) * plane;
        const float bias = b.value()[c];
        for (int64_t i = 0; i < plane; ++i) p[i] += bias;
      }
    }
  }
  return Variable(std::move(out));
}

Variable conv_transpose2d(const Variable& x, const Variable& w,
                          const Variable& b, int64_t stride, int64_t padding) {
  const ConvDims d = conv_dims(x, w, stride, padding, /*transposed=*/true);
  const bool has_bias = b.defined();
  if (has_bias && (b.value().dim() != 1 || b.value().size(0) != d.cout)) {
    throw std::invalid_argument("conv_transpose2d bias shape mismatch");
  }
  // Forward of conv-transpose == input-gradient of a conv whose input is the
  // output here: columns = W^T(CoutKK x Cin) * x_flat(Cin x hw), scattered by
  // col2im into the (oh, ow) output plane.
  const int64_t ckk = d.cout * d.kh * d.kw;
  const int64_t l = d.h * d.w;  // input spatial size acts as column count
  Tensor out({d.n, d.cout, d.oh, d.ow});
  {
    // col (CoutKK x hw) = wᵀ · x_s through the packed engine (one pooled
    // scratch buffer, GEMM parallel over column blocks), then col2im
    // scatters — itself parallel over the disjoint output channels.
    const PackedA wt(GemmLayout::kTN, w.value().data(), ckk, d.cin);
    const int64_t blocks = gemm_col_blocks(l);
    const int64_t plane = d.oh * d.ow;
    runtime::FloatWorkspace col(static_cast<size_t>(ckk * l));
    for (int64_t s = 0; s < d.n; ++s) {
      const StridedBPacker bp(x.value().data() + s * d.cin * l, l, false);
      runtime::parallel_for(blocks, [&](int64_t b0, int64_t b1) {
        for (int64_t blk = b0; blk < b1; ++blk) {
          gemm_col_block(wt, bp, l, blk, col.data(), GemmEpilogue{});
        }
      });
      col2im(col.data(), d.cout, d.oh, d.ow, d.kh, stride, padding,
             out.data() + s * d.cout * plane);
      if (has_bias) {
        for (int64_t c = 0; c < d.cout; ++c) {
          float* p = out.data() + (s * d.cout + c) * plane;
          const float bias = b.value()[c];
          for (int64_t i = 0; i < plane; ++i) p[i] += bias;
        }
      }
    }
  }

  std::vector<Variable> parents = {x, w};
  if (has_bias) parents.push_back(b);
  return Variable::make_node(
      std::move(out), std::move(parents),
      [x, w, b, has_bias, d, stride, padding, ckk, l](const Tensor& g) {
        const bool need_x = x.requires_grad();
        const bool need_w = w.requires_grad();
        // Backward mirrors conv2d forward: the logical column matrix is
        // im2col(gout), supplied implicitly by the conv packers — it is
        // never materialized.
        if (need_x) {
          // gx (Cin x hw) = w (Cin x CoutKK) · im2col(gout_s); tasks are
          // (sample, column block) pairs writing disjoint gx tiles.
          Tensor gx = Tensor::zeros(x.value().shape());
          const PackedA wp(GemmLayout::kNN, w.value().data(), d.cin, ckk);
          const int64_t blocks = gemm_col_blocks(l);
          runtime::parallel_for(d.n * blocks, [&](int64_t t0, int64_t t1) {
            for (int64_t t = t0; t < t1; ++t) {
              const int64_t s = t / blocks;
              const int64_t blk = t % blocks;
              const Im2colPacker bp(g.data() + s * d.cout * d.oh * d.ow, d.oh,
                                    d.ow, d.kh, stride, padding, d.w);
              gemm_col_block(wp, bp, l, blk, gx.data() + s * d.cin * l,
                             GemmEpilogue{});
            }
          });
          x.state()->accumulate(gx);
        }
        if (need_w) {
          // gw (Cin x CoutKK) = sum_s x_s (Cin x hw) · im2col(gout_s)ᵀ;
          // parallel over gw column blocks, samples walked serially.
          Tensor gw = Tensor::zeros(w.value().shape());
          const int64_t blocks = gemm_col_blocks(ckk);
          GemmEpilogue acc;
          acc.accumulate = true;
          runtime::parallel_for(blocks, [&](int64_t b0, int64_t b1) {
            for (int64_t blk = b0; blk < b1; ++blk) {
              for (int64_t s = 0; s < d.n; ++s) {
                const Im2colTPacker bp(g.data() + s * d.cout * d.oh * d.ow,
                                       d.oh, d.ow, d.kh, stride, padding, d.w);
                gemm_col_block(GemmLayout::kNN, x.value().data() + s * d.cin * l,
                               d.cin, l, bp, ckk, blk, gw.data(), acc);
              }
            }
          });
          w.state()->accumulate(gw);
        }
        if (has_bias && b.requires_grad()) {
          Tensor gb = Tensor::zeros({d.cout});
          const int64_t plane = d.oh * d.ow;
          for (int64_t n = 0; n < d.n; ++n) {
            for (int64_t c = 0; c < d.cout; ++c) {
              const float* p = g.data() + (n * d.cout + c) * plane;
              double acc = 0.0;
              for (int64_t i = 0; i < plane; ++i) acc += p[i];
              gb[c] += static_cast<float>(acc);
            }
          }
          b.state()->accumulate(gb);
        }
      });
}

Variable avg_pool2d(const Variable& x, int64_t k) {
  if (x.value().dim() != 4) throw std::invalid_argument("avg_pool2d 4-D only");
  const int64_t n = x.value().size(0), c = x.value().size(1);
  const int64_t h = x.value().size(2), w = x.value().size(3);
  if (h % k != 0 || w % k != 0) {
    throw std::invalid_argument("avg_pool2d requires extents divisible by k");
  }
  const int64_t oh = h / k, ow = w / k;
  Tensor out({n, c, oh, ow});
  const float inv = 1.f / static_cast<float>(k * k);
  for (int64_t nc = 0; nc < n * c; ++nc) {
    const float* src = x.value().data() + nc * h * w;
    float* dst = out.data() + nc * oh * ow;
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        float acc = 0.f;
        for (int64_t ky = 0; ky < k; ++ky) {
          const float* row = src + (oy * k + ky) * w + ox * k;
          for (int64_t kx = 0; kx < k; ++kx) acc += row[kx];
        }
        dst[oy * ow + ox] = acc * inv;
      }
    }
  }
  return Variable::make_node(
      std::move(out), {x}, [x, n, c, h, w, k, oh, ow, inv](const Tensor& g) {
        Tensor gx({n, c, h, w});
        for (int64_t nc = 0; nc < n * c; ++nc) {
          const float* src = g.data() + nc * oh * ow;
          float* dst = gx.data() + nc * h * w;
          for (int64_t oy = 0; oy < oh; ++oy) {
            for (int64_t ox = 0; ox < ow; ++ox) {
              const float v = src[oy * ow + ox] * inv;
              for (int64_t ky = 0; ky < k; ++ky) {
                float* row = dst + (oy * k + ky) * w + ox * k;
                for (int64_t kx = 0; kx < k; ++kx) row[kx] += v;
              }
            }
          }
        }
        x.state()->accumulate(gx);
      });
}

Variable batch_norm2d(const Variable& x, const Variable& gamma,
                      const Variable& beta, Tensor& running_mean,
                      Tensor& running_var, bool training, float momentum,
                      float eps) {
  if (x.value().dim() != 4) throw std::invalid_argument("batch_norm2d 4-D only");
  const int64_t n = x.value().size(0), c = x.value().size(1);
  const int64_t plane = x.value().size(2) * x.value().size(3);
  const int64_t m = n * plane;  // elements per channel

  Tensor mean_t({c}), var_t({c});
  if (training) {
    for (int64_t ch = 0; ch < c; ++ch) {
      double s = 0.0, s2 = 0.0;
      for (int64_t b = 0; b < n; ++b) {
        const float* p = x.value().data() + (b * c + ch) * plane;
        for (int64_t i = 0; i < plane; ++i) {
          s += p[i];
          s2 += static_cast<double>(p[i]) * p[i];
        }
      }
      const double mu = s / m;
      mean_t[ch] = static_cast<float>(mu);
      var_t[ch] = static_cast<float>(s2 / m - mu * mu);
    }
    for (int64_t ch = 0; ch < c; ++ch) {
      running_mean[ch] =
          (1.f - momentum) * running_mean[ch] + momentum * mean_t[ch];
      running_var[ch] =
          (1.f - momentum) * running_var[ch] + momentum * var_t[ch];
    }
  } else {
    mean_t = running_mean.clone();
    var_t = running_var.clone();
  }

  Tensor inv_std({c});
  for (int64_t ch = 0; ch < c; ++ch) {
    inv_std[ch] = 1.f / std::sqrt(var_t[ch] + eps);
  }
  Tensor xhat(x.value().shape());
  Tensor out(x.value().shape());
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* p = x.value().data() + (b * c + ch) * plane;
      float* xh = xhat.data() + (b * c + ch) * plane;
      float* o = out.data() + (b * c + ch) * plane;
      const float mu = mean_t[ch], is = inv_std[ch];
      const float ga = gamma.value()[ch], be = beta.value()[ch];
      for (int64_t i = 0; i < plane; ++i) {
        xh[i] = (p[i] - mu) * is;
        o[i] = ga * xh[i] + be;
      }
    }
  }

  return Variable::make_node(
      std::move(out), {x, gamma, beta},
      [x, gamma, beta, xhat, inv_std, training, n, c, plane,
       m](const Tensor& g) {
        // Per-channel reductions of the cotangent.
        Tensor sum_g({c}), sum_gx({c});
        for (int64_t ch = 0; ch < c; ++ch) {
          double sg = 0.0, sgx = 0.0;
          for (int64_t b = 0; b < n; ++b) {
            const float* gp = g.data() + (b * c + ch) * plane;
            const float* xh = xhat.data() + (b * c + ch) * plane;
            for (int64_t i = 0; i < plane; ++i) {
              sg += gp[i];
              sgx += static_cast<double>(gp[i]) * xh[i];
            }
          }
          sum_g[ch] = static_cast<float>(sg);
          sum_gx[ch] = static_cast<float>(sgx);
        }
        if (gamma.requires_grad()) gamma.state()->accumulate(sum_gx);
        if (beta.requires_grad()) beta.state()->accumulate(sum_g);
        if (x.requires_grad()) {
          Tensor gx(x.value().shape());
          const float inv_m = 1.f / static_cast<float>(m);
          for (int64_t b = 0; b < n; ++b) {
            for (int64_t ch = 0; ch < c; ++ch) {
              const float* gp = g.data() + (b * c + ch) * plane;
              const float* xh = xhat.data() + (b * c + ch) * plane;
              float* gxp = gx.data() + (b * c + ch) * plane;
              const float k = gamma.value()[ch] * inv_std[ch];
              if (training) {
                const float mg = sum_g[ch] * inv_m;
                const float mgx = sum_gx[ch] * inv_m;
                for (int64_t i = 0; i < plane; ++i) {
                  gxp[i] = k * (gp[i] - mg - xh[i] * mgx);
                }
              } else {
                for (int64_t i = 0; i < plane; ++i) gxp[i] = k * gp[i];
              }
            }
          }
          x.state()->accumulate(gx);
        }
      });
}

}  // namespace litho::ag
