#include "autograd/ops.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "autograd/capture.h"
#include "autograd/grad_mode.h"
#include "runtime/thread_pool.h"
#include "runtime/workspace.h"
#include "tensor/gemm.h"
#include "tensor/prepack.h"

namespace litho::ag {
namespace {

/// The recorder to append capture nodes to, or nullptr. Ops record only in
/// no-grad mode: a grad-mode forward builds an autograd graph whose node
/// Variables are not the leaf Variables capture keys slots by.
GraphRecorder* active_recorder() {
  GraphRecorder* rec = GraphRecorder::current();
  return (rec != nullptr && !GradMode::is_enabled()) ? rec : nullptr;
}

void check_same_shape(const Variable& a, const Variable& b, const char* op) {
  if (!a.value().same_shape(b.value())) {
    throw std::invalid_argument(std::string(op) + " shape mismatch: " +
                                shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
  }
}

struct ConvDims {
  int64_t n, cin, h, w;       // input
  int64_t cout, kh, kw;       // kernel
  int64_t oh, ow;             // output
};

// -- Implicit im2col packers --------------------------------------------------
// The packed GEMM engine pulls B micro-panels through these instead of a
// materialized column matrix: each pack() gathers the requested window of
// the logical im2col matrix straight from the (virtually padded) input
// plane. Gathered values are exact copies, so conv results stay bitwise
// identical to the explicit im2col + GEMM formulation.

/// Logical B = im2col(x): row k = (channel, ki, kj), column j = (oy, ox).
class Im2colPacker final : public BPanelPacker {
 public:
  /// @p steps (nullable) is a capture-time Im2colStep table indexed by
  /// logical row kk; with it, pack() skips the per-row channel/ki/kj
  /// decode. Same gathered values either way.
  Im2colPacker(const float* x, int64_t h, int64_t w, int64_t k,
               int64_t stride, int64_t padding, int64_t ow,
               const Im2colStep* steps = nullptr)
      : x_(x), h_(h), w_(w), k_(k), stride_(stride), padding_(padding),
        ow_(ow), steps_(steps) {}

  void pack(int64_t k0, int64_t k1, int64_t j0, int64_t j1,
            float* dst) const override {
    const int64_t klen = k1 - k0;
    const int64_t panels = (j1 - j0 + kGemmNR - 1) / kGemmNR;
    for (int64_t t = 0; t < panels; ++t) {
      float* p = dst + t * klen * kGemmNR;
      const int64_t c0 = j0 + t * kGemmNR;
      const int64_t nr = std::min(kGemmNR, j1 - c0);
      // Decode this panel's output pixels once.
      int64_t oy[kGemmNR], ox[kGemmNR];
      int64_t y = c0 / ow_, xo = c0 % ow_;
      for (int64_t j = 0; j < nr; ++j) {
        oy[j] = y;
        ox[j] = xo;
        if (++xo == ow_) {
          xo = 0;
          ++y;
        }
      }
      // Panels whose pixels sit on one output row map to a contiguous run
      // of the input when stride is 1 — the common interior case collapses
      // to a straight vector copy.
      const bool one_row = oy[0] == oy[nr - 1];
      for (int64_t kk = k0; kk < k1; ++kk) {
        int64_t dy, dx;
        const float* plane;
        if (steps_ != nullptr) {
          const Im2colStep& st = steps_[kk];
          plane = x_ + st.plane;
          dy = st.dy;
          dx = st.dx;
        } else {
          const int64_t kj = kk % k_;
          const int64_t ki = (kk / k_) % k_;
          plane = x_ + (kk / (k_ * k_)) * h_ * w_;
          dy = ki - padding_;
          dx = kj - padding_;
        }
        float* d = p + (kk - k0) * kGemmNR;
        if (one_row && stride_ == 1) {
          const int64_t iy = oy[0] + dy;
          const int64_t ix0 = ox[0] + dx;
          if (iy >= 0 && iy < h_ && ix0 >= 0 && ix0 + nr <= w_) {
            const float* src = plane + iy * w_ + ix0;
            for (int64_t j = 0; j < nr; ++j) d[j] = src[j];
            for (int64_t j = nr; j < kGemmNR; ++j) d[j] = 0.f;
            continue;
          }
        }
        for (int64_t j = 0; j < nr; ++j) {
          const int64_t iy = oy[j] * stride_ + dy;
          const int64_t ix = ox[j] * stride_ + dx;
          d[j] = (iy >= 0 && iy < h_ && ix >= 0 && ix < w_)
                     ? plane[iy * w_ + ix]
                     : 0.f;
        }
        for (int64_t j = nr; j < kGemmNR; ++j) d[j] = 0.f;
      }
    }
  }

 private:
  const float* x_;
  int64_t h_, w_, k_, stride_, padding_, ow_;
  const Im2colStep* steps_;
};

/// Logical B = im2col(x)ᵀ: row k = (oy, ox), column j = (channel, ki, kj).
/// Backs the ABᵀ-shaped weight-gradient GEMM without materializing columns.
class Im2colTPacker final : public BPanelPacker {
 public:
  Im2colTPacker(const float* x, int64_t h, int64_t w, int64_t k,
                int64_t stride, int64_t padding, int64_t ow)
      : x_(x), h_(h), w_(w), k_(k), stride_(stride), padding_(padding),
        ow_(ow) {}

  void pack(int64_t k0, int64_t k1, int64_t j0, int64_t j1,
            float* dst) const override {
    const int64_t klen = k1 - k0;
    const int64_t panels = (j1 - j0 + kGemmNR - 1) / kGemmNR;
    for (int64_t t = 0; t < panels; ++t) {
      float* p = dst + t * klen * kGemmNR;
      const int64_t c0 = j0 + t * kGemmNR;
      const int64_t nr = std::min(kGemmNR, j1 - c0);
      // Decode this panel's (channel, ki, kj) columns once.
      int64_t ch[kGemmNR], ki[kGemmNR], kj[kGemmNR];
      for (int64_t j = 0; j < nr; ++j) {
        const int64_t idx = c0 + j;
        kj[j] = idx % k_;
        ki[j] = (idx / k_) % k_;
        ch[j] = idx / (k_ * k_);
      }
      int64_t y = k0 / ow_, xo = k0 % ow_;
      for (int64_t kk = k0; kk < k1; ++kk) {
        float* d = p + (kk - k0) * kGemmNR;
        for (int64_t j = 0; j < nr; ++j) {
          const int64_t iy = y * stride_ + ki[j] - padding_;
          const int64_t ix = xo * stride_ + kj[j] - padding_;
          d[j] = (iy >= 0 && iy < h_ && ix >= 0 && ix < w_)
                     ? x_[(ch[j] * h_ + iy) * w_ + ix]
                     : 0.f;
        }
        for (int64_t j = nr; j < kGemmNR; ++j) d[j] = 0.f;
        if (++xo == ow_) {
          xo = 0;
          ++y;
        }
      }
    }
  }

 private:
  const float* x_;
  int64_t h_, w_, k_, stride_, padding_, ow_;
};

ConvDims conv_dims(const Variable& x, const Variable& w, int64_t stride,
                   int64_t padding, bool transposed) {
  if (x.value().dim() != 4 || w.value().dim() != 4) {
    throw std::invalid_argument("conv expects 4-D activation and weight");
  }
  ConvDims d{};
  d.n = x.value().size(0);
  d.cin = x.value().size(1);
  d.h = x.value().size(2);
  d.w = x.value().size(3);
  if (!transposed) {
    d.cout = w.value().size(0);
    if (w.value().size(1) != d.cin) {
      throw std::invalid_argument("conv2d weight Cin mismatch");
    }
    d.kh = w.value().size(2);
    d.kw = w.value().size(3);
    d.oh = conv_out_size(d.h, d.kh, stride, padding);
    d.ow = conv_out_size(d.w, d.kw, stride, padding);
  } else {
    if (w.value().size(0) != d.cin) {
      throw std::invalid_argument("conv_transpose2d weight Cin mismatch");
    }
    d.cout = w.value().size(1);
    d.kh = w.value().size(2);
    d.kw = w.value().size(3);
    d.oh = (d.h - 1) * stride - 2 * padding + d.kh;
    d.ow = (d.w - 1) * stride - 2 * padding + d.kw;
  }
  if (d.oh <= 0 || d.ow <= 0) {
    throw std::invalid_argument("conv output size is non-positive");
  }
  return d;
}

// -- Shared compute cores ------------------------------------------------------
// Each instrumented inference op computes through one of these, and its
// capture closure (autograd/capture.h) replays the same core against arena
// buffers — op walk and graph replay share per-element arithmetic, so
// executor output is bitwise identical to the op walk by construction.

void add_core(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] + b[i];
}

void leaky_core(const float* x, float* o, int64_t n, float slope) {
  for (int64_t i = 0; i < n; ++i) {
    const float v = x[i];
    o[i] = v < 0.f ? v * slope : v;
  }
}

void tanh_core(const float* x, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = std::tanh(x[i]);
}

void sigmoid_core(const float* x, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = 1.f / (1.f + std::exp(-x[i]));
}

void avg_pool_core(const float* x, float* o, int64_t planes, int64_t h,
                   int64_t w, int64_t k) {
  const int64_t oh = h / k, ow = w / k;
  const float inv = 1.f / static_cast<float>(k * k);
  for (int64_t nc = 0; nc < planes; ++nc) {
    const float* src = x + nc * h * w;
    float* dst = o + nc * oh * ow;
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        float acc = 0.f;
        for (int64_t ky = 0; ky < k; ++ky) {
          const float* row = src + (oy * k + ky) * w + ox * k;
          for (int64_t kx = 0; kx < k; ++kx) acc += row[kx];
        }
        dst[oy * ow + ox] = acc * inv;
      }
    }
  }
}

void bn_eval_core(const float* x, float* o, int64_t n, int64_t c,
                  int64_t plane, const float* mu, const float* inv_std,
                  const float* gamma, const float* beta) {
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* p = x + (b * c + ch) * plane;
      float* op = o + (b * c + ch) * plane;
      const float m = mu[ch], is = inv_std[ch];
      const float ga = gamma[ch], be = beta[ch];
      for (int64_t i = 0; i < plane; ++i) {
        const float xh = (p[i] - m) * is;
        op[i] = ga * xh + be;
      }
    }
  }
}

/// The conv2d_prepacked compute body: GEMM fan-out over (sample, column
/// block) tasks. @p tuning (nullable) supplies the executor's fused
/// epilogue chain and per-shape knobs; all knobs are bitwise-neutral.
void conv2d_prepacked_run(const ConvDims& d, const PackedWeight& wp,
                          const float* x, const float* bias, int64_t stride,
                          int64_t padding, const NodeTuning* tuning,
                          float* out) {
  const int64_t l = d.oh * d.ow;
  const bool pointwise = d.kh == 1 && d.kw == 1 && stride == 1 && padding == 0;
  GemmEpilogue ep;
  ep.bias = bias;
  if (tuning != nullptr) {
    ep.post = tuning->post.data();
    ep.post_count = static_cast<int>(tuning->post.size());
    ep.nc = tuning->nc;
    ep.bfeed = tuning->bfeed;
  }
  const int64_t blocks = gemm_col_blocks(l, ep.nc);

  // Per-sample activation scale for int8: max|x_s| over the whole sample
  // bounds every im2col entry (padding gathers zeros), and max is
  // order-independent, so the scale — and everything derived from it — does
  // not depend on the schedule. Scratch is pooled: steady-state replay
  // allocates nothing.
  std::optional<runtime::FloatWorkspace> scales;
  const float* inv_bscale = nullptr;
  const float* combined = nullptr;
  if (wp.precision() == Precision::kInt8) {
    scales.emplace(static_cast<size_t>(d.n * (1 + d.cout)));
    float* ib = scales->data();
    float* cb = scales->data() + d.n;
    const float* rs = wp.row_scales();
    const int64_t plane = d.cin * d.h * d.w;
    for (int64_t s = 0; s < d.n; ++s) {
      const float amax = max_abs(x + s * plane, plane);
      ib[s] = amax > 0.f ? 127.f / amax : 0.f;
      const float bs = amax / 127.f;
      for (int64_t i = 0; i < d.cout; ++i) cb[s * d.cout + i] = rs[i] * bs;
    }
    inv_bscale = ib;
    combined = cb;
  }

  runtime::parallel_for(d.n * blocks, [&](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      const int64_t s = t / blocks;
      const int64_t blk = t % blocks;
      const float* xs = x + s * d.cin * d.h * d.w;
      float* cs = out + s * d.cout * l;
      const Im2colPacker im(xs, d.h, d.w, d.kh, stride, padding, d.ow,
                            tuning != nullptr && !tuning->im2col.empty()
                                ? tuning->im2col.data()
                                : nullptr);
      const StridedBPacker direct(xs, l, /*transposed=*/false);
      const BPanelPacker& bp =
          pointwise ? static_cast<const BPanelPacker&>(direct)
                    : static_cast<const BPanelPacker&>(im);
      switch (wp.precision()) {
        case Precision::kFp32:
          gemm_col_block(wp.fp32_view(), bp, l, blk, cs, ep);
          break;
        case Precision::kInt8:
          gemm_col_block_i8(wp, bp, inv_bscale[s], combined + s * d.cout, l,
                            blk, cs, bias, ep);
          break;
        case Precision::kBf16:
          gemm_col_block_bf16(wp, bp, l, blk, cs, ep);
          break;
      }
    }
  });
}

/// The conv_transpose2d_prepacked compute body: per-sample GEMM into a
/// pooled column buffer, zero-filled output, col2im scatter, then bias.
/// The explicit zero fill makes the core safe over arena buffers (the op
/// walk relied on freshly zero-initialized Tensors).
void conv_transpose2d_prepacked_run(const ConvDims& d, const PackedWeight& wp,
                                    const float* x, const float* bias,
                                    int64_t stride, int64_t padding,
                                    const NodeTuning* tuning, float* out) {
  const int64_t ckk = d.cout * d.kh * d.kw;
  const int64_t l = d.h * d.w;
  const int64_t plane = d.oh * d.ow;
  GemmEpilogue ep;
  if (tuning != nullptr) {
    ep.nc = tuning->nc;
    ep.bfeed = tuning->bfeed;
  }
  const int64_t blocks = gemm_col_blocks(l, ep.nc);
  runtime::FloatWorkspace col(static_cast<size_t>(ckk * l));
  std::optional<runtime::FloatWorkspace> scales;
  if (wp.precision() == Precision::kInt8) {
    scales.emplace(static_cast<size_t>(ckk));
  }
  std::fill(out, out + d.n * d.cout * plane, 0.f);
  for (int64_t s = 0; s < d.n; ++s) {
    const float* xs = x + s * d.cin * l;
    const StridedBPacker bp(xs, l, /*transposed=*/false);
    float inv_bscale = 0.f;
    if (wp.precision() == Precision::kInt8) {
      const float amax = max_abs(xs, d.cin * l);
      inv_bscale = amax > 0.f ? 127.f / amax : 0.f;
      const float bs = amax / 127.f;
      const float* rs = wp.row_scales();
      for (int64_t i = 0; i < ckk; ++i) scales->data()[i] = rs[i] * bs;
    }
    runtime::parallel_for(blocks, [&](int64_t b0, int64_t b1) {
      for (int64_t blk = b0; blk < b1; ++blk) {
        switch (wp.precision()) {
          case Precision::kFp32:
            gemm_col_block(wp.fp32_view(), bp, l, blk, col.data(), ep);
            break;
          case Precision::kInt8:
            // Bias is applied after col2im (it belongs to the scattered
            // output plane, not the column matrix).
            gemm_col_block_i8(wp, bp, inv_bscale, scales->data(), l, blk,
                              col.data(), /*bias=*/nullptr, ep);
            break;
          case Precision::kBf16:
            gemm_col_block_bf16(wp, bp, l, blk, col.data(), ep);
            break;
        }
      }
    });
    col2im(col.data(), d.cout, d.oh, d.ow, d.kh, stride, padding,
           out + s * d.cout * plane);
    if (bias != nullptr) {
      for (int64_t c = 0; c < d.cout; ++c) {
        float* p = out + (s * d.cout + c) * plane;
        const float bv = bias[c];
        for (int64_t i = 0; i < plane; ++i) p[i] += bv;
      }
    }
  }
}

}  // namespace

int64_t conv_out_size(int64_t in, int64_t k, int64_t stride, int64_t padding) {
  return (in + 2 * padding - k) / stride + 1;
}

Variable add(const Variable& a, const Variable& b) {
  check_same_shape(a, b, "add");
  const int64_t numel = a.value().numel();
  Tensor out(a.value().shape());
  add_core(a.value().data(), b.value().data(), out.data(), numel);
  Variable out_v =
      Variable::make_node(std::move(out), {a, b}, [a, b](const Tensor& g) {
        a.state()->accumulate(g);
        b.state()->accumulate(g);
      });
  if (GraphRecorder* rec = active_recorder()) {
    rec->record("add", {a, b}, {out_v}, [numel](const ReplayIO& io) {
      add_core(io.in(0), io.in(1), io.out(0), numel);
    });
  }
  return out_v;
}

Variable sub(const Variable& a, const Variable& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a.value().sub(b.value());
  return Variable::make_node(std::move(out), {a, b}, [a, b](const Tensor& g) {
    a.state()->accumulate(g);
    Tensor neg = g.mul(-1.f);
    b.state()->accumulate(neg);
  });
}

Variable mul(const Variable& a, const Variable& b) {
  check_same_shape(a, b, "mul");
  Tensor out = a.value().mul(b.value());
  return Variable::make_node(std::move(out), {a, b}, [a, b](const Tensor& g) {
    if (a.requires_grad()) a.state()->accumulate(g.mul(b.value()));
    if (b.requires_grad()) b.state()->accumulate(g.mul(a.value()));
  });
}

Variable scale(const Variable& a, float s) {
  Tensor out = a.value().mul(s);
  return Variable::make_node(std::move(out), {a}, [a, s](const Tensor& g) {
    a.state()->accumulate(g.mul(s));
  });
}

Variable relu(const Variable& x) { return leaky_relu(x, 0.f); }

Variable leaky_relu(const Variable& x, float negative_slope) {
  const int64_t numel = x.value().numel();
  Tensor out(x.value().shape());
  leaky_core(x.value().data(), out.data(), numel, negative_slope);
  Variable out_v = Variable::make_node(
      std::move(out), {x}, [x, negative_slope](const Tensor& g) {
        Tensor gx = g.clone();
        const Tensor& v = x.value();
        for (int64_t i = 0; i < gx.numel(); ++i) {
          if (v[i] < 0.f) gx[i] *= negative_slope;
        }
        x.state()->accumulate(gx);
      });
  if (GraphRecorder* rec = active_recorder()) {
    CaptureNode& node = rec->record(
        "leaky_relu", {x}, {out_v}, [numel, negative_slope](const ReplayIO& io) {
          leaky_core(io.in(0), io.out(0), numel, negative_slope);
        });
    node.ewise.kind = EwiseInfo::Kind::kLeaky;
    node.ewise.slope = negative_slope;
  }
  return out_v;
}

Variable tanh(const Variable& x) {
  const int64_t numel = x.value().numel();
  Tensor out(x.value().shape());
  tanh_core(x.value().data(), out.data(), numel);
  // Capture the forward output for the backward pass: d tanh = 1 - tanh^2.
  Tensor saved = out;
  Variable out_v =
      Variable::make_node(std::move(out), {x}, [x, saved](const Tensor& g) {
        Tensor gx = g.clone();
        for (int64_t i = 0; i < gx.numel(); ++i) {
          gx[i] *= 1.f - saved[i] * saved[i];
        }
        x.state()->accumulate(gx);
      });
  if (GraphRecorder* rec = active_recorder()) {
    CaptureNode& node =
        rec->record("tanh", {x}, {out_v}, [numel](const ReplayIO& io) {
          tanh_core(io.in(0), io.out(0), numel);
        });
    node.ewise.kind = EwiseInfo::Kind::kTanh;
  }
  return out_v;
}

Variable sigmoid(const Variable& x) {
  const int64_t numel = x.value().numel();
  Tensor out(x.value().shape());
  sigmoid_core(x.value().data(), out.data(), numel);
  Tensor saved = out;
  Variable out_v =
      Variable::make_node(std::move(out), {x}, [x, saved](const Tensor& g) {
        Tensor gx = g.clone();
        for (int64_t i = 0; i < gx.numel(); ++i) {
          gx[i] *= saved[i] * (1.f - saved[i]);
        }
        x.state()->accumulate(gx);
      });
  if (GraphRecorder* rec = active_recorder()) {
    rec->record("sigmoid", {x}, {out_v}, [numel](const ReplayIO& io) {
      sigmoid_core(io.in(0), io.out(0), numel);
    });
  }
  return out_v;
}

Variable concat_channels(const std::vector<Variable>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat of zero variables");
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  Tensor out = Tensor::concat(values, 1);
  std::vector<Variable> parents(parts.begin(), parts.end());
  Variable out_v = Variable::make_node(std::move(out), parents,
                                       [parts](const Tensor& g) {
                                         int64_t start = 0;
                                         for (const Variable& p : parts) {
                                           const int64_t len = p.value().size(1);
                                           if (p.requires_grad()) {
                                             p.state()->accumulate(
                                                 g.narrow(1, start, len));
                                           }
                                           start += len;
                                         }
                                       });
  if (GraphRecorder* rec = active_recorder()) {
    // Per sample, the channel block of each part is copied in part order —
    // exactly Tensor::concat along dim 1. Copies are bitwise.
    const int64_t n = out_v.value().size(0);
    std::vector<int64_t> per_sample;  // elements per sample, per part
    per_sample.reserve(parts.size());
    for (const Variable& p : parts) per_sample.push_back(p.value().numel() / n);
    rec->record("concat", parts, {out_v},
                [n, per_sample](const ReplayIO& io) {
                  float* o = io.out(0);
                  for (int64_t b = 0; b < n; ++b) {
                    for (size_t p = 0; p < per_sample.size(); ++p) {
                      const int64_t len = per_sample[p];
                      const float* src = io.in(static_cast<int>(p)) + b * len;
                      for (int64_t i = 0; i < len; ++i) o[i] = src[i];
                      o += len;
                    }
                  }
                });
  }
  return out_v;
}

Variable narrow_channels(const Variable& x, int64_t start, int64_t len) {
  Tensor out = x.value().narrow(1, start, len);
  return Variable::make_node(
      std::move(out), {x}, [x, start, len](const Tensor& g) {
        Tensor gx = Tensor::zeros(x.value().shape());
        const int64_t n = gx.size(0), c = gx.size(1);
        const int64_t plane = gx.numel() / (n * c);
        for (int64_t b = 0; b < n; ++b) {
          for (int64_t ch = 0; ch < len; ++ch) {
            const float* src = g.data() + (b * len + ch) * plane;
            float* dst = gx.data() + (b * c + start + ch) * plane;
            for (int64_t i = 0; i < plane; ++i) dst[i] = src[i];
          }
        }
        x.state()->accumulate(gx);
      });
}

Variable sum(const Variable& x) {
  Tensor out({1}, x.value().sum());
  return Variable::make_node(std::move(out), {x}, [x](const Tensor& g) {
    x.state()->accumulate(Tensor::full(x.value().shape(), g[0]));
  });
}

Variable mean(const Variable& x) {
  const float inv_n = 1.f / static_cast<float>(x.value().numel());
  Tensor out({1}, x.value().mean());
  return Variable::make_node(std::move(out), {x}, [x, inv_n](const Tensor& g) {
    x.state()->accumulate(Tensor::full(x.value().shape(), g[0] * inv_n));
  });
}

Variable mse_loss(const Variable& pred, const Tensor& target) {
  if (!pred.value().same_shape(target)) {
    throw std::invalid_argument("mse_loss shape mismatch");
  }
  const int64_t n = pred.value().numel();
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = pred.value()[i] - target[i];
    acc += d * d;
  }
  Tensor out({1}, static_cast<float>(acc / static_cast<double>(n)));
  return Variable::make_node(
      std::move(out), {pred}, [pred, target, n](const Tensor& g) {
        Tensor gx(pred.value().shape());
        const float c = 2.f * g[0] / static_cast<float>(n);
        for (int64_t i = 0; i < n; ++i) {
          gx[i] = c * (pred.value()[i] - target[i]);
        }
        pred.state()->accumulate(gx);
      });
}

void im2col(const float* x, int64_t c, int64_t h, int64_t w, int64_t k,
            int64_t stride, int64_t padding, float* col) {
  const int64_t oh = conv_out_size(h, k, stride, padding);
  const int64_t ow = conv_out_size(w, k, stride, padding);
  const int64_t l = oh * ow;
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t ki = 0; ki < k; ++ki) {
      for (int64_t kj = 0; kj < k; ++kj) {
        float* dst = col + ((ch * k + ki) * k + kj) * l;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * stride + ki - padding;
          if (iy < 0 || iy >= h) {
            for (int64_t ox = 0; ox < ow; ++ox) dst[oy * ow + ox] = 0.f;
            continue;
          }
          const float* src_row = x + (ch * h + iy) * w;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * stride + kj - padding;
            dst[oy * ow + ox] = (ix >= 0 && ix < w) ? src_row[ix] : 0.f;
          }
        }
      }
    }
  }
}

void col2im(const float* col, int64_t c, int64_t h, int64_t w, int64_t k,
            int64_t stride, int64_t padding, float* x) {
  const int64_t oh = conv_out_size(h, k, stride, padding);
  const int64_t ow = conv_out_size(w, k, stride, padding);
  const int64_t l = oh * ow;
  // Rows of `col` belonging to channel ch scatter only into channel ch of
  // x, so channels partition into disjoint write sets: parallel and bitwise
  // deterministic (the per-channel scatter order is unchanged).
  runtime::parallel_for(c, [&](int64_t c0, int64_t c1) {
    for (int64_t ch = c0; ch < c1; ++ch) {
      for (int64_t ki = 0; ki < k; ++ki) {
        for (int64_t kj = 0; kj < k; ++kj) {
          const float* src = col + ((ch * k + ki) * k + kj) * l;
          for (int64_t oy = 0; oy < oh; ++oy) {
            const int64_t iy = oy * stride + ki - padding;
            if (iy < 0 || iy >= h) continue;
            float* dst_row = x + (ch * h + iy) * w;
            for (int64_t ox = 0; ox < ow; ++ox) {
              const int64_t ix = ox * stride + kj - padding;
              if (ix >= 0 && ix < w) dst_row[ix] += src[oy * ow + ox];
            }
          }
        }
      }
    }
  });
}

Variable conv2d(const Variable& x, const Variable& w, const Variable& b,
                int64_t stride, int64_t padding) {
  const ConvDims d = conv_dims(x, w, stride, padding, /*transposed=*/false);
  const bool has_bias = b.defined();
  if (has_bias && (b.value().dim() != 1 || b.value().size(0) != d.cout)) {
    throw std::invalid_argument("conv2d bias shape mismatch");
  }
  const int64_t ckk = d.cin * d.kh * d.kw;
  const int64_t l = d.oh * d.ow;
  Tensor out({d.n, d.cout, d.oh, d.ow});
  {
    // Implicit im2col: the weights (Cout x CKK) are packed once and shared
    // by every task; B panels are gathered straight from the padded input,
    // so the full CKK x L column matrix never exists. Tasks are (sample,
    // column block) pairs — disjoint output tiles, deterministic for any
    // thread count. Bias is fused into the micro-kernel epilogue.
    const PackedA wp(GemmLayout::kNN, w.value().data(), d.cout, ckk);
    const int64_t blocks = gemm_col_blocks(l);
    const bool pointwise =
        d.kh == 1 && d.kw == 1 && stride == 1 && padding == 0;
    GemmEpilogue ep;
    ep.bias = has_bias ? b.value().data() : nullptr;
    runtime::parallel_for(d.n * blocks, [&](int64_t t0, int64_t t1) {
      for (int64_t t = t0; t < t1; ++t) {
        const int64_t s = t / blocks;
        const int64_t blk = t % blocks;
        const float* xs = x.value().data() + s * d.cin * d.h * d.w;
        float* cs = out.data() + s * d.cout * l;
        if (pointwise) {
          // 1x1 stride-1 fast path: B is the sample itself (Cin x HW).
          const StridedBPacker bp(xs, l, /*transposed=*/false);
          gemm_col_block(wp, bp, l, blk, cs, ep);
        } else {
          const Im2colPacker bp(xs, d.h, d.w, d.kh, stride, padding, d.ow);
          gemm_col_block(wp, bp, l, blk, cs, ep);
        }
      }
    });
  }

  std::vector<Variable> parents = {x, w};
  if (has_bias) parents.push_back(b);
  return Variable::make_node(
      std::move(out), std::move(parents),
      [x, w, b, has_bias, d, stride, padding, ckk, l](const Tensor& g) {
        const bool need_x = x.requires_grad();
        const bool need_w = w.requires_grad();
        if (need_w) {
          // gw (Cout x CKK) = sum_s gout_s (Cout x L) · im2col(x_s)ᵀ — the
          // ABᵀ shape, with Bᵀ panels gathered straight from x. Parallel
          // over gw column blocks: each task owns a disjoint gw slice and
          // walks samples serially, so the accumulation order never
          // depends on the schedule. (Unlike the forward pass, this order
          // — one running sum across samples and K steps — differs from
          // the seed's per-sample-temporary formulation, so weight
          // gradients are deterministic but not bit-for-bit the seed's.)
          Tensor gw = Tensor::zeros(w.value().shape());
          const int64_t blocks = gemm_col_blocks(ckk);
          GemmEpilogue acc;
          acc.accumulate = true;
          runtime::parallel_for(blocks, [&](int64_t b0, int64_t b1) {
            for (int64_t blk = b0; blk < b1; ++blk) {
              for (int64_t s = 0; s < d.n; ++s) {
                const Im2colTPacker bp(x.value().data() + s * d.cin * d.h * d.w,
                                       d.h, d.w, d.kh, stride, padding, d.ow);
                gemm_col_block(GemmLayout::kNN, g.data() + s * d.cout * l,
                               d.cout, l, bp, ckk, blk, gw.data(), acc);
              }
            }
          });
          w.state()->accumulate(gw);
        }
        if (need_x) {
          // gcol (CKK x L) = wᵀ · gout_s (TN through the packed engine,
          // into one pooled scratch buffer), then col2im scatters into gx.
          Tensor gx = Tensor::zeros(x.value().shape());
          const PackedA wt(GemmLayout::kTN, w.value().data(), ckk, d.cout);
          const int64_t blocks = gemm_col_blocks(l);
          runtime::FloatWorkspace gcol(static_cast<size_t>(ckk * l));
          for (int64_t s = 0; s < d.n; ++s) {
            const StridedBPacker bp(g.data() + s * d.cout * l, l, false);
            runtime::parallel_for(blocks, [&](int64_t b0, int64_t b1) {
              for (int64_t blk = b0; blk < b1; ++blk) {
                gemm_col_block(wt, bp, l, blk, gcol.data(), GemmEpilogue{});
              }
            });
            col2im(gcol.data(), d.cin, d.h, d.w, d.kh, stride, padding,
                   gx.data() + s * d.cin * d.h * d.w);
          }
          x.state()->accumulate(gx);
        }
        if (has_bias && b.requires_grad()) {
          Tensor gb = Tensor::zeros({d.cout});
          for (int64_t n = 0; n < d.n; ++n) {
            for (int64_t c = 0; c < d.cout; ++c) {
              const float* p = g.data() + (n * d.cout + c) * l;
              double acc = 0.0;
              for (int64_t i = 0; i < l; ++i) acc += p[i];
              gb[c] += static_cast<float>(acc);
            }
          }
          b.state()->accumulate(gb);
        }
      });
}

Variable conv2d_prepacked(const Variable& x, const Variable& w,
                          const std::shared_ptr<const PackedWeight>& wp,
                          const Variable& b, int64_t stride, int64_t padding) {
  const ConvDims d = conv_dims(x, w, stride, padding, /*transposed=*/false);
  const bool has_bias = b.defined();
  if (has_bias && (b.value().dim() != 1 || b.value().size(0) != d.cout)) {
    throw std::invalid_argument("conv2d bias shape mismatch");
  }
  const int64_t ckk = d.cin * d.kh * d.kw;
  if (wp == nullptr || wp->m() != d.cout || wp->k() != ckk) {
    throw std::invalid_argument("conv2d prepacked weight shape mismatch");
  }
  Tensor out({d.n, d.cout, d.oh, d.ow});
  conv2d_prepacked_run(d, *wp, x.value().data(),
                       has_bias ? b.value().data() : nullptr, stride, padding,
                       /*tuning=*/nullptr, out.data());
  Variable out_v(std::move(out));
  if (GraphRecorder* rec = active_recorder()) {
    auto tuning = std::make_shared<NodeTuning>();
    // Shape-specialized gather table: one decode per logical im2col row,
    // amortized over every replay (row order matches the packer's
    // kk = (channel * kh + ki) * kw + kj decode).
    tuning->im2col.reserve(static_cast<size_t>(ckk));
    for (int64_t c = 0; c < d.cin; ++c) {
      for (int64_t ki = 0; ki < d.kh; ++ki) {
        for (int64_t kj = 0; kj < d.kw; ++kj) {
          tuning->im2col.push_back({c * d.h * d.w,
                                    static_cast<int32_t>(ki - padding),
                                    static_cast<int32_t>(kj - padding)});
        }
      }
    }
    Tensor bias_t = has_bias ? b.value() : Tensor();
    std::shared_ptr<const PackedWeight> pack = wp;
    CaptureNode& node = rec->record(
        "conv2d", {x}, {out_v},
        [d, pack, bias_t, stride, padding, tuning](const ReplayIO& io) {
          conv2d_prepacked_run(d, *pack, io.in(0),
                               bias_t.numel() > 0 ? bias_t.data() : nullptr,
                               stride, padding, tuning.get(), io.out(0));
        });
    node.tuning = tuning;
    node.conv.valid = true;
    node.conv.transposed = false;
    node.conv.pointwise =
        d.kh == 1 && d.kw == 1 && stride == 1 && padding == 0;
    node.conv.m = d.cout;
    node.conv.k = ckk;
    node.conv.l = d.oh * d.ow;
    node.conv.batch = d.n;
    node.conv.prec = wp->precision();
  }
  return out_v;
}

Variable conv_transpose2d_prepacked(
    const Variable& x, const Variable& w,
    const std::shared_ptr<const PackedWeight>& wp, const Variable& b,
    int64_t stride, int64_t padding) {
  const ConvDims d = conv_dims(x, w, stride, padding, /*transposed=*/true);
  const bool has_bias = b.defined();
  if (has_bias && (b.value().dim() != 1 || b.value().size(0) != d.cout)) {
    throw std::invalid_argument("conv_transpose2d bias shape mismatch");
  }
  const int64_t ckk = d.cout * d.kh * d.kw;
  if (wp == nullptr || wp->m() != ckk || wp->k() != d.cin) {
    throw std::invalid_argument(
        "conv_transpose2d prepacked weight shape mismatch");
  }
  Tensor out({d.n, d.cout, d.oh, d.ow});
  conv_transpose2d_prepacked_run(d, *wp, x.value().data(),
                                 has_bias ? b.value().data() : nullptr, stride,
                                 padding, /*tuning=*/nullptr, out.data());
  Variable out_v(std::move(out));
  if (GraphRecorder* rec = active_recorder()) {
    auto tuning = std::make_shared<NodeTuning>();
    Tensor bias_t = has_bias ? b.value() : Tensor();
    std::shared_ptr<const PackedWeight> pack = wp;
    CaptureNode& node = rec->record(
        "conv_transpose2d", {x}, {out_v},
        [d, pack, bias_t, stride, padding, tuning](const ReplayIO& io) {
          conv_transpose2d_prepacked_run(
              d, *pack, io.in(0),
              bias_t.numel() > 0 ? bias_t.data() : nullptr, stride, padding,
              tuning.get(), io.out(0));
        });
    node.tuning = tuning;
    node.conv.valid = true;
    node.conv.transposed = true;
    node.conv.m = ckk;
    node.conv.k = d.cin;
    node.conv.l = d.h * d.w;
    node.conv.batch = d.n;
    node.conv.prec = wp->precision();
  }
  return out_v;
}

Variable conv_transpose2d(const Variable& x, const Variable& w,
                          const Variable& b, int64_t stride, int64_t padding) {
  const ConvDims d = conv_dims(x, w, stride, padding, /*transposed=*/true);
  const bool has_bias = b.defined();
  if (has_bias && (b.value().dim() != 1 || b.value().size(0) != d.cout)) {
    throw std::invalid_argument("conv_transpose2d bias shape mismatch");
  }
  // Forward of conv-transpose == input-gradient of a conv whose input is the
  // output here: columns = W^T(CoutKK x Cin) * x_flat(Cin x hw), scattered by
  // col2im into the (oh, ow) output plane.
  const int64_t ckk = d.cout * d.kh * d.kw;
  const int64_t l = d.h * d.w;  // input spatial size acts as column count
  Tensor out({d.n, d.cout, d.oh, d.ow});
  {
    // col (CoutKK x hw) = wᵀ · x_s through the packed engine (one pooled
    // scratch buffer, GEMM parallel over column blocks), then col2im
    // scatters — itself parallel over the disjoint output channels.
    const PackedA wt(GemmLayout::kTN, w.value().data(), ckk, d.cin);
    const int64_t blocks = gemm_col_blocks(l);
    const int64_t plane = d.oh * d.ow;
    runtime::FloatWorkspace col(static_cast<size_t>(ckk * l));
    for (int64_t s = 0; s < d.n; ++s) {
      const StridedBPacker bp(x.value().data() + s * d.cin * l, l, false);
      runtime::parallel_for(blocks, [&](int64_t b0, int64_t b1) {
        for (int64_t blk = b0; blk < b1; ++blk) {
          gemm_col_block(wt, bp, l, blk, col.data(), GemmEpilogue{});
        }
      });
      col2im(col.data(), d.cout, d.oh, d.ow, d.kh, stride, padding,
             out.data() + s * d.cout * plane);
      if (has_bias) {
        for (int64_t c = 0; c < d.cout; ++c) {
          float* p = out.data() + (s * d.cout + c) * plane;
          const float bias = b.value()[c];
          for (int64_t i = 0; i < plane; ++i) p[i] += bias;
        }
      }
    }
  }

  std::vector<Variable> parents = {x, w};
  if (has_bias) parents.push_back(b);
  return Variable::make_node(
      std::move(out), std::move(parents),
      [x, w, b, has_bias, d, stride, padding, ckk, l](const Tensor& g) {
        const bool need_x = x.requires_grad();
        const bool need_w = w.requires_grad();
        // Backward mirrors conv2d forward: the logical column matrix is
        // im2col(gout), supplied implicitly by the conv packers — it is
        // never materialized.
        if (need_x) {
          // gx (Cin x hw) = w (Cin x CoutKK) · im2col(gout_s); tasks are
          // (sample, column block) pairs writing disjoint gx tiles.
          Tensor gx = Tensor::zeros(x.value().shape());
          const PackedA wp(GemmLayout::kNN, w.value().data(), d.cin, ckk);
          const int64_t blocks = gemm_col_blocks(l);
          runtime::parallel_for(d.n * blocks, [&](int64_t t0, int64_t t1) {
            for (int64_t t = t0; t < t1; ++t) {
              const int64_t s = t / blocks;
              const int64_t blk = t % blocks;
              const Im2colPacker bp(g.data() + s * d.cout * d.oh * d.ow, d.oh,
                                    d.ow, d.kh, stride, padding, d.w);
              gemm_col_block(wp, bp, l, blk, gx.data() + s * d.cin * l,
                             GemmEpilogue{});
            }
          });
          x.state()->accumulate(gx);
        }
        if (need_w) {
          // gw (Cin x CoutKK) = sum_s x_s (Cin x hw) · im2col(gout_s)ᵀ;
          // parallel over gw column blocks, samples walked serially.
          Tensor gw = Tensor::zeros(w.value().shape());
          const int64_t blocks = gemm_col_blocks(ckk);
          GemmEpilogue acc;
          acc.accumulate = true;
          runtime::parallel_for(blocks, [&](int64_t b0, int64_t b1) {
            for (int64_t blk = b0; blk < b1; ++blk) {
              for (int64_t s = 0; s < d.n; ++s) {
                const Im2colTPacker bp(g.data() + s * d.cout * d.oh * d.ow,
                                       d.oh, d.ow, d.kh, stride, padding, d.w);
                gemm_col_block(GemmLayout::kNN, x.value().data() + s * d.cin * l,
                               d.cin, l, bp, ckk, blk, gw.data(), acc);
              }
            }
          });
          w.state()->accumulate(gw);
        }
        if (has_bias && b.requires_grad()) {
          Tensor gb = Tensor::zeros({d.cout});
          const int64_t plane = d.oh * d.ow;
          for (int64_t n = 0; n < d.n; ++n) {
            for (int64_t c = 0; c < d.cout; ++c) {
              const float* p = g.data() + (n * d.cout + c) * plane;
              double acc = 0.0;
              for (int64_t i = 0; i < plane; ++i) acc += p[i];
              gb[c] += static_cast<float>(acc);
            }
          }
          b.state()->accumulate(gb);
        }
      });
}

Variable avg_pool2d(const Variable& x, int64_t k) {
  if (x.value().dim() != 4) throw std::invalid_argument("avg_pool2d 4-D only");
  const int64_t n = x.value().size(0), c = x.value().size(1);
  const int64_t h = x.value().size(2), w = x.value().size(3);
  if (h % k != 0 || w % k != 0) {
    throw std::invalid_argument("avg_pool2d requires extents divisible by k");
  }
  const int64_t oh = h / k, ow = w / k;
  Tensor out({n, c, oh, ow});
  const float inv = 1.f / static_cast<float>(k * k);
  avg_pool_core(x.value().data(), out.data(), n * c, h, w, k);
  Variable out_v = Variable::make_node(
      std::move(out), {x}, [x, n, c, h, w, k, oh, ow, inv](const Tensor& g) {
        Tensor gx({n, c, h, w});
        for (int64_t nc = 0; nc < n * c; ++nc) {
          const float* src = g.data() + nc * oh * ow;
          float* dst = gx.data() + nc * h * w;
          for (int64_t oy = 0; oy < oh; ++oy) {
            for (int64_t ox = 0; ox < ow; ++ox) {
              const float v = src[oy * ow + ox] * inv;
              for (int64_t ky = 0; ky < k; ++ky) {
                float* row = dst + (oy * k + ky) * w + ox * k;
                for (int64_t kx = 0; kx < k; ++kx) row[kx] += v;
              }
            }
          }
        }
        x.state()->accumulate(gx);
      });
  if (GraphRecorder* rec = active_recorder()) {
    const int64_t planes = n * c;
    rec->record("avg_pool", {x}, {out_v},
                [planes, h, w, k](const ReplayIO& io) {
                  avg_pool_core(io.in(0), io.out(0), planes, h, w, k);
                });
  }
  return out_v;
}

Variable batch_norm2d(const Variable& x, const Variable& gamma,
                      const Variable& beta, Tensor& running_mean,
                      Tensor& running_var, bool training, float momentum,
                      float eps) {
  if (x.value().dim() != 4) throw std::invalid_argument("batch_norm2d 4-D only");
  const int64_t n = x.value().size(0), c = x.value().size(1);
  const int64_t plane = x.value().size(2) * x.value().size(3);
  const int64_t m = n * plane;  // elements per channel

  if (!training && !GradMode::is_enabled()) {
    // No-grad eval fast path: normalize with frozen running statistics in a
    // single pass — the xhat buffer only the backward needs is never
    // materialized. Statement shapes mirror the general eval path exactly,
    // so both produce identical bits.
    Tensor mu = running_mean.clone();
    Tensor inv_std({c});
    for (int64_t ch = 0; ch < c; ++ch) {
      inv_std[ch] = 1.f / std::sqrt(running_var[ch] + eps);
    }
    Tensor out(x.value().shape());
    bn_eval_core(x.value().data(), out.data(), n, c, plane, mu.data(),
                 inv_std.data(), gamma.value().data(), beta.value().data());
    Variable out_v(std::move(out));
    if (GraphRecorder* rec = active_recorder()) {
      Tensor ga = gamma.value(), be = beta.value();
      CaptureNode& node = rec->record(
          "bn_eval", {x}, {out_v},
          [n, c, plane, mu, inv_std, ga, be](const ReplayIO& io) {
            bn_eval_core(io.in(0), io.out(0), n, c, plane, mu.data(),
                         inv_std.data(), ga.data(), be.data());
          });
      node.ewise.kind = EwiseInfo::Kind::kBnEval;
      node.ewise.mu = mu;
      node.ewise.inv_std = inv_std;
      node.ewise.gamma = ga;
      node.ewise.beta = be;
      node.ewise.channels = c;
    }
    return out_v;
  }

  Tensor mean_t({c}), var_t({c});
  if (training) {
    for (int64_t ch = 0; ch < c; ++ch) {
      double s = 0.0, s2 = 0.0;
      for (int64_t b = 0; b < n; ++b) {
        const float* p = x.value().data() + (b * c + ch) * plane;
        for (int64_t i = 0; i < plane; ++i) {
          s += p[i];
          s2 += static_cast<double>(p[i]) * p[i];
        }
      }
      const double mu = s / m;
      mean_t[ch] = static_cast<float>(mu);
      var_t[ch] = static_cast<float>(s2 / m - mu * mu);
    }
    for (int64_t ch = 0; ch < c; ++ch) {
      running_mean[ch] =
          (1.f - momentum) * running_mean[ch] + momentum * mean_t[ch];
      running_var[ch] =
          (1.f - momentum) * running_var[ch] + momentum * var_t[ch];
    }
  } else {
    mean_t = running_mean.clone();
    var_t = running_var.clone();
  }

  Tensor inv_std({c});
  for (int64_t ch = 0; ch < c; ++ch) {
    inv_std[ch] = 1.f / std::sqrt(var_t[ch] + eps);
  }
  Tensor xhat(x.value().shape());
  Tensor out(x.value().shape());
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* p = x.value().data() + (b * c + ch) * plane;
      float* xh = xhat.data() + (b * c + ch) * plane;
      float* o = out.data() + (b * c + ch) * plane;
      const float mu = mean_t[ch], is = inv_std[ch];
      const float ga = gamma.value()[ch], be = beta.value()[ch];
      for (int64_t i = 0; i < plane; ++i) {
        xh[i] = (p[i] - mu) * is;
        o[i] = ga * xh[i] + be;
      }
    }
  }

  return Variable::make_node(
      std::move(out), {x, gamma, beta},
      [x, gamma, beta, xhat, inv_std, training, n, c, plane,
       m](const Tensor& g) {
        // Per-channel reductions of the cotangent.
        Tensor sum_g({c}), sum_gx({c});
        for (int64_t ch = 0; ch < c; ++ch) {
          double sg = 0.0, sgx = 0.0;
          for (int64_t b = 0; b < n; ++b) {
            const float* gp = g.data() + (b * c + ch) * plane;
            const float* xh = xhat.data() + (b * c + ch) * plane;
            for (int64_t i = 0; i < plane; ++i) {
              sg += gp[i];
              sgx += static_cast<double>(gp[i]) * xh[i];
            }
          }
          sum_g[ch] = static_cast<float>(sg);
          sum_gx[ch] = static_cast<float>(sgx);
        }
        if (gamma.requires_grad()) gamma.state()->accumulate(sum_gx);
        if (beta.requires_grad()) beta.state()->accumulate(sum_g);
        if (x.requires_grad()) {
          Tensor gx(x.value().shape());
          const float inv_m = 1.f / static_cast<float>(m);
          for (int64_t b = 0; b < n; ++b) {
            for (int64_t ch = 0; ch < c; ++ch) {
              const float* gp = g.data() + (b * c + ch) * plane;
              const float* xh = xhat.data() + (b * c + ch) * plane;
              float* gxp = gx.data() + (b * c + ch) * plane;
              const float k = gamma.value()[ch] * inv_std[ch];
              if (training) {
                const float mg = sum_g[ch] * inv_m;
                const float mgx = sum_gx[ch] * inv_m;
                for (int64_t i = 0; i < plane; ++i) {
                  gxp[i] = k * (gp[i] - mg - xh[i] * mgx);
                }
              } else {
                for (int64_t i = 0; i < plane; ++i) gxp[i] = k * gp[i];
              }
            }
          }
          x.state()->accumulate(gx);
        }
      });
}

}  // namespace litho::ag
