#include "autograd/capture.h"

#include <stdexcept>
#include <utility>

namespace litho::ag {

namespace {
thread_local GraphRecorder* tls_recorder = nullptr;
}  // namespace

GraphRecorder::GraphRecorder()
    : graph_(std::make_shared<CapturedGraph>()), prev_(tls_recorder) {
  tls_recorder = this;
}

GraphRecorder::~GraphRecorder() { tls_recorder = prev_; }

GraphRecorder* GraphRecorder::current() { return tls_recorder; }

int GraphRecorder::slot_for_read(const Variable& v) {
  const detail::VarState* key = v.state().get();
  auto it = slot_of_.find(key);
  if (it != slot_of_.end()) return it->second;
  // Not produced by a recorded node and not a registered input: freeze the
  // current value as a constant. The slot shares the tensor's storage (and
  // the keepalive pins the VarState) so the bytes stay valid and the state
  // address can never be recycled onto a different slot.
  const int id = static_cast<int>(graph_->slots.size());
  CaptureSlot slot;
  slot.shape = v.value().shape();
  slot.numel = v.value().numel();
  slot.constant = v.value();
  graph_->slots.push_back(std::move(slot));
  slot_of_.emplace(key, id);
  keepalive_.push_back(v.state());
  return id;
}

int GraphRecorder::slot_for_write(const Variable& v, int node) {
  const detail::VarState* key = v.state().get();
  if (slot_of_.count(key) != 0) {
    throw std::logic_error(
        "GraphRecorder: an op wrote a Variable already mapped to a slot");
  }
  const int id = static_cast<int>(graph_->slots.size());
  CaptureSlot slot;
  slot.shape = v.value().shape();
  slot.numel = v.value().numel();
  slot.producer = node;
  graph_->slots.push_back(std::move(slot));
  slot_of_.emplace(key, id);
  keepalive_.push_back(v.state());
  return id;
}

void GraphRecorder::add_input(const Variable& v) {
  const detail::VarState* key = v.state().get();
  if (slot_of_.count(key) != 0) {
    throw std::logic_error("GraphRecorder: duplicate input registration");
  }
  const int id = static_cast<int>(graph_->slots.size());
  CaptureSlot slot;
  slot.shape = v.value().shape();
  slot.numel = v.value().numel();
  slot.is_input = true;
  graph_->slots.push_back(std::move(slot));
  slot_of_.emplace(key, id);
  keepalive_.push_back(v.state());
  graph_->inputs.push_back(id);
}

void GraphRecorder::mark_output(const Variable& v) {
  graph_->outputs.push_back(slot_for_read(v));
}

CaptureNode& GraphRecorder::record(const char* kind,
                                   const std::vector<Variable>& ins,
                                   const std::vector<Variable>& outs,
                                   ReplayFn fn) {
  const int node_id = static_cast<int>(graph_->nodes.size());
  CaptureNode node;
  node.kind = kind;
  node.ins.reserve(ins.size());
  for (const Variable& v : ins) node.ins.push_back(slot_for_read(v));
  node.outs.reserve(outs.size());
  for (const Variable& v : outs) {
    node.outs.push_back(slot_for_write(v, node_id));
  }
  node.run = std::move(fn);
  graph_->nodes.push_back(std::move(node));
  return graph_->nodes.back();
}

std::shared_ptr<CapturedGraph> GraphRecorder::finish() {
  return std::move(graph_);
}

}  // namespace litho::ag
