#include "autograd/variable.h"

#include <stdexcept>
#include <unordered_set>

#include "autograd/grad_mode.h"

namespace litho::ag {

namespace detail {

void VarState::accumulate(const Tensor& g) {
  if (!requires_grad) return;
  if (!grad_defined) {
    grad = g.clone();
    grad_defined = true;
  } else {
    grad.add_(g);
  }
}

}  // namespace detail

Variable::Variable() : state_(std::make_shared<detail::VarState>()) {}

Variable::Variable(Tensor value, bool requires_grad)
    : state_(std::make_shared<detail::VarState>()) {
  state_->value = std::move(value);
  state_->requires_grad = requires_grad;
}

const Tensor& Variable::grad() const {
  if (!state_->grad_defined) {
    state_->grad = Tensor::zeros(state_->value.shape());
    state_->grad_defined = true;
  }
  return state_->grad;
}

void Variable::zero_grad() {
  state_->grad = Tensor();
  state_->grad_defined = false;
}

void Variable::backward() {
  if (state_->value.numel() != 1) {
    throw std::logic_error(
        "backward() without seed requires a scalar variable; shape is " +
        shape_to_string(state_->value.shape()));
  }
  backward(Tensor::ones(state_->value.shape()));
}

void Variable::backward(const Tensor& seed) {
  if (!seed.same_shape(state_->value)) {
    throw std::invalid_argument("backward seed shape mismatch");
  }
  // Topological order by DFS over parents.
  std::vector<detail::VarState*> order;
  std::unordered_set<detail::VarState*> visited;
  std::vector<std::pair<detail::VarState*, size_t>> stack;
  stack.emplace_back(state_.get(), 0);
  visited.insert(state_.get());
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (next < node->parents.size()) {
      detail::VarState* p = node->parents[next].get();
      ++next;
      if (p->requires_grad && !visited.count(p)) {
        visited.insert(p);
        stack.emplace_back(p, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  state_->accumulate(seed);
  // `order` is post-order (children before parents reversed): iterate from
  // the back (root first).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    detail::VarState* node = *it;
    if (node->backward_fn && node->grad_defined) {
      node->backward_fn(node->grad);
      // Graph-internal gradients are not needed after propagation; free the
      // memory so deep models don't hold every intermediate cotangent.
      if (node->backward_fn) {
        node->grad = Tensor();
        node->grad_defined = false;
      }
    }
  }
}

Variable Variable::make_node(Tensor value, std::vector<Variable> parents,
                             std::function<void(const Tensor&)> backward_fn) {
  Variable v;
  v.state_->value = std::move(value);
  // Under NoGradGuard the node is a plain value: no parents, no closure, so
  // intermediate activations die with their consumers instead of living on
  // the tape until backward().
  if (!GradMode::is_enabled()) return v;
  bool needs = false;
  for (const Variable& p : parents) {
    needs = needs || p.requires_grad();
    v.state_->parents.push_back(p.state());
  }
  v.state_->requires_grad = needs;
  if (needs) {
    v.state_->backward_fn = std::move(backward_fn);
    detail::count_tape_node();
  }
  return v;
}

}  // namespace litho::ag
