#include "autograd/spectral.h"

#include <stdexcept>

#include "autograd/capture.h"
#include "autograd/grad_mode.h"
#include "runtime/thread_pool.h"
#include "tensor/gemm.h"

namespace litho::ag {
namespace {

using litho::fft::CTensor;

/// The recorder to append capture nodes to, or nullptr (see ops.cpp: ops
/// record only in no-grad mode).
GraphRecorder* spectral_recorder() {
  GraphRecorder* rec = GraphRecorder::current();
  return (rec != nullptr && !GradMode::is_enabled()) ? rec : nullptr;
}

struct Dims2 {
  int64_t batch, h, w;
};

Dims2 last_two(const Shape& s) {
  if (s.size() < 2) throw std::invalid_argument("spectral op needs rank >= 2");
  Dims2 d{1, s[s.size() - 2], s[s.size() - 1]};
  for (size_t i = 0; i + 2 < s.size(); ++i) d.batch *= s[i];
  return d;
}

// Copies the (kh x kw) top-left window of each trailing 2-D slice.
void narrow2d_into(const float* x, float* dst0, int64_t batch, int64_t h,
                   int64_t w, int64_t kh, int64_t kw) {
  runtime::parallel_for(batch, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      const float* src = x + b * h * w;
      float* dst = dst0 + b * kh * kw;
      for (int64_t r = 0; r < kh; ++r) {
        for (int64_t c = 0; c < kw; ++c) dst[r * kw + c] = src[r * w + c];
      }
    }
  });
}

Tensor narrow2d(const Tensor& x, int64_t kh, int64_t kw) {
  const Dims2 d = last_two(x.shape());
  if (kh > d.h || kw > d.w) throw std::invalid_argument("narrow2d window");
  Shape out_shape = x.shape();
  out_shape[out_shape.size() - 2] = kh;
  out_shape[out_shape.size() - 1] = kw;
  Tensor out(out_shape);
  narrow2d_into(x.data(), out.data(), d.batch, d.h, d.w, kh, kw);
  return out;
}

// Zero-fills each trailing (h x w) output slice, then copies the (sh x sw)
// input slice into its top-left corner. The explicit fill (rather than
// relying on Tensor zero-initialization) keeps the core correct over reused
// arena buffers.
void pad2d_into(const float* x, float* dst0, int64_t batch, int64_t sh,
                int64_t sw, int64_t h, int64_t w) {
  runtime::parallel_for(batch, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      const float* src = x + b * sh * sw;
      float* dst = dst0 + b * h * w;
      for (int64_t i = 0; i < h * w; ++i) dst[i] = 0.f;
      for (int64_t r = 0; r < sh; ++r) {
        for (int64_t c = 0; c < sw; ++c) dst[r * w + c] = src[r * sw + c];
      }
    }
  });
}

// Zero-pads each trailing 2-D slice to (h x w), input at top-left.
Tensor pad2d(const Tensor& x, int64_t h, int64_t w) {
  const Dims2 d = last_two(x.shape());
  if (h < d.h || w < d.w) throw std::invalid_argument("pad2d target");
  Shape out_shape = x.shape();
  out_shape[out_shape.size() - 2] = h;
  out_shape[out_shape.size() - 1] = w;
  Tensor out(out_shape);
  pad2d_into(x.data(), out.data(), d.batch, d.h, d.w, h, w);
  return out;
}

Variable narrow2d_var(const Variable& x, int64_t kh, int64_t kw) {
  const Dims2 d = last_two(x.shape());
  Tensor out = narrow2d(x.value(), kh, kw);
  const int64_t h = d.h, w = d.w;
  Variable out_v = Variable::make_node(std::move(out), {x},
                                       [x, h, w](const Tensor& g) {
                                         x.state()->accumulate(pad2d(g, h, w));
                                       });
  if (GraphRecorder* rec = spectral_recorder()) {
    const int64_t batch = d.batch;
    rec->record("narrow2d", {x}, {out_v},
                [batch, h, w, kh, kw](const ReplayIO& io) {
                  narrow2d_into(io.in(0), io.out(0), batch, h, w, kh, kw);
                });
  }
  return out_v;
}

Variable pad2d_var(const Variable& x, int64_t h, int64_t w) {
  const Dims2 d = last_two(x.shape());
  Tensor out = pad2d(x.value(), h, w);
  const int64_t kh = d.h, kw = d.w;
  Variable out_v =
      Variable::make_node(std::move(out), {x}, [x, kh, kw](const Tensor& g) {
        x.state()->accumulate(narrow2d(g, kh, kw));
      });
  if (GraphRecorder* rec = spectral_recorder()) {
    const int64_t batch = d.batch;
    rec->record("pad2d", {x}, {out_v},
                [batch, kh, kw, h, w](const ReplayIO& io) {
                  pad2d_into(io.in(0), io.out(0), batch, kh, kw, h, w);
                });
  }
  return out_v;
}

}  // namespace

CVariable rfft2v(const Variable& x) {
  // Forward rides the two-for-one real fast path. Each backward half embeds
  // its cotangent into the complex half-spectrum domain and pulls it back
  // through rfft2_adjoint, which itself runs on the packed inverse kernel
  // (Hermitian-projection half grid + irfft2) instead of a full fft2.
  const Dims2 d = last_two(x.shape());
  const int64_t w = d.w;
  CTensor spec = litho::fft::rfft2(x.value());
  Variable re = Variable::make_node(
      spec.re, {x}, [x, w](const Tensor& g) {
        CTensor cot(g.clone(), Tensor(g.shape()));
        x.state()->accumulate(litho::fft::rfft2_adjoint(cot, w));
      });
  Variable im = Variable::make_node(
      spec.im, {x}, [x, w](const Tensor& g) {
        CTensor cot(Tensor(g.shape()), g.clone());
        x.state()->accumulate(litho::fft::rfft2_adjoint(cot, w));
      });
  if (GraphRecorder* rec = spectral_recorder()) {
    const int64_t batch = d.batch, h = d.h;
    rec->record("rfft2", {x}, {re, im},
                [batch, h, w](const ReplayIO& io) {
                  litho::fft::rfft2_into(io.in(0), io.out(0), io.out(1),
                                         batch, h, w);
                });
  }
  return {re, im};
}

Variable irfft2v(const CVariable& x, int64_t w) {
  // Backward: the cotangent is real, so irfft2_adjoint is a single rfft2
  // (fast path) with interior columns doubled — both components come out of
  // the one transform.
  CTensor spec(x.re.value(), x.im.value());
  const Dims2 d = last_two(spec.shape());
  Tensor out = litho::fft::irfft2(spec, w);
  Variable vre = x.re, vim = x.im;
  Variable out_v = Variable::make_node(
      std::move(out), {vre, vim}, [vre, vim](const Tensor& g) {
        CTensor cot = litho::fft::irfft2_adjoint(g);
        if (vre.requires_grad()) vre.state()->accumulate(cot.re);
        if (vim.requires_grad()) vim.state()->accumulate(cot.im);
      });
  if (GraphRecorder* rec = spectral_recorder()) {
    const int64_t batch = d.batch, h = d.h;
    rec->record("irfft2", {vre, vim}, {out_v},
                [batch, h, w](const ReplayIO& io) {
                  litho::fft::irfft2_into(io.in(0), io.in(1), io.out(0),
                                          batch, h, w);
                });
  }
  return out_v;
}

CVariable ctruncate(const CVariable& x, int64_t kh, int64_t kw) {
  return {narrow2d_var(x.re, kh, kw), narrow2d_var(x.im, kh, kw)};
}

CVariable cpad(const CVariable& x, int64_t h, int64_t wh) {
  return {pad2d_var(x.re, h, wh), pad2d_var(x.im, h, wh)};
}

namespace {

struct LiftDims {
  int64_t b, i, o, xy;
};

// Shared backward math for clift (per-mode == false) and cmode_matmul
// (per-mode == true). Complex product z = w * v gives, with cotangent g:
//   grad_v = g * conj(w),  grad_w = g * conj(v)   (summed over o / b resp.)
void complex_contract_backward(const Tensor& g_re, const Tensor& g_im,
                               const Variable& vre, const Variable& vim,
                               const Variable& wre, const Variable& wim,
                               const LiftDims& d, bool per_mode) {
  const bool need_v = vre.requires_grad() || vim.requires_grad();
  const bool need_w = wre.requires_grad() || wim.requires_grad();
  Tensor gvre, gvim, gwre, gwim;
  if (need_v) {
    gvre = Tensor::zeros(vre.value().shape());
    gvim = Tensor::zeros(vim.value().shape());
  }
  if (need_w) {
    gwre = Tensor::zeros(wre.value().shape());
    gwim = Tensor::zeros(wim.value().shape());
  }
  for (int64_t b = 0; b < d.b; ++b) {
    for (int64_t o = 0; o < d.o; ++o) {
      const float* gr = g_re.data() + (b * d.o + o) * d.xy;
      const float* gi = g_im.data() + (b * d.o + o) * d.xy;
      for (int64_t i = 0; i < d.i; ++i) {
        const float* vr = vre.value().data() + (b * d.i + i) * d.xy;
        const float* vi = vim.value().data() + (b * d.i + i) * d.xy;
        if (per_mode) {
          const float* wr = wre.value().data() + (i * d.o + o) * d.xy;
          const float* wi = wim.value().data() + (i * d.o + o) * d.xy;
          if (need_v) {
            float* dvr = gvre.data() + (b * d.i + i) * d.xy;
            float* dvi = gvim.data() + (b * d.i + i) * d.xy;
            for (int64_t p = 0; p < d.xy; ++p) {
              dvr[p] += gr[p] * wr[p] + gi[p] * wi[p];
              dvi[p] += gi[p] * wr[p] - gr[p] * wi[p];
            }
          }
          if (need_w) {
            float* dwr = gwre.data() + (i * d.o + o) * d.xy;
            float* dwi = gwim.data() + (i * d.o + o) * d.xy;
            for (int64_t p = 0; p < d.xy; ++p) {
              dwr[p] += gr[p] * vr[p] + gi[p] * vi[p];
              dwi[p] += gi[p] * vr[p] - gr[p] * vi[p];
            }
          }
        } else {
          const float wr = wre.value()[i * d.o + o];
          const float wi = wim.value()[i * d.o + o];
          if (need_v) {
            float* dvr = gvre.data() + (b * d.i + i) * d.xy;
            float* dvi = gvim.data() + (b * d.i + i) * d.xy;
            for (int64_t p = 0; p < d.xy; ++p) {
              dvr[p] += gr[p] * wr + gi[p] * wi;
              dvi[p] += gi[p] * wr - gr[p] * wi;
            }
          }
          if (need_w) {
            double awr = 0.0, awi = 0.0;
            for (int64_t p = 0; p < d.xy; ++p) {
              awr += static_cast<double>(gr[p]) * vr[p] +
                     static_cast<double>(gi[p]) * vi[p];
              awi += static_cast<double>(gi[p]) * vr[p] -
                     static_cast<double>(gr[p]) * vi[p];
            }
            gwre[i * d.o + o] += static_cast<float>(awr);
            gwim[i * d.o + o] += static_cast<float>(awi);
          }
        }
      }
    }
  }
  if (need_v) {
    vre.state()->accumulate(gvre);
    vim.state()->accumulate(gvim);
  }
  if (need_w) {
    wre.state()->accumulate(gwre);
    wim.state()->accumulate(gwim);
  }
}

/// Forward compute of clift / cmode_matmul over raw buffers. Both kernels
/// overwrite their outputs (no zero-init dependence), so the core replays
/// safely over arena buffers.
void complex_contract_run(const LiftDims& d, bool per_mode, const float* vr0,
                          const float* vi0, const float* wr, const float* wi,
                          float* zr0, float* zi0) {
  if (per_mode) {
    cmode_mix(d.b, d.i, d.o, d.xy, vr0, vi0, wr, wi, zr0, zi0);
    return;
  }
  GemmEpilogue addto;
  addto.accumulate = true;
  GemmEpilogue subfrom;
  subfrom.accumulate = true;
  subfrom.subtract = true;
  for (int64_t b = 0; b < d.b; ++b) {
    const float* vr = vr0 + b * d.i * d.xy;
    const float* vi = vi0 + b * d.i * d.xy;
    float* zr = zr0 + b * d.o * d.xy;
    float* zi = zi0 + b * d.o * d.xy;
    // zr = wrᵀ·vr - wiᵀ·vi ; zi = wiᵀ·vr + wrᵀ·vi (A stored I x O).
    packed_gemm(GemmLayout::kTN, wr, vr, zr, d.o, d.i, d.xy);
    packed_gemm(GemmLayout::kTN, wi, vi, zr, d.o, d.i, d.xy, subfrom);
    packed_gemm(GemmLayout::kTN, wi, vr, zi, d.o, d.i, d.xy);
    packed_gemm(GemmLayout::kTN, wr, vi, zi, d.o, d.i, d.xy, addto);
  }
}

CVariable complex_contract(const CVariable& v, const CVariable& w,
                           bool per_mode) {
  const Shape& vs = v.re.shape();
  const Shape& ws = w.re.shape();
  if (vs.size() != 4) throw std::invalid_argument("complex contract: v rank");
  LiftDims d{};
  d.b = vs[0];
  d.i = vs[1];
  d.xy = vs[2] * vs[3];
  if (per_mode) {
    if (ws.size() != 4 || ws[0] != d.i || ws[2] != vs[2] || ws[3] != vs[3]) {
      throw std::invalid_argument("cmode_matmul weight shape mismatch");
    }
    d.o = ws[1];
  } else {
    if (ws.size() != 2 || ws[0] != d.i) {
      throw std::invalid_argument("clift weight shape mismatch");
    }
    d.o = ws[1];
  }

  // Forward runs on the packed GEMM engine (src/tensor/gemm.h): the per-mode matmul
  // through the mode-blocked cmode_mix kernel (which preserves the naive
  // loop's per-element accumulation order exactly), the channel lift as
  // four real GEMMs (z = Wᵀv split into re/im parts). The clift split
  // reorders the fp32 sum relative to the seed's interleaved
  // (vr*wr - vi*wi) loop when I > 1 — DOINN's lift has I == 1, where the
  // two are bitwise equal. Both kernels are deterministic for any thread
  // count; backward (below) is unchanged.
  Shape out_shape = {d.b, d.o, vs[2], vs[3]};
  Tensor out_re(out_shape), out_im(out_shape);
  complex_contract_run(d, per_mode, v.re.value().data(), v.im.value().data(),
                       w.re.value().data(), w.im.value().data(),
                       out_re.data(), out_im.data());

  const Variable vre = v.re, vim = v.im, wre = w.re, wim = w.im;
  // Both output components share the four parents; each backward call
  // contributes its half of the cotangent (g_re from the re node, g_im from
  // the im node) by zeroing the other component.
  Variable re = Variable::make_node(
      std::move(out_re), {vre, vim, wre, wim},
      [vre, vim, wre, wim, d, per_mode](const Tensor& g) {
        complex_contract_backward(g, Tensor::zeros(g.shape()), vre, vim, wre,
                                  wim, d, per_mode);
      });
  Variable im = Variable::make_node(
      std::move(out_im), {vre, vim, wre, wim},
      [vre, vim, wre, wim, d, per_mode](const Tensor& g) {
        complex_contract_backward(Tensor::zeros(g.shape()), g, vre, vim, wre,
                                  wim, d, per_mode);
      });
  if (GraphRecorder* rec = spectral_recorder()) {
    // The weight Variables freeze as constant slots (eval parameters).
    rec->record(per_mode ? "cmode_matmul" : "clift", {vre, vim, wre, wim},
                {re, im}, [d, per_mode](const ReplayIO& io) {
                  complex_contract_run(d, per_mode, io.in(0), io.in(1),
                                       io.in(2), io.in(3), io.out(0),
                                       io.out(1));
                });
  }
  return {re, im};
}

}  // namespace

CVariable clift(const CVariable& v, const CVariable& w) {
  return complex_contract(v, w, /*per_mode=*/false);
}

CVariable cmode_matmul(const CVariable& v, const CVariable& w) {
  return complex_contract(v, w, /*per_mode=*/true);
}

}  // namespace litho::ag
