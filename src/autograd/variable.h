// Reverse-mode automatic differentiation.
//
// A Variable wraps a Tensor value plus (lazily allocated) gradient storage
// and the backward closure that propagates a cotangent to its parents. The
// graph is a DAG of shared_ptr-linked nodes; Variable::backward() runs a
// topological sweep. This is a deliberately small tape — just enough for the
// DOINN / UNet / DAMO training graphs — with every op's gradient verified by
// numeric gradcheck in tests/test_autograd.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace litho::ag {

class Variable;

namespace detail {

struct VarState {
  Tensor value;
  Tensor grad;              // valid iff grad_defined
  bool grad_defined = false;
  bool requires_grad = false;
  std::vector<std::shared_ptr<VarState>> parents;
  /// Propagates this node's accumulated gradient into parents' grads.
  std::function<void(const Tensor& grad_out)> backward_fn;

  /// grad += g, allocating on first use.
  void accumulate(const Tensor& g);
};

}  // namespace detail

/// Node in the autograd graph; cheap to copy (shared state).
class Variable {
 public:
  /// Empty variable (no value). Valid only as a placeholder.
  Variable();

  /// Leaf variable holding @p value.
  explicit Variable(Tensor value, bool requires_grad = false);

  const Tensor& value() const { return state_->value; }
  Tensor& mutable_value() { return state_->value; }
  const Shape& shape() const { return state_->value.shape(); }

  bool requires_grad() const { return state_->requires_grad; }
  bool defined() const { return state_ != nullptr && state_->value.numel() > 0; }

  /// Gradient tensor; zeros of value-shape if backward has not reached this
  /// node (or zero_grad was called).
  const Tensor& grad() const;
  /// Clears accumulated gradient (leaf use; graph nodes are transient).
  void zero_grad();

  /// Runs backward from this (scalar) variable with seed gradient 1.
  void backward();
  /// Runs backward with an explicit seed cotangent of value-shape.
  void backward(const Tensor& seed);

  /// Internal: constructs a non-leaf node. Exposed for op implementations.
  static Variable make_node(Tensor value, std::vector<Variable> parents,
                            std::function<void(const Tensor&)> backward_fn);

  /// Internal: shared state access for op implementations.
  const std::shared_ptr<detail::VarState>& state() const { return state_; }

 private:
  std::shared_ptr<detail::VarState> state_;
};

/// Pair of Variables viewed as the real / imaginary parts of a complex
/// tensor; the Fourier Unit ops operate on these.
struct CVariable {
  Variable re;
  Variable im;
};

}  // namespace litho::ag
