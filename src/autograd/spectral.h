// Differentiable spectral operations for the optimized Fourier Unit
// (paper eq. (11)) and the baseline FNO Fourier layer (eq. (10)).
//
// Complex activations and weights are (re, im) Variable pairs (CVariable);
// gradients flow through real components, with FFT adjoints provided by
// litho::fft and verified against the adjoint identity in tests.
#pragma once

#include "autograd/variable.h"
#include "fft/fft.h"

namespace litho::ag {

/// Real 2-D FFT over the last two dims: [..., H, W] -> complex
/// [..., H, W/2+1] (torch.fft.rfft2, norm="backward").
CVariable rfft2v(const Variable& x);

/// Inverse of rfft2v; @p w is the real output width.
Variable irfft2v(const CVariable& x, int64_t w);

/// Keeps the kh x kw lowest-frequency corner of the half spectrum
/// (rows [0,kh), cols [0,kw)) — the paper's "first 50x50 coefficients".
CVariable ctruncate(const CVariable& x, int64_t kh, int64_t kw);

/// Zero-pads the last two dims back to (h, wh) with the input at the
/// top-left corner; inverse of ctruncate.
CVariable cpad(const CVariable& x, int64_t h, int64_t wh);

/// Complex channel lift (the paper's LiftChannel): v [B,I,X,Y] complex,
/// w [I,O] complex, out[b,o,x,y] = sum_i w[i,o] * v[b,i,x,y].
CVariable clift(const CVariable& v, const CVariable& w);

/// Complex per-mode matmul (the paper's MatMul,
/// torch.einsum("bixy,ioxy->boxy")): v [B,I,X,Y], w [I,O,X,Y] complex.
CVariable cmode_matmul(const CVariable& v, const CVariable& w);

}  // namespace litho::ag
