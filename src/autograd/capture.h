// Static-graph capture of the no-grad inference op walk.
//
// The graph executor (runtime/graph_exec.h) replays the DOINN forward as a
// flat list of kernel closures over arena-planned buffers. This header is
// the recording half: while a GraphRecorder is installed on the current
// thread, every instrumented inference op — after computing its result
// normally — appends a CaptureNode holding (a) the slots it read and wrote
// and (b) a replay closure that re-runs the *same* compute core against
// resolved buffer pointers. Op walk and replay share one arithmetic
// implementation per op, so replay output is bitwise identical to the op
// walk by construction (the executor still validates this per plan and
// falls back when an uninstrumented op sneaks into a forward).
//
// Slot semantics: a slot is one dense float buffer. Variables produced by
// recorded nodes (or registered via add_input) map to planned slots; any
// other Variable an op consumes is frozen as a constant slot that keeps the
// underlying tensor storage alive — weights, biases and eval-mode BN
// statistics land here, which is correct because the engine captures only
// eval-mode forwards whose parameters are immutable for the plan lifetime.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "autograd/variable.h"
#include "tensor/gemm.h"
#include "tensor/prepack.h"

namespace litho::ag {

/// Resolved buffer pointers for one node at replay time. The arrays are
/// owned by the executor context and ordered exactly as the Variables were
/// passed to GraphRecorder::record.
struct ReplayIO {
  const float* const* ins = nullptr;
  float* const* outs = nullptr;
  const float* in(int i) const { return ins[i]; }
  float* out(int i) const { return outs[i]; }
};

using ReplayFn = std::function<void(const ReplayIO&)>;

/// Shape-specialized im2col row decode, precomputed once at capture time:
/// logical B row kk of the implicit im2col matrix reads input plane
/// `plane`, displaced by (dy, dx) from the output pixel. Replay packers use
/// the table instead of re-deriving channel/ki/kj per panel; the gathered
/// values are identical, so replays stay bitwise equal to the op walk.
struct Im2colStep {
  int64_t plane;  // channel * h * w
  int32_t dy;     // ki - padding
  int32_t dx;     // kj - padding
};

/// Mutable per-node knobs the planner and autotuner write after capture and
/// the replay closure reads on every run: the fused epilogue chain plus the
/// GEMM tuning choices. Conv closures hold this by shared_ptr so rewrites
/// reach them without rebuilding the closure.
struct NodeTuning {
  std::vector<EpiloguePostStage> post;  // fused elementwise epilogue
  std::vector<Tensor> keepalive;        // buffers the stages point into
  std::vector<Im2colStep> im2col;       // per-row gather table (may be empty)
  int64_t nc = 0;                       // column-block width (0 = default)
  BFeed bfeed = BFeed::kAuto;           // B-feed strategy
};

/// Metadata of a fusable elementwise node (candidate epilogue stage).
struct EwiseInfo {
  enum class Kind : int8_t { kNone, kLeaky, kTanh, kBnEval };
  Kind kind = Kind::kNone;
  float slope = 0.f;  // kLeaky
  // kBnEval per-channel arrays, frozen at capture time (eval statistics).
  Tensor mu, inv_std, gamma, beta;
  int64_t channels = 0;
};

/// Metadata of a GEMM-backed conv node, for the fusion pass (which may only
/// append stages to non-transposed convs — transposed convs GEMM into
/// column space before the col2im scatter) and the per-shape autotuner.
struct ConvInfo {
  bool valid = false;
  bool transposed = false;
  bool pointwise = false;  // 1x1 stride-1: B is strided-viewable
  int64_t m = 0, k = 0, l = 0, batch = 0;
  Precision prec = Precision::kFp32;
};

struct CaptureNode {
  const char* kind = "";  // string literal, for traces and debugging
  std::vector<int> ins, outs;
  ReplayFn run;
  std::shared_ptr<NodeTuning> tuning;  // conv nodes only
  ConvInfo conv;
  EwiseInfo ewise;
  bool dead = false;  // set by the fusion pass when folded into a producer
};

struct CaptureSlot {
  Shape shape;
  int64_t numel = 0;
  int producer = -1;  // producing node index; -1 for inputs and constants
  bool is_input = false;
  Tensor constant;  // numel() > 0 => frozen constant backing buffer
};

/// The recorded forward: nodes in execution order over a slot table.
struct CapturedGraph {
  std::vector<CaptureNode> nodes;
  std::vector<CaptureSlot> slots;
  std::vector<int> inputs;   // slot ids, in add_input order
  std::vector<int> outputs;  // slot ids, in mark_output order
};

/// Thread-local graph recorder. Construct to start recording on this
/// thread, call finish() to detach the graph; the destructor uninstalls.
/// Recorders hold a shared_ptr to every VarState they key slots by, so
/// freed-and-reused state addresses can never alias two distinct slots.
class GraphRecorder {
 public:
  GraphRecorder();
  ~GraphRecorder();
  GraphRecorder(const GraphRecorder&) = delete;
  GraphRecorder& operator=(const GraphRecorder&) = delete;

  /// Recorder installed on this thread, or nullptr (the common case: one
  /// relaxed thread-local read on every instrumented op).
  static GraphRecorder* current();

  /// Registers @p v as the next graph input slot.
  void add_input(const Variable& v);

  /// Marks @p v (input, constant, or a recorded node's output) as the next
  /// graph output slot.
  void mark_output(const Variable& v);

  /// Appends a node for an op that read @p ins and wrote @p outs. Returns
  /// the node so callers can attach ConvInfo / EwiseInfo / NodeTuning.
  CaptureNode& record(const char* kind, const std::vector<Variable>& ins,
                      const std::vector<Variable>& outs, ReplayFn fn);

  /// Detaches and returns the recorded graph; the recorder becomes inert.
  std::shared_ptr<CapturedGraph> finish();

 private:
  int slot_for_read(const Variable& v);
  int slot_for_write(const Variable& v, int node);

  std::shared_ptr<CapturedGraph> graph_;
  std::unordered_map<const detail::VarState*, int> slot_of_;
  std::vector<std::shared_ptr<detail::VarState>> keepalive_;
  GraphRecorder* prev_ = nullptr;
};

}  // namespace litho::ag
