// Thread-local gradient mode, mirroring PyTorch's torch/csrc/autograd
// grad_mode: when disabled, Variable::make_node produces plain value nodes
// with no parents and no backward closure, so inference builds no tape and
// intermediate activations are freed as soon as their consumers finish.
//
// The flag is thread-local; runtime::ThreadPool::parallel_for propagates the
// submitting thread's mode into its workers so a NoGradGuard held around a
// parallel region applies to every chunk.
#pragma once

#include <cstdint>

namespace litho::ag {

struct GradMode {
  /// Whether ops record the autograd tape on this thread (default true).
  static bool is_enabled();
  static void set_enabled(bool enabled);
};

/// RAII guard disabling gradient recording on the current thread for its
/// lifetime (torch::NoGradGuard). Nests: the previous mode is restored.
class NoGradGuard {
 public:
  NoGradGuard() : prev_(GradMode::is_enabled()) { GradMode::set_enabled(false); }
  ~NoGradGuard() { GradMode::set_enabled(prev_); }
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

namespace detail {

/// Number of tape nodes (nodes with a recorded backward closure) created
/// process-wide since start. Tests assert this stays flat across a no-grad
/// forward pass.
int64_t tape_nodes_created();

/// Internal: bumps the tape-node counter (called by Variable::make_node).
void count_tape_node();

}  // namespace detail

}  // namespace litho::ag
