// Differentiable operations on Variables.
//
// Layout conventions follow PyTorch:
//   activations            [N, C, H, W]
//   conv weight            [Cout, Cin, kh, kw]
//   conv-transpose weight  [Cin, Cout, kh, kw]
//   batchnorm params       [C]
//
// Every op returns a fresh Variable whose backward closure accumulates into
// its parents. Gradients of each op are covered by numeric gradcheck tests.
#pragma once

#include <memory>

#include "autograd/variable.h"

namespace litho {
class PackedWeight;
}

namespace litho::ag {

// -- Elementwise / structural -------------------------------------------------

Variable add(const Variable& a, const Variable& b);
Variable sub(const Variable& a, const Variable& b);
Variable mul(const Variable& a, const Variable& b);
Variable scale(const Variable& a, float s);

Variable relu(const Variable& x);
Variable leaky_relu(const Variable& x, float negative_slope);
Variable tanh(const Variable& x);
Variable sigmoid(const Variable& x);

/// Concatenates along the channel dimension (dim 1 of NCHW).
Variable concat_channels(const std::vector<Variable>& parts);

/// Copy of channels [start, start+len) (dim 1 of NCHW).
Variable narrow_channels(const Variable& x, int64_t start, int64_t len);

/// Sum of all elements as a scalar (shape [1]) variable.
Variable sum(const Variable& x);

/// Mean of all elements as a scalar variable.
Variable mean(const Variable& x);

// -- Losses -------------------------------------------------------------------

/// Mean squared error between prediction and (constant) target.
Variable mse_loss(const Variable& pred, const Tensor& target);

// -- Convolutional ops ---------------------------------------------------------

/// 2-D convolution; x [N,Cin,H,W], w [Cout,Cin,kh,kw], optional bias [Cout].
/// Pass an undefined (default-constructed, numel()==0) Variable to skip bias.
Variable conv2d(const Variable& x, const Variable& w, const Variable& b,
                int64_t stride, int64_t padding);

/// 2-D transposed convolution; x [N,Cin,h,w], w [Cin,Cout,kh,kw].
/// Output spatial extent: (h-1)*stride - 2*padding + kh.
Variable conv_transpose2d(const Variable& x, const Variable& w,
                          const Variable& b, int64_t stride, int64_t padding);

// -- Prepacked inference-only convolutions -------------------------------------
// Forward-only variants over weights packed once at model-load time
// (tensor/prepack.h). They build no autograd graph and return leaf
// Variables — callers gate on !GradMode::is_enabled(). @p w is the module's
// weight Variable, used for shape validation only; @p wp supplies the
// panels (held by shared_ptr so graph-capture closures can pin the pack
// across engine re-prepacks). The fp32 mode consumes the same panel bytes
// the per-call path packs, so its outputs are bitwise identical to conv2d /
// conv_transpose2d.

Variable conv2d_prepacked(const Variable& x, const Variable& w,
                          const std::shared_ptr<const litho::PackedWeight>& wp,
                          const Variable& b, int64_t stride, int64_t padding);

Variable conv_transpose2d_prepacked(
    const Variable& x, const Variable& w,
    const std::shared_ptr<const litho::PackedWeight>& wp, const Variable& b,
    int64_t stride, int64_t padding);

/// Average pooling with square kernel k and stride k (paper GP pool /8).
Variable avg_pool2d(const Variable& x, int64_t k);

/// Batch normalization over (N, H, W) per channel.
/// In training mode batch statistics are used and @p running_mean /
/// @p running_var (plain tensors owned by the module) are updated with
/// @p momentum. In eval mode running statistics are used.
Variable batch_norm2d(const Variable& x, const Variable& gamma,
                      const Variable& beta, Tensor& running_mean,
                      Tensor& running_var, bool training, float momentum,
                      float eps);

// -- im2col helpers ------------------------------------------------------------
// The conv ops no longer materialize columns (the GEMM engine gathers them
// implicitly through BPanelPacker); im2col stays as the reference
// formulation paired with col2im, which the backward passes still use to
// scatter input gradients.

/// Unfolds one sample plane [C,H,W] into columns [C*k*k, L] with the given
/// stride/padding; L = out_h*out_w.
void im2col(const float* x, int64_t c, int64_t h, int64_t w, int64_t k,
            int64_t stride, int64_t padding, float* col);

/// Adjoint of im2col: scatters columns back into (accumulates onto) x.
/// Parallel over (disjoint) channels, bitwise deterministic.
void col2im(const float* col, int64_t c, int64_t h, int64_t w, int64_t k,
            int64_t stride, int64_t padding, float* x);

/// Output spatial extent of a convolution along one axis.
int64_t conv_out_size(int64_t in, int64_t k, int64_t stride, int64_t padding);

}  // namespace litho::ag
