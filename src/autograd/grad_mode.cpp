#include "autograd/grad_mode.h"

#include <atomic>

namespace litho::ag {

namespace {

thread_local bool grad_mode_enabled = true;

std::atomic<int64_t> tape_node_counter{0};

}  // namespace

bool GradMode::is_enabled() { return grad_mode_enabled; }

void GradMode::set_enabled(bool enabled) { grad_mode_enabled = enabled; }

namespace detail {

int64_t tape_nodes_created() {
  return tape_node_counter.load(std::memory_order_relaxed);
}

void count_tape_node() {
  tape_node_counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace litho::ag
