#include "opc/mrc.h"

#include <stdexcept>

namespace litho::opc {
namespace {

/// Scans one line (stride-accessed) for short runs.
void scan_line(const Tensor& mask, int64_t line, int64_t n, int64_t stride,
               int64_t base, bool horizontal, double pixel_nm,
               const MrcRules& rules, std::vector<MrcViolation>& out) {
  int64_t run_start = 0;
  bool run_value = mask[base] >= 0.5f;
  for (int64_t i = 1; i <= n; ++i) {
    const bool v = i < n ? mask[base + i * stride] >= 0.5f : !run_value;
    if (v == run_value) continue;
    const int64_t len = i - run_start;
    const double extent = static_cast<double>(len) * pixel_nm;
    const bool touches_border = run_start == 0 || i == n;
    if (run_value && extent < rules.min_feature_nm) {
      out.push_back({MrcViolation::Kind::kFeature, horizontal, line, run_start,
                     extent});
    } else if (!run_value && extent < rules.min_gap_nm && !touches_border) {
      out.push_back(
          {MrcViolation::Kind::kGap, horizontal, line, run_start, extent});
    }
    run_start = i;
    run_value = v;
  }
}

}  // namespace

std::vector<MrcViolation> check_mask_rules(const Tensor& mask,
                                           double pixel_nm,
                                           const MrcRules& rules) {
  if (mask.dim() != 2) throw std::invalid_argument("MRC: 2-D mask expected");
  const int64_t h = mask.size(0), w = mask.size(1);
  std::vector<MrcViolation> out;
  for (int64_t r = 0; r < h; ++r) {
    scan_line(mask, r, w, 1, r * w, /*horizontal=*/true, pixel_nm, rules, out);
  }
  for (int64_t c = 0; c < w; ++c) {
    scan_line(mask, c, h, w, c, /*horizontal=*/false, pixel_nm, rules, out);
  }
  return out;
}

}  // namespace litho::opc
