#include "opc/opc.h"

#include <algorithm>
#include <cmath>

namespace litho::opc {
namespace {

using layout::Clip;
using layout::Rect;

/// Bilinear sample of a 2-D tensor at pixel coordinates (clamped).
float sample_bilinear(const Tensor& img, double row, double col) {
  const int64_t h = img.size(0), w = img.size(1);
  row = std::clamp(row, 0.0, static_cast<double>(h - 1));
  col = std::clamp(col, 0.0, static_cast<double>(w - 1));
  const int64_t r0 = static_cast<int64_t>(row);
  const int64_t c0 = static_cast<int64_t>(col);
  const int64_t r1 = std::min(r0 + 1, h - 1);
  const int64_t c1 = std::min(c0 + 1, w - 1);
  const double fr = row - static_cast<double>(r0);
  const double fc = col - static_cast<double>(c0);
  const double v =
      (1 - fr) * ((1 - fc) * img[r0 * w + c0] + fc * img[r0 * w + c1]) +
      fr * ((1 - fc) * img[r1 * w + c0] + fc * img[r1 * w + c1]);
  return static_cast<float>(v);
}

/// Adds signed rectangular coverage [x0,x1)x[y0,y1) nm onto the grid.
void add_coverage(Tensor& grid, double x0, double y0, double x1, double y1,
                  double pixel_nm, float sign) {
  if (x1 <= x0 || y1 <= y0) return;
  const int64_t n = grid.size(0);
  const double inv_area = 1.0 / (pixel_nm * pixel_nm);
  const int64_t c0 = std::max<int64_t>(0, static_cast<int64_t>(std::floor(x0 / pixel_nm)));
  const int64_t c1 = std::min<int64_t>(n - 1, static_cast<int64_t>(std::ceil(x1 / pixel_nm)) - 1);
  const int64_t r0 = std::max<int64_t>(0, static_cast<int64_t>(std::floor(y0 / pixel_nm)));
  const int64_t r1 = std::min<int64_t>(n - 1, static_cast<int64_t>(std::ceil(y1 / pixel_nm)) - 1);
  for (int64_t row = r0; row <= r1; ++row) {
    const double oy = std::min(y1, (row + 1) * pixel_nm) - std::max(y0, row * pixel_nm);
    if (oy <= 0) continue;
    for (int64_t col = c0; col <= c1; ++col) {
      const double ox = std::min(x1, (col + 1) * pixel_nm) - std::max(x0, col * pixel_nm);
      if (ox <= 0) continue;
      grid[row * grid.size(1) + col] += sign * static_cast<float>(ox * oy * inv_area);
    }
  }
}

/// Outward unit normal of a fragment edge as (dx, dy).
std::pair<double, double> outward_normal(Fragment::Edge e) {
  switch (e) {
    case Fragment::Edge::kLeft:
      return {-1.0, 0.0};
    case Fragment::Edge::kRight:
      return {1.0, 0.0};
    case Fragment::Edge::kTop:
      return {0.0, 1.0};
    case Fragment::Edge::kBottom:
      return {0.0, -1.0};
  }
  return {0.0, 0.0};
}

/// Fragment center on the (un-offset) target edge, in nm.
std::pair<double, double> fragment_center(const Rect& r, const Fragment& f) {
  const double mid = 0.5 * static_cast<double>(f.span0 + f.span1);
  switch (f.edge) {
    case Fragment::Edge::kLeft:
      return {static_cast<double>(r.x0), mid};
    case Fragment::Edge::kRight:
      return {static_cast<double>(r.x1), mid};
    case Fragment::Edge::kTop:
      return {mid, static_cast<double>(r.y1)};
    case Fragment::Edge::kBottom:
      return {mid, static_cast<double>(r.y0)};
  }
  return {0, 0};
}

}  // namespace

OpcEngine::OpcEngine(const optics::LithoSimulator& sim, OpcParams params)
    : sim_(sim), params_(params) {}

std::vector<Fragment> OpcEngine::fragment(const Clip& clip) const {
  std::vector<Fragment> out;
  for (size_t i = 0; i < clip.shapes.size(); ++i) {
    const Rect& r = clip.shapes[i];
    auto split = [&](Fragment::Edge e, int64_t a0, int64_t a1) {
      const int64_t len = a1 - a0;
      const int64_t n =
          std::max<int64_t>(1, (len + params_.fragment_nm - 1) / params_.fragment_nm);
      for (int64_t k = 0; k < n; ++k) {
        Fragment f;
        f.rect_index = i;
        f.edge = e;
        f.span0 = a0 + k * len / n;
        f.span1 = a0 + (k + 1) * len / n;
        out.push_back(f);
      }
    };
    split(Fragment::Edge::kLeft, r.y0, r.y1);
    split(Fragment::Edge::kRight, r.y0, r.y1);
    split(Fragment::Edge::kTop, r.x0, r.x1);
    split(Fragment::Edge::kBottom, r.x0, r.x1);
  }
  return out;
}

Tensor OpcEngine::rasterize_with_offsets(
    const Clip& clip, const std::vector<Fragment>& fragments) const {
  const double pixel = sim_.config().pixel_nm;
  Tensor grid = layout::rasterize(clip, pixel);
  for (const Fragment& f : fragments) {
    if (f.offset_nm == 0.0) continue;
    const Rect& r = clip.shapes[f.rect_index];
    const double off = f.offset_nm;
    double x0, y0, x1, y1;
    switch (f.edge) {
      case Fragment::Edge::kLeft:
        x0 = r.x0 - std::max(off, 0.0);
        x1 = r.x0 - std::min(off, 0.0);
        y0 = f.span0;
        y1 = f.span1;
        break;
      case Fragment::Edge::kRight:
        x0 = r.x1 + std::min(off, 0.0);
        x1 = r.x1 + std::max(off, 0.0);
        y0 = f.span0;
        y1 = f.span1;
        break;
      case Fragment::Edge::kTop:
        y0 = r.y1 + std::min(off, 0.0);
        y1 = r.y1 + std::max(off, 0.0);
        x0 = f.span0;
        x1 = f.span1;
        break;
      case Fragment::Edge::kBottom:
        y0 = r.y0 - std::max(off, 0.0);
        y1 = r.y0 - std::min(off, 0.0);
        x0 = f.span0;
        x1 = f.span1;
        break;
    }
    add_coverage(grid, x0, y0, x1, y1, pixel, off > 0 ? 1.f : -1.f);
  }
  grid.apply_([](float v) { return std::clamp(v, 0.f, 1.f); });
  return grid;
}

void OpcEngine::measure_epe(const Clip& clip, const Tensor& aerial,
                            std::vector<Fragment>& fragments) const {
  const double pixel = sim_.config().pixel_nm;
  const float thr = static_cast<float>(sim_.threshold());
  const double step = pixel * 0.5;
  const int64_t steps = static_cast<int64_t>(params_.search_nm / step);
  for (Fragment& f : fragments) {
    const Rect& r = clip.shapes[f.rect_index];
    const auto [cx, cy] = fragment_center(r, f);
    const auto [nx, ny] = outward_normal(f.edge);
    // Scan intensity from inside (-search) to outside (+search) along the
    // normal; the printed contour is the threshold crossing nearest to the
    // target edge (s = 0).
    double best = params_.search_nm + step;  // sentinel: no crossing found
    float prev = 0.f;
    bool have_prev = false;
    for (int64_t i = -steps; i <= steps; ++i) {
      const double s = static_cast<double>(i) * step;
      const double px = (cx + nx * s) / pixel - 0.5;
      const double py = (cy + ny * s) / pixel - 0.5;
      const float v = sample_bilinear(aerial, py, px);
      if (have_prev && ((prev >= thr) != (v >= thr))) {
        // Linear interpolation of the crossing point.
        const double t = (thr - prev) / (v - prev);
        const double cross = s - step + t * step;
        if (std::abs(cross) < std::abs(best)) best = cross;
      }
      prev = v;
      have_prev = true;
    }
    if (best > params_.search_nm) {
      // No crossing: feature under- or over-exposed across the whole scan.
      const double px = cx / pixel - 0.5, py = cy / pixel - 0.5;
      best = sample_bilinear(aerial, py, px) >= thr ? params_.search_nm
                                                    : -params_.search_nm;
    }
    f.last_epe_nm = best;
  }
}

std::vector<OpcIteration> OpcEngine::run(const Clip& clip,
                                         int64_t iterations) const {
  std::vector<Fragment> frags = fragment(clip);
  std::vector<OpcIteration> out;
  out.reserve(static_cast<size_t>(iterations) + 1);
  for (int64_t it = 0; it <= iterations; ++it) {
    Tensor mask = rasterize_with_offsets(clip, frags);
    Tensor aerial = sim_.aerial(mask);
    measure_epe(clip, aerial, frags);
    double sum_abs = 0.0, max_abs = 0.0;
    for (const Fragment& f : frags) {
      sum_abs += std::abs(f.last_epe_nm);
      max_abs = std::max(max_abs, std::abs(f.last_epe_nm));
    }
    out.push_back({std::move(mask),
                   frags.empty() ? 0.0 : sum_abs / static_cast<double>(frags.size()),
                   max_abs});
    if (it == iterations) break;
    for (Fragment& f : frags) {
      f.offset_nm = std::clamp(f.offset_nm - params_.gain * f.last_epe_nm,
                               -params_.max_offset_nm, params_.max_offset_nm);
    }
  }
  return out;
}

layout::Clip insert_srafs(const layout::Clip& clip, int64_t sraf_nm,
                          int64_t distance_nm, int64_t min_clearance_nm) {
  layout::Clip out = clip;
  auto blocked = [&](const Rect& candidate) {
    for (const Rect& s : clip.shapes) {
      if (candidate.intersects(s) ||
          candidate.spacing_to(s) < min_clearance_nm) {
        return true;
      }
    }
    return false;
  };
  std::vector<Rect> srafs;
  for (const Rect& r : clip.shapes) {
    // One assist bar per side, spanning the shape edge.
    const Rect cands[4] = {
        {r.x0 - distance_nm - sraf_nm, r.y0, r.x0 - distance_nm, r.y1},  // L
        {r.x1 + distance_nm, r.y0, r.x1 + distance_nm + sraf_nm, r.y1},  // R
        {r.x0, r.y1 + distance_nm, r.x1, r.y1 + distance_nm + sraf_nm},  // T
        {r.x0, r.y0 - distance_nm - sraf_nm, r.x1, r.y0 - distance_nm},  // B
    };
    for (const Rect& c : cands) {
      if (c.x0 < 0 || c.y0 < 0 || c.x1 > clip.extent_nm ||
          c.y1 > clip.extent_nm) {
        continue;
      }
      if (blocked(c)) continue;
      bool clash = false;
      for (const Rect& s : srafs) {
        if (c.intersects(s) || c.spacing_to(s) < min_clearance_nm) {
          clash = true;
          break;
        }
      }
      if (!clash) srafs.push_back(c);
    }
  }
  out.shapes.insert(out.shapes.end(), srafs.begin(), srafs.end());
  return out;
}

}  // namespace litho::opc
