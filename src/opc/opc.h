// Edge-based optical proximity correction.
//
// Rect edges are fragmented into segments; each iteration simulates the
// aerial image of the current mask, measures the edge placement error (EPE)
// of every fragment along its normal, and moves the fragment to compensate.
// The per-iteration mask snapshots drive the paper's Figure 8 experiment
// (model sensitivity across OPC iterations), and OPC'ed masks make the
// training datasets realistic (Table 1 pipelines all run OPC).
//
// Also provides rule-based SRAF (sub-resolution assist feature) insertion,
// which the paper's DAMO/DLS input configurations reference.
#pragma once

#include <cstdint>
#include <vector>

#include "layout/layout.h"
#include "litho/simulator.h"

namespace litho::opc {

/// One movable edge fragment of a layout rect.
struct Fragment {
  enum class Edge { kLeft, kRight, kTop, kBottom };
  size_t rect_index = 0;
  Edge edge = Edge::kLeft;
  int64_t span0 = 0;  ///< fragment span along the edge, nm
  int64_t span1 = 0;
  double offset_nm = 0.0;  ///< outward-positive displacement of the fragment
  double last_epe_nm = 0.0;
};

struct OpcParams {
  int64_t fragment_nm = 128;    ///< target fragment length
  double gain = 0.6;            ///< EPE feedback gain
  double max_offset_nm = 40.0;  ///< clamp on fragment movement
  double search_nm = 64.0;      ///< EPE search range along the normal
};

/// Result of one OPC iteration.
struct OpcIteration {
  Tensor mask;          ///< rasterized corrected mask
  double mean_abs_epe;  ///< nm, averaged over fragments
  double max_abs_epe;   ///< nm
};

/// Edge-based OPC driver bound to a golden simulator.
class OpcEngine {
 public:
  OpcEngine(const optics::LithoSimulator& sim, OpcParams params);

  /// Runs @p iterations correction steps on @p clip. result[0] is the
  /// uncorrected (iteration-0) mask; result[i] is the mask after i moves.
  std::vector<OpcIteration> run(const layout::Clip& clip,
                                int64_t iterations) const;

  /// Rasterizes @p clip with the given fragment offsets applied
  /// (positive offsets grow the shape outward along the fragment).
  Tensor rasterize_with_offsets(const layout::Clip& clip,
                                const std::vector<Fragment>& fragments) const;

  /// Splits every rect edge into fragments of ~fragment_nm.
  std::vector<Fragment> fragment(const layout::Clip& clip) const;

  /// Measures signed EPE (nm, outward positive) for every fragment against
  /// the aerial image of the current mask.
  void measure_epe(const layout::Clip& clip, const Tensor& aerial,
                   std::vector<Fragment>& fragments) const;

 private:
  const optics::LithoSimulator& sim_;
  OpcParams params_;
};

/// Rule-based SRAF insertion: places sub-resolution assist bars parallel to
/// shape edges that face open space, at @p distance_nm with @p sraf_nm
/// width. Assist bars are below the print threshold but improve the process
/// window of isolated features.
layout::Clip insert_srafs(const layout::Clip& clip, int64_t sraf_nm,
                          int64_t distance_nm, int64_t min_clearance_nm);

}  // namespace litho::opc
