// Mask rule check (MRC): manufacturability constraints on corrected masks.
// OPC moves edges aggressively; MRC verifies the result still satisfies the
// mask shop's minimum feature / minimum gap rules. Operates on the mask
// raster via run-length analysis along rows and columns, so it covers both
// polygon and fragment-offset mask representations.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace litho::opc {

struct MrcRules {
  double min_feature_nm = 48.0;  ///< narrowest allowed mask feature
  double min_gap_nm = 48.0;      ///< narrowest allowed gap between features
};

struct MrcViolation {
  enum class Kind { kFeature, kGap };
  Kind kind;
  bool horizontal;    ///< run direction the violation was found along
  int64_t row_px;     ///< location (row/col of the run)
  int64_t col_px;     ///< start of the offending run
  double extent_nm;   ///< measured run length
};

/// Scans a (binarized at 0.5) mask raster for feature/gap runs shorter than
/// the rules along both axes. Border-touching runs are not reported as gap
/// violations (the mask continues outside the tile).
std::vector<MrcViolation> check_mask_rules(const Tensor& mask,
                                           double pixel_nm,
                                           const MrcRules& rules);

}  // namespace litho::opc
