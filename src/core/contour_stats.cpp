#include "core/contour_stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace litho::core {
namespace {

// Large finite sentinel standing in for "no source pixel"; keeps the
// Felzenszwalb-Huttenlocher transform free of infinity special cases.
constexpr double kFar = 1e12;

/// 1-D squared Euclidean distance transform (lower envelope of parabolas):
/// out[q] = min_p (q - p)^2 + f[p].
void dt1d(const std::vector<double>& f, std::vector<double>& out) {
  const int64_t n = static_cast<int64_t>(f.size());
  std::vector<int64_t> v(static_cast<size_t>(n));
  std::vector<double> z(static_cast<size_t>(n) + 1);
  int64_t k = 0;
  v[0] = 0;
  z[0] = -kFar;
  z[1] = kFar;
  for (int64_t q = 1; q < n; ++q) {
    double s = 0;
    while (k >= 0) {
      const int64_t p = v[static_cast<size_t>(k)];
      s = ((f[static_cast<size_t>(q)] + static_cast<double>(q) * q) -
           (f[static_cast<size_t>(p)] + static_cast<double>(p) * p)) /
          (2.0 * static_cast<double>(q - p));
      if (s > z[static_cast<size_t>(k)]) break;
      --k;
    }
    ++k;
    v[static_cast<size_t>(k)] = q;
    z[static_cast<size_t>(k)] = (k == 0) ? -kFar : s;
    z[static_cast<size_t>(k) + 1] = kFar;
  }
  k = 0;
  for (int64_t q = 0; q < n; ++q) {
    while (z[static_cast<size_t>(k) + 1] < static_cast<double>(q)) ++k;
    const int64_t p = v[static_cast<size_t>(k)];
    out[static_cast<size_t>(q)] =
        static_cast<double>(q - p) * (q - p) + f[static_cast<size_t>(p)];
  }
}

/// Exact squared Euclidean distance transform of a point set: result[i] is
/// the squared distance from pixel i to the nearest set pixel (>= kFar when
/// the set is empty).
std::vector<double> distance_transform(const Tensor& points) {
  const int64_t h = points.size(0), w = points.size(1);
  std::vector<double> d(static_cast<size_t>(h * w));
  for (int64_t i = 0; i < h * w; ++i) {
    d[static_cast<size_t>(i)] = points[i] >= 0.5f ? 0.0 : kFar;
  }
  std::vector<double> col(static_cast<size_t>(h)), out_col(static_cast<size_t>(h));
  for (int64_t c = 0; c < w; ++c) {
    for (int64_t r = 0; r < h; ++r) {
      col[static_cast<size_t>(r)] = d[static_cast<size_t>(r * w + c)];
    }
    dt1d(col, out_col);
    for (int64_t r = 0; r < h; ++r) {
      d[static_cast<size_t>(r * w + c)] = out_col[static_cast<size_t>(r)];
    }
  }
  std::vector<double> row(static_cast<size_t>(w)), out_row(static_cast<size_t>(w));
  for (int64_t r = 0; r < h; ++r) {
    for (int64_t c = 0; c < w; ++c) {
      row[static_cast<size_t>(c)] = d[static_cast<size_t>(r * w + c)];
    }
    dt1d(row, out_row);
    for (int64_t c = 0; c < w; ++c) {
      d[static_cast<size_t>(r * w + c)] = out_row[static_cast<size_t>(c)];
    }
  }
  return d;
}

}  // namespace

Tensor boundary_map(const Tensor& binary) {
  if (binary.dim() != 2) throw std::invalid_argument("boundary_map: 2-D only");
  const int64_t h = binary.size(0), w = binary.size(1);
  Tensor out({h, w});
  for (int64_t r = 0; r < h; ++r) {
    for (int64_t c = 0; c < w; ++c) {
      if (binary[r * w + c] < 0.5f) continue;
      const bool edge =
          (r == 0 || binary[(r - 1) * w + c] < 0.5f) ||
          (r == h - 1 || binary[(r + 1) * w + c] < 0.5f) ||
          (c == 0 || binary[r * w + c - 1] < 0.5f) ||
          (c == w - 1 || binary[r * w + c + 1] < 0.5f);
      if (edge) out[r * w + c] = 1.f;
    }
  }
  return out;
}

EpeStats contour_epe_stats(const Tensor& prediction, const Tensor& golden,
                           double violation_threshold_px) {
  if (!prediction.same_shape(golden) || prediction.dim() != 2) {
    throw std::invalid_argument("contour_epe_stats shape mismatch");
  }
  const Tensor gb = boundary_map(golden);
  const Tensor pb = boundary_map(prediction);

  EpeStats stats;
  const int64_t n = gb.numel();
  int64_t golden_count = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (gb[i] >= 0.5f) ++golden_count;
  }
  stats.boundary_px = golden_count;
  if (golden_count == 0) return stats;

  const double diag = std::sqrt(static_cast<double>(
      golden.size(0) * golden.size(0) + golden.size(1) * golden.size(1)));
  const std::vector<double> dist = distance_transform(pb);

  std::vector<double> displacements;
  displacements.reserve(static_cast<size_t>(golden_count));
  for (int64_t i = 0; i < n; ++i) {
    if (gb[i] < 0.5f) continue;
    const double d2 = dist[static_cast<size_t>(i)];
    displacements.push_back(d2 >= kFar ? diag : std::sqrt(d2));
  }
  std::sort(displacements.begin(), displacements.end());
  double sum = 0;
  for (const double d : displacements) {
    sum += d;
    if (d > violation_threshold_px) ++stats.violations;
  }
  stats.mean_px = sum / static_cast<double>(displacements.size());
  stats.max_px = displacements.back();
  stats.p95_px =
      displacements[static_cast<size_t>(0.95 * (displacements.size() - 1))];
  return stats;
}

}  // namespace litho::core
