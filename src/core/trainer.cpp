#include "core/trainer.h"

#include <algorithm>
#include <numeric>

#include "autograd/ops.h"
#include "autograd/ops_weighted.h"
#include "core/augment.h"
#include "nn/optim.h"

namespace litho::core {

Tensor to_target(const Tensor& resist) {
  Tensor t = resist.clone();
  t.apply_([](float v) { return v >= 0.5f ? 1.f : -1.f; });
  return t;
}

double train_model(nn::ContourModel& model, const ContourDataset& data_in,
                   const TrainConfig& cfg) {
  if (data_in.size() == 0) throw std::invalid_argument("empty training set");
  const ContourDataset data =
      cfg.augment ? augment_dataset(data_in) : data_in;
  model.set_training(true);
  nn::Adam opt(model.parameters(), cfg.lr, 0.9f, 0.999f, 1e-8f,
               cfg.weight_decay);
  nn::StepLR sched(opt, cfg.lr_step, cfg.lr_gamma);

  const int64_t h = data.masks[0].size(0);
  const int64_t w = data.masks[0].size(1);
  std::vector<int64_t> order(static_cast<size_t>(data.size()));
  std::iota(order.begin(), order.end(), 0);
  std::mt19937 rng(cfg.shuffle_seed);

  double epoch_loss = 0.0;
  for (int64_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    epoch_loss = 0.0;
    int64_t batches = 0;
    for (int64_t start = 0; start < data.size(); start += cfg.batch_size) {
      const int64_t b = std::min(cfg.batch_size, data.size() - start);
      Tensor x({b, 1, h, w});
      Tensor y({b, 1, h, w});
      Tensor wt({b, 1, h, w});
      for (int64_t i = 0; i < b; ++i) {
        const auto idx = static_cast<size_t>(order[static_cast<size_t>(start + i)]);
        std::copy(data.masks[idx].data(), data.masks[idx].data() + h * w,
                  x.data() + i * h * w);
        Tensor t = to_target(data.resists[idx]);
        std::copy(t.data(), t.data() + h * w, y.data() + i * h * w);
      }
      for (int64_t i = 0; i < wt.numel(); ++i) {
        wt[i] = y[i] > 0.f ? cfg.fg_weight : 1.f;
      }
      opt.zero_grad();
      ag::Variable pred = model.forward(ag::Variable(std::move(x), false));
      ag::Variable loss = ag::weighted_mse_loss(pred, y, wt);
      epoch_loss += loss.value()[0];
      ++batches;
      loss.backward();
      opt.step();
    }
    epoch_loss /= static_cast<double>(std::max<int64_t>(1, batches));
    sched.step();
    if (cfg.on_epoch) cfg.on_epoch(epoch, epoch_loss);
  }
  return epoch_loss;
}

Tensor predict_contour(nn::ContourModel& model, const Tensor& mask) {
  model.set_training(false);
  const int64_t h = mask.size(0), w = mask.size(1);
  Tensor x = mask.clone().reshape({1, 1, h, w});
  ag::Variable out = model.forward(ag::Variable(std::move(x), false));
  Tensor pred = out.value().clone().reshape({h, w});
  pred.apply_([](float v) { return v >= 0.f ? 1.f : 0.f; });
  return pred;
}

SegmentationMetrics evaluate_model(nn::ContourModel& model,
                                   const ContourDataset& data) {
  std::vector<SegmentationMetrics> all;
  all.reserve(static_cast<size_t>(data.size()));
  for (int64_t i = 0; i < data.size(); ++i) {
    const Tensor pred =
        predict_contour(model, data.masks[static_cast<size_t>(i)]);
    all.push_back(
        evaluate_contours(pred, data.resists[static_cast<size_t>(i)]));
  }
  return average(all);
}

}  // namespace litho::core
