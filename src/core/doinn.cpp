#include "core/doinn.h"

#include <stdexcept>

#include "io/io.h"

namespace litho::core {

DoinnConfig DoinnConfig::small() { return DoinnConfig{}; }

DoinnConfig DoinnConfig::paper() {
  DoinnConfig cfg;
  cfg.tile = 2048;
  cfg.pool = 8;
  cfg.modes = 50;
  cfg.gp_channels = 16;
  cfg.lp1 = 4;
  cfg.lp2 = 8;
  cfg.refine1 = 32;
  cfg.refine2 = 16;
  return cfg;
}

void DoinnConfig::validate() const {
  if (tile % (pool * 4) != 0) {
    throw std::invalid_argument("tile must be divisible by 4*pool");
  }
  if (pool != 8) {
    // The LP path downsamples by exactly 2^3; the GP/LP concat requires the
    // same spatial grid.
    throw std::invalid_argument("pool factor must be 8 (three LP levels)");
  }
  if (modes > gp_grid() || modes > gp_spec_w()) {
    throw std::invalid_argument("modes exceed the pooled half-spectrum");
  }
  if (modes <= 0 || gp_channels <= 0) {
    throw std::invalid_argument("modes and channels must be positive");
  }
}

namespace {

/// FNO-style complex weight init: uniform with scale 1/(cin*cout).
Tensor fno_init(Shape shape, int64_t cin, int64_t cout, std::mt19937& rng) {
  const float scale = 1.f / static_cast<float>(cin * cout);
  return Tensor::rand(std::move(shape), rng, -scale, scale);
}

}  // namespace

Doinn::Doinn(DoinnConfig cfg, std::mt19937& rng)
    : cfg_((cfg.validate(), cfg)),
      bypass_(1, cfg.gp_channels, 1, 1, 0, rng),
      conv1_(1, cfg.lp1, 4, 2, 1, rng),
      conv2_(cfg.lp1, cfg.lp2, 4, 2, 1, rng),
      conv3_(cfg.lp2, cfg.lp3(), 4, 2, 1, rng),
      vgg1_(cfg.lp1, cfg.lp1, rng),
      vgg2_(cfg.lp2, cfg.lp2, rng),
      vgg3_(cfg.lp3(), cfg.lp3(), rng),
      dconv1_(cfg.use_lp ? 2 * cfg.gp_channels : cfg.gp_channels,
              cfg.gp_channels, 4, 2, 1, rng),
      dconv2_(cfg.use_lp ? cfg.gp_channels + cfg.lp2 : cfg.gp_channels,
              cfg.lp2, 4, 2, 1, rng),
      dconv3_(cfg.use_lp ? cfg.lp2 + cfg.lp1 : cfg.lp2, cfg.lp1, 4, 2, 1, rng),
      vgg4_(cfg.gp_channels, cfg.gp_channels, rng),
      vgg5_(cfg.lp2, cfg.lp2, rng),
      vgg6_(cfg.lp1, cfg.lp1, rng),
      convr1_(cfg.lp1, cfg.refine1, 3, 1, 1, rng),
      convr2_(cfg.refine1, cfg.refine2, 3, 1, 1, rng),
      convr3_(cfg.refine2, cfg.refine2, 3, 1, 1, rng),
      convr4_(cfg.refine2, 1, 3, 1, 1, rng),
      head_(cfg.lp1, 1, 3, 1, 1, rng) {
  const int64_t c = cfg_.gp_channels;
  lift_re_ = register_parameter("gp.lift_re", fno_init({1, c}, 1, c, rng));
  lift_im_ = register_parameter("gp.lift_im", fno_init({1, c}, 1, c, rng));
  wr_re_ = register_parameter(
      "gp.wr_re", fno_init({c, c, cfg_.modes, cfg_.modes}, c, c, rng));
  wr_im_ = register_parameter(
      "gp.wr_im", fno_init({c, c, cfg_.modes, cfg_.modes}, c, c, rng));
  if (cfg_.use_bypass) register_module("gp.bypass", &bypass_);
  if (cfg_.use_lp) {
    register_module("lp.conv1", &conv1_);
    register_module("lp.conv2", &conv2_);
    register_module("lp.conv3", &conv3_);
    register_module("lp.vgg1", &vgg1_);
    register_module("lp.vgg2", &vgg2_);
    register_module("lp.vgg3", &vgg3_);
  }
  register_module("ir.dconv1", &dconv1_);
  register_module("ir.dconv2", &dconv2_);
  register_module("ir.dconv3", &dconv3_);
  register_module("ir.vgg4", &vgg4_);
  register_module("ir.vgg5", &vgg5_);
  register_module("ir.vgg6", &vgg6_);
  if (cfg_.use_ir) {
    register_module("ir.convr1", &convr1_);
    register_module("ir.convr2", &convr2_);
    register_module("ir.convr3", &convr3_);
    register_module("ir.convr4", &convr4_);
  } else {
    register_module("ir.head", &head_);
  }
}

ag::Variable Doinn::gp_features(const ag::Variable& x) {
  const int64_t grid_h = x.shape()[2] / cfg_.pool;
  const int64_t grid_w = x.shape()[3] / cfg_.pool;
  ag::Variable pooled = ag::avg_pool2d(x, cfg_.pool);
  ag::CVariable spec = ag::rfft2v(pooled);
  ag::CVariable trunc = ag::ctruncate(spec, cfg_.modes, cfg_.modes);
  ag::CVariable lifted = ag::clift(trunc, {lift_re_, lift_im_});
  ag::CVariable mixed = ag::cmode_matmul(lifted, {wr_re_, wr_im_});
  ag::CVariable padded = ag::cpad(mixed, grid_h, grid_w / 2 + 1);
  ag::Variable out = ag::irfft2v(padded, grid_w);
  if (cfg_.use_bypass) out = ag::add(out, bypass_.forward(pooled));
  return ag::leaky_relu(out, 0.1f);
}

ag::Variable Doinn::lp_features(const ag::Variable& x) {
  ag::Variable l1 = vgg1_.forward(conv1_.forward(x));
  ag::Variable l2 = vgg2_.forward(conv2_.forward(l1));
  return vgg3_.forward(conv3_.forward(l2));
}

ag::Variable Doinn::forward_from_gp(const ag::Variable& gp,
                                    const ag::Variable& x) {
  ag::Variable l1, l2, l3;
  if (cfg_.use_lp) {
    l1 = vgg1_.forward(conv1_.forward(x));
    l2 = vgg2_.forward(conv2_.forward(l1));
    l3 = vgg3_.forward(conv3_.forward(l2));
  }

  ag::Variable h = cfg_.use_lp ? ag::concat_channels({gp, l3}) : gp;
  h = vgg4_.forward(dconv1_.forward(h));
  if (cfg_.use_lp) h = ag::concat_channels({h, l2});
  h = vgg5_.forward(dconv2_.forward(h));
  if (cfg_.use_lp) h = ag::concat_channels({h, l1});
  h = vgg6_.forward(dconv3_.forward(h));

  if (cfg_.use_ir) {
    h = ag::relu(convr1_.forward(h));
    h = ag::relu(convr2_.forward(h));
    h = ag::relu(convr3_.forward(h));
    return ag::tanh(convr4_.forward(h));
  }
  return ag::tanh(head_.forward(h));
}

ag::Variable Doinn::forward(const ag::Variable& x) {
  if (x.shape().size() != 4 || x.shape()[1] != 1) {
    throw std::invalid_argument("DOINN expects [N,1,H,W] input");
  }
  if (x.shape()[2] % (cfg_.pool * 4) != 0 || x.shape()[3] % (cfg_.pool * 4) != 0) {
    throw std::invalid_argument("DOINN input extent must be divisible by 32");
  }
  return forward_from_gp(gp_features(x), x);
}

Tensor encode_config(const DoinnConfig& cfg) {
  return Tensor({10}, {static_cast<float>(cfg.tile),
                       static_cast<float>(cfg.modes),
                       static_cast<float>(cfg.gp_channels),
                       static_cast<float>(cfg.lp1),
                       static_cast<float>(cfg.lp2),
                       static_cast<float>(cfg.refine1),
                       static_cast<float>(cfg.refine2),
                       cfg.use_ir ? 1.f : 0.f, cfg.use_lp ? 1.f : 0.f,
                       cfg.use_bypass ? 1.f : 0.f});
}

DoinnConfig decode_config(const Tensor& t) {
  if (t.numel() != 10) {
    throw std::runtime_error("malformed " + std::string(kDoinnConfigKey) +
                             " entry: expected 10 values, got " +
                             std::to_string(t.numel()));
  }
  DoinnConfig cfg;
  cfg.tile = static_cast<int64_t>(t[0]);
  cfg.modes = static_cast<int64_t>(t[1]);
  cfg.gp_channels = static_cast<int64_t>(t[2]);
  cfg.lp1 = static_cast<int64_t>(t[3]);
  cfg.lp2 = static_cast<int64_t>(t[4]);
  cfg.refine1 = static_cast<int64_t>(t[5]);
  cfg.refine2 = static_cast<int64_t>(t[6]);
  cfg.use_ir = t[7] != 0.f;
  cfg.use_lp = t[8] != 0.f;
  cfg.use_bypass = t[9] != 0.f;
  return cfg;
}

void save_doinn(const std::string& path, const Doinn& model) {
  auto dict = model.state_dict();
  dict.emplace(kDoinnConfigKey, encode_config(model.config()));
  io::save_tensors(path, dict);
}

std::unique_ptr<Doinn> load_doinn(const std::string& path) {
  auto dict = io::load_tensors(path);
  const auto cfg_it = dict.find(kDoinnConfigKey);
  if (cfg_it == dict.end()) {
    throw std::runtime_error(path + " lacks " + std::string(kDoinnConfigKey) +
                             " metadata");
  }
  const DoinnConfig cfg = decode_config(cfg_it->second);
  dict.erase(cfg_it);
  std::mt19937 rng(0);  // init values are overwritten by the checkpoint
  auto model = std::make_unique<Doinn>(cfg, rng);
  model->load_state_dict(dict);
  return model;
}

}  // namespace litho::core
