// Dihedral-group data augmentation for contour datasets. Lithography under
// a symmetric (circular/annular) source is equivariant under the 8
// symmetries of the square, so flips/rotations of a (mask, resist) pair are
// valid training samples — an effective multiplier for the small datasets
// this reproduction trains on.
#pragma once

#include "core/dataset.h"

namespace litho::core {

/// Applies the k-th dihedral transform (k in [0,8): rotations by k*90 deg
/// for k<4, then the same composed with a horizontal flip) to a square 2-D
/// tensor. k == 0 is the identity.
Tensor dihedral(const Tensor& image, int k);

/// Inverse transform index: dihedral(dihedral(x, k), inverse_dihedral(k))
/// == x.
int inverse_dihedral(int k);

/// Returns the dataset expanded by the given dihedral transforms (identity
/// included iff 0 is in @p ks). Masks and resists receive the same
/// transform.
ContourDataset augment_dataset(const ContourDataset& data,
                               const std::vector<int>& ks = {0, 1, 2, 3, 4, 5,
                                                             6, 7});

}  // namespace litho::core
