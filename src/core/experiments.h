// Shared experiment harness used by the benchmark binaries and examples:
// standard benchmark-dataset stand-ins (Table 1), model factories, and a
// disk cache for SOCS kernels, generated datasets and trained weights so
// that re-running any bench is fast and benches can run in any order.
//
// Scaling note: tiles keep the paper's PHYSICAL geometry —
// a training tile is 2048 nm x 2048 nm (~4 um^2, as in Table 1) and the
// large-tile experiment uses 8192 nm (~64 um^2) tiles — but rasterized at
// 16 nm/px ("L" rows) or 8 nm/px ("H" rows) instead of 1-2 nm/px, so that
// 15 model trainings fit a single CPU core.
#pragma once

#include <memory>
#include <string>

#include "core/dataset.h"
#include "core/doinn.h"
#include "core/trainer.h"
#include "nn/contour_model.h"

namespace litho::core {

/// Resolution flavor of a benchmark row.
enum class Resolution {
  kLow,   ///< 128 px @ 16 nm/px ("(L)" rows)
  kHigh,  ///< 256 px @ 8 nm/px  ("(H)" rows)
};

/// One benchmark stand-in (a Table 1 row).
struct Benchmark {
  std::string name;       ///< "ISPD-2019", "ICCAD-2013", "N14"
  DatasetKind kind;
  Resolution resolution;
  int64_t train_count;
  int64_t test_count;

  std::string id() const;      ///< cache key, e.g. "ispd2019_l"
  std::string display() const; ///< table label, e.g. "ISPD-2019 (L)"
  int64_t tile_px() const;
  double pixel_nm() const;
};

/// The five Table 2 rows.
Benchmark ispd2019(Resolution res);
Benchmark iccad2013(Resolution res);
Benchmark n14();

/// Cache directory ($LITHO_CACHE_DIR, default "data/cache"); created on
/// first use.
std::string cache_dir();

/// Golden simulator for a pixel size, with SOCS kernels cached on disk.
const optics::LithoSimulator& simulator_for(double pixel_nm);

/// High-fidelity reference simulator (2 nm/px, 24 kernels) representing the
/// rigorous engine of Figure 6's "Ref" bar.
const optics::LithoSimulator& reference_simulator();

/// Train/test datasets of a benchmark (generated once, cached).
ContourDataset train_set(const Benchmark& bench);
ContourDataset test_set(const Benchmark& bench);

/// Which models a benchmark supports; mirrors the paper's "-" entries
/// (DAMO-DLS only supports the low-resolution input configuration).
bool damo_supports(const Benchmark& bench);

/// Model factories with the experiment-default configurations.
std::unique_ptr<nn::ContourModel> make_model(const std::string& model_name,
                                             uint32_t seed);
/// DOINN with ablation switches (Table 3).
std::unique_ptr<Doinn> make_doinn(bool use_ir, bool use_lp, bool use_bypass,
                                  uint32_t seed);

/// Default training configuration of the harness.
TrainConfig default_train_config();

/// Loads cached weights for (model_name, bench) or trains and caches them.
/// Returns the trained model; @p trained_now reports whether training ran.
std::unique_ptr<nn::ContourModel> trained_model(const std::string& model_name,
                                                const Benchmark& bench,
                                                bool* trained_now = nullptr);

/// Cached-weights variant for ablation DOINNs (Table 3).
std::unique_ptr<Doinn> trained_doinn_variant(bool use_ir, bool use_lp,
                                             bool use_bypass,
                                             const Benchmark& bench);

}  // namespace litho::core
