// Printability hotspot detection: compare a predicted wafer contour against
// the intended design and flag windows whose printed area deviates — the
// screening step of the DFM flow the paper motivates (fast learned
// simulator screens everything, the rigorous engine verifies only flagged
// sites).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace litho::core {

struct Hotspot {
  int64_t row_px;        ///< window origin
  int64_t col_px;
  double printed_ratio;  ///< printed px / intended px inside the window
};

struct HotspotParams {
  int64_t window_px = 12;     ///< scan window side
  double min_design_px = 9;   ///< skip windows with less design area
  double under_ratio = 0.5;   ///< flag if printed/design below this
  double over_ratio = 2.0;    ///< ... or above this
};

/// Scans non-overlapping windows of the design raster and compares against
/// the (binary) printed contour. Returns flagged windows sorted by
/// severity (distance of printed_ratio from 1).
std::vector<Hotspot> find_hotspots(const Tensor& design_mask,
                                   const Tensor& printed_contour,
                                   const HotspotParams& params);

}  // namespace litho::core
