// Supervised training loop and evaluation matching the paper's Table 8
// configuration: Adam (weight decay 1e-4), initial LR 2e-3, LR halved every
// 2 epochs, MSE loss on tanh outputs, batch training.
#pragma once

#include <functional>

#include "core/dataset.h"
#include "core/metrics.h"
#include "nn/contour_model.h"

namespace litho::core {

struct TrainConfig {
  int64_t epochs = 6;        ///< paper: 10
  int64_t batch_size = 4;    ///< paper: 16
  float lr = 2e-3f;          ///< paper: 0.002
  int64_t lr_step = 2;       ///< paper: every 2 epochs
  float lr_gamma = 0.5f;     ///< paper: 0.5
  float weight_decay = 1e-4f;///< paper: 0.0001
  /// Foreground pixel weight in the MSE loss. Resist contours cover only a
  /// few percent of a tile, and at this reproduction's reduced step count
  /// (10^2 steps vs the paper's 10^3+) unweighted MSE stalls in the
  /// all-background solution; weighting restores the paper's convergence
  /// behaviour without changing the loss family.
  float fg_weight = 8.f;
  /// Expand the training set with all 8 dihedral transforms (valid because
  /// imaging under a symmetric source is equivariant under them).
  bool augment = false;
  uint32_t shuffle_seed = 7;
  /// Optional per-epoch callback (epoch index, mean training loss).
  std::function<void(int64_t, double)> on_epoch;
};

/// Trains @p model in place on @p data; returns the final-epoch mean loss.
double train_model(nn::ContourModel& model, const ContourDataset& data,
                   const TrainConfig& cfg);

/// Binarized contour prediction for a single [H,W] mask (model switched to
/// eval mode).
Tensor predict_contour(nn::ContourModel& model, const Tensor& mask);

/// mIOU / mPA of @p model over a dataset.
SegmentationMetrics evaluate_model(nn::ContourModel& model,
                                   const ContourDataset& data);

/// Tanh-target encoding of a binary resist image: {0,1} -> {-1,+1}.
Tensor to_target(const Tensor& resist);

}  // namespace litho::core
