#include "core/experiments.h"

#include <cstdlib>
#include <map>
#include <stdexcept>

#include "io/io.h"
#include "models/damo.h"
#include "models/fno_baseline.h"
#include "models/unet.h"

namespace litho::core {

std::string Benchmark::id() const {
  std::string base = name;
  for (char& c : base) {
    if (c == '-') c = '_';
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return base + (resolution == Resolution::kLow ? "_l" : "_h");
}

std::string Benchmark::display() const {
  if (name == "N14") return name;
  return name + (resolution == Resolution::kLow ? " (L)" : " (H)");
}

int64_t Benchmark::tile_px() const {
  return resolution == Resolution::kLow ? 128 : 256;
}

double Benchmark::pixel_nm() const {
  return resolution == Resolution::kLow ? 16.0 : 8.0;
}

Benchmark ispd2019(Resolution res) {
  return {"ISPD-2019", DatasetKind::kViaSparse, res, 32, 8};
}

Benchmark iccad2013(Resolution res) {
  return {"ICCAD-2013", DatasetKind::kMetal, res, 32, 8};
}

Benchmark n14() {
  return {"N14", DatasetKind::kViaDense, Resolution::kLow, 32, 8};
}

std::string cache_dir() {
  const char* env = std::getenv("LITHO_CACHE_DIR");
  const std::string dir = env != nullptr ? env : "data/cache";
  io::ensure_dir(dir);
  return dir;
}

const optics::LithoSimulator& simulator_for(double pixel_nm) {
  static std::map<int64_t, std::unique_ptr<optics::LithoSimulator>> sims;
  const auto key = static_cast<int64_t>(pixel_nm * 1000);
  auto it = sims.find(key);
  if (it == sims.end()) {
    optics::OpticalConfig cfg;
    cfg.pixel_nm = pixel_nm;
    // Kernel window must cover the optical diameter (~570 nm).
    cfg.kernel_grid = std::max<int64_t>(
        48, static_cast<int64_t>(cfg.optical_diameter_nm() / pixel_nm) + 8);
    cfg.kernel_count = 12;
    const std::string path = cache_dir() + "/kernels_px" +
                             std::to_string(key) + "_g" +
                             std::to_string(cfg.kernel_grid) + ".bin";
    it = sims.emplace(key, std::make_unique<optics::LithoSimulator>(
                               optics::LithoSimulator::with_cache(cfg, path)))
             .first;
  }
  return *it->second;
}

const optics::LithoSimulator& reference_simulator() {
  static std::unique_ptr<optics::LithoSimulator> sim = [] {
    optics::OpticalConfig cfg;
    cfg.pixel_nm = 2.0;  // the rigorous engine's native fine raster
    cfg.kernel_grid = 320;
    cfg.kernel_count = 24;
    const std::string path = cache_dir() + "/kernels_reference.bin";
    return std::make_unique<optics::LithoSimulator>(
        optics::LithoSimulator::with_cache(cfg, path));
  }();
  return *sim;
}

namespace {

ContourDataset dataset_for(const Benchmark& bench, bool train) {
  DatasetSpec spec;
  spec.kind = bench.kind;
  spec.count = train ? bench.train_count : bench.test_count;
  spec.tile_px = bench.tile_px();
  spec.seed = train ? 1000 + static_cast<uint32_t>(std::hash<std::string>{}(
                                 bench.id()) %
                             1000)
                    : 9000 + static_cast<uint32_t>(std::hash<std::string>{}(
                                 bench.id()) %
                             1000);
  spec.opc_iterations = 4;
  spec.cache_file = cache_dir() + "/dataset_" + bench.id() +
                    (train ? "_train" : "_test") + ".bin";
  return build_dataset(simulator_for(bench.pixel_nm()), spec);
}

}  // namespace

ContourDataset train_set(const Benchmark& bench) {
  return dataset_for(bench, true);
}

ContourDataset test_set(const Benchmark& bench) {
  return dataset_for(bench, false);
}

bool damo_supports(const Benchmark& bench) {
  // The paper's Table 2 marks DAMO-DLS "-" on (H) rows: it only supports the
  // 1000x1000 input configuration.
  return bench.resolution == Resolution::kLow;
}

std::unique_ptr<nn::ContourModel> make_model(const std::string& model_name,
                                             uint32_t seed) {
  std::mt19937 rng(seed);
  if (model_name == "DOINN") {
    return std::make_unique<Doinn>(DoinnConfig::small(), rng);
  }
  if (model_name == "UNet") {
    return std::make_unique<models::UNet>(models::UNetConfig{}, rng);
  }
  if (model_name == "DAMO-DLS") {
    return std::make_unique<models::DamoDls>(models::DamoConfig{10}, rng);
  }
  if (model_name == "FNO-baseline") {
    return std::make_unique<models::FnoBaseline>(models::FnoConfig{}, rng);
  }
  throw std::invalid_argument("unknown model: " + model_name);
}

std::unique_ptr<Doinn> make_doinn(bool use_ir, bool use_lp, bool use_bypass,
                                  uint32_t seed) {
  DoinnConfig cfg = DoinnConfig::small();
  cfg.use_ir = use_ir;
  cfg.use_lp = use_lp;
  cfg.use_bypass = use_bypass;
  std::mt19937 rng(seed);
  return std::make_unique<Doinn>(cfg, rng);
}

TrainConfig default_train_config() {
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 2;
  cfg.lr = 2e-3f;
  cfg.lr_step = 2;
  cfg.lr_gamma = 0.5f;
  cfg.weight_decay = 1e-4f;
  return cfg;
}

namespace {

std::string weights_path(const std::string& tag, const Benchmark& bench) {
  std::string t = tag;
  for (char& c : t) {
    if (c == '-') c = '_';
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return cache_dir() + "/weights_" + t + "_" + bench.id() + ".bin";
}

/// Loads weights if cached, otherwise trains on the benchmark's train set
/// and saves.
void load_or_train(nn::ContourModel& model, const std::string& tag,
                   const Benchmark& bench, bool* trained_now) {
  const std::string path = weights_path(tag, bench);
  if (io::file_exists(path)) {
    model.load_state_dict(io::load_tensors(path));
    if (trained_now != nullptr) *trained_now = false;
    return;
  }
  const ContourDataset data = train_set(bench);
  train_model(model, data, default_train_config());
  io::save_tensors(path, model.state_dict());
  if (trained_now != nullptr) *trained_now = true;
}

}  // namespace

std::unique_ptr<nn::ContourModel> trained_model(const std::string& model_name,
                                                const Benchmark& bench,
                                                bool* trained_now) {
  auto model = make_model(model_name, /*seed=*/42);
  load_or_train(*model, model_name, bench, trained_now);
  return model;
}

std::unique_ptr<Doinn> trained_doinn_variant(bool use_ir, bool use_lp,
                                             bool use_bypass,
                                             const Benchmark& bench) {
  auto model = make_doinn(use_ir, use_lp, use_bypass, /*seed=*/42);
  const std::string tag = std::string("doinn_abl_") + (use_ir ? "i" : "x") +
                          (use_lp ? "l" : "x") + (use_bypass ? "b" : "x");
  load_or_train(*model, tag, bench, nullptr);
  return model;
}

}  // namespace litho::core
