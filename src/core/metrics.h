// Evaluation metrics of paper Section 2.2: mean Intersection-over-Union and
// mean Pixel Accuracy over the two classes {contour, background}.
#pragma once

#include "tensor/tensor.h"

namespace litho::core {

struct SegmentationMetrics {
  double miou = 0.0;  ///< mean IOU over foreground and background
  double mpa = 0.0;   ///< mean pixel accuracy over foreground and background
};

/// Computes mIOU / mPA between a binary prediction and binary ground truth
/// (values >= 0.5 count as foreground). Shapes must match. Empty classes
/// (no pixels in both P and G) score 1.0 by convention.
SegmentationMetrics evaluate_contours(const Tensor& prediction,
                                      const Tensor& ground_truth);

/// Averages metrics over a set of samples.
SegmentationMetrics average(const std::vector<SegmentationMetrics>& all);

}  // namespace litho::core
