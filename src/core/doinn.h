// DOINN: dual-band optics-inspired neural network (paper Section 3.1).
//
// Three paths:
//   GP  — global perception: AvgPool /8 -> rFFT2 -> k-truncation -> complex
//         channel lift (W_P) -> per-mode complex matmul (W_R) -> irFFT2 ->
//         LeakyReLU(0.1). This is the optimized single Fourier Unit of
//         eq. (11), with FFT applied *before* channel lifting. An optional
//         bypass (eq. (8)'s V_{t,L}) adds a 1x1-conv path over the pooled
//         input (ablation Table 3, "ByPass").
//   LP  — local perception: three strided 4x4 convs, each followed by a VGG
//         block (Table 6).
//   IR  — image reconstruction: three transposed convs with U-Net-style
//         concats from LP, followed by four single-stride refinement convs
//         (Table 7), Tanh output.
//
// The architecture is resolution-parametric: DoinnConfig::paper() builds the
// exact appendix dimensions (2048^2 tiles, 50x50 modes, 16 channels, ~1.3M
// parameters), DoinnConfig::small() a proportionally scaled configuration
// that trains in seconds on one CPU core.
#pragma once

#include <memory>
#include <string>

#include "autograd/spectral.h"
#include "nn/contour_model.h"
#include "nn/layers.h"

namespace litho::core {

struct DoinnConfig {
  int64_t tile = 128;       ///< input H = W
  int64_t pool = 8;         ///< GP average-pool factor (fixed 8 in the paper)
  int64_t modes = 7;        ///< retained lowest-frequency modes per axis
  int64_t gp_channels = 8;  ///< Fourier Unit channel count (paper: 16)
  int64_t lp1 = 4;          ///< LP level-1 channels (paper: 4)
  int64_t lp2 = 8;          ///< LP level-2 channels (paper: 8)
  int64_t refine1 = 16;     ///< refinement conv width (paper: 32)
  int64_t refine2 = 8;      ///< refinement conv width (paper: 16)

  // Ablation switches (Table 3). The GP path plus the transposed-conv
  // upsampling chain is always present (a contour cannot be produced
  // without it).
  bool use_ir = true;      ///< refinement convs convr1-4 (group 2)
  bool use_lp = true;      ///< LP path and concat links (group 3)
  bool use_bypass = true;  ///< pooled-input bypass into GP (group 4)

  /// Default scaled configuration used by the experiments.
  static DoinnConfig small();
  /// The exact paper-appendix configuration (2048x2048 @ 1 nm^2/px scale).
  static DoinnConfig paper();

  /// GP grid side after pooling.
  int64_t gp_grid() const { return tile / pool; }
  /// Width of the pooled half spectrum.
  int64_t gp_spec_w() const { return gp_grid() / 2 + 1; }
  /// Third LP level channels; tied to gp_channels for the symmetric concat.
  int64_t lp3() const { return gp_channels; }

  void validate() const;
};

/// The DOINN contour model.
class Doinn : public nn::ContourModel {
 public:
  Doinn(DoinnConfig cfg, std::mt19937& rng);

  ag::Variable forward(const ag::Variable& x) override;
  std::string name() const override { return "DOINN"; }

  const DoinnConfig& config() const { return cfg_; }

  /// GP path only: [N,1,H,W] -> activated feature maps [N,C,H/8,W/8].
  /// Exposed for the large-tile scheme (Section 3.2) and the Figure 7
  /// feature-map visualization.
  ag::Variable gp_features(const ag::Variable& x);

  /// LP path features at the third level, for Figure 7 visualization.
  ag::Variable lp_features(const ag::Variable& x);

  /// Completes the forward pass given externally stitched GP features (the
  /// large-tile scheme feeds half-overlap-stitched cores here). @p x is the
  /// full-resolution mask the LP path runs on; spatial sizes must satisfy
  /// gp.shape = x.shape / pool.
  ag::Variable forward_from_gp(const ag::Variable& gp, const ag::Variable& x);

 private:
  DoinnConfig cfg_;

  // GP: complex lift (W_P) and per-mode mixing (W_R) weights.
  ag::Variable lift_re_, lift_im_;
  ag::Variable wr_re_, wr_im_;
  nn::Conv2d bypass_;

  // LP.
  nn::Conv2d conv1_, conv2_, conv3_;
  nn::VggBlock vgg1_, vgg2_, vgg3_;

  // IR.
  nn::ConvTranspose2d dconv1_, dconv2_, dconv3_;
  nn::VggBlock vgg4_, vgg5_, vgg6_;
  nn::Conv2d convr1_, convr2_, convr3_, convr4_;
  nn::Conv2d head_;  ///< small output head used when use_ir == false
};

// -- Checkpoints ---------------------------------------------------------------
// The DoinnConfig rides along in the weights container under
// kDoinnConfigKey, so a checkpoint is self-contained: loading needs no
// extra flags. Used by doinn_cli, the serving runtime, and tests.

inline constexpr char kDoinnConfigKey[] = "__doinn_config__";

/// Serializes @p cfg as a small tensor (the kDoinnConfigKey entry).
Tensor encode_config(const DoinnConfig& cfg);

/// Inverse of encode_config.
DoinnConfig decode_config(const Tensor& t);

/// Writes weights + embedded config to @p path (io::save_tensors format).
void save_doinn(const std::string& path, const Doinn& model);

/// Rebuilds a Doinn from a checkpoint written by save_doinn.
/// Throws std::runtime_error when the config entry is missing.
std::unique_ptr<Doinn> load_doinn(const std::string& path);

}  // namespace litho::core
