#include "core/metrics.h"

#include <stdexcept>

namespace litho::core {

SegmentationMetrics evaluate_contours(const Tensor& prediction,
                                      const Tensor& ground_truth) {
  if (!prediction.same_shape(ground_truth)) {
    throw std::invalid_argument("metric shape mismatch: " +
                                shape_to_string(prediction.shape()) + " vs " +
                                shape_to_string(ground_truth.shape()));
  }
  int64_t inter_fg = 0, union_fg = 0, gt_fg = 0, correct_fg = 0;
  int64_t inter_bg = 0, union_bg = 0, gt_bg = 0, correct_bg = 0;
  const int64_t n = prediction.numel();
  for (int64_t i = 0; i < n; ++i) {
    const bool p = prediction[i] >= 0.5f;
    const bool g = ground_truth[i] >= 0.5f;
    if (p && g) ++inter_fg;
    if (p || g) ++union_fg;
    if (g) ++gt_fg;
    if (p && g) ++correct_fg;
    if (!p && !g) ++inter_bg;
    if (!p || !g) ++union_bg;
    if (!g) ++gt_bg;
    if (!p && !g) ++correct_bg;
  }
  auto ratio = [](int64_t a, int64_t b) {
    return b == 0 ? 1.0 : static_cast<double>(a) / static_cast<double>(b);
  };
  SegmentationMetrics m;
  m.miou = 0.5 * (ratio(inter_fg, union_fg) + ratio(inter_bg, union_bg));
  m.mpa = 0.5 * (ratio(correct_fg, gt_fg) + ratio(correct_bg, gt_bg));
  return m;
}

SegmentationMetrics average(const std::vector<SegmentationMetrics>& all) {
  SegmentationMetrics m;
  if (all.empty()) return m;
  for (const SegmentationMetrics& x : all) {
    m.miou += x.miou;
    m.mpa += x.mpa;
  }
  m.miou /= static_cast<double>(all.size());
  m.mpa /= static_cast<double>(all.size());
  return m;
}

}  // namespace litho::core
