// Contour-level comparison statistics beyond mIOU/mPA: edge placement
// error distributions between a predicted and a golden contour, the metric
// OPC flows act on (paper Section 1's EPE-regression prior art, and the
// criterion behind "stringent benchmarking" in the paper's future work).
#pragma once

#include "tensor/tensor.h"

namespace litho::core {

struct EpeStats {
  double mean_px = 0.0;    ///< mean boundary displacement (pixels)
  double max_px = 0.0;     ///< worst-case displacement
  double p95_px = 0.0;     ///< 95th percentile
  int64_t boundary_px = 0; ///< number of golden boundary pixels measured
  /// Count of boundary pixels displaced by more than a threshold
  /// (the "EPE violation" count of OPC signoff).
  int64_t violations = 0;
};

/// Computes boundary-displacement statistics: for every boundary pixel of
/// the golden contour, the distance to the nearest boundary pixel of the
/// prediction (in pixels; exact two-pass L2 distance transform).
/// @p violation_threshold_px counts violations above that displacement.
EpeStats contour_epe_stats(const Tensor& prediction, const Tensor& golden,
                           double violation_threshold_px = 2.0);

/// Extracts the boundary map of a binary image (foreground pixels with at
/// least one 4-neighbor background pixel).
Tensor boundary_map(const Tensor& binary);

}  // namespace litho::core
