#include "core/dataset.h"

#include <stdexcept>

#include "io/io.h"
#include "layout/layout.h"

namespace litho::core {
namespace {

using layout::Clip;
using layout::DesignRules;

/// Builds the layout generator parameters matching a dataset kind for a
/// clip of @p extent_nm.
Clip generate_clip(DatasetKind kind, int64_t extent_nm, std::mt19937& rng) {
  const DesignRules rules{64, 64};
  switch (kind) {
    case DatasetKind::kViaSparse: {
      layout::ViaLayerGenerator::Params p;
      p.clip_nm = extent_nm;
      p.via_nm = 96;  // prints near-nominally; OPC refines the contour
      return layout::ViaLayerGenerator(p, rules).generate(rng);
    }
    case DatasetKind::kViaDense: {
      layout::ViaLayerGenerator::Params p;
      p.clip_nm = extent_nm;
      p.via_nm = 80;     // sub-nominal contacts: OPC biasing is required
      p.pitch_nm = 192;  // denser placement grid (N14-like)
      p.site_probability = 0.45;
      p.array_probability = 0.2;
      p.jitter_nm = 8;
      return layout::ViaLayerGenerator(p, rules).generate(rng);
    }
    case DatasetKind::kMetal: {
      layout::MetalLayerGenerator::Params p;
      p.clip_nm = extent_nm;
      return layout::MetalLayerGenerator(p, rules).generate(rng);
    }
  }
  throw std::invalid_argument("unknown dataset kind");
}

Tensor mask_for_clip(const optics::LithoSimulator& sim, const Clip& clip,
                     int64_t opc_iterations) {
  if (opc_iterations <= 0) {
    return layout::rasterize(clip, sim.config().pixel_nm);
  }
  opc::OpcEngine engine(sim, opc::OpcParams{});
  const auto iters = engine.run(clip, opc_iterations);
  return iters.back().mask;
}

}  // namespace

Tensor generate_mask(const optics::LithoSimulator& sim, DatasetKind kind,
                     int64_t tile_px, uint32_t seed, int64_t opc_iterations) {
  std::mt19937 rng(seed);
  const int64_t extent_nm =
      tile_px * static_cast<int64_t>(sim.config().pixel_nm);
  const Clip clip = generate_clip(kind, extent_nm, rng);
  return mask_for_clip(sim, clip, opc_iterations);
}

ContourDataset build_dataset(const optics::LithoSimulator& sim,
                             const DatasetSpec& spec) {
  if (!spec.cache_file.empty() && io::file_exists(spec.cache_file)) {
    const auto dict = io::load_tensors(spec.cache_file);
    const Tensor& masks = dict.at("masks");
    const Tensor& resists = dict.at("resists");
    if (masks.size(0) == spec.count && masks.size(1) == spec.tile_px) {
      ContourDataset ds;
      const int64_t plane = spec.tile_px * spec.tile_px;
      for (int64_t i = 0; i < spec.count; ++i) {
        Tensor m({spec.tile_px, spec.tile_px});
        Tensor z({spec.tile_px, spec.tile_px});
        std::copy(masks.data() + i * plane, masks.data() + (i + 1) * plane,
                  m.data());
        std::copy(resists.data() + i * plane, resists.data() + (i + 1) * plane,
                  z.data());
        ds.masks.push_back(std::move(m));
        ds.resists.push_back(std::move(z));
      }
      return ds;
    }
    // Spec changed under the same path: fall through and regenerate.
  }

  ContourDataset ds;
  const int64_t extent_nm =
      spec.tile_px * static_cast<int64_t>(sim.config().pixel_nm);
  std::mt19937 rng(spec.seed);
  for (int64_t i = 0; i < spec.count; ++i) {
    const Clip clip = generate_clip(spec.kind, extent_nm, rng);
    Tensor mask = mask_for_clip(sim, clip, spec.opc_iterations);
    Tensor resist = sim.simulate(mask);
    ds.masks.push_back(std::move(mask));
    ds.resists.push_back(std::move(resist));
  }

  if (!spec.cache_file.empty()) {
    const int64_t plane = spec.tile_px * spec.tile_px;
    Tensor masks({spec.count, spec.tile_px, spec.tile_px});
    Tensor resists({spec.count, spec.tile_px, spec.tile_px});
    for (int64_t i = 0; i < spec.count; ++i) {
      std::copy(ds.masks[static_cast<size_t>(i)].data(),
                ds.masks[static_cast<size_t>(i)].data() + plane,
                masks.data() + i * plane);
      std::copy(ds.resists[static_cast<size_t>(i)].data(),
                ds.resists[static_cast<size_t>(i)].data() + plane,
                resists.data() + i * plane);
    }
    io::save_tensors(spec.cache_file, {{"masks", masks}, {"resists", resists}});
  }
  return ds;
}

}  // namespace litho::core
