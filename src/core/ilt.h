// Inverse lithography (ILT) through the differentiable DOINN — the paper's
// stated future-work direction ("incorporating inverse lithography
// technologies with DOINN for direct mask optimization").
//
// Because the whole DOINN stack is built on the autograd tape, gradients
// flow to the INPUT mask as well as to the weights. ILT exploits this: a
// latent image is pushed through a sigmoid to a continuous mask, the
// trained DOINN predicts its resist image, and the mismatch to the target
// contour is minimized by gradient descent on the latent.
#pragma once

#include <vector>

#include "core/doinn.h"

namespace litho::core {

struct IltConfig {
  int64_t iterations = 40;
  float lr = 0.2f;         ///< Adam step size on the latent image
  float steepness = 4.f;   ///< sigmoid steepness of the mask parameterization
  float fg_weight = 8.f;   ///< foreground weight in the contour loss
};

struct IltResult {
  Tensor mask;               ///< optimized continuous mask in [0, 1]
  Tensor binary_mask;        ///< mask thresholded at 0.5
  std::vector<double> loss;  ///< per-iteration objective
};

/// Optimizes a mask such that @p model predicts @p target_resist, starting
/// from @p initial_mask (typically the design itself). The model's weights
/// are frozen; only the mask latent is updated.
IltResult optimize_mask(Doinn& model, const Tensor& target_resist,
                        const Tensor& initial_mask, const IltConfig& cfg);

}  // namespace litho::core
