#include "core/hotspot.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace litho::core {

std::vector<Hotspot> find_hotspots(const Tensor& design_mask,
                                   const Tensor& printed_contour,
                                   const HotspotParams& params) {
  if (!design_mask.same_shape(printed_contour) || design_mask.dim() != 2) {
    throw std::invalid_argument("find_hotspots shape mismatch");
  }
  const int64_t h = design_mask.size(0), w = design_mask.size(1);
  const int64_t win = params.window_px;
  std::vector<Hotspot> out;
  for (int64_t r = 0; r + win <= h; r += win) {
    for (int64_t c = 0; c + win <= w; c += win) {
      double design = 0, printed = 0;
      for (int64_t dr = 0; dr < win; ++dr) {
        for (int64_t dc = 0; dc < win; ++dc) {
          design += design_mask[(r + dr) * w + c + dc];
          printed += printed_contour[(r + dr) * w + c + dc] >= 0.5f ? 1.0 : 0.0;
        }
      }
      if (design < params.min_design_px) continue;
      const double ratio = printed / design;
      if (ratio < params.under_ratio || ratio > params.over_ratio) {
        out.push_back({r, c, ratio});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Hotspot& a, const Hotspot& b) {
    return std::abs(a.printed_ratio - 1.0) > std::abs(b.printed_ratio - 1.0);
  });
  return out;
}

}  // namespace litho::core
