// Dataset pipeline: layout generation -> (optional) OPC -> rasterization ->
// golden lithography simulation -> (mask, resist) training pairs.
//
// These are the stand-ins for the paper's Table 1 datasets (ICCAD-2013
// metal, ISPD-2019 via, ISPD-2019-LT 64 um^2 via, N14 dense via),
// synthesized the same way the paper builds its ISPD-2019 training set
// (see src/layout/layout.h). Generated datasets are cached
// on disk keyed by the caller-provided path.
#pragma once

#include <string>
#include <vector>

#include "litho/simulator.h"
#include "opc/opc.h"

namespace litho::core {

enum class DatasetKind {
  kViaSparse,  ///< ISPD-2019-like via layer
  kViaDense,   ///< N14-like high-density via layer
  kMetal,      ///< ICCAD-2013-like metal layer
};

struct DatasetSpec {
  DatasetKind kind = DatasetKind::kViaSparse;
  int64_t count = 64;       ///< number of clips
  int64_t tile_px = 128;    ///< raster side in pixels
  uint32_t seed = 1;        ///< generation seed
  int64_t opc_iterations = 4;  ///< 0 = raw design masks
  std::string cache_file;   ///< empty = never cache
};

/// A set of (mask, golden resist) pairs, each a [tile, tile] raster.
struct ContourDataset {
  std::vector<Tensor> masks;
  std::vector<Tensor> resists;

  int64_t size() const { return static_cast<int64_t>(masks.size()); }
};

/// Generates (or loads from spec.cache_file) a dataset under the given
/// golden simulator.
ContourDataset build_dataset(const optics::LithoSimulator& sim,
                             const DatasetSpec& spec);

/// Generates a single clip of the given kind (used by the large-tile and
/// visualization benches, which need masks bigger than the training tile).
Tensor generate_mask(const optics::LithoSimulator& sim, DatasetKind kind,
                     int64_t tile_px, uint32_t seed, int64_t opc_iterations);

}  // namespace litho::core
