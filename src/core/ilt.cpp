#include "core/ilt.h"

#include <cmath>

#include "autograd/ops.h"
#include "autograd/ops_weighted.h"
#include "core/trainer.h"
#include "nn/optim.h"

namespace litho::core {

IltResult optimize_mask(Doinn& model, const Tensor& target_resist,
                        const Tensor& initial_mask, const IltConfig& cfg) {
  if (!target_resist.same_shape(initial_mask)) {
    throw std::invalid_argument("ILT: target/initial shape mismatch");
  }
  model.set_training(false);
  const int64_t h = initial_mask.size(0), w = initial_mask.size(1);

  // Latent init: inverse sigmoid of the (clamped) initial mask.
  Tensor latent0({1, 1, h, w});
  for (int64_t i = 0; i < latent0.numel(); ++i) {
    const float m = std::clamp(initial_mask[i], 0.05f, 0.95f);
    latent0[i] = std::log(m / (1.f - m)) / cfg.steepness;
  }
  ag::Variable latent(latent0, /*requires_grad=*/true);
  nn::Adam opt({latent}, cfg.lr);

  Tensor target = to_target(target_resist).reshape({1, 1, h, w});
  Tensor weights({1, 1, h, w});
  for (int64_t i = 0; i < weights.numel(); ++i) {
    weights[i] = target[i] > 0.f ? cfg.fg_weight : 1.f;
  }

  IltResult result;
  for (int64_t it = 0; it < cfg.iterations; ++it) {
    opt.zero_grad();
    model.zero_grad();  // weight grads accumulate as a side effect; discard
    ag::Variable mask = ag::sigmoid(ag::scale(latent, cfg.steepness));
    ag::Variable pred = model.forward(mask);
    ag::Variable loss = ag::weighted_mse_loss(pred, target, weights);
    result.loss.push_back(loss.value()[0]);
    loss.backward();
    opt.step();
  }

  ag::Variable final_mask = ag::sigmoid(ag::scale(latent, cfg.steepness));
  result.mask = final_mask.value().clone().reshape({h, w});
  result.binary_mask = result.mask.clone();
  result.binary_mask.apply_([](float v) { return v >= 0.5f ? 1.f : 0.f; });
  return result;
}

}  // namespace litho::core
