#include "core/augment.h"

#include <stdexcept>

namespace litho::core {

Tensor dihedral(const Tensor& image, int k) {
  if (image.dim() != 2 || image.size(0) != image.size(1)) {
    throw std::invalid_argument("dihedral: square 2-D tensor required");
  }
  if (k < 0 || k >= 8) throw std::invalid_argument("dihedral: k in [0,8)");
  const int64_t n = image.size(0);
  Tensor out({n, n});
  const bool flip = k >= 4;
  const int rot = k % 4;
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < n; ++c) {
      int64_t sr = r, sc = flip ? n - 1 - c : c;
      // Inverse rotation by rot*90 degrees maps output coords to source.
      for (int i = 0; i < rot; ++i) {
        const int64_t t = sr;
        sr = n - 1 - sc;
        sc = t;
      }
      out[r * n + c] = image[sr * n + sc];
    }
  }
  return out;
}

int inverse_dihedral(int k) {
  if (k < 0 || k >= 8) throw std::invalid_argument("inverse_dihedral");
  if (k < 4) return (4 - k) % 4;  // rotations invert to the opposite rotation
  return k;                       // reflections are involutions
}

ContourDataset augment_dataset(const ContourDataset& data,
                               const std::vector<int>& ks) {
  ContourDataset out;
  out.masks.reserve(data.masks.size() * ks.size());
  out.resists.reserve(data.resists.size() * ks.size());
  for (int64_t i = 0; i < data.size(); ++i) {
    for (const int k : ks) {
      out.masks.push_back(dihedral(data.masks[static_cast<size_t>(i)], k));
      out.resists.push_back(
          dihedral(data.resists[static_cast<size_t>(i)], k));
    }
  }
  return out;
}

}  // namespace litho::core
