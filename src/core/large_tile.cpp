#include "core/large_tile.h"

#include <stdexcept>

namespace litho::core {

LargeTilePredictor::LargeTilePredictor(Doinn& model) : model_(model) {}

ag::Variable LargeTilePredictor::stitched_gp(const Tensor& mask) const {
  const DoinnConfig& cfg = model_.config();
  const int64_t tile = cfg.tile;
  const int64_t half = tile / 2;
  const int64_t hl = mask.size(0), wl = mask.size(1);
  if (hl < tile || wl < tile || hl % half != 0 || wl % half != 0) {
    throw std::invalid_argument(
        "large tile must be >= training tile and a multiple of tile/2");
  }
  const int64_t pool = cfg.pool;
  const int64_t fh = hl / pool, fw = wl / pool;   // large feature grid
  const int64_t ft = tile / pool;                 // per-clip feature size
  const int64_t fhalf = ft / 2, fquart = ft / 4;

  Tensor stitched({1, cfg.gp_channels, fh, fw});
  const int64_t rows = (hl - tile) / half + 1;
  const int64_t cols = (wl - tile) / half + 1;
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      // Extract the half-overlapped clip.
      Tensor clip({1, 1, tile, tile});
      const int64_t y0 = i * half, x0 = j * half;
      for (int64_t r = 0; r < tile; ++r) {
        const float* src = mask.data() + (y0 + r) * wl + x0;
        float* dst = clip.data() + r * tile;
        std::copy(src, src + tile, dst);
      }
      ag::Variable gp = model_.gp_features(ag::Variable(clip, false));

      // Core region of this clip in feature space: the central half, except
      // clips on the boundary also own their outer margin.
      const int64_t ca0 = (i == 0) ? 0 : fquart;
      const int64_t ca1 = (i == rows - 1) ? ft : fquart + fhalf;
      const int64_t cb0 = (j == 0) ? 0 : fquart;
      const int64_t cb1 = (j == cols - 1) ? ft : fquart + fhalf;
      const Tensor& f = gp.value();
      for (int64_t c = 0; c < cfg.gp_channels; ++c) {
        for (int64_t r = ca0; r < ca1; ++r) {
          const float* src = f.data() + (c * ft + r) * ft;
          float* dst =
              stitched.data() + (c * fh + i * fhalf + r) * fw + j * fhalf;
          for (int64_t cc = cb0; cc < cb1; ++cc) dst[cc] = src[cc];
        }
      }
    }
  }
  return ag::Variable(stitched, false);
}

Tensor LargeTilePredictor::predict(const Tensor& mask) const {
  model_.set_training(false);
  ag::Variable gp = stitched_gp(mask);
  Tensor x = mask.clone().reshape({1, 1, mask.size(0), mask.size(1)});
  ag::Variable out = model_.forward_from_gp(gp, ag::Variable(x, false));
  return out.value().clone().reshape({mask.size(0), mask.size(1)});
}

Tensor LargeTilePredictor::predict_plain(const Tensor& mask) const {
  model_.set_training(false);
  Tensor x = mask.clone().reshape({1, 1, mask.size(0), mask.size(1)});
  ag::Variable out = model_.forward(ag::Variable(x, false));
  return out.value().clone().reshape({mask.size(0), mask.size(1)});
}

}  // namespace litho::core
