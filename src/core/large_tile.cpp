#include "core/large_tile.h"

#include <stdexcept>

#include "autograd/grad_mode.h"
#include "runtime/trace.h"

namespace litho::core {

LargeTilePredictor::LargeTilePredictor(Doinn& model) : model_(model) {}

ag::Variable LargeTilePredictor::stitched_gp(const Tensor& mask,
                                             runtime::ThreadPool* pool) const {
  const DoinnConfig& cfg = model_.config();
  const int64_t tile = cfg.tile;
  const int64_t half = tile / 2;
  const int64_t hl = mask.size(0), wl = mask.size(1);
  if (hl < tile || wl < tile || hl % half != 0 || wl % half != 0) {
    throw std::invalid_argument(
        "large tile must be >= training tile and a multiple of tile/2");
  }
  const int64_t pool_factor = cfg.pool;
  const int64_t fh = hl / pool_factor, fw = wl / pool_factor;  // feature grid
  const int64_t ft = tile / pool_factor;  // per-clip feature size
  const int64_t fhalf = ft / 2, fquart = ft / 4;

  Tensor stitched({1, cfg.gp_channels, fh, fw});
  const int64_t rows = (hl - tile) / half + 1;
  const int64_t cols = (wl - tile) / half + 1;

  // One task per clip; clips write disjoint core regions of `stitched`, so
  // the fan-out is race-free and deterministic. Each chunk keeps one clip
  // scratch tensor alive across its clips. The GP pass is inference-only
  // here (the stitched result is returned as a constant leaf), so the tape
  // is suppressed per worker.
  auto process_clips = [&](int64_t c0, int64_t c1) {
    ag::NoGradGuard no_grad;
    DOINN_TRACE_SCOPE("large_tile.clips", "large_tile", "first", c0, "count",
                      c1 - c0);
    Tensor clip({1, 1, tile, tile});
    for (int64_t idx = c0; idx < c1; ++idx) {
      const int64_t i = idx / cols, j = idx % cols;
      // Extract the half-overlapped clip.
      const int64_t y0 = i * half, x0 = j * half;
      for (int64_t r = 0; r < tile; ++r) {
        const float* src = mask.data() + (y0 + r) * wl + x0;
        float* dst = clip.data() + r * tile;
        std::copy(src, src + tile, dst);
      }
      const Tensor f =
          gp_clip_fn_
              ? gp_clip_fn_(clip)
              : model_.gp_features(ag::Variable(clip.clone(), false)).value();

      // Core region of this clip in feature space: the central half, except
      // clips on the boundary also own their outer margin.
      const int64_t ca0 = (i == 0) ? 0 : fquart;
      const int64_t ca1 = (i == rows - 1) ? ft : fquart + fhalf;
      const int64_t cb0 = (j == 0) ? 0 : fquart;
      const int64_t cb1 = (j == cols - 1) ? ft : fquart + fhalf;
      for (int64_t c = 0; c < cfg.gp_channels; ++c) {
        for (int64_t r = ca0; r < ca1; ++r) {
          const float* src = f.data() + (c * ft + r) * ft;
          float* dst =
              stitched.data() + (c * fh + i * fhalf + r) * fw + j * fhalf;
          for (int64_t cc = cb0; cc < cb1; ++cc) dst[cc] = src[cc];
        }
      }
    }
  };
  {
    DOINN_TRACE_SCOPE("large_tile.gp_fanout", "large_tile", "clips",
                      rows * cols);
    if (pool != nullptr) {
      pool->parallel_for(rows * cols, process_clips);
    } else {
      process_clips(0, rows * cols);
    }
  }
  return ag::Variable(stitched, false);
}

Tensor LargeTilePredictor::predict(const Tensor& mask,
                                   runtime::ThreadPool* pool) const {
  // Only flip to eval mode when needed: the write is not thread-safe, and
  // concurrent engine predictions share an already-eval model.
  if (model_.training()) model_.set_training(false);
  ag::Variable gp = stitched_gp(mask, pool);
  DOINN_TRACE_SCOPE("large_tile.lp_ir", "large_tile", "h", mask.size(0), "w",
                    mask.size(1));
  Tensor x = mask.clone().reshape({1, 1, mask.size(0), mask.size(1)});
  ag::Variable out = model_.forward_from_gp(gp, ag::Variable(x, false));
  return out.value().clone().reshape({mask.size(0), mask.size(1)});
}

Tensor LargeTilePredictor::predict_plain(const Tensor& mask) const {
  if (model_.training()) model_.set_training(false);
  Tensor x = mask.clone().reshape({1, 1, mask.size(0), mask.size(1)});
  ag::Variable out = model_.forward(ag::Variable(x, false));
  return out.value().clone().reshape({mask.size(0), mask.size(1)});
}

}  // namespace litho::core
