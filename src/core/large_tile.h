// Large-tile simulation scheme (paper Section 3.2, eqs. (12)-(14)).
//
// A DOINN trained on H x W tiles degrades on s-times-larger inputs because
// the Fourier Unit weights were trained for the k lowest modes of the small
// tile. The scheme cuts the large mask into training-size clips with HALF
// overlap, runs the GP path per clip, stitches the CORE region of each
// clip's feature map back into a large feature grid, and runs the (fully
// convolutional) LP + IR paths on the full tile.
#pragma once

#include "core/doinn.h"

namespace litho::core {

/// Runs DOINN inference on masks larger than the training tile.
class LargeTilePredictor {
 public:
  explicit LargeTilePredictor(Doinn& model);

  /// Large-tile prediction with the stitching scheme ("DOINN-LT").
  /// @p mask is a 2-D raster whose side is a multiple of tile/2 and at
  /// least tile. Returns the tanh output map (same size).
  Tensor predict(const Tensor& mask) const;

  /// Plain prediction: feeds the whole tile through the default pipeline
  /// ("DOINN" row of Table 4, the degraded baseline).
  Tensor predict_plain(const Tensor& mask) const;

  /// Stitched GP features for a large mask: [1, C, H/8, W/8].
  ag::Variable stitched_gp(const Tensor& mask) const;

 private:
  Doinn& model_;
};

}  // namespace litho::core
