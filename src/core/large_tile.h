// Large-tile simulation scheme (paper Section 3.2, eqs. (12)-(14)).
//
// A DOINN trained on H x W tiles degrades on s-times-larger inputs because
// the Fourier Unit weights were trained for the k lowest modes of the small
// tile. The scheme cuts the large mask into training-size clips with HALF
// overlap, runs the GP path per clip, stitches the CORE region of each
// clip's feature map back into a large feature grid, and runs the (fully
// convolutional) LP + IR paths on the full tile.
//
// The per-clip GP passes are embarrassingly parallel: every clip reads the
// shared (eval-mode, hence immutable) model and writes a disjoint core
// region of the stitched grid. Passing a runtime::ThreadPool fans them out
// across workers, each with its own clip scratch buffer; the result is
// bitwise identical to the serial path for any thread count.
#pragma once

#include <functional>

#include "core/doinn.h"
#include "runtime/thread_pool.h"

namespace litho::core {

/// Runs DOINN inference on masks larger than the training tile.
class LargeTilePredictor {
 public:
  explicit LargeTilePredictor(Doinn& model);

  /// Optional override for the per-clip GP pass of stitched_gp: called with
  /// one [1, 1, tile, tile] clip raster (the buffer is reused across clips —
  /// implementations must copy, not alias) and must return the clip's
  /// [1, gp_channels, tile/pool, tile/pool] feature map, bitwise identical
  /// to model.gp_features on the same clip. The inference engine installs an
  /// executor-backed fn here so the clip fan-out replays the per-shape
  /// compiled plan instead of re-walking the op graph clip by clip.
  using GpClipFn = std::function<Tensor(const Tensor& clip)>;
  void set_gp_clip_fn(GpClipFn fn) { gp_clip_fn_ = std::move(fn); }

  /// Large-tile prediction with the stitching scheme ("DOINN-LT").
  /// @p mask is a 2-D raster whose side is a multiple of tile/2 and at
  /// least tile. Returns the tanh output map (same size). With @p pool the
  /// per-clip GP passes run in parallel.
  Tensor predict(const Tensor& mask, runtime::ThreadPool* pool = nullptr) const;

  /// Plain prediction: feeds the whole tile through the default pipeline
  /// ("DOINN" row of Table 4, the degraded baseline).
  Tensor predict_plain(const Tensor& mask) const;

  /// Stitched GP features for a large mask: [1, C, H/8, W/8]. With @p pool
  /// the half-overlap clips are processed concurrently.
  ag::Variable stitched_gp(const Tensor& mask,
                           runtime::ThreadPool* pool = nullptr) const;

 private:
  Doinn& model_;
  GpClipFn gp_clip_fn_;
};

}  // namespace litho::core
