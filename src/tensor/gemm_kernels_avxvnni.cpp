// AVX-VNNI instantiation of the micro-kernels. The only body-level change
// versus the AVX2 TU is the int8 hot loop: one vpdpbusd contracts a whole
// u8 x s8 k-quad where the plain AVX2 body needs a widen plus two vpmaddwd
// partial sums — same exact int32 totals, a quarter of the ALU uops — so
// only the quant table from this TU is worth dispatching (the fp32/bf16
// kernels here are byte-for-byte the AVX2 ones). CMake adds -mavx2
// -mavxvnni when the compiler knows the flag; otherwise this TU duplicates
// whatever ISA the default flags give and the dispatcher's
// compiler-version guard never selects it.
#define DOINN_KERNEL_NS avxvnni
#include "tensor/gemm_kernels_body.inc"
#undef DOINN_KERNEL_NS

namespace litho::detail {

const QuantKernelTable& avxvnni_quant_kernels() {
  static const QuantKernelTable t = avxvnni::make_quant_table();
  return t;
}

}  // namespace litho::detail
