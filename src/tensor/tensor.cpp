#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace litho {

int64_t numel_of(const Shape& shape) {
  int64_t n = 1;
  for (int64_t e : shape) {
    if (e < 0) throw std::invalid_argument("negative extent in shape");
    n *= e;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor() : data_(std::make_shared<std::vector<float>>()), numel_(0) {}

Tensor::Tensor(Shape shape)
    : data_(std::make_shared<std::vector<float>>(
          static_cast<size_t>(numel_of(shape)), 0.f)),
      shape_(std::move(shape)),
      numel_(numel_of(shape_)) {}

Tensor::Tensor(Shape shape, float value)
    : data_(std::make_shared<std::vector<float>>(
          static_cast<size_t>(numel_of(shape)), value)),
      shape_(std::move(shape)),
      numel_(numel_of(shape_)) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : data_(std::make_shared<std::vector<float>>(std::move(values))),
      shape_(std::move(shape)),
      numel_(numel_of(shape_)) {
  if (static_cast<int64_t>(data_->size()) != numel_) {
    throw std::invalid_argument("value count " + std::to_string(data_->size()) +
                                " does not match shape " +
                                shape_to_string(shape_));
  }
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }
Tensor Tensor::ones(Shape shape) { return Tensor(std::move(shape), 1.f); }
Tensor Tensor::full(Shape shape, float value) {
  return Tensor(std::move(shape), value);
}

Tensor Tensor::rand(Shape shape, std::mt19937& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  std::uniform_real_distribution<float> dist(lo, hi);
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = dist(rng);
  return t;
}

Tensor Tensor::randn(Shape shape, std::mt19937& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  std::normal_distribution<float> dist(mean, stddev);
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = dist(rng);
  return t;
}

Tensor Tensor::arange(int64_t n) {
  Tensor t({n});
  for (int64_t i = 0; i < n; ++i) t[i] = static_cast<float>(i);
  return t;
}

int64_t Tensor::size(int64_t d) const {
  const int64_t nd = dim();
  if (d < 0) d += nd;
  if (d < 0 || d >= nd) {
    throw std::out_of_range("dimension " + std::to_string(d) +
                            " out of range for shape " +
                            shape_to_string(shape_));
  }
  return shape_[static_cast<size_t>(d)];
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  const auto flat = const_cast<const Tensor*>(this)->at(idx);
  (void)flat;
  // Recompute flat index (cheap; keeps one implementation path).
  int64_t f = 0;
  auto it = idx.begin();
  for (size_t d = 0; d < shape_.size(); ++d, ++it) f = f * shape_[d] + *it;
  return (*data_)[static_cast<size_t>(f)];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  if (static_cast<int64_t>(idx.size()) != dim()) {
    throw std::invalid_argument("index rank does not match tensor rank");
  }
  int64_t f = 0;
  auto it = idx.begin();
  for (size_t d = 0; d < shape_.size(); ++d, ++it) {
    if (*it < 0 || *it >= shape_[d]) {
      throw std::out_of_range("index out of range in dim " + std::to_string(d));
    }
    f = f * shape_[d] + *it;
  }
  return (*data_)[static_cast<size_t>(f)];
}

Tensor Tensor::reshape(Shape new_shape) const {
  if (numel_of(new_shape) != numel_) {
    throw std::invalid_argument("reshape from " + shape_to_string(shape_) +
                                " to " + shape_to_string(new_shape) +
                                " changes element count");
  }
  Tensor t;
  t.data_ = data_;
  t.shape_ = std::move(new_shape);
  t.numel_ = numel_;
  return t;
}

Tensor Tensor::clone() const {
  Tensor t;
  t.data_ = std::make_shared<std::vector<float>>(*data_);
  t.shape_ = shape_;
  t.numel_ = numel_;
  return t;
}

Tensor Tensor::transpose2d() const {
  if (dim() != 2) throw std::invalid_argument("transpose2d requires 2-D");
  const int64_t r = shape_[0], c = shape_[1];
  Tensor out({c, r});
  const float* src = data();
  float* dst = out.data();
  for (int64_t i = 0; i < r; ++i)
    for (int64_t j = 0; j < c; ++j) dst[j * r + i] = src[i * c + j];
  return out;
}

Tensor Tensor::concat(const std::vector<Tensor>& parts, int64_t dim) {
  if (parts.empty()) throw std::invalid_argument("concat of zero tensors");
  const int64_t nd = parts[0].dim();
  if (dim < 0) dim += nd;
  if (dim < 0 || dim >= nd) throw std::out_of_range("concat dim out of range");
  Shape out_shape = parts[0].shape();
  int64_t total = 0;
  for (const Tensor& p : parts) {
    if (p.dim() != nd) throw std::invalid_argument("concat rank mismatch");
    for (int64_t d = 0; d < nd; ++d) {
      if (d != dim && p.size(d) != parts[0].size(d)) {
        throw std::invalid_argument("concat extent mismatch in dim " +
                                    std::to_string(d));
      }
    }
    total += p.size(dim);
  }
  out_shape[static_cast<size_t>(dim)] = total;
  Tensor out(out_shape);

  // outer = product of dims before `dim`; inner = product after.
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < dim; ++d) outer *= out_shape[static_cast<size_t>(d)];
  for (int64_t d = dim + 1; d < nd; ++d)
    inner *= out_shape[static_cast<size_t>(d)];

  float* dst = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    int64_t written = 0;
    for (const Tensor& p : parts) {
      const int64_t len = p.size(dim) * inner;
      const float* src = p.data() + o * len;
      std::copy(src, src + len, dst + (o * total + written) * inner);
      written += p.size(dim);
    }
  }
  return out;
}

Tensor Tensor::narrow(int64_t dim, int64_t start, int64_t length) const {
  const int64_t nd = this->dim();
  if (dim < 0) dim += nd;
  if (dim < 0 || dim >= nd) throw std::out_of_range("narrow dim out of range");
  if (start < 0 || length < 0 || start + length > size(dim)) {
    throw std::out_of_range("narrow range out of bounds");
  }
  Shape out_shape = shape_;
  out_shape[static_cast<size_t>(dim)] = length;
  Tensor out(out_shape);

  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < dim; ++d) outer *= shape_[static_cast<size_t>(d)];
  for (int64_t d = dim + 1; d < nd; ++d) inner *= shape_[static_cast<size_t>(d)];
  const int64_t full = size(dim);

  const float* src = data();
  float* dst = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    std::copy(src + (o * full + start) * inner,
              src + (o * full + start + length) * inner,
              dst + o * length * inner);
  }
  return out;
}

void Tensor::fill(float value) {
  std::fill(data_->begin(), data_->end(), value);
}

void Tensor::add_(const Tensor& other) {
  if (!same_shape(other)) {
    throw std::invalid_argument("add_ shape mismatch: " +
                                shape_to_string(shape_) + " vs " +
                                shape_to_string(other.shape_));
  }
  float* a = data();
  const float* b = other.data();
  for (int64_t i = 0; i < numel_; ++i) a[i] += b[i];
}

void Tensor::add_scaled_(const Tensor& other, float alpha) {
  if (!same_shape(other)) throw std::invalid_argument("add_scaled_ mismatch");
  float* a = data();
  const float* b = other.data();
  for (int64_t i = 0; i < numel_; ++i) a[i] += alpha * b[i];
}

void Tensor::mul_(float scalar) {
  for (float& v : *data_) v *= scalar;
}

void Tensor::apply_(const std::function<float(float)>& fn) {
  for (float& v : *data_) v = fn(v);
}

Tensor Tensor::add(const Tensor& other) const {
  Tensor out = clone();
  out.add_(other);
  return out;
}

Tensor Tensor::sub(const Tensor& other) const {
  Tensor out = clone();
  out.add_scaled_(other, -1.f);
  return out;
}

Tensor Tensor::mul(const Tensor& other) const {
  if (!same_shape(other)) throw std::invalid_argument("mul shape mismatch");
  Tensor out = clone();
  float* a = out.data();
  const float* b = other.data();
  for (int64_t i = 0; i < numel_; ++i) a[i] *= b[i];
  return out;
}

Tensor Tensor::mul(float scalar) const {
  Tensor out = clone();
  out.mul_(scalar);
  return out;
}

Tensor Tensor::map(const std::function<float(float)>& fn) const {
  Tensor out = clone();
  out.apply_(fn);
  return out;
}

float Tensor::sum() const {
  // Kahan summation: training statistics stay stable over large tensors.
  double acc = 0.0;
  for (const float v : *data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  return numel_ == 0 ? 0.f : sum() / static_cast<float>(numel_);
}

float Tensor::max() const {
  if (numel_ == 0) return 0.f;
  return *std::max_element(data_->begin(), data_->end());
}

float Tensor::min() const {
  if (numel_ == 0) return 0.f;
  return *std::min_element(data_->begin(), data_->end());
}

float Tensor::abs_max() const {
  float m = 0.f;
  for (const float v : *data_) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace litho
