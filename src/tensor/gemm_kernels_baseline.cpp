// Baseline-ISA instantiation of the GEMM micro-kernel plus the runtime
// dispatcher (see gemm_kernels.h).
#define DOINN_KERNEL_NS baseline
#include "tensor/gemm_kernels_body.inc"
#undef DOINN_KERNEL_NS

namespace litho::detail {
namespace {

const MicroKernelTable& resolve() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2")) return avx2_kernels();
#endif
  return baseline_kernels();
}

}  // namespace

const MicroKernelTable& baseline_kernels() {
  static const MicroKernelTable t = baseline::make_table();
  return t;
}

const MicroKernelTable& micro_kernels() {
  static const MicroKernelTable& t = resolve();
  return t;
}

}  // namespace litho::detail
