// Baseline-ISA instantiation of the GEMM micro-kernel plus the runtime
// dispatcher (see gemm_kernels.h).
#define DOINN_KERNEL_NS baseline
#include "tensor/gemm_kernels_body.inc"
#undef DOINN_KERNEL_NS

namespace litho::detail {
namespace {

const MicroKernelTable& resolve() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2")) return avx2_kernels();
#endif
  return baseline_kernels();
}

const QuantKernelTable& resolve_quant() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // The avxvnni probe needs a compiler new enough to know the feature name
  // (GCC 11 / Clang 12, the same versions that accept -mavxvnni, so the
  // guard and the TU's build flags stay in lockstep).
#if (defined(__clang__) && __clang_major__ >= 12) || \
    (!defined(__clang__) && defined(__GNUC__) && __GNUC__ >= 11)
  if (__builtin_cpu_supports("avxvnni")) return avxvnni_quant_kernels();
#endif
  if (__builtin_cpu_supports("avx2")) return avx2_quant_kernels();
#endif
  return baseline_quant_kernels();
}

}  // namespace

const MicroKernelTable& baseline_kernels() {
  static const MicroKernelTable t = baseline::make_table();
  return t;
}

const MicroKernelTable& micro_kernels() {
  static const MicroKernelTable& t = resolve();
  return t;
}

const QuantKernelTable& baseline_quant_kernels() {
  static const QuantKernelTable t = baseline::make_quant_table();
  return t;
}

const QuantKernelTable& quant_kernels() {
  static const QuantKernelTable& t = resolve_quant();
  return t;
}

}  // namespace litho::detail
