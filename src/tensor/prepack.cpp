#include "tensor/prepack.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "runtime/trace.h"
#include "runtime/workspace.h"
#include "tensor/gemm_kernels.h"

namespace litho {
namespace {

constexpr int64_t MR = kGemmMR;
constexpr int64_t NR = kGemmNR;

int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kInt8:
      return "int8";
    case Precision::kBf16:
      return "bf16";
  }
  return "fp32";
}

Precision parse_precision(const std::string& name) {
  if (name == "fp32") return Precision::kFp32;
  if (name == "int8") return Precision::kInt8;
  if (name == "bf16") return Precision::kBf16;
  throw std::invalid_argument("unknown precision '" + name +
                              "' (expected fp32, int8 or bf16)");
}

uint16_t fp32_to_bf16(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  if ((bits & 0x7fffffffu) > 0x7f800000u) {
    // NaN: keep the sign, force a quiet payload that survives truncation.
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);
  }
  const uint32_t lsb = (bits >> 16) & 1u;
  bits += 0x7fffu + lsb;  // round to nearest, ties to even
  return static_cast<uint16_t>(bits >> 16);
}

float bf16_to_fp32(uint16_t v) {
  const uint32_t bits = static_cast<uint32_t>(v) << 16;
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

float max_abs(const float* v, int64_t n) {
  float m = 0.f;
  for (int64_t i = 0; i < n; ++i) {
    const float a = std::fabs(v[i]);
    if (a > m) m = a;
  }
  return m;
}

namespace {
// Running total for PackedWeight::total_allocated_bytes(): monotone so a
// reader never sees a transient dip while an engine rebuilds a pack.
std::atomic<int64_t> g_packed_weight_bytes{0};
}  // namespace

int64_t PackedWeight::total_allocated_bytes() {
  return g_packed_weight_bytes.load(std::memory_order_relaxed);
}

PackedWeight::PackedWeight(GemmLayout layout, const float* a, int64_t m,
                           int64_t k, Precision precision)
    : precision_(precision), m_(std::max<int64_t>(m, 0)), k_(std::max<int64_t>(k, 0)) {
  // Every exit path (fp32 / bf16 / int8) lands the final buffer sizes in
  // the process-wide byte counter via this scope guard.
  struct BytesGuard {
    const PackedWeight& w;
    ~BytesGuard() {
      g_packed_weight_bytes.fetch_add(
          static_cast<int64_t>(w.f32_.capacity() * sizeof(float) +
                               w.bf16_.capacity() * sizeof(uint16_t) +
                               w.i8_.capacity() * sizeof(int8_t) +
                               w.rowsum_.capacity() * sizeof(int32_t) +
                               w.scales_.capacity() * sizeof(float)),
          std::memory_order_relaxed);
    }
  } bytes_guard{*this};
  const int64_t tiles = ceil_div(std::max<int64_t>(m_, 1), MR);
  const int64_t panel_floats = tiles * MR * std::max<int64_t>(k_, 1);
  if (precision_ == Precision::kFp32) {
    f32_.resize(static_cast<size_t>(panel_floats), 0.f);
    if (m_ > 0 && k_ > 0) {
      detail::pack_a_panels(layout, a, m_, k_, 0, m_, 0, k_, f32_.data());
    }
    return;
  }
  // Reduced precision: pack the exact fp32 panels into pooled scratch
  // first, then convert — the panel walk is identical to the fp32 mode, so
  // every quantized value derives from the same packed layout.
  runtime::FloatWorkspace tmp(static_cast<size_t>(panel_floats));
  std::fill(tmp.data(), tmp.data() + panel_floats, 0.f);
  if (m_ > 0 && k_ > 0) {
    detail::pack_a_panels(layout, a, m_, k_, 0, m_, 0, k_, tmp.data());
  }
  if (precision_ == Precision::kBf16) {
    bf16_.resize(static_cast<size_t>(panel_floats));
    for (int64_t i = 0; i < panel_floats; ++i) {
      bf16_[static_cast<size_t>(i)] = fp32_to_bf16(tmp.data()[i]);
    }
    return;
  }
  // kInt8: symmetric per-output-row quantization (zero-point 0). All-zero
  // rows get scale 0 and quantize to 0. Rounding is nearest-even — the same
  // mode the on-the-fly B quantizer uses. K is capped by the int32
  // accumulator budget of the micro-kernel (see QuantKernelTable).
  if (k_ > (int64_t{1} << 16)) {
    throw std::invalid_argument(
        "int8 prepacking supports K extents up to 2^16");
  }
  const int64_t kquads = k_quads();
  scales_.assign(static_cast<size_t>(m_), 0.f);
  rowsum_.assign(static_cast<size_t>(m_), 0);
  i8_.assign(static_cast<size_t>(std::max<int64_t>(tiles * kquads * MR * 4,
                                                   1)),
             0);
  for (int64_t i = 0; i < m_; ++i) {
    const int64_t t = i / MR;
    const int64_t r = i % MR;
    const float* panel = tmp.data() + t * k_ * MR;
    float mx = 0.f;
    for (int64_t kk = 0; kk < k_; ++kk) {
      const float v = std::fabs(panel[kk * MR + r]);
      if (v > mx) mx = v;
    }
    scales_[static_cast<size_t>(i)] = mx / 127.f;
    const float inv = mx > 0.f ? 127.f / mx : 0.f;
    int8_t* dst = i8_.data() + t * kquads * MR * 4;
    int32_t sum = 0;
    for (int64_t kk = 0; kk < k_; ++kk) {
      int32_t q = static_cast<int32_t>(
          std::lrintf(panel[kk * MR + r] * inv));
      q = std::min<int32_t>(127, std::max<int32_t>(-127, q));
      sum += q;
      dst[(kk / 4) * MR * 4 + r * 4 + (kk % 4)] = static_cast<int8_t>(q);
    }
    rowsum_[static_cast<size_t>(i)] = sum;
  }
}

void gemm_col_block_i8(const PackedWeight& a, const BPanelPacker& bp,
                       float inv_b_scale, const float* combined_scales,
                       int64_t n, int64_t block, float* c, const float* bias,
                       const GemmEpilogue& ep) {
  const detail::QuantKernelTable& kern = detail::quant_kernels();
  const int64_t m = a.m(), k = a.k();
  const int64_t nc = ep.nc > 0 ? ep.nc : kGemmNC;
  const int64_t j0 = block * nc;
  const int64_t j1 = std::min(j0 + nc, n);
  if (m <= 0 || j0 >= j1) return;
  DOINN_TRACE_SCOPE("gemm.col_block_i8", "gemm", "m", m, "k", k, "cols",
                    j1 - j0);
  if (k <= 0) {
    for (int64_t i = 0; i < m; ++i) {
      const float v = bias ? bias[i] : 0.f;
      for (int64_t j = j0; j < j1; ++j) c[i * n + j] = v;
    }
    apply_gemm_post(ep, c, n, m, j0, j1);
    return;
  }
  const int64_t mtiles = ceil_div(m, MR);
  // Two j-tiles at a time, K in kKC chunks: each chunk's quantized pair of
  // B panels (u8 k-quads, see QuantKernelTable) fits L1 and stays hot
  // across the whole m extent, while partial sums park per m-tile in int32
  // scratch — integer addition is exact, so the chunked schedule produces
  // the same sums as one full-K pass. The write-back removes the +128
  // activation shift (128 * weight row sum, integer) and converts once per
  // element, handling ragged edges by skipping padded lanes. Padded B
  // columns quantize to the zero-point 128, whose contribution the shift
  // correction cancels exactly, so full tiles are always safe to compute.
  const int64_t ckq = kGemmKC / 4;  // k-quads per full chunk (4 | kKC)
  runtime::FloatWorkspace fws(static_cast<size_t>(kGemmKC * NR));
  runtime::Int8Workspace bq(static_cast<size_t>(2 * ckq * 32));
  uint8_t* bq8 = reinterpret_cast<uint8_t*>(bq.data());
  runtime::Int8Workspace parkws(static_cast<size_t>(
      mtiles * MR * 2 * NR * static_cast<int64_t>(sizeof(int32_t))));
  int32_t* park = reinterpret_cast<int32_t*>(parkws.data());
  const int64_t jt_count = ceil_div(j1 - j0, NR);
  for (int64_t t = 0; t < jt_count; t += 2) {
    const int64_t pair = std::min<int64_t>(2, jt_count - t);
    const int64_t c0 = j0 + t * NR;
    int64_t nr[2] = {0, 0};
    for (int64_t u = 0; u < pair; ++u) {
      nr[u] = std::min(NR, j1 - (c0 + u * NR));
    }
    std::fill(park, park + mtiles * MR * 2 * NR, 0);
    for (int64_t k0 = 0; k0 < k; k0 += kGemmKC) {
      const int64_t klen = std::min(kGemmKC, k - k0);
      const int64_t kq = (klen + 3) / 4;
      for (int64_t u = 0; u < pair; ++u) {
        const int64_t cu = c0 + u * NR;
        bp.pack(k0, k0 + klen, cu, cu + nr[u], fws.data());
        // 4 divides kKC, so every chunk start is quad-aligned; only the
        // final chunk can carry a ragged (zero-point-padded) trailing k.
        kern.i8_quant(fws.data(), klen, inv_b_scale, bq8 + u * kq * 32);
      }
      for (int64_t it = 0; it < mtiles; ++it) {
        const int8_t* apan = a.i8_panel(it) + (k0 / 4) * MR * 4;
        int32_t* acc = park + it * MR * 2 * NR;
        if (pair == 2) {
          kern.i8x2(kq, apan, bq8, acc);
        } else {
          kern.i8(kq, apan, bq8, acc, 2 * NR);
        }
      }
    }
    for (int64_t it = 0; it < mtiles; ++it) {
      const int64_t r0 = it * MR;
      const int64_t mr = std::min(MR, m - r0);
      for (int64_t r = 0; r < mr; ++r) {
        const int64_t i = r0 + r;
        const float s = combined_scales[i];
        const int32_t corr = 128 * a.row_sums()[i];
        const int32_t* arow = park + (it * MR + r) * 2 * NR;
        float* crow = c + i * n + c0;
        for (int64_t u = 0; u < pair; ++u) {
          for (int64_t j = 0; j < nr[u]; ++j) {
            const float v = static_cast<float>(arow[u * NR + j] - corr) * s;
            crow[u * NR + j] = bias ? v + bias[i] : v;
          }
        }
      }
    }
  }
  apply_gemm_post(ep, c, n, m, j0, j1);
}

void gemm_col_block_bf16(const PackedWeight& a, const BPanelPacker& bp,
                         int64_t n, int64_t block, float* c,
                         const GemmEpilogue& ep) {
  const detail::QuantKernelTable& kern = detail::quant_kernels();
  const int64_t m = a.m(), k = a.k();
  const int64_t nc = ep.nc > 0 ? ep.nc : kGemmNC;
  const int64_t j0 = block * nc;
  const int64_t j1 = std::min(j0 + nc, n);
  if (m <= 0 || j0 >= j1) return;
  DOINN_TRACE_SCOPE("gemm.col_block_bf16", "gemm", "m", m, "k", k, "cols",
                    j1 - j0);
  if (k <= 0) {
    if (!ep.accumulate) {
      for (int64_t i = 0; i < m; ++i) {
        const float v = ep.bias ? ep.bias[i] : 0.f;
        for (int64_t j = j0; j < j1; ++j) c[i * n + j] = v;
      }
      apply_gemm_post(ep, c, n, m, j0, j1);
    }
    return;
  }
  const int64_t mtiles = ceil_div(m, MR);
  const int64_t jt_count = ceil_div(j1 - j0, NR);
  runtime::FloatWorkspace fws(static_cast<size_t>(kGemmKC * NR));
  // bf16 panel scratch leased from the byte pool, one j-tile per K step.
  runtime::Int8Workspace bq(
      static_cast<size_t>(kGemmKC * NR * static_cast<int64_t>(sizeof(uint16_t))));
  uint16_t* bpan = reinterpret_cast<uint16_t*>(bq.data());
  // K steps outermost so partials park in C exactly like the fp32 engine:
  // per-element arithmetic is one fp32 running sum in increasing k order.
  for (int64_t k0 = 0; k0 < k; k0 += kGemmKC) {
    const int64_t klen = std::min(kGemmKC, k - k0);
    const bool init = (k0 == 0) && !ep.accumulate;
    const bool last = (k0 + klen == k);
    const float* bias = last ? ep.bias : nullptr;
    for (int64_t t = 0; t < jt_count; ++t) {
      const int64_t c0 = j0 + t * NR;
      const int64_t nr = std::min(NR, j1 - c0);
      bp.pack(k0, k0 + klen, c0, c0 + nr, fws.data());
      for (int64_t i = 0; i < klen * NR; ++i) {
        bpan[i] = fp32_to_bf16(fws.data()[i]);
      }
      for (int64_t it = 0; it < mtiles; ++it) {
        const int64_t r0 = it * MR;
        const int64_t mr = std::min(MR, m - r0);
        float* ct = c + r0 * n + c0;
        const float* brow = bias ? bias + r0 : nullptr;
        if (mr == MR && nr == NR) {
          kern.bf16(klen, a.bf16_panel(it, k0), bpan, ct, n, init, brow);
        } else {
          kern.bf16_edge(klen, a.bf16_panel(it, k0), bpan, ct, n, mr, nr,
                         init, brow);
        }
      }
    }
  }
  apply_gemm_post(ep, c, n, m, j0, j1);
}

}  // namespace litho
