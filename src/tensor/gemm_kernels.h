// Internal micro-kernel dispatch table for the packed GEMM engine.
//
// The register micro-kernel is the only part of the engine whose speed
// depends on vector width, so its one templated body
// (gemm_kernels_body.inc) is compiled twice: once at the portable baseline
// (SSE2 on x86-64) and once with AVX2 enabled — but NOT FMA. That matters:
// 8-wide vmulps/vaddps round each lane exactly like their scalar/SSE
// counterparts, so the AVX2 table produces bitwise-identical results and
// only changes throughput; a fused multiply-add would round differently
// and break the engine's "bitwise identical to the seed kernels" contract.
// micro_kernels() picks the widest table the running CPU supports, once.
#pragma once

#include <cstdint>

namespace litho::detail {

struct MicroKernelTable {
  // Full MR x NR tile: C directly read/written with row stride ldc.
  using Fn = void (*)(int64_t klen, const float* ap, const float* bp,
                      int64_t bstride, float* c, int64_t ldc, bool init,
                      const float* bias);
  // Ragged tile: only the mr x nr valid sub-block of C is touched.
  using EdgeFn = void (*)(int64_t klen, const float* ap, const float* bp,
                          int64_t bstride, float* c, int64_t ldc, int64_t mr,
                          int64_t nr, bool init, const float* bias);
  // Paired tile: MR x 2*NR from two adjacent B micro-panels — wide-ISA
  // tables only (the register tile would spill at baseline width). Each
  // half accumulates independently in k order, so results stay bitwise
  // identical to two single-tile calls.
  using PairFn = void (*)(int64_t klen, const float* ap, const float* b0,
                          const float* b1, int64_t bstride, float* c,
                          int64_t ldc, bool init, const float* bias);
  // Fused pack+compute: like PairFn, but B is read from its strided source
  // and each loaded row is also stored to the packed panels pack0/pack1 for
  // the remaining row tiles — the separate packing pass (and its second
  // walk of B) disappears.
  using PairPackFn = void (*)(int64_t klen, const float* ap, const float* b0,
                              const float* b1, int64_t bstride, float* pack0,
                              float* pack1, float* c, int64_t ldc, bool init,
                              const float* bias);
  Fn add = nullptr;        // C (+)= A·B
  Fn sub = nullptr;        // C -= A·B
  EdgeFn add_edge = nullptr;
  EdgeFn sub_edge = nullptr;
  PairFn add_pair = nullptr;
  PairFn sub_pair = nullptr;
  PairPackFn add_pair_pack = nullptr;
};

// Reduced-precision micro-kernels for the prepacked inference path
// (tensor/prepack.h). The int8 kernels contract signed weight k-quads
// against unsigned (+128-shifted) activation k-quads in int32 — integer
// arithmetic is exact, so every ISA instantiation produces identical
// accumulators and the fp32 dequantization on write-back is one mul + one
// add per element. The
// bf16 kernels widen both operands to fp32 and accumulate exactly like the
// fp32 kernels (strictly increasing k, no fusion), so the bf16 mode keeps
// the engine's thread-count determinism.
struct QuantKernelTable {
  // One MR x NR int8 tile over one K chunk (kquads packed k-quads):
  // acc[r*ldacc + j] += SUM_k a(r,k) * bu(k,j), exact in int32, where `ap`
  // holds kquads x MR x 4 signed weight bytes (one int32-sized broadcast
  // unit per row and quad) and `bp` kquads x NR x 4 activation bytes
  // quantized UNSIGNED as q+128 — the u8 x s8 layout vpdpbusd consumes
  // directly, contracting four k per instruction. The +128 shift adds
  // exactly 128 * sum_k a(r,k) to every output lane; the caller removes it
  // in the write-back using the weight row sums PackedWeight records
  // (integer arithmetic end to end, so the shift round-trips bit-exactly).
  // Callers chunk K so the active B panels stay L1-resident and park
  // partial sums in int32 between chunks — integer addition is
  // associative-exact, so chunking (or any schedule) gives identical sums.
  // The fp32 dequantization C = float(acc - 128*rowsum) * scale (+ bias)
  // happens once in the caller's write-back pass, which also handles ragged
  // edges (padded A rows contribute zero, and padded B lanes quantize to
  // the bias value 128 that the rowsum correction cancels exactly, so full
  // tiles are always safe to compute). |acc| <= K * 255 * 127 keeps K up to
  // 2^16 inside the int32 budget — far above any conv CKK in the stack.
  using I8Fn = void (*)(int64_t kquads, const int8_t* ap, const uint8_t* bp,
                        int32_t* acc, int64_t ldacc);
  // Two adjacent j-tiles in one pass over A: acc is MR x 16 row-major, with
  // the second tile's B panel at bp + kquads*32 (panels packed back to
  // back). Exactly the arithmetic of two i8 calls — int32 sums are exact,
  // so pairing (which only reuses the A broadcasts) cannot change a bit.
  using I8PairFn = void (*)(int64_t kquads, const int8_t* ap,
                            const uint8_t* bp, int32_t* acc);
  // Quantizes one packed float panel (klen x kGemmNR, k-major) into
  // ceil(klen/4) k-quads of unsigned bytes in the I8Fn B layout:
  // dst[(k/4)*32 + j*4 + k%4] = rne(v * inv_scale) + 128 (the shift keeps
  // the value in [1, 255]; inv_scale = 127/max|B| bounds the rounded
  // magnitude by 127, so nothing clips). Trailing k up to the quad boundary
  // pads with the zero-point 128. Both instantiations round identically
  // (cvtps2dq / lrintf under the default RNE mode), so the packed values do
  // not depend on the dispatched table.
  using I8QuantFn = void (*)(const float* src, int64_t klen, float inv_scale,
                             uint8_t* dst);
  // Full MR x NR bf16 tile, fp32 accumulation, same init/park-in-C protocol
  // as the fp32 kernels. `ap` is a bf16 PackedA-layout panel, `bp` a packed
  // klen x NR bf16 panel.
  using Bf16Fn = void (*)(int64_t klen, const uint16_t* ap,
                          const uint16_t* bp, float* c, int64_t ldc,
                          bool init, const float* bias);
  using Bf16EdgeFn = void (*)(int64_t klen, const uint16_t* ap,
                              const uint16_t* bp, float* c, int64_t ldc,
                              int64_t mr, int64_t nr, bool init,
                              const float* bias);
  I8Fn i8 = nullptr;
  I8PairFn i8x2 = nullptr;
  I8QuantFn i8_quant = nullptr;
  Bf16Fn bf16 = nullptr;
  Bf16EdgeFn bf16_edge = nullptr;
};

/// Baseline-ISA instantiation (always available).
const MicroKernelTable& baseline_kernels();

/// AVX2 (no FMA) instantiation; falls back to the baseline body when the
/// toolchain/target can't build AVX2. Only called after a cpuid check.
const MicroKernelTable& avx2_kernels();

/// The table for this machine, resolved once per process.
const MicroKernelTable& micro_kernels();

/// Reduced-precision tables, same dispatch scheme as the fp32 ones, plus an
/// AVX-VNNI tier: vpdpbusd contracts a whole u8 x s8 k-quad per uop where
/// the plain AVX2 table needs a widen + two vpmaddwd partial sums; all
/// tiers compute identical exact int32 sums, so the dispatch choice changes
/// throughput only, never bits.
const QuantKernelTable& baseline_quant_kernels();
const QuantKernelTable& avx2_quant_kernels();
const QuantKernelTable& avxvnni_quant_kernels();
const QuantKernelTable& quant_kernels();

}  // namespace litho::detail
