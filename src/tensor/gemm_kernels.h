// Internal micro-kernel dispatch table for the packed GEMM engine.
//
// The register micro-kernel is the only part of the engine whose speed
// depends on vector width, so its one templated body
// (gemm_kernels_body.inc) is compiled twice: once at the portable baseline
// (SSE2 on x86-64) and once with AVX2 enabled — but NOT FMA. That matters:
// 8-wide vmulps/vaddps round each lane exactly like their scalar/SSE
// counterparts, so the AVX2 table produces bitwise-identical results and
// only changes throughput; a fused multiply-add would round differently
// and break the engine's "bitwise identical to the seed kernels" contract.
// micro_kernels() picks the widest table the running CPU supports, once.
#pragma once

#include <cstdint>

namespace litho::detail {

struct MicroKernelTable {
  // Full MR x NR tile: C directly read/written with row stride ldc.
  using Fn = void (*)(int64_t klen, const float* ap, const float* bp,
                      int64_t bstride, float* c, int64_t ldc, bool init,
                      const float* bias);
  // Ragged tile: only the mr x nr valid sub-block of C is touched.
  using EdgeFn = void (*)(int64_t klen, const float* ap, const float* bp,
                          int64_t bstride, float* c, int64_t ldc, int64_t mr,
                          int64_t nr, bool init, const float* bias);
  // Paired tile: MR x 2*NR from two adjacent B micro-panels — wide-ISA
  // tables only (the register tile would spill at baseline width). Each
  // half accumulates independently in k order, so results stay bitwise
  // identical to two single-tile calls.
  using PairFn = void (*)(int64_t klen, const float* ap, const float* b0,
                          const float* b1, int64_t bstride, float* c,
                          int64_t ldc, bool init, const float* bias);
  // Fused pack+compute: like PairFn, but B is read from its strided source
  // and each loaded row is also stored to the packed panels pack0/pack1 for
  // the remaining row tiles — the separate packing pass (and its second
  // walk of B) disappears.
  using PairPackFn = void (*)(int64_t klen, const float* ap, const float* b0,
                              const float* b1, int64_t bstride, float* pack0,
                              float* pack1, float* c, int64_t ldc, bool init,
                              const float* bias);
  Fn add = nullptr;        // C (+)= A·B
  Fn sub = nullptr;        // C -= A·B
  EdgeFn add_edge = nullptr;
  EdgeFn sub_edge = nullptr;
  PairFn add_pair = nullptr;
  PairFn sub_pair = nullptr;
  PairPackFn add_pair_pack = nullptr;
};

/// Baseline-ISA instantiation (always available).
const MicroKernelTable& baseline_kernels();

/// AVX2 (no FMA) instantiation; falls back to the baseline body when the
/// toolchain/target can't build AVX2. Only called after a cpuid check.
const MicroKernelTable& avx2_kernels();

/// The table for this machine, resolved once per process.
const MicroKernelTable& micro_kernels();

}  // namespace litho::detail
