#include "tensor/gemm.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "runtime/thread_pool.h"
#include "runtime/trace.h"
#include "runtime/workspace.h"
#include "tensor/gemm_kernels.h"

namespace litho {
namespace {

constexpr int64_t MR = kGemmMR;
constexpr int64_t NR = kGemmNR;

int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

namespace detail {

void pack_a_panels(GemmLayout layout, const float* a, int64_t m, int64_t k,
                   int64_t i0, int64_t rows, int64_t k0, int64_t klen,
                   float* dst) {
  const int64_t tiles = ceil_div(rows, MR);
  for (int64_t t = 0; t < tiles; ++t) {
    float* p = dst + t * klen * MR;
    const int64_t r0 = i0 + t * MR;
    const int64_t mr = std::min(MR, i0 + rows - r0);
    if (layout == GemmLayout::kTN) {
      // A stored (K x M): A(i,kk) = a[kk*m + i]; rows are contiguous.
      for (int64_t kk = 0; kk < klen; ++kk) {
        const float* src = a + (k0 + kk) * m + r0;
        float* d = p + kk * MR;
        int64_t r = 0;
        for (; r < mr; ++r) d[r] = src[r];
        for (; r < MR; ++r) d[r] = 0.f;
      }
    } else {
      // A stored (M x K): A(i,kk) = a[i*k + kk]; walk each row once.
      for (int64_t r = 0; r < MR; ++r) {
        if (r < mr) {
          const float* src = a + (r0 + r) * k + k0;
          for (int64_t kk = 0; kk < klen; ++kk) p[kk * MR + r] = src[kk];
        } else {
          for (int64_t kk = 0; kk < klen; ++kk) p[kk * MR + r] = 0.f;
        }
      }
    }
  }
}

}  // namespace detail

namespace {

// One column block [block*kNC, ...) of C = op(A)·op(B). Either `pa`
// (pre-packed A panels) or `a_raw` (+layout) must be provided; with raw A,
// panels are packed per (K step, MC stripe) into pooled scratch.
void run_col_block(const PackedPanelsView* pa, GemmLayout layout,
                   const float* a_raw, int64_t m, int64_t k,
                   const BPanelPacker& bp, int64_t n, int64_t block, float* c,
                   const GemmEpilogue& ep) {
  const detail::MicroKernelTable& kern = detail::micro_kernels();
  const int64_t nc = ep.nc > 0 ? ep.nc : kGemmNC;
  const int64_t j0 = block * nc;
  const int64_t j1 = std::min(j0 + nc, n);
  if (m <= 0 || j0 >= j1) return;
  // Coarse pack+compute span per column block; runs on whichever pool
  // worker owns the block, so traces show the GEMM fan-out.
  DOINN_TRACE_SCOPE("gemm.col_block", "gemm", "m", m, "k", k, "cols",
                    j1 - j0);
  if (k <= 0) {
    // beta=0 with an empty contraction: C is the bias (or zero), exactly as
    // the legacy kernels' std::fill produced.
    if (!ep.accumulate) {
      for (int64_t i = 0; i < m; ++i) {
        const float v = ep.bias ? ep.bias[i] : 0.f;
        for (int64_t j = j0; j < j1; ++j) c[i * n + j] = v;
      }
      apply_gemm_post(ep, c, n, m, j0, j1);
    }
    return;
  }

  const int64_t jt_count = ceil_div(j1 - j0, NR);
  // Three ways to feed B to the micro-kernel, picked per operand:
  //  - direct: stream row-contiguous B in place. Worth it only while the K
  //    extent keeps the strided row streams prefetcher-sized (deep K plus a
  //    power-of-two stride aliases the same cache sets on every tile
  //    re-walk), or when each B element is used once anyway (m <= MR).
  //  - fused: strided-viewable B with deep K — the first row tile's kernel
  //    pass reads B from its source and stores the packed panels on the way
  //    past (no separate packing walk); later tiles read the panels.
  //  - packed: everything else (transposed layouts, implicit im2col)
  //    gathers panels through the virtual pack() up front.
  const float* bbase = nullptr;
  int64_t brstride = 0;
  const bool viewable = bp.direct_view(&bbase, &brstride);
  bool direct = viewable && (k <= 64 || m <= MR);
  bool fused =
      !direct && viewable && !ep.subtract && kern.add_pair_pack != nullptr;
  if (ep.bfeed == BFeed::kStream && viewable) {
    direct = true;
    fused = false;
  } else if (ep.bfeed == BFeed::kPack) {
    direct = false;
    fused = false;
  }
  // Tile-wise packing: with kPack forced on a gathered (non-viewable) B and
  // a single MC stripe, each panel is packed into one reused two-panel
  // buffer immediately before the kernels that consume it, so packed B
  // lives in L1 instead of round-tripping a whole NC block through L2.
  // Same gathered values, same kernel order — bitwise identical output;
  // only worth it for the skinny-M im2col GEMMs, so it is autotune-gated
  // (the graph executor's per-shape tuner flips BFeed::kPack on when it
  // measures a win) rather than a default.
  const bool tile_pack = !direct && !fused && !viewable &&
                         ep.bfeed == BFeed::kPack && m <= kGemmMC;
  std::optional<runtime::FloatWorkspace> bws;
  if (!direct) {
    bws.emplace(static_cast<size_t>(
        tile_pack ? 2 * kGemmKC * NR : kGemmKC * jt_count * NR));
  }
  std::optional<runtime::FloatWorkspace> aws;
  if (!pa) {
    const int64_t arows = std::min(kGemmMC, m);
    aws.emplace(static_cast<size_t>(ceil_div(arows, MR) * MR * kGemmKC));
  }
  // Staging for the (at most one) ragged column tile of a direct-view B:
  // reading NR-wide past j1 could run past B's allocation, so that tile is
  // packed with zero padding like the workspace path.
  float bedge[kGemmKC * NR];

  for (int64_t k0 = 0; k0 < k; k0 += kGemmKC) {
    const int64_t klen = std::min(kGemmKC, k - k0);
    const bool init = (k0 == 0) && !ep.accumulate;
    const bool last = (k0 + klen == k);
    const float* bias = last ? ep.bias : nullptr;
    if (!direct && !fused && !tile_pack) {
      bp.pack(k0, k0 + klen, j0, j1, bws->data());
    }
    bool bedge_filled = false;
    for (int64_t i0 = 0; i0 < m; i0 += kGemmMC) {
      const int64_t rows = std::min(kGemmMC, m - i0);
      const float* apanels;
      int64_t panel_stride;  // floats between consecutive m-tiles
      if (pa) {
        apanels = pa->panel(i0 / MR, k0);
        panel_stride = k * MR;
      } else {
        detail::pack_a_panels(layout, a_raw, m, k, i0, rows, k0, klen,
                              aws->data());
        apanels = aws->data();
        panel_stride = klen * MR;
      }
      const int64_t mtiles = ceil_div(rows, MR);
      for (int64_t t = 0; t < jt_count;) {
        const int64_t c0 = j0 + t * NR;
        const int64_t nr = std::min(NR, j1 - c0);
        const float* bpan;
        int64_t bstride;
        if (direct && nr == NR) {
          bpan = bbase + k0 * brstride + c0;
          bstride = brstride;
        } else if (direct) {
          if (!bedge_filled) {
            for (int64_t kk = 0; kk < klen; ++kk) {
              const float* src = bbase + (k0 + kk) * brstride + c0;
              float* d = bedge + kk * NR;
              int64_t j = 0;
              for (; j < nr; ++j) d[j] = src[j];
              for (; j < NR; ++j) d[j] = 0.f;
            }
            bedge_filled = true;
          }
          bpan = bedge;
          bstride = NR;
        } else {
          bpan = bws->data() + (tile_pack ? 0 : t * klen * NR);
          bstride = NR;
        }
        // Fused mode packs lazily: paired full tiles are packed by the
        // first row tile's fused kernel call; leftover tiles fall back to
        // the virtual pack() once per K step (i0 == 0 pass).
        const bool pair = kern.add_pair && nr == NR && t + 1 < jt_count &&
                          j1 - (c0 + NR) >= NR;
        if (tile_pack) {
          // Refill the reused two-panel buffer just before use; the single
          // MC stripe (m <= kGemmMC) means no later row pass rereads it.
          bp.pack(k0, k0 + klen, c0, std::min(c0 + NR, j1),
                  const_cast<float*>(bpan));
          if (pair) {
            bp.pack(k0, k0 + klen, c0 + NR, c0 + 2 * NR,
                    bws->data() + klen * NR);
          }
        }
        if (fused) {
          bpan = bws->data() + t * klen * NR;
          bstride = NR;
          if (!pair && i0 == 0) {
            bp.pack(k0, k0 + klen, c0, std::min(c0 + NR, j1), bws->data() + t * klen * NR);
          }
        }
        const float* bpan1 =
            pair ? (direct ? bpan + NR : bpan + klen * NR) : nullptr;
        for (int64_t it = 0; it < mtiles; ++it) {
          const float* apan = apanels + it * panel_stride;
          const int64_t r0 = i0 + it * MR;
          const int64_t mr = std::min(MR, m - r0);
          float* ct = c + r0 * n + c0;
          const float* brow = bias ? bias + r0 : nullptr;
          if (pair && mr == MR) {
            if (fused && i0 == 0 && it == 0) {
              // m > kGemmMR here (else the direct path), so the first row
              // tile of the first stripe is always a full MR tile: it
              // reads B from the source and fills both panels.
              kern.add_pair_pack(klen, apan, bbase + k0 * brstride + c0,
                                 bbase + k0 * brstride + c0 + NR, brstride,
                                 const_cast<float*>(bpan),
                                 const_cast<float*>(bpan1), ct, n, init, brow);
            } else {
              (ep.subtract ? kern.sub_pair : kern.add_pair)(
                  klen, apan, bpan, bpan1, bstride, ct, n, init, brow);
            }
          } else if (pair) {
            (ep.subtract ? kern.sub_edge : kern.add_edge)(
                klen, apan, bpan, bstride, ct, n, mr, NR, init, brow);
            (ep.subtract ? kern.sub_edge : kern.add_edge)(
                klen, apan, bpan1, bstride, ct + NR, n, mr, NR, init, brow);
          } else if (mr == MR && nr == NR) {
            (ep.subtract ? kern.sub : kern.add)(klen, apan, bpan, bstride, ct,
                                               n, init, brow);
          } else {
            (ep.subtract ? kern.sub_edge : kern.add_edge)(
                klen, apan, bpan, bstride, ct, n, mr, nr, init, brow);
          }
        }
        t += pair ? 2 : 1;
      }
    }
  }
  apply_gemm_post(ep, c, n, m, j0, j1);
}

}  // namespace

void apply_gemm_post(const GemmEpilogue& ep, float* c, int64_t n, int64_t m,
                     int64_t j0, int64_t j1) {
  for (int s = 0; s < ep.post_count; ++s) {
    const EpiloguePostStage& st = ep.post[s];
    switch (st.kind) {
      case EpiloguePostStage::Kind::kBnAffine:
        for (int64_t i = 0; i < m; ++i) {
          const float mu = st.mu[i];
          const float is = st.inv_std[i];
          const float ga = st.gamma[i];
          const float be = st.beta[i];
          float* row = c + i * n;
          for (int64_t j = j0; j < j1; ++j) {
            const float xh = (row[j] - mu) * is;
            row[j] = ga * xh + be;
          }
        }
        break;
      case EpiloguePostStage::Kind::kLeaky:
        for (int64_t i = 0; i < m; ++i) {
          float* row = c + i * n;
          for (int64_t j = j0; j < j1; ++j) {
            if (row[j] < 0.f) row[j] *= st.slope;
          }
        }
        break;
      case EpiloguePostStage::Kind::kTanh:
        for (int64_t i = 0; i < m; ++i) {
          float* row = c + i * n;
          for (int64_t j = j0; j < j1; ++j) row[j] = std::tanh(row[j]);
        }
        break;
    }
  }
}

void StridedBPacker::pack(int64_t k0, int64_t k1, int64_t j0, int64_t j1,
                          float* dst) const {
  const int64_t klen = k1 - k0;
  const int64_t jt_count = ceil_div(j1 - j0, NR);
  for (int64_t t = 0; t < jt_count; ++t) {
    float* __restrict p = dst + t * klen * NR;
    const int64_t c0 = j0 + t * NR;
    const int64_t nr = std::min(NR, j1 - c0);
    if (!transposed_) {
      // B stored (K x N): rows are contiguous runs; the block's rows stay
      // cached across panels, so later panels of the same rows hit L1/L2.
      // The row walk is strided (ld_ apart), so prefetch a few rows ahead —
      // the first panel of each block is otherwise latency-bound.
      for (int64_t kk = 0; kk < klen; ++kk) {
        const float* __restrict src = b_ + (k0 + kk) * ld_ + c0;
        if (kk + 8 < klen) __builtin_prefetch(src + 8 * ld_);
        float* d = p + kk * NR;
        int64_t j = 0;
        for (; j < nr; ++j) d[j] = src[j];
        for (; j < NR; ++j) d[j] = 0.f;
      }
    } else {
      // B stored (N x K): each logical column is a contiguous run.
      for (int64_t j = 0; j < NR; ++j) {
        if (j < nr) {
          const float* __restrict src = b_ + (c0 + j) * ld_ + k0;
          for (int64_t kk = 0; kk < klen; ++kk) p[kk * NR + j] = src[kk];
        } else {
          for (int64_t kk = 0; kk < klen; ++kk) p[kk * NR + j] = 0.f;
        }
      }
    }
  }
}

PackedA::PackedA(GemmLayout layout, const float* a, int64_t m, int64_t k)
    : buf_(runtime::FloatWorkspacePool::instance().acquire(
          static_cast<size_t>(ceil_div(std::max<int64_t>(m, 1), MR) * MR *
                              std::max<int64_t>(k, 1)))),
      m_(m),
      k_(k) {
  if (m > 0 && k > 0) {
    detail::pack_a_panels(layout, a, m, k, 0, m, 0, k, buf_.data());
  }
}

PackedA::~PackedA() {
  runtime::FloatWorkspacePool::instance().release(std::move(buf_));
}

int64_t gemm_col_blocks(int64_t n) { return n > 0 ? ceil_div(n, kGemmNC) : 0; }

int64_t gemm_col_blocks(int64_t n, int64_t nc) {
  return n > 0 ? ceil_div(n, nc > 0 ? nc : kGemmNC) : 0;
}

void gemm_col_block(const PackedA& a, const BPanelPacker& b, int64_t n,
                    int64_t block, float* c, const GemmEpilogue& ep) {
  const PackedPanelsView v = a.view();
  run_col_block(&v, GemmLayout::kNN, nullptr, v.m, v.k, b, n, block, c, ep);
}

void gemm_col_block(const PackedPanelsView& a, const BPanelPacker& b,
                    int64_t n, int64_t block, float* c,
                    const GemmEpilogue& ep) {
  run_col_block(&a, GemmLayout::kNN, nullptr, a.m, a.k, b, n, block, c, ep);
}

void gemm_col_block(GemmLayout layout, const float* a, int64_t m, int64_t k,
                    const BPanelPacker& b, int64_t n, int64_t block, float* c,
                    const GemmEpilogue& ep) {
  run_col_block(nullptr, layout, a, m, k, b, n, block, c, ep);
}

void packed_gemm(GemmLayout layout, const float* a, const float* b, float* c,
                 int64_t m, int64_t k, int64_t n, const GemmEpilogue& ep) {
  if (m <= 0 || n <= 0) return;
  DOINN_TRACE_SCOPE("gemm.packed", "gemm", "m", m, "k", k, "n", n);
  const StridedBPacker bp(b, layout == GemmLayout::kNT ? k : n,
                          layout == GemmLayout::kNT);
  const int64_t blocks = gemm_col_blocks(n, ep.nc);
  // Pre-pack A when the packed copy is modest (reused by every block);
  // otherwise each block packs panels per K step from raw storage.
  constexpr int64_t kPrepackLimit = 1 << 21;  // 2M floats = 8 MiB
  if (ceil_div(std::max<int64_t>(m, 1), MR) * MR * std::max<int64_t>(k, 1) <=
      kPrepackLimit) {
    const PackedA pa(layout, a, m, k);
    runtime::parallel_for(blocks, [&](int64_t b0, int64_t b1) {
      for (int64_t blk = b0; blk < b1; ++blk) {
        gemm_col_block(pa, bp, n, blk, c, ep);
      }
    });
  } else {
    runtime::parallel_for(blocks, [&](int64_t b0, int64_t b1) {
      for (int64_t blk = b0; blk < b1; ++blk) {
        gemm_col_block(layout, a, m, k, bp, n, blk, c, ep);
      }
    });
  }
}

void gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n) {
  packed_gemm(GemmLayout::kNN, a, b, c, m, k, n);
}

void gemm_accumulate(const float* a, const float* b, float* c, int64_t m,
                     int64_t k, int64_t n) {
  GemmEpilogue ep;
  ep.accumulate = true;
  packed_gemm(GemmLayout::kNN, a, b, c, m, k, n, ep);
}

void gemm_at_b(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  packed_gemm(GemmLayout::kTN, a, b, c, m, k, n);
}

void gemm_a_bt(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  packed_gemm(GemmLayout::kNT, a, b, c, m, k, n);
}

namespace {

// One i-block of the per-mode contraction: for every mode p, continues the
// running complex sum over channels [i0, i0+IB). The expression matches the
// seed's serial loop term-for-term (ar += vr*wr - vi*wi; ai += vr*wi +
// vi*wr, i ascending), so blocking changes register traffic, not results.
template <bool First, int IB>
void cmode_block(const float* __restrict vr, const float* __restrict vi,
                 const float* __restrict wr, const float* __restrict wi,
                 int64_t vstride, int64_t wstride, int64_t xy,
                 float* __restrict zr, float* __restrict zi) {
  for (int64_t p = 0; p < xy; ++p) {
    float ar = First ? 0.f : zr[p];
    float ai = First ? 0.f : zi[p];
    for (int i = 0; i < IB; ++i) {
      const float a = vr[i * vstride + p];
      const float b = vi[i * vstride + p];
      const float cr = wr[i * wstride + p];
      const float ci = wi[i * wstride + p];
      ar += a * cr - b * ci;
      ai += a * ci + b * cr;
    }
    zr[p] = ar;
    zi[p] = ai;
  }
}

}  // namespace

void cmode_mix(int64_t bsz, int64_t ci, int64_t co, int64_t xy,
               const float* vr, const float* vi, const float* wr,
               const float* wi, float* zr, float* zi) {
  runtime::parallel_for(bsz * co, [&](int64_t lo, int64_t hi) {
    for (int64_t idx = lo; idx < hi; ++idx) {
      const int64_t b = idx / co;
      const int64_t o = idx % co;
      float* zrp = zr + idx * xy;
      float* zip = zi + idx * xy;
      if (ci == 0) {
        std::fill(zrp, zrp + xy, 0.f);
        std::fill(zip, zip + xy, 0.f);
        continue;
      }
      constexpr int64_t IB = 2;
      for (int64_t i0 = 0; i0 < ci; i0 += IB) {
        const float* vrb = vr + (b * ci + i0) * xy;
        const float* vib = vi + (b * ci + i0) * xy;
        const float* wrb = wr + (i0 * co + o) * xy;
        const float* wib = wi + (i0 * co + o) * xy;
        const bool first = (i0 == 0);
        if (ci - i0 >= IB) {
          if (first) {
            cmode_block<true, 2>(vrb, vib, wrb, wib, xy, co * xy, xy, zrp, zip);
          } else {
            cmode_block<false, 2>(vrb, vib, wrb, wib, xy, co * xy, xy, zrp, zip);
          }
        } else {
          if (first) {
            cmode_block<true, 1>(vrb, vib, wrb, wib, xy, co * xy, xy, zrp, zip);
          } else {
            cmode_block<false, 1>(vrb, vib, wrb, wib, xy, co * xy, xy, zrp, zip);
          }
        }
      }
    }
  });
}

}  // namespace litho
