// Dense N-dimensional float tensor used throughout the DOINN stack.
//
// Design notes:
//  - Always contiguous, row-major. Views are not supported; `reshape` shares
//    storage, every other transform copies. This keeps the autograd layer and
//    the FFT/conv kernels simple and predictable.
//  - Storage is shared via shared_ptr so Tensor is a cheap value type
//    (C++ Core Guidelines F.16: pass by value / const reference freely).
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <random>
#include <string>
#include <vector>

namespace litho {

/// Shape of a tensor: one extent per dimension, row-major.
using Shape = std::vector<int64_t>;

/// Returns the number of elements described by @p shape (product of extents).
int64_t numel_of(const Shape& shape);

/// Human-readable "[2, 3, 4]" form, used in error messages.
std::string shape_to_string(const Shape& shape);

/// Dense float32 tensor with shared, contiguous, row-major storage.
class Tensor {
 public:
  /// Empty 0-d tensor with no elements.
  Tensor();

  /// Uninitialized-to-zero tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of @p shape filled with @p value.
  Tensor(Shape shape, float value);

  /// Tensor wrapping a copy of @p values; values.size() must equal
  /// numel_of(shape).
  Tensor(Shape shape, std::vector<float> values);

  // -- Factories ------------------------------------------------------------
  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  /// Uniform samples in [lo, hi).
  static Tensor rand(Shape shape, std::mt19937& rng, float lo = 0.f,
                     float hi = 1.f);
  /// Normal samples with the given mean / stddev.
  static Tensor randn(Shape shape, std::mt19937& rng, float mean = 0.f,
                      float stddev = 1.f);
  /// 1-D tensor [0, 1, ..., n-1].
  static Tensor arange(int64_t n);

  // -- Introspection --------------------------------------------------------
  const Shape& shape() const { return shape_; }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  /// Extent of dimension @p d; negative indices count from the end.
  int64_t size(int64_t d) const;
  int64_t numel() const { return numel_; }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  float* data() { return data_->data(); }
  const float* data() const { return data_->data(); }

  /// Element access by flat row-major index.
  float& operator[](int64_t i) { return (*data_)[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return (*data_)[static_cast<size_t>(i)]; }

  /// Element access by multi-dimensional index (bounds-checked in debug).
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  // -- Shape manipulation ---------------------------------------------------
  /// Returns a tensor sharing this storage with a new shape of equal numel.
  Tensor reshape(Shape new_shape) const;
  /// Deep copy.
  Tensor clone() const;
  /// 2-D transpose (copies). Requires dim() == 2.
  Tensor transpose2d() const;
  /// Concatenation of equally-shaped-except-@p dim tensors along @p dim.
  static Tensor concat(const std::vector<Tensor>& parts, int64_t dim);
  /// Copy of the sub-tensor [start, start+length) along @p dim.
  Tensor narrow(int64_t dim, int64_t start, int64_t length) const;

  // -- In-place / elementwise -----------------------------------------------
  void fill(float value);
  /// this += other (shapes must match).
  void add_(const Tensor& other);
  /// this += alpha * other.
  void add_scaled_(const Tensor& other, float alpha);
  void mul_(float scalar);
  /// Applies @p fn to every element in place.
  void apply_(const std::function<float(float)>& fn);

  // -- Elementwise (allocating) ---------------------------------------------
  Tensor add(const Tensor& other) const;
  Tensor sub(const Tensor& other) const;
  Tensor mul(const Tensor& other) const;
  Tensor mul(float scalar) const;
  Tensor map(const std::function<float(float)>& fn) const;

  // -- Reductions -----------------------------------------------------------
  float sum() const;
  float mean() const;
  float max() const;
  float min() const;
  /// Largest |x| over all elements; 0 for empty tensors.
  float abs_max() const;

 private:
  void check_index(int64_t flat) const;

  std::shared_ptr<std::vector<float>> data_;
  Shape shape_;
  int64_t numel_ = 0;
};

}  // namespace litho

// The dense matrix kernels (gemm, gemm_accumulate, gemm_at_b, gemm_a_bt)
// historically declared here now live in the packed GEMM engine; included
// so existing call sites keep compiling against tensor.h alone.
#include "tensor/gemm.h"
