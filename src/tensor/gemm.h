// Packed, register-blocked single-precision GEMM engine.
//
// One micro-kernel serves every dense contraction in the stack: the three
// layout variants the autograd conv kernels need (NN, AᵀB, ABᵀ), the
// implicit-im2col convolution fast path (ag::conv2d packs B panels straight
// from the padded input through the BPanelPacker interface below, so the
// full Cin·K·K × L column buffer is never materialized), and the Fourier
// Unit's spectral mixing (clift via split real/imaginary GEMMs,
// cmode_matmul via the mode-blocked kernel at the bottom of this header).
//
// Blocking scheme (see README "GEMM & convolution kernels"):
//  - C is computed in kMR x kNR register tiles; A and B are repacked into
//    panel buffers leased from runtime::FloatWorkspacePool so the
//    micro-kernel reads both operands contiguously.
//  - K is walked in kKC-sized steps; each step packs one B panel
//    (kKC x kNC) and streams A panels (kMC x kKC) over it. Partial C tiles
//    are parked in C itself between K steps, and the micro-kernel resumes
//    accumulation from the parked value, so per-element arithmetic is one
//    running fp32 sum in strictly increasing k order.
//  - N is split into fixed kNC-column blocks; parallel_for distributes
//    whole blocks, so every C element is produced by exactly one task with
//    a schedule-independent operation order.
//
// Determinism contract: results are bitwise identical for any
// DOINN_NUM_THREADS (K is never split across tasks, block boundaries do not
// depend on the thread count) and — because the per-element operation
// sequence above is exactly the seed's naive loop order — each engine call
// is bitwise identical to the corresponding pre-engine kernel call for
// finite inputs. Callers that restructured *around* the engine keep the
// thread-count guarantee but not seed parity: conv2d forward is bitwise
// the seed's output end-to-end, while the rewritten conv backward
// accumulates weight gradients in a different (still deterministic) order.
#pragma once

#include <cstdint>
#include <vector>

namespace litho {

/// Operand layouts routed through the packed kernel. A and B are always
/// given as row-major storage; the layout says which side is transposed.
enum class GemmLayout {
  kNN,  // C = A(MxK) · B(KxN)
  kTN,  // C = Aᵀ · B with A stored (KxM), B stored (KxN)
  kNT,  // C = A · Bᵀ with A stored (MxK), B stored (NxK)
};

// Blocking parameters. Fixed constants: they define the packed-panel ABI
// and the parallel block grid, which must not depend on the machine or the
// thread count (determinism contract above).
inline constexpr int64_t kGemmMR = 4;    // micro-tile rows
inline constexpr int64_t kGemmNR = 8;    // micro-tile columns
inline constexpr int64_t kGemmKC = 512;  // K step per packed panel
inline constexpr int64_t kGemmMC = 64;   // A panel rows per pack
inline constexpr int64_t kGemmNC = 256;  // columns per parallel block

/// One fused elementwise stage applied to a finished column block, in
/// order, after the final K step (and after bias). Each stage is the exact
/// per-element expression of the standalone op it replaces — elementwise
/// with no cross-element interaction, so fusing changes neither bits nor
/// the determinism contract, only how many times the output is walked.
struct EpiloguePostStage {
  enum class Kind : int8_t {
    kBnAffine,  // x -> gamma[i]*((x - mu[i]) * inv_std[i]) + beta[i]
    kLeaky,     // x -> x < 0 ? x * slope : x   (slope 0 == relu)
    kTanh,      // x -> std::tanh(x)
  };
  Kind kind = Kind::kLeaky;
  float slope = 0.f;  // kLeaky only
  // kBnAffine per-row arrays (length M); caller keeps them alive.
  const float* mu = nullptr;
  const float* inv_std = nullptr;
  const float* gamma = nullptr;
  const float* beta = nullptr;
};

/// How a column block feeds B to the micro-kernel when the operand is
/// strided-viewable. kAuto applies the heuristic in run_col_block; the
/// forced modes exist for the graph executor's per-shape autotuner. All
/// three read the same values in the same per-element order, so the choice
/// never changes bits.
enum class BFeed : int8_t { kAuto = 0, kStream = 1, kPack = 2 };

/// Epilogue applied by the micro-kernel on write-back.
struct GemmEpilogue {
  /// false: C = A·B (beta = 0). true: C += A·B.
  bool accumulate = false;
  /// Negates the product: C -= A·B (requires accumulate). Used by the
  /// complex split (re·re - im·im) so no temporary difference buffer is
  /// needed.
  bool subtract = false;
  /// Optional per-row bias (length M), added once after the final K step —
  /// the fused bias epilogue of the convolution forward pass.
  const float* bias = nullptr;
  /// Optional fused elementwise chain (post[0..post_count)) applied to the
  /// block after the contraction completes. Requires !accumulate.
  const EpiloguePostStage* post = nullptr;
  int post_count = 0;
  /// Column-block width override (multiple of kGemmNR); 0 = kGemmNC.
  /// Callers enumerating blocks must pass the same value to
  /// gemm_col_blocks. Tiling width never changes per-element K order.
  int64_t nc = 0;
  /// B-feed strategy override (see BFeed).
  BFeed bfeed = BFeed::kAuto;
};

/// Applies ep.post (and nothing else) to rows [0,m) x columns [j0,j1) of a
/// finished C block with row stride n. Shared by the fp32 engine and the
/// int8/bf16 write-backs in tensor/prepack.cpp.
void apply_gemm_post(const GemmEpilogue& ep, float* c, int64_t n, int64_t m,
                     int64_t j0, int64_t j1);

/// Supplies packed B micro-panels to the engine. pack() must fill @p dst
/// with ceil((j1-j0)/kGemmNR) consecutive micro-panels for logical B rows
/// [k0,k1) and columns [j0,j1); each micro-panel is (k1-k0) x kGemmNR
/// floats, k-major, with columns beyond j1 zero-filled. Implementations
/// must be thread-safe (const pack() is called from parallel workers).
class BPanelPacker {
 public:
  virtual ~BPanelPacker() = default;
  virtual void pack(int64_t k0, int64_t k1, int64_t j0, int64_t j1,
                    float* dst) const = 0;

  /// If logical B rows are already contiguous with a fixed stride, report
  /// the base pointer of B(0,0) and the row stride and return true: the
  /// engine then streams B in place instead of packing, which matters for
  /// short-and-wide GEMMs where each B element is reused only m/kGemmMR
  /// times (reads are the same values in the same order, so the bitwise
  /// contract is unaffected). Default: false (gather through pack()).
  virtual bool direct_view(const float** base, int64_t* row_stride) const {
    (void)base;
    (void)row_stride;
    return false;
  }
};

/// Packer over plain strided storage: the B side of all three GemmLayout
/// variants. transposed=false reads B(k,j) = b[k*ld + j] (B stored KxN);
/// transposed=true reads B(k,j) = b[j*ld + k] (B stored NxK).
class StridedBPacker final : public BPanelPacker {
 public:
  StridedBPacker(const float* b, int64_t ld, bool transposed)
      : b_(b), ld_(ld), transposed_(transposed) {}
  void pack(int64_t k0, int64_t k1, int64_t j0, int64_t j1,
            float* dst) const override;
  bool direct_view(const float** base, int64_t* row_stride) const override {
    if (transposed_) return false;
    *base = b_;
    *row_stride = ld_;
    return true;
  }

 private:
  const float* b_;
  int64_t ld_;
  bool transposed_;
};

namespace detail {
/// Packs A rows [i0, i0+rows) x K range [k0, k0+klen) into ceil(rows/MR)
/// micro-panels of klen x kGemmMR floats (k-major, padded rows
/// zero-filled). Exact copies only — packing never changes a value. Shared
/// by the per-call PackedA and the load-time PackedWeight so both produce
/// the identical panel bytes.
void pack_a_panels(GemmLayout layout, const float* a, int64_t m, int64_t k,
                   int64_t i0, int64_t rows, int64_t k0, int64_t klen,
                   float* dst);
}  // namespace detail

/// Non-owning view of an A operand already packed into kGemmMR row panels
/// (k-major, padded rows zero-filled). The engine consumes views, so packed
/// panels can come from a per-call PackedA lease or from a load-time
/// PackedWeight held by the inference engine (tensor/prepack.h) — the
/// arithmetic is identical either way.
struct PackedPanelsView {
  const float* buf = nullptr;
  int64_t m = 0, k = 0;

  /// Panel for rows [mtile*kGemmMR, ...), K range starting at k0:
  /// (k - k0) x kGemmMR floats, k-major.
  const float* panel(int64_t mtile, int64_t k0) const {
    return buf + mtile * k * kGemmMR + k0 * kGemmMR;
  }
};

/// A operand pre-packed into kGemmMR row panels, k-major, padded rows
/// zero-filled. Pack once, reuse across many GEMMs against the same A —
/// conv2d packs its weights once per call and shares them across every
/// (sample, column block) task. The panel buffer is leased from the float
/// workspace pool and returned on destruction.
class PackedA {
 public:
  PackedA(GemmLayout layout, const float* a, int64_t m, int64_t k);
  ~PackedA();
  PackedA(const PackedA&) = delete;
  PackedA& operator=(const PackedA&) = delete;

  int64_t m() const { return m_; }
  int64_t k() const { return k_; }
  /// Panel for rows [mtile*kGemmMR, ...), K range starting at k0:
  /// (k - k0) x kGemmMR floats, k-major.
  const float* panel(int64_t mtile, int64_t k0) const {
    return buf_.data() + mtile * k_ * kGemmMR + k0 * kGemmMR;
  }
  PackedPanelsView view() const {
    return PackedPanelsView{buf_.data(), m_, k_};
  }

 private:
  std::vector<float> buf_;
  int64_t m_, k_;
};

/// Number of fixed-size column blocks the engine splits N into. The
/// (block index -> column range) map is stable: callers that schedule their
/// own parallelism (conv2d fans out over samples x blocks) enumerate
/// [0, gemm_col_blocks(n)) and call gemm_col_block per index.
int64_t gemm_col_blocks(int64_t n);

/// Same with an explicit column-block width (GemmEpilogue::nc); nc <= 0
/// means kGemmNC.
int64_t gemm_col_blocks(int64_t n, int64_t nc);

/// Runs one column block of C = op(A)·op(B) with a pre-packed A. @p c is
/// the full M x N output (row stride n); only columns of @p block are
/// written. Thread-safe for distinct blocks.
void gemm_col_block(const PackedA& a, const BPanelPacker& b, int64_t n,
                    int64_t block, float* c, const GemmEpilogue& ep = {});

/// Same, over any packed-panel view (e.g. a load-time PackedWeight).
void gemm_col_block(const PackedPanelsView& a, const BPanelPacker& b,
                    int64_t n, int64_t block, float* c,
                    const GemmEpilogue& ep = {});

/// Same, packing A panels on the fly from raw storage (per K step, into
/// pooled scratch) — for A operands too large or short-lived to pre-pack,
/// e.g. the Cout x L cotangent in the conv2d weight gradient.
void gemm_col_block(GemmLayout layout, const float* a, int64_t m, int64_t k,
                    const BPanelPacker& b, int64_t n, int64_t block, float* c,
                    const GemmEpilogue& ep = {});

/// Full GEMM: packs A once, then distributes column blocks over
/// runtime::parallel_for. C(MxN) = op(A)·op(B) per @p layout and @p ep.
void packed_gemm(GemmLayout layout, const float* a, const float* b, float* c,
                 int64_t m, int64_t k, int64_t n, const GemmEpilogue& ep = {});

// -- Legacy-compatible entry points -------------------------------------------
// The seed's three naive kernels, now thin wrappers over the packed engine
// (same signatures, bitwise-identical results for finite inputs).

/// C = A(MxK) * B(KxN), row-major; beta=0 semantics (C is overwritten).
/// Sizes are explicit so callers can GEMM into reshaped views.
void gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n);

/// C += A(MxK) * B(KxN).
void gemm_accumulate(const float* a, const float* b, float* c, int64_t m,
                     int64_t k, int64_t n);

/// C = A^T(KxM stored as MxK) * B(KxN)  -> (M x N) where a is (K x M).
void gemm_at_b(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n);

/// C = A(MxK) * B^T (N x K)  -> (M x N).
void gemm_a_bt(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n);

// -- Spectral mixing kernel ---------------------------------------------------

/// Per-mode complex contraction (torch.einsum("bixy,ioxy->boxy")):
///   z[b,o,p] = sum_i v[b,i,p] * w[i,o,p]   (complex, split storage)
/// for b in [0,bsz), o in [0,co), i in [0,ci), p in [0,xy). Outputs are
/// overwritten. The per-(b,o) planes are distributed over parallel_for;
/// within a plane, i is blocked for register reuse but accumulated in
/// strictly increasing order into one running sum per element, so results
/// are bitwise identical to the naive serial loop and across thread counts.
void cmode_mix(int64_t bsz, int64_t ci, int64_t co, int64_t xy,
               const float* vr, const float* vi, const float* wr,
               const float* wi, float* zr, float* zi);

}  // namespace litho
