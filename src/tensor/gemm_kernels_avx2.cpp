// AVX2 instantiation of the GEMM micro-kernel. CMake compiles this TU with
// -mavx2 (and ONLY -mavx2 — no FMA, which would change rounding and break
// the engine's bitwise contract) on x86-64 GNU/Clang toolchains; elsewhere
// it is built at the baseline ISA and simply duplicates that table. The
// dispatcher calls avx2_kernels() only after __builtin_cpu_supports("avx2")
// says the instructions are safe to execute.
#define DOINN_KERNEL_NS avx2
#include "tensor/gemm_kernels_body.inc"
#undef DOINN_KERNEL_NS

namespace litho::detail {

const MicroKernelTable& avx2_kernels() {
  static const MicroKernelTable t = avx2::make_table();
  return t;
}

const QuantKernelTable& avx2_quant_kernels() {
  static const QuantKernelTable t = avx2::make_quant_table();
  return t;
}

}  // namespace litho::detail
