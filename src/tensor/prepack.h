// Load-time weight prepacking and reduced-precision inference storage.
//
// packed_gemm re-packs its A (weight) operand into the 4x8 panel layout on
// every call, even though inference weights are immutable after load. A
// PackedWeight is the one-time alternative: built once per conv/linear
// weight when the InferenceEngine loads a checkpoint (exemplar: PyTorch's
// mkldnn ConvPrepack contexts), owned immutably by the layer, and handed to
// the conv forward so the per-call PackedA construction disappears from the
// serving hot path.
//
// Precision modes (EngineOptions::precision, default kFp32):
//  - kFp32: panels are exact copies in the PackedA layout. The forward pass
//    runs the unchanged fp32 engine, so results are bitwise identical to
//    the per-call packing path — prepacking only removes work.
//  - kInt8: weights are quantized per output row (symmetric, zero-point 0:
//    scale[i] = max|row i| / 127) and stored as signed k-quads; im2col B
//    panels are quantized on the fly with one dynamic per-sample scale
//    (127 / max|sample|) into UNSIGNED bytes q+128 — the u8 x s8 layout
//    vpdpbusd contracts four k per instruction. The micro-kernel
//    accumulates in int32 — integer arithmetic is exact, so any summation
//    schedule yields the same sums — then the write-back removes the
//    128 * rowsum(weights) shift in integer math and applies
//    scale[i]*b_scale (+bias) in fp32. Bitwise deterministic for any
//    thread count or batch split.
//  - kBf16: panels and B panels are stored as round-to-nearest-even bf16
//    and widened back to fp32 inside the kernel; accumulation stays fp32 in
//    strictly increasing k order, so the mode keeps the engine's
//    determinism contract (identical bits for any thread count) while
//    halving panel traffic. Results differ from fp32 only by the storage
//    rounding.
//
// Every mode keeps its own bitwise-determinism guarantee; only kFp32
// additionally guarantees identity with the non-prepacked engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/gemm.h"

namespace litho {

/// Inference storage precision for prepacked weights and B panels.
enum class Precision { kFp32, kInt8, kBf16 };

/// "fp32" / "int8" / "bf16" (CLI flag values).
const char* precision_name(Precision p);

/// Parses a --precision flag value; throws std::invalid_argument otherwise.
Precision parse_precision(const std::string& name);

/// Round-to-nearest-even fp32 -> bf16 truncation (the top 16 bits of the
/// fp32 pattern after RNE on bit 16). NaN payloads are quietened.
uint16_t fp32_to_bf16(float v);
/// Exact widening bf16 -> fp32 (low mantissa bits zero).
float bf16_to_fp32(uint16_t v);

/// A GEMM A operand packed once into the engine's panel layout at a chosen
/// storage precision. Immutable after construction and safe to share across
/// threads; unlike PackedA the buffers are owned (not pool-leased), so the
/// object can live as long as the engine.
///
/// Layouts per mode (m rows, k depth, MR = kGemmMR):
///  - kFp32: identical to PackedA — ceil(m/MR) panels of k x MR floats.
///  - kInt8: per m-tile, ceil(k/4) k-quads x MR signed int8 quads
///    ([a(r,4q) .. a(r,4q+3)] contiguous per row — one int32-sized
///    broadcast unit — trailing k zero-padded), plus a per-row fp32
///    dequantization scale and an integer row sum sum_k q(i,k) (both
///    length m); the row sums cancel the +128 activation shift exactly in
///    the write-back.
///  - kBf16: the fp32 layout with uint16 elements.
class PackedWeight {
 public:
  /// Packs op(A) per @p layout from row-major storage (see GemmLayout);
  /// m and k are the logical GEMM extents after the transposition.
  PackedWeight(GemmLayout layout, const float* a, int64_t m, int64_t k,
               Precision precision);

  /// Process-wide running total of bytes held by every PackedWeight built
  /// so far (panels + int8 scale/rowsum sidecars; monotone — destruction
  /// does not subtract). The engine-pool tests use the delta of this
  /// counter to assert that N replicas of a model share one set of packed
  /// weights instead of rebuilding them per replica.
  static int64_t total_allocated_bytes();

  Precision precision() const { return precision_; }
  int64_t m() const { return m_; }
  int64_t k() const { return k_; }

  /// fp32 panel view for gemm_col_block (kFp32 only).
  PackedPanelsView fp32_view() const {
    return PackedPanelsView{f32_.data(), m_, k_};
  }

  /// Number of packed k-quads per int8 panel (ceil(k/4)).
  int64_t k_quads() const { return (k_ + 3) / 4; }
  /// Int8-mode panel for rows [mtile*MR, ...): k_quads() x MR x 4 signed
  /// bytes.
  const int8_t* i8_panel(int64_t mtile) const {
    return i8_.data() + mtile * k_quads() * kGemmMR * 4;
  }
  /// Per-output-row dequantization scales, length m (kInt8 only).
  const float* row_scales() const { return scales_.data(); }
  /// Per-output-row quantized-weight sums sum_k q(i,k), length m (kInt8
  /// only) — multiplied by the activation zero-point 128 they remove the
  /// unsigned shift from the raw accumulators.
  const int32_t* row_sums() const { return rowsum_.data(); }

  /// bf16-mode panel, same indexing as PackedA::panel.
  const uint16_t* bf16_panel(int64_t mtile, int64_t k0) const {
    return bf16_.data() + mtile * k_ * kGemmMR + k0 * kGemmMR;
  }

 private:
  Precision precision_;
  int64_t m_, k_;
  std::vector<float> f32_;      // kFp32 panels
  std::vector<uint16_t> bf16_;  // kBf16 panels
  std::vector<int8_t> i8_;      // kInt8 panels (signed k-quads)
  std::vector<int32_t> rowsum_;  // kInt8 per-row quantized sums
  std::vector<float> scales_;   // kInt8 per-row scales
};

/// One column block of C(f32) = dequant(A8 · quant(B)) [+ bias]: the int8
/// inference GEMM. B is gathered in fp32 through @p bp, quantized with
/// @p inv_b_scale (127/max|B|, or 0 for an all-zero operand) into unsigned
/// +128-shifted k-quads (the kernels' native u8 x s8 panel format), and
/// contracted against the prepacked int8 weight in int32, chunking K so
/// the active B panels stay L1-resident (partial sums park in int32 —
/// exact, so the chunking never changes a bit). The write-back removes the
/// 128 * row_sums()[i] shift in integer math, then applies
/// @p combined_scales (length m, row_scales[i] * b_scale) with optional
/// @p bias in fp32. Thread-safe for distinct blocks; bitwise deterministic
/// for any thread count (integer accumulation is exact).
/// @p ep supplies only the fused post chain and tuning knobs (nc, bfeed is
/// ignored here — the int8 path always gathers B); ep.bias is unused, bias
/// comes in via @p bias because the int8 write-back needs it separate from
/// the dequant scales.
void gemm_col_block_i8(const PackedWeight& a, const BPanelPacker& bp,
                       float inv_b_scale, const float* combined_scales,
                       int64_t n, int64_t block, float* c, const float* bias,
                       const GemmEpilogue& ep = {});

/// One column block of C = A(bf16) · bf16(B) with fp32 accumulation in
/// strictly increasing k order (the fp32 engine's blocking, bf16 storage).
void gemm_col_block_bf16(const PackedWeight& a, const BPanelPacker& bp,
                         int64_t n, int64_t block, float* c,
                         const GemmEpilogue& ep = {});

/// Largest |v| over n floats (exact: max is order-independent, so callers
/// may parallelize it without touching the determinism contract).
float max_abs(const float* v, int64_t n);

}  // namespace litho
