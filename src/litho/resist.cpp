#include "litho/resist.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace litho::optics {
namespace {

/// Mean IOU of the foreground class between two binary images.
double fg_iou(const Tensor& a, const Tensor& b) {
  int64_t inter = 0, uni = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const bool pa = a[i] >= 0.5f, pb = b[i] >= 0.5f;
    if (pa && pb) ++inter;
    if (pa || pb) ++uni;
  }
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double score(const VtrModel& m, const std::vector<Tensor>& aerials,
             const std::vector<Tensor>& goldens) {
  double acc = 0;
  for (size_t i = 0; i < aerials.size(); ++i) {
    acc += fg_iou(m.apply(aerials[i]), goldens[i]);
  }
  return acc / static_cast<double>(aerials.size());
}

}  // namespace

Tensor intensity_gradient(const Tensor& aerial) {
  if (aerial.dim() != 2) throw std::invalid_argument("gradient: 2-D only");
  const int64_t h = aerial.size(0), w = aerial.size(1);
  Tensor out({h, w});
  for (int64_t r = 0; r < h; ++r) {
    for (int64_t c = 0; c < w; ++c) {
      const float gx = (aerial[r * w + std::min(c + 1, w - 1)] -
                        aerial[r * w + std::max<int64_t>(c - 1, 0)]) *
                       0.5f;
      const float gy = (aerial[std::min(r + 1, h - 1) * w + c] -
                        aerial[std::max<int64_t>(r - 1, 0) * w + c]) *
                       0.5f;
      out[r * w + c] = std::sqrt(gx * gx + gy * gy);
    }
  }
  return out;
}

Tensor local_max(const Tensor& aerial, int64_t radius) {
  if (aerial.dim() != 2) throw std::invalid_argument("local_max: 2-D only");
  const int64_t h = aerial.size(0), w = aerial.size(1);
  // Separable: rows then columns.
  Tensor rows({h, w});
  for (int64_t r = 0; r < h; ++r) {
    for (int64_t c = 0; c < w; ++c) {
      float m = aerial[r * w + c];
      for (int64_t d = -radius; d <= radius; ++d) {
        const int64_t cc = std::clamp<int64_t>(c + d, 0, w - 1);
        m = std::max(m, aerial[r * w + cc]);
      }
      rows[r * w + c] = m;
    }
  }
  Tensor out({h, w});
  for (int64_t r = 0; r < h; ++r) {
    for (int64_t c = 0; c < w; ++c) {
      float m = rows[r * w + c];
      for (int64_t d = -radius; d <= radius; ++d) {
        const int64_t rr = std::clamp<int64_t>(r + d, 0, h - 1);
        m = std::max(m, rows[rr * w + c]);
      }
      out[r * w + c] = m;
    }
  }
  return out;
}

Tensor VtrModel::apply(const Tensor& aerial) const {
  Tensor out(aerial.shape());
  // Avoid the (relatively expensive) feature images when they are unused
  // (the CTR special case).
  if (a1 == 0.0 && a2 == 0.0) {
    for (int64_t i = 0; i < aerial.numel(); ++i) {
      out[i] = aerial[i] >= static_cast<float>(a0) ? 1.f : 0.f;
    }
    return out;
  }
  const Tensor imax = local_max(aerial, 2);
  const Tensor grad = intensity_gradient(aerial);
  for (int64_t i = 0; i < aerial.numel(); ++i) {
    const double t = a0 + a1 * imax[i] + a2 * grad[i];
    out[i] = aerial[i] >= static_cast<float>(t) ? 1.f : 0.f;
  }
  return out;
}

VtrModel calibrate_vtr(const std::vector<Tensor>& aerials,
                       const std::vector<Tensor>& golden_contours,
                       int64_t steps, int64_t sweeps) {
  if (aerials.empty() || aerials.size() != golden_contours.size()) {
    throw std::invalid_argument("calibrate_vtr: bad sample set");
  }
  VtrModel best;
  double best_score = score(best, aerials, golden_contours);
  // Coordinate descent over (a0, a1, a2) with a shrinking search window.
  double w0 = 0.15, w1 = 0.3, w2 = 0.6;
  for (int64_t sweep = 0; sweep < sweeps; ++sweep) {
    for (int coord = 0; coord < 3; ++coord) {
      const double width = coord == 0 ? w0 : (coord == 1 ? w1 : w2);
      const double center =
          coord == 0 ? best.a0 : (coord == 1 ? best.a1 : best.a2);
      for (int64_t s = 0; s < steps; ++s) {
        const double v = center - width / 2 +
                         width * static_cast<double>(s) /
                             static_cast<double>(steps - 1);
        VtrModel candidate = best;
        (coord == 0 ? candidate.a0
                    : (coord == 1 ? candidate.a1 : candidate.a2)) = v;
        if (candidate.a0 <= 0.01) continue;  // degenerate threshold
        const double sc = score(candidate, aerials, golden_contours);
        if (sc > best_score) {
          best_score = sc;
          best = candidate;
        }
      }
    }
    w0 *= 0.5;
    w1 *= 0.5;
    w2 *= 0.5;
  }
  return best;
}

}  // namespace litho::optics
