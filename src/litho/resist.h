// Resist models beyond the constant threshold (CTR) used in the paper's
// experiments ("bringing more accurate physical lithography models" is the
// paper's first listed future-work item).
//
// The variable-threshold resist (VTR) model makes the print threshold a
// linear function of local aerial-image properties — the classic compact
// resist model used in OPC flows:
//
//     T(x) = a0 + a1 * Imax_local(x) + a2 * |grad I(x)|
//
// With a1 = a2 = 0 the model reduces exactly to CTR. Coefficients are
// calibrated against golden (aerial, contour) pairs by coordinate grid
// search maximizing mIOU, mirroring how production resist models are fit
// to wafer measurements.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace litho::optics {

/// Variable-threshold resist model.
struct VtrModel {
  double a0 = 0.225;  ///< base threshold (CTR value)
  double a1 = 0.0;    ///< local-max-intensity coefficient
  double a2 = 0.0;    ///< intensity-slope coefficient

  /// Binary contour from a (normalized) aerial image.
  Tensor apply(const Tensor& aerial) const;
};

/// Central-difference gradient magnitude of a 2-D image.
Tensor intensity_gradient(const Tensor& aerial);

/// Local maximum of @p aerial over a (2r+1)^2 window.
Tensor local_max(const Tensor& aerial, int64_t radius);

/// Calibrates (a0, a1, a2) against golden pairs by coordinate grid search
/// maximizing mean IOU of the printed contours. @p steps controls the grid
/// resolution per coordinate sweep.
VtrModel calibrate_vtr(const std::vector<Tensor>& aerials,
                       const std::vector<Tensor>& golden_contours,
                       int64_t steps = 9, int64_t sweeps = 2);

}  // namespace litho::optics
