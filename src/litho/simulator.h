// Golden lithography simulator: SOCS aerial imaging + constant-threshold
// resist model. This engine plays the role of "Lithosim"/"Calibre" in the
// paper: it produces the ground-truth wafer contours the neural models are
// trained on, and is the "Ref" bar of Figure 6.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "litho/optics.h"

namespace litho::optics {

/// SOCS forward simulator with per-grid-size kernel-spectrum caching.
class LithoSimulator {
 public:
  /// Uses precomputed kernels (e.g. from load_kernels).
  LithoSimulator(OpticalConfig cfg, std::vector<SocsKernel> kernels);

  /// Loads kernels from @p cache_path if present, otherwise computes them
  /// (seconds) and saves. The cache key is the caller's responsibility —
  /// use distinct paths for distinct configs.
  static LithoSimulator with_cache(const OpticalConfig& cfg,
                                   const std::string& cache_path);

  /// Aerial (light intensity) image of a 2-D mask raster, normalized so an
  /// open-frame (all-ones) mask images to intensity 1.0.
  Tensor aerial(const Tensor& mask) const;

  /// Constant-threshold resist model: 1 where intensity >= threshold.
  Tensor resist(const Tensor& aerial_image) const;

  /// aerial + resist in one call: mask raster -> binary wafer contour.
  Tensor simulate(const Tensor& mask) const;

  /// Print threshold relative to the open-frame intensity (default 0.225,
  /// the ICCAD-2013 contest value).
  double threshold() const { return threshold_; }
  void set_threshold(double t) { threshold_ = t; }

  const OpticalConfig& config() const { return cfg_; }
  const std::vector<SocsKernel>& kernels() const { return kernels_; }

  /// Optical diameter in pixels on the simulation raster (paper's d).
  int64_t optical_diameter_px() const;

 private:
  const std::vector<fft::CTensor>& spectra_for(int64_t h, int64_t w) const;

  OpticalConfig cfg_;
  std::vector<SocsKernel> kernels_;
  double open_frame_intensity_ = 1.0;
  double threshold_ = 0.225;
  mutable std::map<std::pair<int64_t, int64_t>, std::vector<fft::CTensor>>
      spectra_cache_;
};

}  // namespace litho::optics
