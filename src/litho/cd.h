// Critical-dimension (CD) metrology on aerial images: measure the printed
// width of a feature along a cut line, and Bossung-style process-window
// sweeps (CD vs defocus). These are the classic lithography QA tools the
// golden engine is used with in production flows.
#pragma once

#include <vector>

#include "litho/simulator.h"

namespace litho::optics {

/// A horizontal or vertical cut through the image.
struct CutLine {
  bool horizontal = true;  ///< true: scan along x at row; false: along y
  int64_t position_px = 0; ///< the fixed row (horizontal) or column
};

/// Measures the printed CD (nm) along a cut: width of the contiguous
/// above-threshold run nearest to @p center_px, with sub-pixel linear
/// interpolation at the two threshold crossings. Returns 0 when nothing
/// prints on the cut.
double measure_cd_nm(const Tensor& aerial, double threshold, CutLine cut,
                     int64_t center_px, double pixel_nm);

/// One Bossung point: defocus condition and the measured CD.
struct BossungPoint {
  double defocus_nm;
  double cd_nm;
};

/// Sweeps defocus and measures the CD of the same feature at each
/// condition. Kernels are recomputed per condition (seconds each).
std::vector<BossungPoint> bossung_sweep(const OpticalConfig& nominal,
                                        const Tensor& mask, double threshold,
                                        CutLine cut, int64_t center_px,
                                        const std::vector<double>& defocus_nm);

/// Depth of focus: the defocus span over which |CD - CD(0)| / CD(0) stays
/// within @p tolerance. Returns 0 when the nominal CD is 0.
double depth_of_focus_nm(const std::vector<BossungPoint>& curve,
                         double tolerance = 0.1);

}  // namespace litho::optics
