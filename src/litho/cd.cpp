#include "litho/cd.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace litho::optics {
namespace {

/// Samples the 1-D profile of @p aerial along the cut.
std::vector<float> profile_along(const Tensor& aerial, const CutLine& cut) {
  const int64_t h = aerial.size(0), w = aerial.size(1);
  std::vector<float> p;
  if (cut.horizontal) {
    if (cut.position_px < 0 || cut.position_px >= h) {
      throw std::invalid_argument("cut row out of range");
    }
    p.resize(static_cast<size_t>(w));
    for (int64_t c = 0; c < w; ++c) {
      p[static_cast<size_t>(c)] = aerial[cut.position_px * w + c];
    }
  } else {
    if (cut.position_px < 0 || cut.position_px >= w) {
      throw std::invalid_argument("cut column out of range");
    }
    p.resize(static_cast<size_t>(h));
    for (int64_t r = 0; r < h; ++r) {
      p[static_cast<size_t>(r)] = aerial[r * w + cut.position_px];
    }
  }
  return p;
}

/// Sub-pixel position where the profile crosses the threshold between
/// samples i and i+1.
double crossing(const std::vector<float>& p, int64_t i, double thr) {
  const double a = p[static_cast<size_t>(i)];
  const double b = p[static_cast<size_t>(i) + 1];
  return static_cast<double>(i) + (thr - a) / (b - a);
}

}  // namespace

double measure_cd_nm(const Tensor& aerial, double threshold, CutLine cut,
                     int64_t center_px, double pixel_nm) {
  if (aerial.dim() != 2) throw std::invalid_argument("measure_cd: 2-D only");
  const std::vector<float> p = profile_along(aerial, cut);
  const int64_t n = static_cast<int64_t>(p.size());
  center_px = std::clamp<int64_t>(center_px, 0, n - 1);
  if (p[static_cast<size_t>(center_px)] < threshold) {
    // Feature does not print at the center: search the nearest printed run.
    int64_t best = -1;
    for (int64_t d = 1; d < n; ++d) {
      if (center_px - d >= 0 &&
          p[static_cast<size_t>(center_px - d)] >= threshold) {
        best = center_px - d;
        break;
      }
      if (center_px + d < n &&
          p[static_cast<size_t>(center_px + d)] >= threshold) {
        best = center_px + d;
        break;
      }
    }
    if (best < 0) return 0.0;
    center_px = best;
  }
  // Expand to the run boundaries.
  int64_t lo = center_px;
  while (lo > 0 && p[static_cast<size_t>(lo - 1)] >= threshold) --lo;
  int64_t hi = center_px;
  while (hi + 1 < n && p[static_cast<size_t>(hi + 1)] >= threshold) ++hi;

  const double left =
      lo == 0 ? -0.5 : crossing(p, lo - 1, threshold);
  const double right =
      hi == n - 1 ? static_cast<double>(n) - 0.5 : crossing(p, hi, threshold);
  return (right - left) * pixel_nm;
}

std::vector<BossungPoint> bossung_sweep(const OpticalConfig& nominal,
                                        const Tensor& mask, double threshold,
                                        CutLine cut, int64_t center_px,
                                        const std::vector<double>& defocus_nm) {
  std::vector<BossungPoint> out;
  out.reserve(defocus_nm.size());
  for (const double z : defocus_nm) {
    OpticalConfig cfg = nominal;
    cfg.defocus_nm = z;
    LithoSimulator sim(cfg, compute_socs_kernels(cfg));
    const Tensor aerial = sim.aerial(mask);
    out.push_back(
        {z, measure_cd_nm(aerial, threshold, cut, center_px, cfg.pixel_nm)});
  }
  return out;
}

double depth_of_focus_nm(const std::vector<BossungPoint>& curve,
                         double tolerance) {
  double nominal_cd = 0;
  for (const BossungPoint& p : curve) {
    if (p.defocus_nm == 0.0) nominal_cd = p.cd_nm;
  }
  if (nominal_cd <= 0) return 0.0;
  double lo = 0, hi = 0;
  for (const BossungPoint& p : curve) {
    if (std::abs(p.cd_nm - nominal_cd) / nominal_cd <= tolerance) {
      lo = std::min(lo, p.defocus_nm);
      hi = std::max(hi, p.defocus_nm);
    }
  }
  return hi - lo;
}

}  // namespace litho::optics
