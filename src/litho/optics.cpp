#include "litho/optics.h"

#include <cmath>
#include <random>
#include <stdexcept>

#include "io/io.h"

namespace litho::optics {
namespace {

constexpr double kPi = 3.14159265358979323846;

using cd = std::complex<double>;

/// Signed centered frequency index for grid position i of n samples.
int64_t centered_index(int64_t i, int64_t n) { return i < n / 2 ? i : i - n; }

/// Frequency points (integer, centered) within radius @p r on an n-grid.
std::vector<std::pair<int64_t, int64_t>> freq_points(int64_t n, double r) {
  std::vector<std::pair<int64_t, int64_t>> pts;
  const int64_t ri = static_cast<int64_t>(std::ceil(r));
  for (int64_t ky = -ri; ky <= ri; ++ky) {
    for (int64_t kx = -ri; kx <= ri; ++kx) {
      if (static_cast<double>(kx * kx + ky * ky) <= r * r) {
        pts.emplace_back(kx, ky);
      }
    }
  }
  return pts;
}

}  // namespace

double OpticalConfig::optical_diameter_nm() const {
  // Interaction ambit heuristic: a few Rayleigh units. Matches the scale
  // industrial flows quote for 193i (~0.5-1 um).
  return 4.0 * wavelength_nm / na;
}

std::complex<double> pupil_value(const OpticalConfig& cfg, double fx,
                                 double fy) {
  const double f2 = fx * fx + fy * fy;
  const double fc = cfg.cutoff_freq();
  if (f2 > fc * fc) return {0.0, 0.0};
  if (cfg.defocus_nm == 0.0) return {1.0, 0.0};
  // Paraxial defocus phase: exp(i * pi * lambda * z * f^2).
  const double phase = kPi * cfg.wavelength_nm * cfg.defocus_nm * f2;
  return {std::cos(phase), std::sin(phase)};
}

std::vector<SourcePoint> source_points(const OpticalConfig& cfg, int64_t n) {
  const double r = cfg.pupil_radius_px(n);
  const double r_out = cfg.sigma_out * r;
  const double r_in =
      cfg.source == SourceShape::kAnnular ? cfg.sigma_in * r : 0.0;
  std::vector<SourcePoint> pts;
  const int64_t ri = static_cast<int64_t>(std::ceil(r_out));
  for (int64_t ky = -ri; ky <= ri; ++ky) {
    for (int64_t kx = -ri; kx <= ri; ++kx) {
      const double d2 = static_cast<double>(kx * kx + ky * ky);
      if (d2 <= r_out * r_out && d2 >= r_in * r_in) {
        pts.push_back({static_cast<double>(kx), static_cast<double>(ky)});
      }
    }
  }
  if (pts.empty()) {
    // Degenerate coherent limit: single on-axis point.
    pts.push_back({0.0, 0.0});
  }
  return pts;
}

std::vector<SocsKernel> compute_socs_kernels(const OpticalConfig& cfg) {
  const int64_t n = cfg.kernel_grid;
  const double p = cfg.pixel_nm;
  const double r_pupil = cfg.pupil_radius_px(n);
  if (r_pupil < 2.0) {
    throw std::invalid_argument(
        "kernel grid too coarse: pupil radius below 2 samples");
  }
  // TCC support: shifted pupils reach |f| <= (1 + sigma_out) * r_pupil.
  const auto pts = freq_points(n, (1.0 + cfg.sigma_out) * r_pupil);
  const int64_t m = static_cast<int64_t>(pts.size());
  const auto src = source_points(cfg, n);
  const int64_t ns = static_cast<int64_t>(src.size());
  const double inv_freq = 1.0 / (static_cast<double>(n) * p);

  // A[i][s] = P(f_i + f_s): the TCC is (1/ns) A A^H, so T v = A (A^H v) / ns
  // gives an O(m*ns) matvec for the power iteration.
  std::vector<cd> a(static_cast<size_t>(m * ns));
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t s = 0; s < ns; ++s) {
      const double fx = (static_cast<double>(pts[i].first) + src[s].kx) * inv_freq;
      const double fy = (static_cast<double>(pts[i].second) + src[s].ky) * inv_freq;
      a[static_cast<size_t>(i * ns + s)] = pupil_value(cfg, fx, fy);
    }
  }

  auto matvec = [&](const std::vector<cd>& v, std::vector<cd>& out) {
    std::vector<cd> tmp(static_cast<size_t>(ns), cd(0, 0));
    for (int64_t i = 0; i < m; ++i) {
      const cd vi = v[static_cast<size_t>(i)];
      if (vi == cd(0, 0)) continue;
      const cd* row = a.data() + i * ns;
      for (int64_t s = 0; s < ns; ++s) tmp[static_cast<size_t>(s)] += std::conj(row[s]) * vi;
    }
    const double inv_ns = 1.0 / static_cast<double>(ns);
    for (int64_t i = 0; i < m; ++i) {
      const cd* row = a.data() + i * ns;
      cd acc(0, 0);
      for (int64_t s = 0; s < ns; ++s) acc += row[s] * tmp[static_cast<size_t>(s)];
      out[static_cast<size_t>(i)] = acc * inv_ns;
    }
  };

  std::mt19937 rng(20220312);  // deterministic kernels for a fixed config
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<std::vector<cd>> eigvecs;
  std::vector<double> eigvals;

  for (int64_t k = 0; k < cfg.kernel_count; ++k) {
    std::vector<cd> v(static_cast<size_t>(m));
    for (auto& x : v) x = {dist(rng), dist(rng)};
    std::vector<cd> tv(static_cast<size_t>(m));
    double lambda = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Deflate previously found eigenpairs (Hotelling).
      for (size_t j = 0; j < eigvecs.size(); ++j) {
        cd proj(0, 0);
        for (int64_t i = 0; i < m; ++i) {
          proj += std::conj(eigvecs[j][static_cast<size_t>(i)]) *
                  v[static_cast<size_t>(i)];
        }
        for (int64_t i = 0; i < m; ++i) {
          v[static_cast<size_t>(i)] -= proj * eigvecs[j][static_cast<size_t>(i)];
        }
      }
      matvec(v, tv);
      double norm = 0.0;
      for (const cd& x : tv) norm += std::norm(x);
      norm = std::sqrt(norm);
      if (norm < 1e-14) break;  // TCC rank exhausted
      for (int64_t i = 0; i < m; ++i) {
        v[static_cast<size_t>(i)] = tv[static_cast<size_t>(i)] / norm;
      }
      lambda = norm;  // after convergence ||Tv|| -> lambda for unit v
    }
    eigvecs.push_back(v);
    eigvals.push_back(lambda);
  }

  // Assemble spatial kernels: spectrum on the n x n grid -> centered IFFT.
  std::vector<SocsKernel> kernels;
  kernels.reserve(eigvecs.size());
  for (size_t k = 0; k < eigvecs.size(); ++k) {
    fft::CTensor spec({n, n});
    for (int64_t i = 0; i < m; ++i) {
      const int64_t kx = (pts[static_cast<size_t>(i)].first % n + n) % n;
      const int64_t ky = (pts[static_cast<size_t>(i)].second % n + n) % n;
      spec.re[ky * n + kx] = static_cast<float>(eigvecs[k][static_cast<size_t>(i)].real());
      spec.im[ky * n + kx] = static_cast<float>(eigvecs[k][static_cast<size_t>(i)].imag());
    }
    fft::CTensor spatial = fft::fft2(spec, /*inverse=*/true);
    // fftshift so the kernel peak sits at the window center.
    fft::CTensor shifted({n, n});
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t c = 0; c < n; ++c) {
        const int64_t sr = (r + n / 2) % n;
        const int64_t sc = (c + n / 2) % n;
        shifted.re[sr * n + sc] = spatial.re[r * n + c];
        shifted.im[sr * n + sc] = spatial.im[r * n + c];
      }
    }
    SocsKernel kern;
    kern.alpha = eigvals[k];
    kern.spatial = std::move(shifted);
    kernels.push_back(std::move(kern));
  }
  return kernels;
}

void save_kernels(const std::string& path, const std::vector<SocsKernel>& ks) {
  std::map<std::string, Tensor> dict;
  Tensor alphas({static_cast<int64_t>(ks.size())});
  for (size_t i = 0; i < ks.size(); ++i) {
    alphas[static_cast<int64_t>(i)] = static_cast<float>(ks[i].alpha);
    dict.emplace("kernel" + std::to_string(i) + ".re", ks[i].spatial.re);
    dict.emplace("kernel" + std::to_string(i) + ".im", ks[i].spatial.im);
  }
  dict.emplace("alphas", alphas);
  io::save_tensors(path, dict);
}

std::vector<SocsKernel> load_kernels(const std::string& path) {
  const auto dict = io::load_tensors(path);
  const Tensor& alphas = dict.at("alphas");
  std::vector<SocsKernel> ks(static_cast<size_t>(alphas.numel()));
  for (size_t i = 0; i < ks.size(); ++i) {
    ks[i].alpha = alphas[static_cast<int64_t>(i)];
    ks[i].spatial =
        fft::CTensor(dict.at("kernel" + std::to_string(i) + ".re"),
                     dict.at("kernel" + std::to_string(i) + ".im"));
  }
  return ks;
}

fft::CTensor kernel_spectrum(const SocsKernel& k, int64_t h, int64_t w) {
  const int64_t d = k.spatial.re.size(0);
  if (d > h || d > w) {
    throw std::invalid_argument(
        "simulation grid smaller than the kernel window");
  }
  fft::CTensor grid({h, w});
  // Window center (d/2, d/2) maps to origin (0, 0) with wrap-around.
  for (int64_t r = 0; r < d; ++r) {
    for (int64_t c = 0; c < d; ++c) {
      const int64_t gr = ((r - d / 2) % h + h) % h;
      const int64_t gc = ((c - d / 2) % w + w) % w;
      grid.re[gr * w + gc] = k.spatial.re[r * d + c];
      grid.im[gr * w + gc] = k.spatial.im[r * d + c];
    }
  }
  return fft::fft2(grid, /*inverse=*/false);
}

Tensor abbe_intensity(const OpticalConfig& cfg, const Tensor& mask) {
  if (mask.dim() != 2) throw std::invalid_argument("abbe: 2-D mask expected");
  const int64_t h = mask.size(0), w = mask.size(1);
  if (h != w) throw std::invalid_argument("abbe: square mask expected");
  const auto src = source_points(cfg, h);
  const double inv_freq = 1.0 / (static_cast<double>(h) * cfg.pixel_nm);

  fft::CTensor mask_c(mask.clone(), Tensor(mask.shape()));
  fft::CTensor spec = fft::fft2(mask_c, false);

  Tensor intensity(mask.shape());
  for (const SourcePoint& s : src) {
    fft::CTensor filtered({h, w});
    for (int64_t r = 0; r < h; ++r) {
      for (int64_t c = 0; c < w; ++c) {
        const double fx = (static_cast<double>(centered_index(c, w)) + s.kx) * inv_freq;
        const double fy = (static_cast<double>(centered_index(r, h)) + s.ky) * inv_freq;
        const cd pv = pupil_value(cfg, fx, fy);
        if (pv == cd(0, 0)) continue;
        const float xr = spec.re[r * w + c], xi = spec.im[r * w + c];
        filtered.re[r * w + c] =
            static_cast<float>(xr * pv.real() - xi * pv.imag());
        filtered.im[r * w + c] =
            static_cast<float>(xr * pv.imag() + xi * pv.real());
      }
    }
    const fft::CTensor field = fft::fft2(filtered, true);
    const Tensor mag = fft::cabs2(field);
    intensity.add_scaled_(mag, 1.f / static_cast<float>(src.size()));
  }
  return intensity;
}

}  // namespace litho::optics
