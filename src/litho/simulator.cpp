#include "litho/simulator.h"

#include <cmath>
#include <stdexcept>

#include "io/io.h"
#include "runtime/thread_pool.h"

namespace litho::optics {

LithoSimulator::LithoSimulator(OpticalConfig cfg,
                               std::vector<SocsKernel> kernels)
    : cfg_(cfg), kernels_(std::move(kernels)) {
  if (kernels_.empty()) throw std::invalid_argument("no SOCS kernels");
  // Open-frame intensity: FFT(ones) concentrates at DC, so each kernel
  // contributes alpha_k * |sum_x h_k(x)|^2.
  double open = 0.0;
  for (const SocsKernel& k : kernels_) {
    double sr = 0.0, si = 0.0;
    for (int64_t i = 0; i < k.spatial.numel(); ++i) {
      sr += k.spatial.re[i];
      si += k.spatial.im[i];
    }
    open += k.alpha * (sr * sr + si * si);
  }
  if (open <= 0.0) throw std::runtime_error("degenerate kernels: zero open-frame intensity");
  open_frame_intensity_ = open;
}

LithoSimulator LithoSimulator::with_cache(const OpticalConfig& cfg,
                                          const std::string& cache_path) {
  if (io::file_exists(cache_path)) {
    return LithoSimulator(cfg, load_kernels(cache_path));
  }
  auto kernels = compute_socs_kernels(cfg);
  save_kernels(cache_path, kernels);
  return LithoSimulator(cfg, std::move(kernels));
}

const std::vector<fft::CTensor>& LithoSimulator::spectra_for(int64_t h,
                                                             int64_t w) const {
  const auto key = std::make_pair(h, w);
  auto it = spectra_cache_.find(key);
  if (it == spectra_cache_.end()) {
    std::vector<fft::CTensor> spectra;
    spectra.reserve(kernels_.size());
    for (const SocsKernel& k : kernels_) {
      spectra.push_back(kernel_spectrum(k, h, w));
    }
    it = spectra_cache_.emplace(key, std::move(spectra)).first;
  }
  return it->second;
}

Tensor LithoSimulator::aerial(const Tensor& mask) const {
  if (mask.dim() != 2) throw std::invalid_argument("aerial: 2-D mask expected");
  const int64_t h = mask.size(0), w = mask.size(1);
  const auto& spectra = spectra_for(h, w);

  fft::CTensor mask_c(mask.clone(), Tensor(mask.shape()));
  const fft::CTensor mask_spec = fft::fft2(mask_c, false);

  Tensor intensity(mask.shape());
  const int64_t n = intensity.numel();
  // The per-kernel loop stays serial (each pixel accumulates kernels in a
  // fixed order, keeping contours bitwise reproducible across thread
  // counts); the inverse FFT parallelizes internally and the |field|^2
  // accumulation fans out over disjoint pixel ranges.
  for (size_t k = 0; k < kernels_.size(); ++k) {
    const fft::CTensor filtered = fft::cmul(mask_spec, spectra[k]);
    const fft::CTensor field = fft::fft2(filtered, true);
    const float alpha = static_cast<float>(kernels_[k].alpha);
    const float* fre = field.re.data();
    const float* fim = field.im.data();
    float* acc = intensity.data();
    runtime::parallel_for(
        n,
        [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            acc[i] += alpha * (fre[i] * fre[i] + fim[i] * fim[i]);
          }
        },
        /*grain=*/16384);
  }
  intensity.mul_(static_cast<float>(1.0 / open_frame_intensity_));
  return intensity;
}

Tensor LithoSimulator::resist(const Tensor& aerial_image) const {
  Tensor out = aerial_image.clone();
  const float t = static_cast<float>(threshold_);
  out.apply_([t](float v) { return v >= t ? 1.f : 0.f; });
  return out;
}

Tensor LithoSimulator::simulate(const Tensor& mask) const {
  return resist(aerial(mask));
}

int64_t LithoSimulator::optical_diameter_px() const {
  return static_cast<int64_t>(
      std::ceil(cfg_.optical_diameter_nm() / cfg_.pixel_nm));
}

}  // namespace litho::optics
