// Partially-coherent optical imaging model (the golden lithography engine).
//
// Implements the Hopkins diffraction model of paper Section 2.1:
//   - a circular-NA pupil (optionally defocused),
//   - a circular or annular illumination source,
//   - the transmission cross coefficient (TCC) matrix over the band-limited
//     frequency support,
//   - its eigendecomposition into SOCS kernels h_k / eigenvalues alpha_k
//     (eq. (1)-(2)),
//   - FFT-based aerial image formation I = sum_k alpha_k |F^-1(H_k . F(M))|^2
//     (eq. (3)).
//
// This is the stand-in for the rigorous engines ("Lithosim" / "Calibre") the
// paper uses to produce golden contours.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "fft/fft.h"
#include "tensor/tensor.h"

namespace litho::optics {

/// Illumination shapes supported by the source model.
enum class SourceShape {
  kCircular,  ///< conventional partially coherent disc, radius sigma_out
  kAnnular,   ///< annulus between sigma_in and sigma_out
};

/// Physical and numerical configuration of the optical model.
struct OpticalConfig {
  double wavelength_nm = 193.0;  ///< ArF immersion scanner
  double na = 1.35;              ///< numerical aperture
  SourceShape source = SourceShape::kAnnular;
  double sigma_in = 0.6;   ///< inner partial-coherence factor (annular)
  double sigma_out = 0.9;  ///< outer partial-coherence factor
  double defocus_nm = 0.0; ///< defocus aberration; 0 = nominal focus

  double pixel_nm = 16.0;  ///< mask raster pixel size
  /// Side of the square grid the TCC is sampled on. Kernels computed here are
  /// cropped in space and re-embedded onto any simulation grid, so this can
  /// be (much) smaller than the simulation tile.
  int64_t kernel_grid = 64;
  int64_t kernel_count = 12;  ///< number of retained SOCS kernels (l in eq. 2)

  /// Cutoff spatial frequency NA/lambda in cycles/nm.
  double cutoff_freq() const { return na / wavelength_nm; }
  /// Pupil radius in frequency-grid index units for @p n samples of pitch
  /// pixel_nm.
  double pupil_radius_px(int64_t n) const {
    return cutoff_freq() * static_cast<double>(n) * pixel_nm;
  }
  /// Estimate of the optical diameter (interaction ambit) in nm, the d of
  /// the paper's large-tile scheme (Section 3.2).
  double optical_diameter_nm() const;
};

/// One SOCS kernel: eigenvalue plus the kernel's spatial samples on a
/// kernel_grid x kernel_grid window centered at the origin.
struct SocsKernel {
  double alpha = 0.0;
  fft::CTensor spatial;  ///< [D, D], center of the kernel at (D/2, D/2)
};

/// Pupil transfer value at frequency (fx, fy) in cycles/nm; complex because
/// of the defocus phase term.
std::complex<double> pupil_value(const OpticalConfig& cfg, double fx,
                                 double fy);

/// Source sample points (in frequency index units of an n-sample grid) and
/// their (uniform) weights.
struct SourcePoint {
  double kx;
  double ky;
};
std::vector<SourcePoint> source_points(const OpticalConfig& cfg, int64_t n);

/// Computes the top-`cfg.kernel_count` SOCS kernels of the TCC by subspace
/// (power) iteration with deflation. Deterministic for a fixed config.
/// Expensive (seconds); callers should cache via save/load below.
std::vector<SocsKernel> compute_socs_kernels(const OpticalConfig& cfg);

/// Serializes kernels to / from the io tensor container format.
void save_kernels(const std::string& path, const std::vector<SocsKernel>& ks);
std::vector<SocsKernel> load_kernels(const std::string& path);

/// Embeds a kernel's spatial window onto an h x w simulation grid (centered
/// at the origin with wrap-around) and returns its full complex spectrum.
fft::CTensor kernel_spectrum(const SocsKernel& k, int64_t h, int64_t w);

/// Reference Abbe (source-point) imaging used in tests to validate the SOCS
/// approximation: exact partially-coherent image of @p mask, O(#source pts)
/// FFT pairs. Returns the UNNORMALIZED intensity.
Tensor abbe_intensity(const OpticalConfig& cfg, const Tensor& mask);

}  // namespace litho::optics
