#include "net/client.h"

#include <cstring>
#include <stdexcept>
#include <vector>

#ifdef __linux__
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#include <cerrno>
#endif

namespace litho::net {

#ifdef __linux__

Client::Client(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &result) != 0 ||
      result == nullptr) {
    throw std::runtime_error("Client: cannot resolve " + host);
  }
  int fd = -1;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    throw std::runtime_error("Client: cannot connect to " + host + ":" +
                             service);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_raw(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, p + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error("Client: send failed (connection closed?)");
  }
}

void Client::send_predict(uint64_t request_id, const Tensor& mask) {
  const std::vector<uint8_t> frame = make_predict_frame(request_id, mask);
  send_raw(frame.data(), frame.size());
}

void Client::send_predict(uint64_t request_id, const Tensor& mask,
                          const std::string& model) {
  const std::vector<uint8_t> frame =
      make_predict_frame(request_id, mask, model);
  send_raw(frame.data(), frame.size());
}

void Client::send_shutdown() {
  const std::vector<uint8_t> frame = make_shutdown_frame();
  send_raw(frame.data(), frame.size());
}

void Client::shutdown_write() { ::shutdown(fd_, SHUT_WR); }

Reply Client::read_reply() {
  uint8_t buf[65536];
  for (;;) {
    // Parse a complete frame from what we already have.
    if (in_.size() >= kHeaderBytes) {
      FrameHeader header;
      if (!decode_header(in_.data(), header)) {
        throw std::runtime_error("Client: malformed frame from server");
      }
      const size_t total = kHeaderBytes + header.payload_bytes;
      if (in_.size() >= total) {
        Reply reply;
        reply.type = header.type;
        reply.request_id = header.request_id;
        const uint8_t* payload = in_.data() + kHeaderBytes;
        if (header.type == FrameType::kContour) {
          if (!decode_image(payload, header.payload_bytes, reply.contour)) {
            throw std::runtime_error("Client: malformed contour payload");
          }
        } else if (header.type == FrameType::kError) {
          reply.error.assign(reinterpret_cast<const char*>(payload),
                             header.payload_bytes);
        }
        in_.erase(in_.begin(),
                  in_.begin() + static_cast<ptrdiff_t>(total));
        return reply;
      }
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      in_.insert(in_.end(), buf, buf + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error("Client: connection closed by server");
  }
}

Tensor Client::predict(uint64_t request_id, const Tensor& mask) {
  send_predict(request_id, mask);
  return finish_predict(request_id);
}

Tensor Client::predict(uint64_t request_id, const Tensor& mask,
                       const std::string& model) {
  send_predict(request_id, mask, model);
  return finish_predict(request_id);
}

Tensor Client::finish_predict(uint64_t request_id) {
  Reply reply = read_reply();
  if (reply.type == FrameType::kBusy) {
    throw std::runtime_error("Client: server busy");
  }
  if (reply.type == FrameType::kError) {
    throw std::runtime_error("Client: server error: " + reply.error);
  }
  if (reply.type != FrameType::kContour ||
      reply.request_id != request_id) {
    throw std::runtime_error("Client: unexpected reply frame");
  }
  return std::move(reply.contour);
}

#else  // !__linux__

Client::Client(const std::string&, uint16_t) {
  throw std::runtime_error("Client: socket front end requires Linux");
}
Client::~Client() = default;
void Client::send_raw(const void*, size_t) {}
void Client::send_predict(uint64_t, const Tensor&) {}
void Client::send_predict(uint64_t, const Tensor&, const std::string&) {}
void Client::send_shutdown() {}
void Client::shutdown_write() {}
Reply Client::read_reply() { return {}; }
Tensor Client::predict(uint64_t, const Tensor&) { return {}; }
Tensor Client::predict(uint64_t, const Tensor&, const std::string&) {
  return {};
}
Tensor Client::finish_predict(uint64_t) { return {}; }

#endif  // __linux__

}  // namespace litho::net
