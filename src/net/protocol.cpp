#include "net/protocol.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace litho::net {

namespace {

void put_u16(uint16_t v, std::vector<uint8_t>& out) {
  out.push_back(static_cast<uint8_t>(v & 0xFF));
  out.push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
}

void put_u32(uint32_t v, std::vector<uint8_t>& out) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(uint64_t v, std::vector<uint8_t>& out) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

uint16_t get_u16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t get_u32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t get_u64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// io::write_pgm's [0,1] -> [0,255] quantization, bit for bit.
uint8_t to_byte(float v) {
  const float c = std::clamp(v, 0.f, 1.f);
  return static_cast<uint8_t>(c * 255.f + 0.5f);
}

}  // namespace

void encode_header(const FrameHeader& header, std::vector<uint8_t>& out) {
  put_u32(kMagic, out);
  out.push_back(header.version);
  out.push_back(static_cast<uint8_t>(header.type));
  put_u16(0, out);  // reserved
  put_u64(header.request_id, out);
  put_u32(header.payload_bytes, out);
}

bool decode_header(const uint8_t* data, FrameHeader& out) {
  if (get_u32(data) != kMagic) return false;
  const uint8_t version = data[4];
  const uint8_t type = data[5];
  if (version != kVersion && version != kVersionLegacy) return false;
  if (type < static_cast<uint8_t>(FrameType::kPredict) ||
      type > static_cast<uint8_t>(FrameType::kShutdown)) {
    return false;
  }
  if (get_u16(data + 6) != 0) return false;
  const uint32_t payload_bytes = get_u32(data + 16);
  if (payload_bytes > kMaxPayloadBytes) return false;
  out.version = version;
  out.type = static_cast<FrameType>(type);
  out.request_id = get_u64(data + 8);
  out.payload_bytes = payload_bytes;
  return true;
}

void encode_image(const Tensor& image, std::vector<uint8_t>& out) {
  const int64_t h = image.size(0), w = image.size(1);
  out.reserve(out.size() + 8 + static_cast<size_t>(h * w));
  put_u32(static_cast<uint32_t>(h), out);
  put_u32(static_cast<uint32_t>(w), out);
  put_u16(255, out);
  put_u16(0, out);  // reserved
  for (int64_t i = 0; i < h * w; ++i) out.push_back(to_byte(image[i]));
}

bool decode_image(const uint8_t* data, size_t size, Tensor& out) {
  if (size < 12) return false;
  const uint32_t h = get_u32(data);
  const uint32_t w = get_u32(data + 4);
  const uint16_t maxval = get_u16(data + 8);
  if (h == 0 || w == 0 || maxval == 0 || maxval > 255) return false;
  const uint64_t pixels = static_cast<uint64_t>(h) * w;
  if (size != 12 + pixels) return false;
  Tensor image({static_cast<int64_t>(h), static_cast<int64_t>(w)});
  const float scale = 1.f / static_cast<float>(maxval);  // as io::read_pgm
  const uint8_t* raw = data + 12;
  for (uint64_t i = 0; i < pixels; ++i) {
    image[static_cast<int64_t>(i)] = static_cast<float>(raw[i]) * scale;
  }
  out = std::move(image);
  return true;
}

bool decode_predict_payload(uint8_t version, const uint8_t* data, size_t size,
                            std::string& model_out, Tensor& mask_out) {
  if (version == kVersionLegacy) {
    model_out.clear();
    return decode_image(data, size, mask_out);
  }
  if (version != kVersion) return false;
  if (size < 4) return false;
  const uint16_t model_len = get_u16(data);
  if (model_len > kMaxModelNameBytes) return false;
  if (get_u16(data + 2) != 0) return false;  // reserved
  if (size < 4u + model_len) return false;
  model_out.assign(reinterpret_cast<const char*>(data + 4), model_len);
  return decode_image(data + 4 + model_len, size - 4 - model_len, mask_out);
}

namespace {

std::vector<uint8_t> make_image_frame(FrameType type, uint64_t request_id,
                                      const Tensor& image) {
  std::vector<uint8_t> payload;
  encode_image(image, payload);
  FrameHeader header;
  header.type = type;
  header.request_id = request_id;
  header.payload_bytes = static_cast<uint32_t>(payload.size());
  std::vector<uint8_t> frame;
  frame.reserve(kHeaderBytes + payload.size());
  encode_header(header, frame);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

}  // namespace

std::vector<uint8_t> make_predict_frame(uint64_t request_id,
                                        const Tensor& mask) {
  // Version-1 wire format, kept byte-identical for compatibility tests
  // and old clients; the server routes it to its default model.
  std::vector<uint8_t> frame =
      make_image_frame(FrameType::kPredict, request_id, mask);
  frame[4] = kVersionLegacy;
  return frame;
}

std::vector<uint8_t> make_predict_frame(uint64_t request_id,
                                        const Tensor& mask,
                                        const std::string& model) {
  if (model.size() > kMaxModelNameBytes) {
    throw std::invalid_argument("make_predict_frame: model name too long");
  }
  std::vector<uint8_t> payload;
  put_u16(static_cast<uint16_t>(model.size()), payload);
  put_u16(0, payload);  // reserved
  payload.insert(payload.end(), model.begin(), model.end());
  encode_image(mask, payload);
  FrameHeader header;
  header.type = FrameType::kPredict;
  header.request_id = request_id;
  header.payload_bytes = static_cast<uint32_t>(payload.size());
  std::vector<uint8_t> frame;
  frame.reserve(kHeaderBytes + payload.size());
  encode_header(header, frame);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

std::vector<uint8_t> make_contour_frame(uint64_t request_id,
                                        const Tensor& contour) {
  return make_image_frame(FrameType::kContour, request_id, contour);
}

std::vector<uint8_t> make_busy_frame(uint64_t request_id) {
  FrameHeader header;
  header.type = FrameType::kBusy;
  header.request_id = request_id;
  std::vector<uint8_t> frame;
  encode_header(header, frame);
  return frame;
}

std::vector<uint8_t> make_error_frame(uint64_t request_id,
                                      const std::string& message) {
  FrameHeader header;
  header.type = FrameType::kError;
  header.request_id = request_id;
  header.payload_bytes = static_cast<uint32_t>(message.size());
  std::vector<uint8_t> frame;
  frame.reserve(kHeaderBytes + message.size());
  encode_header(header, frame);
  frame.insert(frame.end(), message.begin(), message.end());
  return frame;
}

std::vector<uint8_t> make_shutdown_frame() {
  FrameHeader header;
  header.type = FrameType::kShutdown;
  std::vector<uint8_t> frame;
  encode_header(header, frame);
  return frame;
}

}  // namespace litho::net
