// Framed binary protocol for the DOINN socket front end.
//
// Every message is one length-prefixed frame: a fixed 20-byte header
// followed by `payload_bytes` of type-specific payload. All integers are
// little-endian, serialized byte-by-byte so the format is identical on any
// host.
//
//   offset  size  field
//   0       4     magic  0x4E494F44 ("DOIN")
//   4       1     version (kVersion = 2; kVersionLegacy = 1 still decoded)
//   5       1     type (FrameType)
//   6       2     reserved, must be 0
//   8       8     request_id — chosen by the client, echoed verbatim in
//                 the reply so responses can be matched under pipelining
//   16      4     payload_bytes (<= kMaxPayloadBytes)
//
// Frame types and payloads:
//   kPredict (client -> server): the image payload
//       u32 height | u32 width | u16 maxval | u16 reserved |
//       height*width bytes of 8-bit mask levels
//     — version 2 prefixes it with a routing key:
//       u16 model_len (<= kMaxModelNameBytes) | u16 reserved |
//       model_len bytes of model name (no NUL)
//     An empty name, like every version-1 frame, routes to the server's
//     default model. The server scales levels by 1/maxval exactly like
//     io::read_pgm, so a mask sent from a PGM file produces the same float
//     tensor — and therefore a bitwise-identical contour — as
//     manifest-mode ingest of that file.
//   kContour (server -> client): same layout (maxval 255); levels are the
//     io::write_pgm quantization of the binarized contour, so writing the
//     payload back out as a PGM reproduces manifest-mode output files
//     byte for byte.
//   kBusy (server -> client): empty payload. The scheduler queue was full
//     (503 semantics): the request was NOT accepted; retry later. The
//     connection stays open.
//   kError (server -> client): UTF-8 message. Request-level errors (the
//     engine rejected the mask) keep the connection open; protocol-level
//     errors (bad magic/version, oversize or malformed frame) are
//     followed by the server closing the connection.
//   kShutdown (client -> server): empty payload; asks the server to drain
//     and exit (the loopback equivalent of the `__shutdown__` manifest
//     line). No reply; the connection closes when the server drains.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace litho::net {

constexpr uint32_t kMagic = 0x4E494F44;  // "DOIN" little-endian
/// Current protocol version (adds the kPredict model-name prefix).
constexpr uint8_t kVersion = 2;
/// First protocol version; still decoded, routes to the default model.
constexpr uint8_t kVersionLegacy = 1;
constexpr size_t kHeaderBytes = 20;
/// Longest model name a v2 kPredict frame may carry.
constexpr uint16_t kMaxModelNameBytes = 256;
/// Payload ceiling: an 8192 x 8192 mask plus the image sub-header and the
/// v2 model-name prefix. Frames declaring more are a protocol error
/// (rejected before any allocation).
constexpr uint32_t kMaxPayloadBytes =
    8192u * 8192u + 8u + 4u + kMaxModelNameBytes;

enum class FrameType : uint8_t {
  kPredict = 1,
  kContour = 2,
  kBusy = 3,
  kError = 4,
  kShutdown = 5,
};

struct FrameHeader {
  uint8_t version = kVersion;
  FrameType type = FrameType::kPredict;
  uint64_t request_id = 0;
  uint32_t payload_bytes = 0;
};

/// Serializes @p header into the 20-byte wire form appended to @p out.
void encode_header(const FrameHeader& header, std::vector<uint8_t>& out);

/// Parses a header from @p data (at least kHeaderBytes long). Returns
/// false — leaving @p out untouched — on bad magic, unknown version or
/// type, nonzero reserved bits, or a payload_bytes above kMaxPayloadBytes.
/// Both kVersion and kVersionLegacy are accepted; out.version tells the
/// caller which payload layout to expect.
bool decode_header(const uint8_t* data, FrameHeader& out);

/// Encodes a [0,1] 2-D tensor as a kPredict/kContour image payload using
/// io::write_pgm's quantization (maxval 255). Appends to @p out.
void encode_image(const Tensor& image, std::vector<uint8_t>& out);

/// Decodes an image payload into a 2-D tensor, scaling levels by 1/maxval
/// exactly like io::read_pgm. Returns false on a malformed payload
/// (sub-header truncated, zero extent, maxval 0 or > 255, byte count not
/// equal to height*width).
bool decode_image(const uint8_t* data, size_t size, Tensor& out);

/// Decodes a kPredict payload for either protocol version. For
/// kVersionLegacy the payload is the bare image and @p model_out is
/// cleared; for kVersion the model-name prefix is parsed first. Returns
/// false on any malformed layout (unknown version, truncated prefix,
/// model_len > kMaxModelNameBytes, nonzero reserved bits, bad image).
bool decode_predict_payload(uint8_t version, const uint8_t* data, size_t size,
                            std::string& model_out, Tensor& mask_out);

/// Builds one complete frame (header + payload) ready to write.
/// The two-argument predict form emits a version-1 frame (bare image,
/// default-model routing — byte-identical to the pre-v2 wire format); the
/// three-argument form emits a version-2 frame carrying @p model (empty =
/// default model; throws std::invalid_argument above kMaxModelNameBytes).
std::vector<uint8_t> make_predict_frame(uint64_t request_id,
                                        const Tensor& mask);
std::vector<uint8_t> make_predict_frame(uint64_t request_id,
                                        const Tensor& mask,
                                        const std::string& model);
std::vector<uint8_t> make_contour_frame(uint64_t request_id,
                                        const Tensor& contour);
std::vector<uint8_t> make_busy_frame(uint64_t request_id);
std::vector<uint8_t> make_error_frame(uint64_t request_id,
                                      const std::string& message);
std::vector<uint8_t> make_shutdown_frame();

}  // namespace litho::net
