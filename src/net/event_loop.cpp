#include "net/event_loop.h"

#include <stdexcept>
#include <utility>
#include <vector>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>
#include <cerrno>
#endif

namespace litho::net {

#ifdef __linux__

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error("EventLoop: epoll_create1 failed");
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw std::runtime_error("EventLoop: eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw std::runtime_error("EventLoop: cannot register wake fd");
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add(int fd, uint32_t events, FdCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw std::runtime_error("EventLoop: epoll_ctl ADD failed");
  }
  callbacks_[fd] = std::move(cb);
}

void EventLoop::modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw std::runtime_error("EventLoop: epoll_ctl MOD failed");
  }
}

void EventLoop::remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::set_wake_handler(std::function<void()> handler) {
  wake_handler_ = std::move(handler);
}

void EventLoop::set_poll_handler(int interval_ms,
                                 std::function<void()> handler) {
  poll_interval_ms_ = interval_ms;
  poll_handler_ = std::move(handler);
}

void EventLoop::run() {
  std::vector<epoll_event> ready(64);
  while (!stop_.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(epoll_fd_, ready.data(),
                               static_cast<int>(ready.size()),
                               poll_interval_ms_);
    if (n < 0) {
      if (errno == EINTR) continue;  // signal; stop flag checked above
      throw std::runtime_error("EventLoop: epoll_wait failed");
    }
    bool woken = false;
    for (int i = 0; i < n; ++i) {
      const int fd = ready[static_cast<size_t>(i)].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        woken = true;
        continue;
      }
      // A callback earlier in this round may have removed the fd (e.g. a
      // peer hang-up closed the connection); look it up fresh each time.
      const auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;
      it->second(ready[static_cast<size_t>(i)].events);
    }
    if (woken && wake_handler_) wake_handler_();
    if (poll_handler_) poll_handler_();
  }
}

void EventLoop::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  wake();
}

void EventLoop::wake() {
  const uint64_t one = 1;
  // write(2) on an eventfd is async-signal-safe; a failed/partial write
  // only delays the wake until the next poll round.
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof(one));
}

#else  // !__linux__ — the socket front end is Linux-only; constructing the
       // loop elsewhere reports that instead of failing to compile.

EventLoop::EventLoop() {
  throw std::runtime_error("EventLoop: epoll front end requires Linux");
}
EventLoop::~EventLoop() = default;
void EventLoop::add(int, uint32_t, FdCallback) {}
void EventLoop::modify(int, uint32_t) {}
void EventLoop::remove(int) {}
void EventLoop::set_wake_handler(std::function<void()>) {}
void EventLoop::set_poll_handler(int, std::function<void()>) {}
void EventLoop::run() {}
void EventLoop::request_stop() {}
void EventLoop::wake() {}

#endif  // __linux__

}  // namespace litho::net
