// Minimal epoll-based event loop for the socket front end.
//
// Single-threaded readiness dispatch: file descriptors are registered with
// an interest mask and a callback; run() blocks in epoll_wait and invokes
// the callback of each ready descriptor on the loop thread. Two
// cross-thread entry points exist, both async-signal-safe (one relaxed
// atomic store plus an eventfd write, no locks): request_stop(), which
// makes run() return after the current dispatch round — callable from a
// SIGINT/SIGTERM handler — and wake(), which interrupts the epoll_wait so
// the loop services work posted by another thread (the completion thread
// hands finished contours back this way) via the wake handler.
//
// This is deliberately not a general-purpose reactor: no timers beyond a
// single optional poll interval, no thread pool, level-triggered only.
// The serving front end needs exactly "accept, read frames, write
// replies, wake on completion" — see src/net/server.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>

namespace litho::net {

class EventLoop {
 public:
  /// Ready-callback: receives the epoll event bits (EPOLLIN, EPOLLOUT,
  /// EPOLLHUP, ...). It may add()/remove() descriptors, including its own.
  using FdCallback = std::function<void(uint32_t)>;

  /// Creates the epoll instance and the wake eventfd; throws
  /// std::runtime_error when the kernel refuses either.
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers @p fd with interest @p events. The callback runs on the
  /// loop thread only.
  void add(int fd, uint32_t events, FdCallback cb);
  /// Updates the interest mask of a registered descriptor.
  void modify(int fd, uint32_t events);
  /// Deregisters @p fd. Safe to call from a callback (a readiness event
  /// already harvested for a removed fd is discarded, not dispatched).
  void remove(int fd);

  /// Dispatches events until request_stop(). When a poll handler is set,
  /// epoll_wait uses that interval as its timeout and the handler runs
  /// after every wait, ready or not — the listen-mode hook for SIGUSR1
  /// observability dumps.
  void run();

  /// Makes run() return after the current dispatch round. Callable from
  /// any thread and from signal handlers.
  void request_stop();
  /// True once request_stop() has been called.
  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Interrupts the current epoll_wait so the wake handler runs. Callable
  /// from any thread and from signal handlers.
  void wake();
  /// Handler invoked on the loop thread after a wake() (and, spuriously,
  /// after any wait round that drained the wake eventfd).
  void set_wake_handler(std::function<void()> handler);

  /// Runs @p handler on the loop thread at least every @p interval_ms
  /// while the loop is idle (see run()).
  void set_poll_handler(int interval_ms, std::function<void()> handler);

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::function<void()> wake_handler_;
  std::function<void()> poll_handler_;
  int poll_interval_ms_ = -1;  // -1: block indefinitely
  std::unordered_map<int, FdCallback> callbacks_;
};

}  // namespace litho::net
