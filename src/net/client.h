// Blocking client for the framed mask-in / contour-out protocol
// (src/net/protocol.h). One Client wraps one TCP connection; requests may
// be pipelined (send several predicts, then read the replies in order).
// Used by the doinn_client load generator, the socket pass of
// bench_serve_throughput, and the loopback end-to-end tests.
//
// Not thread-safe: share nothing, or one Client per thread.
#pragma once

#include <cstdint>
#include <string>

#include "net/protocol.h"
#include "tensor/tensor.h"

namespace litho::net {

/// One decoded reply frame.
struct Reply {
  FrameType type = FrameType::kError;
  uint64_t request_id = 0;
  Tensor contour;     ///< valid when type == kContour
  std::string error;  ///< server's message when type == kError
};

class Client {
 public:
  /// Connects (blocking) to host:port; throws std::runtime_error when the
  /// connection cannot be established.
  Client(const std::string& host, uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends a PREDICT frame carrying @p mask (quantized exactly like
  /// io::write_pgm, so the server decodes the same tensor manifest mode
  /// would read from a PGM file). The two-argument form sends a version-1
  /// frame (default-model routing); the @p model form sends a version-2
  /// frame naming the model to serve ("" = default model).
  void send_predict(uint64_t request_id, const Tensor& mask);
  void send_predict(uint64_t request_id, const Tensor& mask,
                    const std::string& model);

  /// Asks the server to stop and drain.
  void send_shutdown();

  /// Sends arbitrary bytes verbatim — the tests use this to feed the
  /// server garbage and oversize frames.
  void send_raw(const void* data, size_t size);

  /// Blocks until one complete reply frame arrives. Throws
  /// std::runtime_error when the server closes the connection or sends a
  /// frame that does not parse.
  Reply read_reply();

  /// send_predict + read_reply; throws on BUSY/ERROR replies. Convenience
  /// for sequential callers that don't pipeline. The @p model form routes
  /// to a named model on a multi-model server.
  Tensor predict(uint64_t request_id, const Tensor& mask);
  Tensor predict(uint64_t request_id, const Tensor& mask,
                 const std::string& model);

  /// Half-closes the write side so the server sees EOF while replies can
  /// still be read.
  void shutdown_write();

 private:
  Tensor finish_predict(uint64_t request_id);

  int fd_ = -1;
  std::vector<uint8_t> in_;  ///< bytes received but not yet parsed
};

}  // namespace litho::net
