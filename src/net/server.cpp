#include "net/server.h"

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#ifdef __linux__
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <cerrno>
#endif

#include "net/event_loop.h"
#include "net/protocol.h"
#include "runtime/engine_pool.h"
#include "runtime/trace.h"

namespace litho::net {

#ifdef __linux__

namespace {

using Clock = std::chrono::steady_clock;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_blocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
}

}  // namespace

struct Server::Impl {
  Impl(runtime::Scheduler* sched, runtime::EnginePool* engine_pool,
       const ServerOptions& options, runtime::MetricsRegistry* registry,
       Server& owner)
      : scheduler(sched),
        pool(engine_pool),
        opts(options),
        server(owner),
        owned_metrics(registry != nullptr ? nullptr
                                          : new runtime::MetricsRegistry),
        metrics(registry != nullptr ? registry : owned_metrics.get()),
        m_connections(metrics->counter("serve.connections_accepted")),
        m_ok(metrics->counter("serve.requests_ok")),
        m_errors(metrics->counter("serve.requests_error")),
        m_busy(metrics->counter("serve.busy_rejected")),
        m_protocol_errors(metrics->counter("serve.protocol_errors")),
        m_dropped(metrics->counter("serve.dropped_replies")),
        m_idle_reaped(metrics->counter("serve.idle_reaped")),
        m_latency_ms(metrics->histogram("serve.latency_ms")),
        m_error_latency_ms(metrics->histogram("serve.error_latency_ms")) {}

  /// One accepted connection. Frames are reassembled in `in`; outgoing
  /// frames queue in `out` and flush opportunistically, resuming on
  /// EPOLLOUT after a partial write.
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    std::vector<uint8_t> in;
    std::deque<std::vector<uint8_t>> out;
    size_t out_offset = 0;  // into out.front()
    bool want_write = false;
    bool close_after_flush = false;
    /// Last time frame bytes moved on the socket; idle reaping measures
    /// from here. Requests in flight also count as activity (inflight).
    Clock::time_point last_activity;
    /// Accepted requests whose reply has not been queued yet.
    int64_t inflight = 0;
    // close_conn() ran: deregistered and unreachable by id, awaiting
    // reap(). Deferred destruction keeps Connection& references held by
    // callers up the stack valid.
    bool dead = false;
  };

  /// An accepted request travelling loop thread -> completion thread.
  struct PendingReply {
    uint64_t conn_id = 0;
    uint64_t wire_id = 0;   // client's request id, echoed in the reply
    uint64_t trace_id = 0;  // server ingest id, correlates trace spans
    std::future<Tensor> contour;
    Clock::time_point t0;
  };

  /// A resolved request travelling completion thread -> loop thread.
  struct DoneReply {
    uint64_t conn_id = 0;
    uint64_t wire_id = 0;
    uint64_t trace_id = 0;
    bool ok = false;
    Tensor contour;
    std::string error;
    Clock::time_point t0;
  };

  // Exactly one of these backs the predict path: a single scheduler
  // (single-model server) or an engine pool routing by model name.
  runtime::Scheduler* scheduler = nullptr;
  runtime::EnginePool* pool = nullptr;
  const ServerOptions opts;
  Server& server;
  std::unique_ptr<runtime::MetricsRegistry> owned_metrics;
  runtime::MetricsRegistry* metrics;
  runtime::Counter& m_connections;
  runtime::Counter& m_ok;
  runtime::Counter& m_errors;
  runtime::Counter& m_busy;
  runtime::Counter& m_protocol_errors;
  runtime::Counter& m_dropped;
  runtime::Counter& m_idle_reaped;
  runtime::Histogram& m_latency_ms;
  runtime::Histogram& m_error_latency_ms;

  EventLoop loop;
  int listen_fd = -1;
  uint64_t next_conn_id = 0;
  uint64_t next_trace_id = 0;
  std::unordered_map<int, Connection> conns;          // by fd
  std::unordered_map<uint64_t, int> conn_fd_by_id;    // id -> fd
  std::vector<int> dead_fds;                          // awaiting reap()

  std::mutex pending_mutex;
  std::condition_variable pending_cv;
  std::deque<PendingReply> pending;
  bool pending_closed = false;
  std::thread completion_thread;

  std::mutex done_mutex;
  std::vector<DoneReply> done;

  // User poll hook (doinn_serve's SIGUSR1 dump flag); the loop's single
  // poll handler is owned here so the idle-reap tick can share it.
  std::function<void()> user_poll;
  int user_poll_ms = 0;

  // -- setup ----------------------------------------------------------------

  void listen() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) throw std::runtime_error("Server: socket failed");
    const int on = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(opts.port);
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(listen_fd);
      listen_fd = -1;
      throw std::runtime_error("Server: cannot bind port " +
                               std::to_string(opts.port));
    }
    if (::listen(listen_fd, opts.max_connections) != 0) {
      ::close(listen_fd);
      listen_fd = -1;
      throw std::runtime_error("Server: listen failed");
    }
    set_nonblocking(listen_fd);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    server.port_ = ntohs(addr.sin_port);
    loop.add(listen_fd, EPOLLIN, [this](uint32_t) { on_accept(); });
    loop.set_wake_handler([this] { drain_done(/*final=*/false); });
    completion_thread = std::thread([this] { completion_loop(); });
  }

  // -- event-loop thread ----------------------------------------------------

  void on_accept() {
    for (;;) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return;  // transient accept failure; keep serving
      }
      if (static_cast<int>(conns.size()) >= opts.max_connections) {
        ::close(fd);  // beyond the cap: refuse by immediate close
        continue;
      }
      set_nonblocking(fd);
      const int on = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
      Connection conn;
      conn.fd = fd;
      conn.id = ++next_conn_id;
      conn.last_activity = Clock::now();
      conn_fd_by_id[conn.id] = fd;
      conns[fd] = std::move(conn);
      m_connections.add();
      loop.add(fd, EPOLLIN, [this, fd](uint32_t events) {
        on_connection_ready(fd, events);
      });
    }
  }

  void on_connection_ready(int fd, uint32_t events) {
    const auto it = conns.find(fd);
    if (it == conns.end() || it->second.dead) return;
    Connection& conn = it->second;
    if (events & (EPOLLHUP | EPOLLERR)) {
      close_conn(conn);
      reap();
      return;
    }
    if (events & EPOLLOUT) flush(conn);
    if ((events & EPOLLIN) && !conn.dead) {
      uint8_t buf[65536];
      for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n > 0) {
          conn.last_activity = Clock::now();
          conn.in.insert(conn.in.end(), buf, buf + n);
          if (static_cast<size_t>(n) < sizeof(buf)) break;
          continue;
        }
        if (n == 0) {  // peer closed
          close_conn(conn);
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(conn);
        break;
      }
      if (!conn.dead) parse_frames(conn);
    }
    reap();
  }

  void parse_frames(Connection& conn) {
    size_t consumed = 0;
    while (!conn.dead && !conn.close_after_flush &&
           conn.in.size() - consumed >= kHeaderBytes) {
      FrameHeader header;
      if (!decode_header(conn.in.data() + consumed, header)) {
        protocol_error(conn, 0, "bad frame header");
        break;
      }
      const size_t frame_bytes = kHeaderBytes + header.payload_bytes;
      if (conn.in.size() - consumed < frame_bytes) break;  // need more bytes
      handle_frame(conn, header, conn.in.data() + consumed + kHeaderBytes);
      consumed += frame_bytes;
      if (loop.stop_requested()) break;
    }
    if (consumed > 0) {
      conn.in.erase(conn.in.begin(),
                    conn.in.begin() + static_cast<ptrdiff_t>(consumed));
    }
  }

  void handle_frame(Connection& conn, const FrameHeader& header,
                    const uint8_t* payload) {
    switch (header.type) {
      case FrameType::kPredict: {
        const Clock::time_point t0 = Clock::now();
        const uint64_t trace_id = ++next_trace_id;
        DOINN_TRACE_SCOPE("serve.ingest", "serve", "req",
                          static_cast<int64_t>(trace_id));
        std::string model;
        Tensor mask;
        if (!decode_predict_payload(header.version, payload,
                                    header.payload_bytes, model, mask)) {
          protocol_error(conn, header.request_id, "malformed predict payload");
          return;
        }
        // Unknown model is a request-level error: this request fails but
        // the connection (and any pipelined requests on it) stays open.
        const bool known =
            pool != nullptr ? pool->has_model(model) : model.empty();
        if (!known) {
          m_errors.add();
          m_error_latency_ms.record(
              std::chrono::duration<double, std::milli>(Clock::now() - t0)
                  .count());
          send_frame(conn, make_error_frame(header.request_id,
                                            "unknown model: " + model));
          return;
        }
        auto future =
            pool != nullptr
                ? pool->try_submit(model, std::move(mask), trace_id)
                : scheduler->try_submit(std::move(mask), trace_id);
        if (!future.has_value()) {
          // Queue full (or the scheduler is draining): typed BUSY reject,
          // never a blocked event loop or a silently dropped request.
          m_busy.add();
          send_frame(conn, make_busy_frame(header.request_id));
          return;
        }
        PendingReply reply;
        reply.conn_id = conn.id;
        reply.wire_id = header.request_id;
        reply.trace_id = trace_id;
        reply.contour = std::move(*future);
        reply.t0 = t0;
        ++conn.inflight;
        {
          std::lock_guard<std::mutex> lock(pending_mutex);
          pending.push_back(std::move(reply));
        }
        pending_cv.notify_one();
        return;
      }
      case FrameType::kShutdown:
        server.shutdown_requested_.store(true, std::memory_order_relaxed);
        loop.request_stop();
        return;
      case FrameType::kContour:
      case FrameType::kBusy:
      case FrameType::kError:
        protocol_error(conn, header.request_id,
                       "server-to-client frame type from client");
        return;
    }
    protocol_error(conn, header.request_id, "unknown frame type");
  }

  void protocol_error(Connection& conn, uint64_t wire_id,
                      const char* message) {
    m_protocol_errors.add();
    conn.close_after_flush = true;
    send_frame(conn, make_error_frame(wire_id, message));
  }

  /// Queues @p frame on the connection and flushes what the socket will
  /// take right now.
  void send_frame(Connection& conn, std::vector<uint8_t> frame) {
    conn.out.push_back(std::move(frame));
    flush(conn);
  }

  /// Writes queued frames until the socket blocks. Returns false when the
  /// connection was closed (flushed completely with close_after_flush
  /// set, or a write error). The Connection stays valid until reap().
  bool flush(Connection& conn) {
    if (conn.dead) return false;
    while (!conn.out.empty()) {
      const std::vector<uint8_t>& front = conn.out.front();
      const ssize_t n =
          ::send(conn.fd, front.data() + conn.out_offset,
                 front.size() - conn.out_offset, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (!conn.want_write) {
            conn.want_write = true;
            loop.modify(conn.fd, EPOLLIN | EPOLLOUT);
          }
          return true;
        }
        close_conn(conn);
        return false;
      }
      conn.last_activity = Clock::now();
      conn.out_offset += static_cast<size_t>(n);
      if (conn.out_offset == front.size()) {
        conn.out.pop_front();
        conn.out_offset = 0;
      }
    }
    if (conn.want_write) {
      conn.want_write = false;
      loop.modify(conn.fd, EPOLLIN);
    }
    if (conn.close_after_flush) {
      close_conn(conn);
      return false;
    }
    return true;
  }

  /// Deregisters and marks the connection dead. The fd is closed and the
  /// map entry erased by reap(), at the top of the call stack — deferring
  /// both keeps Connection& references valid and prevents the kernel from
  /// recycling the fd number into a colliding map key mid-dispatch.
  void close_conn(Connection& conn) {
    if (conn.dead) return;
    loop.remove(conn.fd);
    conn_fd_by_id.erase(conn.id);
    conn.dead = true;
    dead_fds.push_back(conn.fd);
  }

  void reap() {
    for (const int fd : dead_fds) {
      ::close(fd);
      conns.erase(fd);
    }
    dead_fds.clear();
  }

  /// Closes every connection that has sat past the idle timeout with no
  /// socket traffic, nothing queued to write, and no request in flight —
  /// an in-flight contour still counts as activity, so a slow inference
  /// never gets its connection reaped from under it. Runs on the loop
  /// thread via the poll handler.
  void reap_idle() {
    if (opts.idle_timeout_ms <= 0) return;
    const auto now = Clock::now();
    const auto limit = std::chrono::milliseconds(opts.idle_timeout_ms);
    for (auto& [fd, conn] : conns) {
      (void)fd;
      if (conn.dead || conn.inflight > 0 || !conn.out.empty()) continue;
      if (now - conn.last_activity >= limit) {
        m_idle_reaped.add();
        close_conn(conn);
      }
    }
    reap();
  }

  /// Installs the loop's single poll handler: the idle-reap tick plus the
  /// user hook from Server::set_poll_handler, at the shorter of the two
  /// cadences. Called by run(), after any set_poll_handler.
  void install_poll() {
    int interval = -1;
    if (opts.idle_timeout_ms > 0) {
      // Ticking at a quarter of the timeout bounds reap lag at ~25% while
      // keeping a 60 s default down to one wakeup per second.
      interval = std::min(1000, std::max(10, opts.idle_timeout_ms / 4));
    }
    if (user_poll && user_poll_ms > 0) {
      interval = interval < 0 ? user_poll_ms : std::min(interval, user_poll_ms);
    }
    if (interval < 0) return;
    loop.set_poll_handler(interval, [this] {
      reap_idle();
      if (user_poll) user_poll();
    });
  }

  /// Loop-thread half of the completion hand-off: encodes every resolved
  /// contour into its connection's write queue. During the final drain
  /// (@p final) sockets have been switched to blocking, so flush pushes
  /// every reply out before close.
  void drain_done(bool final) {
    std::vector<DoneReply> batch;
    {
      std::lock_guard<std::mutex> lock(done_mutex);
      batch.swap(done);
    }
    for (DoneReply& reply : batch) {
      const auto fd_it = conn_fd_by_id.find(reply.conn_id);
      if (fd_it == conn_fd_by_id.end()) {
        m_dropped.add();  // connection closed before its contour resolved
        continue;
      }
      Connection& conn = conns.at(fd_it->second);
      --conn.inflight;
      // Counters land before the reply bytes: a client that reads the
      // frame and immediately polls stats() must already see its request.
      const double ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - reply.t0)
                            .count();
      if (reply.ok) {
        m_ok.add();
        m_latency_ms.record(ms);
      } else {
        // Fast-fail samples go to their own histogram so error bursts
        // can't drag down the serve.latency_ms percentiles.
        m_errors.add();
        m_error_latency_ms.record(ms);
      }
      {
        DOINN_TRACE_SCOPE("serve.write", "serve", "req",
                          static_cast<int64_t>(reply.trace_id));
        send_frame(conn, reply.ok
                             ? make_contour_frame(reply.wire_id, reply.contour)
                             : make_error_frame(reply.wire_id, reply.error));
      }
    }
    (void)final;
  }

  // -- completion thread ----------------------------------------------------

  void completion_loop() {
    runtime::trace::set_thread_name("serve-completion");
    for (;;) {
      PendingReply pending_reply;
      {
        std::unique_lock<std::mutex> lock(pending_mutex);
        pending_cv.wait(lock,
                        [this] { return !pending.empty() || pending_closed; });
        if (pending.empty()) return;  // closed and fully drained
        pending_reply = std::move(pending.front());
        pending.pop_front();
      }
      DoneReply done_reply;
      done_reply.conn_id = pending_reply.conn_id;
      done_reply.wire_id = pending_reply.wire_id;
      done_reply.trace_id = pending_reply.trace_id;
      done_reply.t0 = pending_reply.t0;
      {
        DOINN_TRACE_SCOPE("serve.wait", "serve", "req",
                          static_cast<int64_t>(pending_reply.trace_id));
        try {
          done_reply.contour = pending_reply.contour.get();
          done_reply.ok = true;
        } catch (const std::exception& e) {
          done_reply.error = e.what();
        }
      }
      {
        std::lock_guard<std::mutex> lock(done_mutex);
        done.push_back(std::move(done_reply));
      }
      loop.wake();
    }
  }

  // -- drain ----------------------------------------------------------------

  void drain() {
    // 1. No new connections or frames.
    if (listen_fd >= 0) {
      loop.remove(listen_fd);
      ::close(listen_fd);
      listen_fd = -1;
    }
    // 2. Every accepted request resolves: close the pending queue and let
    //    the completion thread work through it (the scheduler is still
    //    running — the owner shuts it down only after run() returns).
    {
      std::lock_guard<std::mutex> lock(pending_mutex);
      pending_closed = true;
    }
    pending_cv.notify_all();
    if (completion_thread.joinable()) completion_thread.join();
    // 3. Flush every reply with blocking writes, then close.
    for (auto& [fd, conn] : conns) {
      set_blocking(fd);
      (void)conn;
    }
    drain_done(/*final=*/true);
    for (auto& [fd, conn] : conns) {
      (void)conn;
      ::close(fd);
    }
    conns.clear();
    conn_fd_by_id.clear();
  }
};

Server::Server(runtime::Scheduler& scheduler, const ServerOptions& opts,
               runtime::MetricsRegistry* metrics)
    : impl_(new Impl(&scheduler, nullptr, opts, metrics, *this)) {
  impl_->listen();
  metrics_ = impl_->metrics;
}

Server::Server(runtime::EnginePool& pool, const ServerOptions& opts,
               runtime::MetricsRegistry* metrics)
    : impl_(new Impl(nullptr, &pool, opts, metrics, *this)) {
  impl_->listen();
  metrics_ = impl_->metrics;
}

Server::~Server() {
  // run() normally drains; cover the constructed-but-never-run case (and
  // a run() that threw) so the completion thread always joins.
  if (impl_->completion_thread.joinable()) {
    impl_->loop.request_stop();
    impl_->drain();
  }
  if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);
}

void Server::run() {
  runtime::trace::set_thread_name("serve-loop");
  impl_->install_poll();
  impl_->loop.run();
  impl_->drain();
}

void Server::stop() { impl_->loop.request_stop(); }

void Server::set_poll_handler(int interval_ms,
                              std::function<void()> handler) {
  impl_->user_poll_ms = interval_ms;
  impl_->user_poll = std::move(handler);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = impl_->m_connections.value();
  s.requests_ok = impl_->m_ok.value();
  s.requests_error = impl_->m_errors.value();
  s.busy_rejected = impl_->m_busy.value();
  s.protocol_errors = impl_->m_protocol_errors.value();
  s.dropped_replies = impl_->m_dropped.value();
  s.idle_reaped = impl_->m_idle_reaped.value();
  return s;
}

#else  // !__linux__

struct Server::Impl {};

Server::Server(runtime::Scheduler&, const ServerOptions&,
               runtime::MetricsRegistry*) {
  throw std::runtime_error("Server: the socket front end requires Linux");
}
Server::Server(runtime::EnginePool&, const ServerOptions&,
               runtime::MetricsRegistry*) {
  throw std::runtime_error("Server: the socket front end requires Linux");
}
Server::~Server() = default;
void Server::run() {}
void Server::stop() {}
void Server::set_poll_handler(int, std::function<void()>) {}
ServerStats Server::stats() const { return {}; }

#endif  // __linux__

}  // namespace litho::net
