// TCP serving front end: framed mask-in / contour-out protocol over an
// epoll event loop, integrated with the dynamic-batching scheduler through
// its non-blocking try_submit.
//
// Threading model (two threads, both owned here):
//
//   event-loop thread (the caller of run())
//     accepts connections, reassembles length-prefixed frames from the
//     nonblocking sockets, decodes masks, and calls
//     Scheduler::try_submit. A full queue yields an immediate BUSY reply
//     (503 semantics) — the loop never blocks on backpressure, never
//     drops a request silently, and keeps serving other connections
//     while the engine is saturated. Completed contours are encoded and
//     written back from the same thread (partial writes resume on
//     EPOLLOUT).
//
//   completion thread
//     waits on the scheduler futures in acceptance order (they resolve in
//     dispatch order, so this pipeline stays full), then hands finished
//     contours back to the loop thread through a mutex-guarded list plus
//     an eventfd wake. Futures are the only blocking wait in the server,
//     and it happens here, off the event loop.
//
// Protocol-level errors (bad magic/version, oversize frame, malformed
// image payload) get a typed ERROR reply and the connection is closed;
// request-level errors (the engine rejected this particular mask) get an
// ERROR reply and the connection stays open. A SHUTDOWN frame asks the
// server to stop: run() drains — every accepted request's reply is
// flushed — and returns.
//
// Trace spans mirror manifest mode (`serve.ingest` on the loop thread,
// `serve.wait` on the completion thread, `serve.write` on the loop
// thread), so scripts/trace_summary.py validates both modes with the same
// required-span list. Metrics land in the serve.* namespace of the
// provided registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "runtime/metrics_registry.h"
#include "runtime/scheduler.h"

namespace litho::runtime {
class EnginePool;
}  // namespace litho::runtime

namespace litho::net {

struct ServerOptions {
  /// TCP port to listen on; 0 binds an ephemeral port (read it back with
  /// port() — tests and the bench use this to avoid collisions).
  uint16_t port = 0;
  /// listen(2) backlog and the cap on concurrently open connections;
  /// connections beyond the cap are accepted and immediately closed.
  int max_connections = 64;
  /// A connection with no frame activity (no bytes read or written, no
  /// request in flight) for this long is closed by the loop thread, so
  /// abandoned clients cannot pin slots under max_connections forever.
  /// <= 0 disables reaping. doinn_serve exposes this as --idle-timeout-s.
  int idle_timeout_ms = 60000;
};

/// Snapshot of the server's serve.* counters.
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t requests_ok = 0;
  int64_t requests_error = 0;
  int64_t busy_rejected = 0;
  int64_t protocol_errors = 0;
  int64_t dropped_replies = 0;  ///< contours whose connection closed first
  int64_t idle_reaped = 0;      ///< connections closed by the idle timer
};

class Server {
 public:
  /// Binds and listens immediately (clients may connect before run());
  /// throws std::runtime_error when the socket cannot be set up.
  /// @param scheduler Accepts the decoded masks; must outlive the server.
  ///   The caller shuts the scheduler down after run() returns — the
  ///   server's drain depends on pending futures still resolving.
  /// @param metrics Registry for the serve.* metrics; nullptr gives the
  ///   server a private registry.
  Server(runtime::Scheduler& scheduler, const ServerOptions& opts,
         runtime::MetricsRegistry* metrics = nullptr);

  /// Multi-model form: PREDICT frames are routed through @p pool by the
  /// version-2 model-name field (version-1 frames and empty names go to
  /// the pool's default model). A name the pool doesn't serve gets a
  /// request-level ERROR reply — the connection stays open. The pool must
  /// outlive the server; the caller shuts it down after run() returns.
  Server(runtime::EnginePool& pool, const ServerOptions& opts,
         runtime::MetricsRegistry* metrics = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (resolves option port 0 to the kernel's choice).
  uint16_t port() const { return port_; }

  /// Runs the event loop on the calling thread until stop() or a SHUTDOWN
  /// frame, then drains: stops accepting, waits for every accepted
  /// request's future, flushes all replies (blocking writes), and closes
  /// every connection.
  void run();

  /// Makes run() return and drain. Async-signal-safe: callable from
  /// SIGINT/SIGTERM handlers and from any thread.
  void stop();

  /// True once a client's SHUTDOWN frame (rather than stop()) ended run().
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  /// Runs @p handler on the loop thread at least every @p interval_ms —
  /// doinn_serve polls its SIGUSR1 dump flag here. Call before run().
  void set_poll_handler(int interval_ms, std::function<void()> handler);

  ServerStats stats() const;

  /// Registry holding the serve.* metrics.
  runtime::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  uint16_t port_ = 0;
  std::atomic<bool> shutdown_requested_{false};
  runtime::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace litho::net
