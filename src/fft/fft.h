// Fast Fourier transforms for the DOINN Fourier Unit and the Hopkins/SOCS
// optical model.
//
// Conventions match torch.fft with norm="backward": forward transforms are
// unnormalized, inverse transforms carry the 1/N factor. All 2-D transforms
// operate on the last two dimensions and are batched over the leading ones.
//
// Every 1-D transform runs through the plan cache in fft/plan.h (bit-reversal
// and twiddle tables per length, Bluestein chirp + kernel FFT for non-powers
// of two), and scratch comes from the pooled workspaces in runtime/workspace.h
// instead of per-call heap allocation. rfft2/irfft2 take a two-for-one real
// fast path: row pairs pack into one complex transform (split by Hermitian
// symmetry) and the column stage only touches the W/2+1 surviving columns.
// All kernels are bitwise deterministic across DOINN_NUM_THREADS settings.
//
// Complex tensors are represented as a (re, im) pair of equally-shaped real
// tensors — the autograd layer differentiates through real components only,
// so this representation keeps every gradient an ordinary real tensor.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace litho::fft {

/// Complex tensor as two equally-shaped real tensors.
struct CTensor {
  Tensor re;
  Tensor im;

  CTensor() = default;
  CTensor(Tensor real, Tensor imag);
  /// Zero complex tensor of the given shape.
  explicit CTensor(Shape shape);

  const Shape& shape() const { return re.shape(); }
  int64_t numel() const { return re.numel(); }
  CTensor clone() const { return {re.clone(), im.clone()}; }
};

/// In-place 1-D FFT of arbitrary length (radix-2 for powers of two,
/// Bluestein otherwise). Unnormalized; @p inverse conjugates twiddles but
/// does NOT apply 1/n.
void fft1d_unnormalized(std::vector<std::complex<double>>& a, bool inverse);

/// Full 2-D complex FFT over the last two dims. Inverse applies 1/(H*W).
CTensor fft2(const CTensor& x, bool inverse);

/// 2-D FFT of a real tensor [..., H, W] -> half spectrum [..., H, W/2+1].
CTensor rfft2(const Tensor& x);

/// rfft2 over raw buffers: @p src is batch x h x w, @p ore / @p oim receive
/// the batch x h x (w/2+1) half spectrum. The tensor overload above routes
/// through this; the graph executor replays it against arena buffers.
void rfft2_into(const float* src, float* ore, float* oim, int64_t batch,
                int64_t h, int64_t w);

/// Inverse of rfft2: [..., H, W/2+1] half spectrum -> real [..., H, w].
/// Hermitian symmetry along the last dim is assumed (torch.fft.irfft2
/// semantics); @p w is the desired last-dim extent (its floor(w/2)+1 must
/// match the input's last extent).
Tensor irfft2(const CTensor& x, int64_t w);

/// irfft2 over raw buffers: @p re / @p im hold the batch x h x (w/2+1) half
/// spectrum, @p dst receives the batch x h x w real result.
void irfft2_into(const float* re, const float* im, float* dst, int64_t batch,
                 int64_t h, int64_t w);

/// Real-linear adjoint of rfft2 (w.r.t. the real inner product
/// <x,y> = sum x.re*y.re + x.im*y.im): maps a half-spectrum cotangent back
/// to the real-image domain. Used by autograd; verified against the adjoint
/// identity in tests.
Tensor rfft2_adjoint(const CTensor& grad, int64_t w);

/// Real-linear adjoint of irfft2: maps a real-image cotangent to the
/// half-spectrum domain.
CTensor irfft2_adjoint(const Tensor& grad);

// -- Complex helpers ---------------------------------------------------------

/// Elementwise complex product a*b.
CTensor cmul(const CTensor& a, const CTensor& b);

/// Elementwise a * conj(b).
CTensor cmul_conj(const CTensor& a, const CTensor& b);

/// Squared magnitude |x|^2 as a real tensor.
Tensor cabs2(const CTensor& x);

}  // namespace litho::fft
