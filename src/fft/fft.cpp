#include "fft/fft.h"

#include <cmath>
#include <stdexcept>

#include "runtime/thread_pool.h"

namespace litho::fft {
namespace {

constexpr double kPi = 3.14159265358979323846;

bool is_pow2(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

size_t next_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Iterative radix-2 Cooley-Tukey. Unnormalized.
void fft_pow2(std::vector<std::complex<double>>& a, bool inverse) {
  const size_t n = a.size();
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * kPi / static_cast<double>(len) * (inverse ? 1 : -1);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = a[i + j];
        const std::complex<double> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Bluestein's chirp-z transform for arbitrary n. Unnormalized.
void fft_bluestein(std::vector<std::complex<double>>& a, bool inverse) {
  const size_t n = a.size();
  const double sign = inverse ? 1.0 : -1.0;
  // Chirp: c_k = exp(sign * i * pi * k^2 / n).
  std::vector<std::complex<double>> chirp(n);
  for (size_t k = 0; k < n; ++k) {
    // k^2 mod 2n avoids precision loss for large k.
    const double e = kPi * static_cast<double>((k * k) % (2 * n)) /
                     static_cast<double>(n);
    chirp[k] = std::complex<double>(std::cos(e), sign * std::sin(e));
  }
  const size_t m = next_pow2(2 * n - 1);
  std::vector<std::complex<double>> fa(m, {0, 0}), fb(m, {0, 0});
  for (size_t k = 0; k < n; ++k) fa[k] = a[k] * chirp[k];
  for (size_t k = 0; k < n; ++k) {
    fb[k] = std::conj(chirp[k]);
    if (k != 0) fb[m - k] = std::conj(chirp[k]);
  }
  fft_pow2(fa, false);
  fft_pow2(fb, false);
  for (size_t k = 0; k < m; ++k) fa[k] *= fb[k];
  fft_pow2(fa, true);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (size_t k = 0; k < n; ++k) a[k] = fa[k] * inv_m * chirp[k];
}

struct Dims2 {
  int64_t batch;
  int64_t h;
  int64_t w;
};

Dims2 last_two_dims(const Shape& shape) {
  if (shape.size() < 2) {
    throw std::invalid_argument("2-D FFT requires rank >= 2, got shape " +
                                shape_to_string(shape));
  }
  Dims2 d{1, shape[shape.size() - 2], shape[shape.size() - 1]};
  for (size_t i = 0; i + 2 < shape.size(); ++i) d.batch *= shape[i];
  return d;
}

// 2-D FFT of a single H x W complex slice held in `buf` (row-major). Each
// row / column transform is independent and writes a disjoint range, so with
// @p parallel the line loops fan out over the runtime pool (used when there
// is no batch dimension to parallelize over instead); results are bitwise
// identical for any thread count.
void fft2_slice(std::vector<std::complex<double>>& buf, int64_t h, int64_t w,
                bool inverse, bool parallel = false) {
  // A 1-D transform costs O(len log len); only fan out when the slice is
  // large enough for a line to outweigh the enqueue cost. The free
  // parallel_for resolves a pool only when the range can actually split, so
  // serial and small transforms never instantiate the global pool.
  constexpr int64_t kMinLines = 64;
  // Rows.
  runtime::parallel_for(
      h,
      [&](int64_t r0, int64_t r1) {
        std::vector<std::complex<double>> line(static_cast<size_t>(w));
        for (int64_t r = r0; r < r1; ++r) {
          std::copy(buf.begin() + r * w, buf.begin() + (r + 1) * w,
                    line.begin());
          fft1d_unnormalized(line, inverse);
          std::copy(line.begin(), line.end(), buf.begin() + r * w);
        }
      },
      parallel ? kMinLines : h);
  // Columns.
  runtime::parallel_for(
      w,
      [&](int64_t c0, int64_t c1) {
        std::vector<std::complex<double>> line(static_cast<size_t>(h));
        for (int64_t c = c0; c < c1; ++c) {
          for (int64_t r = 0; r < h; ++r) {
            line[static_cast<size_t>(r)] = buf[r * w + c];
          }
          fft1d_unnormalized(line, inverse);
          for (int64_t r = 0; r < h; ++r) {
            buf[r * w + c] = line[static_cast<size_t>(r)];
          }
        }
      },
      parallel ? kMinLines : w);
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(h * w);
    for (auto& v : buf) v *= scale;
  }
}

}  // namespace

CTensor::CTensor(Tensor real, Tensor imag)
    : re(std::move(real)), im(std::move(imag)) {
  if (!re.same_shape(im)) {
    throw std::invalid_argument("CTensor re/im shape mismatch: " +
                                shape_to_string(re.shape()) + " vs " +
                                shape_to_string(im.shape()));
  }
}

CTensor::CTensor(Shape shape) : re(shape), im(std::move(shape)) {}

void fft1d_unnormalized(std::vector<std::complex<double>>& a, bool inverse) {
  if (a.size() <= 1) return;
  if (is_pow2(a.size())) {
    fft_pow2(a, inverse);
  } else {
    fft_bluestein(a, inverse);
  }
}

CTensor fft2(const CTensor& x, bool inverse) {
  const Dims2 d = last_two_dims(x.shape());
  CTensor out(x.shape());
  const float* re = x.re.data();
  const float* im = x.im.data();
  float* ore = out.re.data();
  float* oim = out.im.data();
  const int64_t plane = d.h * d.w;
  // Batched: one slice per iteration with a per-chunk scratch buffer. A lone
  // slice parallelizes over its rows/columns instead.
  runtime::parallel_for(d.batch, [&](int64_t b0, int64_t b1) {
    std::vector<std::complex<double>> buf(static_cast<size_t>(plane));
    for (int64_t b = b0; b < b1; ++b) {
      const int64_t off = b * plane;
      for (int64_t i = 0; i < plane; ++i) {
        buf[static_cast<size_t>(i)] = {re[off + i], im[off + i]};
      }
      fft2_slice(buf, d.h, d.w, inverse, /*parallel=*/d.batch == 1);
      for (int64_t i = 0; i < plane; ++i) {
        ore[off + i] = static_cast<float>(buf[static_cast<size_t>(i)].real());
        oim[off + i] = static_cast<float>(buf[static_cast<size_t>(i)].imag());
      }
    }
  });
  return out;
}

CTensor rfft2(const Tensor& x) {
  const Dims2 d = last_two_dims(x.shape());
  const int64_t wh = d.w / 2 + 1;
  Shape out_shape = x.shape();
  out_shape[out_shape.size() - 1] = wh;
  CTensor out(out_shape);

  const float* src = x.data();
  float* ore = out.re.data();
  float* oim = out.im.data();
  const int64_t plane = d.h * d.w;
  const int64_t out_plane = d.h * wh;
  runtime::parallel_for(d.batch, [&](int64_t b0, int64_t b1) {
    std::vector<std::complex<double>> buf(static_cast<size_t>(plane));
    for (int64_t b = b0; b < b1; ++b) {
      for (int64_t i = 0; i < plane; ++i) {
        buf[static_cast<size_t>(i)] = {src[b * plane + i], 0.0};
      }
      fft2_slice(buf, d.h, d.w, false, /*parallel=*/d.batch == 1);
      for (int64_t r = 0; r < d.h; ++r) {
        for (int64_t c = 0; c < wh; ++c) {
          const auto v = buf[static_cast<size_t>(r * d.w + c)];
          ore[b * out_plane + r * wh + c] = static_cast<float>(v.real());
          oim[b * out_plane + r * wh + c] = static_cast<float>(v.imag());
        }
      }
    }
  });
  return out;
}

Tensor irfft2(const CTensor& x, int64_t w) {
  const Dims2 d = last_two_dims(x.shape());
  if (d.w != w / 2 + 1) {
    throw std::invalid_argument("irfft2: half-spectrum width " +
                                std::to_string(d.w) +
                                " inconsistent with output width " +
                                std::to_string(w));
  }
  Shape out_shape = x.shape();
  out_shape[out_shape.size() - 1] = w;
  Tensor out(out_shape);

  const float* re = x.re.data();
  const float* im = x.im.data();
  float* dst = out.data();
  const int64_t in_plane = d.h * d.w;
  const int64_t out_plane = d.h * w;
  runtime::parallel_for(d.batch, [&](int64_t b0, int64_t b1) {
    std::vector<std::complex<double>> buf(static_cast<size_t>(out_plane));
    for (int64_t b = b0; b < b1; ++b) {
      // Hermitian extension along the last dim:
      // full[r][c] = conj(half[(H-r)%H][w-c]).
      for (int64_t r = 0; r < d.h; ++r) {
        for (int64_t c = 0; c < d.w; ++c) {
          const int64_t idx = b * in_plane + r * d.w + c;
          buf[static_cast<size_t>(r * w + c)] = {re[idx], im[idx]};
        }
        for (int64_t c = d.w; c < w; ++c) {
          const int64_t rr = (d.h - r) % d.h;
          const int64_t idx = b * in_plane + rr * d.w + (w - c);
          buf[static_cast<size_t>(r * w + c)] = {re[idx], -im[idx]};
        }
      }
      fft2_slice(buf, d.h, w, true, /*parallel=*/d.batch == 1);
      for (int64_t i = 0; i < out_plane; ++i) {
        dst[b * out_plane + i] =
            static_cast<float>(buf[static_cast<size_t>(i)].real());
      }
    }
  });
  return out;
}

Tensor rfft2_adjoint(const CTensor& grad, int64_t w) {
  // rfft2 = Select_half o FFT2 o RealEmbed, so the real adjoint is
  // Re o (H*W * IFFT2) o ZeroPad_full.
  const Dims2 d = last_two_dims(grad.shape());
  if (d.w != w / 2 + 1) throw std::invalid_argument("rfft2_adjoint width");
  Shape full_shape = grad.shape();
  full_shape[full_shape.size() - 1] = w;
  CTensor full(full_shape);
  const int64_t in_plane = d.h * d.w;
  const int64_t full_plane = d.h * w;
  for (int64_t b = 0; b < d.batch; ++b) {
    for (int64_t r = 0; r < d.h; ++r) {
      for (int64_t c = 0; c < d.w; ++c) {
        full.re[b * full_plane + r * w + c] = grad.re[b * in_plane + r * d.w + c];
        full.im[b * full_plane + r * w + c] = grad.im[b * in_plane + r * d.w + c];
      }
    }
  }
  CTensor inv = fft2(full, /*inverse=*/true);
  Tensor out = inv.re;
  out.mul_(static_cast<float>(d.h * w));
  return out;
}

CTensor irfft2_adjoint(const Tensor& grad) {
  // irfft2 = Re o IFFT2 o HermitianExtend, so the real adjoint is
  // Fold o ((1/(H*W)) * FFT2) o ComplexEmbed where Fold adds the conjugated
  // mirror contribution of the extended columns back onto the half grid.
  const Dims2 d = last_two_dims(grad.shape());
  const int64_t w = d.w;
  const int64_t wh = w / 2 + 1;
  CTensor embedded(grad.clone(), Tensor(grad.shape()));
  CTensor spec = fft2(embedded, /*inverse=*/false);
  const float scale = 1.f / static_cast<float>(d.h * w);

  Shape out_shape = grad.shape();
  out_shape[out_shape.size() - 1] = wh;
  CTensor out(out_shape);
  const int64_t full_plane = d.h * w;
  const int64_t out_plane = d.h * wh;
  for (int64_t b = 0; b < d.batch; ++b) {
    for (int64_t r = 0; r < d.h; ++r) {
      for (int64_t c = 0; c < wh; ++c) {
        const int64_t src = b * full_plane + r * w + c;
        const int64_t dst = b * out_plane + r * wh + c;
        out.re[dst] = spec.re[src] * scale;
        out.im[dst] = spec.im[src] * scale;
      }
      // Columns 1 .. ceil(w/2)-1 are duplicated (conjugated) by the
      // Hermitian extension; fold their cotangent back.
      for (int64_t c = 1; c < (w + 1) / 2; ++c) {
        const int64_t rr = (d.h - r) % d.h;
        const int64_t src = b * full_plane + rr * w + (w - c);
        const int64_t dst = b * out_plane + r * wh + c;
        out.re[dst] += spec.re[src] * scale;
        out.im[dst] -= spec.im[src] * scale;
      }
    }
  }
  return out;
}

CTensor cmul(const CTensor& a, const CTensor& b) {
  if (!a.re.same_shape(b.re)) throw std::invalid_argument("cmul shape mismatch");
  CTensor out(a.shape());
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    out.re[i] = a.re[i] * b.re[i] - a.im[i] * b.im[i];
    out.im[i] = a.re[i] * b.im[i] + a.im[i] * b.re[i];
  }
  return out;
}

CTensor cmul_conj(const CTensor& a, const CTensor& b) {
  if (!a.re.same_shape(b.re)) {
    throw std::invalid_argument("cmul_conj shape mismatch");
  }
  CTensor out(a.shape());
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    out.re[i] = a.re[i] * b.re[i] + a.im[i] * b.im[i];
    out.im[i] = a.im[i] * b.re[i] - a.re[i] * b.im[i];
  }
  return out;
}

Tensor cabs2(const CTensor& x) {
  Tensor out(x.shape());
  const int64_t n = x.numel();
  for (int64_t i = 0; i < n; ++i) {
    out[i] = x.re[i] * x.re[i] + x.im[i] * x.im[i];
  }
  return out;
}

}  // namespace litho::fft
