#include "fft/fft.h"

#include <cmath>
#include <stdexcept>

#include "fft/plan.h"
#include "runtime/thread_pool.h"
#include "runtime/trace.h"
#include "runtime/workspace.h"

namespace litho::fft {
namespace {

// Within-slice fan-out thresholds: a 1-D transform costs O(len log len), so
// lines only go wide when a chunk outweighs the enqueue cost. Batched calls
// parallelize over planes instead and run the per-slice loops inline.
constexpr int64_t kMinLines = 64;
constexpr int64_t kMinPairs = 32;  // packed row-pairs cover two lines each

struct Dims2 {
  int64_t batch;
  int64_t h;
  int64_t w;
};

Dims2 last_two_dims(const Shape& shape) {
  if (shape.size() < 2) {
    throw std::invalid_argument("2-D FFT requires rank >= 2, got shape " +
                                shape_to_string(shape));
  }
  Dims2 d{1, shape[shape.size() - 2], shape[shape.size() - 1]};
  for (size_t i = 0; i + 2 < shape.size(); ++i) d.batch *= shape[i];
  return d;
}

// 2-D FFT of a single H x W complex slice held in `buf` (row-major), using
// cached plans. Rows transform in place (contiguous); columns go through a
// pooled line buffer. With @p parallel the line loops fan out over the
// runtime pool (used when there is no batch dimension to parallelize over
// instead); every line is computed independently with identical arithmetic,
// so results are bitwise identical for any thread count.
void fft2_slice(std::complex<double>* buf, int64_t h, int64_t w, bool inverse,
                const FftPlan& pw, const FftPlan& ph, bool parallel) {
  runtime::parallel_for(
      h,
      [&](int64_t r0, int64_t r1) {
        runtime::Workspace ws(pw.workspace_size());
        for (int64_t r = r0; r < r1; ++r) {
          pw.execute(buf + r * w, inverse, ws.data());
        }
      },
      parallel ? kMinLines : h);
  runtime::parallel_for(
      w,
      [&](int64_t c0, int64_t c1) {
        runtime::Workspace ws(static_cast<size_t>(h) + ph.workspace_size());
        std::complex<double>* line = ws.data();
        std::complex<double>* work = line + h;
        for (int64_t c = c0; c < c1; ++c) {
          for (int64_t r = 0; r < h; ++r) line[r] = buf[r * w + c];
          ph.execute(line, inverse, work);
          for (int64_t r = 0; r < h; ++r) buf[r * w + c] = line[r];
        }
      },
      parallel ? kMinLines : w);
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(h * w);
    const int64_t n = h * w;
    for (int64_t i = 0; i < n; ++i) buf[i] *= scale;
  }
}

// Forward real 2-D FFT of one H x W plane into the H x (W/2+1) half
// spectrum. Two-for-one row stage: rows 2p and 2p+1 pack into a single
// complex transform z = x_{2p} + i*x_{2p+1} whose halves separate via
// Hermitian symmetry; the column stage then only transforms the W/2+1
// surviving columns. Row pairing depends only on the pair index, never on
// chunking, so outputs are bitwise identical for any thread count.
void rfft2_slice(const float* src, float* ore, float* oim, int64_t h,
                 int64_t w, const FftPlan& pw, const FftPlan& ph,
                 bool parallel) {
  const int64_t wh = w / 2 + 1;
  runtime::Workspace tmp_ws(static_cast<size_t>(h * wh));
  std::complex<double>* tmp = tmp_ws.data();
  const int64_t np = (h + 1) / 2;
  runtime::parallel_for(
      np,
      [&](int64_t p0, int64_t p1) {
        runtime::Workspace ws(static_cast<size_t>(w) + pw.workspace_size());
        std::complex<double>* line = ws.data();
        std::complex<double>* work = line + w;
        for (int64_t p = p0; p < p1; ++p) {
          const int64_t r0 = 2 * p;
          const int64_t r1 = r0 + 1;
          if (r1 < h) {
            for (int64_t c = 0; c < w; ++c) {
              line[c] = {static_cast<double>(src[r0 * w + c]),
                         static_cast<double>(src[r1 * w + c])};
            }
            pw.execute(line, /*inverse=*/false, work);
            // Z[c] = A[c] + i*B[c] with A, B Hermitian:
            // A[c] = (Z[c] + conj(Z[-c]))/2, B[c] = -i*(Z[c] - conj(Z[-c]))/2.
            for (int64_t c = 0; c < wh; ++c) {
              const std::complex<double> zc = line[c];
              const std::complex<double> zm = std::conj(line[(w - c) % w]);
              const std::complex<double> a = 0.5 * (zc + zm);
              const std::complex<double> d = 0.5 * (zc - zm);
              tmp[r0 * wh + c] = a;
              tmp[r1 * wh + c] = {d.imag(), -d.real()};
            }
          } else {  // odd H: last row rides alone
            for (int64_t c = 0; c < w; ++c) {
              line[c] = {static_cast<double>(src[r0 * w + c]), 0.0};
            }
            pw.execute(line, /*inverse=*/false, work);
            for (int64_t c = 0; c < wh; ++c) tmp[r0 * wh + c] = line[c];
          }
        }
      },
      parallel ? kMinPairs : np);
  runtime::parallel_for(
      wh,
      [&](int64_t c0, int64_t c1) {
        runtime::Workspace ws(static_cast<size_t>(h) + ph.workspace_size());
        std::complex<double>* line = ws.data();
        std::complex<double>* work = line + h;
        for (int64_t c = c0; c < c1; ++c) {
          for (int64_t r = 0; r < h; ++r) line[r] = tmp[r * wh + c];
          ph.execute(line, /*inverse=*/false, work);
          for (int64_t r = 0; r < h; ++r) {
            ore[r * wh + c] = static_cast<float>(line[r].real());
            oim[r * wh + c] = static_cast<float>(line[r].imag());
          }
        }
      },
      parallel ? kMinLines : wh);
}

// Inverse of rfft2_slice: column inverse transforms over the half grid,
// then a packed row stage reconstructing two real rows per complex inverse
// transform. The imaginary parts at the self-conjugate bins (c = 0, and
// c = W/2 for even W) are dropped before packing: the real output is
// invariant to them (Re o IFFT kills them), and zeroing makes the packed
// spectrum exactly Hermitian so the two rows separate cleanly.
void irfft2_slice(const float* re, const float* im, float* dst, int64_t h,
                  int64_t w, const FftPlan& pw, const FftPlan& ph,
                  bool parallel) {
  const int64_t wh = w / 2 + 1;
  runtime::Workspace tmp_ws(static_cast<size_t>(h * wh));
  std::complex<double>* tmp = tmp_ws.data();
  runtime::parallel_for(
      wh,
      [&](int64_t c0, int64_t c1) {
        runtime::Workspace ws(static_cast<size_t>(h) + ph.workspace_size());
        std::complex<double>* line = ws.data();
        std::complex<double>* work = line + h;
        for (int64_t c = c0; c < c1; ++c) {
          for (int64_t r = 0; r < h; ++r) {
            line[r] = {static_cast<double>(re[r * wh + c]),
                       static_cast<double>(im[r * wh + c])};
          }
          ph.execute(line, /*inverse=*/true, work);  // unnormalized
          for (int64_t r = 0; r < h; ++r) tmp[r * wh + c] = line[r];
        }
      },
      parallel ? kMinLines : wh);
  const double scale = 1.0 / static_cast<double>(h * w);
  const bool even_w = (w % 2 == 0);
  const int64_t np = (h + 1) / 2;
  runtime::parallel_for(
      np,
      [&](int64_t p0, int64_t p1) {
        runtime::Workspace ws(static_cast<size_t>(w) + pw.workspace_size());
        std::complex<double>* line = ws.data();
        std::complex<double>* work = line + w;
        const auto half_at = [&](const std::complex<double>* row, int64_t c) {
          std::complex<double> v = row[c];
          if (c == 0 || (even_w && c == wh - 1)) v = {v.real(), 0.0};
          return v;
        };
        for (int64_t p = p0; p < p1; ++p) {
          const int64_t r0 = 2 * p;
          const int64_t r1 = r0 + 1;
          const std::complex<double>* a_row = tmp + r0 * wh;
          if (r1 < h) {
            const std::complex<double>* b_row = tmp + r1 * wh;
            for (int64_t c = 0; c < wh; ++c) {
              const std::complex<double> a = half_at(a_row, c);
              const std::complex<double> b = half_at(b_row, c);
              line[c] = {a.real() - b.imag(), a.imag() + b.real()};
            }
            for (int64_t c = wh; c < w; ++c) {
              const std::complex<double> a = half_at(a_row, w - c);
              const std::complex<double> b = half_at(b_row, w - c);
              line[c] = {a.real() + b.imag(), b.real() - a.imag()};
            }
            pw.execute(line, /*inverse=*/true, work);  // unnormalized
            for (int64_t c = 0; c < w; ++c) {
              dst[r0 * w + c] = static_cast<float>(line[c].real() * scale);
              dst[r1 * w + c] = static_cast<float>(line[c].imag() * scale);
            }
          } else {  // odd H: plain Hermitian extension for the last row
            for (int64_t c = 0; c < wh; ++c) line[c] = a_row[c];
            for (int64_t c = wh; c < w; ++c) {
              line[c] = std::conj(a_row[w - c]);
            }
            pw.execute(line, /*inverse=*/true, work);
            for (int64_t c = 0; c < w; ++c) {
              dst[r0 * w + c] = static_cast<float>(line[c].real() * scale);
            }
          }
        }
      },
      parallel ? kMinPairs : np);
}

}  // namespace

CTensor::CTensor(Tensor real, Tensor imag)
    : re(std::move(real)), im(std::move(imag)) {
  if (!re.same_shape(im)) {
    throw std::invalid_argument("CTensor re/im shape mismatch: " +
                                shape_to_string(re.shape()) + " vs " +
                                shape_to_string(im.shape()));
  }
}

CTensor::CTensor(Shape shape) : re(shape), im(std::move(shape)) {}

void fft1d_unnormalized(std::vector<std::complex<double>>& a, bool inverse) {
  if (a.size() <= 1) return;
  const FftPlan& plan = plan_for(a.size());
  runtime::Workspace ws(plan.workspace_size());
  plan.execute(a.data(), inverse, ws.data());
}

CTensor fft2(const CTensor& x, bool inverse) {
  const Dims2 d = last_two_dims(x.shape());
  DOINN_TRACE_SCOPE("fft.fft2", "fft", "batch", d.batch, "h", d.h, "w", d.w);
  CTensor out(x.shape());
  const float* re = x.re.data();
  const float* im = x.im.data();
  float* ore = out.re.data();
  float* oim = out.im.data();
  const int64_t plane = d.h * d.w;
  const FftPlan& pw = plan_for(static_cast<size_t>(d.w));
  const FftPlan& ph = plan_for(static_cast<size_t>(d.h));
  // Batched: one slice per iteration with a per-chunk pooled plane buffer.
  // A lone slice parallelizes over its rows/columns instead.
  runtime::parallel_for(d.batch, [&](int64_t b0, int64_t b1) {
    runtime::Workspace plane_ws(static_cast<size_t>(plane));
    std::complex<double>* buf = plane_ws.data();
    for (int64_t b = b0; b < b1; ++b) {
      const int64_t off = b * plane;
      for (int64_t i = 0; i < plane; ++i) {
        buf[i] = {static_cast<double>(re[off + i]),
                  static_cast<double>(im[off + i])};
      }
      fft2_slice(buf, d.h, d.w, inverse, pw, ph, /*parallel=*/d.batch == 1);
      for (int64_t i = 0; i < plane; ++i) {
        ore[off + i] = static_cast<float>(buf[i].real());
        oim[off + i] = static_cast<float>(buf[i].imag());
      }
    }
  });
  return out;
}

void rfft2_into(const float* src, float* ore, float* oim, int64_t batch,
                int64_t h, int64_t w) {
  DOINN_TRACE_SCOPE("fft.rfft2", "fft", "batch", batch, "h", h, "w", w);
  const int64_t wh = w / 2 + 1;
  const int64_t plane = h * w;
  const int64_t out_plane = h * wh;
  const FftPlan& pw = plan_for(static_cast<size_t>(w));
  const FftPlan& ph = plan_for(static_cast<size_t>(h));
  runtime::parallel_for(batch, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      rfft2_slice(src + b * plane, ore + b * out_plane, oim + b * out_plane,
                  h, w, pw, ph, /*parallel=*/batch == 1);
    }
  });
}

CTensor rfft2(const Tensor& x) {
  const Dims2 d = last_two_dims(x.shape());
  Shape out_shape = x.shape();
  out_shape[out_shape.size() - 1] = d.w / 2 + 1;
  CTensor out(out_shape);
  rfft2_into(x.data(), out.re.data(), out.im.data(), d.batch, d.h, d.w);
  return out;
}

void irfft2_into(const float* re, const float* im, float* dst, int64_t batch,
                 int64_t h, int64_t w) {
  DOINN_TRACE_SCOPE("fft.irfft2", "fft", "batch", batch, "h", h, "w", w);
  const int64_t in_plane = h * (w / 2 + 1);
  const int64_t out_plane = h * w;
  const FftPlan& pw = plan_for(static_cast<size_t>(w));
  const FftPlan& ph = plan_for(static_cast<size_t>(h));
  runtime::parallel_for(batch, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      irfft2_slice(re + b * in_plane, im + b * in_plane, dst + b * out_plane,
                   h, w, pw, ph, /*parallel=*/batch == 1);
    }
  });
}

Tensor irfft2(const CTensor& x, int64_t w) {
  const Dims2 d = last_two_dims(x.shape());
  if (d.w != w / 2 + 1) {
    throw std::invalid_argument("irfft2: half-spectrum width " +
                                std::to_string(d.w) +
                                " inconsistent with output width " +
                                std::to_string(w));
  }
  Shape out_shape = x.shape();
  out_shape[out_shape.size() - 1] = w;
  Tensor out(out_shape);
  irfft2_into(x.re.data(), x.im.data(), out.data(), d.batch, d.h, w);
  return out;
}

Tensor rfft2_adjoint(const CTensor& grad, int64_t w) {
  // rfft2 = Select_half o FFT2 o RealEmbed, so the real adjoint is
  // Re o (H*W * IFFT2) o ZeroPad_full. Re o IFFT2 equals IFFT2 of the 2-D
  // Hermitian projection, whose half grid K is cheap to build from the
  // cotangent: interior columns pair with the zero pad (halve), while c = 0
  // and (even W) c = W/2 pair with their own row mirror. The whole adjoint
  // then rides the two-for-one inverse fast path.
  const Dims2 d = last_two_dims(grad.shape());
  if (d.w != w / 2 + 1) throw std::invalid_argument("rfft2_adjoint width");
  const int64_t wh = d.w;
  const bool even_w = (w % 2 == 0);
  const int64_t interior_end = even_w ? wh - 1 : wh;
  CTensor k(grad.shape());
  const float* gre = grad.re.data();
  const float* gim = grad.im.data();
  float* kre = k.re.data();
  float* kim = k.im.data();
  const int64_t plane = d.h * wh;
  runtime::parallel_for(d.batch, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      for (int64_t r = 0; r < d.h; ++r) {
        const int64_t rr = (d.h - r) % d.h;
        const int64_t row = b * plane + r * wh;
        const int64_t mrow = b * plane + rr * wh;
        kre[row] = 0.5f * (gre[row] + gre[mrow]);
        kim[row] = 0.5f * (gim[row] - gim[mrow]);
        for (int64_t c = 1; c < interior_end; ++c) {
          kre[row + c] = 0.5f * gre[row + c];
          kim[row + c] = 0.5f * gim[row + c];
        }
        if (even_w) {
          const int64_t c = wh - 1;
          kre[row + c] = 0.5f * (gre[row + c] + gre[mrow + c]);
          kim[row + c] = 0.5f * (gim[row + c] - gim[mrow + c]);
        }
      }
    }
  });
  Tensor out = irfft2(k, w);
  out.mul_(static_cast<float>(d.h * w));
  return out;
}

CTensor irfft2_adjoint(const Tensor& grad) {
  // irfft2 = Re o IFFT2 o HermitianExtend. The cotangent is real, so the
  // forward FFT2 in the adjoint is exactly rfft2(grad), and the fold of the
  // conjugated mirror columns collapses (by Hermitian symmetry of a real
  // input's spectrum) to doubling the interior columns.
  const Dims2 d = last_two_dims(grad.shape());
  const int64_t w = d.w;
  const int64_t wh = w / 2 + 1;
  CTensor out = rfft2(grad);
  const float scale = 1.f / static_cast<float>(d.h * w);
  const float scale2 = 2.f * scale;
  const int64_t interior_end = (w + 1) / 2;  // mirror columns 1..ceil(w/2)-1
  float* ore = out.re.data();
  float* oim = out.im.data();
  const int64_t plane = d.h * wh;
  runtime::parallel_for(d.batch, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      for (int64_t r = 0; r < d.h; ++r) {
        float* rrow = ore + b * plane + r * wh;
        float* irow = oim + b * plane + r * wh;
        for (int64_t c = 0; c < wh; ++c) {
          const float s = (c >= 1 && c < interior_end) ? scale2 : scale;
          rrow[c] *= s;
          irow[c] *= s;
        }
      }
    }
  });
  return out;
}

CTensor cmul(const CTensor& a, const CTensor& b) {
  if (!a.re.same_shape(b.re)) throw std::invalid_argument("cmul shape mismatch");
  CTensor out(a.shape());
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    out.re[i] = a.re[i] * b.re[i] - a.im[i] * b.im[i];
    out.im[i] = a.re[i] * b.im[i] + a.im[i] * b.re[i];
  }
  return out;
}

CTensor cmul_conj(const CTensor& a, const CTensor& b) {
  if (!a.re.same_shape(b.re)) {
    throw std::invalid_argument("cmul_conj shape mismatch");
  }
  CTensor out(a.shape());
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    out.re[i] = a.re[i] * b.re[i] + a.im[i] * b.im[i];
    out.im[i] = a.im[i] * b.re[i] - a.re[i] * b.im[i];
  }
  return out;
}

Tensor cabs2(const CTensor& x) {
  Tensor out(x.shape());
  const int64_t n = x.numel();
  for (int64_t i = 0; i < n; ++i) {
    out[i] = x.re[i] * x.re[i] + x.im[i] * x.im[i];
  }
  return out;
}

}  // namespace litho::fft
