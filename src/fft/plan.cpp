#include "fft/plan.h"

#include <cmath>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "runtime/workspace.h"

namespace litho::fft {
namespace {

constexpr double kPi = 3.14159265358979323846;

using runtime::next_pow2;

bool is_pow2(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

FftPlan::FftPlan(size_t n) : n_(n), pow2_(is_pow2(n)) {
  if (n == 0) throw std::invalid_argument("FftPlan: zero length");
  if (pow2_) {
    if (n == 1) return;
    bitrev_.resize(n);
    for (size_t i = 1, j = 0; i < n; ++i) {
      size_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      bitrev_[i] = static_cast<uint32_t>(j);
    }
    twiddles_.resize(n - 1);
    for (size_t len = 2; len <= n; len <<= 1) {
      const size_t half = len / 2;
      const double ang = -2.0 * kPi / static_cast<double>(len);
      for (size_t j = 0; j < half; ++j) {
        const double a = ang * static_cast<double>(j);
        twiddles_[half - 1 + j] = {std::cos(a), std::sin(a)};
      }
    }
    return;
  }

  // Bluestein: chirp c_k = exp(-i*pi*k^2/n) (forward sign; k^2 mod 2n keeps
  // the angle argument small for large k).
  chirp_.resize(n);
  for (size_t k = 0; k < n; ++k) {
    const double e =
        kPi * static_cast<double>((k * k) % (2 * n)) / static_cast<double>(n);
    chirp_[k] = {std::cos(e), -std::sin(e)};
  }
  m_ = next_pow2(2 * n - 1);
  sub_ = &plan_for(m_);
  // Kernel b[k] = conj(chirp[k]) for the forward transform (chirp[k] for the
  // inverse), wrapped so b[m-k] = b[k]; its FFT is reused by every execute.
  for (const bool inverse : {false, true}) {
    std::vector<std::complex<double>> b(m_, {0.0, 0.0});
    for (size_t k = 0; k < n; ++k) {
      const std::complex<double> v =
          inverse ? chirp_[k] : std::conj(chirp_[k]);
      b[k] = v;
      if (k != 0) b[m_ - k] = v;
    }
    sub_->execute(b.data(), /*inverse=*/false);
    (inverse ? kernel_fft_inv_ : kernel_fft_fwd_) = std::move(b);
  }
}

void FftPlan::execute(std::complex<double>* data, bool inverse,
                      std::complex<double>* work) const {
  if (n_ <= 1) return;
  if (pow2_) {
    radix2(data, inverse);
  } else {
    bluestein(data, inverse, work);
  }
}

void FftPlan::radix2(std::complex<double>* a, bool inverse) const {
  const size_t n = n_;
  for (size_t i = 1; i < n; ++i) {
    const size_t j = bitrev_[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const size_t half = len / 2;
    const std::complex<double>* w = twiddles_.data() + (half - 1);
    for (size_t i = 0; i < n; i += len) {
      for (size_t j = 0; j < half; ++j) {
        const std::complex<double> wj =
            inverse ? std::conj(w[j]) : w[j];
        const std::complex<double> u = a[i + j];
        const std::complex<double> v = a[i + j + half] * wj;
        a[i + j] = u + v;
        a[i + j + half] = u - v;
      }
    }
  }
}

void FftPlan::bluestein(std::complex<double>* a, bool inverse,
                        std::complex<double>* work) const {
  // Chirp-z as a circular convolution of length m_: only the data-dependent
  // forward/inverse pair of sub-FFTs runs here — the kernel FFT is cached.
  const size_t n = n_;
  std::vector<std::complex<double>> local;
  if (work == nullptr) {
    local.resize(m_);
    work = local.data();
  }
  for (size_t k = 0; k < n; ++k) {
    const std::complex<double> c = inverse ? std::conj(chirp_[k]) : chirp_[k];
    work[k] = a[k] * c;
  }
  for (size_t k = n; k < m_; ++k) work[k] = {0.0, 0.0};
  sub_->execute(work, /*inverse=*/false);
  const std::vector<std::complex<double>>& kf =
      inverse ? kernel_fft_inv_ : kernel_fft_fwd_;
  for (size_t k = 0; k < m_; ++k) work[k] *= kf[k];
  sub_->execute(work, /*inverse=*/true);
  const double inv_m = 1.0 / static_cast<double>(m_);
  for (size_t k = 0; k < n; ++k) {
    const std::complex<double> c = inverse ? std::conj(chirp_[k]) : chirp_[k];
    a[k] = work[k] * inv_m * c;
  }
}

namespace {

struct PlanRegistry {
  std::mutex mu;
  std::unordered_map<size_t, std::unique_ptr<FftPlan>> plans;
};

PlanRegistry& registry() {
  // Leaked on purpose: plans may be used by pool workers during shutdown.
  static PlanRegistry* r = new PlanRegistry;
  return *r;
}

}  // namespace

const FftPlan& plan_for(size_t n) {
  PlanRegistry& r = registry();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.plans.find(n);
    if (it != r.plans.end()) return *it->second;
  }
  // Built outside the lock: Bluestein construction recursively resolves the
  // padded-length plan through this same registry. A concurrent first use of
  // the same length builds a duplicate; try_emplace keeps exactly one.
  auto plan = std::make_unique<FftPlan>(n);
  std::lock_guard<std::mutex> lock(r.mu);
  auto [it, inserted] = r.plans.try_emplace(n, std::move(plan));
  (void)inserted;
  return *it->second;
}

size_t plan_cache_size() {
  PlanRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.plans.size();
}

}  // namespace litho::fft
